module pab

go 1.22
