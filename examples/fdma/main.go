// FDMA: two recto-piezo nodes transmitting concurrently on 15 kHz and
// 18 kHz channels, decoded through the collision (paper §6.3, Fig 10).
// The example plans the channel assignment with the MAC's FDMA planner,
// switches the second node's matching circuit over the air, runs the
// concurrent exchange, and reports SINR before and after zero-forcing.
package main

import (
	"fmt"
	"log"

	"pab"
	"pab/internal/core"
	"pab/internal/frame"
	"pab/internal/mac"
	"pab/internal/node"
	"pab/internal/piezo"
)

func main() {
	// 1. Channel plan: both nodes carry 15 kHz and 18 kHz matching
	// circuits; the planner assigns distinct resonances (§3.3.1).
	plan, err := mac.PlanFDMA([]mac.NodeInfo{
		{Addr: 1, ResonanceHz: []float64{15000, 18000}},
		{Addr: 2, ResonanceHz: []float64{15000, 18000}},
	}, 12000, 18000, 1500)
	if err != nil {
		log.Fatalf("channel plan: %v", err)
	}
	for _, a := range plan {
		fmt.Printf("node %d ← %.0f Hz (matching circuit %d)\n", a.Addr, a.FrequencyHz, a.CircuitIndex)
	}

	// 2. Provision and power the nodes on their assigned channels.
	cfg := core.DefaultConcurrentConfig()
	rhoC := piezo.RhoC(cfg.Tank.Water.SoundSpeed(), false)
	var nodes [2]*node.Node
	for k, a := range plan {
		n, err := core.NewPaperNode(a.Addr, cfg.BitrateBps, pab.RoomTank())
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i < 200000 && n.State() == node.Off; i++ {
			n.HarvestStep(3000, a.FrequencyHz, rhoC, 1e-3)
		}
		if n.State() == node.Off {
			log.Fatalf("node %d failed to power up", a.Addr)
		}
		// Switch the matching circuit over the air (CmdSwitchResonance).
		if a.CircuitIndex > 0 {
			if _, err := n.HandleQuery(frame.Query{
				Dest: a.Addr, Command: frame.CmdSwitchResonance, Param: byte(a.CircuitIndex),
			}); err != nil {
				log.Fatal(err)
			}
		}
		nodes[k] = n
		fmt.Printf("node %d powered, resonance %.0f Hz\n", a.Addr, n.FrontEnd().TunedHz)
	}

	// 3. Run the concurrent exchange and decode the collision.
	proj, err := core.NewPaperProjector(cfg.SampleRate)
	if err != nil {
		log.Fatal(err)
	}
	res, err := core.RunConcurrent(cfg, nodes, proj)
	if err != nil {
		log.Fatalf("concurrent run: %v", err)
	}

	before := res.SINRBeforeDB()
	after := res.SINRAfterDB()
	fmt.Printf("\n%-22s %10s %10s\n", "", "node 1", "node 2")
	fmt.Printf("%-22s %9.1f dB %9.1f dB\n", "SINR before projection", before[0], before[1])
	fmt.Printf("%-22s %9.1f dB %9.1f dB\n", "SINR after projection", after[0], after[1])
	fmt.Printf("%-22s %10.3f %10.3f\n", "BER after projection", res.BERAfter[0], res.BERAfter[1])
	fmt.Printf("channel condition number: %.1f\n", res.Condition)

	gain, err := mac.ConcurrentThroughputGain(2, 1-(res.BERAfter[0]+res.BERAfter[1])/2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network throughput gain from concurrency: %.2f×\n", gain)
}
