// Oceanmonitor: a long-term ocean-condition monitoring station — the
// application the paper's introduction motivates ("sense ocean
// conditions (such as acidity, temperature ...) over extended periods of
// time"). A reader polls a battery-free sensor node round after round
// with ARQ, accumulating a time series and MAC-level statistics.
package main

import (
	"fmt"
	"log"

	"pab"
)

func main() {
	cfg := pab.DefaultLinkConfig()
	// Warmer, slightly acidic estuary water for variety.
	env := pab.Environment{PH: 7.8, TemperatureC: 17.5, PressureBar: 1.05}
	link, err := pab.NewLink(cfg, 0x21, 1000, env)
	if err != nil {
		log.Fatalf("deploy: %v", err)
	}
	if err := link.MustPowerUp(); err != nil {
		log.Fatalf("power up: %v", err)
	}
	fmt.Printf("station 0x21 online at %.0f bit/s (cap %.2f V)\n\n",
		link.NodeBitrate(), link.CapVoltage())

	// The MAC poller retries on CRC failure (§5.1b).
	poller, err := link.NewPoller(2)
	if err != nil {
		log.Fatal(err)
	}

	sensors := []pab.SensorID{pab.SensorPH, pab.SensorTemperature, pab.SensorPressure}
	fmt.Println("round  pH      temp_C  press_mbar")
	const rounds = 4
	for round := 1; round <= rounds; round++ {
		vals := map[pab.SensorID]float64{}
		for _, id := range sensors {
			if _, err := poller.ReadSensor(0x21, id); err != nil {
				log.Fatalf("round %d %v: %v", round, id, err)
			}
			// The poller returns the raw frame; decode via the link's
			// typed API for the value.
			r, err := link.ReadSensor(id)
			if err != nil {
				log.Fatalf("round %d %v: %v", round, id, err)
			}
			vals[id] = r.Value
		}
		fmt.Printf("%4d   %-7.2f %-7.2f %-7.1f\n",
			round, vals[pab.SensorPH], vals[pab.SensorTemperature], vals[pab.SensorPressure])
	}

	s := poller.Stats()
	fmt.Printf("\nMAC stats: %d queries, %d replies, %d retries, %.1f s airtime, goodput %.1f bit/s, delivery %.0f%%\n",
		s.Queries, s.Replies, s.Retries, s.Airtime, s.GoodputBps(), 100*s.DeliveryRate())
}
