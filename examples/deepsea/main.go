// Deepsea: the paper's §1 future-work hybrid — a battery-assisted
// backscatter node deployed beyond harvesting range. At 8 m down the
// Pool B corridor at modest drive, a battery-free node cannot charge its
// supercapacitor; a node carrying a small coin-cell-sized reserve boots
// from the battery, still communicates by pure backscatter (µW), and its
// reserve lasts orders of magnitude longer than an active modem's would.
package main

import (
	"fmt"
	"log"

	"pab"
	"pab/internal/baseline"
	"pab/internal/core"
	"pab/internal/frame"
	"pab/internal/node"
)

func main() {
	cfg := pab.DefaultLinkConfig()
	cfg.Tank = pab.PoolB()
	cfg.DriveV = 60 // too weak to harvest at range
	cfg.ProjectorPos = pab.Vec3{X: 0.6, Y: 0.4, Z: 0.5}
	cfg.HydrophonePos = pab.Vec3{X: 0.8, Y: 0.6, Z: 0.5}
	cfg.NodePos = pab.Vec3{X: 0.6, Y: 8.4, Z: 0.5}
	dist := cfg.ProjectorPos.Distance(cfg.NodePos)

	// 1. Battery-free node at this range: the link budget falls short.
	free, err := core.NewPaperNode(0x31, 200, pab.RoomTank())
	if err != nil {
		log.Fatal(err)
	}
	proj, err := core.NewPaperProjector(cfg.SampleRate)
	if err != nil {
		log.Fatal(err)
	}
	freeLink, err := core.NewLink(cfg, free, proj)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("node %.1f m down Pool B at %.0f V drive:\n", dist, cfg.DriveV)
	fmt.Printf("  battery-free: can power up? %v\n", freeLink.CanEverPowerUp())

	// 2. Battery-assisted node: a 2 kJ primary cell (a fraction of one
	// AA) carries the digital domain; communication stays backscatter.
	const batteryJ = 2000
	assisted, err := core.NewBatteryAssistedNode(0x32, 200, batteryJ, pab.RoomTank())
	if err != nil {
		log.Fatal(err)
	}
	proj2, err := core.NewPaperProjector(cfg.SampleRate)
	if err != nil {
		log.Fatal(err)
	}
	link, err := core.NewLink(cfg, assisted, proj2)
	if err != nil {
		log.Fatal(err)
	}
	if !link.PowerUp(5) {
		log.Fatal("battery-assisted node failed to boot")
	}
	fmt.Printf("  battery-assisted: booted from reserve (%.1f J remaining)\n",
		assisted.BatteryRemaining())

	res, err := link.RunQuery(frame.Query{Dest: 0x32, Command: frame.CmdReadSensor, Param: byte(frame.SensorTemperature)})
	if err != nil {
		log.Fatal(err)
	}
	if res.Decoded == nil || res.UplinkBER > 0 {
		fmt.Printf("  uplink not decodable at this range (BER %.2f) — move the hydrophone closer\n", res.UplinkBER)
		return
	}
	_, val, err := node.ParseSensorPayload(res.Decoded.Frame.Payload)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  temperature read over backscatter: %.2f °C at %.1f dB SNR\n", val, res.Decoded.SNRdB())

	// 3. Endurance: the reserve at the node's µW budget vs an active
	// modem's transmit budget.
	idleW := node.PaperMCU().Power(node.Idle, 0)
	fmt.Printf("\nendurance of the %.0f J reserve:\n", float64(batteryJ))
	fmt.Printf("  backscatter node at idle (%.0f µW): %.0f days\n",
		idleW*1e6, batteryJ/idleW/86400)
	modem := baseline.WHOIClassModem()
	fmt.Printf("  active modem at 1%% duty:          %.2f days\n",
		batteryJ/(modem.TransmitPowerW*0.01+modem.IdlePowerW*0.99)/86400)
}
