// Rangefinder: a deployment-planning study — how far can a battery-free
// node sit from the projector and still power up, as a function of
// amplifier drive, in each of the paper's pools (the Fig 9 question)?
// Useful when siting nodes for a real deployment: it reports the
// power-up margin at a chosen spot before committing hardware.
package main

import (
	"fmt"
	"log"

	"pab"
	"pab/internal/channel"
)

func main() {
	// Sweep a handful of drive voltages against both pools.
	fmt.Println("maximum power-up range (m) vs amplifier drive")
	fmt.Printf("%8s %12s %12s\n", "drive_v", "pool_a", "pool_b")
	for _, drive := range []float64{50, 100, 200, 350} {
		a := maxRange(pab.PoolA(), drive)
		b := maxRange(pab.PoolB(), drive)
		fmt.Printf("%8.0f %12.2f %12.2f\n", drive, a, b)
	}

	// Then check one concrete placement end to end: will a node at the
	// far end of Pool B actually boot and answer at 200 V?
	cfg := pab.DefaultLinkConfig()
	cfg.Tank = pab.PoolB()
	cfg.DriveV = 200
	cfg.ProjectorPos = pab.Vec3{X: 0.6, Y: 0.4, Z: 0.5}
	cfg.HydrophonePos = pab.Vec3{X: 0.8, Y: 0.6, Z: 0.5}
	cfg.NodePos = pab.Vec3{X: 0.6, Y: 7.5, Z: 0.5}
	link, err := pab.NewLink(cfg, 0x07, 200, pab.RoomTank())
	if err != nil {
		log.Fatal(err)
	}
	dist := cfg.ProjectorPos.Distance(cfg.NodePos)
	fmt.Printf("\nplacement check: node %.1f m down Pool B at %.0f V\n", dist, cfg.DriveV)
	if err := link.MustPowerUp(); err != nil {
		fmt.Printf("  node does NOT power up: %v\n", err)
		return
	}
	fmt.Printf("  node powered (cap %.2f V)\n", link.CapVoltage())
	r, err := link.ReadSensor(pab.SensorTemperature)
	if err != nil {
		fmt.Printf("  powered but uplink failed: %v\n", err)
		return
	}
	fmt.Printf("  temperature read back: %.2f °C at %.1f dB SNR\n", r.Value, r.SNRdB)
}

// maxRange scans node placements down the pool diagonal (0.25 m steps)
// and returns the farthest range whose steady-state link budget powers
// the node.
func maxRange(tank channel.Tank, driveV float64) float64 {
	projPos := pab.Vec3{X: 0.3, Y: 0.3, Z: tank.LZ / 2}
	far := pab.Vec3{X: tank.LX - 0.3, Y: tank.LY - 0.3, Z: tank.LZ / 2}
	limit := projPos.Distance(far)
	dirX := (far.X - projPos.X) / limit
	dirY := (far.Y - projPos.Y) / limit
	for d := limit; d >= 0.25; d -= 0.25 {
		cfg := pab.DefaultLinkConfig()
		cfg.Tank = tank
		cfg.DriveV = driveV
		cfg.ProjectorPos = projPos
		cfg.HydrophonePos = pab.Vec3{X: projPos.X + 0.2, Y: projPos.Y + 0.1, Z: projPos.Z}
		cfg.NodePos = pab.Vec3{X: projPos.X + dirX*d, Y: projPos.Y + dirY*d, Z: tank.LZ / 2}
		link, err := pab.NewLink(cfg, 0x01, 500, pab.RoomTank())
		if err != nil {
			continue
		}
		if link.Core().CanEverPowerUp() {
			return d
		}
	}
	return 0
}
