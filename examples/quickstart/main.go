// Quickstart: power up one battery-free PAB node in the paper's Pool A
// and read its pH sensor over backscatter — the smallest end-to-end use
// of the library.
package main

import (
	"fmt"
	"log"

	"pab"
)

func main() {
	// Deploy the paper's nominal setup: projector and hydrophone near
	// one end of Pool A, a battery-free node ~1 m away, 15 kHz carrier.
	link, err := pab.NewDefaultLink()
	if err != nil {
		log.Fatalf("deploy: %v", err)
	}

	// The node is battery-free: the projector's carrier must charge its
	// supercapacitor past the 2.5 V LDO threshold before anything runs.
	fmt.Println("charging the node's supercapacitor from the carrier...")
	if err := link.MustPowerUp(); err != nil {
		log.Fatalf("power up: %v", err)
	}
	fmt.Printf("node powered (cap at %.2f V)\n", link.CapVoltage())

	// One full interrogation cycle: PWM query downlink, FM0 backscatter
	// uplink, offline decode at the hydrophone.
	status, err := link.Ping()
	if err != nil {
		log.Fatalf("ping: %v", err)
	}
	fmt.Printf("node %#02x is alive (seq %d)\n", status.Source, status.Seq)

	// Read all three sensors of the paper's §6.5 demo.
	for _, id := range []pab.SensorID{pab.SensorPH, pab.SensorTemperature, pab.SensorPressure} {
		r, err := link.ReadSensor(id)
		if err != nil {
			log.Fatalf("read %v: %v", id, err)
		}
		fmt.Printf("%-12s = %8.2f   (uplink SNR %.1f dB)\n", r.Sensor, r.Value, r.SNRdB)
	}
}
