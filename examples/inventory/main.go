// Inventory: cold-start network bring-up — the reader does not know
// which nodes are in range. It first discovers them with the Gen2-style
// slotted-ALOHA inventory (the anti-collision protocol PAB inherits from
// its RFID lineage, §3.3.2), then assigns FDMA channels with the
// recto-piezo planner (§3.3.1), and finally polls the fleet end to end
// through the physical simulation.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"pab"
	"pab/internal/mac"
)

func main() {
	// A fleet of nine nodes has been dropped into the water; the reader
	// starts blind.
	population := []byte{0x11, 0x12, 0x13, 0x21, 0x22, 0x23, 0x31, 0x32, 0x33}

	// 1. Discovery: framed slotted ALOHA with adaptive Q.
	res, err := mac.Inventory(population, mac.DefaultInventoryConfig(), rand.New(rand.NewSource(42)))
	if err != nil {
		log.Fatalf("inventory: %v", err)
	}
	fmt.Printf("discovered %d nodes in %d rounds / %d slots (efficiency %.2f, optimum 1/e ≈ 0.37)\n",
		len(res.Identified), res.Rounds, res.Slots, res.Efficiency())
	fmt.Printf("  slots: %d singleton, %d collision, %d empty\n",
		res.Singletons, res.Collisions, res.Empties)

	// 2. Channel planning for the first three discovered nodes (the
	// 13.5–16.5 kHz band holds three recto-piezo channels at 1.5 kHz
	// spacing).
	roster := res.Identified[:3]
	infos := make([]mac.NodeInfo, len(roster))
	for i, addr := range roster {
		infos[i] = mac.NodeInfo{Addr: addr}
	}
	plan, err := mac.PlanFDMA(infos, 13500, 16500, 1500)
	if err != nil {
		log.Fatalf("plan: %v", err)
	}
	for _, a := range plan {
		fmt.Printf("node %#02x ← %.1f kHz\n", a.Addr, a.FrequencyHz/1000)
	}

	// 3. Deploy and poll through the physical simulation.
	cfg := pab.DefaultFDMANetworkConfig()
	for i := range cfg.Nodes {
		cfg.Nodes[i].Addr = roster[i]
	}
	net, err := pab.NewFDMANetwork(cfg, 2)
	if err != nil {
		log.Fatalf("deploy: %v", err)
	}
	fmt.Println("charging the fleet...")
	if err := net.PowerUpAll(120); err != nil {
		log.Fatalf("power up: %v", err)
	}
	replies := net.Round(func(addr byte) pab.Query {
		return pab.Query{Dest: addr, Command: 0x01} // ping
	})
	for _, addr := range roster {
		df := replies[addr]
		if df == nil {
			log.Fatalf("node %#02x did not reply", addr)
		}
		fmt.Printf("node %#02x alive (cap ≈ %.2f V)\n", addr, float64(df.Payload[1])*0.05)
	}
	s := net.Stats()
	fmt.Printf("\nround complete: %d replies, %.1f s airtime, goodput %.1f bit/s\n",
		s.Replies, s.Airtime, s.GoodputBps())
}
