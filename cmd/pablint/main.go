// Command pablint runs the PAB domain lint suite (internal/lint) over
// the module: determinism, floatcmp, unitsafety, telemetryhygiene,
// errdiscard, plus the flow-sensitive rules dimflow, seedflow and
// nanguard — the invariants the paper's reproducibility claims rest
// on, encoded as machine-checked rules.
//
//	go run ./cmd/pablint ./...            # whole module
//	go run ./cmd/pablint ./internal/...   # one subtree
//	go run ./cmd/pablint -rules determinism,floatcmp ./...
//	go run ./cmd/pablint -list            # show the rules
//	go run ./cmd/pablint -json ./... > findings.json
//	go run ./cmd/pablint -baseline findings.json ./...   # only NEW findings fail
//	go run ./cmd/pablint -dir internal/lint/testdata/src ./...  # fixtures
//
// With -json the machine-readable report goes to stdout and the
// human-readable findings to stderr (where CI problem matchers pick
// them up). With -baseline, findings already recorded in the given
// report are accepted; only new ones are printed and fail the run.
//
// Exit codes: 0 clean, 1 findings reported, 2 load/usage error.
// Suppress a finding with "//pablint:ignore <rule> <reason>" on (or
// directly above) the offending line; see DESIGN.md §11 and
// internal/lint/README.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pab/internal/lint"
)

const (
	exitClean    = 0
	exitFindings = 1
	exitError    = 2
)

func main() {
	os.Exit(realMain())
}

func realMain() int {
	rules := flag.String("rules", "", "comma-separated rule subset (default: all)")
	list := flag.Bool("list", false, "list available rules and exit")
	dir := flag.String("dir", ".", "module root to analyze (patterns resolve relative to it)")
	jsonOut := flag.Bool("json", false, "write a JSON report to stdout (findings still print to stderr)")
	baseline := flag.String("baseline", "", "JSON report of accepted findings; only new findings fail")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: pablint [-dir root] [-rules r1,r2] [-json] [-baseline file] [-list] [patterns]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	cfg := lint.DefaultConfig()
	analyzers := lint.Analyzers(cfg)
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		return exitClean
	}
	if *rules != "" {
		var keep []*lint.Analyzer
		for _, want := range strings.Split(*rules, ",") {
			want = strings.TrimSpace(want)
			found := false
			for _, a := range analyzers {
				if a.Name == want {
					keep = append(keep, a)
					found = true
				}
			}
			if !found {
				fmt.Fprintf(os.Stderr, "pablint: unknown rule %q (try -list)\n", want)
				return exitError
			}
		}
		analyzers = keep
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := lint.NewModuleLoader(*dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pablint: %v\n", err)
		return exitError
	}
	seen := make(map[string]bool)
	var pkgs []*lint.Package
	for _, pat := range patterns {
		paths, err := loader.ModulePackages(pat)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pablint: %v\n", err)
			return exitError
		}
		if len(paths) == 0 {
			fmt.Fprintf(os.Stderr, "pablint: no packages match %q\n", pat)
			return exitError
		}
		for _, p := range paths {
			if seen[p] {
				continue
			}
			seen[p] = true
			pkg, err := loader.Load(p)
			if err != nil {
				fmt.Fprintf(os.Stderr, "pablint: %v\n", err)
				return exitError
			}
			pkgs = append(pkgs, pkg)
		}
	}

	prog := &lint.Program{Pkgs: pkgs, Loader: loader}
	all := lint.RunAll(prog, cfg, analyzers)

	// The failing set: active findings, minus the baseline if given.
	failing := make([]lint.Finding, 0, len(all))
	for _, f := range all {
		if !f.Suppressed {
			failing = append(failing, f)
		}
	}
	if *baseline != "" {
		base, err := lint.LoadBaseline(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pablint: %v\n", err)
			return exitError
		}
		failing = base.FilterNew(loader.ModRoot, all)
	}

	// Human-readable findings: stdout normally, stderr under -json so
	// the report alone occupies stdout.
	text := os.Stdout
	if *jsonOut {
		text = os.Stderr
	}
	for _, f := range failing {
		fmt.Fprintln(text, f)
	}
	if *jsonOut {
		report := lint.NewJSONReport(loader.ModPath, loader.ModRoot, all)
		if err := report.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "pablint: writing JSON: %v\n", err)
			return exitError
		}
	}
	if len(failing) > 0 {
		fmt.Fprintf(os.Stderr, "pablint: %d finding(s) in %d package(s)\n", len(failing), len(pkgs))
		return exitFindings
	}
	return exitClean
}
