// Command pablint runs the PAB domain lint suite (internal/lint) over
// the module: the syntactic tier (determinism, floatcmp, unitsafety,
// telemetryhygiene, errdiscard), the flow tier (dimflow, seedflow,
// nanguard), the concurrency tier (lockdiscipline, goroleak,
// chanproto) and the hot-path performance tier (allocloop, boxiface,
// invhoist) — the invariants the paper's reproducibility and
// throughput claims rest on, encoded as machine-checked rules.
//
//	go run ./cmd/pablint ./...            # whole module
//	go run ./cmd/pablint ./internal/...   # one subtree
//	go run ./cmd/pablint -only determinism,floatcmp ./...
//	go run ./cmd/pablint -exclude lockdiscipline ./...
//	go run ./cmd/pablint -list            # show the rules
//	go run ./cmd/pablint -json ./... > findings.json
//	go run ./cmd/pablint -baseline findings.json ./...   # only NEW findings fail
//	go run ./cmd/pablint -dir internal/lint/testdata/src ./...  # fixtures
//
// With -json the machine-readable report goes to stdout and the
// human-readable findings to stderr (where CI problem matchers pick
// them up). With -baseline, findings already recorded in the given
// report are accepted; only new ones are printed and fail the run.
//
// Exit codes: 0 clean, 1 findings reported, 2 load/usage error.
// Suppress a finding with "//pablint:ignore <rule> <reason>" on (or
// directly above) the offending line; see DESIGN.md §11 and
// internal/lint/README.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pab/internal/lint"
)

const (
	exitClean    = 0
	exitFindings = 1
	exitError    = 2
)

func main() {
	os.Exit(realMain())
}

func realMain() int {
	rules := flag.String("rules", "", "alias for -only (kept for compatibility)")
	only := flag.String("only", "", "comma-separated rule subset to run (default: all)")
	exclude := flag.String("exclude", "", "comma-separated rules to skip")
	list := flag.Bool("list", false, "list available rules and exit")
	dir := flag.String("dir", ".", "module root to analyze (patterns resolve relative to it)")
	jsonOut := flag.Bool("json", false, "write a JSON report to stdout (findings still print to stderr)")
	baseline := flag.String("baseline", "", "JSON report of accepted findings; only new findings fail")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: pablint [-dir root] [-only r1,r2] [-exclude r1,r2] [-json] [-baseline file] [-list] [patterns]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	cfg := lint.DefaultConfig()
	analyzers := lint.Analyzers(cfg)
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-18s %-12s %s\n", a.Name, a.Tier, a.Doc)
			targets := cfg.TargetsFor(a.Name)
			if targets == nil {
				fmt.Printf("%-18s %-12s targets: module-wide\n", "", "")
				continue
			}
			fmt.Printf("%-18s %-12s targets: %s\n", "", "", strings.Join(targets, ", "))
		}
		return exitClean
	}
	if *only != "" && *rules != "" && *only != *rules {
		fmt.Fprintln(os.Stderr, "pablint: -only and -rules are aliases; give just one")
		return exitError
	}
	keepSet := *only
	if keepSet == "" {
		keepSet = *rules
	}
	analyzers, err := selectAnalyzers(analyzers, keepSet, *exclude)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pablint: %v\n", err)
		return exitError
	}
	if len(analyzers) == 0 {
		fmt.Fprintln(os.Stderr, "pablint: rule selection left nothing to run")
		return exitError
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := lint.NewModuleLoader(*dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pablint: %v\n", err)
		return exitError
	}
	seen := make(map[string]bool)
	var pkgs []*lint.Package
	for _, pat := range patterns {
		paths, err := loader.ModulePackages(pat)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pablint: %v\n", err)
			return exitError
		}
		if len(paths) == 0 {
			fmt.Fprintf(os.Stderr, "pablint: no packages match %q\n", pat)
			return exitError
		}
		for _, p := range paths {
			if seen[p] {
				continue
			}
			seen[p] = true
			pkg, err := loader.Load(p)
			if err != nil {
				fmt.Fprintf(os.Stderr, "pablint: %v\n", err)
				return exitError
			}
			pkgs = append(pkgs, pkg)
		}
	}

	prog := &lint.Program{Pkgs: pkgs, Loader: loader}
	all := lint.RunAll(prog, cfg, analyzers)

	// The failing set: active findings, minus the baseline if given.
	failing := make([]lint.Finding, 0, len(all))
	for _, f := range all {
		if !f.Suppressed {
			failing = append(failing, f)
		}
	}
	if *baseline != "" {
		base, err := lint.LoadBaseline(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pablint: %v\n", err)
			return exitError
		}
		failing = base.FilterNew(loader.ModRoot, all)
	}

	// Human-readable findings: stdout normally, stderr under -json so
	// the report alone occupies stdout. Two rules reaching different
	// conclusions about one position print as one line each, but one
	// rule firing twice at a position (e.g. through two analysis paths)
	// is a single diagnostic.
	failing = lint.DedupeByPosRule(failing)
	text := os.Stdout
	if *jsonOut {
		text = os.Stderr
	}
	for _, f := range failing {
		fmt.Fprintln(text, f)
	}
	if *jsonOut {
		report := lint.NewJSONReport(loader.ModPath, loader.ModRoot, all)
		if err := report.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "pablint: writing JSON: %v\n", err)
			return exitError
		}
	}
	if len(failing) > 0 {
		fmt.Fprintf(os.Stderr, "pablint: %d finding(s) in %d package(s)\n", len(failing), len(pkgs))
		return exitFindings
	}
	return exitClean
}

// selectAnalyzers applies -only/-exclude. Every name in either list
// must exist, so a typo fails loudly instead of silently running (or
// skipping) the wrong rules.
func selectAnalyzers(all []*lint.Analyzer, only, exclude string) ([]*lint.Analyzer, error) {
	byName := make(map[string]*lint.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	parse := func(spec string) ([]string, error) {
		if spec == "" {
			return nil, nil
		}
		var names []string
		for _, n := range strings.Split(spec, ",") {
			n = strings.TrimSpace(n)
			if n == "" {
				continue
			}
			if byName[n] == nil {
				return nil, fmt.Errorf("unknown rule %q (try -list)", n)
			}
			names = append(names, n)
		}
		return names, nil
	}
	onlyNames, err := parse(only)
	if err != nil {
		return nil, err
	}
	excludeNames, err := parse(exclude)
	if err != nil {
		return nil, err
	}
	keep := all
	if len(onlyNames) > 0 {
		keep = keep[:0:0]
		for _, n := range onlyNames {
			keep = append(keep, byName[n])
		}
	}
	if len(excludeNames) > 0 {
		skip := make(map[string]bool, len(excludeNames))
		for _, n := range excludeNames {
			skip[n] = true
		}
		var filtered []*lint.Analyzer
		for _, a := range keep {
			if !skip[a.Name] {
				filtered = append(filtered, a)
			}
		}
		keep = filtered
	}
	return keep, nil
}
