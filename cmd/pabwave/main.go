// Command pabwave exports PAB waveforms as 16-bit mono WAV files — the
// same currency the paper's setup worked in (audio amplifier in,
// Audacity out, §5.1). Useful for inspecting the PWM query structure,
// the backscatter modulation, or even driving real audio hardware.
//
//	pabwave -kind query   -o query.wav      # a PWM downlink query
//	pabwave -kind exchange -o exchange.wav  # full hydrophone recording
//	pabwave -kind trace   -o trace.wav      # the Fig 2 CW + toggling trace
//
// Like the other pab binaries it accepts -telemetry out.json (JSON
// snapshot of the exchange's stage spans and metrics on exit) and
// -debug-addr :6060 (live /metrics and /debug/pprof).
package main

import (
	"flag"
	"fmt"
	"os"

	"pab/internal/audio"
	"pab/internal/cli"
	"pab/internal/core"
	"pab/internal/frame"
	"pab/internal/sensors"
)

func main() {
	os.Exit(realMain())
}

func realMain() int {
	kind := flag.String("kind", "exchange", "waveform: query | exchange | trace")
	out := flag.String("o", "pab.wav", "output WAV path")
	bitrate := flag.Float64("bitrate", 500, "backscatter bitrate (bit/s)")
	var tf cli.TelemetryFlags
	tf.Register()
	var rf cli.RunFlags
	rf.Register()
	flag.Parse()
	switch *kind {
	case "query", "exchange", "trace":
	default:
		fmt.Fprintf(os.Stderr, "pabwave: unknown kind %q (query | exchange | trace)\n", *kind)
		return cli.Usage()
	}
	if *out == "" || flag.NArg() > 0 || *bitrate <= 0 {
		return cli.Usage()
	}
	if code := tf.Start("pabwave"); code != cli.ExitOK {
		return code
	}
	ctx, stop := rf.Context()
	defer stop()
	code := cli.Exit("pabwave", cli.RunWithContext(ctx, func() error {
		return run(*kind, *out, *bitrate)
	}))
	return tf.Finish("pabwave", code)
}

func run(kind, out string, bitrate float64) error {
	samples, fs, err := generate(kind, bitrate)
	if err != nil {
		return err
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := audio.WriteWAV(f, int(fs), samples, true); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d samples at %.0f Hz (%.2f s)\n",
		out, len(samples), fs, float64(len(samples))/fs)
	return nil
}

func generate(kind string, bitrate float64) ([]float64, float64, error) {
	cfg := core.DefaultLinkConfig()
	n, err := core.NewPaperNode(0x01, bitrate, sensors.RoomTank())
	if err != nil {
		return nil, 0, err
	}
	proj, err := core.NewPaperProjector(cfg.SampleRate)
	if err != nil {
		return nil, 0, err
	}
	switch kind {
	case "query":
		q := frame.Query{Dest: 0x01, Command: frame.CmdReadSensor, Param: byte(frame.SensorPH)}
		x, err := proj.Query(q, cfg.DriveV, cfg.CarrierHz, cfg.PWMUnit, 0.1)
		return x, cfg.SampleRate, err
	case "exchange":
		link, err := core.NewLink(cfg, n, proj)
		if err != nil {
			return nil, 0, err
		}
		if err := link.EnsurePowered(120); err != nil {
			return nil, 0, err
		}
		res, err := link.RunQuery(frame.Query{Dest: 0x01, Command: frame.CmdPing})
		if err != nil {
			return nil, 0, err
		}
		return res.Recording, cfg.SampleRate, nil
	case "trace":
		link, err := core.NewLink(cfg, n, proj)
		if err != nil {
			return nil, 0, err
		}
		tr, err := link.RunTrace(1.6, 0.2, 0.8, 5)
		if err != nil {
			return nil, 0, err
		}
		return tr.Amplitude, tr.SampleRate, nil
	default:
		return nil, 0, fmt.Errorf("unknown kind %q (query | exchange | trace)", kind)
	}
}
