package main

// The -stream workload measures the streaming receiver as a service:
// N concurrent synthetic streams through a streamd.Hub, reporting
// streams/sec, per-stream resident bytes, and decode latency
// percentiles. The sweep runs at N and again at 2N so the report can
// show (and -stream-check can gate) that per-stream memory stays flat
// as the stream count doubles — the bounded-window guarantee.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"pab/internal/cli"
	"pab/internal/frame"
	"pab/internal/stream"
	"pab/internal/stream/streamd"
)

// realStreamMain is the -stream entry point: sweep, report, and (with
// a baseline) gate.
func realStreamMain(out string, streams int, check string, maxRegress float64) int {
	rep, err := runStream(streams)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pabbench: stream: %v\n", err)
		return cli.ExitRuntime
	}
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "pabbench: %v\n", err)
		return cli.ExitRuntime
	}
	b = append(b, '\n')
	if out == "" {
		os.Stdout.Write(b)
	} else if err := os.WriteFile(out, b, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "pabbench: %v\n", err)
		return cli.ExitRuntime
	} else {
		fmt.Fprintf(os.Stderr, "pabbench: wrote %s\n", out)
	}

	var base *StreamReport
	if check != "" {
		base, err = readStreamReport(check)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pabbench: baseline: %v\n", err)
			return cli.ExitRuntime
		}
	}
	problems := rep.CheckStream(base, maxRegress)
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintf(os.Stderr, "pabbench: REGRESSION: %s\n", p)
		}
		return cli.ExitRuntime
	}
	if check != "" {
		fmt.Printf("ok vs %s (budget %.1fx, flatness %.2fx)\n", check, maxRegress, rep.FlatnessX)
	}
	return cli.ExitOK
}

func readStreamReport(path string) (*StreamReport, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep StreamReport
	if err := json.Unmarshal(b, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// streamLatencyFloorMS keeps the -stream-check latency gate from
// firing on sub-floor noise: a decode that finishes in under this many
// milliseconds is fast enough regardless of the baseline ratio.
const streamLatencyFloorMS = 5

// StreamReport is the BENCH_stream.json schema.
type StreamReport struct {
	Streams int         `json:"streams"`
	Runs    []StreamRun `json:"runs"` // at N and 2N
	// FlatnessX is bytes_per_stream at 2N over bytes_per_stream at N.
	// Flat per-stream memory keeps it near 1; it is gated at 1.5.
	FlatnessX float64 `json:"flatness_x"`
}

// StreamRun is one concurrency level of the sweep.
type StreamRun struct {
	Streams        int     `json:"streams"`
	WallS          float64 `json:"wall_s"`
	StreamsPerSec  float64 `json:"streams_per_sec"`
	FramesDecoded  int     `json:"frames_decoded"`
	BytesPerStream float64 `json:"bytes_per_stream"`
	P50DecodeMS    float64 `json:"p50_decode_ms"`
	P99DecodeMS    float64 `json:"p99_decode_ms"`
}

// streamFlatnessBudget is the allowed growth in per-stream resident
// bytes when the stream count doubles.
const streamFlatnessBudget = 1.5

// benchSynthCfg is the stream workload: 8 kHz, 2 kHz carrier,
// 500 bit/s (16 samples per bit) — small enough that thousands of
// concurrent decode windows fit comfortably in memory.
func benchSynthCfg() stream.SynthConfig {
	return stream.SynthConfig{
		SampleRate:  8000,
		CarrierHz:   2000,
		BitrateBps:  500,
		LeadSamples: 1200,
		TailSamples: 600,
	}
}

// runStream sweeps n and 2n concurrent streams and assembles the
// report.
func runStream(n int) (*StreamReport, error) {
	rep := &StreamReport{Streams: n}
	for _, count := range []int{n, 2 * n} {
		run, err := benchStreams(count)
		if err != nil {
			return nil, fmt.Errorf("%d streams: %w", count, err)
		}
		rep.Runs = append(rep.Runs, *run)
	}
	if rep.Runs[0].BytesPerStream > 0 {
		rep.FlatnessX = rep.Runs[1].BytesPerStream / rep.Runs[0].BytesPerStream
	}
	return rep, nil
}

// benchStreams runs count concurrent streams, each decoding one
// synthetic packet, and measures throughput, per-stream resident
// bytes, and decode latency.
//
// Each stream feeds in two phases. Phase 1 delivers everything except
// the packet tail, so every decode window is parked holding a
// packet's worth of carried state; heap is measured there (after a
// GC), which is exactly the daemon's steady-state cost per client.
// Phase 2 delivers the tail; the frame surfaces during that write (or
// the explicit flush), and its wall time is the decode latency — how
// long a client waits for the frame row once the closing samples
// arrive.
func benchStreams(count int) (*StreamRun, error) {
	sc := benchSynthCfg()
	rec, err := stream.SynthesizeRecording(sc, frame.DataFrame{
		Source: 0x42, Seq: 1, Payload: []byte("bench-01"),
	})
	if err != nil {
		return nil, err
	}
	// Just short of the packet's last sample, so the window buffers
	// nearly the whole packet without reaching the decode trigger
	// (candidate start + max packet extent); the frame then surfaces
	// in the first phase-2 write.
	cut := len(rec) - sc.TailSamples - 64

	hub := streamd.NewHub(streamd.Config{
		Decoder: stream.Config{
			SampleRate:      sc.SampleRate,
			CarrierHz:       sc.CarrierHz,
			BitrateBps:      sc.BitrateBps,
			BlockSize:       256,
			MaxPayloadBytes: 8,
		},
		MaxStreams: count + 8,
	})
	drained := false
	drain := func() error {
		if drained {
			return nil
		}
		drained = true
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		return hub.Drain(ctx)
	}
	defer drain()

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	sessions := make([]*streamd.Session, count)
	errs := make(chan error, count)
	var wg sync.WaitGroup

	// Phase 1: open every stream and park a full packet in its window.
	phase1 := time.Now()
	for i := range sessions {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := hub.Open(streamd.FormatF64LE, nil)
			if err != nil {
				errs <- err
				return
			}
			sessions[i] = s
			early, err := s.WriteSamples(rec[:cut])
			if err != nil {
				errs <- err
			} else if len(early) > 0 {
				errs <- fmt.Errorf("frame decoded before the packet tail was delivered; lower cut")
			}
		}(i)
	}
	wg.Wait()
	wall := time.Since(phase1)
	select {
	case err := <-errs:
		return nil, err
	default:
	}

	runtime.GC()
	var loaded runtime.MemStats
	runtime.ReadMemStats(&loaded)
	perStream := 0.0
	if loaded.HeapAlloc > before.HeapAlloc {
		perStream = float64(loaded.HeapAlloc-before.HeapAlloc) / float64(count)
	}

	// Phase 2: deliver the tails; time each stream's first frame.
	latencies := make([]float64, count)
	frames := make([]int, count)
	phase2 := time.Now()
	for i, s := range sessions {
		wg.Add(1)
		go func(i int, s *streamd.Session) {
			defer wg.Done()
			t0 := time.Now()
			got, err := s.WriteSamples(rec[cut:])
			if err != nil {
				errs <- err
				return
			}
			if len(got) == 0 {
				flushed, ferr := s.Flush()
				if ferr != nil {
					errs <- ferr
					return
				}
				got = flushed
			}
			latencies[i] = float64(time.Since(t0)) / float64(time.Millisecond)
			frames[i] = len(got)
		}(i, s)
	}
	wg.Wait()
	wall += time.Since(phase2)
	select {
	case err := <-errs:
		return nil, err
	default:
	}

	decoded := 0
	for i, n := range frames {
		if n != 1 {
			return nil, fmt.Errorf("stream %d decoded %d frames, want 1", i, n)
		}
		decoded += n
	}
	for _, s := range sessions {
		if _, err := hub.Close(s.ID); err != nil {
			return nil, err
		}
	}
	if err := drain(); err != nil {
		return nil, err
	}

	return &StreamRun{
		Streams:        count,
		WallS:          wall.Seconds(),
		StreamsPerSec:  float64(count) / wall.Seconds(),
		FramesDecoded:  decoded,
		BytesPerStream: perStream,
		P50DecodeMS:    percentile(latencies, 50),
		P99DecodeMS:    percentile(latencies, 99),
	}, nil
}

// CheckStream gates a fresh report against a baseline, mirroring
// pabprof -check: every problem is one line, and any problem fails
// the run. The internal invariants (every stream decodes, memory
// flatness) are checked even without a baseline.
func (r *StreamReport) CheckStream(base *StreamReport, maxRegress float64) []string {
	var problems []string
	for _, run := range r.Runs {
		if run.FramesDecoded != run.Streams {
			problems = append(problems,
				fmt.Sprintf("%d streams: decoded %d frames, want one per stream", run.Streams, run.FramesDecoded))
		}
	}
	if r.FlatnessX > streamFlatnessBudget {
		problems = append(problems,
			fmt.Sprintf("per-stream bytes grew %.2fx when stream count doubled (budget %.1fx)",
				r.FlatnessX, streamFlatnessBudget))
	}
	if base == nil {
		return problems
	}
	// Runs pair by position (the N run, then the 2N run) so a CI sweep
	// can gate at a smaller -streams than the committed baseline:
	// bytes/stream and decode latency are per-stream quantities and
	// comparable across counts.
	for i, b := range base.Runs {
		if i >= len(r.Runs) {
			problems = append(problems,
				fmt.Sprintf("baseline has %d runs, this report %d", len(base.Runs), len(r.Runs)))
			break
		}
		cur := &r.Runs[i]
		if b.StreamsPerSec > 0 && cur.StreamsPerSec < b.StreamsPerSec/maxRegress {
			problems = append(problems,
				fmt.Sprintf("run %d (%d streams): %.1f streams/sec vs baseline %.1f (budget %.1fx)",
					i, cur.Streams, cur.StreamsPerSec, b.StreamsPerSec, maxRegress))
		}
		if b.BytesPerStream > 0 && cur.BytesPerStream > b.BytesPerStream*maxRegress {
			problems = append(problems,
				fmt.Sprintf("run %d (%d streams): %.0f bytes/stream vs baseline %.0f (budget %.1fx)",
					i, cur.Streams, cur.BytesPerStream, b.BytesPerStream, maxRegress))
		}
		if cur.P50DecodeMS > streamLatencyFloorMS && b.P50DecodeMS > 0 &&
			cur.P50DecodeMS > b.P50DecodeMS*maxRegress {
			problems = append(problems,
				fmt.Sprintf("run %d (%d streams): p50 decode %.2fms vs baseline %.2fms (budget %.1fx)",
					i, cur.Streams, cur.P50DecodeMS, b.P50DecodeMS, maxRegress))
		}
	}
	return problems
}
