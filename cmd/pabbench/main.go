// Command pabbench measures the pabd scheduler: job throughput and
// latency percentiles for a 100-job scenario sweep, the worker-pool
// speedup over serial execution, and the cache-hit replay rate.
//
// Usage:
//
//	pabbench                      # print BENCH_pabd.json to stdout
//	pabbench -out BENCH_pabd.json # write the report to a file
//	pabbench -jobs 100 -workers 8 # sweep size and parallel pool size
//
// Two workloads run:
//
//   - scheduler: fixed-service-time jobs (pure scheduling overhead plus
//     a known per-job sleep), executed serially and then on the worker
//     pool. The speedup_x ratio isolates the scheduler's concurrency
//     from job physics — fixed service time makes the ideal ratio equal
//     to the worker count even on a single CPU.
//   - physics: real chaos scenarios through scenario.Run, reporting
//     end-to-end ops/sec and p50/p99 job latency, then a full replay of
//     the same sweep to measure content-addressed cache throughput.
//
// With -wal a third workload repeats the physics sweep on a WAL-backed
// durable store (DESIGN.md §14) in a temp directory, reporting the
// durability overhead versus the in-memory sweep, the cost of a
// restart replay, and the raw WAL counters. -wal-fsync picks the
// fsync policy being measured (interval by default; always is the
// power-loss-safe worst case).
//
// -stream switches to the streaming-receiver workload instead: N
// concurrent synthetic streams through a streamd hub (and again at
// 2N), reporting streams/sec, per-stream resident bytes, and decode
// latency percentiles as BENCH_stream.json. -stream-check gates a
// fresh run against a committed baseline the way pabprof -check does:
//
//	pabbench -stream -streams 1000 -out BENCH_stream.json
//	pabbench -stream -streams 200 -stream-check BENCH_stream.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"pab/internal/cli"
	"pab/internal/scenario"
	"pab/internal/sim"
	"pab/internal/telemetry"
	"pab/internal/wal"
)

func main() {
	os.Exit(realMain())
}

func realMain() int {
	out := flag.String("out", "", "write the JSON report here (default stdout)")
	jobs := flag.Int("jobs", 100, "jobs per workload sweep")
	workers := flag.Int("workers", 8, "parallel worker-pool size")
	service := flag.Duration("service", 20*time.Millisecond, "fixed service time per scheduler-workload job")
	durable := flag.Bool("wal", false, "also sweep against a WAL-backed durable store and report the overhead")
	walFsync := flag.String("wal-fsync", "interval", "WAL fsync policy for the durable sweep: always, interval or never")
	streamMode := flag.Bool("stream", false, "benchmark the streaming receiver hub instead of the scheduler")
	streams := flag.Int("streams", 1000, "concurrent streams for -stream (also swept at double this)")
	streamCheck := flag.String("stream-check", "", "baseline BENCH_stream.json to gate against (exit 1 on regression)")
	streamMaxRegress := flag.Float64("stream-max-regress", 2, "max allowed regression factor in -stream-check mode")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "pabbench: unexpected arguments: %v\n", flag.Args())
		return cli.Usage()
	}
	if *jobs < 1 || *workers < 1 {
		fmt.Fprintln(os.Stderr, "pabbench: -jobs and -workers must be positive")
		return cli.Usage()
	}
	if *streamMode {
		if *streams < 1 {
			fmt.Fprintln(os.Stderr, "pabbench: -streams must be positive")
			return cli.Usage()
		}
		return realStreamMain(*out, *streams, *streamCheck, *streamMaxRegress)
	}
	fsync, err := wal.ParseFsyncPolicy(*walFsync)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pabbench: %v\n", err)
		return cli.Usage()
	}

	report, err := run(*jobs, *workers, *service, *durable, fsync, *walFsync)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pabbench: %v\n", err)
		return cli.ExitRuntime
	}
	b, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "pabbench: %v\n", err)
		return cli.ExitRuntime
	}
	b = append(b, '\n')
	if *out == "" {
		os.Stdout.Write(b)
		return cli.ExitOK
	}
	if err := os.WriteFile(*out, b, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "pabbench: %v\n", err)
		return cli.ExitRuntime
	}
	fmt.Fprintf(os.Stderr, "pabbench: wrote %s\n", *out)
	return cli.ExitOK
}

// Report is the BENCH_pabd.json schema.
type Report struct {
	Jobs      int              `json:"jobs"`
	Workers   int              `json:"workers"`
	Scheduler SchedulerResult  `json:"scheduler"`
	Physics   PhysicsResult    `json:"physics"`
	CacheHits CacheReplayStats `json:"cache_replay"`
	Durable   *DurableResult   `json:"durable,omitempty"`
}

// DurableResult measures the physics sweep on a WAL-backed store: the
// write-path overhead versus the in-memory sweep, the cost of a
// restart replay, and the raw WAL counters behind both.
type DurableResult struct {
	Fsync           string  `json:"fsync"`
	WallS           float64 `json:"wall_s"`
	OpsPerSec       float64 `json:"ops_per_sec"`
	OverheadPct     float64 `json:"overhead_pct"`
	ReplayWallS     float64 `json:"replay_wall_s"`
	ReplayedResults int64   `json:"replayed_results"`
	WALAppends      uint64  `json:"wal_appends"`
	WALFsyncs       uint64  `json:"wal_fsyncs"`
	WALSizeBytes    int64   `json:"wal_size_bytes"`
}

// SchedulerResult is the fixed-service-time speedup measurement.
type SchedulerResult struct {
	ServiceTimeMS float64 `json:"service_time_ms"`
	SerialS       float64 `json:"serial_s"`
	ParallelS     float64 `json:"parallel_s"`
	SpeedupX      float64 `json:"speedup_x"`
}

// PhysicsResult is the real-scenario throughput measurement.
type PhysicsResult struct {
	WallS      float64 `json:"wall_s"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	P50JobMS   float64 `json:"p50_job_ms"`
	P99JobMS   float64 `json:"p99_job_ms"`
	AllDone    bool    `json:"all_done"`
	CacheReady int     `json:"cache_entries"`
}

// CacheReplayStats measures resubmitting the identical sweep.
type CacheReplayStats struct {
	WallS     float64 `json:"wall_s"`
	OpsPerSec float64 `json:"ops_per_sec"`
	Hits      int64   `json:"hits"`
}

func run(jobs, workers int, service time.Duration, durable bool, fsync wal.FsyncPolicy, fsyncName string) (*Report, error) {
	rep := &Report{Jobs: jobs, Workers: workers}

	// --- scheduler workload: fixed service time, serial vs pool ---
	sleeper := func(ctx context.Context, _ scenario.Spec) (json.RawMessage, error) {
		select {
		case <-time.After(service):
			return json.RawMessage(`{}`), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	serial, _, err := timedSweep(1, jobs, sleeper)
	if err != nil {
		return nil, fmt.Errorf("serial sweep: %w", err)
	}
	parallel, _, err := timedSweep(workers, jobs, sleeper)
	if err != nil {
		return nil, fmt.Errorf("parallel sweep: %w", err)
	}
	rep.Scheduler = SchedulerResult{
		ServiceTimeMS: float64(service) / float64(time.Millisecond),
		SerialS:       serial.Seconds(),
		ParallelS:     parallel.Seconds(),
		SpeedupX:      serial.Seconds() / parallel.Seconds(),
	}

	// --- physics workload: real scenarios, latency percentiles ---
	reg := telemetry.NewRegistry()
	sched, err := sim.New(sim.Config{
		Workers: workers, QueueDepth: jobs, CacheEntries: jobs, Registry: reg,
	}, sim.ScenarioRunner)
	if err != nil {
		return nil, err
	}
	defer shutdown(sched)
	specs := chaosSweep(jobs)
	start := time.Now()
	views, err := runSweep(sched, specs)
	if err != nil {
		return nil, err
	}
	wall := time.Since(start)
	var latencies []float64
	allDone := true
	for _, v := range views {
		if v.State != sim.JobDone {
			allDone = false
			continue
		}
		latencies = append(latencies, (v.QueueWaitS+v.RunS)*1000)
	}
	rep.Physics = PhysicsResult{
		WallS:      wall.Seconds(),
		OpsPerSec:  float64(jobs) / wall.Seconds(),
		P50JobMS:   percentile(latencies, 50),
		P99JobMS:   percentile(latencies, 99),
		AllDone:    allDone,
		CacheReady: sched.Stats().CacheSize,
	}

	// --- replay: the identical sweep against a warm cache ---
	start = time.Now()
	if _, err := runSweep(sched, specs); err != nil {
		return nil, err
	}
	replay := time.Since(start)
	rep.CacheHits = CacheReplayStats{
		WallS:     replay.Seconds(),
		OpsPerSec: float64(jobs) / replay.Seconds(),
		Hits:      reg.Counter(telemetry.MSimCacheHitsTotal).Value(),
	}

	if durable {
		dur, err := durableSweep(jobs, workers, fsync, fsyncName, rep.Physics.WallS)
		if err != nil {
			return nil, fmt.Errorf("durable sweep: %w", err)
		}
		rep.Durable = dur
	}
	return rep, nil
}

// durableSweep reruns the physics sweep on a WAL-backed store in a
// temp directory, then restarts the store to time a cold replay of
// the finished batch. memWallS is the in-memory sweep's wall time,
// the baseline for overhead_pct.
func durableSweep(jobs, workers int, fsync wal.FsyncPolicy, fsyncName string, memWallS float64) (*DurableResult, error) {
	dir, err := os.MkdirTemp("", "pabbench-wal-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	store, err := sim.OpenStore(wal.Options{Dir: dir, Fsync: fsync})
	if err != nil {
		return nil, err
	}
	sched, err := sim.New(sim.Config{
		Workers: workers, QueueDepth: jobs, CacheEntries: jobs,
		Registry: telemetry.NewRegistry(), Store: store,
	}, sim.ScenarioRunner)
	if err != nil {
		store.Close()
		return nil, err
	}
	start := time.Now()
	if _, err := runSweep(sched, chaosSweep(jobs)); err != nil {
		shutdown(sched)
		store.Close()
		return nil, err
	}
	wall := time.Since(start)
	var walStats wal.Stats
	if st := sched.Stats().WAL; st != nil {
		walStats = *st
	}
	shutdown(sched)
	if err := store.Close(); err != nil {
		return nil, err
	}

	// Restart: reopen the log and let the scheduler replay the whole
	// finished batch into its result cache.
	start = time.Now()
	store, err = sim.OpenStore(wal.Options{Dir: dir, Fsync: fsync})
	if err != nil {
		return nil, err
	}
	reg := telemetry.NewRegistry()
	sched, err = sim.New(sim.Config{
		Workers: workers, QueueDepth: jobs, CacheEntries: jobs,
		Registry: reg, Store: store,
	}, sim.ScenarioRunner)
	if err != nil {
		store.Close()
		return nil, err
	}
	replayWall := time.Since(start)
	replayed := reg.Counter(telemetry.MSimWalReplayedResultsTotal).Value()
	shutdown(sched)
	if err := store.Close(); err != nil {
		return nil, err
	}

	return &DurableResult{
		Fsync:           fsyncName,
		WallS:           wall.Seconds(),
		OpsPerSec:       float64(jobs) / wall.Seconds(),
		OverheadPct:     (wall.Seconds() - memWallS) / memWallS * 100,
		ReplayWallS:     replayWall.Seconds(),
		ReplayedResults: replayed,
		WALAppends:      walStats.Appends,
		WALFsyncs:       walStats.Fsyncs,
		WALSizeBytes:    walStats.TotalBytes,
	}, nil
}

// chaosSweep builds jobs unique cheap chaos scenarios (a seed sweep —
// the shape of a confidence-interval batch).
func chaosSweep(jobs int) []scenario.Spec {
	specs := make([]scenario.Spec, jobs)
	for i := range specs {
		specs[i] = scenario.Spec{
			Name: fmt.Sprintf("bench[seed=%d]", i+1),
			Kind: scenario.KindChaos,
			Seed: int64(i + 1),
			MAC:  scenario.MACSpec{DurationS: 30},
		}
	}
	return specs
}

// runSweep submits every spec and waits for all of them, returning the
// final views in input order.
func runSweep(sched *sim.Scheduler, specs []scenario.Spec) ([]sim.JobView, error) {
	_, views, err := sched.SubmitBatch(specs, 0)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	out := make([]sim.JobView, len(views))
	for i, v := range views {
		final, err := sched.Wait(ctx, v.ID)
		if err != nil {
			return nil, err
		}
		out[i] = final
	}
	return out, nil
}

// timedSweep measures the wall-clock time for a fresh scheduler with n
// workers to finish the standard sweep under the given runner.
func timedSweep(n, jobs int, run sim.Runner) (time.Duration, []sim.JobView, error) {
	sched, err := sim.New(sim.Config{
		Workers: n, QueueDepth: jobs, CacheEntries: jobs, Registry: telemetry.NewRegistry(),
	}, run)
	if err != nil {
		return 0, nil, err
	}
	defer shutdown(sched)
	start := time.Now()
	views, err := runSweep(sched, chaosSweep(jobs))
	if err != nil {
		return 0, nil, err
	}
	return time.Since(start), views, nil
}

func shutdown(s *sim.Scheduler) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	s.Shutdown(ctx)
}

// percentile returns the pth percentile (nearest-rank) of vals.
func percentile(vals []float64, p float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	rank := int(p/100*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}
