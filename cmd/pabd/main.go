// Command pabd serves the PAB scenario scheduler over HTTP: submit
// versioned scenario specs as jobs, poll their status, stream batch
// results as NDJSON, and let the content-addressed cache absorb
// repeated runs.
//
// Usage:
//
//	pabd -addr :8080                    # serve the API
//	pabd -addr :8080 -workers 4         # fixed worker pool
//	pabd -queue 128 -cache 512          # queue depth, cache entries
//	pabd -job-timeout 90s               # per-job deadline
//	pabd -wal /var/lib/pabd/wal         # durable job store (crash recovery)
//	pabd -wal wal -wal-fsync always     # power-loss-safe durability tier
//	pabd -retries 3                     # bounded retry budget per job
//
// API (see DESIGN.md §12):
//
//	GET    /healthz                   liveness + queue stats
//	POST   /v1/jobs                   submit a scenario spec (or {spec, priority})
//	GET    /v1/jobs/{id}              poll job status
//	DELETE /v1/jobs/{id}              cancel
//	GET    /v1/jobs/{id}/result       result JSON (409 until ready)
//	POST   /v1/batches                {specs: [...]} or {sweep: {base, axes}}
//	GET    /v1/batches/{id}           batch summary with per-job headline
//	GET    /v1/batches/{id}/stream    NDJSON results as jobs finish
//	GET    /metrics                   Prometheus text exposition
//	GET    /telemetry.json            full telemetry snapshot
//
// Job ids are the canonical scenario hash, so identical specs
// deduplicate in flight and hit the result cache afterwards. A full
// queue answers 429 with a Retry-After estimate; SIGTERM stops intake,
// drains in-flight jobs for -drain-timeout, then exits.
//
// With -wal the job lifecycle is durable (DESIGN.md §14): every state
// transition appends to a checksummed write-ahead log before taking
// effect, a restarted daemon replays the log — completed jobs come
// back as cache hits, unfinished ones re-enqueue — and -retries
// bounds re-execution of retryably-failed jobs with exponential
// backoff before they land on GET /v1/deadletter.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"pab/internal/cli"
	"pab/internal/sim"
	"pab/internal/wal"
)

func main() {
	os.Exit(realMain())
}

func realMain() int {
	addr := flag.String("addr", ":8080", "HTTP listen address")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "queued-job capacity before 429 backpressure (0 = default)")
	cache := flag.Int("cache", 0, "result cache entries (0 = default)")
	jobTimeout := flag.Duration("job-timeout", 0, "per-job deadline (0 = default)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second,
		"how long shutdown waits for in-flight jobs before cancelling them")
	walDir := flag.String("wal", "", "write-ahead-log directory for the durable job store (empty = memory-only)")
	walFsync := flag.String("wal-fsync", "interval", "WAL fsync policy: always, interval or never")
	walSegment := flag.Int64("wal-segment-bytes", 0, "WAL segment rotation threshold (0 = default 4 MiB)")
	walCompact := flag.Int64("wal-compact-bytes", 0, "WAL size that triggers compaction (0 = default 8 MiB)")
	retries := flag.Int("retries", 3, "per-job attempt budget for retryable failures (1 = no retries)")
	retryBase := flag.Duration("retry-base", 0, "base retry backoff (0 = default 500ms)")
	shedHW := flag.Float64("shed-high-water", 0,
		"queue fraction past which higher-priority work sheds the lowest-priority queued job (0 = default 0.9, negative disables)")
	var tf cli.TelemetryFlags
	tf.Register()
	var rf cli.RunFlags
	rf.Register()
	flag.Parse()

	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "pabd: unexpected arguments: %v\n", flag.Args())
		return cli.Usage()
	}
	fsync, err := wal.ParseFsyncPolicy(*walFsync)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pabd: %v\n", err)
		return cli.Usage()
	}
	if code := tf.Start("pabd"); code != cli.ExitOK {
		return code
	}
	ctx, stop := rf.Context()
	defer stop()

	code := cli.Exit("pabd", serve(ctx, serveConfig{
		addr: *addr,
		sched: sim.Config{
			Workers:       *workers,
			QueueDepth:    *queue,
			CacheEntries:  *cache,
			JobTimeout:    *jobTimeout,
			Retry:         sim.RetryPolicy{MaxAttempts: *retries, BaseBackoff: *retryBase},
			ShedHighWater: *shedHW,
			CompactBytes:  *walCompact,
		},
		walDir:       *walDir,
		walFsync:     fsync,
		walSegment:   *walSegment,
		drainTimeout: *drainTimeout,
	}))
	return tf.Finish("pabd", code)
}

type serveConfig struct {
	addr         string
	sched        sim.Config
	walDir       string
	walFsync     wal.FsyncPolicy
	walSegment   int64
	drainTimeout time.Duration
}

// serve runs the daemon until ctx is cancelled (SIGINT/SIGTERM or
// -timeout), then drains: the HTTP listener closes first so no new
// jobs arrive, queued jobs are cancelled, and in-flight jobs get
// drainTimeout to finish.
func serve(ctx context.Context, cfg serveConfig) error {
	if cfg.walDir != "" {
		store, err := sim.OpenStore(wal.Options{
			Dir:          cfg.walDir,
			SegmentBytes: cfg.walSegment,
			Fsync:        cfg.walFsync,
			Registry:     cfg.sched.Registry,
		})
		if err != nil {
			return fmt.Errorf("pabd: open wal: %w", err)
		}
		defer store.Close()
		cfg.sched.Store = store
	}
	sched, err := sim.New(cfg.sched, sim.ScenarioRunner)
	if err != nil {
		return err
	}
	if cfg.walDir != "" {
		st := sched.Stats()
		fmt.Fprintf(os.Stderr, "pabd: wal replay: %d queued, %d cached results, %d dead letters\n",
			st.Queued, st.CacheSize, st.DeadLetters)
	}
	srv := &http.Server{
		Addr:    cfg.addr,
		Handler: sim.NewServer(sched).Handler(),
		BaseContext: func(net.Listener) context.Context {
			return ctx
		},
	}
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return fmt.Errorf("pabd: %w", err)
	}
	fmt.Fprintf(os.Stderr, "pabd: serving on %s (%d workers)\n", ln.Addr(), sched.Workers())

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		// The listener died on its own; still drain the pool.
		drainCtx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
		defer cancel()
		sched.Shutdown(drainCtx)
		return fmt.Errorf("pabd: %w", err)
	case <-ctx.Done():
	}

	fmt.Fprintf(os.Stderr, "pabd: shutting down, draining for up to %s\n", cfg.drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		srv.Close()
	}
	<-serveErr
	if err := sched.Shutdown(drainCtx); err != nil && !errors.Is(err, context.Canceled) {
		return fmt.Errorf("pabd: drain: %w", err)
	}
	fmt.Fprintln(os.Stderr, "pabd: drained cleanly")
	return nil
}
