// Command pabprof benchmarks the uplink receive chain stage by stage
// and writes BENCH_decode.json — the per-stage latency baseline the
// ROADMAP's raw-speed campaign is measured against.
//
// It synthesises one full reader↔node exchange (the same recording
// cmd/pabwave's -kind exchange exports), then repeatedly decodes the
// recording through Receiver.DecodeUplink with stage timers and
// allocation tracking on, and reports exact p50/p99/mean wall time,
// ops/sec, samples/sec and bytes-allocated-per-op for every pipeline
// stage (record → downconvert → filter → sync → decode) plus the full
// chain.
//
//	pabprof -o BENCH_decode.json                 # measure and write
//	pabprof -runs 20 -check BENCH_decode.json    # CI regression gate
//	pabprof -trace-out trace.json                # Perfetto trace of the run
//
// In -check mode the fresh measurement is compared against the given
// baseline: every baseline stage must still report invocations and
// samples, no stage's p50 may regress more than -max-regress×
// (durations under -floor-ms are floored first so sub-noise stages
// cannot trip the gate), and no stage's alloc_bytes_per_op may regress
// more than -max-alloc-regress× (values under 4 KiB are floored so
// allocator noise cannot trip it; 0 disables the gate). Violations go
// to stderr and the exit code is 1.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"pab/internal/cli"
	"pab/internal/core"
	"pab/internal/frame"
	"pab/internal/prof"
	"pab/internal/sensors"
	"pab/internal/telemetry"
)

func main() {
	os.Exit(realMain())
}

// maxRuns keeps every stage record inside the telemetry span ring
// (4096 entries; one decode files ~15 span records).
const maxRuns = 250

func realMain() int {
	out := flag.String("o", "BENCH_decode.json", "output report path (empty: stdout only)")
	runs := flag.Int("runs", 60, fmt.Sprintf("measured decode iterations (max %d)", maxRuns))
	warmup := flag.Int("warmup", 5, "unmeasured warm-up iterations")
	bitrate := flag.Float64("bitrate", 500, "backscatter bitrate (bit/s)")
	check := flag.String("check", "", "baseline BENCH_decode.json to gate against (exit 1 on regression)")
	maxRegress := flag.Float64("max-regress", 2, "max allowed per-stage p50 regression factor in -check mode")
	floorMS := flag.Float64("floor-ms", 0.05, "floor (ms) applied to p50s before the regression ratio")
	maxAllocRegress := flag.Float64("max-alloc-regress", 1.5, "max allowed per-stage alloc_bytes_per_op regression factor in -check mode (0 disables the gate)")
	var tf cli.TelemetryFlags
	tf.Register()
	flag.Parse()
	if *runs <= 0 || *runs > maxRuns || *warmup < 0 || *bitrate <= 0 || flag.NArg() > 0 {
		return cli.Usage()
	}
	if code := tf.Start("pabprof"); code != cli.ExitOK {
		return code
	}
	code := cli.ExitOK
	if err := run(*out, *check, *runs, *warmup, *bitrate, *maxRegress, *floorMS, *maxAllocRegress); err != nil {
		fmt.Fprintf(os.Stderr, "pabprof: %v\n", err)
		code = cli.ExitRuntime
	}
	return tf.Finish("pabprof", code)
}

func run(out, check string, runs, warmup int, bitrate, maxRegress, floorMS, maxAllocRegress float64) error {
	telemetry.SetEnabled(true)

	// Synthesise the workload: one powered exchange, keeping the
	// hydrophone recording and where the decoder locked in it.
	cfg := core.DefaultLinkConfig()
	n, err := core.NewPaperNode(0x01, bitrate, sensors.RoomTank())
	if err != nil {
		return err
	}
	proj, err := core.NewPaperProjector(cfg.SampleRate)
	if err != nil {
		return err
	}
	link, err := core.NewLink(cfg, n, proj)
	if err != nil {
		return err
	}
	if err := link.EnsurePowered(120); err != nil {
		return err
	}
	res, err := link.RunQuery(frame.Query{Dest: 0x01, Command: frame.CmdPing})
	if err != nil {
		return err
	}
	if res.Decoded == nil || len(res.Decoded.Bits) == 0 {
		return fmt.Errorf("exchange produced no decodable uplink (BER %.3f)", res.UplinkBER)
	}
	recording := res.Recording
	// Gate the decoder past the reader's own downlink keying, exactly
	// as the live exchange did — and decode at the bitrate the node
	// actually ran (NewPaperNode snaps the request to its clock grid).
	gate := res.DecodeGate
	bitrate = link.Node().Bitrate()

	recv := link.Receiver()
	prof.SetAllocTracking(true)
	defer prof.SetAllocTracking(false)
	for i := 0; i < warmup; i++ {
		if _, err := recv.DecodeUplink(recording, cfg.CarrierHz, bitrate, gate); err != nil {
			return fmt.Errorf("warm-up decode: %w", err)
		}
	}

	// Measure from a clean slate so stage statistics cover exactly the
	// measured runs.
	telemetry.Default().Reset()
	durs := make([]float64, 0, runs)
	decoded := 0
	wallStart := time.Now()
	for i := 0; i < runs; i++ {
		sp := telemetry.StartSpan("bench_decode")
		t0 := time.Now()
		dec, err := recv.DecodeUplink(recording, cfg.CarrierHz, bitrate, gate)
		d := time.Since(t0)
		sp.Attr("run", i).End()
		if err == nil && dec != nil {
			decoded++
		}
		durs = append(durs, d.Seconds())
	}
	wall := time.Since(wallStart).Seconds()

	snap := telemetry.Default().Snapshot()
	sort.Float64s(durs)
	rep := prof.BenchReport{
		SchemaVersion:    1,
		Runs:             runs,
		SampleRate:       cfg.SampleRate,
		RecordingSamples: len(recording),
		BitrateBps:       bitrate,
		Decoded:          decoded,
		WallS:            wall,
		ChainP50MS:       percentileSorted(durs, 50) * 1e3,
		ChainP99MS:       percentileSorted(durs, 99) * 1e3,
		Stages:           prof.CollectStageStats(snap.Spans),
	}
	if wall > 0 {
		rep.OpsPerSec = float64(runs) / wall
	}

	// Every pipeline stage must have run: a stage silently dropping out
	// of the measurement is itself a harness bug.
	for _, st := range prof.Stages {
		s, ok := rep.Stages[st.Key]
		if !ok || s.Count == 0 {
			return fmt.Errorf("stage %q recorded no invocations", st.Key)
		}
		if s.TotalSamples == 0 {
			return fmt.Errorf("stage %q recorded zero samples", st.Key)
		}
	}

	printSummary(rep)
	if out != "" {
		if err := writeReport(out, rep); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", out)
	}

	if check != "" {
		base, err := readReport(check)
		if err != nil {
			return fmt.Errorf("baseline: %w", err)
		}
		if problems := rep.CheckAgainst(base, maxRegress, floorMS, maxAllocRegress); len(problems) > 0 {
			for _, p := range problems {
				fmt.Fprintf(os.Stderr, "pabprof: REGRESSION: %s\n", p)
			}
			return fmt.Errorf("%d regression(s) vs %s", len(problems), check)
		}
		fmt.Printf("ok vs %s (budget %.1fx latency, %.1fx alloc)\n", check, maxRegress, maxAllocRegress)
	}
	return nil
}

func printSummary(rep prof.BenchReport) {
	fmt.Printf("decode chain: %d/%d runs decoded, %.1f ops/sec, p50 %.3f ms, p99 %.3f ms\n",
		rep.Decoded, rep.Runs, rep.OpsPerSec, rep.ChainP50MS, rep.ChainP99MS)
	fmt.Printf("%-12s %6s %10s %10s %12s %12s\n",
		"stage", "count", "p50 ms", "p99 ms", "samples/s", "B/op")
	for _, st := range prof.Stages {
		s := rep.Stages[st.Key]
		fmt.Printf("%-12s %6d %10.3f %10.3f %12.3g %12.0f\n",
			st.Key, s.Count, s.P50MS, s.P99MS, s.SamplesPerSec, s.AllocBytesPerOp)
	}
}

func writeReport(path string, rep prof.BenchReport) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

func readReport(path string) (prof.BenchReport, error) {
	var rep prof.BenchReport
	b, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(b, &rep); err != nil {
		return rep, err
	}
	return rep, nil
}

// percentileSorted returns the pth percentile (nearest-rank) of an
// ascending-sorted slice.
func percentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(p/100*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}
