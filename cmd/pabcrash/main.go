// Command pabcrash is the recovery harness for the durable pabd job
// store (DESIGN.md §14): it proves that kill -9 at arbitrary points in
// a large batch loses no work and re-runs none.
//
// Each round it starts a pabd with a WAL, submits the same ≥500-job
// batch (submission is idempotent: completed jobs are cache hits,
// live ones dedupe), sleeps a seeded random interval and SIGKILLs the
// daemon — optionally appending garbage to the newest WAL segment to
// simulate a torn final record. The last round lets the batch drain,
// polls every job to a terminal state and stops the daemon with
// SIGTERM. Afterwards it audits the WAL record stream directly:
//
//   - every job's final record is terminal, exactly once;
//   - no job has a start record after its done record (completed work
//     was served from the result store, never re-run);
//   - a torn final record truncated cleanly instead of failing startup.
//
// Usage:
//
//	pabcrash -pabd ./pabd                      # 500 jobs, 3 kills
//	pabcrash -pabd ./pabd -jobs 800 -kills 5 -seed 7
//	pabcrash -pabd ./pabd -torn=false          # skip tail corruption
//
// Exit status 0 means every invariant held.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"syscall"
	"time"

	"pab/internal/scenario"
	"pab/internal/sim"
)

func main() {
	os.Exit(realMain())
}

type harness struct {
	pabd     string
	addr     string
	base     string
	walDir   string
	jobs     int
	kills    int
	torn     bool
	workers  int
	rng      *rand.Rand
	client   *http.Client
	specs    []scenario.Spec
	ids      []string
	deadline time.Time
}

func realMain() int {
	pabd := flag.String("pabd", "", "path to the pabd binary (required)")
	addr := flag.String("addr", "127.0.0.1:18725", "address the spawned pabd listens on")
	walDir := flag.String("wal", "", "WAL directory (default: a temp dir, removed on success)")
	jobs := flag.Int("jobs", 500, "batch size")
	kills := flag.Int("kills", 3, "number of kill -9 rounds before the clean final round")
	seed := flag.Int64("seed", 1, "seed for kill timing and tail corruption")
	torn := flag.Bool("torn", true, "append garbage to the newest WAL segment after each kill")
	timeout := flag.Duration("timeout", 2*time.Minute, "overall harness deadline")
	workers := flag.Int("workers", 4, "pabd worker pool size")
	flag.Parse()

	if *pabd == "" {
		fmt.Fprintln(os.Stderr, "pabcrash: -pabd is required")
		return 2
	}
	dir := *walDir
	if dir == "" {
		d, err := os.MkdirTemp("", "pabcrash-wal-*")
		if err != nil {
			fmt.Fprintf(os.Stderr, "pabcrash: %v\n", err)
			return 1
		}
		dir = d
	}

	h := &harness{
		pabd:     *pabd,
		addr:     *addr,
		base:     "http://" + *addr,
		walDir:   dir,
		jobs:     *jobs,
		kills:    *kills,
		torn:     *torn,
		workers:  *workers,
		rng:      rand.New(rand.NewSource(*seed)),
		client:   &http.Client{Timeout: 10 * time.Second},
		deadline: time.Now().Add(*timeout),
	}
	h.buildBatch()

	if err := h.run(); err != nil {
		fmt.Fprintf(os.Stderr, "pabcrash: FAIL: %v (wal kept at %s)\n", err, dir)
		return 1
	}
	if *walDir == "" {
		os.RemoveAll(dir)
	}
	fmt.Println("pabcrash: OK")
	return 0
}

// buildBatch precomputes the sweep and its job ids (scenario content
// hashes), so the audit can name every expected job without trusting
// the daemon.
func (h *harness) buildBatch() {
	h.specs = make([]scenario.Spec, h.jobs)
	h.ids = make([]string, h.jobs)
	for i := range h.specs {
		// DurationS 600 puts one job around a millisecond of wall time,
		// so a 500-job batch drains in roughly the same window the
		// seeded kill timer samples — kills land mid-batch, not after.
		sp := scenario.Spec{
			Name: fmt.Sprintf("crash[seed=%d]", i+1),
			Kind: scenario.KindChaos,
			Seed: int64(i + 1),
			MAC:  scenario.MACSpec{DurationS: 600},
		}
		h.specs[i] = sp
		id, err := sp.Normalize().Hash()
		if err != nil {
			panic(err) // static specs; cannot fail
		}
		h.ids[i] = id
	}
}

func (h *harness) run() error {
	for round := 0; round <= h.kills; round++ {
		final := round == h.kills
		cmd, err := h.startDaemon()
		if err != nil {
			return fmt.Errorf("round %d: %w", round, err)
		}
		if err := h.waitHealthy(); err != nil {
			cmd.Process.Kill()
			cmd.Wait()
			return fmt.Errorf("round %d: %w", round, err)
		}
		// Submitting the full batch every round is the idempotency
		// test itself: completed jobs must come back as cache hits.
		// The submit runs concurrently with the kill timer, so a short
		// delay kills the daemon mid-submission — the hardest case:
		// some submit records durable, some never sent.
		submitted := make(chan error, 1)
		go func() { submitted <- h.submitBatch() }()
		if !final {
			delay := time.Duration(h.rng.Intn(150)) * time.Millisecond
			time.Sleep(delay)
			if err := cmd.Process.Kill(); err != nil {
				return fmt.Errorf("round %d: kill: %w", round, err)
			}
			cmd.Wait()
			<-submitted // daemon is gone; a submit error here is expected
			fmt.Fprintf(os.Stderr, "pabcrash: round %d: killed after %s\n", round, delay)
			if h.torn {
				if err := h.tearTail(); err != nil {
					return fmt.Errorf("round %d: %w", round, err)
				}
			}
			continue
		}
		if err := <-submitted; err != nil {
			cmd.Process.Kill()
			cmd.Wait()
			return fmt.Errorf("round %d: submit: %w", round, err)
		}
		if err := h.drainAll(); err != nil {
			cmd.Process.Kill()
			cmd.Wait()
			return fmt.Errorf("final round: %w", err)
		}
		if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
			return fmt.Errorf("final round: sigterm: %w", err)
		}
		if err := cmd.Wait(); err != nil {
			return fmt.Errorf("final round: pabd exit: %w", err)
		}
	}
	return h.audit()
}

// startDaemon launches pabd over the shared WAL with capacity for the
// whole batch (cache and queue must exceed the job count, or LRU
// eviction would legitimately re-run completed work and break the
// no-re-run audit).
func (h *harness) startDaemon() (*exec.Cmd, error) {
	cmd := exec.Command(h.pabd,
		"-addr", h.addr,
		"-wal", h.walDir,
		"-workers", strconv.Itoa(h.workers),
		"-queue", strconv.Itoa(h.jobs+16),
		"-cache", strconv.Itoa(h.jobs+16),
	)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("start pabd: %w", err)
	}
	return cmd, nil
}

func (h *harness) waitHealthy() error {
	for time.Now().Before(h.deadline) {
		resp, err := h.client.Get(h.base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	return fmt.Errorf("pabd never became healthy on %s", h.addr)
}

func (h *harness) submitBatch() error {
	body, err := json.Marshal(map[string]any{"specs": h.specs})
	if err != nil {
		return err
	}
	resp, err := h.client.Post(h.base+"/v1/batches", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b, _ := json.Marshal(resp.Status)
		return fmt.Errorf("batch submit: %s %s", resp.Status, b)
	}
	return nil
}

// drainAll polls every job to a terminal state; all must be done.
func (h *harness) drainAll() error {
	states := make(map[string]int)
	for _, id := range h.ids {
		for {
			if time.Now().After(h.deadline) {
				return fmt.Errorf("deadline waiting for job %s (states so far: %v)", id[:12], states)
			}
			var view struct {
				State string `json:"state"`
				Error string `json:"error"`
			}
			resp, err := h.client.Get(h.base + "/v1/jobs/" + id)
			if err != nil {
				return err
			}
			dec := json.NewDecoder(resp.Body)
			err = dec.Decode(&view)
			resp.Body.Close()
			if err != nil {
				return err
			}
			if resp.StatusCode == http.StatusNotFound {
				return fmt.Errorf("job %s unknown to the daemon after restart", id[:12])
			}
			switch view.State {
			case "done":
				states[view.State]++
			case "failed", "canceled":
				return fmt.Errorf("job %s terminal as %s (%s), want done", id[:12], view.State, view.Error)
			default:
				time.Sleep(10 * time.Millisecond)
				continue
			}
			break
		}
	}
	fmt.Fprintf(os.Stderr, "pabcrash: all %d jobs terminal: %v\n", len(h.ids), states)
	return nil
}

// tearTail appends a partial record header to the newest WAL segment —
// the on-disk shape of a write torn by the kill. The next daemon start
// must truncate it rather than fail.
func (h *harness) tearTail() error {
	paths, err := filepath.Glob(filepath.Join(h.walDir, "wal-*.log"))
	if err != nil || len(paths) == 0 {
		return fmt.Errorf("no wal segments to tear: %v", err)
	}
	sort.Strings(paths)
	newest := paths[len(paths)-1]
	f, err := os.OpenFile(newest, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	garbage := make([]byte, 1+h.rng.Intn(7)) // shorter than a record header
	h.rng.Read(garbage)
	_, err = f.Write(garbage)
	return err
}

// audit replays the WAL record stream and enforces exactly-once.
func (h *harness) audit() error {
	rep, err := sim.AuditWAL(h.walDir)
	if err != nil {
		return fmt.Errorf("audit: %w", err)
	}
	fmt.Fprintf(os.Stderr, "pabcrash: audit: %d records, %d jobs (%d done, %d failed, %d canceled, %d pending)\n",
		rep.Records, rep.Jobs, rep.Done, rep.Failed, rep.Canceled, rep.Pending)
	if len(rep.Violations) > 0 {
		return fmt.Errorf("audit violations: %v", rep.Violations)
	}
	if rep.Done != h.jobs {
		return fmt.Errorf("audit: %d done jobs in WAL, want %d", rep.Done, h.jobs)
	}
	if rep.Pending != 0 {
		return fmt.Errorf("audit: %d jobs never reached a terminal state", rep.Pending)
	}
	return nil
}
