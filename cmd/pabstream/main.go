// Command pabstream serves decode-as-a-service: clients open streams,
// POST chunked PCM at them, and read decoded uplink frames back as
// NDJSON the moment each packet's CRC checks out. One daemon holds
// thousands of concurrent streams in bounded memory — each stream's
// receiver state is a fixed decode window plus filter/oscillator
// carry, not the recording so far.
//
// Usage:
//
//	pabstream -addr :8090                        # serve with defaults
//	pabstream -rate 96000 -carrier 15000 -bitrate 500
//	pabstream -max-streams 4096 -idle-timeout 2m
//	pabstream -carrier 0                         # detect per stream
//
// API (see DESIGN.md §17):
//
//	POST   /v1/streams              open ({format, sample_rate, ...})
//	POST   /v1/streams/{id}/chunks  feed PCM; NDJSON frame rows + ack
//	GET    /v1/streams/{id}         decoder stats
//	DELETE /v1/streams/{id}         flush + close; frame rows + eos
//	POST   /v1/decode               one-shot body → frames (curl-able)
//	GET    /healthz                 liveness + active stream count
//
// Admission control mirrors pabd: opens past -max-streams answer 429
// with a Retry-After hint. SIGTERM stops intake, then every in-flight
// stream's window is flushed — a packet whose bytes all arrived is
// decoded and counted, not dropped — before the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"pab/internal/cli"
	"pab/internal/node"
	"pab/internal/stream"
	"pab/internal/stream/streamd"
	"pab/internal/units"
)

func main() {
	os.Exit(realMain())
}

func realMain() int {
	addr := flag.String("addr", ":8090", "HTTP listen address")
	rate := flag.Float64("rate", 96000, "default sample rate (Hz)")
	carrier := flag.Float64("carrier", 15000, "default carrier (Hz; 0 = detect per stream)")
	bitrate := flag.Float64("bitrate", 500, "default backscatter bitrate (bit/s)")
	block := flag.Int("block", 0, "decoder block size in samples (0 = default 1024)")
	maxStreams := flag.Int("max-streams", 0, "concurrent stream cap before 429 shedding (0 = default 1024)")
	idleTimeout := flag.Duration("idle-timeout", time.Minute, "reap streams idle this long (0 = never)")
	retryAfter := flag.Duration("retry-after", time.Second, "Retry-After hint on shed opens")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second,
		"how long shutdown waits while in-flight stream windows flush")
	var tf cli.TelemetryFlags
	tf.Register()
	var rf cli.RunFlags
	rf.Register()
	flag.Parse()

	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "pabstream: unexpected arguments: %v\n", flag.Args())
		return cli.Usage()
	}
	if code := tf.Start("pabstream"); code != cli.ExitOK {
		return code
	}
	ctx, stop := rf.Context()
	defer stop()

	// The default bitrate is what a paper node's clock divider actually
	// emits, not the nominal request — same quantisation as pabdecode.
	// Per-stream overrides in open requests are taken literally.
	if q, qerr := node.PaperMCU().AchievableBitrate(*bitrate); qerr == nil {
		if !units.ApproxEqual(q, *bitrate, 1e-12) {
			fmt.Fprintf(os.Stderr, "pabstream: bitrate %.4g quantised to %.6g bit/s (MCU divider)\n", *bitrate, q)
		}
		*bitrate = q
	}

	code := cli.Exit("pabstream", serve(ctx, serveConfig{
		addr: *addr,
		hub: streamd.Config{
			Decoder: stream.Config{
				SampleRate: *rate,
				CarrierHz:  *carrier,
				BitrateBps: *bitrate,
				BlockSize:  *block,
			},
			MaxStreams:  *maxStreams,
			IdleTimeout: *idleTimeout,
			RetryAfter:  *retryAfter,
		},
		drainTimeout: *drainTimeout,
	}))
	return tf.Finish("pabstream", code)
}

type serveConfig struct {
	addr         string
	hub          streamd.Config
	drainTimeout time.Duration
}

// serve runs the daemon until ctx is cancelled (SIGINT/SIGTERM or
// -timeout), then drains: the listener closes first so no new chunks
// arrive, then every live stream's window is flushed.
func serve(ctx context.Context, cfg serveConfig) error {
	// Fail fast on a bad decoder template rather than per open.
	if probe, err := stream.NewDecoder(cfg.hub.Decoder); err != nil {
		return fmt.Errorf("pabstream: decoder config: %w", err)
	} else {
		probe.Close()
	}
	hub := streamd.NewHub(cfg.hub)
	srv := &http.Server{
		Addr:    cfg.addr,
		Handler: streamd.NewServer(hub).Handler(),
		BaseContext: func(net.Listener) context.Context {
			return ctx
		},
	}
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return fmt.Errorf("pabstream: %w", err)
	}
	fmt.Fprintf(os.Stderr, "pabstream: serving on %s\n", ln.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		// The listener died on its own; still flush in-flight streams.
		drainCtx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
		defer cancel()
		hub.Drain(drainCtx)
		return fmt.Errorf("pabstream: %w", err)
	case <-ctx.Done():
	}

	fmt.Fprintf(os.Stderr, "pabstream: shutting down, draining for up to %s\n", cfg.drainTimeout)
	hub.BeginDrain() // stop admitting before the listener finishes in-flight requests
	drainCtx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		srv.Close()
	}
	<-serveErr
	if err := hub.Drain(drainCtx); err != nil {
		return fmt.Errorf("pabstream: drain: %w", err)
	}
	fmt.Fprintln(os.Stderr, "pabstream: drained cleanly")
	return nil
}
