// Command pabescape pins the Go compiler's escape-analysis and inlining
// decisions for the decode hot path. pablint's allocloop rule forbids
// allocation *shapes* in hot loops; this tool guards the complementary
// invariant — allocations the code does make stay where the compiler
// proved them, and hot functions stay inlinable. The proof is fragile:
// an innocent refactor (taking an address, widening an interface,
// growing a function past the inlining budget) silently moves values to
// the heap, and nothing but the benchmark notices. pabescape makes the
// regression a CI failure instead.
//
// It runs `go build -gcflags=-m=1` over Config.HotPkgs in a fresh build
// cache (a warm cache suppresses compiler diagnostics entirely), parses
// the escape/inlining decisions, attributes them to their enclosing
// function, and diffs an allowlist of hot functions against the golden
// baseline lint/escape_baseline.json:
//
//	pabescape            # print the current decisions for the allowlist
//	pabescape -check     # exit 1 if any allowlisted function regressed
//	pabescape -update    # rewrite the baseline from the current build
//
// A regression is a new escape message (or a higher count of an existing
// one) or a lost inlinability. Improvements pass with a note suggesting
// -update so the tighter state gets pinned.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"pab/internal/lint"
)

// hotFuncs is the allowlist: the functions whose escape/inlining state
// the baseline pins, keyed by import path. Everything on it sits on the
// per-decode path (or is called per candidate inside it).
var hotFuncs = map[string][]string{
	"pab/internal/dsp": {
		"Downconvert", "DownconvertLP", "Envelope",
		"CrossCorrelate", "NormalizedCrossCorrelate",
		"(*IIR).Filter", "(*IIR).FiltFilt", "Decimate", "DecimateComplex",
	},
	"pab/internal/phy": {
		"(*FM0).Encode", "(*FM0).DecodeFrom", "(*FM0).EncodeTemplate",
		"DetectPacket", "DetectPacketCandidates", "MeasureSNR",
	},
	"pab/internal/core": {
		"CoherentWave", "estimateAxis", "projectAxis",
		"(*Receiver).decodeAt", "(*Receiver).detectRefinedAll",
	},
	"pab/internal/channel": {
		"(*ImpulseResponse).Apply",
	},
}

// funcEscape is one function's pinned compiler state. Escape messages
// are stored verbatim but without positions, so unrelated edits that
// shift line numbers do not churn the baseline.
type funcEscape struct {
	Inlinable bool           `json:"inlinable"`
	Escapes   map[string]int `json:"escapes,omitempty"`
}

// baseline is the golden file schema.
type baseline struct {
	Version   int                               `json:"version"`
	GoVersion string                            `json:"go"`
	Packages  map[string]map[string]*funcEscape `json:"packages"`
}

const baselineVersion = 1

func main() {
	dir := flag.String("dir", ".", "module root (or any directory inside it)")
	basePath := flag.String("baseline", filepath.Join("lint", "escape_baseline.json"), "baseline path, relative to the module root")
	check := flag.Bool("check", false, "diff against the baseline; exit 1 on regressions")
	update := flag.Bool("update", false, "rewrite the baseline from the current build")
	verbose := flag.Bool("v", false, "print every parsed compiler decision, not just the allowlist")
	flag.Parse()

	root, err := findModuleRoot(*dir)
	if err != nil {
		fatal(err)
	}
	cfg := lint.DefaultConfig()

	cur, raw, err := collect(root, cfg.HotPkgs)
	if err != nil {
		fatal(err)
	}
	if *verbose {
		for _, line := range raw {
			fmt.Println(line)
		}
	}

	path := filepath.Join(root, *basePath)
	switch {
	case *update:
		b := &baseline{Version: baselineVersion, GoVersion: runtime.Version(), Packages: cur}
		if err := writeBaseline(path, b); err != nil {
			fatal(err)
		}
		fmt.Printf("pabescape: baseline written to %s (%d packages)\n", path, len(cur))
	case *check:
		base, err := readBaseline(path)
		if err != nil {
			fatal(fmt.Errorf("%w (run pabescape -update to create it)", err))
		}
		if base.GoVersion != runtime.Version() {
			fmt.Fprintf(os.Stderr, "pabescape: note: baseline from %s, running %s — message text may differ\n",
				base.GoVersion, runtime.Version())
		}
		regressions, notes := diff(base.Packages, cur)
		for _, n := range notes {
			fmt.Println("note: " + n)
		}
		for _, r := range regressions {
			fmt.Println("REGRESSION: " + r)
		}
		if len(regressions) > 0 {
			fmt.Printf("pabescape: %d escape/inlining regression(s) against %s\n", len(regressions), path)
			os.Exit(1)
		}
		if len(notes) > 0 {
			fmt.Println("pabescape: improvements detected; run pabescape -update to pin them")
		}
		fmt.Println("pabescape: ok")
	default:
		printTable(cur)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pabescape:", err)
	os.Exit(2)
}

// findModuleRoot walks up from dir to the enclosing go.mod.
func findModuleRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		d = parent
	}
}

// collect compiles pkgs with -m=1 in a fresh build cache and returns
// the allowlisted functions' state, keyed pkg → func.
func collect(root string, pkgs []string) (map[string]map[string]*funcEscape, []string, error) {
	// A scratch GOCACHE forces the named packages through the compiler:
	// with a warm cache `go build` replays the cached objects and emits
	// no diagnostics at all.
	scratch, err := os.MkdirTemp("", "pabescape-gocache-")
	if err != nil {
		return nil, nil, err
	}
	defer os.RemoveAll(scratch)

	args := append([]string{"build", "-gcflags=-m=1"}, pkgs...)
	cmd := exec.Command("go", args...)
	cmd.Dir = root
	cmd.Env = append(os.Environ(), "GOCACHE="+scratch)
	var stderr bytes.Buffer
	cmd.Stdout = os.Stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, nil, fmt.Errorf("go build -gcflags=-m=1 failed: %v\n%s", err, stderr.String())
	}

	out := make(map[string]map[string]*funcEscape)
	for pkg, fns := range hotFuncs {
		if !contains(pkgs, pkg) {
			continue
		}
		m := make(map[string]*funcEscape, len(fns))
		for _, fn := range fns {
			m[fn] = &funcEscape{}
		}
		out[pkg] = m
	}

	var raw []string
	idx := newFuncIndex()
	sc := bufio.NewScanner(&stderr)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") {
			continue
		}
		file, ln, msg, ok := splitDiag(line)
		if !ok {
			continue
		}
		raw = append(raw, line)
		pkg := pkgForFile(file)
		fns, tracked := out[pkg]
		if !tracked {
			continue
		}
		name, ok := idx.enclosing(filepath.Join(root, file), ln)
		if !ok {
			continue
		}
		fe, tracked := fns[name]
		if !tracked {
			continue
		}
		switch {
		case strings.HasPrefix(msg, "can inline "):
			// Attribute only the function's own inlinability, not a
			// closure's ("can inline F.func1" also lands inside F).
			if strings.TrimPrefix(msg, "can inline ") == name {
				fe.Inlinable = true
			}
		case strings.Contains(msg, "escapes to heap"), strings.HasPrefix(msg, "moved to heap:"):
			if fe.Escapes == nil {
				fe.Escapes = make(map[string]int)
			}
			fe.Escapes[msg]++
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	return out, raw, nil
}

// splitDiag parses "path/file.go:12:34: message".
func splitDiag(line string) (file string, ln int, msg string, ok bool) {
	parts := strings.SplitN(line, ":", 4)
	if len(parts) != 4 || !strings.HasSuffix(parts[0], ".go") {
		return "", 0, "", false
	}
	n, err := strconv.Atoi(parts[1])
	if err != nil {
		return "", 0, "", false
	}
	return parts[0], n, strings.TrimSpace(parts[3]), true
}

// pkgForFile maps a root-relative file path to its import path under
// the pab module.
func pkgForFile(file string) string {
	return "pab/" + filepath.ToSlash(filepath.Dir(file))
}

// funcIndex lazily parses source files and answers "which function
// declaration encloses line N of file F", using the compiler's own
// naming for methods: (T).Name or (*T).Name.
type funcIndex struct {
	files map[string][]funcRange
}

type funcRange struct {
	name       string
	start, end int
}

func newFuncIndex() *funcIndex {
	return &funcIndex{files: make(map[string][]funcRange)}
}

func (x *funcIndex) enclosing(path string, line int) (string, bool) {
	ranges, ok := x.files[path]
	if !ok {
		ranges = parseFuncRanges(path)
		x.files[path] = ranges
	}
	for _, r := range ranges {
		if r.start <= line && line <= r.end {
			return r.name, true
		}
	}
	return "", false
}

func parseFuncRanges(path string) []funcRange {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
	if err != nil {
		return nil
	}
	var out []funcRange
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		out = append(out, funcRange{
			name:  compilerName(fn),
			start: fset.Position(fn.Pos()).Line,
			end:   fset.Position(fn.End()).Line,
		})
	}
	return out
}

// compilerName renders fn the way -m diagnostics name it.
func compilerName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return fn.Name.Name
	}
	t := fn.Recv.List[0].Type
	star := ""
	if s, ok := t.(*ast.StarExpr); ok {
		star = "*"
		t = s.X
	}
	base := ""
	switch x := t.(type) {
	case *ast.Ident:
		base = x.Name
	case *ast.IndexExpr: // generic receiver
		if id, ok := x.X.(*ast.Ident); ok {
			base = id.Name
		}
	}
	return "(" + star + base + ")." + fn.Name.Name
}

// diff compares baseline → current, returning regressions (fail CI) and
// improvement notes (pass, suggest -update).
func diff(base, cur map[string]map[string]*funcEscape) (regressions, notes []string) {
	for _, pkg := range sortedKeys(cur) {
		baseFns := base[pkg]
		for _, fn := range sortedKeys(cur[pkg]) {
			c := cur[pkg][fn]
			label := pkg + "." + fn
			b, ok := baseFns[fn]
			if !ok {
				regressions = append(regressions, label+": not in baseline (new allowlist entry? run pabescape -update)")
				continue
			}
			if b.Inlinable && !c.Inlinable {
				regressions = append(regressions, label+": no longer inlinable")
			} else if !b.Inlinable && c.Inlinable {
				notes = append(notes, label+": newly inlinable")
			}
			for _, msg := range sortedKeys(c.Escapes) {
				if n, bn := c.Escapes[msg], b.Escapes[msg]; n > bn {
					regressions = append(regressions, fmt.Sprintf("%s: %q ×%d (baseline ×%d)", label, msg, n, bn))
				}
			}
			for _, msg := range sortedKeys(b.Escapes) {
				if n, bn := c.Escapes[msg], b.Escapes[msg]; n < bn {
					notes = append(notes, fmt.Sprintf("%s: %q ×%d (baseline ×%d)", label, msg, n, bn))
				}
			}
		}
	}
	sort.Strings(regressions)
	sort.Strings(notes)
	return regressions, notes
}

func printTable(cur map[string]map[string]*funcEscape) {
	for _, pkg := range sortedKeys(cur) {
		fmt.Println(pkg)
		for _, fn := range sortedKeys(cur[pkg]) {
			c := cur[pkg][fn]
			inl := "not inlinable"
			if c.Inlinable {
				inl = "inlinable"
			}
			fmt.Printf("  %-32s %s, %d escape message(s)\n", fn, inl, len(c.Escapes))
			for _, msg := range sortedKeys(c.Escapes) {
				fmt.Printf("    ×%d %s\n", c.Escapes[msg], msg)
			}
		}
	}
}

func readBaseline(path string) (*baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	if b.Version != baselineVersion {
		return nil, fmt.Errorf("%s: baseline version %d, tool supports %d", path, b.Version, baselineVersion)
	}
	return &b, nil
}

func writeBaseline(path string, b *baseline) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func contains(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}
