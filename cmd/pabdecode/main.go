// Command pabdecode runs the PAB offline receiver over a WAV recording —
// the inverse of pabwave. Together they close the paper's sound-card
// loop: a hydrophone capture (real or simulated) saved as WAV can be
// decoded without any other tooling.
//
//	pabwave  -kind exchange -o rec.wav     # simulate and save a capture
//	pabdecode -i rec.wav -bitrate 500      # find the carrier and decode it
//
// Like the other pab binaries it accepts -telemetry out.json (JSON
// snapshot of decoder metrics and decode reports on exit) and
// -debug-addr :6060 (live /metrics and /debug/pprof).
package main

import (
	"flag"
	"fmt"
	"os"

	"pab/internal/audio"
	"pab/internal/cli"
	"pab/internal/core"
	"pab/internal/node"
	"pab/internal/units"
)

func main() {
	os.Exit(realMain())
}

func realMain() int {
	in := flag.String("i", "", "input WAV (16-bit mono)")
	bitrate := flag.Float64("bitrate", 500, "backscatter bitrate (bit/s)")
	carrier := flag.Float64("carrier", 0, "carrier Hz (0 = detect via FFT)")
	gate := flag.Int("gate", 0, "decode only after this sample (reader's query end)")
	var tf cli.TelemetryFlags
	tf.Register()
	var rf cli.RunFlags
	rf.Register()
	flag.Parse()
	if *in == "" || flag.NArg() > 0 || *bitrate <= 0 || *carrier < 0 || *gate < 0 {
		return cli.Usage()
	}
	if code := tf.Start("pabdecode"); code != cli.ExitOK {
		return code
	}
	ctx, stop := rf.Context()
	defer stop()
	code := cli.Exit("pabdecode", cli.RunWithContext(ctx, func() error {
		return run(*in, *bitrate, *carrier, *gate)
	}))
	return tf.Finish("pabdecode", code)
}

func run(path string, bitrate, carrier float64, gate int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fs, samples, err := audio.ReadWAV(f)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d samples at %d Hz (%.2f s)\n", path, len(samples), fs, float64(len(samples))/float64(fs))

	recv, err := core.NewReceiver(float64(fs))
	if err != nil {
		return err
	}
	// Nodes emit at clock-divider-quantised rates (32.768 kHz crystal,
	// paper footnote 13); decode at the rate the divider actually
	// produces, not the nominal request.
	if q, qerr := node.PaperMCU().AchievableBitrate(bitrate); qerr == nil {
		if !units.ApproxEqual(q, bitrate, 1e-12) {
			fmt.Printf("bitrate %.4g quantised to %.6g bit/s (MCU divider)\n", bitrate, q)
		}
		bitrate = q
	}
	// The recording is already in recorder volts; disable the pressure
	// conversion chain by treating samples as pressure that maps 1:1
	// through a unity-sensitivity hydrophone.
	recv.Hydro.Sensitivity = 0 // 0 dB re 1 V/µPa ⇒ ~identity up to scale
	recv.Hydro.AutoGain = true

	if carrier == 0 {
		carriers := recv.FindCarriers(samples, 3)
		if len(carriers) == 0 {
			return fmt.Errorf("no carrier found")
		}
		carrier = carriers[0]
		fmt.Printf("detected carrier: %.0f Hz", carrier)
		if len(carriers) > 1 {
			fmt.Printf(" (others: %.0f", carriers[1])
			if len(carriers) > 2 {
				fmt.Printf(", %.0f", carriers[2])
			}
			fmt.Print(")")
		}
		fmt.Println()
	}

	// Decode, scanning gate offsets when none was given: a raw exchange
	// capture starts with the reader's own PWM keying, which the offline
	// decoder must skip (the reader knows its query end; a bystander
	// has to search).
	gates := []int{gate}
	if gate == 0 {
		for _, frac := range []float64{0, 0.25, 0.4, 0.55, 0.7} {
			gates = append(gates, int(frac*float64(len(samples))))
		}
	}
	var dec *core.Decoded
	for _, g := range gates {
		if d, derr := recv.DecodeUplink(samples, carrier, bitrate, g); derr == nil {
			dec = d
			break
		} else {
			err = derr
		}
	}
	if dec == nil {
		return fmt.Errorf("decode: %w", err)
	}
	fmt.Printf("packet at sample %d (score %.2f), SNR %.1f dB\n",
		dec.Sync.Index, dec.Sync.Score, dec.SNRdB())
	fmt.Printf("frame: source %#02x seq %d payload % x\n",
		dec.Frame.Source, dec.Frame.Seq, dec.Frame.Payload)
	if id, val, err := node.ParseSensorPayload(dec.Frame.Payload); err == nil {
		fmt.Printf("sensor reading: %v = %.2f\n", id, val)
	}
	return nil
}
