// Command pabdecode runs the PAB receiver over a WAV recording — the
// inverse of pabwave. Together they close the paper's sound-card loop:
// a hydrophone capture (real or simulated) saved as WAV can be decoded
// without any other tooling.
//
// The decode runs through the block-based streaming receiver
// (internal/stream) — the recording is fed chunk by chunk exactly as a
// live capture would arrive, so a multi-packet recording yields every
// packet, memory stays bounded by the decode window regardless of
// recording length, and the tool exercises the same receiver the
// pabstream daemon serves.
//
//	pabwave  -kind exchange -o rec.wav     # simulate and save a capture
//	pabdecode -i rec.wav -bitrate 500      # find the carrier and decode it
//	pabdecode -i rec.wav -block 1024       # smaller streaming chunks
//
// Like the other pab binaries it accepts -telemetry out.json (JSON
// snapshot of decoder metrics and decode reports on exit) and
// -debug-addr :6060 (live /metrics and /debug/pprof).
package main

import (
	"flag"
	"fmt"
	"os"

	"pab/internal/audio"
	"pab/internal/cli"
	"pab/internal/node"
	"pab/internal/stream"
	"pab/internal/units"
)

func main() {
	os.Exit(realMain())
}

func realMain() int {
	in := flag.String("i", "", "input WAV (16-bit mono)")
	bitrate := flag.Float64("bitrate", 500, "backscatter bitrate (bit/s)")
	carrier := flag.Float64("carrier", 0, "carrier Hz (0 = detect via FFT)")
	gate := flag.Int("gate", 0, "decode only after this sample (reader's query end; 0 = from the start)")
	block := flag.Int("block", 4096, "streaming block size in samples")
	var tf cli.TelemetryFlags
	tf.Register()
	var rf cli.RunFlags
	rf.Register()
	flag.Parse()
	if *in == "" || flag.NArg() > 0 || *bitrate <= 0 || *carrier < 0 || *gate < 0 || *block <= 0 {
		return cli.Usage()
	}
	if code := tf.Start("pabdecode"); code != cli.ExitOK {
		return code
	}
	ctx, stop := rf.Context()
	defer stop()
	code := cli.Exit("pabdecode", cli.RunWithContext(ctx, func() error {
		return run(*in, *bitrate, *carrier, *gate, *block)
	}))
	return tf.Finish("pabdecode", code)
}

func run(path string, bitrate, carrier float64, gate, block int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fs, samples, err := audio.ReadWAV(f)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d samples at %d Hz (%.2f s)\n", path, len(samples), fs, float64(len(samples))/float64(fs))
	if gate >= len(samples) {
		return fmt.Errorf("gate %d beyond recording (%d samples)", gate, len(samples))
	}

	// Nodes emit at clock-divider-quantised rates (32.768 kHz crystal,
	// paper footnote 13); decode at the rate the divider actually
	// produces, not the nominal request.
	if q, qerr := node.PaperMCU().AchievableBitrate(bitrate); qerr == nil {
		if !units.ApproxEqual(q, bitrate, 1e-12) {
			fmt.Printf("bitrate %.4g quantised to %.6g bit/s (MCU divider)\n", bitrate, q)
		}
		bitrate = q
	}

	dec, err := stream.NewDecoder(stream.Config{
		SampleRate: float64(fs),
		CarrierHz:  carrier,
		BitrateBps: bitrate,
		BlockSize:  block,
	})
	if err != nil {
		return err
	}
	defer dec.Close()

	// Feed the capture exactly as a live stream would arrive. The
	// decode window slides past the reader's own downlink keying on
	// its own, so -gate is an optimisation, not a requirement.
	frames, err := dec.Write(samples[gate:])
	if err != nil {
		return err
	}
	flushed, err := dec.Flush()
	if err != nil {
		return err
	}
	frames = append(frames, flushed...)
	st := dec.Stats()
	if carrier == 0 {
		if st.CarrierHz <= 0 {
			return fmt.Errorf("no carrier found")
		}
		fmt.Printf("detected carrier: %.0f Hz\n", st.CarrierHz)
	}
	if len(frames) == 0 {
		return fmt.Errorf("no packet decoded (%d attempts over %d blocks)", st.Attempts, st.Blocks)
	}
	for _, fr := range frames {
		fmt.Printf("packet at sample %d (score %.2f), SNR %.1f dB\n",
			int(fr.Start)+gate, fr.Sync.Score, fr.SNRdB())
		fmt.Printf("frame: source %#02x seq %d payload % x\n",
			fr.Frame.Source, fr.Frame.Seq, fr.Frame.Payload)
		if id, val, perr := node.ParseSensorPayload(fr.Frame.Payload); perr == nil {
			fmt.Printf("sensor reading: %v = %.2f\n", id, val)
		}
	}
	return nil
}
