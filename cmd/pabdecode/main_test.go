package main

import (
	"os"
	"path/filepath"
	"testing"

	"pab/internal/audio"
	"pab/internal/frame"
	"pab/internal/stream"
)

// TestRunDecodesWAVAtBlockSizes round-trips a synthetic packet through
// WriteWAV and the streaming run() path at several block sizes,
// including one larger than the recording (single-chunk decode).
func TestRunDecodesWAVAtBlockSizes(t *testing.T) {
	rec, err := stream.SynthesizeRecording(stream.SynthConfig{
		SampleRate:  12000,
		CarrierHz:   3000,
		BitrateBps:  375,
		LeadSamples: 4000,
		TailSamples: 2000,
	}, frame.DataFrame{Source: 0x31, Seq: 7, Payload: []byte("wavtest")})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "rec.wav")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := audio.WriteWAV(f, 12000, rec, true); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	for _, block := range []int{256, 1024, 4096, len(rec)} {
		// Carrier 0 exercises auto-detect; gate 0 feeds the whole file.
		if err := run(path, 375, 0, 0, block); err != nil {
			t.Errorf("block %d: %v", block, err)
		}
	}
	if err := run(path, 375, 0, len(rec)+1, 1024); err == nil {
		t.Error("gate beyond recording did not error")
	}
}
