// Command pabsim regenerates the paper's evaluation figures from the
// simulated PAB system.
//
// Usage:
//
//	pabsim -experiment fig3          # one figure as TSV on stdout
//	pabsim -experiment fig3 -plot    # the same figure as an ASCII chart
//	pabsim -experiment all           # every figure, with banners
//	pabsim -list                     # available experiment ids
package main

import (
	"bytes"
	"flag"
	"fmt"
	"math"
	"os"
	"pab/internal/experiments"
	"pab/internal/plot"
)

func main() {
	exp := flag.String("experiment", "", "experiment id (see -list), or 'all'")
	list := flag.Bool("list", false, "list available experiments")
	doPlot := flag.Bool("plot", false, "render an ASCII chart instead of TSV")
	flag.Parse()

	switch {
	case *list:
		for _, name := range experiments.Names() {
			desc, _ := experiments.Describe(name)
			fmt.Printf("%-10s %s\n", name, desc)
		}
	case *exp == "all":
		for _, name := range experiments.Names() {
			desc, _ := experiments.Describe(name)
			fmt.Printf("## %s — %s\n", name, desc)
			if err := run(name, *doPlot); err != nil {
				fmt.Fprintf(os.Stderr, "pabsim: %s: %v\n", name, err)
				os.Exit(1)
			}
			fmt.Println()
		}
	case *exp != "":
		if err := run(*exp, *doPlot); err != nil {
			fmt.Fprintf(os.Stderr, "pabsim: %v\n", err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// run executes one experiment, optionally rendering its TSV as a chart.
func run(name string, doPlot bool) error {
	if !doPlot {
		return experiments.Run(name, os.Stdout)
	}
	var buf bytes.Buffer
	if err := experiments.Run(name, &buf); err != nil {
		return err
	}
	series, err := plot.ParseTSV(buf.String())
	if err != nil {
		// Not chartable (e.g. textual columns): fall back to the table.
		fmt.Print(buf.String())
		return nil
	}
	// Decade-spanning positive data (BER curves) reads better on a log
	// axis.
	opt := plot.Options{LogY: true}
	for _, s := range series {
		for _, y := range s.Y {
			if y <= 0 {
				opt.LogY = false
			}
		}
	}
	if opt.LogY {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, s := range series {
			for _, y := range s.Y {
				lo = math.Min(lo, y)
				hi = math.Max(hi, y)
			}
		}
		if hi/lo < 1000 {
			opt.LogY = false
		}
	}
	return plot.RenderWithOptions(os.Stdout, name, series, 72, 20, opt)
}
