// Command pabsim regenerates the paper's evaluation figures from the
// simulated PAB system.
//
// Usage:
//
//	pabsim -experiment fig3          # one figure as TSV on stdout
//	pabsim -experiment fig3 -plot    # the same figure as an ASCII chart
//	pabsim -experiment all           # every figure, with banners
//	pabsim -list                     # available experiment ids
//	pabsim -chaos shrimp -seed 7     # blind-vs-adaptive chaos comparison
//	pabsim -telemetry out.json       # smoke exchange + telemetry snapshot
//
// -chaos runs the fault-injection scenario under the named profile
// (calm, shrimp, storm, brownout, drift, abyss) and reports delivered
// goodput, recovery latency and per-fault-class injection counts for a
// blind fixed-rate poller versus the adaptive session. Runs are seeded:
// the same -seed reproduces a bit-identical report (check the printed
// fingerprint). -timeout bounds any invocation's wall-clock time.
//
// Every invocation accepts -telemetry out.json (JSON snapshot of the
// stage-timing spans, layer counters and decode reports accumulated
// during the run) and -debug-addr :6060 (live /metrics, /telemetry.json
// and /debug/pprof). With -telemetry alone, pabsim runs a short smoke
// exchange — power-up, ARQ sensor poll, slotted-ALOHA inventory — so
// the snapshot exercises the full signal path.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"

	"pab/internal/cli"
	"pab/internal/core"
	"pab/internal/experiments"
	"pab/internal/frame"
	"pab/internal/mac"
	"pab/internal/plot"
	"pab/internal/scenario"
	"pab/internal/sensors"
)

func main() {
	os.Exit(realMain())
}

func realMain() int {
	exp := flag.String("experiment", "", "experiment id (see -list), or 'all'")
	list := flag.Bool("list", false, "list available experiments")
	doPlot := flag.Bool("plot", false, "render an ASCII chart instead of TSV")
	chaos := flag.String("chaos", "", "run a chaos scenario under this fault profile (calm | shrimp | storm | brownout | drift | abyss)")
	seed := flag.Int64("seed", 1, "chaos scenario seed; equal seeds yield bit-identical reports")
	chaosDur := flag.Float64("chaos-duration", 180, "simulated seconds per chaos strategy run")
	var tf cli.TelemetryFlags
	tf.Register()
	var rf cli.RunFlags
	rf.Register()
	flag.Parse()

	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "pabsim: unexpected arguments: %v\n", flag.Args())
		return cli.Usage()
	}
	if code := tf.Start("pabsim"); code != cli.ExitOK {
		return code
	}
	ctx, stop := rf.Context()
	defer stop()

	code := cli.ExitOK
	switch {
	case *list:
		for _, name := range experiments.Names() {
			desc, _ := experiments.Describe(name)
			fmt.Printf("%-10s %s\n", name, desc)
		}
	case *chaos != "":
		code = cli.Exit("pabsim", cli.RunWithContext(ctx, func() error {
			return runChaos(ctx, *chaos, *seed, *chaosDur)
		}))
	case *exp == "all":
		code = cli.Exit("pabsim", cli.RunWithContext(ctx, func() error {
			for _, name := range experiments.Names() {
				if err := ctx.Err(); err != nil {
					return err
				}
				desc, _ := experiments.Describe(name)
				fmt.Printf("## %s — %s\n", name, desc)
				if err := run(name, *doPlot); err != nil {
					return fmt.Errorf("%s: %w", name, err)
				}
				fmt.Println()
			}
			return nil
		}))
	case *exp != "":
		code = cli.Exit("pabsim", cli.RunWithContext(ctx, func() error {
			return run(*exp, *doPlot)
		}))
	case tf.SnapshotPath != "" || tf.DebugAddr != "":
		// Telemetry-only invocation: exercise the full signal path so
		// the snapshot carries stage spans, MAC counters and decode
		// reports.
		code = cli.Exit("pabsim", cli.RunWithContext(ctx, smokeExchange))
	default:
		return cli.Usage()
	}
	return tf.Finish("pabsim", code)
}

// runChaos runs the blind-vs-adaptive fault-injection comparison and
// renders its report. The run is expressed as a scenario.Spec — the
// same schema pabd serves — so the CLI and the daemon execute
// identical, identically-hashed runs. Four nodes matches the historic
// fault.DefaultScenarioConfig deployment, keeping seeded output
// bit-identical.
func runChaos(ctx context.Context, profile string, seed int64, durS float64) error {
	nodes := make([]scenario.NodeSpec, 4)
	for i := range nodes {
		nodes[i] = scenario.NodeSpec{Addr: byte(i + 1)}
	}
	spec := scenario.Spec{
		Kind:  scenario.KindChaos,
		Seed:  seed,
		Nodes: nodes,
		MAC:   scenario.MACSpec{DurationS: durS},
		Chaos: scenario.ChaosSpec{Profile: profile},
	}
	res, err := scenario.Run(ctx, spec)
	if err != nil {
		return err
	}
	res.Chaos.WriteText(os.Stdout)
	return nil
}

// smokeExchange runs one end-to-end interrogation cycle plus the MAC
// machinery: node power-up, an ARQ-polled sensor read over the default
// single-node link, and a slotted-ALOHA inventory round.
func smokeExchange() error {
	cfg := core.DefaultLinkConfig()
	n, err := core.NewPaperNode(0x01, 500, sensors.RoomTank())
	if err != nil {
		return err
	}
	proj, err := core.NewPaperProjector(cfg.SampleRate)
	if err != nil {
		return err
	}
	link, err := core.NewLink(cfg, n, proj)
	if err != nil {
		return err
	}
	if err := link.EnsurePowered(120); err != nil {
		return err
	}
	poller, err := mac.NewPoller(linkTransport{link}, 2)
	if err != nil {
		return err
	}
	df, err := poller.ReadSensor(0x01, frame.SensorPH)
	if err != nil {
		return err
	}
	inv, err := mac.Inventory([]byte{0x11, 0x12, 0x13, 0x14}, mac.DefaultInventoryConfig(), rand.New(rand.NewSource(1)))
	if err != nil {
		return err
	}
	stats := poller.Stats()
	fmt.Printf("smoke exchange: sensor frame from %#02x (seq %d), %d queries, %.2f s airtime\n",
		df.Source, df.Seq, stats.Queries, stats.Airtime)
	fmt.Printf("inventory: %d nodes in %d rounds (%d slots, efficiency %.2f)\n",
		len(inv.Identified), inv.Rounds, inv.Slots, inv.Efficiency())
	return nil
}

// linkTransport adapts a core.Link to the MAC polling interface.
type linkTransport struct{ l *core.Link }

func (t linkTransport) Exchange(q frame.Query) (mac.Exchange, error) {
	reply, airtime, snr, err := t.l.Exchange(q)
	if err != nil {
		return mac.Exchange{}, err
	}
	return mac.Exchange{Reply: reply, AirtimeSeconds: airtime, SNRLinear: snr}, nil
}

// run executes one experiment, optionally rendering its TSV as a chart.
func run(name string, doPlot bool) error {
	if !doPlot {
		return experiments.Run(name, os.Stdout)
	}
	var buf bytes.Buffer
	if err := experiments.Run(name, &buf); err != nil {
		return err
	}
	series, err := plot.ParseTSV(buf.String())
	if err != nil {
		// Not chartable (e.g. textual columns): fall back to the table.
		fmt.Print(buf.String())
		return nil
	}
	// Decade-spanning positive data (BER curves) reads better on a log
	// axis.
	opt := plot.Options{LogY: true}
	for _, s := range series {
		for _, y := range s.Y {
			if y <= 0 {
				opt.LogY = false
			}
		}
	}
	if opt.LogY {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, s := range series {
			for _, y := range s.Y {
				lo = math.Min(lo, y)
				hi = math.Max(hi, y)
			}
		}
		if hi/lo < 1000 {
			opt.LogY = false
		}
	}
	return plot.RenderWithOptions(os.Stdout, name, series, 72, 20, opt)
}
