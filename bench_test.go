// Benchmark harness: one testing.B benchmark per figure of the paper's
// evaluation (§6), plus the baseline comparison and ablation benches for
// the design choices DESIGN.md calls out. Each bench regenerates its
// figure's data through the same code path as `pabsim -experiment <id>`
// and reports the headline quantity as a custom metric, so
//
//	go test -bench=. -benchmem
//
// both exercises and times the entire reproduction.
package pab

import (
	"io"
	"math"
	"math/rand"
	"runtime"
	"runtime/debug"
	"testing"
	"time"

	"pab/internal/baseline"
	"pab/internal/channel"
	"pab/internal/core"
	"pab/internal/dsp"
	"pab/internal/experiments"
	"pab/internal/frame"
	"pab/internal/mac"
	"pab/internal/node"
	"pab/internal/phy"
	"pab/internal/piezo"
	"pab/internal/projector"
	"pab/internal/rectifier"
	"pab/internal/sensors"
)

// BenchmarkFig2BackscatterTrace regenerates the §3.2 "Testing the
// Waters" demodulated amplitude trace (Fig 2).
func BenchmarkFig2BackscatterTrace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig2()
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) == 0 {
			b.Fatal("empty trace")
		}
	}
}

// BenchmarkFig3RectoPiezo regenerates the rectified-voltage-vs-frequency
// sweep for the two recto-piezos (Fig 3) and reports the 15 kHz peak.
func BenchmarkFig3RectoPiezo(b *testing.B) {
	var peak float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig3(experiments.DefaultFig3Config())
		if err != nil {
			b.Fatal(err)
		}
		peak = 0
		for _, r := range rows {
			if r.V15kHz > peak {
				peak = r.V15kHz
			}
		}
	}
	b.ReportMetric(peak, "peakV")
}

// BenchmarkFig7BERSNR regenerates the BER–SNR curve (Fig 7) at a reduced
// packet budget and reports the BER at 2 dB (the paper's decode
// threshold).
func BenchmarkFig7BERSNR(b *testing.B) {
	cfg := experiments.Fig7Config{
		SNRsdB:     []float64{0, 2, 4, 6, 8, 10, 12},
		PacketBits: 500,
		Packets:    40,
		Seed:       7,
	}
	var berAt2 float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig7(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.SNRdB == 2 {
				berAt2 = r.BER
			}
		}
	}
	b.ReportMetric(berAt2, "ber@2dB")
}

// BenchmarkFig8SNRBitrate regenerates the SNR-vs-bitrate sweep (Fig 8)
// at a reduced trial count and reports the SNR spread between the
// slowest and fastest rates.
func BenchmarkFig8SNRBitrate(b *testing.B) {
	cfg := experiments.Fig8Config{
		Bitrates: []float64{100, 1000, 3000},
		Trials:   1,
		NoiseRMS: 10,
		Seed:     8,
	}
	var spread float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig8(cfg)
		if err != nil {
			b.Fatal(err)
		}
		spread = rows[0].MeanSNRdB - rows[len(rows)-1].MeanSNRdB
	}
	b.ReportMetric(spread, "dB(100bps−3kbps)")
}

// BenchmarkFig9PowerUpRange regenerates the power-up-range-vs-voltage
// sweep (Fig 9) and reports Pool B's maximum at full drive.
func BenchmarkFig9PowerUpRange(b *testing.B) {
	cfg := experiments.Fig9Config{DrivesV: []float64{50, 150, 350}, StepM: 0.5}
	var bMax float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig9(cfg)
		if err != nil {
			b.Fatal(err)
		}
		bMax = rows[len(rows)-1].PoolBMax
	}
	b.ReportMetric(bMax, "poolB_m@350V")
}

// BenchmarkFig10Collisions regenerates one location of the concurrent
// collision-decoding experiment (Fig 10) and reports the mean SINR gain
// from zero-forcing.
func BenchmarkFig10Collisions(b *testing.B) {
	cfg := core.DefaultConcurrentConfig()
	var gain float64
	for i := 0; i < b.N; i++ {
		nodes, proj := buildConcurrentPair(b, cfg)
		res, err := core.RunConcurrent(cfg, nodes, proj)
		if err != nil {
			b.Fatal(err)
		}
		after := res.SINRAfterDB()
		before := res.SINRBeforeDB()
		gain = (after[0] - before[0] + after[1] - before[1]) / 2
	}
	b.ReportMetric(gain, "dB_zf_gain")
}

// BenchmarkFig11Power regenerates the power-consumption table (Fig 11)
// and reports the idle draw in µW.
func BenchmarkFig11Power(b *testing.B) {
	var idleUW float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig11()
		idleUW = rows[0].PowerUW
	}
	b.ReportMetric(idleUW, "idle_µW")
}

// BenchmarkSensingApplications regenerates the §6.5 sensing demo (pH,
// temperature, pressure over backscatter).
func BenchmarkSensingApplications(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Sensing()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 3 {
			b.Fatal("missing sensors")
		}
	}
}

// BenchmarkBaselineComparison regenerates the energy-per-bit comparison
// (§2/§3.2) and reports PAB's advantage over an active modem in orders
// of magnitude.
func BenchmarkBaselineComparison(b *testing.B) {
	var oom float64
	for i := 0; i < b.N; i++ {
		var err error
		oom, err = baseline.OrdersOfMagnitude(
			baseline.WHOIClassModem().EnergyPerBit(),
			baseline.PaperPAB().EnergyPerBit())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(oom, "orders_of_magnitude")
}

// BenchmarkExperimentRunnerAll drives every experiment through the same
// dispatcher the pabsim CLI uses, discarding output (end-to-end cost of
// the full evaluation).
func BenchmarkExperimentRunnerFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Run("fig3", io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Ablation benches — the design choices DESIGN.md calls out
// ---------------------------------------------------------------------------

// BenchmarkAblationMLvsThresholdDecoder compares the ML sequence decoder
// against the naive threshold slicer at moderate noise, reporting the
// error ratio (slicer errors / ML errors; > 1 means ML wins).
func BenchmarkAblationMLvsThresholdDecoder(b *testing.B) {
	m, err := phy.NewFM0(8)
	if err != nil {
		b.Fatal(err)
	}
	var ratio float64
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(13))
		mlErrs, thErrs := 1, 1 // +1 smoothing
		for trial := 0; trial < 40; trial++ {
			bits := make([]phy.Bit, 80)
			for j := range bits {
				bits[j] = phy.Bit(rng.Intn(2))
			}
			wave, _ := m.Encode(bits, 1)
			for j := range wave {
				wave[j] += rng.NormFloat64() * 0.9
			}
			ml, _ := m.DecodeFrom(wave, len(bits), 1)
			th := m.ThresholdDecode(wave, len(bits))
			mlErrs += phy.CountBitErrors(bits, ml)
			thErrs += phy.CountBitErrors(bits, th)
		}
		ratio = float64(thErrs) / float64(mlErrs)
	}
	b.ReportMetric(ratio, "slicer/ml_errors")
}

// BenchmarkAblationZeroForcing compares collision decoding with and
// without the MIMO projection (the paper's before/after, as a BER
// improvement factor).
func BenchmarkAblationZeroForcing(b *testing.B) {
	cfg := core.DefaultConcurrentConfig()
	var improvement float64
	for i := 0; i < b.N; i++ {
		nodes, proj := buildConcurrentPair(b, cfg)
		res, err := core.RunConcurrent(cfg, nodes, proj)
		if err != nil {
			b.Fatal(err)
		}
		before := (res.BERBefore[0] + res.BERBefore[1]) / 2
		after := (res.BERAfter[0] + res.BERAfter[1]) / 2
		improvement = (before + 1e-3) / (after + 1e-3)
	}
	b.ReportMetric(improvement, "ber_improvement")
}

// BenchmarkAblationAirBackedVsPotted compares harvested power of the
// paper's air-backed transducer against a fully potted one (§4.1).
func BenchmarkAblationAirBackedVsPotted(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		air, err := piezo.New(piezo.PaperCylinder())
		if err != nil {
			b.Fatal(err)
		}
		potted, err := piezo.New(piezo.FullyPottedCylinder())
		if err != nil {
			b.Fatal(err)
		}
		rhoC := piezo.RhoC(1482, false)
		pa := air.AvailableElectricalPower(1000, air.ResonanceHz(), rhoC)
		pp := potted.AvailableElectricalPower(1000, potted.ResonanceHz(), rhoC)
		ratio = pa / pp
	}
	b.ReportMetric(ratio, "airbacked/potted_power")
}

// BenchmarkAblationRectifierStages compares rectified voltage across
// multiplier depths (the "multi-stage to passively amplify" choice,
// §4.2.1).
func BenchmarkAblationRectifierStages(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		one := rectifier.Rectifier{Stages: 1, DiodeDrop: 0.25, StageResistance: 1500, InputResistance: 15000, Efficiency: 0.7}
		three := one
		three.Stages = 3
		vin := one.InputPeakFromPower(100e-6)
		gain = three.OpenCircuitVoltage(vin) / one.OpenCircuitVoltage(vin)
	}
	b.ReportMetric(gain, "3stage/1stage_voltage")
}

// BenchmarkAblationMatchedVsShortedAbsorb quantifies the §3.2 trade-off
// around the absorptive-state termination. The conjugate match maximises
// *harvested energy*; interestingly it does not maximise modulation
// depth — a mismatched load reflects with a rotated phase, and the
// complex swing |Γ_short − Γ_mismatched| can exceed |Γ_short − 0|
// (ratios below 1 here record exactly that). The paper's choice is an
// energy/SNR compromise, not an SNR optimum.
func BenchmarkAblationMatchedVsShortedAbsorb(b *testing.B) {
	tr, err := piezo.New(piezo.PaperCylinder())
	if err != nil {
		b.Fatal(err)
	}
	var ratio float64
	for i := 0; i < b.N; i++ {
		f0 := tr.ResonanceHz()
		matched := tr.ModulationDepth(tr.ConjugateImpedance(f0), f0)
		// Mismatched absorb state: 10× the conjugate resistance.
		z := tr.ConjugateImpedance(f0)
		mismatched := tr.ModulationDepth(complex(real(z)*10, imag(z)), f0)
		ratio = matched / mismatched
	}
	b.ReportMetric(ratio, "matched/mismatched_depth")
}

// BenchmarkLinkExchange measures one complete interrogation cycle
// (downlink query + uplink decode) at 1 kbit/s — the simulator's core
// inner loop.
func BenchmarkLinkExchange(b *testing.B) {
	link := newBenchLink(b, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := link.RunQuery(frame.Query{Dest: 0x01, Command: frame.CmdPing})
		if err != nil {
			b.Fatal(err)
		}
		if res.Decoded == nil {
			b.Fatal("no decode")
		}
	}
}

// BenchmarkTelemetryOverheadRunLink bounds the cost of the telemetry
// layer on the simulator's inner loop: it times RunQuery with the
// default registry enabled and with instrumentation switched to no-ops
// (SetEnabled(false)), and asserts the enabled path is within 2%.
// Min-of-R timing over fixed-size batches makes the comparison robust
// to scheduler noise even under -benchtime=1x.
func BenchmarkTelemetryOverheadRunLink(b *testing.B) {
	link := newBenchLink(b, 1000)
	reg := Telemetry()
	wasEnabled := reg.Enabled()
	defer reg.SetEnabled(wasEnabled)

	const batch = 1    // RunQuery calls per timed sample
	const samples = 14 // timed sample pairs; the per-mode minimum is kept
	run := func() {
		res, err := link.RunQuery(frame.Query{Dest: 0x01, Command: frame.CmdPing})
		if err != nil {
			b.Fatal(err)
		}
		if res.Decoded == nil {
			b.Fatal("no decode")
		}
	}
	sample := func(enabled bool) time.Duration {
		reg.SetEnabled(enabled)
		// Exclude the collector from the timed region: GC cycles cost
		// milliseconds and trigger on allocation thresholds, so a tiny
		// allocation difference between modes would otherwise be
		// amplified into a spurious whole-cycle difference. Each region
		// starts from a clean heap and runs with GC paused.
		runtime.GC()
		gcPercent := debug.SetGCPercent(-1)
		start := time.Now()
		for k := 0; k < batch; k++ {
			run()
		}
		d := time.Since(start)
		debug.SetGCPercent(gcPercent)
		return d
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Warm caches and the allocator outside the timed samples.
		sample(false)
		sample(true)
		// Interleave the modes and keep each mode's *minimum*: scheduler
		// preemption, page faults and background load only ever add
		// time, so the per-mode floor is the least-disturbed observation
		// of the true cost, and interleaving exposes both modes to the
		// same machine conditions.
		on := time.Duration(math.MaxInt64)
		off := time.Duration(math.MaxInt64)
		for s := 0; s < samples; s++ {
			if d := sample(false); d < off {
				off = d
			}
			if d := sample(true); d < on {
				on = d
			}
		}
		overhead := float64(on-off) / float64(off) * 100
		b.ReportMetric(overhead, "overhead_%")
		if overhead > 2.0 {
			b.Fatalf("telemetry overhead %.2f%% exceeds 2%% budget (on=%v off=%v)", overhead, on, off)
		}
	}
}

// BenchmarkProfOverheadDecode bounds the cost of the stage profiler on
// the decode chain — the densest StageTimer coverage in the repo (all
// five stages fire per decode, sync many times). It decodes a fixed
// exchange recording with the default registry enabled and disabled and
// asserts the enabled path stays within the 2% observability budget.
// Same min-of-R interleaved methodology as the RunLink bench above.
func BenchmarkProfOverheadDecode(b *testing.B) {
	link := newBenchLink(b, 1000)
	res, err := link.RunQuery(frame.Query{Dest: 0x01, Command: frame.CmdPing})
	if err != nil {
		b.Fatal(err)
	}
	if res.Decoded == nil || len(res.Decoded.Bits) == 0 {
		b.Fatal("no decode")
	}
	recv := link.Receiver()
	carrier := link.Config().CarrierHz
	bitrate := link.Node().Bitrate()
	reg := Telemetry()
	wasEnabled := reg.Enabled()
	defer reg.SetEnabled(wasEnabled)

	const samples = 14
	run := func() {
		if _, err := recv.DecodeUplink(res.Recording, carrier, bitrate, res.DecodeGate); err != nil {
			b.Fatal(err)
		}
	}
	sample := func(enabled bool) time.Duration {
		reg.SetEnabled(enabled)
		runtime.GC()
		gcPercent := debug.SetGCPercent(-1)
		start := time.Now()
		run()
		d := time.Since(start)
		debug.SetGCPercent(gcPercent)
		return d
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sample(false)
		sample(true)
		on := time.Duration(math.MaxInt64)
		off := time.Duration(math.MaxInt64)
		for s := 0; s < samples; s++ {
			if d := sample(false); d < off {
				off = d
			}
			if d := sample(true); d < on {
				on = d
			}
		}
		overhead := float64(on-off) / float64(off) * 100
		b.ReportMetric(overhead, "overhead_%")
		if overhead > 2.0 {
			b.Fatalf("profiler overhead %.2f%% exceeds 2%% budget (on=%v off=%v)", overhead, on, off)
		}
	}
}

// BenchmarkChannelResponse measures the image-method impulse response
// computation for Pool A at order 3.
func BenchmarkChannelResponse(b *testing.B) {
	tank := channel.PoolA()
	opts := channel.Options{MaxOrder: 3, MinGain: 0.01, CarrierHz: 15000}
	src := channel.Vec3{X: 0.5, Y: 0.5, Z: 0.65}
	dst := channel.Vec3{X: 2.4, Y: 3.1, Z: 0.6}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tank.Response(src, dst, 96000, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// helpers
// ---------------------------------------------------------------------------

func newBenchLink(b *testing.B, bitrate float64) *core.Link {
	b.Helper()
	cfg := core.DefaultLinkConfig()
	n, err := core.NewPaperNode(0x01, bitrate, sensors.RoomTank())
	if err != nil {
		b.Fatal(err)
	}
	proj, err := core.NewPaperProjector(cfg.SampleRate)
	if err != nil {
		b.Fatal(err)
	}
	link, err := core.NewLink(cfg, n, proj)
	if err != nil {
		b.Fatal(err)
	}
	if err := link.EnsurePowered(120); err != nil {
		b.Fatal(err)
	}
	return link
}

func buildConcurrentPair(b *testing.B, cfg core.ConcurrentConfig) ([2]*node.Node, *projector.Projector) {
	b.Helper()
	var nodes [2]*node.Node
	rhoC := piezo.RhoC(cfg.Tank.Water.SoundSpeed(), false)
	for k := 0; k < 2; k++ {
		n, err := core.NewPaperNode(byte(k+1), cfg.BitrateBps, sensors.RoomTank())
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 200000 && n.State() == node.Off; i++ {
			n.HarvestStep(3000, cfg.Carriers[k], rhoC, 1e-3)
		}
		if n.State() == node.Off {
			b.Fatalf("node %d failed to power", k)
		}
		nodes[k] = n
	}
	if _, err := nodes[1].HandleQuery(frame.Query{Dest: 2, Command: frame.CmdSwitchResonance, Param: 1}); err != nil {
		b.Fatal(err)
	}
	proj, err := core.NewPaperProjector(cfg.SampleRate)
	if err != nil {
		b.Fatal(err)
	}
	return nodes, proj
}

// ---------------------------------------------------------------------------
// Extension benches (paper §1 / §8 future-work features)
// ---------------------------------------------------------------------------

// BenchmarkExtensionBatteryAssist compares operating reach: the farthest
// Pool-B range where a battery-free node can run versus where a
// battery-assisted node can still be decoded (the §1 hybrid argument).
// Reported metric: the range extension factor.
func BenchmarkExtensionBatteryAssist(b *testing.B) {
	var factor float64
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultLinkConfig()
		cfg.Tank = channel.PoolB()
		cfg.DriveV = 60
		cfg.ProjectorPos = channel.Vec3{X: 0.6, Y: 0.4, Z: 0.5}
		cfg.HydrophonePos = channel.Vec3{X: 0.8, Y: 0.6, Z: 0.5}

		freeMax, assistedMax := 0.25, 0.25
		for d := 9.0; d >= 0.25; d -= 0.25 {
			cfg.NodePos = channel.Vec3{X: 0.6, Y: 0.4 + d, Z: 0.5}
			n, err := core.NewPaperNode(1, 200, sensors.RoomTank())
			if err != nil {
				b.Fatal(err)
			}
			proj, err := core.NewPaperProjector(cfg.SampleRate)
			if err != nil {
				b.Fatal(err)
			}
			link, err := core.NewLink(cfg, n, proj)
			if err != nil {
				continue
			}
			if link.CanEverPowerUp() {
				freeMax = d
				break
			}
		}
		// The assisted node is limited only by uplink decodability; probe
		// the far end.
		for d := 9.0; d >= freeMax; d -= 1.0 {
			cfg.NodePos = channel.Vec3{X: 0.6, Y: 0.4 + d, Z: 0.5}
			n, err := core.NewBatteryAssistedNode(2, 200, 2000, sensors.RoomTank())
			if err != nil {
				b.Fatal(err)
			}
			proj, err := core.NewPaperProjector(cfg.SampleRate)
			if err != nil {
				b.Fatal(err)
			}
			link, err := core.NewLink(cfg, n, proj)
			if err != nil {
				continue
			}
			if !link.PowerUp(5) {
				continue
			}
			res, err := link.RunQuery(frame.Query{Dest: 2, Command: frame.CmdPing})
			if err == nil && res.Decoded != nil && res.UplinkBER == 0 {
				assistedMax = d
				break
			}
		}
		factor = assistedMax / freeMax
	}
	b.ReportMetric(factor, "range_extension")
}

// BenchmarkExtensionFDMANetwork deploys the three-node FDMA fleet and
// runs one polling round, reporting network goodput.
func BenchmarkExtensionFDMANetwork(b *testing.B) {
	var goodput float64
	for i := 0; i < b.N; i++ {
		net, err := core.NewFDMANetwork(core.DefaultFDMANetworkConfig(), 2)
		if err != nil {
			b.Fatal(err)
		}
		if err := net.PowerUpAll(120); err != nil {
			b.Fatal(err)
		}
		replies := net.Round(func(addr byte) frame.Query {
			return frame.Query{Dest: addr, Command: frame.CmdPing}
		})
		for addr, df := range replies {
			if df == nil {
				b.Fatalf("node %02x silent", addr)
			}
		}
		goodput = net.Stats().GoodputBps()
	}
	b.ReportMetric(goodput, "net_goodput_bps")
}

// BenchmarkExtensionCDMABandwidth verifies footnote 4's bandwidth
// argument across user counts, reporting the CDMA/FDMA spectrum ratio
// at 8 users (1.0 = the paper's claim).
func BenchmarkExtensionCDMABandwidth(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		fdma, cdma, err := phy.MultipleAccessBandwidth(8, 500)
		if err != nil {
			b.Fatal(err)
		}
		ratio = cdma / fdma
	}
	b.ReportMetric(ratio, "cdma/fdma_bandwidth")
}

// BenchmarkAblationFM0vsManchester compares the two bi-phase codes the
// paper names (§3.2) at equal AWGN, reporting the error ratio
// (FM0 errors / Manchester errors). Manchester holds a small raw-BER
// edge (independent per-bit decisions); FM0 wins on self-clocking.
func BenchmarkAblationFM0vsManchester(b *testing.B) {
	fm0, err := phy.NewFM0(8)
	if err != nil {
		b.Fatal(err)
	}
	man, err := phy.NewManchester(8)
	if err != nil {
		b.Fatal(err)
	}
	var ratio float64
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(17))
		fmErrs, manErrs := 1, 1
		for trial := 0; trial < 40; trial++ {
			bits := make([]phy.Bit, 100)
			for j := range bits {
				bits[j] = phy.Bit(rng.Intn(2))
			}
			w1, _ := fm0.Encode(bits, 1)
			w2 := man.Encode(bits)
			for j := range w1 {
				w1[j] += rng.NormFloat64()
				w2[j] += rng.NormFloat64()
			}
			got1, _ := fm0.DecodeFrom(w1, len(bits), 1)
			fmErrs += phy.CountBitErrors(bits, got1)
			manErrs += phy.CountBitErrors(bits, man.Decode(w2, len(bits)))
		}
		ratio = float64(fmErrs) / float64(manErrs)
	}
	b.ReportMetric(ratio, "fm0/manchester_errors")
}

// BenchmarkAblationLMSEqualizer quantifies what an LMS equalizer claws
// back from a two-tap ISI channel (the high-bitrate reverberation
// limiter of Fig 8), reporting the decision-error improvement factor.
func BenchmarkAblationLMSEqualizer(b *testing.B) {
	var improvement float64
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(8))
		train := make([]float64, 1500)
		for j := range train {
			train[j] = float64(rng.Intn(2))*2 - 1
		}
		isi := func(x []float64) []float64 {
			out := make([]float64, len(x))
			copy(out, x)
			for j := 2; j < len(x); j++ {
				out[j] += 0.65 * x[j-2]
			}
			return out
		}
		eq, err := dsp.NewLMSEqualizer(13, 0.2)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eq.Train(isi(train), train, 40); err != nil {
			b.Fatal(err)
		}
		data := make([]float64, 4000)
		for j := range data {
			data[j] = float64(rng.Intn(2))*2 - 1
		}
		rx := isi(data)
		for j := range rx {
			rx[j] += rng.NormFloat64() * 0.3
		}
		eqd := eq.Equalize(rx)
		rawErrs, eqErrs := 1, 1
		for j := range data {
			if (rx[j] > 0) != (data[j] > 0) {
				rawErrs++
			}
			if (eqd[j] > 0) != (data[j] > 0) {
				eqErrs++
			}
		}
		improvement = float64(rawErrs) / float64(eqErrs)
	}
	b.ReportMetric(improvement, "error_reduction")
}

// BenchmarkExtensionInventory measures the slotted-ALOHA discovery of a
// 64-node fleet, reporting slot efficiency (optimum 1/e).
func BenchmarkExtensionInventory(b *testing.B) {
	nodes := make([]byte, 64)
	for i := range nodes {
		nodes[i] = byte(i + 1)
	}
	var eff float64
	for i := 0; i < b.N; i++ {
		res, err := mac.Inventory(nodes, mac.DefaultInventoryConfig(), rand.New(rand.NewSource(7)))
		if err != nil {
			b.Fatal(err)
		}
		eff = res.Efficiency()
	}
	b.ReportMetric(eff, "slot_efficiency")
}

// BenchmarkAblationCoherentVsEnvelope quantifies the receiver's
// modulation-axis projection against plain envelope detection on the
// same recording. Multipath routinely rotates the backscatter phasor
// into quadrature with the direct carrier, where the envelope sees
// almost nothing — the projection is what makes arbitrary placements
// decodable. Reported metric: coherent/envelope measured-SNR ratio (dB).
func BenchmarkAblationCoherentVsEnvelope(b *testing.B) {
	// Use a placement whose backscatter arrives near quadrature with the
	// direct carrier (a common multipath outcome): envelope detection
	// collapses there while the projection decodes cleanly.
	cfg := core.DefaultLinkConfig()
	cfg.NodePos = channel.Vec3{X: cfg.NodePos.X + 0.08, Y: cfg.NodePos.Y + 0.15, Z: cfg.NodePos.Z + 0.12}
	n, err := core.NewPaperNode(0x01, 500, sensors.RoomTank())
	if err != nil {
		b.Fatal(err)
	}
	proj, err := core.NewPaperProjector(cfg.SampleRate)
	if err != nil {
		b.Fatal(err)
	}
	link, err := core.NewLink(cfg, n, proj)
	if err != nil {
		b.Fatal(err)
	}
	if err := link.EnsurePowered(120); err != nil {
		b.Fatal(err)
	}
	res, err := link.RunQuery(frame.Query{Dest: 0x01, Command: frame.CmdPing})
	if err != nil {
		b.Fatal(err)
	}
	if res.Decoded == nil {
		b.Fatal("no decode")
	}
	r := link.Receiver()
	var gainDB float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		volts, err := r.Hydro.Record(res.Recording)
		if err != nil {
			b.Fatal(err)
		}
		bb, err := r.Demodulate(volts, cfg.CarrierHz, link.Node().Bitrate())
		if err != nil {
			b.Fatal(err)
		}
		spb, _ := phy.SamplesPerBitFor(cfg.SampleRate, link.Node().Bitrate())
		fm0, _ := phy.NewFM0(spb)
		idx := res.Decoded.Sync.Index
		allBits := append(append([]phy.Bit{}, phy.PreambleBits...), res.Decoded.Bits...)
		env := dsp.Envelope(bb)
		envSNR := phy.MeasureSNR(env[idx:], allBits, fm0)
		coh := core.CoherentWaveAround(bb, idx, idx+len(allBits)*spb)
		cohSNR := phy.MeasureSNR(coh[idx:], allBits, fm0)
		if envSNR <= 0 {
			envSNR = 1e-6
		}
		gainDB = 10 * math.Log10(cohSNR/envSNR)
	}
	b.ReportMetric(gainDB, "coherent_gain_dB")
}
