package stream

import (
	"math"
	"sync"
	"testing"

	"pab/internal/core"
	"pab/internal/frame"
	"pab/internal/phy"
	"pab/internal/sensors"
)

// ---------------------------------------------------------------------
// Golden equivalence: the streaming decoder against the batch receiver
// on a real simulated reader↔node exchange, at several block sizes.
// ---------------------------------------------------------------------

type goldenCorpus struct {
	volts   []float64
	carrier float64
	bitrate float64
	gate    int
	fs      float64
	spb     int
	batch   *core.Decoded
	err     error
}

var (
	goldenOnce sync.Once
	golden     goldenCorpus
)

// loadGolden synthesises one powered exchange (the pabprof workload)
// and decodes it through the batch voltage-domain chain once.
func loadGolden(t *testing.T) *goldenCorpus {
	t.Helper()
	goldenOnce.Do(func() {
		cfg := core.DefaultLinkConfig()
		n, err := core.NewPaperNode(0x01, 500, sensors.RoomTank())
		if err != nil {
			golden.err = err
			return
		}
		proj, err := core.NewPaperProjector(cfg.SampleRate)
		if err != nil {
			golden.err = err
			return
		}
		link, err := core.NewLink(cfg, n, proj)
		if err != nil {
			golden.err = err
			return
		}
		if err := link.EnsurePowered(120); err != nil {
			golden.err = err
			return
		}
		res, err := link.RunQuery(frame.Query{Dest: 0x01, Command: frame.CmdPing})
		if err != nil {
			golden.err = err
			return
		}
		recv := link.Receiver()
		volts, err := recv.Hydro.Record(res.Recording)
		if err != nil {
			golden.err = err
			return
		}
		golden.volts = volts
		golden.carrier = cfg.CarrierHz
		golden.bitrate = link.Node().Bitrate()
		golden.gate = res.DecodeGate
		golden.fs = cfg.SampleRate
		golden.spb, _ = phy.SamplesPerBitFor(cfg.SampleRate, golden.bitrate)
		golden.batch, golden.err = recv.DecodeVolts(volts, golden.carrier, golden.bitrate, golden.gate)
	})
	if golden.err != nil {
		t.Fatalf("golden corpus: %v", golden.err)
	}
	return &golden
}

func TestStreamingMatchesBatchAcrossBlockSizes(t *testing.T) {
	g := loadGolden(t)
	tail := g.volts[g.gate:]
	for _, block := range []int{256, 1024, 4096, len(tail)} {
		d, err := NewDecoder(Config{
			SampleRate: g.fs,
			CarrierHz:  g.carrier,
			BitrateBps: g.bitrate,
			BlockSize:  block,
		})
		if err != nil {
			t.Fatalf("block %d: %v", block, err)
		}
		frames, err := d.Write(tail)
		if err != nil {
			t.Fatalf("block %d: write: %v", block, err)
		}
		flushed, err := d.Flush()
		if err != nil {
			t.Fatalf("block %d: flush: %v", block, err)
		}
		frames = append(frames, flushed...)
		if len(frames) != 1 {
			t.Fatalf("block %d: decoded %d frames, batch path decoded 1", block, len(frames))
		}
		f := frames[0]
		// Frames must be bit-identical to the batch decode.
		if len(f.Bits) != len(g.batch.Bits) {
			t.Fatalf("block %d: %d frame bits, batch decoded %d", block, len(f.Bits), len(g.batch.Bits))
		}
		for i := range f.Bits {
			if f.Bits[i] != g.batch.Bits[i] {
				t.Fatalf("block %d: bit %d differs from batch decode", block, i)
			}
		}
		if f.Frame.Source != g.batch.Frame.Source || f.Frame.Seq != g.batch.Frame.Seq {
			t.Fatalf("block %d: frame header %+v, batch %+v", block, f.Frame, g.batch.Frame)
		}
		// SNR within tolerance: the causal double-pass filter shapes the
		// noise slightly differently from the zero-phase batch filter.
		dSNR := math.Abs(f.SNRdB() - g.batch.SNRdB())
		if dSNR > 6 {
			t.Fatalf("block %d: SNR %.1f dB, batch %.1f dB (Δ %.1f > 6)", block, f.SNRdB(), g.batch.SNRdB(), dSNR)
		}
		// Lock position within tolerance of the batch lock (the causal
		// filter adds group delay the zero-phase batch filter does not).
		streamIdx := int(f.Start) + g.gate
		if d := abs(streamIdx - g.batch.Sync.Index); d > 2*g.spb {
			t.Fatalf("block %d: lock at %d, batch at %d (Δ %d > %d)", block, streamIdx, g.batch.Sync.Index, d, 2*g.spb)
		}
		if err := d.Close(); err != nil {
			t.Fatalf("block %d: close: %v", block, err)
		}
		st := d.Stats()
		if st.Frames != 1 || st.Samples != int64(len(tail)) {
			t.Fatalf("block %d: stats %+v", block, st)
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// ---------------------------------------------------------------------
// Synthetic-workload unit tests.
// ---------------------------------------------------------------------

// synthCfg is a small, fast configuration: 12 kHz sampling, 3 kHz
// carrier, 375 bit/s → 32 samples per bit.
func synthCfg() SynthConfig {
	return SynthConfig{
		SampleRate:  12000,
		CarrierHz:   3000,
		BitrateBps:  375,
		LeadSamples: 4000,
		TailSamples: 2000,
	}
}

func synthPacket(t *testing.T, payload []byte) []float64 {
	t.Helper()
	rec, err := SynthesizeRecording(synthCfg(), frame.DataFrame{Source: 0x21, Seq: 3, Payload: payload})
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

func decoderCfg(block int) Config {
	sc := synthCfg()
	return Config{
		SampleRate:      sc.SampleRate,
		CarrierHz:       sc.CarrierHz,
		BitrateBps:      sc.BitrateBps,
		BlockSize:       block,
		MaxPayloadBytes: 8,
	}
}

func feedAll(t *testing.T, d *Decoder, rec []float64, chunk int) []Frame {
	t.Helper()
	var out []Frame
	for off := 0; off < len(rec); off += chunk {
		end := off + chunk
		if end > len(rec) {
			end = len(rec)
		}
		fs, err := d.Write(rec[off:end])
		if err != nil {
			t.Fatalf("write: %v", err)
		}
		out = append(out, fs...)
	}
	fs, err := d.Flush()
	if err != nil {
		t.Fatalf("flush: %v", err)
	}
	return append(out, fs...)
}

func TestDecoderSynthSinglePacket(t *testing.T) {
	payload := []byte("hello")
	rec := synthPacket(t, payload)
	for _, chunk := range []int{100, 512, 1024, len(rec)} {
		d, err := NewDecoder(decoderCfg(512))
		if err != nil {
			t.Fatal(err)
		}
		frames := feedAll(t, d, rec, chunk)
		if len(frames) != 1 {
			t.Fatalf("chunk %d: %d frames, want 1 (stats %+v)", chunk, len(frames), d.Stats())
		}
		f := frames[0]
		if string(f.Frame.Payload) != string(payload) {
			t.Fatalf("chunk %d: payload %q, want %q", chunk, f.Frame.Payload, payload)
		}
		sc := synthCfg()
		if d := absDiff64(f.Start, int64(sc.LeadSamples)); d > int64(2*32) {
			t.Fatalf("chunk %d: frame start %d, packet injected at %d", chunk, f.Start, sc.LeadSamples)
		}
		d.Close()
	}
}

func TestDecoderCarrierAutoDetect(t *testing.T) {
	payload := []byte{0xAA, 0x55}
	rec := synthPacket(t, payload)
	cfg := decoderCfg(512)
	cfg.CarrierHz = 0
	cfg.CarrierDetectSamples = 2048
	d, err := NewDecoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	frames := feedAll(t, d, rec, 700)
	if len(frames) != 1 {
		t.Fatalf("%d frames, want 1 (stats %+v)", len(frames), d.Stats())
	}
	if string(frames[0].Frame.Payload) != string(payload) {
		t.Fatalf("payload %q, want %q", frames[0].Frame.Payload, payload)
	}
	got := d.Stats().CarrierHz
	if math.Abs(got-synthCfg().CarrierHz) > 30 {
		t.Fatalf("detected carrier %g Hz, injected 3000", got)
	}
}

func TestDecoderWindowStaysBounded(t *testing.T) {
	cfg := decoderCfg(512)
	d, err := NewDecoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	// Feed a long unmodulated carrier: nothing ever decodes, so the
	// window must slide rather than grow.
	sc := synthCfg()
	carrier := make([]float64, 60000)
	w := twoPi * sc.CarrierHz / sc.SampleRate
	for i := range carrier {
		carrier[i] = math.Sin(w * float64(i))
	}
	if _, err := d.Write(carrier); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.WindowLen > d.windowCap {
		t.Fatalf("window %d samples, cap %d", st.WindowLen, d.windowCap)
	}
	if st.Resyncs == 0 {
		t.Fatalf("no window slides over %d undecodable samples (stats %+v)", len(carrier), st)
	}
	if st.Frames != 0 {
		t.Fatalf("decoded %d frames from an unmodulated carrier", st.Frames)
	}
}

func TestDecoderTwoPacketsInOneStream(t *testing.T) {
	recA := synthPacket(t, []byte("pkt-A"))
	recB := synthPacket(t, []byte("pkt-B"))
	recAB := append(append([]float64{}, recA...), recB...)
	d, err := NewDecoder(decoderCfg(512))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	frames := feedAll(t, d, recAB, 900)
	if len(frames) != 2 {
		t.Fatalf("%d frames, want 2 (stats %+v)", len(frames), d.Stats())
	}
	if string(frames[0].Frame.Payload) != "pkt-A" || string(frames[1].Frame.Payload) != "pkt-B" {
		t.Fatalf("payloads %q, %q", frames[0].Frame.Payload, frames[1].Frame.Payload)
	}
	if frames[1].Start <= frames[0].End-int64(32) {
		t.Fatalf("frame positions overlap: %d..%d then %d..%d",
			frames[0].Start, frames[0].End, frames[1].Start, frames[1].End)
	}
}

func TestDecoderClosedErrors(t *testing.T) {
	d, err := NewDecoder(decoderCfg(512))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Write([]float64{1, 2, 3}); err == nil {
		t.Fatal("Write after Close did not error")
	}
	if _, err := d.Flush(); err == nil {
		t.Fatal("Flush after Close did not error")
	}
	if err := d.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
}

func TestDecoderConfigValidation(t *testing.T) {
	bad := []Config{
		{SampleRate: 0, BitrateBps: 100},
		{SampleRate: 8000, BitrateBps: 0},
		{SampleRate: 8000, BitrateBps: 100, CarrierHz: 4000}, // ≥ fs/2
		{SampleRate: 8000, BitrateBps: 100, CarrierHz: -1},
	}
	for i, cfg := range bad {
		if _, err := NewDecoder(cfg); err == nil {
			t.Fatalf("config %d accepted: %+v", i, cfg)
		}
	}
}
