// Package streamd is the service layer over the streaming decoder: a
// hub of concurrent per-stream decode sessions with admission control,
// idle reaping and graceful drain, plus the HTTP ingestion API the
// pabstream daemon serves. The pure sample pipeline lives in
// package stream; everything that needs a clock, a mutex or a
// goroutine lives here.
package streamd

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pab/internal/stream"
	"pab/internal/telemetry"
)

// Flow-control errors, mapped onto HTTP by the server.
var (
	// ErrDraining rejects new streams while the hub shuts down.
	ErrDraining = errors.New("streamd: hub is draining")
	// ErrTooManyStreams sheds stream opens past the admission limit.
	ErrTooManyStreams = errors.New("streamd: too many concurrent streams")
	// ErrSessionClosed rejects writes to a closed session.
	ErrSessionClosed = errors.New("streamd: session is closed")
)

// Sample formats accepted on ingest.
const (
	// FormatF64LE is little-endian float64 PCM (the simulator's native
	// voltage samples).
	FormatF64LE = "f64le"
	// FormatS16LE is little-endian int16 PCM scaled to ±1 (what a
	// sound-card capture produces).
	FormatS16LE = "s16le"
)

// bytesPerSample returns the frame size of a format (0 for unknown).
func bytesPerSample(format string) int {
	switch format {
	case FormatF64LE:
		return 8
	case FormatS16LE:
		return 2
	default:
		return 0
	}
}

// Config parameterises a hub.
type Config struct {
	// Decoder is the per-stream decoder template; each session gets
	// its own decoder built from a copy.
	Decoder stream.Config
	// MaxStreams bounds concurrent sessions (default 1024); opens past
	// it get ErrTooManyStreams, the load-shedding contract pabd set.
	MaxStreams int
	// IdleTimeout reaps sessions with no writes for this long
	// (default 60s; ≤0 keeps the reaper off).
	IdleTimeout time.Duration
	// RetryAfter is the backoff hint returned with shed opens
	// (default 1s).
	RetryAfter time.Duration
}

func (c *Config) applyDefaults() {
	if c.MaxStreams <= 0 {
		c.MaxStreams = 1024
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
}

// Hub owns the live sessions. Lock order: Hub.mu before Session.mu,
// never the reverse.
type Hub struct {
	cfg Config

	mu       sync.Mutex
	sessions map[string]*Session
	nextID   uint64
	draining bool

	done     chan struct{}
	stopOnce sync.Once
	reapWG   sync.WaitGroup
}

// NewHub builds a hub and starts its idle reaper (when configured).
func NewHub(cfg Config) *Hub {
	cfg.applyDefaults()
	h := &Hub{
		cfg:      cfg,
		sessions: make(map[string]*Session),
		done:     make(chan struct{}),
	}
	if cfg.IdleTimeout > 0 {
		h.reapWG.Add(1)
		go h.reap()
	}
	return h
}

// Open admits a new stream session. format must be a Format* constant;
// override, when non-nil, replaces the decoder template (the API lets
// a client pick its own rate/carrier/bitrate).
func (h *Hub) Open(format string, override *stream.Config) (*Session, error) {
	if bytesPerSample(format) == 0 {
		return nil, fmt.Errorf("streamd: unknown sample format %q", format)
	}
	dcfg := h.cfg.Decoder
	if override != nil {
		dcfg = *override
	}
	id, err := h.admit()
	if err != nil {
		telemetry.Inc(telemetry.MStreamStreamsRejectedTotal)
		if errors.Is(err, ErrTooManyStreams) {
			telemetry.Inc(telemetry.MStreamShedTotal)
		}
		return nil, err
	}

	// Build the decoder outside the lock: window allocation is the
	// expensive part of admission.
	dec, err := stream.NewDecoder(dcfg)
	if err != nil {
		return nil, err
	}
	s := &Session{ID: id, hub: h, dec: dec, format: format}
	s.touch()

	active, err := h.install(s)
	if err != nil {
		dec.Close()
		telemetry.Inc(telemetry.MStreamStreamsRejectedTotal)
		return nil, err
	}
	telemetry.Inc(telemetry.MStreamStreamsOpenedTotal)
	telemetry.Set(telemetry.MStreamStreamsActive, float64(active))
	return s, nil
}

// admit checks admission (drain state, stream cap) and reserves an id.
func (h *Hub) admit() (string, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.draining {
		return "", ErrDraining
	}
	if len(h.sessions) >= h.cfg.MaxStreams {
		return "", ErrTooManyStreams
	}
	h.nextID++
	return "s" + strconv.FormatUint(h.nextID, 10), nil
}

// install registers a built session, re-checking the drain flag that
// may have flipped while the decoder was allocating. Returns the
// active-session count.
func (h *Hub) install(s *Session) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.draining {
		return 0, ErrDraining
	}
	h.sessions[s.ID] = s
	return len(h.sessions), nil
}

// Get returns a live session by id.
func (h *Hub) Get(id string) (*Session, bool) {
	h.mu.Lock()
	s, ok := h.sessions[id]
	h.mu.Unlock()
	return s, ok
}

// Close flushes and tears down one session, returning the frames the
// flush recovered.
func (h *Hub) Close(id string) ([]stream.Frame, error) {
	h.mu.Lock()
	s, ok := h.sessions[id]
	delete(h.sessions, id)
	active := len(h.sessions)
	h.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("streamd: no such stream %q", id)
	}
	telemetry.Inc(telemetry.MStreamStreamsClosedTotal)
	telemetry.Set(telemetry.MStreamStreamsActive, float64(active))
	return s.finish()
}

// ActiveCount returns the number of live sessions.
func (h *Hub) ActiveCount() int {
	h.mu.Lock()
	n := len(h.sessions)
	h.mu.Unlock()
	return n
}

// Draining reports whether intake has stopped.
func (h *Hub) Draining() bool {
	h.mu.Lock()
	d := h.draining
	h.mu.Unlock()
	return d
}

// RetryAfterSeconds is the backoff hint for shed opens, ≥ 1.
func (h *Hub) RetryAfterSeconds() int {
	secs := int(h.cfg.RetryAfter.Seconds())
	if secs < 1 {
		secs = 1
	}
	return secs
}

// BeginDrain stops intake: subsequent Opens fail with ErrDraining.
// Existing sessions keep writing until Drain flushes them.
func (h *Hub) BeginDrain() {
	h.mu.Lock()
	h.draining = true
	h.mu.Unlock()
}

// Drain stops intake, flushes every in-flight session's window (the
// graceful-SIGTERM contract: buffered blocks decode before exit), and
// stops the reaper. It returns ctx's error if the deadline cut the
// flush short.
func (h *Hub) Drain(ctx context.Context) error {
	h.BeginDrain()
	h.stopOnce.Do(func() { close(h.done) })

	h.mu.Lock()
	rest := make([]*Session, 0, len(h.sessions))
	for _, s := range h.sessions {
		rest = append(rest, s)
	}
	h.sessions = make(map[string]*Session)
	h.mu.Unlock()

	var err error
	for _, s := range rest {
		if cerr := ctx.Err(); cerr != nil {
			err = cerr
			s.discard()
			continue
		}
		if _, ferr := s.finish(); ferr != nil && !errors.Is(ferr, ErrSessionClosed) && err == nil {
			err = ferr
		}
		telemetry.Inc(telemetry.MStreamStreamsClosedTotal)
	}
	telemetry.Set(telemetry.MStreamStreamsActive, 0)
	h.reapWG.Wait()
	return err
}

// reap closes sessions idle past the configured timeout.
func (h *Hub) reap() {
	defer h.reapWG.Done()
	period := h.cfg.IdleTimeout / 4
	if period < time.Second {
		period = time.Second
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-h.done:
			return
		case now := <-t.C:
			h.reapIdle(now)
		}
	}
}

// reapIdle tears down every session whose last write is older than the
// idle timeout. Flush results are discarded — an abandoned stream has
// nobody left to deliver frames to.
func (h *Hub) reapIdle(now time.Time) {
	cutoff := now.Add(-h.cfg.IdleTimeout).UnixNano()
	h.mu.Lock()
	var idle []*Session
	for id, s := range h.sessions {
		if s.last.Load() < cutoff {
			idle = append(idle, s)
			delete(h.sessions, id)
		}
	}
	active := len(h.sessions)
	h.mu.Unlock()
	for _, s := range idle {
		s.discard()
		telemetry.Inc(telemetry.MStreamStreamsReapedTotal)
		telemetry.Inc(telemetry.MStreamStreamsClosedTotal)
	}
	if len(idle) > 0 {
		telemetry.Set(telemetry.MStreamStreamsActive, float64(active))
	}
}

// Session is one client stream: a decoder, its sample format, and the
// byte-to-sample conversion state. Writes are serialised by mu; last
// is atomic so the reaper never takes Session.mu (Hub.mu → Session.mu
// is the only nesting).
type Session struct {
	ID     string
	hub    *Hub
	format string

	mu     sync.Mutex
	dec    *stream.Decoder
	carry  [8]byte // partial sample bytes between chunks
	carryN int
	conv   []float64 // conversion scratch, grown once per session
	frames int64
	closed bool

	last atomic.Int64 // unix nanos of the last write
}

// touch records write activity for the idle reaper.
func (s *Session) touch() { s.last.Store(time.Now().UnixNano()) }

// WriteBytes converts one chunk of PCM bytes and feeds the decoder,
// returning any frames it completed. A trailing partial sample is
// carried into the next call (chunked transfer encoding tears at
// arbitrary byte offsets).
func (s *Session) WriteBytes(b []byte) ([]stream.Frame, error) {
	s.touch()
	telemetry.Add(telemetry.MStreamBytesTotal, int64(len(b)))
	width := bytesPerSample(s.format)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrSessionClosed
	}
	n := (s.carryN + len(b)) / width
	if cap(s.conv) < n {
		s.conv = make([]float64, n)
	}
	samples := s.conv[:n]
	for i := range samples {
		samples[i] = s.nextSampleLocked(&b, width)
	}
	// Stash the leftover tail for the next chunk.
	for len(b) > 0 {
		s.carry[s.carryN] = b[0]
		s.carryN++
		b = b[1:]
	}
	return s.writeLocked(samples)
}

// nextSampleLocked decodes one sample from the carry plus *b,
// consuming the bytes it used. Callers guarantee enough bytes remain.
func (s *Session) nextSampleLocked(b *[]byte, width int) float64 {
	var raw [8]byte
	k := copy(raw[:width], s.carry[:s.carryN])
	k += copy(raw[k:width], *b)
	*b = (*b)[k-s.carryN:]
	s.carryN = 0
	switch s.format {
	case FormatS16LE:
		return float64(int16(binary.LittleEndian.Uint16(raw[:2]))) / 32768
	default: // FormatF64LE
		return math.Float64frombits(binary.LittleEndian.Uint64(raw[:8]))
	}
}

// WriteSamples feeds already-converted samples (the in-process path
// the stream benchmark drives).
func (s *Session) WriteSamples(samples []float64) ([]stream.Frame, error) {
	s.touch()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrSessionClosed
	}
	return s.writeLocked(samples)
}

// writeLocked runs the decoder and observes decode latency.
func (s *Session) writeLocked(samples []float64) ([]stream.Frame, error) {
	start := time.Now()
	frames, err := s.dec.Write(samples)
	telemetry.Observe(telemetry.MStreamDecodeLatencySeconds, time.Since(start).Seconds())
	s.frames += int64(len(frames))
	return frames, err
}

// Flush decodes whatever the session's window still holds.
func (s *Session) Flush() ([]stream.Frame, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrSessionClosed
	}
	frames, err := s.dec.Flush()
	s.frames += int64(len(frames))
	return frames, err
}

// Stats snapshots the underlying decoder plus the session frame count.
func (s *Session) Stats() (stream.Stats, int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return stream.Stats{}, s.frames
	}
	return s.dec.Stats(), s.frames
}

// finish flushes and closes the session.
func (s *Session) finish() ([]stream.Frame, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrSessionClosed
	}
	frames, err := s.dec.Flush()
	s.frames += int64(len(frames))
	s.closed = true
	s.dec.Close()
	return frames, err
}

// discard closes the session without flushing (reaper/deadline path).
func (s *Session) discard() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	s.dec.Close()
}
