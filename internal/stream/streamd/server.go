package streamd

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"pab/internal/stream"
)

// maxChunkBytes bounds one ingest request body: at 8 bytes per sample
// that is one second of 96 kHz float64 PCM with headroom.
const maxChunkBytes = 8 << 20

// ioChunk is the read granularity for streamed request bodies.
const ioChunk = 32 << 10

// Server is the pabstream HTTP API over a Hub:
//
//	POST   /v1/streams              open a stream ({format, config overrides})
//	POST   /v1/streams/{id}/chunks  feed PCM bytes; NDJSON frame rows + ack
//	GET    /v1/streams/{id}         decoder stats
//	DELETE /v1/streams/{id}         flush + close; NDJSON frame rows + eos
//	POST   /v1/decode               one-shot: PCM body in, NDJSON frames out
//	GET    /healthz                 liveness + active stream count
type Server struct {
	hub *Hub
}

// NewServer wraps a hub.
func NewServer(h *Hub) *Server { return &Server{hub: h} }

// Handler returns the route table.
func (sv *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/streams", sv.handleOpen)
	mux.HandleFunc("POST /v1/streams/{id}/chunks", sv.handleChunk)
	mux.HandleFunc("GET /v1/streams/{id}", sv.handleStats)
	mux.HandleFunc("DELETE /v1/streams/{id}", sv.handleClose)
	mux.HandleFunc("POST /v1/decode", sv.handleOneShot)
	mux.HandleFunc("GET /healthz", sv.handleHealthz)
	return mux
}

type apiError struct {
	Error string `json:"error"`
}

// openRequest is the stream-creation body. Zero-valued fields fall
// back to the hub's decoder template.
type openRequest struct {
	Format     string  `json:"format"`
	SampleRate float64 `json:"sample_rate,omitempty"`
	CarrierHz  float64 `json:"carrier_hz,omitempty"`
	BitrateBps float64 `json:"bitrate_bps,omitempty"`
	BlockSize  int     `json:"block,omitempty"`
	MaxPayload int     `json:"max_payload_bytes,omitempty"`
}

// frameRow is one decoded packet as an NDJSON row. Payload marshals as
// base64 (encoding/json's []byte convention).
type frameRow struct {
	Type              string  `json:"type"`
	Stream            string  `json:"stream,omitempty"`
	Start             int64   `json:"start"`
	End               int64   `json:"end"`
	Source            byte    `json:"source"`
	Seq               byte    `json:"seq"`
	Payload           []byte  `json:"payload"`
	SNRdB             float64 `json:"snr_db"`
	SyncPeak          float64 `json:"sync_peak"`
	CFOHz             float64 `json:"cfo_hz"`
	PreambleBitErrors int     `json:"preamble_bit_errors"`
}

func toRow(id string, f stream.Frame) frameRow {
	return frameRow{
		Type:              "frame",
		Stream:            id,
		Start:             f.Start,
		End:               f.End,
		Source:            f.Frame.Source,
		Seq:               f.Frame.Seq,
		Payload:           f.Frame.Payload,
		SNRdB:             f.SNRdB(),
		SyncPeak:          f.Sync.Score,
		CFOHz:             f.CFOHz,
		PreambleBitErrors: f.PreambleBitErrors,
	}
}

func (sv *Server) handleOpen(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxChunkBytes))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{err.Error()})
		return
	}
	req := openRequest{Format: FormatF64LE}
	if len(body) > 0 {
		if err := json.Unmarshal(body, &req); err != nil {
			writeJSON(w, http.StatusBadRequest, apiError{fmt.Sprintf("bad request body: %v", err)})
			return
		}
		if req.Format == "" {
			req.Format = FormatF64LE
		}
	}
	dcfg := sv.hub.cfg.Decoder
	if req.SampleRate > 0 {
		dcfg.SampleRate = req.SampleRate
	}
	if req.CarrierHz > 0 {
		dcfg.CarrierHz = req.CarrierHz
	}
	if req.BitrateBps > 0 {
		dcfg.BitrateBps = req.BitrateBps
	}
	if req.BlockSize > 0 {
		dcfg.BlockSize = req.BlockSize
	}
	if req.MaxPayload > 0 {
		dcfg.MaxPayloadBytes = req.MaxPayload
	}
	s, err := sv.hub.Open(req.Format, &dcfg)
	if err != nil {
		sv.writeOpenError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{
		"id":     s.ID,
		"format": s.format,
	})
}

// writeOpenError maps admission errors onto HTTP: 429 with Retry-After
// when the hub sheds load, 503 during drain, 400 otherwise.
func (sv *Server) writeOpenError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrTooManyStreams):
		w.Header().Set("Retry-After", strconv.Itoa(sv.hub.RetryAfterSeconds()))
		writeJSON(w, http.StatusTooManyRequests, apiError{err.Error()})
	case errors.Is(err, ErrDraining):
		writeJSON(w, http.StatusServiceUnavailable, apiError{err.Error()})
	default:
		writeJSON(w, http.StatusBadRequest, apiError{err.Error()})
	}
}

// handleChunk streams one request body into a session, writing a frame
// row the moment a packet decodes and an ack row at the end.
func (sv *Server) handleChunk(w http.ResponseWriter, r *http.Request) {
	s, ok := sv.hub.Get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{"no such stream"})
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	var written int64
	var nFrames int
	buf := make([]byte, ioChunk)
	body := io.LimitReader(r.Body, maxChunkBytes)
	for {
		n, rerr := body.Read(buf)
		if n > 0 {
			written += int64(n)
			frames, werr := s.WriteBytes(buf[:n])
			for _, f := range frames {
				enc.Encode(toRow(s.ID, f))
				nFrames++
			}
			if werr != nil {
				enc.Encode(apiError{werr.Error()})
				return
			}
		}
		if rerr != nil {
			if rerr != io.EOF {
				enc.Encode(apiError{rerr.Error()})
				return
			}
			break
		}
	}
	enc.Encode(map[string]any{"type": "ack", "bytes": written, "frames": nFrames})
}

func (sv *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s, ok := sv.hub.Get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{"no such stream"})
		return
	}
	st, frames := s.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"id":     s.ID,
		"format": s.format,
		"frames": frames,
		"stats":  st,
	})
}

func (sv *Server) handleClose(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	frames, err := sv.hub.Close(id)
	if err != nil {
		writeJSON(w, http.StatusNotFound, apiError{err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	for _, f := range frames {
		enc.Encode(toRow(id, f))
	}
	enc.Encode(map[string]any{"type": "eos", "stream": id, "frames": len(frames)})
}

// handleOneShot decodes a whole PCM body in one request — open, feed,
// flush, close — for curl-style use without session bookkeeping.
// Frame rows stream out while the body is still uploading (chunked
// transfer), which needs full-duplex on HTTP/1.x.
func (sv *Server) handleOneShot(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	format := q.Get("format")
	if format == "" {
		format = FormatF64LE
	}
	dcfg := sv.hub.cfg.Decoder
	if v, err := strconv.ParseFloat(q.Get("rate"), 64); err == nil && v > 0 {
		dcfg.SampleRate = v
	}
	if v, err := strconv.ParseFloat(q.Get("carrier"), 64); err == nil && v >= 0 {
		dcfg.CarrierHz = v
	}
	if v, err := strconv.ParseFloat(q.Get("bitrate"), 64); err == nil && v > 0 {
		dcfg.BitrateBps = v
	}
	s, err := sv.hub.Open(format, &dcfg)
	if err != nil {
		sv.writeOpenError(w, err)
		return
	}
	rc := http.NewResponseController(w)
	rc.EnableFullDuplex()
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	nFrames := 0
	buf := make([]byte, ioChunk)
	body := io.LimitReader(r.Body, maxChunkBytes)
	for {
		n, rerr := body.Read(buf)
		if n > 0 {
			frames, werr := s.WriteBytes(buf[:n])
			for _, f := range frames {
				enc.Encode(toRow("", f))
				nFrames++
			}
			if werr != nil {
				enc.Encode(apiError{werr.Error()})
				sv.hub.Close(s.ID)
				return
			}
			rc.Flush()
		}
		if rerr != nil {
			if rerr != io.EOF {
				enc.Encode(apiError{rerr.Error()})
				sv.hub.Close(s.ID)
				return
			}
			break
		}
	}
	frames, _ := sv.hub.Close(s.ID)
	for _, f := range frames {
		enc.Encode(toRow("", f))
		nFrames++
	}
	enc.Encode(map[string]any{"type": "eos", "frames": nFrames})
}

func (sv *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	status := "ok"
	if sv.hub.Draining() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  status,
		"streams": sv.hub.ActiveCount(),
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}
