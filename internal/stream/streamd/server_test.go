package streamd

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"pab/internal/frame"
	"pab/internal/stream"
	"pab/internal/testutil"
)

// testSynthCfg is the small fast workload: 12 kHz, 3 kHz carrier,
// 375 bit/s (32 samples per bit).
func testSynthCfg() stream.SynthConfig {
	return stream.SynthConfig{
		SampleRate:  12000,
		CarrierHz:   3000,
		BitrateBps:  375,
		LeadSamples: 4000,
		TailSamples: 2000,
	}
}

func testHubCfg() Config {
	sc := testSynthCfg()
	return Config{
		Decoder: stream.Config{
			SampleRate:      sc.SampleRate,
			CarrierHz:       sc.CarrierHz,
			BitrateBps:      sc.BitrateBps,
			BlockSize:       512,
			MaxPayloadBytes: 16,
		},
		MaxStreams: 256,
		RetryAfter: 2 * time.Second,
	}
}

func testRecording(t *testing.T, payload []byte) []float64 {
	t.Helper()
	rec, err := stream.SynthesizeRecording(testSynthCfg(), frame.DataFrame{Source: 0x31, Seq: 1, Payload: payload})
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

func f64leBytes(samples []float64) []byte {
	out := make([]byte, len(samples)*8)
	for i, v := range samples {
		binary.LittleEndian.PutUint64(out[i*8:], math.Float64bits(v))
	}
	return out
}

func s16leBytes(samples []float64) []byte {
	out := make([]byte, len(samples)*2)
	for i, v := range samples {
		binary.LittleEndian.PutUint16(out[i*2:], uint16(int16(v*2000)))
	}
	return out
}

// drainHub drains with a deadline and fails the test on error.
func drainHub(t *testing.T, h *Hub) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := h.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestStreamSmoke64 runs 64 concurrent HTTP streams end to end — open,
// chunked feed, close — and checks every stream decoded its frame and
// no goroutine survived the drain. This is the CI stream-smoke job's
// core test; run it with -race.
func TestStreamSmoke64(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	hub := NewHub(testHubCfg())
	srv := httptest.NewServer(NewServer(hub).Handler())
	defer srv.Close()

	const nStreams = 64
	var wg sync.WaitGroup
	errs := make(chan error, nStreams)
	frameCount := make(chan int, nStreams)
	for i := 0; i < nStreams; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			n, err := runOneStream(srv.URL, fmt.Sprintf("worker-%02d", i))
			if err != nil {
				errs <- err
				return
			}
			frameCount <- n
		}(i)
	}
	wg.Wait()
	close(errs)
	close(frameCount)
	for err := range errs {
		t.Fatal(err)
	}
	total := 0
	for n := range frameCount {
		total += n
	}
	if total != nStreams {
		t.Fatalf("decoded %d frames across %d streams, want exactly one each", total, nStreams)
	}
	if hub.ActiveCount() != 0 {
		t.Fatalf("%d sessions still active after all closes", hub.ActiveCount())
	}
	drainHub(t, hub)
}

// runOneStream opens a stream, feeds one synthetic packet in chunks,
// closes it, and returns how many frame rows came back.
func runOneStream(base, payload string) (int, error) {
	rec, err := stream.SynthesizeRecording(testSynthCfg(), frame.DataFrame{Source: 0x31, Seq: 1, Payload: []byte(payload)})
	if err != nil {
		return 0, err
	}
	body := f64leBytes(rec)

	resp, err := http.Post(base+"/v1/streams", "application/json", strings.NewReader(`{"format":"f64le"}`))
	if err != nil {
		return 0, err
	}
	var opened struct {
		ID string `json:"id"`
	}
	err = json.NewDecoder(resp.Body).Decode(&opened)
	resp.Body.Close()
	if err != nil || opened.ID == "" {
		return 0, fmt.Errorf("open: %v (id %q)", err, opened.ID)
	}

	frames := 0
	// Feed in chunks whose size is NOT a multiple of the 8-byte sample
	// width, so the byte-carry path is exercised.
	const chunk = 8*1024 + 3
	for off := 0; off < len(body); off += chunk {
		end := off + chunk
		if end > len(body) {
			end = len(body)
		}
		resp, err := http.Post(fmt.Sprintf("%s/v1/streams/%s/chunks", base, opened.ID),
			"application/octet-stream", bytes.NewReader(body[off:end]))
		if err != nil {
			return 0, err
		}
		n, err := countFrameRows(resp)
		if err != nil {
			return 0, err
		}
		frames += n
	}

	req, err := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/streams/%s", base, opened.ID), nil)
	if err != nil {
		return 0, err
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		return 0, err
	}
	n, err := countFrameRows(resp)
	if err != nil {
		return 0, err
	}
	return frames + n, nil
}

// countFrameRows reads an NDJSON response, verifying the payload of
// every frame row round-trips, and returns the frame-row count.
func countFrameRows(resp *http.Response) (int, error) {
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("status %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	frames := 0
	for sc.Scan() {
		var row struct {
			Type    string `json:"type"`
			Payload []byte `json:"payload"`
			Error   string `json:"error"`
		}
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			return 0, fmt.Errorf("bad row %q: %v", sc.Text(), err)
		}
		if row.Error != "" {
			return 0, fmt.Errorf("error row: %s", row.Error)
		}
		if row.Type == "frame" {
			if len(row.Payload) == 0 {
				return 0, fmt.Errorf("frame row with empty payload")
			}
			frames++
		}
	}
	return frames, sc.Err()
}

// TestAdmissionLimit checks the 429 + Retry-After load-shedding
// contract at the stream cap, and that capacity frees on close.
func TestAdmissionLimit(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	cfg := testHubCfg()
	cfg.MaxStreams = 2
	hub := NewHub(cfg)
	srv := httptest.NewServer(NewServer(hub).Handler())
	defer srv.Close()

	open := func() (*http.Response, string) {
		resp, err := http.Post(srv.URL+"/v1/streams", "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		var opened struct {
			ID string `json:"id"`
		}
		json.NewDecoder(resp.Body).Decode(&opened)
		resp.Body.Close()
		return resp, opened.ID
	}
	resp1, id1 := open()
	resp2, _ := open()
	if resp1.StatusCode != http.StatusCreated || resp2.StatusCode != http.StatusCreated {
		t.Fatalf("opens under the cap: %d, %d", resp1.StatusCode, resp2.StatusCode)
	}
	resp3, _ := open()
	if resp3.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("open past the cap: %d, want 429", resp3.StatusCode)
	}
	if ra := resp3.Header.Get("Retry-After"); ra != "2" {
		t.Fatalf("Retry-After %q, want \"2\"", ra)
	}
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/streams/"+id1, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp4, _ := open(); resp4.StatusCode != http.StatusCreated {
		t.Fatalf("open after a close: %d, want 201", resp4.StatusCode)
	}
	drainHub(t, hub)
}

// TestDrainFlushesBufferedFrames feeds a packet all the way except
// through the final decode trigger, then drains: the drain's flush
// must recover the frame from the in-flight window.
func TestDrainFlushesBufferedFrames(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	hub := NewHub(testHubCfg())
	s, err := hub.Open(FormatF64LE, nil)
	if err != nil {
		t.Fatal(err)
	}
	rec := testRecording(t, []byte("buffered"))
	// Stop just past the packet's last sample — before the candidate's
	// full max-packet extent fits the window, so no mid-stream decode
	// has triggered, but with enough margin for the causal filter's
	// group delay to deliver the final bits.
	sc := testSynthCfg()
	cut := len(rec) - sc.TailSamples + 256
	if _, err := s.WriteSamples(rec[:cut]); err != nil {
		t.Fatal(err)
	}
	st, _ := s.Stats()
	if st.Samples != int64(cut) {
		t.Fatalf("session saw %d samples, wrote %d", st.Samples, cut)
	}
	// Drain must flush the window; the frame surfaces in the session's
	// counters even though nobody is left to read it.
	drainHub(t, hub)
	_, sessionFrames := s.Stats()
	if sessionFrames != 1 {
		t.Fatalf("drain flush recovered %d frames, want 1", sessionFrames)
	}
	if _, err := s.WriteSamples([]float64{0}); err == nil {
		t.Fatal("write after drain did not error")
	}
	if _, err := hub.Open(FormatF64LE, nil); err == nil {
		t.Fatal("open after drain did not error")
	}
}

// TestOneShotDecode round-trips a whole recording through POST
// /v1/decode in s16le, the sound-card format.
func TestOneShotDecode(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	hub := NewHub(testHubCfg())
	srv := httptest.NewServer(NewServer(hub).Handler())
	defer srv.Close()

	rec := testRecording(t, []byte("oneshot"))
	resp, err := http.Post(srv.URL+"/v1/decode?format=s16le", "application/octet-stream",
		bytes.NewReader(s16leBytes(rec)))
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	var payload string
	frames := 0
	for sc.Scan() {
		var row struct {
			Type    string `json:"type"`
			Payload []byte `json:"payload"`
		}
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			t.Fatalf("bad row %q: %v", sc.Text(), err)
		}
		if row.Type == "frame" {
			frames++
			payload = string(row.Payload)
		}
	}
	resp.Body.Close()
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if frames != 1 || payload != "oneshot" {
		t.Fatalf("one-shot decoded %d frames, payload %q", frames, payload)
	}
	if hub.ActiveCount() != 0 {
		t.Fatalf("one-shot leaked a session: %d active", hub.ActiveCount())
	}
	drainHub(t, hub)
}

// TestIdleReaper checks that an abandoned session is torn down.
func TestIdleReaper(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	cfg := testHubCfg()
	cfg.IdleTimeout = 50 * time.Millisecond
	hub := NewHub(cfg)
	s, err := hub.Open(FormatF64LE, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.WriteSamples(make([]float64, 64)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for hub.ActiveCount() > 0 {
		if time.Now().After(deadline) {
			t.Fatal("idle session never reaped")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := s.WriteSamples([]float64{0}); err == nil {
		t.Fatal("write to a reaped session did not error")
	}
	drainHub(t, hub)
}
