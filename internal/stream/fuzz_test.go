package stream

import (
	"testing"

	"pab/internal/frame"
)

// FuzzChunkResync drives the streaming decoder with fuzz-chosen chunk
// boundaries — including 1-sample chunks, torn preambles and a short
// final chunk — and checks the invariant the whole design rests on:
// chunking never panics, and never loses a frame the monolithic feed
// of the same samples decodes. Payload content is fuzz-chosen too, so
// the resync logic is exercised across frame lengths.
func FuzzChunkResync(f *testing.F) {
	f.Add([]byte("hi"), []byte{1, 7, 255})
	f.Add([]byte{}, []byte{0})
	f.Add([]byte{0xAA, 0x55, 0x00, 0xFF}, []byte{3, 3, 3, 3, 3, 3})
	f.Add([]byte("abcdefgh"), []byte{128, 1, 64})
	f.Fuzz(func(t *testing.T, payload, cuts []byte) {
		if len(payload) > 8 {
			payload = payload[:8]
		}
		sc := SynthConfig{
			SampleRate:  8000,
			CarrierHz:   2000,
			BitrateBps:  500, // 16 samples per bit
			LeadSamples: 1200,
			TailSamples: 600,
		}
		rec, err := SynthesizeRecording(sc, frame.DataFrame{Source: 0x42, Seq: 9, Payload: payload})
		if err != nil {
			t.Fatalf("synth: %v", err)
		}
		cfg := Config{
			SampleRate:      sc.SampleRate,
			CarrierHz:       sc.CarrierHz,
			BitrateBps:      sc.BitrateBps,
			BlockSize:       256,
			MaxPayloadBytes: 8,
		}

		// Reference: the same recording fed in one Write.
		mono := mustDecodeAll(t, cfg, rec, nil)

		// Fuzzed chunking: cut sizes come from the fuzz input (0 → an
		// empty Write; the tail past the last cut is the short final
		// chunk).
		chunked := mustDecodeAll(t, cfg, rec, cuts)

		if len(chunked) != len(mono) {
			t.Fatalf("chunked feed decoded %d frames, monolithic %d (cuts %v)", len(chunked), len(mono), cuts)
		}
		for i := range mono {
			a, b := mono[i], chunked[i]
			if string(a.Frame.Payload) != string(b.Frame.Payload) ||
				a.Frame.Source != b.Frame.Source || a.Frame.Seq != b.Frame.Seq {
				t.Fatalf("frame %d differs: %+v vs %+v", i, a.Frame, b.Frame)
			}
			// Lock positions may differ by the axis estimate's sample
			// ordering, never by more than a bit interval.
			if absDiff64(a.Start, b.Start) > 16 {
				t.Fatalf("frame %d locks at %d monolithic vs %d chunked", i, a.Start, b.Start)
			}
		}
	})
}

// mustDecodeAll runs one decoder over rec. With cuts == nil the whole
// recording goes in one Write; otherwise each cut byte is a chunk
// length (clamped to what remains) and the remainder follows.
func mustDecodeAll(t *testing.T, cfg Config, rec []float64, cuts []byte) []Frame {
	t.Helper()
	d, err := NewDecoder(cfg)
	if err != nil {
		t.Fatalf("decoder: %v", err)
	}
	defer d.Close()
	var out []Frame
	write := func(chunk []float64) {
		fs, err := d.Write(chunk)
		if err != nil {
			t.Fatalf("write: %v", err)
		}
		out = append(out, fs...)
	}
	if cuts == nil {
		write(rec)
	} else {
		off := 0
		for _, c := range cuts {
			if off >= len(rec) {
				break
			}
			n := int(c)
			if n > len(rec)-off {
				n = len(rec) - off
			}
			write(rec[off : off+n])
			off += n
		}
		if off < len(rec) {
			write(rec[off:])
		}
	}
	fs, err := d.Flush()
	if err != nil {
		t.Fatalf("flush: %v", err)
	}
	return append(out, fs...)
}
