// Package stream is the block-based streaming face of the uplink
// receive chain (paper §5.1b): the same carrier-tracking →
// downconversion → channel filtering → FM0 sync → ML decode pipeline
// as core.Receiver, restructured so every stage carries its state
// across chunk boundaries and a recording can be decoded as it
// arrives, in bounded memory, instead of whole:
//
//	volts ──▶ Downmixer ──▶ IIRStream ×2 ──▶ window ──▶ DecodeBaseband
//	(chunks)  (carried       (carried I/Q      (bounded:   (full batch
//	           phase)         filter state)     ≤ WindowPackets
//	                                            packets)    detector)
//
// A SyncScanner pair watches the in-phase and quadrature projections
// of the window as it grows and flags preamble correlation peaks; a
// flagged candidate triggers a decode attempt as soon as a whole
// packet could have arrived, so decode latency is one packet length,
// not one recording. The scanner is a latency device only: before any
// sample leaves the window the decoder always runs a full-window
// batch attempt, so a frame the scanner missed is still recovered as
// long as it fits the window — the bound callers set with
// Config.WindowPackets.
//
// A Decoder is not safe for concurrent use; the ingestion hub in
// stream/streamd serialises access per stream.
package stream

import (
	"errors"
	"fmt"

	"pab/internal/core"
	"pab/internal/dsp"
	"pab/internal/frame"
	"pab/internal/phy"
	"pab/internal/prof"
	"pab/internal/telemetry"
)

// Config parameterises a streaming decoder.
type Config struct {
	// SampleRate of the incoming voltage stream (Hz).
	SampleRate float64
	// CarrierHz is the downlink carrier. 0 means detect it from the
	// leading unmodulated carrier by FFT peak search, as the batch
	// receiver's FindCarriers does.
	CarrierHz float64
	// BitrateBps is the backscatter bitrate.
	BitrateBps float64
	// BlockSize is the internal processing granularity in samples
	// (default 1024). Larger chunks written to the decoder are split;
	// smaller ones are processed as-is.
	BlockSize int
	// MaxPayloadBytes bounds the payload length the decoder must be
	// able to hold whole (default frame.MaxPayload). Smaller values
	// shrink the window and per-stream memory.
	MaxPayloadBytes int
	// WindowPackets sizes the decode window in units of the maximum
	// packet length (default and minimum 2 — a packet plus the room
	// for it to straddle the previous one).
	WindowPackets int
	// FilterOrder of the Butterworth channel filter (default 4).
	FilterOrder int
	// DetectThreshold is the batch detector's normalised correlation
	// threshold (default 0.55); the scanners run at half of it, like
	// the batch receiver's coarse pass.
	DetectThreshold float64
	// CarrierDetectSamples is how much lead-in the carrier detector
	// accumulates before the first FFT peak search (default 8192).
	CarrierDetectSamples int
}

func (c *Config) applyDefaults() error {
	if c.SampleRate <= 0 {
		return fmt.Errorf("stream: sample rate must be positive, got %g", c.SampleRate)
	}
	if c.BitrateBps <= 0 {
		return fmt.Errorf("stream: bitrate must be positive, got %g", c.BitrateBps)
	}
	if c.CarrierHz < 0 || c.CarrierHz >= c.SampleRate/2 {
		return fmt.Errorf("stream: carrier %g Hz outside [0, fs/2)", c.CarrierHz)
	}
	if c.BlockSize <= 0 {
		c.BlockSize = 1024
	}
	if c.MaxPayloadBytes <= 0 || c.MaxPayloadBytes > frame.MaxPayload {
		c.MaxPayloadBytes = frame.MaxPayload
	}
	if c.WindowPackets < 2 {
		c.WindowPackets = 2
	}
	if c.FilterOrder <= 0 {
		c.FilterOrder = 4
	}
	if c.DetectThreshold <= 0 {
		c.DetectThreshold = 0.55
	}
	if c.CarrierDetectSamples <= 0 {
		c.CarrierDetectSamples = 8192
	}
	return nil
}

// Frame is one decoded uplink packet with its position in the stream.
type Frame struct {
	// Decoded is the batch decoder's result. Its Sync indices are in
	// decode-window coordinates; Start and End below are the stream
	// positions.
	core.Decoded
	// Start is the global sample index (counted from the first sample
	// ever written) of the first preamble sample.
	Start int64
	// End is one past the last frame sample.
	End int64
}

// Stats is a snapshot of a decoder's counters.
type Stats struct {
	// CarrierHz is the locked carrier (0 until detected).
	CarrierHz float64
	// Samples and Blocks count ingested input.
	Samples int64
	Blocks  int64
	// Frames counts CRC-clean decodes; Attempts and Misses count
	// full-window decode attempts and their failures.
	Frames   int64
	Attempts int64
	Misses   int64
	// Resyncs counts window slides (samples aged out undecoded),
	// Flushes explicit flushes, ScanHits preamble correlation peaks.
	Resyncs  int64
	Flushes  int64
	ScanHits int64
	// WindowLen is the current decode-window length in samples.
	WindowLen int
}

var errClosed = errors.New("stream: decoder is closed")

// maxCands bounds the candidate queue; the pre-slide full-window
// attempt still covers any hit dropped past the bound.
const maxCands = 32

// Decoder decodes an uplink voltage stream chunk by chunk.
type Decoder struct {
	cfg  Config
	recv core.Receiver

	spb       int
	preLen    int
	maxPacket int
	windowCap int
	keepTail  int

	// Carrier acquisition.
	locked  bool
	pending []float64 // raw volts buffered until the carrier locks
	inAbs   int64     // total samples ever written

	// Demodulation state (valid once locked).
	mixer  *dsp.Downmixer
	fi, fq [2]*dsp.IIRStream

	// Decode window and sync state.
	win      []complex128
	winStart int64 // global index of win[0]
	scanBase int64 // global index of the scanners' sample 0
	axis     core.AxisTracker
	scanI    *phy.SyncScanner
	scanQ    *phy.SyncScanner
	cands    []int64 // global indices of scanner hits, ascending-ish

	// Per-block scratch, recycled through the package pools.
	mixBuf  []complex128
	reBuf   []float64
	imBuf   []float64
	projBuf []float64

	stats  Stats
	closed bool
}

// NewDecoder builds a streaming decoder. The returned decoder owns
// pooled buffers; Close returns them.
func NewDecoder(cfg Config) (*Decoder, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	spb, err := phy.SamplesPerBitFor(cfg.SampleRate, cfg.BitrateBps)
	if err != nil {
		return nil, err
	}
	fm0, err := phy.NewFM0(spb)
	if err != nil {
		return nil, err
	}
	d := &Decoder{
		cfg: cfg,
		recv: core.Receiver{
			SampleRate:      cfg.SampleRate,
			FilterOrder:     cfg.FilterOrder,
			DetectThreshold: cfg.DetectThreshold,
		},
		spb:    spb,
		preLen: len(phy.PreambleBits) * spb,
	}
	d.maxPacket = (len(phy.PreambleBits) + frame.DataFrameBitLength(cfg.MaxPayloadBytes)) * spb
	d.windowCap = cfg.WindowPackets * d.maxPacket
	d.keepTail = d.maxPacket
	d.win = getC128(d.windowCap + cfg.BlockSize)[:0]
	d.mixBuf = getC128(cfg.BlockSize)
	d.reBuf = getF64(cfg.BlockSize)
	d.imBuf = getF64(cfg.BlockSize)
	d.projBuf = getF64(cfg.BlockSize)
	// The scanners run at the batch receiver's coarse-pass threshold.
	firstThresh := cfg.DetectThreshold / 2
	if firstThresh > 0.3 {
		firstThresh = 0.3
	}
	d.scanI = phy.NewSyncScanner(fm0, firstThresh)
	d.scanQ = phy.NewSyncScanner(fm0, firstThresh)
	d.cands = make([]int64, 0, maxCands)
	if cfg.CarrierHz > 0 {
		if err := d.lock(cfg.CarrierHz); err != nil {
			d.Close()
			return nil, err
		}
	} else {
		d.pending = getF64(4*cfg.CarrierDetectSamples + cfg.BlockSize)[:0]
	}
	return d, nil
}

// lock builds the demodulation chain for a detected or configured
// carrier. The channel cutoff tracks the backscatter bandwidth exactly
// as Receiver.Demodulate does; the zero-phase FiltFilt of the batch
// path becomes two cascaded causal passes — the same squared magnitude
// response, with group delay instead of the backward pass (the
// backward pass reads the future and cannot stream).
func (d *Decoder) lock(carrier float64) error {
	cutoff := 4 * phy.OccupiedBandwidth(d.cfg.BitrateBps)
	if cutoff < 200 {
		cutoff = 200
	}
	if cutoff > d.cfg.SampleRate/4 {
		cutoff = d.cfg.SampleRate / 4
	}
	lp, err := dsp.DesignButterworthLowpass(cutoff, d.cfg.SampleRate, d.cfg.FilterOrder)
	if err != nil {
		return err
	}
	d.mixer = dsp.NewDownmixer(carrier, d.cfg.SampleRate)
	d.fi = [2]*dsp.IIRStream{lp.Stream(), lp.Stream()}
	d.fq = [2]*dsp.IIRStream{lp.Stream(), lp.Stream()}
	d.locked = true
	d.stats.CarrierHz = carrier
	return nil
}

// Write feeds the next chunk of the voltage stream, of any length, and
// returns the frames whose decode completed within it (usually none;
// the slice is never retained). Indices in the returned frames are
// global stream positions.
func (d *Decoder) Write(samples []float64) ([]Frame, error) {
	if d.closed {
		return nil, errClosed
	}
	if len(samples) == 0 {
		return nil, nil
	}
	out := make([]Frame, 0, 1)
	for off := 0; off < len(samples); off += d.cfg.BlockSize {
		end := off + d.cfg.BlockSize
		if end > len(samples) {
			end = len(samples)
		}
		out = d.pump(samples[off:end], out)
	}
	return out, nil
}

// Flush decodes whatever the window still holds — the drain path for
// stream end: a packet whose tail just arrived but whose candidate was
// never flagged is recovered here.
func (d *Decoder) Flush() ([]Frame, error) {
	if d.closed {
		return nil, errClosed
	}
	d.stats.Flushes++
	telemetry.Inc(telemetry.MStreamFlushesTotal)
	out := make([]Frame, 0, 1)
	if !d.locked {
		if len(d.pending) == 0 || !d.tryLock() {
			return out, nil
		}
		out = d.replay(out)
	}
	return d.drainWindow(out), nil
}

// Close returns the decoder's buffers to the package pools. The
// decoder must not be used afterwards.
func (d *Decoder) Close() error {
	if d.closed {
		return nil
	}
	d.closed = true
	putC128(d.win)
	putC128(d.mixBuf)
	putF64(d.reBuf)
	putF64(d.imBuf)
	putF64(d.projBuf)
	putF64(d.pending)
	d.win, d.mixBuf, d.reBuf, d.imBuf, d.projBuf, d.pending = nil, nil, nil, nil, nil, nil
	return nil
}

// Stats returns a snapshot of the decoder's counters.
func (d *Decoder) Stats() Stats {
	s := d.stats
	s.WindowLen = len(d.win)
	return s
}

// pump processes one internal block: acquire the carrier if still
// unlocked, otherwise ingest and run any due decode attempts.
func (d *Decoder) pump(piece []float64, out []Frame) []Frame {
	d.inAbs += int64(len(piece))
	if !d.locked {
		return d.absorb(piece, out)
	}
	return d.ingestAndDrain(piece, out)
}

// absorb buffers pre-lock samples and attempts carrier acquisition
// once enough lead-in has accumulated.
func (d *Decoder) absorb(piece []float64, out []Frame) []Frame {
	d.pending = append(d.pending, piece...)
	if len(d.pending) < d.cfg.CarrierDetectSamples {
		return out
	}
	if !d.tryLock() {
		// No dominant carrier yet: bound the buffer, keeping the most
		// recent samples (nothing before a lock is decodable anyway).
		if limit := 4 * d.cfg.CarrierDetectSamples; len(d.pending) > limit {
			drop := len(d.pending) - 2*d.cfg.CarrierDetectSamples
			copy(d.pending, d.pending[drop:])
			d.pending = d.pending[:len(d.pending)-drop]
		}
		return out
	}
	return d.replay(out)
}

// tryLock runs the FFT carrier search over the buffered lead-in, as
// Receiver.FindCarriers does over a whole recording.
func (d *Decoder) tryLock() bool {
	peaks := dsp.FindPeaks(d.pending, d.cfg.SampleRate, 1, 1000, 0)
	if len(peaks) == 0 {
		return false
	}
	fc := peaks[0].Frequency
	if fc <= 0 || fc >= d.cfg.SampleRate/2 {
		return false
	}
	return d.lock(fc) == nil
}

// replay pushes the buffered lead-in through the freshly locked
// pipeline, anchoring the window at the buffer's stream position.
func (d *Decoder) replay(out []Frame) []Frame {
	start := d.inAbs - int64(len(d.pending))
	d.winStart = start
	d.scanBase = start
	for off := 0; off < len(d.pending); off += d.cfg.BlockSize {
		end := off + d.cfg.BlockSize
		if end > len(d.pending) {
			end = len(d.pending)
		}
		out = d.ingestAndDrain(d.pending[off:end], out)
	}
	d.pending = d.pending[:0]
	return out
}

// ingestAndDrain runs the sample pipeline on one block, then any
// decode attempt the block made due: a window overflow always forces a
// full attempt before samples age out, a ready candidate triggers one
// early.
func (d *Decoder) ingestAndDrain(piece []float64, out []Frame) []Frame {
	d.ingest(piece)
	if len(d.win) > d.windowCap {
		out = d.drainWindow(out)
		d.slide()
	} else if d.readyCand() {
		out = d.drainWindow(out)
	}
	return out
}

// ingest mixes, filters and windows one block, and feeds the scanners.
func (d *Decoder) ingest(piece []float64) {
	d.stats.Blocks++
	d.stats.Samples += int64(len(piece))
	telemetry.Inc(telemetry.MStreamBlocksTotal)
	telemetry.Add(telemetry.MStreamSamplesTotal, int64(len(piece)))

	stMix := prof.Start(prof.StageDownconvert)
	bb := d.mixer.MixInto(d.mixBuf, piece)
	stMix.Stop(len(piece))

	stFilt := prof.Start(prof.StageFilter)
	re := d.reBuf[:len(piece)]
	im := d.imBuf[:len(piece)]
	for i, v := range bb {
		re[i] = real(v)
		im[i] = imag(v)
	}
	re = d.fi[0].Process(re, re)
	re = d.fi[1].Process(re, re)
	im = d.fq[0].Process(im, im)
	im = d.fq[1].Process(im, im)
	n := len(d.win)
	d.win = d.win[:n+len(piece)]
	grown := d.win[n:]
	for i := range grown {
		grown[i] = complex(re[i], im[i])
	}
	stFilt.Stop(len(piece))

	d.axis.Add(grown)

	stSync := prof.Start(prof.StageSync)
	d.noteHits(d.scanI.Scan(d.axis.ProjectInto(d.projBuf, grown, false)))
	d.noteHits(d.scanQ.Scan(d.axis.ProjectInto(d.projBuf, grown, true)))
	stSync.Stop(len(piece))
}

// noteHits records scanner hits as decode candidates.
func (d *Decoder) noteHits(hits []phy.ScanHit) {
	if len(hits) == 0 {
		return
	}
	d.stats.ScanHits += int64(len(hits))
	telemetry.Add(telemetry.MStreamScanHitsTotal, int64(len(hits)))
	for _, h := range hits {
		d.noteCand(d.scanBase + h.Index)
	}
}

// noteCand enqueues one candidate, collapsing near-duplicates (the two
// projections flag the same preamble within a bit of each other).
func (d *Decoder) noteCand(abs int64) {
	for _, c := range d.cands {
		if absDiff64(abs, c) < int64(d.spb) {
			return
		}
	}
	if len(d.cands) == cap(d.cands) {
		return
	}
	d.cands = append(d.cands, abs)
}

// readyCand reports whether some candidate's packet could now be fully
// inside the window.
func (d *Decoder) readyCand() bool {
	winEnd := d.winStart + int64(len(d.win))
	for _, c := range d.cands {
		if c+int64(d.maxPacket) <= winEnd {
			return true
		}
	}
	return false
}

// drainWindow repeatedly decodes the full window until an attempt
// fails, consuming each decoded packet so a following packet in the
// same window is found too. Candidates whose full extent the failed
// attempt covered are dropped — they were evaluated and lost.
func (d *Decoder) drainWindow(out []Frame) []Frame {
	for {
		dec, ok := d.tryDecode()
		if !ok {
			break
		}
		//pablint:ignore allocloop one append per CRC-clean frame, not per sample; frames are rare relative to the sample rate
		out = append(out, d.emit(dec))
	}
	d.dropCoveredCands()
	telemetry.Set(telemetry.MStreamWindowSamples, float64(len(d.win)))
	return out
}

// tryDecode runs one full-window batch attempt.
func (d *Decoder) tryDecode() (*core.Decoded, bool) {
	if len(d.win) < d.preLen {
		return nil, false
	}
	d.stats.Attempts++
	telemetry.Inc(telemetry.MStreamDecodeAttemptsTotal)
	dec, err := d.recv.DecodeBaseband(d.win, d.cfg.BitrateBps)
	if err != nil {
		d.stats.Misses++
		telemetry.Inc(telemetry.MStreamDecodeMissesTotal)
		return nil, false
	}
	return dec, true
}

// emit converts a window-relative decode into a stream-positioned
// Frame, files its report, and consumes the packet's samples.
func (d *Decoder) emit(dec *core.Decoded) Frame {
	endLocal := dec.Sync.Index + (len(phy.PreambleBits)+len(dec.Bits))*d.spb
	if endLocal > len(d.win) {
		endLocal = len(d.win)
	}
	if endLocal < 1 {
		endLocal = 1 // defensive: always make progress
	}
	f := Frame{
		Decoded: *dec,
		Start:   d.winStart + int64(dec.Sync.Index),
		End:     d.winStart + int64(endLocal),
	}
	d.stats.Frames++
	telemetry.Inc(telemetry.MStreamFramesTotal)
	telemetry.RecordDecode(telemetry.DecodeReport{
		CarrierHz:         d.stats.CarrierHz,
		BitrateBps:        d.cfg.BitrateBps,
		Decoded:           true,
		SlicerSNRdB:       dec.SNRdB(),
		SyncPeak:          dec.Sync.Score,
		SyncIndex:         int(f.Start),
		CFOHz:             dec.CFOHz,
		PreambleBitErrors: dec.PreambleBitErrors,
		PayloadBits:       len(dec.Bits),
	})
	d.consume(endLocal)
	return f
}

// consume drops the first n window samples.
func (d *Decoder) consume(n int) {
	if n <= 0 {
		return
	}
	if n > len(d.win) {
		n = len(d.win)
	}
	d.winStart += int64(n)
	copy(d.win, d.win[n:])
	d.win = d.win[:len(d.win)-n]
}

// dropCoveredCands removes candidates already behind the window or
// whose packet extent the window fully covered (the attempt that just
// ran was their evaluation).
func (d *Decoder) dropCoveredCands() {
	winEnd := d.winStart + int64(len(d.win))
	keep := d.cands[:0]
	for _, c := range d.cands {
		if c >= d.winStart && c+int64(d.maxPacket) > winEnd {
			//pablint:ignore allocloop keep reslices cands' backing array (cap ≥ len bounds every append); no reallocation possible
			keep = append(keep, c)
		}
	}
	d.cands = keep
}

// slide ages the oldest samples out of an over-full window, keeping
// one max-packet tail so a packet whose start just arrived survives.
// Callers run drainWindow first: nothing decodable leaves undecoded.
func (d *Decoder) slide() {
	if len(d.win) <= d.keepTail {
		return
	}
	drop := len(d.win) - d.keepTail
	d.winStart += int64(drop)
	copy(d.win, d.win[drop:])
	d.win = d.win[:d.keepTail]
	d.stats.Resyncs++
	telemetry.Inc(telemetry.MStreamResyncsTotal)
}

func absDiff64(a, b int64) int64 {
	if a > b {
		return a - b
	}
	return b - a
}
