package stream

import (
	"fmt"
	"math"

	"pab/internal/frame"
	"pab/internal/phy"
)

const twoPi = 2 * math.Pi

// SynthConfig describes a synthetic uplink recording: an unmodulated
// carrier lead-in, one FM0 backscatter packet, and a carrier tail.
type SynthConfig struct {
	SampleRate float64
	CarrierHz  float64
	BitrateBps float64
	// Amplitude is the carrier amplitude (default 1).
	Amplitude float64
	// Depth is the backscatter modulation depth (default 0.5): the
	// packet multiplies the carrier by 1 + Depth·level, level ∈ {±1}.
	Depth float64
	// LeadSamples of plain carrier precede the packet — enough lead-in
	// lets the receiver's carrier detector lock before data arrives.
	LeadSamples int
	// TailSamples of plain carrier follow the packet.
	TailSamples int
}

// SynthesizeRecording renders one data frame as a voltage-domain
// passband recording: the amplitude-modulated carrier a hydrophone
// would capture from a backscatter node, minus channel effects. It is
// the deterministic workload generator for the streaming decoder's
// tests and benchmarks — every sample is a pure function of the config
// and the frame.
func SynthesizeRecording(cfg SynthConfig, df frame.DataFrame) ([]float64, error) {
	if cfg.SampleRate <= 0 || cfg.CarrierHz <= 0 || cfg.BitrateBps <= 0 {
		return nil, fmt.Errorf("stream: synth needs positive rate/carrier/bitrate, got %g/%g/%g",
			cfg.SampleRate, cfg.CarrierHz, cfg.BitrateBps)
	}
	if cfg.Amplitude <= 0 {
		cfg.Amplitude = 1
	}
	if cfg.Depth <= 0 {
		cfg.Depth = 0.5
	}
	spb, err := phy.SamplesPerBitFor(cfg.SampleRate, cfg.BitrateBps)
	if err != nil {
		return nil, err
	}
	fm0, err := phy.NewFM0(spb)
	if err != nil {
		return nil, err
	}
	raw, err := df.Marshal()
	if err != nil {
		return nil, err
	}
	bits := make([]phy.Bit, 0, len(phy.PreambleBits)+len(raw)*8)
	bits = append(bits, phy.PreambleBits...)
	bits = append(bits, frame.Bits(raw)...)
	wave, _ := fm0.Encode(bits, 1)

	out := make([]float64, cfg.LeadSamples+len(wave)+cfg.TailSamples)
	w := twoPi * cfg.CarrierHz / cfg.SampleRate
	for i := range out {
		level := 0.0
		if j := i - cfg.LeadSamples; j >= 0 && j < len(wave) {
			level = wave[j]
		}
		out[i] = cfg.Amplitude * (1 + cfg.Depth*level) * math.Sin(w*float64(i))
	}
	return out, nil
}
