package stream

import "sync"

// Buffer pools shared by every Decoder in the process. An ingestion
// daemon churns through thousands of short-lived streams; recycling the
// window and scratch buffers keeps per-stream setup from scaling the
// heap with stream arrival rate. Pools store pointers to slice headers
// (the sync.Pool idiom that avoids an allocation per Put).

var (
	f64Pool  = sync.Pool{}
	c128Pool = sync.Pool{}
)

// getF64 returns a float64 slice of length n, recycled when a pooled
// buffer is large enough.
func getF64(n int) []float64 {
	if p, ok := f64Pool.Get().(*[]float64); ok && cap(*p) >= n {
		return (*p)[:n]
	}
	return make([]float64, n)
}

// putF64 recycles a buffer obtained from getF64.
func putF64(s []float64) {
	if cap(s) == 0 {
		return
	}
	s = s[:0]
	f64Pool.Put(&s)
}

// getC128 returns a complex128 slice of length n, recycled when a
// pooled buffer is large enough.
func getC128(n int) []complex128 {
	if p, ok := c128Pool.Get().(*[]complex128); ok && cap(*p) >= n {
		return (*p)[:n]
	}
	return make([]complex128, n)
}

// putC128 recycles a buffer obtained from getC128.
func putC128(s []complex128) {
	if cap(s) == 0 {
		return
	}
	s = s[:0]
	c128Pool.Put(&s)
}
