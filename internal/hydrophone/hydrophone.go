// Package hydrophone models the receive side of the paper's setup: an
// Aquarian H2a hydrophone (−180 dB re 1 V/µPa) feeding a PC audio input
// (§5.1b). It converts pressure waveforms to clipped, quantised voltage
// recordings the offline decoder consumes.
package hydrophone

import (
	"fmt"
	"math"

	"pab/internal/units"
)

// Hydrophone converts acoustic pressure to voltage.
type Hydrophone struct {
	// Sensitivity in dB re 1 V/µPa (H2a: −180).
	Sensitivity units.DB
	// MaxInputV is the recorder's clip level (line input ≈ ±1 V).
	MaxInputV float64
	// Bits is the recorder's ADC resolution (audio interfaces: 16–24).
	Bits int
	// AutoGain, when set, models the operator's input-level trim: if the
	// raw signal would clip, it is attenuated so its peak sits at 80% of
	// full scale before quantisation.
	AutoGain bool
}

// H2a returns the paper's hydrophone into a 16-bit audio line input.
func H2a() Hydrophone {
	return Hydrophone{Sensitivity: -180, MaxInputV: 1.0, Bits: 16}
}

// Validate checks the configuration.
func (h Hydrophone) Validate() error {
	if h.MaxInputV <= 0 {
		return fmt.Errorf("hydrophone: clip level must be positive, got %g", h.MaxInputV)
	}
	if h.Bits < 2 || h.Bits > 32 {
		return fmt.Errorf("hydrophone: ADC bits %d out of range", h.Bits)
	}
	return nil
}

// VoltsPerPascal returns the linear conversion gain.
func (h Hydrophone) VoltsPerPascal() float64 {
	return units.HydrophoneVoltage(1.0, h.Sensitivity)
}

// Record converts a pressure waveform (Pa) into the recorded voltage
// waveform, applying sensitivity, clipping and ADC quantisation.
func (h Hydrophone) Record(pressure []float64) ([]float64, error) {
	if err := h.Validate(); err != nil {
		return nil, err
	}
	gain := h.VoltsPerPascal()
	if h.AutoGain {
		peak := 0.0
		for _, p := range pressure {
			if a := math.Abs(p) * gain; a > peak {
				peak = a
			}
		}
		if peak > 0.8*h.MaxInputV {
			gain *= 0.8 * h.MaxInputV / peak
		}
	}
	lsb := h.lsbV()
	out := make([]float64, len(pressure))
	for i, p := range pressure {
		v := p * gain
		if v > h.MaxInputV {
			v = h.MaxInputV
		} else if v < -h.MaxInputV {
			v = -h.MaxInputV
		}
		out[i] = math.Round(v/lsb) * lsb
	}
	return out, nil
}

// NoiseFloorV returns the quantisation noise RMS of the recorder
// (lsb/√12), a fundamental floor on detectable backscatter modulation.
func (h Hydrophone) NoiseFloorV() float64 {
	return h.lsbV() / math.Sqrt(12)
}

// lsbV returns the ADC step size in volts. Validate enforces the same
// bounds; clamping here as well keeps the helper total on receivers that
// were never validated.
func (h Hydrophone) lsbV() float64 {
	bits := h.Bits
	if bits < 2 {
		bits = 2
	} else if bits > 32 {
		bits = 32
	}
	maxV := h.MaxInputV
	if maxV <= 0 {
		maxV = 1
	}
	return 2 * maxV / float64(uint64(1)<<uint(bits))
}
