package hydrophone

import (
	"math"
	"testing"

	"pab/internal/dsp"
)

func TestVoltsPerPascal(t *testing.T) {
	h := H2a()
	// −180 dB re 1 V/µPa ⇒ 1 Pa (=1e6 µPa) → 1 mV.
	if g := h.VoltsPerPascal(); math.Abs(g-1e-3) > 1e-9 {
		t.Errorf("gain %g, want 1e-3", g)
	}
}

func TestRecordScalesAndPreservesShape(t *testing.T) {
	h := H2a()
	p := dsp.Sine(100, 15000, 96000, 0, 9600) // 100 Pa tone
	v, err := h.Record(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := dsp.RMS(v) * math.Sqrt2; math.Abs(got-0.1) > 0.001 {
		t.Errorf("recorded amplitude %g V, want 0.1", got)
	}
	peaks := dsp.FindPeaks(v, 96000, 1, 500, 0)
	if len(peaks) != 1 || math.Abs(peaks[0].Frequency-15000) > 20 {
		t.Errorf("recording distorted: %+v", peaks)
	}
}

func TestRecordClips(t *testing.T) {
	h := H2a()
	// 2000 Pa → 2 V, above the 1 V clip.
	p := dsp.Sine(2000, 15000, 96000, 0, 960)
	v, err := h.Record(p)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range v {
		if s > h.MaxInputV+1e-9 || s < -h.MaxInputV-1e-9 {
			t.Fatalf("sample %d = %g outside clip range", i, s)
		}
	}
	// Clipped sine has flat tops: many samples exactly at the rail.
	atRail := 0
	for _, s := range v {
		if math.Abs(math.Abs(s)-h.MaxInputV) < 1e-9 {
			atRail++
		}
	}
	if atRail == 0 {
		t.Error("over-driven input should clip at the rails")
	}
}

func TestRecordQuantises(t *testing.T) {
	h := H2a()
	h.Bits = 8                    // coarse for visibility
	p := []float64{0.1, 0.2, 0.3} // Pa → 0.1–0.3 mV
	v, err := h.Record(p)
	if err != nil {
		t.Fatal(err)
	}
	lsb := 2 * h.MaxInputV / 256
	for i, s := range v {
		steps := s / lsb
		if math.Abs(steps-math.Round(steps)) > 1e-9 {
			t.Errorf("sample %d = %g not on the quantisation grid", i, s)
		}
	}
}

func TestNoiseFloor(t *testing.T) {
	h := H2a()
	nf := h.NoiseFloorV()
	lsb := 2.0 / 65536
	if math.Abs(nf-lsb/math.Sqrt(12)) > 1e-12 {
		t.Errorf("noise floor %g", nf)
	}
	// More bits, lower floor.
	h24 := h
	h24.Bits = 24
	if h24.NoiseFloorV() >= nf {
		t.Error("24-bit floor should be below 16-bit")
	}
}

func TestValidation(t *testing.T) {
	bad := H2a()
	bad.MaxInputV = 0
	if _, err := bad.Record([]float64{1}); err == nil {
		t.Error("zero clip level should error")
	}
	bad = H2a()
	bad.Bits = 1
	if _, err := bad.Record([]float64{1}); err == nil {
		t.Error("1-bit ADC should error")
	}
}

func TestAutoGainPreventsClipping(t *testing.T) {
	h := H2a()
	h.AutoGain = true
	// 5 kPa → 5 V raw, far beyond the 1 V rail.
	p := dsp.Sine(5000, 15000, 96000, 0, 960)
	v, err := h.Record(p)
	if err != nil {
		t.Fatal(err)
	}
	peak := 0.0
	for _, s := range v {
		if math.Abs(s) > peak {
			peak = math.Abs(s)
		}
	}
	if math.Abs(peak-0.8) > 0.01 {
		t.Errorf("auto-gained peak %g, want 0.8 (80%% FS)", peak)
	}
	// Quiet signals are left untouched.
	q := dsp.Sine(10, 15000, 96000, 0, 960) // 10 mV raw
	v2, err := h.Record(q)
	if err != nil {
		t.Fatal(err)
	}
	peak2 := 0.0
	for _, s := range v2 {
		if math.Abs(s) > peak2 {
			peak2 = math.Abs(s)
		}
	}
	if math.Abs(peak2-0.01) > 0.001 {
		t.Errorf("quiet signal was rescaled: peak %g, want 0.01", peak2)
	}
}
