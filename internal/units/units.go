// Package units provides the physical quantities and conversions used
// throughout the PAB simulator: decibel scales, underwater sound pressure
// references, and small helpers for converting between linear and
// logarithmic representations.
//
// Underwater acoustics uses a 1 µPa pressure reference (air acoustics uses
// 20 µPa), so sound levels in this codebase are always "dB re 1 µPa" unless
// stated otherwise. Hydrophone sensitivities are "dB re 1 V/µPa".
package units

import "math"

// MicroPascal is the underwater reference pressure, in pascal.
const MicroPascal = 1e-6

// DB is a ratio expressed in decibels. Whether it is a power ratio
// (10·log10) or an amplitude ratio (20·log10) is determined by the
// conversion function used, not by the type.
type DB float64

// PowerToDB converts a linear power ratio to decibels.
// Non-positive ratios map to -Inf.
func PowerToDB(ratio float64) DB {
	if ratio <= 0 {
		return DB(math.Inf(-1))
	}
	return DB(10 * math.Log10(ratio))
}

// DBToPower converts decibels to a linear power ratio.
func DBToPower(db DB) float64 {
	return math.Pow(10, float64(db)/10)
}

// AmplitudeToDB converts a linear amplitude ratio to decibels.
// Non-positive ratios map to -Inf.
func AmplitudeToDB(ratio float64) DB {
	if ratio <= 0 {
		return DB(math.Inf(-1))
	}
	return DB(20 * math.Log10(ratio))
}

// DBToAmplitude converts decibels to a linear amplitude ratio.
func DBToAmplitude(db DB) float64 {
	return math.Pow(10, float64(db)/20)
}

// SPL returns the sound pressure level, in dB re 1 µPa, of an RMS pressure
// given in pascal.
func SPL(rmsPressurePa float64) DB {
	return AmplitudeToDB(rmsPressurePa / MicroPascal)
}

// PressureFromSPL returns the RMS pressure in pascal corresponding to a
// sound pressure level in dB re 1 µPa.
func PressureFromSPL(spl DB) float64 {
	return DBToAmplitude(spl) * MicroPascal
}

// HydrophoneVoltage returns the output voltage of a hydrophone with the
// given receive sensitivity (dB re 1 V/µPa) for an RMS pressure in pascal.
func HydrophoneVoltage(rmsPressurePa float64, sensitivity DB) float64 {
	// V = P[µPa] · 10^(S/20) with S in dB re 1 V/µPa.
	return rmsPressurePa / MicroPascal * DBToAmplitude(sensitivity)
}

// Clamp limits x to the inclusive range [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	switch {
	case x < lo:
		return lo
	case x > hi:
		return hi
	default:
		return x
	}
}

// ApproxEqual reports whether a and b agree to within tol of the larger
// magnitude (relative) or within tol absolutely when both are small.
func ApproxEqual(a, b, tol float64) bool {
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= tol*scale
}
