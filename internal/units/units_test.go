package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPowerDBRoundTrip(t *testing.T) {
	cases := []float64{1e-9, 1e-3, 0.5, 1, 2, 10, 1e6}
	for _, r := range cases {
		got := DBToPower(PowerToDB(r))
		if !ApproxEqual(got, r, 1e-12) {
			t.Errorf("DBToPower(PowerToDB(%g)) = %g", r, got)
		}
	}
}

func TestAmplitudeDBRoundTrip(t *testing.T) {
	cases := []float64{1e-9, 1e-3, 0.5, 1, 2, 10, 1e6}
	for _, r := range cases {
		got := DBToAmplitude(AmplitudeToDB(r))
		if !ApproxEqual(got, r, 1e-12) {
			t.Errorf("round trip for %g = %g", r, got)
		}
	}
}

func TestKnownDBValues(t *testing.T) {
	cases := []struct {
		name string
		got  float64
		want float64
	}{
		{"power 2x is ~3dB", float64(PowerToDB(2)), 3.0102999566},
		{"power 10x is 10dB", float64(PowerToDB(10)), 10},
		{"amplitude 10x is 20dB", float64(AmplitudeToDB(10)), 20},
		{"amplitude 2x is ~6dB", float64(AmplitudeToDB(2)), 6.0205999133},
	}
	for _, tc := range cases {
		if !ApproxEqual(tc.got, tc.want, 1e-9) {
			t.Errorf("%s: got %v want %v", tc.name, tc.got, tc.want)
		}
	}
}

func TestNonPositiveDBIsNegInf(t *testing.T) {
	if !math.IsInf(float64(PowerToDB(0)), -1) {
		t.Error("PowerToDB(0) should be -Inf")
	}
	if !math.IsInf(float64(AmplitudeToDB(-1)), -1) {
		t.Error("AmplitudeToDB(-1) should be -Inf")
	}
}

func TestSPLReference(t *testing.T) {
	// 1 µPa RMS is 0 dB re 1 µPa by definition.
	if spl := SPL(MicroPascal); !ApproxEqual(float64(spl), 0, 1e-12) {
		t.Errorf("SPL(1µPa) = %v, want 0", spl)
	}
	// 1 Pa RMS is 120 dB re 1 µPa.
	if spl := SPL(1); !ApproxEqual(float64(spl), 120, 1e-9) {
		t.Errorf("SPL(1Pa) = %v, want 120", spl)
	}
}

func TestSPLRoundTrip(t *testing.T) {
	f := func(exp uint8) bool {
		// Pressures from 1 µPa to ~1 kPa.
		p := MicroPascal * math.Pow(10, float64(exp%10))
		return ApproxEqual(PressureFromSPL(SPL(p)), p, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHydrophoneVoltage(t *testing.T) {
	// H2a hydrophone: -180 dB re 1V/µPa. A 1 Pa signal (=1e6 µPa) gives
	// 1e6 · 10^(-180/20) = 1e6 · 1e-9 = 1e-3 V.
	v := HydrophoneVoltage(1.0, -180)
	if !ApproxEqual(v, 1e-3, 1e-9) {
		t.Errorf("HydrophoneVoltage(1Pa, -180dB) = %g, want 1e-3", v)
	}
}

func TestClamp(t *testing.T) {
	cases := []struct{ x, lo, hi, want float64 }{
		{5, 0, 10, 5},
		{-1, 0, 10, 0},
		{11, 0, 10, 10},
		{0, 0, 10, 0},
		{10, 0, 10, 10},
	}
	for _, tc := range cases {
		if got := Clamp(tc.x, tc.lo, tc.hi); got != tc.want {
			t.Errorf("Clamp(%v,%v,%v) = %v, want %v", tc.x, tc.lo, tc.hi, got, tc.want)
		}
	}
}

func TestClampProperty(t *testing.T) {
	f := func(x, a, b float64) bool {
		lo, hi := math.Min(a, b), math.Max(a, b)
		c := Clamp(x, lo, hi)
		return c >= lo && c <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestApproxEqual(t *testing.T) {
	if !ApproxEqual(1e12, 1e12+1, 1e-9) {
		t.Error("large values within relative tolerance should match")
	}
	if ApproxEqual(1, 2, 1e-9) {
		t.Error("1 and 2 should not be approximately equal")
	}
	if !ApproxEqual(0, 1e-15, 1e-12) {
		t.Error("tiny absolute difference should match")
	}
}
