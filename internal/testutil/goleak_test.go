package testutil

import (
	"strings"
	"testing"
	"time"
)

// TestCheckGoroutinesClean: a test that starts and joins its goroutine
// passes the check.
func TestCheckGoroutinesClean(t *testing.T) {
	check := CheckGoroutines(t)
	done := make(chan struct{})
	go func() {
		close(done)
	}()
	<-done
	check()
}

// TestGoroutineStacksSeesSpawn: the snapshot diff machinery actually
// detects a goroutine created between two snapshots.
func TestGoroutineStacksSeesSpawn(t *testing.T) {
	before := goroutineStacks()
	stop := make(chan struct{})
	started := make(chan struct{})
	go func() {
		close(started)
		<-stop
	}()
	<-started
	defer close(stop)

	found := false
	for id, stack := range goroutineStacks() {
		if _, existed := before[id]; existed {
			continue
		}
		if strings.Contains(stack, "TestGoroutineStacksSeesSpawn") {
			found = true
		}
	}
	if !found {
		t.Fatal("snapshot diff did not surface the spawned goroutine")
	}
}

// TestCheckGoroutinesGracePeriod: a goroutine still draining when the
// check starts but gone within the grace window does not fail.
func TestCheckGoroutinesGracePeriod(t *testing.T) {
	check := CheckGoroutines(t)
	go func() {
		time.Sleep(50 * time.Millisecond)
	}()
	check()
}

// TestAllowedPatterns: the allowlist matches on stack substrings.
func TestAllowedPatterns(t *testing.T) {
	stack := "goroutine 9 [select]:\nnet/http.(*Server).Serve(...)"
	if !allowed(stack, []string{"net/http.(*Server)"}) {
		t.Error("explicit pattern should match")
	}
	if allowed(stack, []string{"database/sql."}) {
		t.Error("unrelated pattern should not match")
	}
}
