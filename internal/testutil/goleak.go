// Package testutil holds shared test harness helpers. The goroutine
// leak checker here is the runtime complement to pablint's static
// goroleak rule: the analyzer proves a termination path exists, this
// checker proves the path was actually taken by the time the test
// returned.
package testutil

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// defaultAllow matches goroutines that are part of the test harness or
// runtime rather than the code under test.
var defaultAllow = []string{
	"testing.",   // testing.Main, tRunner, benchmark driver
	"runtime.",   // GC workers, finalizer goroutine
	"os/signal.", // signal.Notify watcher
	"net/http.(*Server)",
	"net/http/httptest.", // httptest.Server keep-alive accept loop
}

// CheckGoroutines snapshots the running goroutines and returns a
// function for t.Cleanup/defer that fails the test if goroutines
// created during the test are still running when it ends. Lingering
// goroutines get a grace period (they may be mid-teardown), so the
// check retries for about a second before failing.
//
// Usage:
//
//	defer testutil.CheckGoroutines(t)()
//
// allowPatterns are extra substrings matched against each goroutine's
// stack; a match exempts that goroutine (use for known-benign pollers).
func CheckGoroutines(t *testing.T, allowPatterns ...string) func() {
	t.Helper()
	before := goroutineStacks()
	return func() {
		t.Helper()
		allow := append(append([]string{}, defaultAllow...), allowPatterns...)
		var leaked []string
		deadline := time.Now().Add(time.Second)
		for {
			leaked = leaked[:0]
			for id, stack := range goroutineStacks() {
				if _, existed := before[id]; existed {
					continue
				}
				if allowed(stack, allow) {
					continue
				}
				leaked = append(leaked, stack)
			}
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		for _, stack := range leaked {
			t.Errorf("leaked goroutine:\n%s", stack)
		}
	}
}

// goroutineStacks returns the current goroutines keyed by their header
// line ("goroutine N [state]:"), value the full stack text.
func goroutineStacks() map[string]string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	out := make(map[string]string)
	for _, g := range strings.Split(string(buf), "\n\n") {
		header, _, ok := strings.Cut(g, "\n")
		if !ok || !strings.HasPrefix(header, "goroutine ") {
			continue
		}
		// The state inside [] can change between snapshots; key by the
		// goroutine number alone.
		id := header
		if i := strings.IndexByte(header, '['); i > 0 {
			id = strings.TrimSpace(header[:i])
		}
		out[id] = g
	}
	return out
}

// allowed reports whether any pattern appears in the stack text.
func allowed(stack string, patterns []string) bool {
	for _, p := range patterns {
		if p != "" && strings.Contains(stack, p) {
			return true
		}
	}
	// The snapshotting goroutine itself shows up as running in
	// goroutineStacks; never report it.
	return strings.Contains(stack, "testutil.goroutineStacks")
}
