package scenario

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// MaxSweepSpecs bounds how many runs one sweep may expand into — the
// cartesian product of axis lengths.
const MaxSweepSpecs = 4096

// Sweep is a declarative parameter grid over a base spec: the batch
// workloads (power × range × rate) that pay off once runs are
// deduplicated and parallelized. Expand produces the cartesian
// product, one Spec per grid point.
type Sweep struct {
	Base Spec   `json:"base"`
	Axes []Axis `json:"axes"`
}

// Axis is one swept parameter.
type Axis struct {
	// Param names the knob; see setParam for the vocabulary.
	Param  string    `json:"param"`
	Values []float64 `json:"values"`
}

// Sweepable parameters.
const (
	ParamDriveV      = "drive_v"      // PHY.DriveV, volts
	ParamCarrierHz   = "carrier_hz"   // PHY.CarrierHz
	ParamNoiseRMSPa  = "noise_rms_pa" // PHY.NoiseRMSPa
	ParamBitrateBps  = "bitrate_bps"  // every node's uplink bitrate
	ParamRangeM      = "range_m"      // node distance from projector, metres
	ParamSpeedMS     = "speed_ms"     // every node's radial drift speed
	ParamSeed        = "seed"         // Spec.Seed (truncated to int64)
	ParamDurationS   = "duration_s"   // MAC.DurationS
	ParamPolls       = "polls"        // MAC.Polls (truncated to int)
	ParamMaxAttempts = "max_attempts" // MAC.MaxAttempts (truncated to int)
)

// Expand returns one normalized spec per grid point, axes varying
// rightmost-fastest, each named "<base>[p1=v1 p2=v2 ...]". Expansion
// is deterministic: equal sweeps produce equal spec sequences (and so
// equal hashes).
func (sw Sweep) Expand() ([]Spec, error) {
	total := 1
	for _, ax := range sw.Axes {
		if len(ax.Values) == 0 {
			return nil, fmt.Errorf("scenario: sweep axis %q has no values", ax.Param)
		}
		if total > MaxSweepSpecs/len(ax.Values) {
			return nil, fmt.Errorf("scenario: sweep expands past the %d-run cap", MaxSweepSpecs)
		}
		total *= len(ax.Values)
	}
	base := sw.Base.Normalize()
	specs := make([]Spec, 0, total)
	idx := make([]int, len(sw.Axes))
	for {
		sp := base
		var label strings.Builder
		label.WriteString(base.Name)
		if len(sw.Axes) > 0 {
			label.WriteString("[")
		}
		for i, ax := range sw.Axes {
			v := ax.Values[idx[i]]
			var err error
			sp, err = setParam(sp, ax.Param, v)
			if err != nil {
				return nil, err
			}
			if i > 0 {
				label.WriteString(" ")
			}
			label.WriteString(ax.Param)
			label.WriteString("=")
			label.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		}
		if len(sw.Axes) > 0 {
			label.WriteString("]")
		}
		sp.Name = label.String()
		if err := sp.Validate(); err != nil {
			return nil, fmt.Errorf("%w (at %s)", err, sp.Name)
		}
		specs = append(specs, sp)
		// Odometer increment, rightmost axis fastest.
		i := len(idx) - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(sw.Axes[i].Values) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			break
		}
	}
	return specs, nil
}

// setParam applies one axis value to a normalized spec. Node-level
// parameters apply to every node: a sweep varies the deployment, not
// one element of it.
func setParam(sp Spec, param string, v float64) (Spec, error) {
	// The normalized spec shares its Nodes slice with the base;
	// copy-on-write before mutating.
	cloneNodes := func() []NodeSpec {
		out := make([]NodeSpec, len(sp.Nodes))
		copy(out, sp.Nodes)
		return out
	}
	switch param {
	case ParamDriveV:
		sp.PHY.DriveV = v
	case ParamCarrierHz:
		sp.PHY.CarrierHz = v
	case ParamNoiseRMSPa:
		sp.PHY.NoiseRMSPa = v
	case ParamBitrateBps:
		nodes := cloneNodes()
		for i := range nodes {
			nodes[i].BitrateBps = v
		}
		sp.Nodes = nodes
	case ParamSpeedMS:
		nodes := cloneNodes()
		for i := range nodes {
			nodes[i].RadialSpeedMS = v
		}
		sp.Nodes = nodes
	case ParamRangeM:
		// Slide each node to distance v from the projector along the
		// projector→node direction (fallback: the tank diagonal).
		tank, err := sp.Tank.Build()
		if err != nil {
			return sp, err
		}
		proj, _ := readerPositions(tank)
		nodes := cloneNodes()
		for i := range nodes {
			p := nodes[i].PosM
			dx, dy, dz := p[0]-proj.X, p[1]-proj.Y, p[2]-proj.Z
			norm := dx*dx + dy*dy + dz*dz
			if norm == 0 {
				dx, dy, dz = tank.LX-proj.X, tank.LY-proj.Y, 0
				norm = dx*dx + dy*dy + dz*dz
			}
			scale := v / math.Sqrt(norm)
			nodes[i].PosM = [3]float64{proj.X + dx*scale, proj.Y + dy*scale, proj.Z + dz*scale}
		}
		sp.Nodes = nodes
	case ParamSeed:
		sp.Seed = int64(v)
	case ParamDurationS:
		sp.MAC.DurationS = v
	case ParamPolls:
		sp.MAC.Polls = int(v)
	case ParamMaxAttempts:
		sp.MAC.MaxAttempts = int(v)
	default:
		return sp, fmt.Errorf("scenario: unknown sweep param %q", param)
	}
	return sp, nil
}
