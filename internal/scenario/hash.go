package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// Canonicalization rules (DESIGN.md §12):
//
//  1. the spec is normalized first, so every default is explicit —
//     `{}` and the fully spelled-out paper deployment hash identically;
//  2. the Name label is cleared — relabeling must not invalidate a
//     cached result;
//  3. fields serialize in Spec declaration order with no whitespace
//     (encoding/json emits struct fields in declaration order);
//  4. floats render in Go's shortest round-trippable form (strconv
//     AppendFloat 'g'), so 150 and 1.5e2 canonicalize identically;
//  5. empty optional fields are omitted via their omitempty tags.
//
// Changing the schema in a way that alters any canonical form requires
// bumping Version, which itself is hashed.

// CanonicalJSON returns the canonical serialization the content hash
// is computed over.
func (s Spec) CanonicalJSON() ([]byte, error) {
	c := s.Normalize()
	c.Name = ""
	b, err := json.Marshal(c)
	if err != nil {
		return nil, fmt.Errorf("scenario: canonicalize: %w", err)
	}
	return b, nil
}

// Hash returns the canonical content address of the run this spec
// determines: hex(SHA-256(CanonicalJSON)). Specs that normalize to the
// same parameters — regardless of labels, field spelling or float
// formatting — share a hash, which is what lets pabd deduplicate and
// cache runs.
func (s Spec) Hash() (string, error) {
	b, err := s.CanonicalJSON()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// Decode parses a spec from its JSON serialization, normalizes and
// validates it, and returns it with its canonical hash — the inverse
// of persisting a spec (the WAL job store round-trips specs through
// this on replay, and re-deriving the hash rather than trusting a
// stored one means a record whose spec no longer matches its id is
// caught instead of silently re-keyed).
func Decode(b []byte) (Spec, string, error) {
	var s Spec
	if err := json.Unmarshal(b, &s); err != nil {
		return Spec{}, "", fmt.Errorf("scenario: decode: %w", err)
	}
	s = s.Normalize()
	if err := s.Validate(); err != nil {
		return Spec{}, "", err
	}
	id, err := s.Hash()
	if err != nil {
		return Spec{}, "", err
	}
	return s, id, nil
}
