package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

func TestNormalizeFillsPaperDefaults(t *testing.T) {
	sp := Spec{}.Normalize()
	if sp.Version != Version {
		t.Errorf("version = %d, want %d", sp.Version, Version)
	}
	if sp.Kind != KindLink {
		t.Errorf("kind = %q, want %q", sp.Kind, KindLink)
	}
	if sp.Seed != 1 {
		t.Errorf("seed = %d, want 1", sp.Seed)
	}
	if len(sp.Nodes) != 1 || sp.Nodes[0].Addr != 0x01 || sp.Nodes[0].BitrateBps != 500 {
		t.Errorf("nodes = %+v, want the single paper node at 500 bps", sp.Nodes)
	}
	if sp.PHY.CarrierHz != 15000 || sp.PHY.SampleRateHz != 96000 || sp.PHY.Coding != "fm0" {
		t.Errorf("phy = %+v, want 15 kHz FM0 at 96 kS/s", sp.PHY)
	}
	if err := sp.Validate(); err != nil {
		t.Fatalf("normalized zero spec should validate: %v", err)
	}
}

func TestNormalizeDoesNotAliasCallerNodes(t *testing.T) {
	in := Spec{Nodes: []NodeSpec{{PosM: [3]float64{1, 1, 0.5}}}}
	out := in.Normalize()
	out.Nodes[0].BitrateBps = 9999
	if in.Nodes[0].BitrateBps == 9999 {
		t.Fatal("Normalize shares its Nodes slice with the input")
	}
}

func TestHashCanonicalization(t *testing.T) {
	zero, err := Spec{}.Hash()
	if err != nil {
		t.Fatal(err)
	}
	// Spelling out the defaults must not change the hash.
	explicit := Spec{
		Version: 1,
		Kind:    KindLink,
		Seed:    1,
		Tank:    TankSpec{Preset: TankPoolA},
		Nodes:   []NodeSpec{{Addr: 0x01, PosM: [3]float64{1.2, 1.3, 0.65}, BitrateBps: 500}},
	}
	if h, _ := explicit.Hash(); h != zero {
		t.Errorf("explicit defaults hash %s != zero-spec hash %s", h, zero)
	}
	// The Name label is excluded from the hash.
	if h, _ := (Spec{Name: "relabeled"}).Hash(); h != zero {
		t.Errorf("naming a spec changed its hash")
	}
	// Any physical knob changes the hash.
	if h, _ := (Spec{PHY: PHYSpec{DriveV: 50}}).Hash(); h == zero {
		t.Errorf("changing drive voltage did not change the hash")
	}
	if h, _ := (Spec{Seed: 2}).Hash(); h == zero {
		t.Errorf("changing the seed did not change the hash")
	}
}

func TestCanonicalJSONRoundTrips(t *testing.T) {
	spec := Spec{Kind: KindChaos, Seed: 7, Chaos: ChaosSpec{Profile: "shrimp"}}
	b1, err := spec.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Spec
	if err := json.Unmarshal(b1, &back); err != nil {
		t.Fatal(err)
	}
	b2, err := back.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Errorf("canonical JSON is not a fixed point:\n%s\n%s", b1, b2)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"future version", func(s *Spec) { s.Version = Version + 1 }, "version"},
		{"unknown kind", func(s *Spec) { s.Kind = "quantum" }, "kind"},
		{"node outside tank", func(s *Spec) { s.Nodes[0].PosM = [3]float64{99, 99, 99} }, "outside"},
		{"duplicate address", func(s *Spec) {
			s.Nodes = append(s.Nodes, s.Nodes[0])
		}, "duplicate"},
		{"unknown coding", func(s *Spec) { s.PHY.Coding = "manchester" }, "coding"},
		{"carrier above nyquist", func(s *Spec) { s.PHY.CarrierHz = 96000 }, "rates"},
		{"unknown profile", func(s *Spec) { s.Chaos.Profile = "tsunami" }, "tsunami"},
		{"unknown sensor", func(s *Spec) {
			s.MAC.Command = "read_sensor"
			s.MAC.Sensor = "sonar"
		}, "sensor"},
		{"zero polls", func(s *Spec) { s.MAC.Polls = -1 }, "polls"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sp := Spec{}.Normalize()
			tc.mut(&sp)
			err := sp.Validate()
			if err == nil {
				t.Fatalf("want error containing %q, got nil", tc.want)
			}
			if !strings.Contains(strings.ToLower(err.Error()), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestTankCustomDimensions(t *testing.T) {
	tank, err := TankSpec{Preset: TankPoolA, LXM: 10, LYM: 5, DepthM: 2}.Build()
	if err != nil {
		t.Fatal(err)
	}
	if tank.LX != 10 || tank.LY != 5 || tank.LZ != 2 {
		t.Errorf("tank = %gx%gx%g, want 10x5x2", tank.LX, tank.LY, tank.LZ)
	}
	if _, err := (TankSpec{Preset: TankPoolA, LXM: 0.1, LYM: 5, DepthM: 2}).Build(); err == nil {
		t.Error("want error for a 0.1 m tank")
	}
}

func TestSweepExpand(t *testing.T) {
	sw := Sweep{
		Base: Spec{Name: "grid", Kind: KindChaos},
		Axes: []Axis{
			{Param: ParamSeed, Values: []float64{1, 2, 3}},
			{Param: ParamMaxAttempts, Values: []float64{2, 4}},
		},
	}
	specs, err := sw.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 6 {
		t.Fatalf("expanded %d specs, want 6", len(specs))
	}
	if specs[0].Name != "grid[seed=1 max_attempts=2]" {
		t.Errorf("first name = %q", specs[0].Name)
	}
	// Rightmost axis varies fastest.
	if specs[1].MAC.MaxAttempts != 4 || specs[1].Seed != 1 {
		t.Errorf("second point = seed %d attempts %d, want 1/4", specs[1].Seed, specs[1].MAC.MaxAttempts)
	}
	seen := make(map[string]bool)
	for _, sp := range specs {
		h, err := sp.Hash()
		if err != nil {
			t.Fatal(err)
		}
		if seen[h] {
			t.Fatalf("duplicate hash in expansion at %q", sp.Name)
		}
		seen[h] = true
	}
}

func TestSweepExpandDeterministic(t *testing.T) {
	sw := Sweep{Axes: []Axis{{Param: ParamDriveV, Values: []float64{50, 150}}}}
	a, err := sw.Expand()
	if err != nil {
		t.Fatal(err)
	}
	b, _ := sw.Expand()
	for i := range a {
		ha, _ := a[i].Hash()
		hb, _ := b[i].Hash()
		if ha != hb {
			t.Fatalf("expansion %d not deterministic", i)
		}
	}
}

func TestSweepRejects(t *testing.T) {
	if _, err := (Sweep{Axes: []Axis{{Param: ParamSeed}}}).Expand(); err == nil {
		t.Error("want error for an empty axis")
	}
	if _, err := (Sweep{Axes: []Axis{{Param: "salinity", Values: []float64{1}}}}).Expand(); err == nil {
		t.Error("want error for an unknown param")
	}
	big := make([]float64, 100)
	sw := Sweep{Axes: []Axis{
		{Param: ParamSeed, Values: big},
		{Param: ParamDriveV, Values: big},
	}}
	if _, err := sw.Expand(); err == nil || !strings.Contains(err.Error(), "cap") {
		t.Errorf("want cap error for a 10000-point grid, got %v", err)
	}
}

func TestRunChaosDeterministic(t *testing.T) {
	spec := Spec{Kind: KindChaos, Seed: 7, MAC: MACSpec{DurationS: 60}, Chaos: ChaosSpec{Profile: "shrimp"}}
	r1, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Chaos == nil || r1.Link != nil {
		t.Fatal("chaos run should fill exactly the Chaos report")
	}
	r2, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := json.Marshal(r1)
	b2, _ := json.Marshal(r2)
	if !bytes.Equal(b1, b2) {
		t.Error("equal chaos specs produced different results")
	}
	if h := r1.Headline(); h["adaptive_goodput_bps"] <= 0 {
		t.Errorf("headline = %v, want positive adaptive goodput", h)
	}
}

func TestRunLinkDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("sample-level link run")
	}
	spec := Spec{} // the paper's single-node link, one ping poll
	r1, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Link == nil {
		t.Fatal("link run should fill the Link report")
	}
	if !r1.Link.PoweredAll || r1.Link.Replies != 1 || r1.Link.DeliveredBytes == 0 {
		t.Errorf("default link run should deliver one clean reply: %+v", r1.Link)
	}
	r2, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := json.Marshal(r1)
	b2, _ := json.Marshal(r2)
	if !bytes.Equal(b1, b2) {
		t.Error("equal link specs produced different results")
	}
}

func TestRunHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, Spec{}); err == nil {
		t.Fatal("want context error from a cancelled run")
	}
}

func TestRunRejectsTunedBatteryCombo(t *testing.T) {
	spec := Spec{Nodes: []NodeSpec{{
		Addr: 1, PosM: [3]float64{1.2, 1.3, 0.65}, TunedHz: 15000, BatteryJ: 10,
	}}}
	if _, err := Run(context.Background(), spec); err == nil {
		t.Fatal("want error for tuned_hz + battery_j")
	}
}

// TestDecodeRoundTrip: Decode is the WAL-replay entry point — it must
// reproduce exactly the id the scheduler computed at submit time, and
// refuse payloads that would replay into an invalid job.
func TestDecodeRoundTrip(t *testing.T) {
	sp := Spec{Kind: KindChaos, Seed: 42, MAC: MACSpec{DurationS: 5}}
	norm := sp.Normalize()
	want, err := norm.Hash()
	if err != nil {
		t.Fatal(err)
	}
	// Decode from the raw (un-normalized) encoding, the shape a WAL
	// submit record stores.
	raw, err := json.Marshal(sp)
	if err != nil {
		t.Fatal(err)
	}
	got, id, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if id != want {
		t.Errorf("Decode id = %s, want %s", id, want)
	}
	if got.Version != norm.Version || got.Kind != norm.Kind || got.Seed != norm.Seed {
		t.Errorf("Decode spec = %+v, want normalized %+v", got, norm)
	}

	// Field order must not matter: the id is content-addressed.
	reordered := []byte(`{"seed":42,"mac":{"duration_s":5},"kind":"chaos"}`)
	if _, id2, err := Decode(reordered); err != nil || id2 != want {
		t.Errorf("reordered Decode = (%s, %v), want (%s, nil)", id2, err, want)
	}
}

func TestDecodeRejects(t *testing.T) {
	for name, raw := range map[string]string{
		"garbage":      `{not json`,
		"bad kind":     `{"kind":"quantum"}`,
		"bad duration": `{"kind":"chaos","mac":{"duration_s":-3}}`,
	} {
		if _, _, err := Decode([]byte(raw)); err == nil {
			t.Errorf("Decode(%s) accepted %q", name, raw)
		}
	}
}
