// Package scenario defines the versioned, JSON-round-trippable
// specification that fully determines one PAB simulation run: tank
// geometry, node placement, PHY coding and drive, MAC schedule, chaos
// profile and seed. A normalized Spec is a pure value — two specs with
// the same canonical form produce bit-identical results — so its
// canonical SHA-256 hash (see hash.go) content-addresses the run and
// lets the pabd service deduplicate and cache whole simulations.
//
// The zero Spec is not runnable; Normalize fills every unset knob with
// the paper's defaults (Pool A, the §4 node, 15 kHz FM0 uplink), so the
// minimal useful submission is `{}`. Validate accepts exactly the
// parameter space the simulator implements and rejects everything else
// with a descriptive error, making the spec safe to accept over HTTP.
package scenario

import (
	"fmt"
	"strings"

	"pab/internal/channel"
	"pab/internal/fault"
	"pab/internal/frame"
)

// Version is the current schema version. Normalize stamps it onto
// specs submitted without one; Validate rejects versions the binary
// does not understand, so old clients fail loudly instead of silently
// running a reinterpreted scenario.
const Version = 1

// Kinds of run a Spec can describe.
const (
	// KindLink is a sample-level single-reader deployment: each node
	// gets its own Link, is powered up, and is polled MAC.Polls times.
	KindLink = "link"
	// KindChaos is the fault-injection comparison of DESIGN.md §10: the
	// named chaos profile replayed against a blind fixed-rate poller and
	// the adaptive session (fault.RunScenario).
	KindChaos = "chaos"
)

// Tank presets understood by TankSpec.
const (
	TankPoolA        = "pool_a"
	TankPoolB        = "pool_b"
	TankSwimmingPool = "swimming_pool"
)

// Spec fully determines one simulation run. Field order is the
// canonical serialization order (see hash.go); keep JSON tags stable —
// they are the public schema.
type Spec struct {
	Version int `json:"version"`
	// Name is a human label for dashboards and sweep expansion. It is
	// excluded from the canonical hash: relabeling a run must not
	// invalidate its cached result.
	Name  string     `json:"name,omitempty"`
	Kind  string     `json:"kind"`
	Seed  int64      `json:"seed"`
	Tank  TankSpec   `json:"tank"`
	Nodes []NodeSpec `json:"nodes"`
	PHY   PHYSpec    `json:"phy"`
	MAC   MACSpec    `json:"mac"`
	Chaos ChaosSpec  `json:"chaos"`
}

// TankSpec selects the water volume. Dimensions override the preset's
// when all three are positive (reflection coefficients and water
// profile still come from the preset).
type TankSpec struct {
	Preset string  `json:"preset"`
	LXM    float64 `json:"lx_m,omitempty"`
	LYM    float64 `json:"ly_m,omitempty"`
	DepthM float64 `json:"depth_m,omitempty"`
}

// NodeSpec places one battery-free node.
type NodeSpec struct {
	Addr byte `json:"addr"`
	// PosM is the node position in tank coordinates, metres.
	PosM [3]float64 `json:"pos_m"`
	// BitrateBps is the backscatter uplink bitrate.
	BitrateBps float64 `json:"bitrate_bps"`
	// TunedHz, when non-zero, gives the node a single recto-piezo
	// front end tuned there (the FDMA knob); zero keeps the paper's
	// dual 15/18 kHz front ends.
	TunedHz float64 `json:"tuned_hz,omitempty"`
	// RadialSpeedMS models drift toward (+) or away from (−) the
	// reader (§8 mobility).
	RadialSpeedMS float64 `json:"radial_speed_ms,omitempty"`
	// BatteryJ, when positive, backs the node with the §1 hybrid
	// battery.
	BatteryJ float64 `json:"battery_j,omitempty"`
}

// PHYSpec fixes the physical layer.
type PHYSpec struct {
	// Coding is the uplink line code; only "fm0" (the paper's) is
	// implemented today. The field exists so manchester/cdma variants
	// version the hash instead of aliasing it.
	Coding          string  `json:"coding"`
	SampleRateHz    float64 `json:"sample_rate_hz"`
	CarrierHz       float64 `json:"carrier_hz"`
	DriveV          float64 `json:"drive_v"`
	PWMUnitSamples  int     `json:"pwm_unit_samples"`
	NoiseRMSPa      float64 `json:"noise_rms_pa"`
	ChannelOrder    int     `json:"channel_order"`
	MaxReplyPayload int     `json:"max_reply_payload"`
}

// MACSpec fixes the interrogation schedule.
type MACSpec struct {
	// Polls is how many interrogation cycles each node receives
	// (KindLink).
	Polls int `json:"polls"`
	// MaxAttempts bounds exchanges per logical poll (KindChaos).
	MaxAttempts int `json:"max_attempts"`
	// Command is the downlink query: "ping" or "read_sensor".
	Command string `json:"command"`
	// Sensor selects the peripheral for read_sensor: "ph",
	// "temperature" or "pressure".
	Sensor string `json:"sensor,omitempty"`
	// DurationS is the simulated run length (KindChaos) and the fault
	// timeline horizon (KindLink under chaos).
	DurationS float64 `json:"duration_s"`
	// PowerUpS is the power-up budget per node, simulated seconds.
	PowerUpS float64 `json:"power_up_s"`
}

// ChaosSpec names the fault profile applied to the run. Empty means
// no injected faults ("calm" is equivalent but hashes differently —
// prefer empty).
type ChaosSpec struct {
	Profile string `json:"profile,omitempty"`
}

// Normalize fills every unset field with its default, returning the
// canonical form of the spec. It never fails; Validate reports what
// Normalize cannot repair.
func (s Spec) Normalize() Spec {
	if s.Version == 0 {
		s.Version = Version
	}
	if s.Kind == "" {
		s.Kind = KindLink
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Tank.Preset == "" {
		s.Tank.Preset = TankPoolA
	}
	if len(s.Nodes) == 0 {
		// The paper's single-link deployment: one node ~1 m from the
		// reader (core.DefaultLinkConfig).
		s.Nodes = []NodeSpec{{Addr: 0x01, PosM: [3]float64{1.2, 1.3, 0.65}}}
	}
	nodes := make([]NodeSpec, len(s.Nodes))
	copy(nodes, s.Nodes)
	for i := range nodes {
		if nodes[i].Addr == 0 {
			nodes[i].Addr = byte(i + 1)
		}
		if nodes[i].BitrateBps == 0 {
			nodes[i].BitrateBps = 500
		}
	}
	s.Nodes = nodes
	if s.PHY.Coding == "" {
		s.PHY.Coding = "fm0"
	}
	if s.PHY.SampleRateHz == 0 {
		s.PHY.SampleRateHz = 96000
	}
	if s.PHY.CarrierHz == 0 {
		s.PHY.CarrierHz = 15000
	}
	if s.PHY.DriveV == 0 {
		s.PHY.DriveV = 150
	}
	if s.PHY.PWMUnitSamples == 0 {
		s.PHY.PWMUnitSamples = 480
	}
	if s.PHY.NoiseRMSPa == 0 {
		s.PHY.NoiseRMSPa = 0.5
	}
	if s.PHY.ChannelOrder == 0 {
		s.PHY.ChannelOrder = 2
	}
	if s.PHY.MaxReplyPayload == 0 {
		s.PHY.MaxReplyPayload = 16
	}
	if s.MAC.Polls == 0 {
		s.MAC.Polls = 1
	}
	if s.MAC.MaxAttempts == 0 {
		s.MAC.MaxAttempts = 4
	}
	if s.MAC.Command == "" {
		s.MAC.Command = "ping"
	}
	if s.MAC.Command == "read_sensor" && s.MAC.Sensor == "" {
		s.MAC.Sensor = "temperature"
	}
	if s.MAC.Command != "read_sensor" {
		s.MAC.Sensor = ""
	}
	if s.MAC.DurationS == 0 {
		if s.Kind == KindChaos {
			s.MAC.DurationS = 180
		} else {
			s.MAC.DurationS = 60
		}
	}
	if s.MAC.PowerUpS == 0 {
		s.MAC.PowerUpS = 60
	}
	if s.Kind == KindChaos && s.Chaos.Profile == "" {
		s.Chaos.Profile = "calm"
	}
	return s
}

// Validate checks a *normalized* spec against the parameter space the
// simulator implements.
func (s Spec) Validate() error {
	if s.Version != Version {
		return fmt.Errorf("scenario: unsupported schema version %d (this build speaks %d)", s.Version, Version)
	}
	switch s.Kind {
	case KindLink, KindChaos:
	default:
		return fmt.Errorf("scenario: unknown kind %q (have %q, %q)", s.Kind, KindLink, KindChaos)
	}
	tank, err := s.Tank.Build()
	if err != nil {
		return err
	}
	if len(s.Nodes) == 0 {
		return fmt.Errorf("scenario: at least one node required")
	}
	if len(s.Nodes) > 64 {
		return fmt.Errorf("scenario: %d nodes exceeds the 64-node cap", len(s.Nodes))
	}
	seen := make(map[byte]bool, len(s.Nodes))
	for i, n := range s.Nodes {
		if n.Addr == 0 {
			return fmt.Errorf("scenario: node %d: address 0 is reserved", i)
		}
		if seen[n.Addr] {
			return fmt.Errorf("scenario: duplicate node address %#02x", n.Addr)
		}
		seen[n.Addr] = true
		if n.BitrateBps <= 0 || n.BitrateBps > 100000 {
			return fmt.Errorf("scenario: node %#02x: bitrate %g bps out of (0, 100k]", n.Addr, n.BitrateBps)
		}
		if n.BatteryJ < 0 {
			return fmt.Errorf("scenario: node %#02x: negative battery capacity", n.Addr)
		}
		if s.Kind == KindLink {
			p := n.PosM
			if p[0] <= 0 || p[0] >= tank.LX || p[1] <= 0 || p[1] >= tank.LY || p[2] <= 0 || p[2] >= tank.LZ {
				return fmt.Errorf("scenario: node %#02x at (%g, %g, %g) outside the %gx%gx%g m tank",
					n.Addr, p[0], p[1], p[2], tank.LX, tank.LY, tank.LZ)
			}
		}
	}
	if s.PHY.Coding != "fm0" {
		return fmt.Errorf("scenario: uplink coding %q not implemented (have \"fm0\")", s.PHY.Coding)
	}
	if s.PHY.SampleRateHz <= 0 || s.PHY.CarrierHz <= 0 || s.PHY.CarrierHz >= s.PHY.SampleRateHz/2 {
		return fmt.Errorf("scenario: bad rates: fs=%g carrier=%g", s.PHY.SampleRateHz, s.PHY.CarrierHz)
	}
	if s.PHY.DriveV <= 0 || s.PHY.DriveV > 1000 {
		return fmt.Errorf("scenario: drive %g V out of (0, 1000]", s.PHY.DriveV)
	}
	if s.PHY.PWMUnitSamples < 8 {
		return fmt.Errorf("scenario: PWM unit %d samples too small (min 8)", s.PHY.PWMUnitSamples)
	}
	if s.PHY.NoiseRMSPa < 0 {
		return fmt.Errorf("scenario: negative noise RMS")
	}
	if s.PHY.ChannelOrder < 1 || s.PHY.ChannelOrder > 4 {
		return fmt.Errorf("scenario: channel order %d out of [1, 4]", s.PHY.ChannelOrder)
	}
	if s.PHY.MaxReplyPayload <= 0 || s.PHY.MaxReplyPayload > frame.MaxPayload {
		return fmt.Errorf("scenario: max reply payload %d out of (0, %d]", s.PHY.MaxReplyPayload, frame.MaxPayload)
	}
	if s.MAC.Polls < 1 || s.MAC.Polls > 1000 {
		return fmt.Errorf("scenario: polls %d out of [1, 1000]", s.MAC.Polls)
	}
	if s.MAC.MaxAttempts < 1 || s.MAC.MaxAttempts > 16 {
		return fmt.Errorf("scenario: max attempts %d out of [1, 16]", s.MAC.MaxAttempts)
	}
	switch s.MAC.Command {
	case "ping":
	case "read_sensor":
		if _, err := sensorID(s.MAC.Sensor); err != nil {
			return err
		}
	default:
		return fmt.Errorf("scenario: unknown command %q (have \"ping\", \"read_sensor\")", s.MAC.Command)
	}
	if s.MAC.DurationS <= 0 || s.MAC.DurationS > 3600 {
		return fmt.Errorf("scenario: duration %g s out of (0, 3600]", s.MAC.DurationS)
	}
	if s.MAC.PowerUpS <= 0 || s.MAC.PowerUpS > 600 {
		return fmt.Errorf("scenario: power-up budget %g s out of (0, 600]", s.MAC.PowerUpS)
	}
	if s.Chaos.Profile != "" {
		if _, err := fault.ByName(s.Chaos.Profile); err != nil {
			return err
		}
	}
	return nil
}

// Build materializes the tank geometry.
func (t TankSpec) Build() (channel.Tank, error) {
	var tank channel.Tank
	switch t.Preset {
	case TankPoolA:
		tank = channel.PoolA()
	case TankPoolB:
		tank = channel.PoolB()
	case TankSwimmingPool:
		tank = channel.SwimmingPool()
	default:
		return channel.Tank{}, fmt.Errorf("scenario: unknown tank preset %q (have %q, %q, %q)",
			t.Preset, TankPoolA, TankPoolB, TankSwimmingPool)
	}
	custom := t.LXM != 0 || t.LYM != 0 || t.DepthM != 0
	if custom {
		if t.LXM < 0.5 || t.LYM < 0.5 || t.DepthM < 0.2 ||
			t.LXM > 100 || t.LYM > 100 || t.DepthM > 50 {
			return channel.Tank{}, fmt.Errorf("scenario: tank %gx%gx%g m outside [0.5,100]x[0.5,100]x[0.2,50]",
				t.LXM, t.LYM, t.DepthM)
		}
		tank.LX, tank.LY, tank.LZ = t.LXM, t.LYM, t.DepthM
	}
	return tank, nil
}

// Query builds the downlink query this spec's MAC schedule sends to
// addr.
func (m MACSpec) Query(addr byte) (frame.Query, error) {
	switch m.Command {
	case "ping":
		return frame.Query{Dest: addr, Command: frame.CmdPing}, nil
	case "read_sensor":
		id, err := sensorID(m.Sensor)
		if err != nil {
			return frame.Query{}, err
		}
		return frame.Query{Dest: addr, Command: frame.CmdReadSensor, Param: byte(id)}, nil
	}
	return frame.Query{}, fmt.Errorf("scenario: unknown command %q", m.Command)
}

func sensorID(name string) (frame.SensorID, error) {
	switch strings.ToLower(name) {
	case "ph":
		return frame.SensorPH, nil
	case "temperature":
		return frame.SensorTemperature, nil
	case "pressure":
		return frame.SensorPressure, nil
	}
	return 0, fmt.Errorf("scenario: unknown sensor %q (have \"ph\", \"temperature\", \"pressure\")", name)
}
