package scenario

import (
	"context"
	"errors"
	"fmt"
	"math"

	"pab/internal/channel"
	"pab/internal/core"
	"pab/internal/fault"
	"pab/internal/node"
	"pab/internal/sensors"
)

// Result is the outcome of one scenario run. Exactly one of Chaos and
// Link is set, matching the spec's kind. Every field is a pure
// function of the canonical spec, so results are safe to cache under
// the spec hash.
type Result struct {
	SpecHash string        `json:"spec_hash"`
	Kind     string        `json:"kind"`
	Chaos    *fault.Report `json:"chaos,omitempty"`
	Link     *LinkReport   `json:"link,omitempty"`
}

// LinkReport aggregates a KindLink run: each node powered up and
// polled MAC.Polls times over its own sample-level link.
type LinkReport struct {
	Nodes []LinkNodeReport `json:"nodes"`
	// Polls/Replies/Failures are network totals; a failure is a poll
	// with no CRC-clean decode.
	Polls    int `json:"polls"`
	Replies  int `json:"replies"`
	Failures int `json:"failures"`
	// DeliveredBytes is total CRC-clean payload.
	DeliveredBytes int `json:"delivered_bytes"`
	// GoodputBps is delivered payload bits per second of occupied
	// airtime.
	GoodputBps float64 `json:"goodput_bps"`
	AirtimeS   float64 `json:"airtime_s"`
	// PoweredAll reports whether every node reached its power-on
	// threshold within the budget.
	PoweredAll bool `json:"powered_all"`
}

// LinkNodeReport is one node's share of a KindLink run.
type LinkNodeReport struct {
	Addr    byte `json:"addr"`
	Powered bool `json:"powered"`
	Polls   int  `json:"polls"`
	Replies int  `json:"replies"`
	// MeanBER averages the raw uplink BER over all polls (silent polls
	// count as BER 1).
	MeanBER float64 `json:"mean_ber"`
	// MeanSNRdB averages slicer SNR over decodable polls (0 when none).
	MeanSNRdB float64 `json:"mean_snr_db"`
	// LastCFOHz is the receiver's carrier-offset estimate from the
	// final decodable poll — the Doppler observable of the §8 mobility
	// study.
	LastCFOHz float64 `json:"last_cfo_hz"`
	// Decodable reports whether every poll decoded with zero bit
	// errors.
	Decodable bool `json:"decodable"`
}

// Run normalizes, validates and executes the spec. The context is
// honored at poll granularity for KindLink; KindChaos runs are a
// single deterministic fault.RunScenario call and are checked before
// and after.
func Run(ctx context.Context, s Spec) (*Result, error) {
	sp := s.Normalize()
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	hash, err := sp.Hash()
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res := &Result{SpecHash: hash, Kind: sp.Kind}
	switch sp.Kind {
	case KindChaos:
		cfg := fault.DefaultScenarioConfig()
		cfg.DurationS = sp.MAC.DurationS
		cfg.Nodes = len(sp.Nodes)
		cfg.MaxAttempts = sp.MAC.MaxAttempts
		rep, err := fault.RunScenario(sp.Chaos.Profile, sp.Seed, cfg)
		if err != nil {
			return nil, err
		}
		res.Chaos = rep
	case KindLink:
		rep, err := runLink(ctx, sp)
		if err != nil {
			return nil, err
		}
		res.Link = rep
	default:
		return nil, fmt.Errorf("scenario: unknown kind %q", sp.Kind)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return res, nil
}

// buildNode materializes one NodeSpec.
func buildNode(n NodeSpec) (*node.Node, error) {
	env := sensors.RoomTank()
	switch {
	case n.TunedHz != 0 && n.BatteryJ != 0:
		return nil, fmt.Errorf("scenario: node %#02x: tuned_hz and battery_j cannot combine", n.Addr)
	case n.TunedHz != 0:
		return core.NewTunedNode(n.Addr, n.BitrateBps, n.TunedHz, env)
	case n.BatteryJ != 0:
		return core.NewBatteryAssistedNode(n.Addr, n.BitrateBps, n.BatteryJ, env)
	default:
		return core.NewPaperNode(n.Addr, n.BitrateBps, env)
	}
}

// runLink executes a KindLink spec: one Link per node, polled in spec
// order over a shared fault timeline.
func runLink(ctx context.Context, sp Spec) (*LinkReport, error) {
	tank, err := sp.Tank.Build()
	if err != nil {
		return nil, err
	}
	base := core.DefaultLinkConfig()
	base.Tank = tank
	base.SampleRate = sp.PHY.SampleRateHz
	base.CarrierHz = sp.PHY.CarrierHz
	base.DriveV = sp.PHY.DriveV
	base.PWMUnit = sp.PHY.PWMUnitSamples
	base.NoiseRMS = sp.PHY.NoiseRMSPa
	base.ChannelOrder = sp.PHY.ChannelOrder
	base.MaxReplyPayload = sp.PHY.MaxReplyPayload
	base.ProjectorPos, base.HydrophonePos = readerPositions(tank)

	var eng *fault.Engine
	if sp.Chaos.Profile != "" {
		p, err := fault.ByName(sp.Chaos.Profile)
		if err != nil {
			return nil, err
		}
		addrs := make([]byte, len(sp.Nodes))
		for i, n := range sp.Nodes {
			addrs[i] = n.Addr
		}
		eng, err = fault.NewEngine(p, sp.Seed, sp.MAC.DurationS, addrs)
		if err != nil {
			return nil, err
		}
	}

	rep := &LinkReport{PoweredAll: true}
	for i, ns := range sp.Nodes {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		n, err := buildNode(ns)
		if err != nil {
			return nil, err
		}
		proj, err := core.NewPaperProjector(base.SampleRate)
		if err != nil {
			return nil, err
		}
		lcfg := base
		lcfg.NodePos = channel.Vec3{X: ns.PosM[0], Y: ns.PosM[1], Z: ns.PosM[2]}
		lcfg.NodeRadialSpeedMS = ns.RadialSpeedMS
		lcfg.Seed = sp.Seed + int64(i)
		link, err := core.NewLink(lcfg, n, proj)
		if err != nil {
			return nil, err
		}
		if eng != nil {
			link.SetFaultEngine(eng)
		}
		nr := LinkNodeReport{Addr: ns.Addr, Decodable: true}
		if err := link.EnsurePowered(sp.MAC.PowerUpS); err != nil {
			nr.Powered, nr.Decodable = false, false
			rep.PoweredAll = false
			rep.Nodes = append(rep.Nodes, nr)
			continue
		}
		nr.Powered = true
		q, err := sp.MAC.Query(ns.Addr)
		if err != nil {
			return nil, err
		}
		var berSum, snrSum float64
		var decoded int
		for p := 0; p < sp.MAC.Polls; p++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			nr.Polls++
			rep.Polls++
			res, err := link.RunQuery(q)
			if err != nil {
				var off *core.NodeOffError
				if errors.As(err, &off) {
					// Chaos browned the node out mid-run: a failed
					// poll, not a failed scenario.
					berSum++
					nr.Decodable = false
					rep.Failures++
					continue
				}
				return nil, err
			}
			rep.AirtimeS += float64(len(res.Recording)) / lcfg.SampleRate
			berSum += res.UplinkBER
			ok := res.Decoded != nil && res.UplinkBER == 0 && res.Decoded.Bits != nil
			if res.Decoded != nil {
				snrSum += res.Decoded.SNRdB()
				nr.LastCFOHz = res.Decoded.CFOHz
				decoded++
			}
			if ok {
				nr.Replies++
				rep.Replies++
				rep.DeliveredBytes += len(res.Decoded.Frame.Payload)
			} else {
				nr.Decodable = false
				rep.Failures++
			}
		}
		if nr.Polls > 0 {
			nr.MeanBER = berSum / float64(nr.Polls)
		}
		if decoded > 0 {
			nr.MeanSNRdB = snrSum / float64(decoded)
		}
		rep.Nodes = append(rep.Nodes, nr)
	}
	if rep.AirtimeS > 0 {
		rep.GoodputBps = float64(rep.DeliveredBytes*8) / rep.AirtimeS
	}
	return rep, nil
}

// readerPositions places projector and hydrophone: the paper's Fig 6
// spots when they fit the tank, otherwise the same fractional corner
// of the volume. Positions are a pure function of geometry so equal
// specs keep equal physics.
func readerPositions(t channel.Tank) (proj, hydro channel.Vec3) {
	proj = channel.Vec3{X: 0.5, Y: 0.5, Z: 0.65}
	hydro = channel.Vec3{X: 0.7, Y: 0.6, Z: 0.65}
	if proj.X < t.LX && proj.Y < t.LY && proj.Z < t.LZ &&
		hydro.X < t.LX && hydro.Y < t.LY && hydro.Z < t.LZ {
		return proj, hydro
	}
	proj = channel.Vec3{X: 0.17 * t.LX, Y: 0.13 * t.LY, Z: 0.5 * t.LZ}
	hydro = channel.Vec3{X: 0.23 * t.LX, Y: 0.15 * t.LY, Z: 0.5 * t.LZ}
	return proj, hydro
}

// Headline extracts the one-line numeric summary the batch API
// reports per job.
func (r *Result) Headline() map[string]float64 {
	if r == nil {
		return nil
	}
	switch {
	case r.Chaos != nil:
		return map[string]float64{
			"blind_goodput_bps":    r.Chaos.Blind.GoodputBps,
			"adaptive_goodput_bps": r.Chaos.Adaptive.GoodputBps,
			"advantage_x":          r.Chaos.AdvantageX,
		}
	case r.Link != nil:
		replyRate := 0.0
		if r.Link.Polls > 0 {
			replyRate = float64(r.Link.Replies) / float64(r.Link.Polls)
		}
		worst := math.Inf(1)
		for _, n := range r.Link.Nodes {
			if n.Powered && n.MeanSNRdB < worst {
				worst = n.MeanSNRdB
			}
		}
		if math.IsInf(worst, 1) {
			worst = 0
		}
		return map[string]float64{
			"goodput_bps":  r.Link.GoodputBps,
			"reply_rate":   replyRate,
			"worst_snr_db": worst,
			"airtime_s":    r.Link.AirtimeS,
			"delivered_b":  float64(r.Link.DeliveredBytes),
			"powered_all":  boolTo01(r.Link.PoweredAll),
		}
	}
	return nil
}

func boolTo01(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
