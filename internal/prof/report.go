package prof

import (
	"fmt"
	"sort"
	"strings"

	"pab/internal/telemetry"
)

// StageStats summarises every recorded invocation of one pipeline
// stage — the per-stage row of BENCH_decode.json.
type StageStats struct {
	// Count is the number of recorded invocations.
	Count int `json:"count"`
	// P50MS/P99MS/MeanMS/MaxMS are wall-time percentiles per
	// invocation, in milliseconds (exact, computed from span records,
	// not histogram buckets).
	P50MS  float64 `json:"p50_ms"`
	P99MS  float64 `json:"p99_ms"`
	MeanMS float64 `json:"mean_ms"`
	MaxMS  float64 `json:"max_ms"`
	// OpsPerSec is 1/mean: sustained single-threaded invocation rate.
	OpsPerSec float64 `json:"ops_per_sec"`
	// TotalSamples is the total input samples the stage consumed;
	// SamplesPerSec is that volume over the stage's total busy time.
	TotalSamples  int64   `json:"total_samples"`
	SamplesPerSec float64 `json:"samples_per_sec"`
	// AllocBytesPerOp is the mean heap-allocation delta per
	// invocation (0 unless alloc tracking was on).
	AllocBytesPerOp float64 `json:"alloc_bytes_per_op"`
}

// stageSpanPrefix is how StageTimer names its span records.
const stageSpanPrefix = "stage_"

// CollectStageStats aggregates the "stage_*" span records in a
// snapshot into per-stage statistics keyed by stage key.
func CollectStageStats(spans []telemetry.SpanRecord) map[string]StageStats {
	type acc struct {
		durs    []float64
		samples int64
		alloc   int64
	}
	accs := make(map[string]*acc)
	for _, s := range spans {
		if !strings.HasPrefix(s.Name, stageSpanPrefix) {
			continue
		}
		key := strings.TrimPrefix(s.Name, stageSpanPrefix)
		a := accs[key]
		if a == nil {
			a = &acc{}
			accs[key] = a
		}
		a.durs = append(a.durs, s.DurationSeconds)
		if v, ok := s.Attrs["samples"]; ok {
			a.samples += toInt64(v)
		}
		if v, ok := s.Attrs["alloc_bytes"]; ok {
			a.alloc += toInt64(v)
		}
	}
	out := make(map[string]StageStats, len(accs))
	for key, a := range accs {
		sort.Float64s(a.durs)
		var sum float64
		for _, d := range a.durs {
			sum += d
		}
		n := len(a.durs)
		st := StageStats{
			Count:        n,
			P50MS:        percentileSorted(a.durs, 50) * 1e3,
			P99MS:        percentileSorted(a.durs, 99) * 1e3,
			MeanMS:       sum / float64(n) * 1e3,
			MaxMS:        a.durs[n-1] * 1e3,
			TotalSamples: a.samples,
		}
		if sum > 0 {
			st.OpsPerSec = float64(n) / sum
			st.SamplesPerSec = float64(a.samples) / sum
		}
		st.AllocBytesPerOp = float64(a.alloc) / float64(n)
		out[key] = st
	}
	return out
}

// toInt64 widens the numeric types a span attribute may carry
// (in-memory int/int64, float64 after a JSON round trip).
func toInt64(v any) int64 {
	switch x := v.(type) {
	case int:
		return int64(x)
	case int64:
		return x
	case float64:
		return int64(x)
	}
	return 0
}

// percentileSorted returns the pth percentile (nearest-rank) of an
// ascending-sorted slice.
func percentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(p/100*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// BenchReport is the BENCH_decode.json schema: the per-stage baseline
// the ROADMAP's ≥10x raw-speed campaign is measured against.
type BenchReport struct {
	SchemaVersion int `json:"schema_version"`
	// Workload parameters.
	Runs             int     `json:"runs"`
	SampleRate       float64 `json:"sample_rate_hz"`
	RecordingSamples int     `json:"recording_samples"`
	BitrateBps       float64 `json:"bitrate_bps"`
	// Decoded counts CRC-clean decodes out of Runs.
	Decoded int `json:"decoded"`
	// WallS and OpsPerSec measure the full chain end to end.
	WallS     float64 `json:"wall_s"`
	OpsPerSec float64 `json:"ops_per_sec"`
	// ChainP50MS/ChainP99MS are per-run full-chain latencies.
	ChainP50MS float64 `json:"chain_p50_ms"`
	ChainP99MS float64 `json:"chain_p99_ms"`
	// Stages maps stage key (record/downconvert/filter/sync/decode) to
	// its statistics.
	Stages map[string]StageStats `json:"stages"`
}

// CheckAgainst gates a fresh measurement against a committed baseline
// (the CI bench-decode-smoke job): every baseline stage must still be
// present with nonzero invocations and samples, no stage's p50 may
// regress more than maxRegress×, and — when maxAllocRegress > 0 — no
// stage's alloc_bytes_per_op may grow more than maxAllocRegress×.
// Durations under floorMS are floored before the latency ratio so
// sub-noise stages cannot trip the gate; the allocation ratio floors at
// 4 KiB per op for the same reason (allocator noise on near-zero
// stages). Returns one message per violation.
func (r BenchReport) CheckAgainst(base BenchReport, maxRegress, floorMS, maxAllocRegress float64) []string {
	var problems []string
	floor := func(v float64) float64 {
		if v < floorMS {
			return floorMS
		}
		return v
	}
	const allocFloorBytes = 4096
	floorAlloc := func(v float64) float64 {
		if v < allocFloorBytes {
			return allocFloorBytes
		}
		return v
	}
	for key, bs := range base.Stages {
		cur, ok := r.Stages[key]
		if !ok || cur.Count == 0 {
			problems = append(problems, fmt.Sprintf("stage %q: no invocations recorded (baseline has %d)", key, bs.Count))
			continue
		}
		if cur.TotalSamples == 0 {
			problems = append(problems, fmt.Sprintf("stage %q: zero samples processed", key))
		}
		if ratio := floor(cur.P50MS) / floor(bs.P50MS); ratio > maxRegress {
			problems = append(problems, fmt.Sprintf(
				"stage %q: p50 regressed %.2fx (%.3fms vs baseline %.3fms, budget %.1fx)",
				key, ratio, cur.P50MS, bs.P50MS, maxRegress))
		}
		if maxAllocRegress > 0 {
			if ratio := floorAlloc(cur.AllocBytesPerOp) / floorAlloc(bs.AllocBytesPerOp); ratio > maxAllocRegress {
				problems = append(problems, fmt.Sprintf(
					"stage %q: alloc_bytes_per_op regressed %.2fx (%.0fB vs baseline %.0fB, budget %.1fx)",
					key, ratio, cur.AllocBytesPerOp, bs.AllocBytesPerOp, maxAllocRegress))
			}
		}
	}
	if r.Decoded == 0 {
		problems = append(problems, "no run produced a CRC-clean decode")
	}
	return problems
}
