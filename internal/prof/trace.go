package prof

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"time"

	"pab/internal/telemetry"
)

// TraceEvent is one Chrome trace-event (the Trace Event Format the
// chrome://tracing and Perfetto UIs load). Complete events carry
// ph="X" with ts/dur in microseconds; metadata events (process and
// thread names) carry ph="M".
type TraceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// TraceFile is the JSON-object form of the trace-event format.
type TraceFile struct {
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	TraceEvents     []TraceEvent `json:"traceEvents"`
}

// tracePid is the single synthetic process id all events share.
const tracePid = 1

// BuildTrace converts finished span records (oldest first, as
// Snapshot delivers them) into a Perfetto-loadable trace. Track
// layout: every span tree renders on one track named after its root
// span; concurrent trees with the same root name (parallel scheduler
// workers) fan out over numbered lanes, so queue-wait and service
// phases of one job stay adjacent while eight workers' jobs stack
// into eight readable rows.
func BuildTrace(spans []telemetry.SpanRecord) TraceFile {
	tf := TraceFile{DisplayTimeUnit: "ms", TraceEvents: []TraceEvent{
		{Name: "process_name", Ph: "M", Pid: tracePid, Args: map[string]any{"name": "pab"}},
	}}
	if len(spans) == 0 {
		return tf
	}

	// Root resolution: follow parent links as far as the ring still
	// holds them (old parents age out of the ring; orphans root their
	// own subtree).
	byID := make(map[uint64]int, len(spans))
	for i, s := range spans {
		byID[s.ID] = i
	}
	rootOf := make([]uint64, len(spans))
	var resolve func(i int) uint64
	resolve = func(i int) uint64 {
		if rootOf[i] != 0 {
			return rootOf[i]
		}
		s := spans[i]
		root := s.ID
		if s.ParentID != 0 {
			if pi, ok := byID[s.ParentID]; ok {
				root = resolve(pi)
			}
		}
		rootOf[i] = root
		return root
	}
	for i := range spans {
		resolve(i)
	}

	// Tree extents (for lane packing): [start, end] over every member.
	type extent struct {
		name       string
		start, end time.Time
	}
	extents := make(map[uint64]*extent)
	for i, s := range spans {
		root := rootOf[i]
		end := s.Start.Add(time.Duration(s.DurationSeconds * float64(time.Second)))
		e, ok := extents[root]
		if !ok {
			extents[root] = &extent{name: s.Name, start: s.Start, end: end}
			continue
		}
		if s.Start.Before(e.start) {
			e.start = s.Start
		}
		if end.After(e.end) {
			e.end = end
		}
		if s.ID == root {
			e.name = s.Name
		}
	}

	// Greedy lane assignment per root name: a tree takes the lowest
	// lane whose previous occupant ended before it starts.
	rootIDs := make([]uint64, 0, len(extents))
	for id := range extents {
		rootIDs = append(rootIDs, id)
	}
	sort.Slice(rootIDs, func(a, b int) bool {
		ea, eb := extents[rootIDs[a]], extents[rootIDs[b]]
		if !ea.start.Equal(eb.start) {
			return ea.start.Before(eb.start)
		}
		return rootIDs[a] < rootIDs[b]
	})
	type lane struct{ end time.Time }
	lanes := make(map[string][]*lane) // root name → lanes
	tids := make(map[uint64]int)      // root id → tid
	tidSeq := 0
	tidOf := make(map[string]map[int]int) // (name, lane index) → tid
	for _, id := range rootIDs {
		e := extents[id]
		ls := lanes[e.name]
		slot := -1
		for i, l := range ls {
			if !l.end.After(e.start) {
				slot = i
				break
			}
		}
		if slot < 0 {
			ls = append(ls, &lane{})
			lanes[e.name] = ls
			slot = len(ls) - 1
		}
		ls[slot].end = e.end
		if tidOf[e.name] == nil {
			tidOf[e.name] = make(map[int]int)
		}
		tid, ok := tidOf[e.name][slot]
		if !ok {
			tidSeq++
			tid = tidSeq
			tidOf[e.name][slot] = tid
			label := e.name
			if slot > 0 {
				label = fmt.Sprintf("%s #%d", e.name, slot+1)
			}
			tf.TraceEvents = append(tf.TraceEvents, TraceEvent{
				Name: "thread_name", Ph: "M", Pid: tracePid, Tid: tid,
				Args: map[string]any{"name": label},
			})
		}
		tids[id] = tid
	}

	origin := spans[0].Start
	for _, s := range spans {
		if s.Start.Before(origin) {
			origin = s.Start
		}
	}
	events := make([]TraceEvent, 0, len(spans))
	for i, s := range spans {
		args := make(map[string]any, len(s.Attrs)+2)
		for k, v := range s.Attrs {
			args[k] = v
		}
		args["span_id"] = s.ID
		if s.ParentID != 0 {
			args["parent_id"] = s.ParentID
		}
		events = append(events, TraceEvent{
			Name: s.Name,
			Ph:   "X",
			Ts:   float64(s.Start.Sub(origin)) / float64(time.Microsecond),
			Dur:  s.DurationSeconds * 1e6,
			Pid:  tracePid,
			Tid:  tids[rootOf[i]],
			Args: args,
		})
	}
	sort.SliceStable(events, func(a, b int) bool { return events[a].Ts < events[b].Ts })
	tf.TraceEvents = append(tf.TraceEvents, events...)
	return tf
}

// WriteTrace renders the registry's span ring as trace-event JSON.
func WriteTrace(w io.Writer, reg *telemetry.Registry) error {
	tf := BuildTrace(reg.Snapshot().Spans)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(tf)
}

// WriteTraceFile writes the registry's trace to path (the -trace-out
// CLI flag).
func WriteTraceFile(path string, reg *telemetry.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("prof: trace: %w", err)
	}
	if err := WriteTrace(f, reg); err != nil {
		f.Close()
		return fmt.Errorf("prof: trace: %w", err)
	}
	return f.Close()
}

// TraceHandler serves the registry's trace as
// application/json — load the response straight into
// https://ui.perfetto.dev.
func TraceHandler(reg *telemetry.Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", `attachment; filename="trace.json"`)
		if err := WriteTrace(w, reg); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// Install mounts the profiler's routes on the registry's debug
// handler: /trace.json. Idempotent — re-mounting replaces the route.
func Install(reg *telemetry.Registry) {
	reg.Handle("/trace.json", TraceHandler(reg))
}
