package prof

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pab/internal/telemetry"
)

func TestBuildTraceValidTraceEventJSON(t *testing.T) {
	reg := telemetry.NewRegistry()
	root := reg.StartSpan("sim_job").Attr("id", "abc")
	reg.RecordSpan("sim_queue_wait", root.ID(), time.Now().Add(-10*time.Millisecond),
		10*time.Millisecond, map[string]any{"id": "abc"})
	StartIn(reg, StageDecode).WithParent(root.ID()).Stop(64)
	root.End()

	tf := BuildTrace(reg.Snapshot().Spans)
	if tf.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q, want ms", tf.DisplayTimeUnit)
	}
	var meta, complete int
	names := map[string]bool{}
	for _, ev := range tf.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
		case "X":
			complete++
			names[ev.Name] = true
			if ev.Ts < 0 || ev.Dur < 0 {
				t.Fatalf("negative ts/dur: %+v", ev)
			}
			if ev.Pid != tracePid || ev.Tid <= 0 {
				t.Fatalf("bad pid/tid: %+v", ev)
			}
			if _, ok := ev.Args["span_id"]; !ok {
				t.Fatalf("X event missing span_id: %+v", ev)
			}
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	if meta < 2 { // process_name + at least one thread_name
		t.Fatalf("metadata events = %d, want >= 2", meta)
	}
	if complete != 3 {
		t.Fatalf("complete events = %d, want 3", complete)
	}
	for _, want := range []string{"sim_job", "sim_queue_wait", "stage_decode"} {
		if !names[want] {
			t.Fatalf("event %q missing from trace", want)
		}
	}

	// The file must round-trip as plain trace-event JSON.
	b, err := json.Marshal(tf)
	if err != nil {
		t.Fatal(err)
	}
	var back struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("trace does not parse as trace-event JSON: %v", err)
	}
	if len(back.TraceEvents) != len(tf.TraceEvents) {
		t.Fatalf("round trip lost events: %d vs %d", len(back.TraceEvents), len(tf.TraceEvents))
	}
}

func TestBuildTraceGroupsTreeOnOneTrack(t *testing.T) {
	reg := telemetry.NewRegistry()
	root := reg.StartSpan("sim_job")
	reg.RecordSpan("sim_queue_wait", root.ID(), time.Now().Add(-5*time.Millisecond),
		5*time.Millisecond, nil)
	root.End()

	tf := BuildTrace(reg.Snapshot().Spans)
	tids := map[string]int{}
	for _, ev := range tf.TraceEvents {
		if ev.Ph == "X" {
			tids[ev.Name] = ev.Tid
		}
	}
	if tids["sim_job"] != tids["sim_queue_wait"] {
		t.Fatalf("queue-wait and service phases on different tracks: %v", tids)
	}
}

func TestBuildTraceLanesParallelRoots(t *testing.T) {
	reg := telemetry.NewRegistry()
	base := time.Now()
	// Two overlapping trees with the same root name (two scheduler
	// workers), plus a third that starts after the first ended and can
	// reuse its lane.
	reg.RecordSpan("sim_job", 0, base, 10*time.Millisecond, nil)
	reg.RecordSpan("sim_job", 0, base.Add(2*time.Millisecond), 10*time.Millisecond, nil)
	reg.RecordSpan("sim_job", 0, base.Add(20*time.Millisecond), 5*time.Millisecond, nil)

	tf := BuildTrace(reg.Snapshot().Spans)
	var labels []string
	tids := map[int]bool{}
	for _, ev := range tf.TraceEvents {
		switch {
		case ev.Ph == "M" && ev.Name == "thread_name":
			labels = append(labels, ev.Args["name"].(string))
		case ev.Ph == "X":
			tids[ev.Tid] = true
		}
	}
	if len(labels) != 2 {
		t.Fatalf("thread labels = %v, want exactly 2 lanes", labels)
	}
	if labels[0] != "sim_job" || labels[1] != "sim_job #2" {
		t.Fatalf("lane labels = %v", labels)
	}
	if len(tids) != 2 {
		t.Fatalf("distinct tids = %d, want 2 (third tree reuses lane 1)", len(tids))
	}
}

func TestTraceHandlerMountedOnRegistryHandler(t *testing.T) {
	reg := telemetry.NewRegistry()
	Install(reg)
	reg.StartSpan("stage_x").End()
	h := reg.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/trace.json", nil))
	if rec.Code != 200 {
		t.Fatalf("/trace.json status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("content type = %q", ct)
	}
	var tf TraceFile
	if err := json.Unmarshal(rec.Body.Bytes(), &tf); err != nil {
		t.Fatalf("/trace.json body does not parse: %v", err)
	}
	if tf.DisplayTimeUnit != "ms" || len(tf.TraceEvents) == 0 {
		t.Fatalf("unexpected trace: %+v", tf)
	}
}

func TestWriteTraceFile(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.StartSpan("stage_y").End()
	path := t.TempDir() + "/trace.json"
	if err := WriteTraceFile(path, reg); err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	TraceHandler(reg).ServeHTTP(rec, httptest.NewRequest("GET", "/trace.json", nil))
	if rec.Code != 200 {
		t.Fatalf("handler status %d", rec.Code)
	}
}

func TestRuntimePollerFeedsRegistry(t *testing.T) {
	reg := telemetry.NewRegistry()
	p := StartRuntimePoller(reg, 100*time.Millisecond)
	defer p.Stop()

	snap := reg.Snapshot() // StartRuntimePoller polls once synchronously
	if snap.Counters[string(telemetry.MProfRuntimePollsTotal)] < 1 {
		t.Fatal("no polls recorded")
	}
	if snap.Gauges[string(telemetry.MRuntimeGoroutines)] <= 0 {
		t.Fatalf("goroutine gauge = %g", snap.Gauges[string(telemetry.MRuntimeGoroutines)])
	}
	if snap.Gauges[string(telemetry.MRuntimeHeapBytes)] <= 0 {
		t.Fatalf("heap gauge = %g", snap.Gauges[string(telemetry.MRuntimeHeapBytes)])
	}
	if snap.Counters[string(telemetry.MRuntimeAllocBytesTotal)] <= 0 {
		t.Fatal("alloc counter not fed")
	}
	p.Stop() // idempotent
}

func TestRuntimePollerDisabledRegistry(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.SetEnabled(false)
	p := StartRuntimePoller(reg, 100*time.Millisecond)
	defer p.Stop()
	reg.SetEnabled(true)
	if snap := reg.Snapshot(); len(snap.Gauges) != 0 {
		t.Fatalf("disabled registry got gauges: %v", snap.Gauges)
	}
}
