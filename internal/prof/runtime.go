package prof

import (
	"math"
	"runtime/metrics"
	"sync"
	"time"

	"pab/internal/telemetry"
)

// runtime/metrics keys the poller samples. Kinds are checked at read
// time (KindBad on an unknown key), so a toolchain that drops a key
// degrades to skipping it rather than failing.
const (
	rmHeapBytes   = "/memory/classes/heap/objects:bytes"
	rmHeapObjects = "/gc/heap/objects:objects"
	rmGoroutines  = "/sched/goroutines:goroutines"
	rmGCCycles    = "/gc/cycles/total:gc-cycles"
	rmAllocBytes  = "/gc/heap/allocs:bytes"
	rmGCPauses    = "/gc/pauses:seconds"
	rmSchedLat    = "/sched/latencies:seconds"
)

// RuntimePoller periodically samples the Go runtime (heap in use,
// goroutine count, GC pauses, scheduler latency) into registry gauges
// and counters, so the Prometheus exposition and /telemetry.json show
// runtime pressure next to the pipeline's own numbers — GC pause
// spikes lining up with decode p99 excursions is exactly the
// correlation the raw-speed campaign needs visible.
type RuntimePoller struct {
	reg      *telemetry.Registry
	interval time.Duration

	stopOnce sync.Once
	stopCh   chan struct{}
	done     chan struct{}

	// cumulative counters from the previous poll, for delta feeding of
	// monotonic registry counters.
	lastGC    uint64
	lastAlloc uint64
	havePrev  bool
}

// StartRuntimePoller begins polling the runtime every interval (≥
// 100 ms enforced; 0 selects 1 s) into the registry. It polls once
// synchronously so metrics exist immediately. Call Stop to release
// the goroutine.
func StartRuntimePoller(reg *telemetry.Registry, interval time.Duration) *RuntimePoller {
	if interval <= 0 {
		interval = time.Second
	}
	if interval < 100*time.Millisecond {
		interval = 100 * time.Millisecond
	}
	p := &RuntimePoller{
		reg:      reg,
		interval: interval,
		stopCh:   make(chan struct{}),
		done:     make(chan struct{}),
	}
	p.poll()
	go p.loop()
	return p
}

// Stop halts the poller and waits for its goroutine to exit.
// Idempotent.
func (p *RuntimePoller) Stop() {
	p.stopOnce.Do(func() { close(p.stopCh) })
	<-p.done
}

func (p *RuntimePoller) loop() {
	defer close(p.done)
	t := time.NewTicker(p.interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			p.poll()
		case <-p.stopCh:
			return
		}
	}
}

// poll reads one batch of runtime metrics into the registry.
func (p *RuntimePoller) poll() {
	if !p.reg.Enabled() {
		return
	}
	samples := []metrics.Sample{
		{Name: rmHeapBytes},
		{Name: rmHeapObjects},
		{Name: rmGoroutines},
		{Name: rmGCCycles},
		{Name: rmAllocBytes},
		{Name: rmGCPauses},
		{Name: rmSchedLat},
	}
	metrics.Read(samples)
	for _, s := range samples {
		switch s.Name {
		case rmHeapBytes:
			if s.Value.Kind() == metrics.KindUint64 {
				p.reg.Set(telemetry.MRuntimeHeapBytes, float64(s.Value.Uint64()))
			}
		case rmHeapObjects:
			if s.Value.Kind() == metrics.KindUint64 {
				p.reg.Set(telemetry.MRuntimeHeapObjects, float64(s.Value.Uint64()))
			}
		case rmGoroutines:
			if s.Value.Kind() == metrics.KindUint64 {
				p.reg.Set(telemetry.MRuntimeGoroutines, float64(s.Value.Uint64()))
			}
		case rmGCCycles:
			if s.Value.Kind() == metrics.KindUint64 {
				v := s.Value.Uint64()
				if p.havePrev && v > p.lastGC {
					p.reg.Add(telemetry.MRuntimeGCCyclesTotal, int64(v-p.lastGC))
				} else if !p.havePrev {
					p.reg.Add(telemetry.MRuntimeGCCyclesTotal, int64(v))
				}
				p.lastGC = v
			}
		case rmAllocBytes:
			if s.Value.Kind() == metrics.KindUint64 {
				v := s.Value.Uint64()
				if p.havePrev && v > p.lastAlloc {
					p.reg.Add(telemetry.MRuntimeAllocBytesTotal, int64(v-p.lastAlloc))
				} else if !p.havePrev {
					p.reg.Add(telemetry.MRuntimeAllocBytesTotal, int64(v))
				}
				p.lastAlloc = v
			}
		case rmGCPauses:
			if s.Value.Kind() == metrics.KindFloat64Histogram {
				h := s.Value.Float64Histogram()
				p.reg.Set(telemetry.MRuntimeGCPauseP50Seconds, histQuantile(h, 0.5))
				p.reg.Set(telemetry.MRuntimeGCPauseMaxSeconds, histMax(h))
			}
		case rmSchedLat:
			if s.Value.Kind() == metrics.KindFloat64Histogram {
				h := s.Value.Float64Histogram()
				p.reg.Set(telemetry.MRuntimeSchedLatencyP50Seconds, histQuantile(h, 0.5))
				p.reg.Set(telemetry.MRuntimeSchedLatencyP99Seconds, histQuantile(h, 0.99))
			}
		}
	}
	p.havePrev = true
	p.reg.Inc(telemetry.MProfRuntimePollsTotal)
}

// histQuantile estimates quantile q (0..1) of a runtime
// Float64Histogram by bucket interpolation (lower-edge convention;
// ±Inf edges fall back to the finite neighbour).
func histQuantile(h *metrics.Float64Histogram, q float64) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum > target {
			lo, hi := bucketEdges(h, i)
			return (lo + hi) / 2
		}
	}
	lo, hi := bucketEdges(h, len(h.Counts)-1)
	return (lo + hi) / 2
}

// histMax returns the midpoint of the highest occupied bucket.
func histMax(h *metrics.Float64Histogram) float64 {
	for i := len(h.Counts) - 1; i >= 0; i-- {
		if h.Counts[i] > 0 {
			lo, hi := bucketEdges(h, i)
			return (lo + hi) / 2
		}
	}
	return 0
}

// bucketEdges returns finite edges for bucket i: runtime histograms
// bracket bucket i with Buckets[i] and Buckets[i+1], either of which
// may be ±Inf.
func bucketEdges(h *metrics.Float64Histogram, i int) (lo, hi float64) {
	lo, hi = h.Buckets[i], h.Buckets[i+1]
	if math.IsInf(lo, -1) || math.IsNaN(lo) || lo < 0 {
		lo = 0
	}
	if math.IsInf(hi, 1) || math.IsNaN(hi) {
		hi = lo
	}
	return lo, hi
}
