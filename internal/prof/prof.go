// Package prof is the stage-level pipeline profiler for the PAB
// receiver chain, layered on the telemetry substrate (PR 1). The
// raw-speed campaign (ROADMAP) needs to know *which* stage of the
// decode chain — record → downconvert → filter → sync → decode —
// burns the milliseconds BENCH_pabd.json reports per physics job;
// whole-cycle spans cannot say. This package provides:
//
//   - StageTimer: a per-stage timer the chain's hot functions adopt.
//     One Stop records wall time, samples/sec throughput and (when
//     alloc tracking is on) a heap-allocation delta into typed
//     histograms, and files a "stage_<key>" span record so exact
//     per-invocation durations are available for percentile math
//     (cmd/pabprof) and trace export.
//   - Do: pprof label plumbing. Wrapping scheduler jobs and decode
//     runs attaches (stage, job_id, spec_hash, …) labels so
//     /debug/pprof/profile flamegraphs break down by pipeline stage.
//   - trace.go: a Chrome trace-event JSON exporter (/trace.json and
//     the -trace-out flag) that renders any run in Perfetto,
//     including the scheduler's queue-wait vs service-time phases.
//   - runtime.go: a background runtime/metrics poller (heap, GC
//     pauses, goroutines, scheduler latency) feeding the registry and
//     with it the Prometheus exposition.
//
// Everything is gated on the registry's enabled flag: with telemetry
// off, every entry point reduces to an atomic load and a nil return,
// holding the instrumented hot path within the PR 1 overhead budget
// (<2%, asserted by BenchmarkProfOverheadDecode in the repo root).
package prof

import (
	"context"
	"runtime/metrics"
	"runtime/pprof"
	"sync/atomic"
	"time"

	"pab/internal/telemetry"
)

// Stage identifies one receiver-chain pipeline stage and carries its
// pre-registered metric names (telemetry hygiene: the namespace is
// fixed at compile time, so stages are package-level variables, not
// runtime strings).
type Stage struct {
	// Key is the stage's short identifier; span records are filed as
	// "stage_<Key>" and trace rows are grouped by it.
	Key string

	seconds    telemetry.Name
	throughput telemetry.Name
	alloc      telemetry.Name
}

// The receiver-chain stages (paper §5.1b), in pipeline order.
var (
	// StageRecord is the hydrophone front end: pressure → voltage,
	// sensitivity and ADC modelling (internal/hydrophone via core).
	StageRecord = Stage{
		Key:        "record",
		seconds:    telemetry.MProfStageRecordSeconds,
		throughput: telemetry.MProfStageRecordSamplesPerSec,
		alloc:      telemetry.MProfStageRecordAllocBytes,
	}
	// StageDownconvert is the complex mix to baseband (internal/dsp).
	StageDownconvert = Stage{
		Key:        "downconvert",
		seconds:    telemetry.MProfStageDownconvertSeconds,
		throughput: telemetry.MProfStageDownconvertSamplesPSec,
		alloc:      telemetry.MProfStageDownconvertAllocBytes,
	}
	// StageFilter is the Butterworth channel filter on I and Q
	// (internal/dsp).
	StageFilter = Stage{
		Key:        "filter",
		seconds:    telemetry.MProfStageFilterSeconds,
		throughput: telemetry.MProfStageFilterSamplesPerSec,
		alloc:      telemetry.MProfStageFilterAllocBytes,
	}
	// StageSync is preamble correlation / packet detection
	// (internal/phy).
	StageSync = Stage{
		Key:        "sync",
		seconds:    telemetry.MProfStageSyncSeconds,
		throughput: telemetry.MProfStageSyncSamplesPerSec,
		alloc:      telemetry.MProfStageSyncAllocBytes,
	}
	// StageDecode is ML FM0 bit decoding plus CRC arbitration over the
	// candidate locks (internal/core).
	StageDecode = Stage{
		Key:        "decode",
		seconds:    telemetry.MProfStageDecodeSeconds,
		throughput: telemetry.MProfStageDecodeSamplesPerSec,
		alloc:      telemetry.MProfStageDecodeAllocBytes,
	}
)

// Stages lists every receiver-chain stage in pipeline order — the set
// BENCH_decode.json reports and the CI smoke gate checks.
var Stages = []Stage{StageRecord, StageDownconvert, StageFilter, StageSync, StageDecode}

// allocTracking switches per-stage heap-allocation deltas on. Reading
// runtime/metrics on every stage boundary is cheap but not free, so
// servers leave it off; cmd/pabprof switches it on for the bench.
var allocTracking atomic.Bool

// SetAllocTracking switches per-stage allocation-delta recording on or
// off (off by default).
func SetAllocTracking(on bool) { allocTracking.Store(on) }

// AllocTracking reports whether stage timers record allocation deltas.
func AllocTracking() bool { return allocTracking.Load() }

// heapAllocs reads the cumulative heap allocation counter. The sample
// is process-global — per-stage deltas are exact in a single-threaded
// harness (pabprof) and an upper bound under concurrency.
func heapAllocs() uint64 {
	s := []metrics.Sample{{Name: "/gc/heap/allocs:bytes"}}
	metrics.Read(s)
	if s[0].Value.Kind() != metrics.KindUint64 {
		return 0
	}
	return s[0].Value.Uint64()
}

// StageTimer measures one execution of a pipeline stage. A nil
// *StageTimer is a valid no-op (Start returns nil when the registry is
// disabled), so call sites never guard.
type StageTimer struct {
	reg        *telemetry.Registry
	stage      Stage
	parent     uint64
	start      time.Time
	allocStart uint64
	haveAlloc  bool
}

// Start opens a stage timer on the default registry. Returns nil (a
// no-op timer) when the registry is disabled.
func Start(stage Stage) *StageTimer { return StartIn(telemetry.Default(), stage) }

// StartIn opens a stage timer on a specific registry.
func StartIn(reg *telemetry.Registry, stage Stage) *StageTimer {
	if reg == nil || !reg.Enabled() {
		return nil
	}
	t := &StageTimer{reg: reg, stage: stage}
	if allocTracking.Load() {
		t.allocStart = heapAllocs()
		t.haveAlloc = true
	}
	t.start = time.Now()
	return t
}

// WithParent links the stage's span record into an existing span tree
// (trace export groups a tree onto one Perfetto track). Returns the
// timer for chaining; no-op on nil.
func (t *StageTimer) WithParent(parent uint64) *StageTimer {
	if t != nil {
		t.parent = parent
	}
	return t
}

// Stop closes the timer: wall time goes to the stage's seconds
// histogram, samples/elapsed to its throughput histogram, the heap
// delta (when tracked) to its alloc histogram, and a "stage_<key>"
// span record (attrs: samples, alloc_bytes) into the span ring.
// samples is the number of input samples the stage consumed; pass 0
// when unknown. Returns the measured duration; nil timers return 0.
func (t *StageTimer) Stop(samples int) time.Duration {
	if t == nil {
		return 0
	}
	d := time.Since(t.start)
	var allocDelta int64
	if t.haveAlloc {
		if end := heapAllocs(); end > t.allocStart {
			allocDelta = int64(end - t.allocStart)
		}
	}
	sec := d.Seconds()
	t.reg.Observe(t.stage.seconds, sec)
	if samples > 0 && sec > 0 {
		t.reg.ObserveN(t.stage.throughput, telemetry.DefThroughputBuckets, float64(samples)/sec)
	}
	if t.haveAlloc {
		t.reg.ObserveN(t.stage.alloc, telemetry.DefBytesBuckets, float64(allocDelta))
	}
	attrs := map[string]any{"samples": samples}
	if t.haveAlloc {
		attrs["alloc_bytes"] = allocDelta
	}
	t.reg.RecordSpan("stage_"+t.stage.Key, t.parent, t.start, d, attrs)
	return d
}

// Do runs fn under pprof labels (key/value pairs appended to the
// calling goroutine's label set), so CPU profiles captured from
// /debug/pprof/profile attribute samples to pipeline stages and
// scheduler jobs. When the default registry is disabled, fn runs
// directly — the disabled path stays label- and allocation-free. A nil
// ctx selects context.Background.
func Do(ctx context.Context, fn func(), kv ...string) {
	if !telemetry.Enabled() || len(kv) < 2 {
		fn()
		return
	}
	if ctx == nil {
		ctx = context.Background()
	}
	pprof.Do(ctx, pprof.Labels(kv...), func(context.Context) { fn() })
}
