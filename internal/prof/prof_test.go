package prof

import (
	"strings"
	"testing"
	"time"

	"pab/internal/telemetry"
)

func TestStageTimerRecordsHistogramsAndSpan(t *testing.T) {
	reg := telemetry.NewRegistry()
	SetAllocTracking(true)
	defer SetAllocTracking(false)

	st := StartIn(reg, StageDecode)
	if st == nil {
		t.Fatal("StartIn returned nil on an enabled registry")
	}
	// Allocate something measurable and let time pass.
	sink := make([]byte, 1<<16)
	_ = sink
	time.Sleep(time.Millisecond)
	d := st.Stop(1000)
	if d <= 0 {
		t.Fatalf("Stop returned non-positive duration %v", d)
	}

	snap := reg.Snapshot()
	if h := snap.Histograms[string(telemetry.MProfStageDecodeSeconds)]; h.Count != 1 {
		t.Fatalf("seconds histogram count = %d, want 1", h.Count)
	}
	if h := snap.Histograms[string(telemetry.MProfStageDecodeSamplesPerSec)]; h.Count != 1 {
		t.Fatalf("throughput histogram count = %d, want 1", h.Count)
	}
	if h := snap.Histograms[string(telemetry.MProfStageDecodeAllocBytes)]; h.Count != 1 {
		t.Fatalf("alloc histogram count = %d, want 1", h.Count)
	}
	if len(snap.Spans) != 1 {
		t.Fatalf("span records = %d, want 1", len(snap.Spans))
	}
	sp := snap.Spans[0]
	if sp.Name != "stage_decode" {
		t.Fatalf("span name = %q, want stage_decode", sp.Name)
	}
	if got := sp.Attrs["samples"]; got != 1000 {
		t.Fatalf("samples attr = %v, want 1000", got)
	}
	if _, ok := sp.Attrs["alloc_bytes"]; !ok {
		t.Fatal("alloc_bytes attr missing with alloc tracking on")
	}
}

func TestStageTimerDisabledIsNoOp(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.SetEnabled(false)
	st := StartIn(reg, StageSync)
	if st != nil {
		t.Fatal("StartIn should return nil on a disabled registry")
	}
	// The nil timer must be safe throughout.
	if d := st.WithParent(7).Stop(123); d != 0 {
		t.Fatalf("nil timer Stop = %v, want 0", d)
	}
	if len(reg.Snapshot().Spans) != 0 {
		t.Fatal("disabled registry recorded spans")
	}
}

func TestStageTimerParentLinksSpanTree(t *testing.T) {
	reg := telemetry.NewRegistry()
	root := reg.StartSpan("bench_decode")
	st := StartIn(reg, StageSync).WithParent(root.ID())
	st.Stop(10)
	root.End()

	var found bool
	for _, sp := range reg.Snapshot().Spans {
		if sp.Name == "stage_sync" {
			found = true
			if sp.ParentID != root.ID() {
				t.Fatalf("stage_sync parent = %d, want %d", sp.ParentID, root.ID())
			}
		}
	}
	if !found {
		t.Fatal("stage_sync span not recorded")
	}
}

func TestDoRunsFnInAllModes(t *testing.T) {
	was := telemetry.Enabled()
	defer telemetry.SetEnabled(was)

	for _, enabled := range []bool{true, false} {
		telemetry.SetEnabled(enabled)
		ran := false
		Do(nil, func() { ran = true }, "stage", "test")
		if !ran {
			t.Fatalf("Do(enabled=%v) did not run fn", enabled)
		}
	}
	// Odd/short label lists run fn directly instead of panicking in
	// pprof.Labels.
	telemetry.SetEnabled(true)
	ran := false
	Do(nil, func() { ran = true }, "stage")
	if !ran {
		t.Fatal("Do with short label list did not run fn")
	}
}

func TestCollectStageStats(t *testing.T) {
	reg := telemetry.NewRegistry()
	base := time.Now()
	for i, d := range []time.Duration{time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond} {
		reg.RecordSpan("stage_sync", 0, base.Add(time.Duration(i)*time.Millisecond), d,
			map[string]any{"samples": 100, "alloc_bytes": int64(50)})
	}
	reg.RecordSpan("not_a_stage", 0, base, time.Millisecond, nil)

	stats := CollectStageStats(reg.Snapshot().Spans)
	if len(stats) != 1 {
		t.Fatalf("stats for %d stages, want 1", len(stats))
	}
	s, ok := stats["sync"]
	if !ok {
		t.Fatal("sync stage missing")
	}
	if s.Count != 3 || s.TotalSamples != 300 {
		t.Fatalf("count=%d samples=%d, want 3/300", s.Count, s.TotalSamples)
	}
	if s.P50MS < 1.9 || s.P50MS > 2.1 {
		t.Fatalf("p50 = %.3f ms, want ~2", s.P50MS)
	}
	if s.MaxMS < 2.9 || s.MaxMS > 3.1 {
		t.Fatalf("max = %.3f ms, want ~3", s.MaxMS)
	}
	if s.AllocBytesPerOp != 50 {
		t.Fatalf("alloc/op = %g, want 50", s.AllocBytesPerOp)
	}
	if s.OpsPerSec <= 0 || s.SamplesPerSec <= 0 {
		t.Fatalf("rates not positive: %+v", s)
	}
}

func TestBenchReportCheckAgainst(t *testing.T) {
	base := BenchReport{
		Stages: map[string]StageStats{
			"sync":   {Count: 10, P50MS: 1.0, TotalSamples: 100},
			"decode": {Count: 10, P50MS: 2.0, TotalSamples: 100},
		},
	}
	// Clean run: slight regression within budget.
	cur := BenchReport{
		Decoded: 5,
		Stages: map[string]StageStats{
			"sync":   {Count: 10, P50MS: 1.5, TotalSamples: 100},
			"decode": {Count: 10, P50MS: 2.0, TotalSamples: 100},
		},
	}
	if problems := cur.CheckAgainst(base, 2, 0.05, 1.5); len(problems) != 0 {
		t.Fatalf("clean run flagged: %v", problems)
	}
	// Regression, missing stage, zero samples, zero decodes.
	bad := BenchReport{
		Stages: map[string]StageStats{
			"sync": {Count: 10, P50MS: 5.0, TotalSamples: 0},
		},
	}
	problems := bad.CheckAgainst(base, 2, 0.05, 1.5)
	if len(problems) != 4 {
		t.Fatalf("want 4 problems (regression, zero samples, missing stage, zero decodes), got %d: %v",
			len(problems), problems)
	}
	// The floor keeps sub-noise stages from tripping the ratio: 0.01 ms
	// vs 0.001 ms is 10x raw but 1x after a 0.05 ms floor.
	noisy := BenchReport{
		Decoded: 1,
		Stages: map[string]StageStats{
			"sync":   {Count: 10, P50MS: 0.01, TotalSamples: 100},
			"decode": {Count: 10, P50MS: 2.0, TotalSamples: 100},
		},
	}
	tiny := BenchReport{Stages: map[string]StageStats{
		"sync":   {Count: 10, P50MS: 0.001, TotalSamples: 100},
		"decode": {Count: 10, P50MS: 2.0, TotalSamples: 100},
	}}
	if problems := noisy.CheckAgainst(tiny, 2, 0.05, 1.5); len(problems) != 0 {
		t.Fatalf("floored comparison flagged: %v", problems)
	}
}

func TestBenchReportAllocGate(t *testing.T) {
	base := BenchReport{
		Stages: map[string]StageStats{
			"decode": {Count: 10, P50MS: 2.0, TotalSamples: 100, AllocBytesPerOp: 100_000},
			"sync":   {Count: 10, P50MS: 1.0, TotalSamples: 100, AllocBytesPerOp: 1000},
		},
	}
	// decode doubles its per-op allocations: past a 1.5x budget. sync
	// also doubles, but both sides sit under the 4 KiB floor, so the
	// allocator-noise clamp keeps it clean.
	cur := BenchReport{
		Decoded: 5,
		Stages: map[string]StageStats{
			"decode": {Count: 10, P50MS: 2.0, TotalSamples: 100, AllocBytesPerOp: 200_000},
			"sync":   {Count: 10, P50MS: 1.0, TotalSamples: 100, AllocBytesPerOp: 2000},
		},
	}
	problems := cur.CheckAgainst(base, 2, 0.05, 1.5)
	if len(problems) != 1 || !strings.Contains(problems[0], "alloc_bytes_per_op") {
		t.Fatalf("want exactly the decode alloc regression, got %v", problems)
	}
	// A zero maxAllocRegress disables the gate (latency-only checks).
	if problems := cur.CheckAgainst(base, 2, 0.05, 0); len(problems) != 0 {
		t.Fatalf("disabled alloc gate still flagged: %v", problems)
	}
	// Within budget passes.
	cur.Stages["decode"] = StageStats{Count: 10, P50MS: 2.0, TotalSamples: 100, AllocBytesPerOp: 140_000}
	if problems := cur.CheckAgainst(base, 2, 0.05, 1.5); len(problems) != 0 {
		t.Fatalf("within-budget alloc flagged: %v", problems)
	}
}
