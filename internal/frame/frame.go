// Package frame defines PAB's link-layer packet formats (paper §3.3.2):
// the downlink query — "a preamble, destination address, and payload"
// carrying commands such as setting the backscatter link frequency,
// switching resonance mode, or requesting sensor data (§5.1a) — and the
// uplink backscatter packet — "a preamble, a header, and a payload which
// includes readings from on-board sensors" — both protected by a CRC
// (§5.1b: "it can also use the CRC to perform a checksum ... and request
// retransmissions of corrupted packets").
package frame

import (
	"fmt"

	"pab/internal/phy"
)

// Command identifies a downlink query operation.
type Command byte

// Downlink commands (§5.1a).
const (
	// CmdPing requests an immediate uplink reply with no sensor payload.
	CmdPing Command = 0x01
	// CmdSetBitrate sets the node's backscatter bitrate; Param carries a
	// clock-divider index.
	CmdSetBitrate Command = 0x02
	// CmdSwitchResonance selects among the node's onboard matching
	// circuits (the programmable recto-piezo extension, §3.3.2); Param
	// is the circuit index.
	CmdSwitchResonance Command = 0x03
	// CmdReadSensor requests a sensed value; Param selects the sensor.
	CmdReadSensor Command = 0x04
)

// String names the command.
func (c Command) String() string {
	switch c {
	case CmdPing:
		return "ping"
	case CmdSetBitrate:
		return "set-bitrate"
	case CmdSwitchResonance:
		return "switch-resonance"
	case CmdReadSensor:
		return "read-sensor"
	default:
		return fmt.Sprintf("command(0x%02x)", byte(c))
	}
}

// SensorID selects a peripheral in CmdReadSensor queries.
type SensorID byte

// The sensing applications of §6.5.
const (
	SensorPH SensorID = iota + 1
	SensorTemperature
	SensorPressure
)

// String names the sensor.
func (s SensorID) String() string {
	switch s {
	case SensorPH:
		return "pH"
	case SensorTemperature:
		return "temperature"
	case SensorPressure:
		return "pressure"
	default:
		return fmt.Sprintf("sensor(%d)", byte(s))
	}
}

// BroadcastAddr addresses every node in range.
const BroadcastAddr = 0xFF

// Query is a downlink frame.
type Query struct {
	Dest    byte // node address, or BroadcastAddr
	Command Command
	Param   byte
}

// queryLen is the marshalled length: dest + cmd + param + crc16.
const queryLen = 5

// Marshal serialises the query with its CRC.
func (q Query) Marshal() []byte {
	buf := []byte{q.Dest, byte(q.Command), q.Param}
	crc := Checksum(buf)
	return append(buf, byte(crc>>8), byte(crc))
}

// UnmarshalQuery parses and CRC-checks a downlink frame.
func UnmarshalQuery(data []byte) (Query, error) {
	if len(data) != queryLen {
		return Query{}, fmt.Errorf("frame: query length %d, want %d", len(data), queryLen)
	}
	want := uint16(data[3])<<8 | uint16(data[4])
	if got := Checksum(data[:3]); got != want {
		return Query{}, fmt.Errorf("frame: query CRC mismatch: got %04x, want %04x", got, want)
	}
	return Query{Dest: data[0], Command: Command(data[1]), Param: data[2]}, nil
}

// DataFrame is an uplink backscatter packet.
type DataFrame struct {
	Source  byte   // node address
	Seq     byte   // sequence number for ARQ
	Payload []byte // sensor readings or status
}

// MaxPayload bounds the uplink payload so a frame stays well inside the
// coherence budget of the slow backscatter link.
const MaxPayload = 64

// Marshal serialises the frame: source, seq, length, payload, CRC-16.
func (d DataFrame) Marshal() ([]byte, error) {
	if len(d.Payload) > MaxPayload {
		return nil, fmt.Errorf("frame: payload %d bytes exceeds max %d", len(d.Payload), MaxPayload)
	}
	buf := make([]byte, 0, 3+len(d.Payload)+2)
	buf = append(buf, d.Source, d.Seq, byte(len(d.Payload)))
	buf = append(buf, d.Payload...)
	crc := Checksum(buf)
	return append(buf, byte(crc>>8), byte(crc)), nil
}

// UnmarshalDataFrame parses and CRC-checks an uplink frame.
func UnmarshalDataFrame(data []byte) (DataFrame, error) {
	if len(data) < 5 {
		return DataFrame{}, fmt.Errorf("frame: data frame too short: %d bytes", len(data))
	}
	n := int(data[2])
	if n > MaxPayload {
		return DataFrame{}, fmt.Errorf("frame: declared payload %d exceeds max %d", n, MaxPayload)
	}
	if len(data) != 3+n+2 {
		return DataFrame{}, fmt.Errorf("frame: length %d inconsistent with payload %d", len(data), n)
	}
	body := data[:3+n]
	want := uint16(data[3+n])<<8 | uint16(data[3+n+1])
	if got := Checksum(body); got != want {
		return DataFrame{}, fmt.Errorf("frame: data CRC mismatch: got %04x, want %04x", got, want)
	}
	df := DataFrame{Source: data[0], Seq: data[1]}
	if n > 0 {
		df.Payload = make([]byte, n)
		copy(df.Payload, data[3:3+n])
	}
	return df, nil
}

// Checksum computes CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF) — the
// CRC RFID-class links use.
func Checksum(data []byte) uint16 {
	crc := uint16(0xFFFF)
	for _, b := range data {
		crc ^= uint16(b) << 8
		for i := 0; i < 8; i++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ 0x1021
			} else {
				crc <<= 1
			}
		}
	}
	return crc
}

// Bits returns the frame bits for transmission, MSB first.
func Bits(marshalled []byte) []phy.Bit {
	return phy.BytesToBits(marshalled)
}

// FromBits reassembles bytes from received bits; the count must be a
// multiple of 8.
func FromBits(bits []phy.Bit) ([]byte, error) {
	return phy.BitsToBytes(bits)
}

// QueryBitLength is the downlink frame length in bits (after the
// preamble).
const QueryBitLength = queryLen * 8

// DataFrameBitLength returns the uplink frame length in bits for a given
// payload size (after the preamble).
func DataFrameBitLength(payloadBytes int) int {
	return (3 + payloadBytes + 2) * 8
}
