package frame

import (
	"bytes"
	"testing"
)

// Fuzz targets for the wire decoders (go test -fuzz=FuzzUnmarshal...):
// whatever bytes the demodulator hands up, the decoders must never
// panic, and anything they accept must survive a marshal round trip.

func FuzzUnmarshalDataFrame(f *testing.F) {
	valid, err := DataFrame{Source: 0x2A, Seq: 3, Payload: []byte{1, 2, 3, 4}}.Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-1])          // truncated CRC
	f.Add([]byte{})                      // empty
	f.Add([]byte{0, 0, 0, 0, 0})         // zero frame, bad CRC
	f.Add([]byte{1, 2, 200, 3, 4, 5, 6}) // declared payload > max
	corrupt := append([]byte(nil), valid...)
	corrupt[3] ^= 0xFF
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		df, err := UnmarshalDataFrame(data)
		if err != nil {
			return
		}
		// Accepted frames must be internally consistent...
		if len(df.Payload) > MaxPayload {
			t.Fatalf("accepted payload of %d bytes", len(df.Payload))
		}
		// ...and round-trip to the exact input bytes.
		out, err := df.Marshal()
		if err != nil {
			t.Fatalf("re-marshal of accepted frame failed: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("round trip mismatch:\n in  %x\n out %x", data, out)
		}
	})
}

func FuzzUnmarshalQuery(f *testing.F) {
	f.Add(Query{Dest: 1, Command: CmdReadSensor, Param: byte(SensorTemperature)}.Marshal())
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, data []byte) {
		q, err := UnmarshalQuery(data)
		if err != nil {
			return
		}
		if !bytes.Equal(q.Marshal(), data) {
			t.Fatalf("round trip mismatch for %x", data)
		}
	})
}
