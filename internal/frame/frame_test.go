package frame

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestChecksumKnownVector(t *testing.T) {
	// CRC-16/CCITT-FALSE("123456789") = 0x29B1.
	if got := Checksum([]byte("123456789")); got != 0x29B1 {
		t.Errorf("checksum = %04x, want 29b1", got)
	}
	// Empty input yields the init value.
	if got := Checksum(nil); got != 0xFFFF {
		t.Errorf("checksum(nil) = %04x, want ffff", got)
	}
}

func TestChecksumDetectsSingleBitFlips(t *testing.T) {
	f := func(data []byte, pos uint16) bool {
		if len(data) == 0 {
			return true
		}
		orig := Checksum(data)
		mut := make([]byte, len(data))
		copy(mut, data)
		byteIdx := int(pos) % len(data)
		bitIdx := uint(pos) % 8
		mut[byteIdx] ^= 1 << bitIdx
		return Checksum(mut) != orig
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQueryRoundTrip(t *testing.T) {
	f := func(dest, param byte, cmdRaw byte) bool {
		q := Query{Dest: dest, Command: Command(cmdRaw), Param: param}
		got, err := UnmarshalQuery(q.Marshal())
		return err == nil && got == q
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQueryRejectsCorruption(t *testing.T) {
	q := Query{Dest: 0x12, Command: CmdReadSensor, Param: byte(SensorPH)}
	data := q.Marshal()
	for i := range data {
		mut := make([]byte, len(data))
		copy(mut, data)
		mut[i] ^= 0x40
		if _, err := UnmarshalQuery(mut); err == nil {
			t.Errorf("corruption at byte %d not detected", i)
		}
	}
	if _, err := UnmarshalQuery(data[:3]); err == nil {
		t.Error("truncated query should error")
	}
}

func TestDataFrameRoundTrip(t *testing.T) {
	f := func(src, seq byte, payload []byte) bool {
		if len(payload) > MaxPayload {
			payload = payload[:MaxPayload]
		}
		d := DataFrame{Source: src, Seq: seq, Payload: payload}
		raw, err := d.Marshal()
		if err != nil {
			return false
		}
		got, err := UnmarshalDataFrame(raw)
		if err != nil {
			return false
		}
		return got.Source == src && got.Seq == seq && bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDataFrameEmptyPayload(t *testing.T) {
	d := DataFrame{Source: 1, Seq: 2}
	raw, err := d.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalDataFrame(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Payload) != 0 {
		t.Errorf("payload should be empty, got %v", got.Payload)
	}
}

func TestDataFramePayloadTooLarge(t *testing.T) {
	d := DataFrame{Source: 1, Payload: make([]byte, MaxPayload+1)}
	if _, err := d.Marshal(); err == nil {
		t.Error("oversized payload should error")
	}
}

func TestDataFrameRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	payload := make([]byte, 16)
	rng.Read(payload)
	d := DataFrame{Source: 7, Seq: 3, Payload: payload}
	raw, _ := d.Marshal()
	detected := 0
	for i := range raw {
		mut := make([]byte, len(raw))
		copy(mut, raw)
		mut[i] ^= 0x01
		if _, err := UnmarshalDataFrame(mut); err != nil {
			detected++
		}
	}
	if detected != len(raw) {
		t.Errorf("only %d/%d corruptions detected", detected, len(raw))
	}
}

func TestDataFrameInconsistentLength(t *testing.T) {
	if _, err := UnmarshalDataFrame([]byte{1, 2}); err == nil {
		t.Error("too-short frame should error")
	}
	// Declared payload larger than the buffer.
	bad := []byte{1, 2, 10, 0, 0}
	if _, err := UnmarshalDataFrame(bad); err == nil {
		t.Error("inconsistent declared length should error")
	}
	// Declared payload over MaxPayload.
	huge := make([]byte, 3+200+2)
	huge[2] = 200
	if _, err := UnmarshalDataFrame(huge); err == nil {
		t.Error("over-max declared length should error")
	}
}

func TestUnmarshalDataFrameCopiesPayload(t *testing.T) {
	d := DataFrame{Source: 1, Seq: 1, Payload: []byte{1, 2, 3}}
	raw, _ := d.Marshal()
	got, err := UnmarshalDataFrame(raw)
	if err != nil {
		t.Fatal(err)
	}
	raw[3] = 99
	if got.Payload[0] == 99 {
		t.Error("payload must be copied, not aliased")
	}
}

func TestBitsRoundTrip(t *testing.T) {
	q := Query{Dest: 5, Command: CmdPing}
	bits := Bits(q.Marshal())
	if len(bits) != QueryBitLength {
		t.Errorf("query bits %d, want %d", len(bits), QueryBitLength)
	}
	raw, err := FromBits(bits)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalQuery(raw)
	if err != nil || got != q {
		t.Errorf("bit round trip: %+v, %v", got, err)
	}
}

func TestDataFrameBitLength(t *testing.T) {
	d := DataFrame{Source: 1, Payload: make([]byte, 12)}
	raw, _ := d.Marshal()
	if got := DataFrameBitLength(12); got != len(raw)*8 {
		t.Errorf("bit length %d, want %d", got, len(raw)*8)
	}
}

func TestStringers(t *testing.T) {
	if CmdPing.String() != "ping" || CmdSetBitrate.String() != "set-bitrate" ||
		CmdSwitchResonance.String() != "switch-resonance" || CmdReadSensor.String() != "read-sensor" {
		t.Error("command names wrong")
	}
	if Command(0x99).String() != "command(0x99)" {
		t.Error("unknown command format wrong")
	}
	if SensorPH.String() != "pH" || SensorTemperature.String() != "temperature" ||
		SensorPressure.String() != "pressure" {
		t.Error("sensor names wrong")
	}
	if SensorID(9).String() != "sensor(9)" {
		t.Error("unknown sensor format wrong")
	}
}
