package phy

import "fmt"

// Gold-code support rounds out the CDMA comparison: Walsh codes need
// chip-synchronous users (impossible for uncoordinated backscatter
// nodes), while Gold codes bound the cross-correlation at *any* relative
// shift — the classic asynchronous-CDMA family. Their bounded-but-
// nonzero cross-correlation is the residual interference that, together
// with footnote 4's bandwidth argument, is why the paper chose FDMA.

// lfsr generates a maximal-length sequence (m-sequence) of length
// 2^n − 1 from the given primitive feedback taps (bit positions, LSB =
// stage 1).
func lfsr(n int, taps []int) []float64 {
	length := 1<<uint(n) - 1
	state := 1 // any nonzero seed
	out := make([]float64, length)
	for i := 0; i < length; i++ {
		bit := state & 1
		if bit == 1 {
			out[i] = 1
		} else {
			out[i] = -1
		}
		fb := 0
		for _, tp := range taps {
			fb ^= (state >> uint(tp-1)) & 1
		}
		state = (state >> 1) | (fb << uint(n-1))
	}
	return out
}

// preferredPairs lists primitive polynomial tap sets whose m-sequences
// form preferred pairs (bounded three-valued cross-correlation) for the
// supported register lengths.
// (Tap positions follow this file's Fibonacci-LFSR convention; the
// pairs were verified empirically to achieve the Gold bound t(n).)
var preferredPairs = map[int][2][]int{
	5: {{5, 4, 2, 1}, {5, 4, 3, 1}},
	7: {{7, 1}, {7, 6, 3, 1}},
}

// GoldCodes returns 2^n + 1 Gold codes of length 2^n − 1 for n ∈ {5, 7}.
// Each code is a ±1 chip sequence.
func GoldCodes(n int) ([][]float64, error) {
	pair, ok := preferredPairs[n]
	if !ok {
		return nil, fmt.Errorf("phy: gold codes supported for n ∈ {5, 7}, got %d", n)
	}
	u := lfsr(n, pair[0])
	v := lfsr(n, pair[1])
	length := len(u)
	codes := make([][]float64, 0, length+2)
	codes = append(codes, u, v)
	// One flat backing array for all shifted products: a per-shift make
	// is `length` allocations for one code family.
	backing := make([]float64, length*length)
	for shift := 0; shift < length; shift++ {
		c := backing[shift*length : (shift+1)*length : (shift+1)*length]
		for i := range c {
			c[i] = u[i] * v[(i+shift)%length]
		}
		codes = append(codes, c)
	}
	return codes, nil
}

// CrossCorrelationBound returns the theoretical maximum absolute
// periodic cross-correlation of a Gold family of register length n:
// t(n) = 2^⌊(n+2)/2⌋ + 1.
func CrossCorrelationBound(n int) int {
	return 1<<uint((n+2)/2) + 1
}

// PeriodicCrossCorrelation returns the maximum |correlation| between two
// ±1 sequences over all cyclic shifts.
func PeriodicCrossCorrelation(a, b []float64) (int, error) {
	if len(a) != len(b) || len(a) == 0 {
		return 0, fmt.Errorf("phy: sequences must be equal nonzero length")
	}
	n := len(a)
	maxAbs := 0
	for shift := 0; shift < n; shift++ {
		sum := 0
		for i := 0; i < n; i++ {
			if a[i]*b[(i+shift)%n] > 0 {
				sum++
			} else {
				sum--
			}
		}
		if sum < 0 {
			sum = -sum
		}
		if sum > maxAbs {
			maxAbs = sum
		}
	}
	return maxAbs, nil
}
