package phy

import (
	"fmt"
	"math"

	"pab/internal/telemetry"
)

// CDMA support exists to evaluate the paper's footnote 4: "CDMA requires
// the same overall bandwidth as standard FDMA since it uses a spreading
// code at a higher rate than the transmitted signals". Walsh–Hadamard
// codes give synchronous orthogonality; spreading multiplies the chip
// rate (and hence occupied bandwidth) by the code length, so K users at
// bitrate R need K·R of chip rate — exactly the K channels of FDMA.

// WalshCodes returns the 2^k orthogonal Walsh–Hadamard codes of length
// 2^k as ±1 chip sequences.
func WalshCodes(order int) ([][]float64, error) {
	if order < 0 || order > 16 {
		return nil, fmt.Errorf("phy: walsh order %d out of range [0, 16]", order)
	}
	n := 1 << uint(order)
	h := make([][]float64, n)
	// One flat backing array for the whole matrix: a per-row make is n
	// allocations and scatters rows across the heap.
	backing := make([]float64, n*n)
	for i := range h {
		h[i] = backing[i*n : (i+1)*n : (i+1)*n]
	}
	h[0][0] = 1
	for size := 1; size < n; size <<= 1 {
		for r := 0; r < size; r++ {
			for c := 0; c < size; c++ {
				v := h[r][c]
				h[r][c+size] = v
				h[r+size][c] = v
				h[r+size][c+size] = -v
			}
		}
	}
	return h, nil
}

// Spread maps bits to a ±1 chip stream: each bit is multiplied over the
// user's code (DSSS).
func Spread(bits []Bit, code []float64) ([]float64, error) {
	if len(code) == 0 {
		return nil, fmt.Errorf("phy: empty spreading code")
	}
	out := make([]float64, 0, len(bits)*len(code))
	for _, b := range bits {
		s := 1.0
		if b == 0 {
			s = -1
		}
		for _, c := range code {
			out = append(out, s*c)
		}
	}
	return out, nil
}

// Despread correlates a chip stream against the user's code and slices
// the per-bit correlations. Synchronous orthogonal users cancel exactly.
func Despread(chips []float64, code []float64, nbits int) ([]Bit, error) {
	if len(code) == 0 {
		return nil, fmt.Errorf("phy: empty spreading code")
	}
	if max := len(chips) / len(code); nbits > max {
		nbits = max
	}
	if nbits <= 0 {
		return nil, fmt.Errorf("phy: chip stream shorter than one bit")
	}
	telemetry.Inc(telemetry.MPhyCdmaDespreadsTotal)
	telemetry.Add(telemetry.MPhyCdmaBitsTotal, int64(nbits))
	bits := make([]Bit, nbits)
	for i := 0; i < nbits; i++ {
		var corr float64
		for j, c := range code {
			corr += chips[i*len(code)+j] * c
		}
		if corr >= 0 {
			bits[i] = 1
		}
	}
	return bits, nil
}

// CDMAOccupiedBandwidth returns the occupied bandwidth of a DSSS user at
// the given bitrate and spreading factor: the chip rate is
// bitrate × factor and the null-to-null bandwidth scales with it, just
// as OccupiedBandwidth does for the unspread FM0 signal.
func CDMAOccupiedBandwidth(bitrate float64, spreadingFactor int) float64 {
	return OccupiedBandwidth(bitrate * float64(spreadingFactor))
}

// MultipleAccessBandwidth compares the total spectrum needed by K
// concurrent users at equal bitrate under the two schemes the paper
// discusses (§3.3.1 footnote 4). FDMA needs K channels of the per-user
// bandwidth; CDMA needs one channel whose spreading factor is ≥ K for
// orthogonality — the same total. It returns (fdmaHz, cdmaHz).
func MultipleAccessBandwidth(users int, bitrate float64) (float64, float64, error) {
	if users < 1 || bitrate <= 0 {
		return 0, 0, fmt.Errorf("phy: need ≥1 user and positive bitrate")
	}
	fdma := float64(users) * OccupiedBandwidth(bitrate)
	// Smallest power-of-two code family with ≥ users codes.
	factor := 1
	for factor < users {
		factor <<= 1
	}
	cdma := CDMAOccupiedBandwidth(bitrate, factor)
	return fdma, cdma, nil
}

// DespreadSoft returns the per-bit correlation values (for SNR analysis
// of asynchronous interference).
func DespreadSoft(chips []float64, code []float64, nbits int) ([]float64, error) {
	if len(code) == 0 {
		return nil, fmt.Errorf("phy: empty spreading code")
	}
	if max := len(chips) / len(code); nbits > max {
		nbits = max
	}
	if nbits <= 0 {
		return nil, fmt.Errorf("phy: chip stream shorter than one bit")
	}
	telemetry.Inc(telemetry.MPhyCdmaDespreadsTotal)
	telemetry.Add(telemetry.MPhyCdmaBitsTotal, int64(nbits))
	out := make([]float64, nbits)
	norm := 1 / math.Sqrt(float64(len(code)))
	for i := 0; i < nbits; i++ {
		var corr float64
		for j, c := range code {
			corr += chips[i*len(code)+j] * c
		}
		out[i] = corr * norm
	}
	return out, nil
}
