package phy

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randBits(rng *rand.Rand, n int) []Bit {
	bits := make([]Bit, n)
	for i := range bits {
		bits[i] = Bit(rng.Intn(2))
	}
	return bits
}

func TestBitsBytesRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		bits := BytesToBits(data)
		back, err := BitsToBytes(bits)
		if err != nil {
			return false
		}
		if len(back) != len(data) {
			return false
		}
		for i := range data {
			if back[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBitsToBytesErrors(t *testing.T) {
	if _, err := BitsToBytes(make([]Bit, 7)); err == nil {
		t.Error("non-multiple-of-8 should error")
	}
	if _, err := BitsToBytes([]Bit{2, 0, 0, 0, 0, 0, 0, 0}); err == nil {
		t.Error("non-binary value should error")
	}
}

func TestBytesToBitsKnown(t *testing.T) {
	bits := BytesToBits([]byte{0xA5})
	want := []Bit{1, 0, 1, 0, 0, 1, 0, 1}
	for i := range want {
		if bits[i] != want[i] {
			t.Fatalf("bit %d = %d, want %d", i, bits[i], want[i])
		}
	}
}

func TestCountBitErrors(t *testing.T) {
	if e := CountBitErrors([]Bit{1, 0, 1}, []Bit{1, 1, 1}); e != 1 {
		t.Errorf("errors = %d, want 1", e)
	}
	if e := CountBitErrors([]Bit{1, 0, 1, 0}, []Bit{1, 0}); e != 2 {
		t.Errorf("length mismatch errors = %d, want 2", e)
	}
	if b := BER([]Bit{1, 0, 1, 0}, []Bit{1, 0, 1, 0}); b != 0 {
		t.Errorf("perfect BER = %g", b)
	}
	if b := BER(nil, nil); b != 0 {
		t.Errorf("empty BER = %g", b)
	}
}

func TestFM0Validation(t *testing.T) {
	if _, err := NewFM0(1); err == nil {
		t.Error("1 sample/bit should error")
	}
	if _, err := NewFM0(5); err == nil {
		t.Error("odd samples/bit should error")
	}
	if _, err := NewFM0(8); err != nil {
		t.Errorf("8 samples/bit should be fine: %v", err)
	}
}

func TestFM0EncodeInvariants(t *testing.T) {
	m, _ := NewFM0(8)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bits := randBits(rng, 1+rng.Intn(64))
		wave, final := m.Encode(bits, 1)
		if len(wave) != len(bits)*8 {
			return false
		}
		// Invariant: the level always inverts at each bit boundary.
		prevEnd := 1.0
		for i := range bits {
			segStart := wave[i*8]
			if segStart != -prevEnd {
				return false
			}
			prevEnd = wave[i*8+7]
		}
		// Invariant: data-0 has a mid-bit transition, data-1 does not.
		for i, b := range bits {
			first := wave[i*8+3]
			second := wave[i*8+4]
			if b == 0 && first == second {
				return false
			}
			if b == 1 && first != second {
				return false
			}
		}
		return final == prevEnd
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFM0RoundTripClean(t *testing.T) {
	m, _ := NewFM0(10)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		bits := randBits(rng, 40)
		for _, start := range []float64{1, -1} {
			wave, _ := m.Encode(bits, start)
			got, conf := m.DecodeFrom(wave, len(bits), start)
			if CountBitErrors(bits, got) != 0 {
				t.Fatalf("trial %d start %g: round trip failed", trial, start)
			}
			if conf <= 0 {
				t.Fatalf("confidence %g should be positive on clean input", conf)
			}
		}
	}
}

func TestFM0RoundTripPropertyBased(t *testing.T) {
	m, _ := NewFM0(6)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// ≥2 bits: a lone '1' is a constant waveform with no level
		// reference (see DecodeFrom docs).
		bits := randBits(rng, 2+rng.Intn(100))
		wave, _ := m.Encode(bits, 1)
		got, _ := m.DecodeFrom(wave, len(bits), 1)
		return CountBitErrors(bits, got) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFM0SingleOneBitIsAmbiguous(t *testing.T) {
	// Documented degenerate case: a lone '1' encodes to a constant
	// waveform; the amplitude-invariant decoder cannot tell which level
	// it sits at. The decode must still return exactly one bit.
	m, _ := NewFM0(6)
	wave, _ := m.Encode([]Bit{1}, 1)
	got, _ := m.DecodeFrom(wave, 1, 1)
	if len(got) != 1 {
		t.Fatalf("got %d bits, want 1", len(got))
	}
}

func TestFM0DecodeComplementAmbiguity(t *testing.T) {
	// Without a polarity reference, Decode returns either the bits or
	// their complement — never a mixture.
	m, _ := NewFM0(8)
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 20; trial++ {
		bits := randBits(rng, 30)
		wave, _ := m.Encode(bits, -1)
		got, _ := m.Decode(wave, len(bits))
		errs := CountBitErrors(bits, got)
		if errs != 0 && errs != len(bits) {
			t.Fatalf("trial %d: %d errors; expected exact bits or exact complement", trial, errs)
		}
	}
}

func TestFM0DecodeWithOffsetAndScale(t *testing.T) {
	// Receiver sees arbitrary amplitude levels, e.g. 0.8 (reflective)
	// and 0.55 (absorptive), not ±1.
	m, _ := NewFM0(12)
	rng := rand.New(rand.NewSource(9))
	bits := randBits(rng, 60)
	wave, _ := m.Encode(bits, 1)
	for i, v := range wave {
		wave[i] = 0.675 + v*0.125 // maps ±1 → {0.8, 0.55}
	}
	got, _ := m.DecodeFrom(wave, len(bits), 1)
	if CountBitErrors(bits, got) != 0 {
		t.Error("decode should be amplitude-invariant")
	}
}

func TestFM0DecodeNoisy(t *testing.T) {
	m, _ := NewFM0(16)
	rng := rand.New(rand.NewSource(11))
	bits := randBits(rng, 100)
	wave, _ := m.Encode(bits, 1)
	// Strong noise (σ = 0.5 on ±1 levels ⇒ per-sample SNR 6 dB; with 8
	// samples per half-bit the ML decoder should still be clean).
	for i := range wave {
		wave[i] += rng.NormFloat64() * 0.5
	}
	got, _ := m.DecodeFrom(wave, len(bits), 1)
	if e := CountBitErrors(bits, got); e > 1 {
		t.Errorf("noisy decode: %d errors", e)
	}
}

func TestMLBeatsThresholdSlicer(t *testing.T) {
	// The ablation claim: at moderate noise the ML decoder makes fewer
	// errors than the naive slicer.
	m, _ := NewFM0(8)
	rng := rand.New(rand.NewSource(13))
	mlErrs, thErrs := 0, 0
	for trial := 0; trial < 60; trial++ {
		bits := randBits(rng, 80)
		wave, _ := m.Encode(bits, 1)
		for i := range wave {
			wave[i] += rng.NormFloat64() * 0.9
		}
		ml, _ := m.DecodeFrom(wave, len(bits), 1)
		th := m.ThresholdDecode(wave, len(bits))
		mlErrs += CountBitErrors(bits, ml)
		thErrs += CountBitErrors(bits, th)
	}
	if mlErrs >= thErrs {
		t.Errorf("ML decoder (%d errors) should beat threshold slicer (%d)", mlErrs, thErrs)
	}
}

func TestFM0DecodeTruncated(t *testing.T) {
	m, _ := NewFM0(8)
	bits := []Bit{1, 0, 1}
	wave, _ := m.Encode(bits, 1)
	got, _ := m.Decode(wave, 10) // ask for more bits than present
	if len(got) != 3 {
		t.Errorf("decode should clamp to available bits, got %d", len(got))
	}
	if out, _ := m.Decode(wave[:4], 1); out != nil {
		t.Error("waveform shorter than a bit should decode to nil")
	}
}

func TestSamplesPerBitFor(t *testing.T) {
	spb, err := SamplesPerBitFor(96000, 1000)
	if err != nil || spb != 96 {
		t.Errorf("spb = %d, %v; want 96", spb, err)
	}
	spb, err = SamplesPerBitFor(96000, 2800)
	if err != nil || spb%2 != 0 {
		t.Errorf("spb = %d should be even", spb)
	}
	if _, err := SamplesPerBitFor(0, 100); err == nil {
		t.Error("zero fs should error")
	}
	if _, err := SamplesPerBitFor(96000, 1e6); err == nil {
		t.Error("bitrate far above fs should error")
	}
}

func TestOccupiedBandwidth(t *testing.T) {
	if OccupiedBandwidth(1000) != 2000 {
		t.Error("FM0 bandwidth should be 2× bitrate")
	}
}

func TestPWMRoundTrip(t *testing.T) {
	p, _ := NewPWM(10)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bits := randBits(rng, 1+rng.Intn(40))
		env := p.Encode(bits)
		levels := make([]bool, len(env))
		for i, v := range env {
			levels[i] = v > 0.5
		}
		got := p.Decode(levels)
		return CountBitErrors(bits, got) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPWMEncodedLength(t *testing.T) {
	p, _ := NewPWM(10)
	bits := []Bit{0, 1, 0}
	if n := p.EncodedLength(bits); n != len(p.Encode(bits)) {
		t.Errorf("EncodedLength %d != actual %d", n, len(p.Encode(bits)))
	}
	if p.SymbolSamples(0) != 20 || p.SymbolSamples(1) != 30 {
		t.Error("symbol sample counts wrong")
	}
}

func TestPWMTimingJitterTolerance(t *testing.T) {
	// Decode survives ±20% envelope timing jitter (resampling effects).
	p, _ := NewPWM(20)
	rng := rand.New(rand.NewSource(3))
	bits := randBits(rng, 20)
	env := p.Encode(bits)
	levels := make([]bool, 0, len(env))
	for i := 0; i < len(env); i++ {
		levels = append(levels, env[i] > 0.5)
		// Occasionally duplicate or drop samples.
		switch rng.Intn(10) {
		case 0:
			levels = append(levels, env[i] > 0.5)
		case 1:
			i++
		}
	}
	got := p.Decode(levels)
	if e := CountBitErrors(bits, got); e > 1 {
		t.Errorf("jittered decode: %d errors (got %d bits, want %d)", e, len(got), len(bits))
	}
}

func TestPWMValidation(t *testing.T) {
	if _, err := NewPWM(1); err == nil {
		t.Error("1 sample/unit should error")
	}
}

func TestSchmittTriggerHysteresis(t *testing.T) {
	// Small dips below the high threshold must not toggle the output.
	env := []float64{0, 0.9, 0.75, 0.9, 0.28, 0.05, 0.5, 0.9}
	lv := SchmittTrigger(env, 0.7, 0.3)
	// peak 0.9 ⇒ high threshold 0.63, low threshold 0.27. The dip to
	// 0.28 stays above the low threshold (hysteresis holds the state);
	// 0.05 releases it; 0.5 is below the high threshold so it stays low.
	want := []bool{false, true, true, true, true, false, false, true}
	for i := range want {
		if lv[i] != want[i] {
			t.Errorf("schmitt[%d] = %v, want %v", i, lv[i], want[i])
		}
	}
	if SchmittTrigger(nil, 0.7, 0.3) != nil {
		t.Error("empty input should give nil")
	}
}

func TestDetectPacket(t *testing.T) {
	m, _ := NewFM0(12)
	rng := rand.New(rand.NewSource(21))
	payload := randBits(rng, 30)
	frame := append(append([]Bit{}, PreambleBits...), payload...)
	wave, _ := m.Encode(frame, 1)
	// Prepend noise-only lead-in and add noise throughout.
	lead := 500
	rx := make([]float64, lead+len(wave)+200)
	for i := range rx {
		rx[i] = rng.NormFloat64() * 0.2
	}
	for i, v := range wave {
		rx[lead+i] += v
	}
	sync, err := DetectPacket(rx, m, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if sync.Index != lead {
		t.Errorf("preamble at %d, want %d", sync.Index, lead)
	}
	if sync.Score < 0.8 {
		t.Errorf("score %g low", sync.Score)
	}
	if sync.StartLevel != 1 {
		t.Errorf("start level %g, want +1", sync.StartLevel)
	}
	// Decode payload after the preamble using the tracked level.
	got, _ := m.DecodeFrom(rx[sync.PayloadIndex:], len(payload), sync.PayloadLevel)
	if e := CountBitErrors(payload, got); e != 0 {
		t.Errorf("payload decode: %d errors", e)
	}
}

func TestDetectPacketInverted(t *testing.T) {
	// The FM0 start level is unknown; an inverted preamble must still be
	// found.
	m, _ := NewFM0(12)
	frame := append(append([]Bit{}, PreambleBits...), 1, 0, 1, 1)
	wave, _ := m.Encode(frame, -1)
	rx := make([]float64, 300+len(wave))
	copy(rx[300:], wave)
	sync, err := DetectPacket(rx, m, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if sync.Index != 300 {
		t.Errorf("inverted preamble at %d, want 300", sync.Index)
	}
	if sync.StartLevel != -1 {
		t.Errorf("start level %g, want −1", sync.StartLevel)
	}
	// And the payload decodes with the tracked level.
	got, _ := m.DecodeFrom(rx[sync.PayloadIndex:], 4, sync.PayloadLevel)
	if CountBitErrors([]Bit{1, 0, 1, 1}, got) != 0 {
		t.Error("inverted-polarity payload decode failed")
	}
}

func TestDetectPacketAbsent(t *testing.T) {
	m, _ := NewFM0(12)
	rng := rand.New(rand.NewSource(7))
	rx := make([]float64, 2000)
	for i := range rx {
		rx[i] = rng.NormFloat64()
	}
	if _, err := DetectPacket(rx, m, 0.85); err == nil {
		t.Error("pure noise should not contain a preamble at 0.85 threshold")
	}
	if _, err := DetectPacket(rx[:10], m, 0.5); err == nil {
		t.Error("too-short waveform should error")
	}
}

func TestEstimateAndCorrectCFO(t *testing.T) {
	fs := 96000.0
	cfo := 35.0 // Hz offset between projector and hydrophone oscillators
	n := 9600
	bb := make([]complex128, n)
	for i := range bb {
		ph := 2 * math.Pi * cfo * float64(i) / fs
		bb[i] = complex(math.Cos(ph), math.Sin(ph))
	}
	est := EstimateCFO(bb, fs)
	if math.Abs(est-cfo) > 0.5 {
		t.Fatalf("CFO estimate %g, want %g", est, cfo)
	}
	fixed := CorrectCFO(bb, est, fs)
	if resid := EstimateCFO(fixed, fs); math.Abs(resid) > 0.5 {
		t.Errorf("residual CFO %g after correction", resid)
	}
	if EstimateCFO(nil, fs) != 0 {
		t.Error("empty CFO estimate should be 0")
	}
}

func TestEstimateCFOWithAmplitudeModulation(t *testing.T) {
	// Backscatter amplitude-modulates the envelope; the lag-1 estimator
	// must remain accurate.
	fs := 96000.0
	cfo := -20.0
	n := 9600
	bb := make([]complex128, n)
	for i := range bb {
		amp := 1.0
		if (i/480)%2 == 0 {
			amp = 0.6
		}
		ph := 2 * math.Pi * cfo * float64(i) / fs
		bb[i] = complex(amp*math.Cos(ph), amp*math.Sin(ph))
	}
	if est := EstimateCFO(bb, fs); math.Abs(est-cfo) > 1 {
		t.Errorf("CFO estimate %g under AM, want %g", est, cfo)
	}
}

func TestMeasureSNR(t *testing.T) {
	m, _ := NewFM0(16)
	rng := rand.New(rand.NewSource(31))
	bits := randBits(rng, 80)
	wave, _ := m.Encode(bits, 1)
	// Scale to modulation amplitude 0.2 around offset 1.0, add noise σ.
	sigma := 0.05
	for i := range wave {
		wave[i] = 1.0 + 0.2*wave[i] + rng.NormFloat64()*sigma
	}
	snr := MeasureSNR(wave, bits, m)
	// Decision-level SNR: each half-bit decision averages the central
	// 4 of 8 samples, so the noise power per decision is σ²/4.
	want := 0.2 * 0.2 / (sigma * sigma / 4)
	if snr < want/2 || snr > want*2 {
		t.Errorf("SNR %g, want ~%g", snr, want)
	}
	if MeasureSNR(wave, nil, m) != 0 {
		t.Error("no bits should give zero SNR")
	}
	if MeasureSNR(wave[:10], bits, m) != 0 {
		t.Error("short wave should give zero SNR")
	}
}
