// Package phy implements PAB's physical layer: FM0 uplink modulation with
// maximum-likelihood decoding (paper §3.2, §5.1b), PWM downlink modulation
// with envelope/edge detection (§4.2.1), preamble synchronisation, carrier
// frequency offset estimation, and BER accounting.
package phy

import "fmt"

// Bit is a single binary symbol (0 or 1).
type Bit = byte

// BytesToBits expands bytes into bits, most significant bit first.
func BytesToBits(data []byte) []Bit {
	bits := make([]Bit, 0, len(data)*8)
	for _, b := range data {
		for i := 7; i >= 0; i-- {
			bits = append(bits, (b>>uint(i))&1)
		}
	}
	return bits
}

// BitsToBytes packs bits (MSB first) into bytes. The bit count must be a
// multiple of 8.
func BitsToBytes(bits []Bit) ([]byte, error) {
	if len(bits)%8 != 0 {
		return nil, fmt.Errorf("phy: bit count %d not a multiple of 8", len(bits))
	}
	out := make([]byte, len(bits)/8)
	for i, b := range bits {
		if b > 1 {
			return nil, fmt.Errorf("phy: bit %d has non-binary value %d", i, b)
		}
		out[i/8] = out[i/8]<<1 | b
	}
	return out, nil
}

// CountBitErrors returns the number of differing positions over the
// common prefix plus the length difference.
func CountBitErrors(a, b []Bit) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	errs := 0
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			errs++
		}
	}
	errs += len(a) - n + len(b) - n
	return errs
}

// BER returns the bit error rate of got against want. A fully missing
// decode counts as all-errors. The divisor is the expected bit count.
func BER(want, got []Bit) float64 {
	if len(want) == 0 {
		return 0
	}
	return float64(CountBitErrors(want, got)) / float64(len(want))
}
