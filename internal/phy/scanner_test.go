package phy

import (
	"math/rand"
	"testing"
)

// scannerWave embeds the preamble template at the given offsets in a
// lightly-noisy floor (noise keeps the correlator's variance
// normalisation away from 0/0 without creating spurious peaks).
func scannerWave(m *FM0, n int, offsets ...int) []float64 {
	rng := rand.New(rand.NewSource(7))
	wave := make([]float64, n)
	for i := range wave {
		wave[i] = 0.01 * rng.NormFloat64()
	}
	tmpl := m.EncodeTemplate(PreambleBits)
	for _, off := range offsets {
		for i, v := range tmpl {
			wave[off+i] += v
		}
	}
	return wave
}

func scanAll(s *SyncScanner, wave []float64, block int) []int64 {
	var idx []int64
	for off := 0; off < len(wave); off += block {
		end := off + block
		if end > len(wave) {
			end = len(wave)
		}
		for _, h := range s.Scan(wave[off:end]) {
			idx = append(idx, h.Index)
		}
	}
	return idx
}

func TestSyncScannerFindsTornPreamble(t *testing.T) {
	m, err := NewFM0(16)
	if err != nil {
		t.Fatal(err)
	}
	const offset = 1000
	wave := scannerWave(m, 4000, offset)
	// Block sizes chosen so the preamble (9×16 = 144 samples) lands
	// whole, torn once, and torn many times across block boundaries.
	for _, block := range []int{1, 7, 64, 100, 144, 1000, len(wave)} {
		s := NewSyncScanner(m, 0.8)
		idx := scanAll(s, wave, block)
		found := false
		for _, i := range idx {
			if i == offset {
				found = true
			}
		}
		if !found {
			t.Fatalf("block %d: preamble at %d not found (hits %v)", block, offset, idx)
		}
	}
}

func TestSyncScannerChunkingInvariant(t *testing.T) {
	m, err := NewFM0(16)
	if err != nil {
		t.Fatal(err)
	}
	wave := scannerWave(m, 6000, 500, 3000, 5500)
	whole := NewSyncScanner(m, 0.8)
	want := scanAll(whole, wave, len(wave))
	for _, block := range []int{1, 13, 144, 333, 2048} {
		s := NewSyncScanner(m, 0.8)
		got := scanAll(s, wave, block)
		if len(got) != len(want) {
			t.Fatalf("block %d: %d hits, whole-buffer scan saw %d (%v vs %v)", block, len(got), len(want), got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("block %d: hit %d at %d, whole-buffer scan at %d", block, i, got[i], want[i])
			}
		}
	}
}

func TestSyncScannerAgreesWithBatchDetector(t *testing.T) {
	m, err := NewFM0(16)
	if err != nil {
		t.Fatal(err)
	}
	const offset = 777
	wave := scannerWave(m, 3000, offset)
	sync, err := DetectPacket(wave, m, 0.8)
	if err != nil {
		t.Fatalf("batch detector: %v", err)
	}
	s := NewSyncScanner(m, 0.8)
	idx := scanAll(s, wave, 64)
	found := false
	for _, i := range idx {
		if int(i) == sync.Index {
			found = true
		}
	}
	if !found {
		t.Fatalf("scanner hits %v do not include the batch lock %d", idx, sync.Index)
	}
}

func TestSyncScannerShortAndEmptyBlocks(t *testing.T) {
	m, err := NewFM0(16)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSyncScanner(m, 0.8)
	if hits := s.Scan(nil); len(hits) != 0 {
		t.Fatalf("empty block produced hits: %v", hits)
	}
	// Feed fewer samples than one template in total; nothing to score.
	for i := 0; i < 5; i++ {
		if hits := s.Scan(make([]float64, 10)); len(hits) != 0 {
			t.Fatalf("sub-template stream produced hits: %v", hits)
		}
	}
	if s.Offset() != 50 {
		t.Fatalf("offset = %d, want 50", s.Offset())
	}
}
