package phy

import (
	"fmt"

	"pab/internal/telemetry"
)

// Manchester is the alternative bi-phase line code the paper names next
// to FM0 (§3.2: "modulation schemes like FM0 or Manchester encoding,
// where the reflection state switches at every bit"). A '1' is encoded
// as high→low, a '0' as low→high; every bit carries a mid-bit
// transition, which gives self-clocking at the cost of FM0's
// boundary-transition redundancy.
type Manchester struct {
	// SamplesPerBit is the (even) number of samples per bit interval.
	SamplesPerBit int
}

// NewManchester validates the configuration.
func NewManchester(samplesPerBit int) (*Manchester, error) {
	if samplesPerBit < 2 {
		return nil, fmt.Errorf("phy: manchester needs ≥2 samples per bit, got %d", samplesPerBit)
	}
	if samplesPerBit%2 != 0 {
		return nil, fmt.Errorf("phy: manchester samples per bit must be even, got %d", samplesPerBit)
	}
	return &Manchester{SamplesPerBit: samplesPerBit}, nil
}

// Encode returns the ±1 level waveform for bits.
func (m *Manchester) Encode(bits []Bit) []float64 {
	half := m.SamplesPerBit / 2
	wave := make([]float64, 0, len(bits)*m.SamplesPerBit)
	for _, b := range bits {
		first, second := 1.0, -1.0
		if b == 0 {
			first, second = -1.0, 1.0
		}
		for i := 0; i < half; i++ {
			wave = append(wave, first)
		}
		for i := 0; i < half; i++ {
			wave = append(wave, second)
		}
	}
	return wave
}

// Decode recovers bits by comparing the two half-bit means — the mid-bit
// transition direction is the bit. Unlike FM0 there is no level memory,
// so no polarity reference is needed beyond the global sign convention.
func (m *Manchester) Decode(wave []float64, nbits int) []Bit {
	if nbits <= 0 || len(wave) < m.SamplesPerBit {
		return nil
	}
	if max := len(wave) / m.SamplesPerBit; nbits > max {
		nbits = max
	}
	telemetry.Inc(telemetry.MPhyManchesterDecodesTotal)
	telemetry.Add(telemetry.MPhyManchesterBitsTotal, int64(nbits))
	half := m.SamplesPerBit / 2
	bits := make([]Bit, nbits)
	for i := 0; i < nbits; i++ {
		seg := wave[i*m.SamplesPerBit : (i+1)*m.SamplesPerBit]
		m1 := meanOf(seg[:half])
		m2 := meanOf(seg[half:])
		if m1 >= m2 {
			bits[i] = 1
		}
	}
	return bits
}

// Bitrate returns the data rate in bit/s at sample rate fs.
func (m *Manchester) Bitrate(fs float64) float64 {
	if m.SamplesPerBit <= 0 {
		return 0
	}
	return fs / float64(m.SamplesPerBit)
}
