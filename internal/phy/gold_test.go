package phy

import (
	"math"
	"testing"
)

func TestLFSRMaximalLength(t *testing.T) {
	// An m-sequence of register length n has period 2^n − 1 and is
	// balanced within one chip.
	for n, pair := range preferredPairs {
		for _, taps := range pair {
			seq := lfsr(n, taps)
			want := 1<<uint(n) - 1
			if len(seq) != want {
				t.Fatalf("n=%d: length %d, want %d", n, len(seq), want)
			}
			sum := 0.0
			for _, v := range seq {
				sum += v
			}
			if math.Abs(sum) != 1 {
				t.Errorf("n=%d taps %v: balance %g, want ±1", n, taps, sum)
			}
			// Shift-and-add/autocorrelation property: off-peak periodic
			// autocorrelation of an m-sequence is exactly −1.
			m, err := PeriodicCrossCorrelation(seq, seq)
			if err != nil {
				t.Fatal(err)
			}
			if m != want { // peak at zero shift
				t.Errorf("n=%d: autocorr peak %d, want %d", n, m, want)
			}
			for shift := 1; shift < len(seq); shift++ {
				sum := 0
				for i := range seq {
					if seq[i]*seq[(i+shift)%len(seq)] > 0 {
						sum++
					} else {
						sum--
					}
				}
				if sum != -1 {
					t.Fatalf("n=%d shift %d: autocorr %d, want −1", n, shift, sum)

				}
			}
		}
	}
}

func TestGoldFamilySizeAndBound(t *testing.T) {
	for _, n := range []int{5, 7} {
		codes, err := GoldCodes(n)
		if err != nil {
			t.Fatal(err)
		}
		wantCount := 1<<uint(n) + 1
		if len(codes) != wantCount {
			t.Fatalf("n=%d: %d codes, want %d", n, len(codes), wantCount)
		}
		bound := CrossCorrelationBound(n)
		// Spot-check pairs (full scan is O(F²·L²); sample it).
		pairs := [][2]int{{0, 1}, {0, 2}, {1, 5}, {2, 7}, {3, len(codes) - 1}}
		for _, pr := range pairs {
			m, err := PeriodicCrossCorrelation(codes[pr[0]], codes[pr[1]])
			if err != nil {
				t.Fatal(err)
			}
			if m > bound {
				t.Errorf("n=%d codes %v: cross-corr %d exceeds Gold bound %d", n, pr, m, bound)
			}
		}
	}
}

func TestGoldBeatsWalshAsynchronously(t *testing.T) {
	// The asynchronous-CDMA argument: Walsh codes lose orthogonality
	// completely under cyclic shift (cross-correlation can reach the
	// full sequence length), while Gold codes stay within t(n).
	walsh, _ := WalshCodes(5) // length 32
	worstWalsh := 0
	for i := 1; i < len(walsh); i++ {
		for j := i + 1; j < len(walsh); j++ {
			m, err := PeriodicCrossCorrelation(walsh[i], walsh[j])
			if err != nil {
				t.Fatal(err)
			}
			if m > worstWalsh {
				worstWalsh = m
			}
		}
	}
	gold, _ := GoldCodes(5) // length 31
	worstGold := 0
	for i := 0; i < len(gold); i++ {
		for j := i + 1; j < len(gold); j++ {
			m, err := PeriodicCrossCorrelation(gold[i], gold[j])
			if err != nil {
				t.Fatal(err)
			}
			if m > worstGold {
				worstGold = m
			}
		}
	}
	if worstGold >= worstWalsh {
		t.Errorf("gold worst-case shift correlation %d should beat walsh %d", worstGold, worstWalsh)
	}
	if worstGold > CrossCorrelationBound(5) {
		t.Errorf("gold correlation %d above bound %d", worstGold, CrossCorrelationBound(5))
	}
}

func TestGoldErrors(t *testing.T) {
	if _, err := GoldCodes(4); err == nil {
		t.Error("unsupported register length should error")
	}
	if _, err := PeriodicCrossCorrelation([]float64{1}, []float64{1, -1}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := PeriodicCrossCorrelation(nil, nil); err == nil {
		t.Error("empty sequences should error")
	}
}
