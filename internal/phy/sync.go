package phy

import (
	"fmt"
	"math"
	"math/cmplx"

	"pab/internal/dsp"
	"pab/internal/prof"
	"pab/internal/telemetry"
)

// PreambleBits is the 9-bit synchronisation pattern used on both links
// (the paper's downlink query "includes a 9-bit preamble", §5.1a; the
// uplink packet leads with the same length). The pattern maximises
// transition density under FM0 for sharp correlation.
var PreambleBits = []Bit{1, 0, 1, 1, 0, 0, 1, 0, 1}

// Sync describes a detected packet: where the preamble starts, how
// confident the correlator is, and the FM0 levels needed to decode what
// follows coherently.
type Sync struct {
	// Index is the sample index of the first preamble sample.
	Index int
	// Score is the normalised correlation magnitude (≤ 1).
	Score float64
	// StartLevel is the FM0 level preceding the preamble (±1).
	StartLevel float64
	// PayloadLevel is the FM0 level preceding the first payload bit —
	// pass it to FM0.DecodeFrom for the bits after the preamble.
	PayloadLevel float64
	// PayloadIndex is the sample index of the first payload sample.
	PayloadIndex int
}

// DetectPacket locates the start of an FM0 packet in a baseband
// amplitude waveform by normalised cross-correlation against the encoded
// preamble, resolving FM0's polarity ambiguity from the correlation sign.
// It returns an error when no point exceeds the threshold. The waveform
// need not be mean-centred; DetectPacket removes the mean itself.
func DetectPacket(wave []float64, m *FM0, threshold float64) (Sync, error) {
	cands, err := DetectPacketCandidates(wave, m, threshold, 1, 0)
	if err != nil {
		return Sync{}, err
	}
	return cands[0], nil
}

// DetectPacketCandidates returns up to maxK candidate packet starts,
// strongest first, separated by at least minSeparation samples (default:
// one preamble length). Multiple candidates let a receiver disambiguate
// when payload structure correlates with the preamble template as well —
// it can test each candidate and keep the one that decodes.
func DetectPacketCandidates(wave []float64, m *FM0, threshold float64, maxK, minSeparation int) ([]Sync, error) {
	st := prof.Start(prof.StageSync)
	defer st.Stop(len(wave))
	tmpl := m.EncodeTemplate(PreambleBits)
	if len(wave) < len(tmpl) {
		return nil, fmt.Errorf("phy: waveform shorter than preamble (%d < %d)", len(wave), len(tmpl))
	}
	if maxK < 1 {
		maxK = 1
	}
	if minSeparation <= 0 {
		minSeparation = len(tmpl)
	}
	centered := make([]float64, len(wave))
	mean := meanOf(wave)
	for i, v := range wave {
		centered[i] = v - mean
	}
	corr := dsp.NormalizedCrossCorrelate(centered, tmpl)
	// FM0's start level is unknown, so the preamble may appear inverted:
	// search |corr| and recover the polarity from the sign.
	taken := make([]bool, len(corr))
	out := make([]Sync, 0, maxK)
	for k := 0; k < maxK; k++ {
		bestIdx, bestAbs := -1, threshold
		for i, v := range corr {
			if taken[i] {
				continue
			}
			if a := math.Abs(v); a >= bestAbs {
				bestIdx, bestAbs = i, a
			}
		}
		if bestIdx < 0 {
			break
		}
		val := corr[bestIdx]
		start := 1.0
		if val < 0 {
			start = -1
		}
		_, finalLevel := m.Encode(PreambleBits, start)
		out = append(out, Sync{
			Index:        bestIdx,
			Score:        math.Abs(val),
			StartLevel:   start,
			PayloadLevel: finalLevel,
			PayloadIndex: bestIdx + len(PreambleBits)*m.SamplesPerBit,
		})
		lo := bestIdx - minSeparation
		if lo < 0 {
			lo = 0
		}
		hi := bestIdx + minSeparation
		if hi > len(corr) {
			hi = len(corr)
		}
		for i := lo; i < hi; i++ {
			taken[i] = true
		}
	}
	if len(out) == 0 {
		telemetry.Inc(telemetry.MPhySyncMissesTotal)
		_, best := dsp.ArgMaxAbs(corr)
		return nil, fmt.Errorf("phy: no preamble found (best %.3f < threshold %.3f)", math.Abs(best), threshold)
	}
	telemetry.Inc(telemetry.MPhySyncDetectsTotal)
	telemetry.ObserveN(telemetry.MPhySyncCandidates, telemetry.DefCountBuckets, float64(len(out)))
	telemetry.ObserveN(telemetry.MPhySyncPeak, syncPeakBuckets, out[0].Score)
	return out, nil
}

// syncPeakBuckets resolve the normalised correlation range [0, 1].
var syncPeakBuckets = []float64{0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1}

// EstimateCFO estimates the residual carrier frequency offset (Hz) of a
// complex baseband signal from the phase slope over a known-modulus
// segment (e.g. the preamble region). The paper's receiver needs this
// because projector and hydrophone run on independent oscillators
// (§5.1b, footnote 12).
func EstimateCFO(bb []complex128, fs float64) float64 {
	if len(bb) < 4 {
		return 0
	}
	// Average phase increment via the autocorrelation at lag 1, which is
	// robust to amplitude modulation (the modulation cancels in
	// conj(x[n])·x[n+1] as long as amplitude stays positive).
	var acc complex128
	for i := 1; i < len(bb); i++ {
		acc += bb[i] * cmplx.Conj(bb[i-1])
	}
	if acc == 0 {
		return 0
	}
	return cmplx.Phase(acc) * fs / (2 * math.Pi)
}

// CorrectCFO derotates a complex baseband signal by the given frequency
// offset (Hz), returning a new slice.
func CorrectCFO(bb []complex128, cfo, fs float64) []complex128 {
	out := make([]complex128, len(bb))
	if fs <= 0 {
		copy(out, bb)
		return out
	}
	w := -2 * math.Pi * cfo / fs
	for i, v := range bb {
		ph := w * float64(i)
		out[i] = v * complex(math.Cos(ph), math.Sin(ph))
	}
	return out
}

// MeasureSNR estimates the decision-point SNR (linear power ratio) of a
// two-level FM0 waveform, following the paper's method (§6.1a): the
// signal power is the squared modulation (channel) estimate and the
// noise power is the squared residual around the fitted levels. The
// statistic is computed on the decoder's actual decision variables —
// the mean of the central portion of each half-bit — so transition
// smear from receive filtering and intra-half-bit correlated
// disturbance are weighted exactly as the decoder experiences them.
//
// wave must be bit-aligned FM0 at samplesPerBit; bits are the decoded
// (or known) bits used to reconstruct the ideal waveform.
func MeasureSNR(wave []float64, bits []Bit, m *FM0) float64 {
	if len(bits) == 0 {
		return 0
	}
	n := len(bits) * m.SamplesPerBit
	if len(wave) < n {
		return 0
	}
	wave = wave[:n]

	// One decision variable per half-bit: the mean of its central
	// third (edges carry deterministic filter smear).
	half := m.SamplesPerBit / 2
	q := half / 3
	means := make([]float64, 0, 2*len(bits))
	for h := 0; h < 2*len(bits); h++ {
		start := h*half + q
		end := (h+1)*half - q
		if end <= start {
			start, end = h*half, (h+1)*half
		}
		sum := 0.0
		for i := start; i < end; i++ {
			sum += wave[i]
		}
		means = append(means, sum/float64(end-start))
	}

	// Least-squares fit means ≈ a·lv + b against the ideal half-bit
	// levels, walking the FM0 encoding rule directly (boundary inversion
	// every bit, mid-bit inversion for data-0) instead of materialising
	// the ideal waveform — Encode allocated len(bits)·SamplesPerBit
	// floats per call, which the per-candidate SNR search multiplied
	// into the decode stage's dominant allocation. The start polarity
	// does not matter: flipping every level negates the fitted slope a
	// and leaves the signal estimate a² and the residuals unchanged, so
	// a single walk from +1 covers both assignments the old code tried.
	var sumI, sumW, sumIW float64
	level := 1.0
	h := 0
	for _, bit := range bits {
		level = -level
		sumI += level
		sumW += means[h]
		sumIW += level * means[h]
		h++
		if bit == 0 {
			level = -level
		}
		sumI += level
		sumW += means[h]
		sumIW += level * means[h]
		h++
	}
	nf := float64(len(means))
	sumII := nf // levels are ±1
	den := nf*sumII - sumI*sumI
	if den == 0 {
		return 0
	}
	a := (nf*sumIW - sumI*sumW) / den
	b := (sumW - a*sumI) / nf
	var noise float64
	level = 1.0
	h = 0
	for _, bit := range bits {
		level = -level
		d := means[h] - (a*level + b)
		noise += d * d
		h++
		if bit == 0 {
			level = -level
		}
		d = means[h] - (a*level + b)
		noise += d * d
		h++
	}
	noise /= nf
	sig := a * a // squared channel estimate (modulation amplitude)
	if noise <= 0 {
		return math.Inf(1)
	}
	return sig / noise
}
