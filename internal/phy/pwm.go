package phy

import (
	"fmt"
	"math"
)

// PWM is the downlink line code (paper §3.2): the projector keys the
// carrier with pulses whose width encodes the bit — a '1' is twice as
// long as a '0' (§5.1a) — and the node decodes with a simple envelope
// detector plus edge timing, which costs near-zero power.
//
// Symbol layout per bit: carrier ON for 1 unit ('0') or 2 units ('1'),
// then OFF for 1 unit. A node measures the interval between falling
// edges: 2 units ⇒ '0', 3 units ⇒ '1'.
type PWM struct {
	// UnitSamples is the number of samples in one PWM time unit.
	UnitSamples int
}

// NewPWM validates the configuration.
func NewPWM(unitSamples int) (*PWM, error) {
	if unitSamples < 2 {
		return nil, fmt.Errorf("phy: PWM needs ≥2 samples per unit, got %d", unitSamples)
	}
	return &PWM{UnitSamples: unitSamples}, nil
}

// Encode returns the on/off keying envelope (1 = carrier on, 0 = off)
// for bits. A trailing OFF unit terminates the final bit so its falling
// edge exists.
func (p *PWM) Encode(bits []Bit) []float64 {
	// Worst case is 3 units per bit (a one: 2 on + 1 off) plus the
	// terminating OFF unit.
	out := make([]float64, 0, (3*len(bits)+1)*p.UnitSamples)
	on := func(units int) {
		for i := 0; i < units*p.UnitSamples; i++ {
			out = append(out, 1)
		}
	}
	off := func(units int) {
		for i := 0; i < units*p.UnitSamples; i++ {
			out = append(out, 0)
		}
	}
	for _, b := range bits {
		if b == 0 {
			on(1)
		} else {
			on(2)
		}
		off(1)
	}
	return out
}

// SymbolSamples returns the sample count of one encoded bit b.
func (p *PWM) SymbolSamples(b Bit) int {
	if b == 0 {
		return 2 * p.UnitSamples
	}
	return 3 * p.UnitSamples
}

// EncodedLength returns the total sample count for a bit string.
func (p *PWM) EncodedLength(bits []Bit) int {
	n := 0
	for _, b := range bits {
		n += p.SymbolSamples(b)
	}
	return n
}

// SchmittTrigger discretises an envelope into a binary sequence with
// hysteresis: it switches high above highFrac·peak and low below
// lowFrac·peak — the TXB0302 trigger + level shifter of §4.2.1.
func SchmittTrigger(env []float64, highFrac, lowFrac float64) []bool {
	if len(env) == 0 {
		return nil
	}
	peak := 0.0
	for _, v := range env {
		if v > peak {
			peak = v
		}
	}
	hi := highFrac * peak
	lo := lowFrac * peak
	out := make([]bool, len(env))
	state := false
	for i, v := range env {
		if !state && v >= hi {
			state = true
		} else if state && v <= lo {
			state = false
		}
		out[i] = state
	}
	return out
}

// Decode recovers bits from a Schmitt-triggered binary stream by timing
// the intervals between falling edges (the MCU's interrupt-driven decode,
// §4.2.2). It tolerates ±30% timing error per symbol.
func (p *PWM) Decode(levels []bool) []Bit {
	if p.UnitSamples <= 0 {
		return nil
	}
	edges := fallingEdges(levels, p.UnitSamples)
	if len(edges) == 0 {
		return nil
	}
	bits := make([]Bit, 0, len(edges))
	// The first pulse has no preceding falling edge; measure its width
	// from its rising edge.
	if first := firstBitFromRise(levels, edges[0], p.UnitSamples); first >= 0 {
		bits = append(bits, Bit(first))
	}
	for i := 1; i < len(edges); i++ {
		interval := float64(edges[i] - edges[i-1])
		units := interval / float64(p.UnitSamples)
		switch {
		case math.Abs(units-2) <= 0.6:
			bits = append(bits, 0)
		case math.Abs(units-3) <= 0.6:
			bits = append(bits, 1)
		default:
			// Unrecognised interval: glitch or silence between packets —
			// stop rather than emit garbage.
			return bits
		}
	}
	return bits
}

// fallingEdges returns the indices one past each true→false transition.
// unit bounds the edge density: a pulse is at least one ON unit plus one
// OFF unit, so edges are ≥ 2·unit samples apart.
func fallingEdges(levels []bool, unit int) []int {
	edges := make([]int, 0, len(levels)/(2*unit)+1)
	for i := 1; i < len(levels); i++ {
		if levels[i-1] && !levels[i] {
			edges = append(edges, i)
		}
	}
	return edges
}

// firstBitFromRise measures the width of the first pulse (up to the first
// falling edge) and maps it to a bit, or −1 if ambiguous.
func firstBitFromRise(levels []bool, firstFall, unit int) int {
	rise := -1
	for i := 1; i < firstFall; i++ {
		if !levels[i-1] && levels[i] {
			rise = i
			break
		}
	}
	if rise < 0 && len(levels) > 0 && levels[0] {
		rise = 0
	}
	if rise < 0 {
		return -1
	}
	width := float64(firstFall-rise) / float64(unit)
	switch {
	case math.Abs(width-1) <= 0.4:
		return 0
	case math.Abs(width-2) <= 0.4:
		return 1
	default:
		return -1
	}
}
