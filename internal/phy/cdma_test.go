package phy

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWalshCodesOrthogonal(t *testing.T) {
	for _, order := range []int{0, 1, 2, 3, 5} {
		codes, err := WalshCodes(order)
		if err != nil {
			t.Fatal(err)
		}
		n := 1 << uint(order)
		if len(codes) != n {
			t.Fatalf("order %d: %d codes", order, len(codes))
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				var dot float64
				for k := 0; k < n; k++ {
					dot += codes[i][k] * codes[j][k]
				}
				want := 0.0
				if i == j {
					want = float64(n)
				}
				if math.Abs(dot-want) > 1e-12 {
					t.Fatalf("order %d: <c%d, c%d> = %g, want %g", order, i, j, dot, want)
				}
			}
		}
	}
	if _, err := WalshCodes(-1); err == nil {
		t.Error("negative order should error")
	}
	if _, err := WalshCodes(20); err == nil {
		t.Error("huge order should error")
	}
}

func TestSpreadDespreadRoundTrip(t *testing.T) {
	codes, _ := WalshCodes(3)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bits := make([]Bit, 1+rng.Intn(60))
		for i := range bits {
			bits[i] = Bit(rng.Intn(2))
		}
		code := codes[rng.Intn(len(codes))]
		chips, err := Spread(bits, code)
		if err != nil {
			return false
		}
		got, err := Despread(chips, code, len(bits))
		if err != nil {
			return false
		}
		return CountBitErrors(bits, got) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSynchronousUsersSeparate(t *testing.T) {
	// Two synchronous users on orthogonal codes: each decodes cleanly
	// through the sum.
	codes, _ := WalshCodes(2)
	rng := rand.New(rand.NewSource(5))
	bits1 := make([]Bit, 40)
	bits2 := make([]Bit, 40)
	for i := range bits1 {
		bits1[i] = Bit(rng.Intn(2))
		bits2[i] = Bit(rng.Intn(2))
	}
	c1, c2 := codes[1], codes[2]
	s1, _ := Spread(bits1, c1)
	s2, _ := Spread(bits2, c2)
	sum := make([]float64, len(s1))
	for i := range sum {
		sum[i] = s1[i] + s2[i]
	}
	got1, err := Despread(sum, c1, len(bits1))
	if err != nil {
		t.Fatal(err)
	}
	got2, err := Despread(sum, c2, len(bits2))
	if err != nil {
		t.Fatal(err)
	}
	if CountBitErrors(bits1, got1) != 0 || CountBitErrors(bits2, got2) != 0 {
		t.Error("orthogonal synchronous users should separate exactly")
	}
}

func TestAsynchronousUsersInterfere(t *testing.T) {
	// A one-chip offset destroys Walsh orthogonality — the reason
	// synchronisation-free backscatter favours FDMA over CDMA.
	codes, _ := WalshCodes(3)
	rng := rand.New(rand.NewSource(9))
	bits1 := make([]Bit, 200)
	bits2 := make([]Bit, 200)
	for i := range bits1 {
		bits1[i] = Bit(rng.Intn(2))
		bits2[i] = Bit(rng.Intn(2))
	}
	s1, _ := Spread(bits1, codes[3])
	s2, _ := Spread(bits2, codes[5])
	sum := make([]float64, len(s1))
	for i := range sum {
		sum[i] = s1[i]
		if i+1 < len(s2) {
			sum[i] += s2[i+1] // one-chip misalignment
		}
	}
	soft, err := DespreadSoft(sum, codes[3], len(bits1))
	if err != nil {
		t.Fatal(err)
	}
	// Interference shows as variance in the soft correlations beyond the
	// clean ±√N levels.
	var offLevel int
	clean := math.Sqrt(8)
	for _, v := range soft {
		if math.Abs(math.Abs(v)-clean) > 0.1 {
			offLevel++
		}
	}
	if offLevel == 0 {
		t.Error("asynchronous interference should perturb the correlations")
	}
}

func TestMultipleAccessBandwidthFootnote4(t *testing.T) {
	// The paper's footnote 4: CDMA needs the same overall bandwidth as
	// FDMA (for power-of-two user counts; otherwise CDMA rounds up to
	// the next code family and needs slightly more).
	for _, users := range []int{1, 2, 4, 8} {
		fdma, cdma, err := MultipleAccessBandwidth(users, 500)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(fdma-cdma) > 1e-9 {
			t.Errorf("%d users: FDMA %g Hz vs CDMA %g Hz, want equal", users, fdma, cdma)
		}
	}
	// Non-power-of-two: CDMA rounds up.
	fdma, cdma, err := MultipleAccessBandwidth(3, 500)
	if err != nil {
		t.Fatal(err)
	}
	if cdma <= fdma {
		t.Errorf("3 users: CDMA %g should exceed FDMA %g (code family rounds to 4)", cdma, fdma)
	}
	if _, _, err := MultipleAccessBandwidth(0, 500); err == nil {
		t.Error("zero users should error")
	}
}

func TestCDMAErrors(t *testing.T) {
	if _, err := Spread([]Bit{1}, nil); err == nil {
		t.Error("empty code should error")
	}
	if _, err := Despread([]float64{1}, nil, 1); err == nil {
		t.Error("empty code should error")
	}
	if _, err := Despread([]float64{1}, []float64{1, -1}, 1); err == nil {
		t.Error("short chip stream should error")
	}
	if _, err := DespreadSoft([]float64{1}, []float64{1, -1}, 1); err == nil {
		t.Error("short chip stream should error")
	}
}
