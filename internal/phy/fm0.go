package phy

import (
	"fmt"
	"math"

	"pab/internal/telemetry"
)

// FM0 is the paper's uplink line code (§3.2): the level inverts at every
// bit boundary, and a data-0 carries an additional mid-bit inversion.
// Encoded levels are ±1; a PAB node maps +1 to the reflective switch
// state and −1 to the absorptive state.
type FM0 struct {
	// SamplesPerBit is the (even) number of samples per bit interval.
	SamplesPerBit int
}

// NewFM0 validates the configuration.
func NewFM0(samplesPerBit int) (*FM0, error) {
	if samplesPerBit < 2 {
		return nil, fmt.Errorf("phy: FM0 needs ≥2 samples per bit, got %d", samplesPerBit)
	}
	if samplesPerBit%2 != 0 {
		return nil, fmt.Errorf("phy: FM0 samples per bit must be even, got %d", samplesPerBit)
	}
	return &FM0{SamplesPerBit: samplesPerBit}, nil
}

// Encode returns the ±1 level waveform for bits, starting from
// startLevel (+1 or −1) *after* the initial boundary inversion. The
// returned final level lets callers concatenate segments.
func (m *FM0) Encode(bits []Bit, startLevel float64) (wave []float64, finalLevel float64) {
	if startLevel >= 0 {
		startLevel = 1
	} else {
		startLevel = -1
	}
	half := m.SamplesPerBit / 2
	wave = make([]float64, 0, len(bits)*m.SamplesPerBit)
	level := startLevel
	for _, b := range bits {
		level = -level // boundary inversion, every bit
		for i := 0; i < half; i++ {
			wave = append(wave, level)
		}
		if b == 0 {
			level = -level // mid-bit inversion for data-0
		}
		for i := 0; i < half; i++ {
			wave = append(wave, level)
		}
	}
	return wave, level
}

// DecodeFrom recovers bits from a real-valued baseband waveform with a
// maximum-likelihood sequence decision (a two-state Viterbi over the
// running FM0 level), given the level that preceded the first bit
// (prevLevel = the Encode startLevel, ±1). The waveform must be aligned
// so sample 0 is the first sample of the first bit. The two amplitude
// levels need not be known: the decoder removes the waveform mean and
// works with signed correlations. Because the levels are estimated from
// the waveform itself, a window of at least two bits is needed — a lone
// '1' encodes to a constant waveform that carries no level reference.
//
// It returns the decoded bits and the winning path metric per bit (a
// soft quality measure).
func (m *FM0) DecodeFrom(wave []float64, nbits int, prevLevel float64) ([]Bit, float64) {
	if nbits <= 0 || len(wave) < m.SamplesPerBit {
		return nil, 0
	}
	if max := len(wave) / m.SamplesPerBit; nbits > max {
		nbits = max
	}
	telemetry.Inc(telemetry.MPhyFm0DecodesTotal)
	telemetry.Add(telemetry.MPhyFm0BitsTotal, int64(nbits))
	half := m.SamplesPerBit / 2
	mid := meanOf(wave[:nbits*m.SamplesPerBit])

	// Viterbi over the level entering each bit: state 0 ⇒ +1, 1 ⇒ −1.
	const neg = math.MaxFloat64
	metric := [2]float64{-neg, -neg}
	if prevLevel >= 0 {
		metric[0] = 0
	} else {
		metric[1] = 0
	}
	// back[i][s] is (previous state, bit) leading to state s after bit i.
	type hop struct {
		prev int
		bit  Bit
	}
	back := make([][2]hop, nbits)
	for i := 0; i < nbits; i++ {
		seg := wave[i*m.SamplesPerBit : (i+1)*m.SamplesPerBit]
		m1 := meanOf(seg[:half]) - mid
		m2 := meanOf(seg[half:]) - mid
		var next [2]float64
		next[0], next[1] = -neg, -neg
		for s, lv := range [2]float64{1, -1} {
			//pablint:ignore floatcmp -MaxFloat64 is the exact unreachable-state sentinel this metric was initialised to
			if metric[s] == -neg {
				continue
			}
			// bit=1: halves (−lv, −lv); exit level −lv.
			m1Metric := metric[s] + (-lv)*m1 + (-lv)*m2
			exit1 := 1 - s // state index of −lv
			if m1Metric > next[exit1] {
				next[exit1] = m1Metric
				back[i][exit1] = hop{prev: s, bit: 1}
			}
			// bit=0: halves (−lv, +lv); exit level +lv.
			m0Metric := metric[s] + (-lv)*m1 + lv*m2
			exit0 := s // state index of +lv (unchanged)
			if m0Metric > next[exit0] {
				next[exit0] = m0Metric
				back[i][exit0] = hop{prev: s, bit: 0}
			}
		}
		metric = next
	}
	// Trace back from the better terminal state.
	state := 0
	if metric[1] > metric[0] {
		state = 1
	}
	total := metric[state]
	bits := make([]Bit, nbits)
	for i := nbits - 1; i >= 0; i-- {
		h := back[i][state]
		bits[i] = h.bit
		state = h.prev
	}
	return bits, total / float64(nbits)
}

// Decode is DecodeFrom with unknown entry level: it tries both and keeps
// the higher-metric result. Note that without an external polarity
// reference (normally the preamble) FM0 is ambiguous under level
// inversion, so Decode may return the bitwise complement sequence when
// handed an isolated waveform; use DecodeFrom with the polarity from
// DetectPacket in receiver chains.
func (m *FM0) Decode(wave []float64, nbits int) ([]Bit, float64) {
	bitsA, confA := m.DecodeFrom(wave, nbits, 1)
	bitsB, confB := m.DecodeFrom(wave, nbits, -1)
	if confA >= confB {
		return bitsA, confA
	}
	return bitsB, confB
}

// ThresholdDecode is the naive slicer baseline used by the ablation
// bench: it thresholds each half-bit at the waveform mean and reads the
// mid-bit transition directly, with no likelihood tracking.
func (m *FM0) ThresholdDecode(wave []float64, nbits int) []Bit {
	if nbits <= 0 || len(wave) < m.SamplesPerBit {
		return nil
	}
	if max := len(wave) / m.SamplesPerBit; nbits > max {
		nbits = max
	}
	half := m.SamplesPerBit / 2
	mid := meanOf(wave[:nbits*m.SamplesPerBit])
	bits := make([]Bit, 0, nbits)
	for i := 0; i < nbits; i++ {
		seg := wave[i*m.SamplesPerBit : (i+1)*m.SamplesPerBit]
		h1 := meanOf(seg[:half]) > mid
		h2 := meanOf(seg[half:]) > mid
		if h1 == h2 {
			bits = append(bits, 1)
		} else {
			bits = append(bits, 0)
		}
	}
	return bits
}

// EncodeTemplate returns the FM0 waveform of bits starting from level +1,
// for use as a correlation template (preamble detection).
func (m *FM0) EncodeTemplate(bits []Bit) []float64 {
	w, _ := m.Encode(bits, 1)
	return w
}

func meanOf(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// BitDuration returns the duration of one bit at sample rate fs.
func (m *FM0) BitDuration(fs float64) float64 {
	if fs <= 0 {
		return 0
	}
	return float64(m.SamplesPerBit) / fs
}

// Bitrate returns the data rate in bit/s at sample rate fs.
func (m *FM0) Bitrate(fs float64) float64 {
	if m.SamplesPerBit <= 0 {
		return 0
	}
	return fs / float64(m.SamplesPerBit)
}

// OccupiedBandwidth returns the approximate null-to-null baseband
// bandwidth of FM0 at bitrate rb: ≈2·rb (bi-phase codes occupy twice the
// bitrate). Used by the SNR-vs-bitrate analysis (Fig 8: "a higher bitrate
// requires spreading the transmit power over a wider bandwidth").
func OccupiedBandwidth(bitrate float64) float64 {
	return 2 * bitrate
}

// SamplesPerBitFor returns the even sample count per bit closest to
// fs/bitrate.
func SamplesPerBitFor(fs, bitrate float64) (int, error) {
	if fs <= 0 || bitrate <= 0 {
		return 0, fmt.Errorf("phy: fs and bitrate must be positive")
	}
	spb := int(math.Round(fs / bitrate))
	if spb%2 != 0 {
		spb++
	}
	if spb < 2 {
		return 0, fmt.Errorf("phy: bitrate %g too high for sample rate %g", bitrate, fs)
	}
	return spb, nil
}
