package phy

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestManchesterValidation(t *testing.T) {
	if _, err := NewManchester(1); err == nil {
		t.Error("1 sample/bit should error")
	}
	if _, err := NewManchester(7); err == nil {
		t.Error("odd samples/bit should error")
	}
	if _, err := NewManchester(8); err != nil {
		t.Errorf("8 samples/bit should work: %v", err)
	}
}

func TestManchesterRoundTrip(t *testing.T) {
	m, _ := NewManchester(8)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bits := randBits(rng, 1+rng.Intn(100))
		got := m.Decode(m.Encode(bits), len(bits))
		return CountBitErrors(bits, got) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestManchesterMidBitTransitionEveryBit(t *testing.T) {
	m, _ := NewManchester(8)
	wave := m.Encode([]Bit{1, 1, 0, 0, 1})
	for i := 0; i < 5; i++ {
		first := wave[i*8+3]
		second := wave[i*8+4]
		if first == second {
			t.Errorf("bit %d lacks the mid-bit transition", i)
		}
	}
}

func TestManchesterAmplitudeInvariant(t *testing.T) {
	m, _ := NewManchester(10)
	rng := rand.New(rand.NewSource(3))
	bits := randBits(rng, 50)
	wave := m.Encode(bits)
	for i, v := range wave {
		wave[i] = 0.7 + 0.1*v // arbitrary levels
	}
	if CountBitErrors(bits, m.Decode(wave, len(bits))) != 0 {
		t.Error("decode should be offset/scale invariant")
	}
}

func TestManchesterNoisy(t *testing.T) {
	m, _ := NewManchester(16)
	rng := rand.New(rand.NewSource(5))
	bits := randBits(rng, 200)
	wave := m.Encode(bits)
	for i := range wave {
		wave[i] += rng.NormFloat64() * 0.5
	}
	if e := CountBitErrors(bits, m.Decode(wave, len(bits))); e > 1 {
		t.Errorf("noisy decode: %d errors", e)
	}
}

func TestManchesterDegenerateInputs(t *testing.T) {
	m, _ := NewManchester(8)
	if m.Decode(nil, 5) != nil {
		t.Error("empty wave should decode to nil")
	}
	if got := m.Decode(m.Encode([]Bit{1, 0}), 10); len(got) != 2 {
		t.Errorf("decode should clamp to available bits, got %d", len(got))
	}
	if m.Bitrate(96000) != 12000 {
		t.Error("bitrate wrong")
	}
}

func TestFM0vsManchesterTradeoff(t *testing.T) {
	// In pure AWGN the two bi-phase codes are close, with Manchester
	// holding a small raw-BER edge: its decisions are independent per
	// bit, while an FM0 level-tracking error event corrupts two bits.
	// FM0 still wins where it matters for backscatter — its guaranteed
	// boundary transition gives the receiver a self-synchronising edge
	// for clock recovery, which is why RFID (and the paper) use it. This
	// test pins the raw-BER relationship so the trade-off stays honest.
	fm0, _ := NewFM0(8)
	man, _ := NewManchester(8)
	rng := rand.New(rand.NewSource(17))
	fmErrs, manErrs := 0, 0
	for trial := 0; trial < 60; trial++ {
		bits := randBits(rng, 100)
		w1, _ := fm0.Encode(bits, 1)
		w2 := man.Encode(bits)
		for i := range w1 {
			w1[i] += rng.NormFloat64() * 1.0
			w2[i] += rng.NormFloat64() * 1.0
		}
		got1, _ := fm0.DecodeFrom(w1, len(bits), 1)
		fmErrs += CountBitErrors(bits, got1)
		manErrs += CountBitErrors(bits, man.Decode(w2, len(bits)))
	}
	if fmErrs > 4*manErrs {
		t.Errorf("FM0 (%d errors) should stay within ~2× of Manchester (%d); error propagation is worse than expected", fmErrs, manErrs)
	}
	if manErrs > fmErrs {
		t.Errorf("Manchester (%d) unexpectedly lost to FM0 (%d) in raw AWGN", manErrs, fmErrs)
	}
}
