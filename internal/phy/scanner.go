package phy

import (
	"math"

	"pab/internal/dsp"
)

// ScanHit is one preamble correlation peak found by a SyncScanner.
type ScanHit struct {
	// Index is the global sample index — counted from the first sample
	// ever fed to the scanner — of the first preamble sample of the
	// alignment.
	Index int64
	// Corr is the signed normalised correlation at the alignment
	// (|Corr| ≥ the scanner threshold; the sign carries the FM0
	// polarity, as in DetectPacketCandidates).
	Corr float64
}

// SyncScanner is the incremental face of DetectPacketCandidates: it
// watches a real-valued projection stream for FM0 preamble correlation
// peaks block by block, carrying len(template)−1 samples of history so
// an alignment torn across a block boundary is still evaluated whole.
// Every alignment in the stream is scored exactly once: alignments
// whose window closes inside a call are scored there, and ones
// spanning the boundary are scored on the next call via the carry —
// the carry is one sample too short for any alignment to close in it
// twice.
//
// The scanner is a latency device for streaming receivers — hits tell
// the caller where to aim a full decode attempt early. It holds no
// decode state and suppresses nothing, so a caller that also runs a
// full-window attempt before discarding samples loses no frames if a
// hit is missed on a noisy projection.
type SyncScanner struct {
	tmpl      []float64
	threshold float64
	carry     []float64
	nCarry    int
	next      int64 // global index of the next sample to be fed
	buf       []float64
	hits      []ScanHit
}

// NewSyncScanner returns a scanner matching m's encoding of the
// standard preamble at the given |correlation| threshold.
func NewSyncScanner(m *FM0, threshold float64) *SyncScanner {
	tmpl := m.EncodeTemplate(PreambleBits)
	return &SyncScanner{
		tmpl:      tmpl,
		threshold: threshold,
		carry:     make([]float64, len(tmpl)-1),
		hits:      make([]ScanHit, 0, 8),
	}
}

// Overlap returns the history length carried between calls.
func (s *SyncScanner) Overlap() int { return len(s.tmpl) - 1 }

// Offset returns the global index of the next sample Scan will consume.
func (s *SyncScanner) Offset() int64 { return s.next }

// Scan feeds the next block and returns the hits whose alignment
// window closed with it, in ascending index order. The returned slice
// is reused by the next Scan call; copy anything kept longer.
func (s *SyncScanner) Scan(block []float64) []ScanHit {
	s.hits = s.hits[:0]
	if len(block) == 0 {
		return s.hits
	}
	need := s.nCarry + len(block)
	if cap(s.buf) < need {
		s.buf = make([]float64, need)
	}
	buf := s.buf[:need]
	copy(buf, s.carry[:s.nCarry])
	copy(buf[s.nCarry:], block)
	if need >= len(s.tmpl) {
		corr := dsp.NormalizedCrossCorrelate(buf, s.tmpl)
		base := s.next - int64(s.nCarry)
		hits := s.hits
		for i, v := range corr {
			if math.Abs(v) >= s.threshold {
				//pablint:ignore allocloop hits reuses the scanner's buffer; a realloc happens at most once per scanner lifetime, not per sample
				hits = append(hits, ScanHit{Index: base + int64(i), Corr: v})
			}
		}
		s.hits = hits
	}
	keep := len(s.tmpl) - 1
	if need < keep {
		keep = need
	}
	copy(s.carry[:keep], buf[need-keep:])
	s.nCarry = keep
	s.next += int64(len(block))
	return s.hits
}

// Reset clears the carry and rewinds the global index to zero.
func (s *SyncScanner) Reset() {
	s.nCarry = 0
	s.next = 0
	s.hits = s.hits[:0]
}
