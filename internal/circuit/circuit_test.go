package circuit

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestElementImpedances(t *testing.T) {
	f := 15000.0
	w := 2 * math.Pi * f
	if z := ResistorZ(50); z != complex(50, 0) {
		t.Errorf("resistor: %v", z)
	}
	zL := InductorZ(1e-3, f)
	if math.Abs(imag(zL)-w*1e-3) > 1e-9 || real(zL) != 0 {
		t.Errorf("inductor: %v", zL)
	}
	zC := CapacitorZ(1e-6, f)
	if math.Abs(imag(zC)+1/(w*1e-6)) > 1e-9 || real(zC) != 0 {
		t.Errorf("capacitor: %v", zC)
	}
	// Open circuit for zero C.
	if real(CapacitorZ(0, f)) < 1e12 {
		t.Error("zero capacitance should be an open circuit")
	}
}

func TestSeriesParallel(t *testing.T) {
	a, b := complex(30, 40), complex(10, -20)
	if got := Series(a, b); got != complex(40, 20) {
		t.Errorf("series: %v", got)
	}
	got := Parallel(complex(100, 0), complex(100, 0))
	if cmplx.Abs(got-complex(50, 0)) > 1e-9 {
		t.Errorf("parallel equal resistors: %v", got)
	}
	if Parallel(complex(100, 0), 0) != 0 {
		t.Error("parallel with short should be short")
	}
	if real(Parallel()) < 1e12 {
		t.Error("empty parallel should be open")
	}
}

func TestLCResonance(t *testing.T) {
	// Series LC resonates (|Z| minimum ≈ 0) at f0 = 1/(2π√(LC)).
	l, c := 10e-3, 11.1e-9
	f0 := 1 / (2 * math.Pi * math.Sqrt(l*c))
	z := Series(InductorZ(l, f0), CapacitorZ(c, f0))
	if cmplx.Abs(z) > 1 {
		t.Errorf("series LC at resonance: |Z| = %g, want ~0", cmplx.Abs(z))
	}
}

func TestReflectionCoefficientStates(t *testing.T) {
	zs := complex(50, 30)
	// Shorted load: everything reflects (|Γ| = 1). This is PAB's
	// reflective state.
	if p := ReflectedPowerFraction(0, zs); math.Abs(p-1) > 1e-9 {
		t.Errorf("short: reflected %g, want 1", p)
	}
	// Conjugate match: nothing reflects. This is PAB's absorptive state.
	if p := ReflectedPowerFraction(cmplx.Conj(zs), zs); p > 1e-12 {
		t.Errorf("conjugate match: reflected %g, want 0", p)
	}
	// Energy conservation.
	if tr := TransferredPowerFraction(cmplx.Conj(zs), zs); math.Abs(tr-1) > 1e-9 {
		t.Errorf("match transfers %g, want 1", tr)
	}
}

func TestReflectionBoundedForPassiveLoads(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		zs := complex(1+99*rng.Float64(), 200*rng.Float64()-100)
		zl := complex(1+999*rng.Float64(), 2000*rng.Float64()-1000)
		p := ReflectedPowerFraction(zl, zs)
		return p >= 0 && p <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDesignLSectionRealToReal(t *testing.T) {
	// Classic 50 Ω → 200 Ω match.
	zs, zl := complex(50, 0), complex(200, 0)
	f := 15000.0
	net, err := DesignLSection(zs, zl, f)
	if err != nil {
		t.Fatal(err)
	}
	zin := net.TransformLoad(zl, f)
	if cmplx.Abs(zin-cmplx.Conj(zs)) > 0.01*cmplx.Abs(zs) {
		t.Errorf("Zin = %v, want %v", zin, cmplx.Conj(zs))
	}
	if q := net.MatchQuality(zs, zl, f); q < 0.9999 {
		t.Errorf("match quality %g, want ~1", q)
	}
}

func TestDesignLSectionComplexSource(t *testing.T) {
	// A piezo-like source: resistive + strong capacitive reactance.
	zs := complex(800, -2500)
	zl := complex(3000, 0) // rectifier input
	f := 15000.0
	net, err := DesignLSection(zs, zl, f)
	if err != nil {
		t.Fatal(err)
	}
	zin := net.TransformLoad(zl, f)
	if cmplx.Abs(zin-cmplx.Conj(zs)) > 0.02*cmplx.Abs(zs) {
		t.Errorf("Zin = %v, want %v", zin, cmplx.Conj(zs))
	}
	if q := net.MatchQuality(zs, zl, f); q < 0.999 {
		t.Errorf("match quality %g, want ~1", q)
	}
}

func TestDesignLSectionRandomised(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		zs := complex(10+500*rng.Float64(), 1000*rng.Float64()-500)
		zl := complex(10+5000*rng.Float64(), 2000*rng.Float64()-1000)
		freq := 12000 + 6000*rng.Float64()
		net, err := DesignLSection(zs, zl, freq)
		if err != nil {
			return true // some combos are legitimately unmatched by one L
		}
		return net.MatchQuality(zs, zl, freq) > 0.99
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMatchQualityDegradesOffFrequency(t *testing.T) {
	// The selectivity that recto-piezos exploit: a match designed at
	// 15 kHz transfers less power at 18 kHz.
	zs := complex(500, -1800)
	zl := complex(2500, 0)
	net, err := DesignLSection(zs, zl, 15000)
	if err != nil {
		t.Fatal(err)
	}
	at15 := net.MatchQuality(zs, zl, 15000)
	at18 := net.MatchQuality(zs, zl, 18000)
	if at15 < 0.999 {
		t.Errorf("on-frequency quality %g", at15)
	}
	if at18 >= at15 {
		t.Errorf("off-frequency quality %g should be below on-frequency %g", at18, at15)
	}
}

func TestDesignLSectionErrors(t *testing.T) {
	if _, err := DesignLSection(complex(-50, 0), complex(100, 0), 15000); err == nil {
		t.Error("negative source resistance should error")
	}
	if _, err := DesignLSection(complex(50, 0), complex(0, 10), 15000); err == nil {
		t.Error("zero load resistance should error")
	}
	if _, err := DesignLSection(complex(50, 0), complex(100, 0), 0); err == nil {
		t.Error("zero frequency should error")
	}
}

func TestTransformLoadNoNetwork(t *testing.T) {
	// An empty L-section passes the load through (open shunt, zero series).
	var net LSection
	zl := complex(123, -45)
	zin := net.TransformLoad(zl, 15000)
	if cmplx.Abs(zin-zl) > 1e-3*cmplx.Abs(zl) {
		t.Errorf("empty network Zin = %v, want %v", zin, zl)
	}
}
