// Package circuit provides the lumped-element circuit analysis the PAB
// front-end is designed with: complex impedances of R/L/C elements,
// L-section impedance matching networks, and the power-wave reflection
// coefficient (paper Eq. 2) that governs backscatter modulation depth and
// energy-harvesting efficiency.
package circuit

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Impedance is a complex impedance in ohms.
type Impedance = complex128

// ResistorZ returns the impedance of a resistor (frequency independent).
func ResistorZ(ohms float64) Impedance {
	return complex(ohms, 0)
}

// InductorZ returns the impedance jωL of an inductor at frequency freqHz.
func InductorZ(henries, freqHz float64) Impedance {
	return complex(0, 2*math.Pi*freqHz*henries)
}

// CapacitorZ returns the impedance 1/(jωC) of a capacitor at frequency f
// (Hz). A zero capacitance or frequency yields an open circuit (infinite
// impedance is represented as a very large real impedance to avoid NaNs).
func CapacitorZ(farads, freqHz float64) Impedance {
	w := 2 * math.Pi * freqHz * farads
	if w == 0 {
		return complex(1e18, 0)
	}
	return complex(0, -1/w)
}

// Series returns the series combination of impedances.
func Series(zs ...Impedance) Impedance {
	var sum Impedance
	for _, z := range zs {
		sum += z
	}
	return sum
}

// Parallel returns the parallel combination of impedances. Zero-valued
// impedances short the network (returning 0).
func Parallel(zs ...Impedance) Impedance {
	var sumY complex128
	for _, z := range zs {
		if z == 0 {
			return 0
		}
		sumY += 1 / z
	}
	if sumY == 0 {
		return complex(1e18, 0)
	}
	return 1 / sumY
}

// ReflectionCoefficient returns the power-wave reflection coefficient
// Γ = (ZL − Zs*)/(ZL + Zs) between a source impedance Zs and load ZL.
// |Γ|² is the fraction of incident power reflected (paper Eq. 2):
// ZL = 0 (shorted terminals) reflects everything; ZL = Zs* (conjugate
// match) reflects nothing and transfers maximum power to the load.
func ReflectionCoefficient(zLoad, zSource Impedance) complex128 {
	den := zLoad + zSource
	if den == 0 {
		return complex(1, 0)
	}
	return (zLoad - cmplx.Conj(zSource)) / den
}

// ReflectedPowerFraction returns |Γ|², clamped to [0, 1] for passive
// terminations (numerical noise can push it marginally outside).
func ReflectedPowerFraction(zLoad, zSource Impedance) float64 {
	g := cmplx.Abs(ReflectionCoefficient(zLoad, zSource))
	p := g * g
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// TransferredPowerFraction returns 1 − |Γ|², the fraction of incident
// power delivered to the load (the energy-harvesting path).
func TransferredPowerFraction(zLoad, zSource Impedance) float64 {
	return 1 - ReflectedPowerFraction(zLoad, zSource)
}

// LSection is a two-element impedance matching network: a series element
// followed by a shunt element across the load (or the reverse, depending
// on topology). Element reactances are stored as component values so the
// network can be evaluated at any frequency — this frequency dependence is
// exactly what the recto-piezo design exploits to move the resonance
// (paper §3.3.1).
type LSection struct {
	// SeriesL and SeriesC form the series arm (either may be zero/absent).
	SeriesL float64 // henries
	SeriesC float64 // farads
	// ShuntL and ShuntC form the shunt arm across the load.
	ShuntL float64 // henries
	ShuntC float64 // farads
	// ShuntFirst selects the topology: true = shunt element on the
	// source side, series element toward the load.
	ShuntFirst bool
	// InductorQ models inductor loss: each inductor carries a series
	// resistance ωL/InductorQ. Zero means ideal (lossless) inductors.
	// Real wound inductors at these frequencies have Q ≈ 30–80; the loss
	// matters off-resonance, where it keeps the network from presenting
	// a perfect reflector (it dissipates part of the incident wave).
	InductorQ float64
}

// inductorZ returns the (possibly lossy) impedance of an inductor.
func (m LSection) inductorZ(henries, f float64) Impedance {
	z := InductorZ(henries, f)
	if m.InductorQ > 0 {
		z += complex(2*math.Pi*f*henries/m.InductorQ, 0)
	}
	return z
}

// seriesZ returns the series arm impedance at frequency f.
func (m LSection) seriesZ(f float64) Impedance {
	z := Impedance(0)
	if m.SeriesL > 0 {
		z += m.inductorZ(m.SeriesL, f)
	}
	if m.SeriesC > 0 {
		z = Series(z, CapacitorZ(m.SeriesC, f))
	}
	return z
}

// shuntZ returns the shunt arm impedance at frequency f, or an open
// circuit when absent.
func (m LSection) shuntZ(f float64) Impedance {
	switch {
	case m.ShuntL > 0 && m.ShuntC > 0:
		return Parallel(m.inductorZ(m.ShuntL, f), CapacitorZ(m.ShuntC, f))
	case m.ShuntL > 0:
		return m.inductorZ(m.ShuntL, f)
	case m.ShuntC > 0:
		return CapacitorZ(m.ShuntC, f)
	default:
		return complex(1e18, 0)
	}
}

// TransformLoad returns the impedance seen looking into the network from
// the source side when the far side is terminated with zLoad, at
// frequency f.
func (m LSection) TransformLoad(zLoad Impedance, f float64) Impedance {
	if m.ShuntFirst {
		// Source → shunt → series → load.
		return Parallel(m.shuntZ(f), Series(m.seriesZ(f), zLoad))
	}
	// Source → series → shunt∥load.
	return Series(m.seriesZ(f), Parallel(m.shuntZ(f), zLoad))
}

// DesignLSection designs an L-section that transforms the real part of
// zLoad up/down to present the conjugate of zSource at frequency f. It
// implements the textbook analytic design (Q = √(Rbig/Rsmall − 1)), after
// first resonating out the reactive parts of both terminations.
//
// The returned network satisfies TransformLoad(zLoad, f) ≈ conj(zSource),
// which maximises power transfer into the load (paper §3.2: "to ensure
// maximum power transfer ... our front-end employs an impedance matching
// network").
func DesignLSection(zSource, zLoad Impedance, f float64) (LSection, error) {
	rs, xs := real(zSource), imag(zSource)
	rl, xl := real(zLoad), imag(zLoad)
	if rs <= 0 || rl <= 0 {
		return LSection{}, fmt.Errorf("circuit: source and load must have positive resistance (got %v, %v)", zSource, zLoad)
	}
	if f <= 0 {
		return LSection{}, fmt.Errorf("circuit: frequency must be positive, got %g", f)
	}
	w := 2 * math.Pi * f

	var net LSection
	// Topology A: shunt across the load, series arm toward the source.
	// Zin = jX + 1/(Y_load + jB). Choose B so Re(1/(Y+jB)) = rs, then X
	// so Im(Zin) = −xs (conjugate of the source). Feasible iff rs ≤ 1/gL.
	gL := rl / (rl*rl + xl*xl)
	bL := -xl / (rl*rl + xl*xl)
	if rs*gL <= 1 {
		beta := math.Sqrt(gL/rs - gL*gL) // Im(Y_load + jB) after shunting
		b := beta - bL
		imZ := -beta / (gL*gL + beta*beta)
		x := -xs - imZ
		net.ShuntFirst = false
		net.setShunt(b, w)
		net.setSeries(x, w)
		return net, nil
	}
	// Topology B: series arm toward the load, shunt across the source
	// side. Yin = jB + 1/(zl + jX). Choose X so Re(1/(zl+jX)) = gWant,
	// then B so Im(Yin) = bWant, where Yin must equal 1/conj(zSource).
	gWant := rs / (rs*rs + xs*xs)
	bWant := xs / (rs*rs + xs*xs)
	if disc := rl/gWant - rl*rl; disc >= 0 {
		x := math.Sqrt(disc) - xl
		y2 := 1 / complex(rl, xl+x)
		b := bWant - imag(y2)
		net.ShuntFirst = true
		net.setShunt(b, w)
		net.setSeries(x, w)
		return net, nil
	}
	return LSection{}, fmt.Errorf("circuit: no single L-section matches source %v to load %v", zSource, zLoad)
}

// setSeries realises a series reactance x (ohms) at angular frequency w
// as an inductor (x > 0) or capacitor (x < 0).
func (m *LSection) setSeries(x, w float64) {
	switch {
	case x > 0:
		m.SeriesL = x / w
	case x < 0:
		m.SeriesC = -1 / (x * w)
	}
}

// setShunt realises a shunt susceptance b (siemens) at angular frequency
// w as a capacitor (b > 0) or inductor (b < 0).
func (m *LSection) setShunt(b, w float64) {
	switch {
	case b > 0:
		m.ShuntC = b / w
	case b < 0:
		m.ShuntL = -1 / (b * w)
	}
}

// MatchQuality returns the power transfer fraction 1 − |Γ|² achieved by
// the network between zSource and zLoad at frequency f. 1.0 is a perfect
// match; it degrades off the design frequency — the selectivity that the
// recto-piezo exploits.
func (m LSection) MatchQuality(zSource, zLoad Impedance, f float64) float64 {
	zin := m.TransformLoad(zLoad, f)
	return TransferredPowerFraction(zin, zSource)
}
