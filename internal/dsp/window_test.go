package dsp

import (
	"math"
	"testing"
)

func TestWindowSymmetry(t *testing.T) {
	for _, w := range []Window{Rectangular, Hann, Hamming, Blackman} {
		for _, n := range []int{2, 3, 16, 17, 64} {
			c := w.Coefficients(n)
			if len(c) != n {
				t.Fatalf("%v: length %d, want %d", w, len(c), n)
			}
			for i := 0; i < n/2; i++ {
				if math.Abs(c[i]-c[n-1-i]) > 1e-12 {
					t.Errorf("%v n=%d: c[%d]=%g != c[%d]=%g", w, n, i, c[i], n-1-i, c[n-1-i])
				}
			}
		}
	}
}

func TestWindowEndpointValues(t *testing.T) {
	const n = 33
	cases := []struct {
		w        Window
		endpoint float64
	}{
		{Rectangular, 1},
		{Hann, 0},
		{Hamming, 0.08}, // 0.54 - 0.46
		{Blackman, 0},   // 0.42 - 0.5 + 0.08
	}
	for _, tc := range cases {
		c := tc.w.Coefficients(n)
		if math.Abs(c[0]-tc.endpoint) > 1e-12 {
			t.Errorf("%v: c[0] = %g, want %g", tc.w, c[0], tc.endpoint)
		}
		if math.Abs(c[n-1]-tc.endpoint) > 1e-12 {
			t.Errorf("%v: c[n-1] = %g, want %g", tc.w, c[n-1], tc.endpoint)
		}
	}
}

func TestWindowCentreIsMaximum(t *testing.T) {
	// Odd length puts the exact centre sample at the window maximum.
	const n = 65
	peaks := map[Window]float64{Rectangular: 1, Hann: 1, Hamming: 1, Blackman: 1}
	for w, want := range peaks {
		c := w.Coefficients(n)
		mid := c[n/2]
		if math.Abs(mid-want) > 1e-12 {
			t.Errorf("%v: centre coefficient %g, want %g", w, mid, want)
		}
		for i, v := range c {
			if v > mid+1e-12 {
				t.Errorf("%v: c[%d]=%g exceeds centre %g", w, i, v, mid)
			}
		}
	}
}

func TestWindowCoherentGain(t *testing.T) {
	// Coherent gain (mean coefficient) approaches the textbook values as
	// n grows: rectangular 1, Hann 0.5, Hamming 0.54, Blackman 0.42.
	const n = 4096
	cases := []struct {
		w    Window
		gain float64
	}{
		{Rectangular, 1},
		{Hann, 0.5},
		{Hamming, 0.54},
		{Blackman, 0.42},
	}
	for _, tc := range cases {
		if g := Mean(tc.w.Coefficients(n)); math.Abs(g-tc.gain) > 1e-3 {
			t.Errorf("%v: coherent gain %g, want %g", tc.w, g, tc.gain)
		}
	}
}

func TestWindowSingleCoefficientIsUnity(t *testing.T) {
	for _, w := range []Window{Rectangular, Hann, Hamming, Blackman} {
		c := w.Coefficients(1)
		if len(c) != 1 || c[0] != 1 {
			t.Errorf("%v: Coefficients(1) = %v, want [1]", w, c)
		}
	}
}

func TestWindowApply(t *testing.T) {
	x := []float64{2, 2, 2, 2, 2}
	got := Hann.Apply(x)
	want := Hann.Coefficients(len(x))
	for i := range got {
		if math.Abs(got[i]-2*want[i]) > 1e-12 {
			t.Errorf("Apply[%d] = %g, want %g", i, got[i], 2*want[i])
		}
	}
	// Input must be untouched.
	for i, v := range x {
		if v != 2 {
			t.Errorf("Apply modified input at %d: %g", i, v)
		}
	}
}

func TestWindowString(t *testing.T) {
	names := map[Window]string{
		Rectangular: "rectangular",
		Hann:        "hann",
		Hamming:     "hamming",
		Blackman:    "blackman",
		Window(99):  "unknown",
	}
	for w, want := range names {
		if got := w.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", int(w), got, want)
		}
	}
}
