package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestFFTKnownDelta(t *testing.T) {
	// FFT of a delta at index 0 is all ones.
	x := make([]complex128, 8)
	x[0] = 1
	X := FFT(x)
	for k, v := range X {
		if !approx(real(v), 1, 1e-12) || !approx(imag(v), 0, 1e-12) {
			t.Errorf("bin %d: got %v, want 1", k, v)
		}
	}
}

func TestFFTKnownSine(t *testing.T) {
	// A pure sine at bin 3 of a 64-point FFT should put energy only in
	// bins 3 and 61 (N-3).
	n := 64
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(math.Sin(2*math.Pi*3*float64(i)/float64(n)), 0)
	}
	X := FFT(x)
	for k, v := range X {
		mag := cmplx.Abs(v)
		if k == 3 || k == n-3 {
			if !approx(mag, float64(n)/2, 1e-9) {
				t.Errorf("bin %d: |X| = %v, want %v", k, mag, float64(n)/2)
			}
		} else if mag > 1e-9 {
			t.Errorf("bin %d: |X| = %v, want 0", k, mag)
		}
	}
}

func TestFFTIFFTRoundTripPow2(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 8, 64, 256, 1024} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		y := IFFT(FFT(x))
		for i := range x {
			if cmplx.Abs(x[i]-y[i]) > 1e-9 {
				t.Fatalf("n=%d: round trip mismatch at %d: %v vs %v", n, i, x[i], y[i])
			}
		}
	}
}

func TestFFTIFFTRoundTripArbitraryN(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{3, 5, 7, 12, 100, 365, 999} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		y := IFFT(FFT(x))
		for i := range x {
			if cmplx.Abs(x[i]-y[i]) > 1e-8 {
				t.Fatalf("n=%d: round trip mismatch at %d: %v vs %v", n, i, x[i], y[i])
			}
		}
	}
}

func TestBluesteinMatchesRadix2(t *testing.T) {
	// Zero-padding a power-of-two signal through Bluestein isn't directly
	// comparable, but a DFT computed naively should match both paths.
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{4, 6, 8, 9, 16, 21} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		want := naiveDFT(x)
		got := FFT(x)
		for k := range want {
			if cmplx.Abs(want[k]-got[k]) > 1e-8 {
				t.Fatalf("n=%d bin %d: FFT=%v, naive=%v", n, k, got[k], want[k])
			}
		}
	}
}

func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var s complex128
		for j := 0; j < n; j++ {
			s += x[j] * cmplx.Exp(complex(0, -2*math.Pi*float64(k*j)/float64(n)))
		}
		out[k] = s
	}
	return out
}

func TestParseval(t *testing.T) {
	// Σ|x|² == (1/N)·Σ|X|² — property-based over random signals.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 16 + rng.Intn(64)
		x := make([]complex128, n)
		var tEnergy float64
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			tEnergy += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
		}
		X := FFT(x)
		var fEnergy float64
		for _, v := range X {
			fEnergy += real(v)*real(v) + imag(v)*imag(v)
		}
		fEnergy /= float64(n)
		return math.Abs(tEnergy-fEnergy) <= 1e-6*math.Max(1, tEnergy)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFFTLinearity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 32
		a := make([]complex128, n)
		b := make([]complex128, n)
		sum := make([]complex128, n)
		for i := range a {
			a[i] = complex(rng.NormFloat64(), 0)
			b[i] = complex(rng.NormFloat64(), 0)
			sum[i] = a[i] + b[i]
		}
		A, B, S := FFT(a), FFT(b), FFT(sum)
		for k := range S {
			if cmplx.Abs(S[k]-(A[k]+B[k])) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestPowerSpectrumPeak(t *testing.T) {
	fs := 96000.0
	n := 4096
	x := Sine(1.0, 15000, fs, 0, n)
	ps := PowerSpectrum(x)
	idx, _ := ArgMax(ps)
	got := BinFrequency(idx, n, fs)
	if math.Abs(got-15000) > fs/float64(n)+1 {
		t.Errorf("peak at %g Hz, want ~15000", got)
	}
}

func TestFindPeaksTwoTones(t *testing.T) {
	fs := 96000.0
	n := 8192
	x := Sine(1.0, 15000, fs, 0, n)
	y := Sine(0.8, 18000, fs, 0.3, n)
	for i := range x {
		x[i] += y[i]
	}
	peaks := FindPeaks(x, fs, 2, 1000, 1)
	if len(peaks) != 2 {
		t.Fatalf("got %d peaks, want 2", len(peaks))
	}
	if math.Abs(peaks[0].Frequency-15000) > 50 {
		t.Errorf("strongest peak at %g, want ~15000", peaks[0].Frequency)
	}
	if math.Abs(peaks[1].Frequency-18000) > 50 {
		t.Errorf("second peak at %g, want ~18000", peaks[1].Frequency)
	}
}

func TestFindPeaksSeparation(t *testing.T) {
	fs := 96000.0
	n := 8192
	x := Sine(1.0, 15000, fs, 0, n)
	// Close tone 200 Hz away must be suppressed by 1 kHz separation.
	y := Sine(0.9, 15200, fs, 0, n)
	for i := range x {
		x[i] += y[i]
	}
	peaks := FindPeaks(x, fs, 5, 1000, 1)
	for i := 0; i < len(peaks); i++ {
		for j := i + 1; j < len(peaks); j++ {
			if math.Abs(peaks[i].Frequency-peaks[j].Frequency) < 1000 {
				t.Errorf("peaks %g and %g violate separation", peaks[i].Frequency, peaks[j].Frequency)
			}
		}
	}
}

func TestGoertzelMatchesFFTBin(t *testing.T) {
	fs := 96000.0
	n := 4096
	x := Sine(2.0, 12000, fs, 0.7, n)
	want := cmplx.Abs(FFTReal(x)[FrequencyBin(12000, n, fs)])
	got := Goertzel(x, 12000, fs)
	if math.Abs(got-want)/want > 1e-6 {
		t.Errorf("Goertzel = %g, FFT bin = %g", got, want)
	}
}

func TestNextPow2(t *testing.T) {
	cases := []struct{ in, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {1023, 1024}, {1024, 1024}, {1025, 2048},
	}
	for _, tc := range cases {
		if got := NextPow2(tc.in); got != tc.want {
			t.Errorf("NextPow2(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestFrequencyBinClamps(t *testing.T) {
	if FrequencyBin(-5, 64, 1000) != 0 {
		t.Error("negative frequency should clamp to bin 0")
	}
	if FrequencyBin(1e9, 64, 1000) != 32 {
		t.Error("above-Nyquist frequency should clamp to N/2")
	}
}

func TestEmptyInputs(t *testing.T) {
	if FFT(nil) != nil {
		t.Error("FFT(nil) should be nil")
	}
	if IFFT(nil) != nil {
		t.Error("IFFT(nil) should be nil")
	}
	if FFTReal(nil) != nil {
		t.Error("FFTReal(nil) should be nil")
	}
	if Goertzel(nil, 100, 1000) != 0 {
		t.Error("Goertzel(nil) should be 0")
	}
	if FindPeaks(nil, 1000, 3, 10, 0) != nil {
		t.Error("FindPeaks(nil) should be nil")
	}
}

func TestAnalyticSignalRealPart(t *testing.T) {
	// Re{analytic(x)} == x for any real signal.
	rng := rand.New(rand.NewSource(9))
	x := make([]float64, 1000)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	a := AnalyticSignal(x)
	if len(a) != len(x) {
		t.Fatalf("length %d, want %d", len(a), len(x))
	}
	for i := range x {
		if math.Abs(real(a[i])-x[i]) > 1e-9 {
			t.Fatalf("Re{analytic}[%d] = %g, want %g", i, real(a[i]), x[i])
		}
	}
}

func TestAnalyticSignalQuadrature(t *testing.T) {
	// analytic(cos) = cos + j·sin = e^{jωt}: constant magnitude, and the
	// imaginary part is the 90°-lagged copy.
	fs := 96000.0
	n := 4096
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Cos(2 * math.Pi * 15000 * float64(i) / fs)
	}
	a := AnalyticSignal(x)
	for i := n / 8; i < 7*n/8; i++ { // away from FFT edge effects
		mag := cmplx.Abs(a[i])
		if math.Abs(mag-1) > 0.02 {
			t.Fatalf("|analytic|[%d] = %g, want ~1", i, mag)
		}
		wantIm := math.Sin(2 * math.Pi * 15000 * float64(i) / fs)
		if math.Abs(imag(a[i])-wantIm) > 0.02 {
			t.Fatalf("Im[%d] = %g, want %g", i, imag(a[i]), wantIm)
		}
	}
}

func TestAnalyticSignalPhaseShift(t *testing.T) {
	// Multiplying the analytic signal by e^{jφ} phase-shifts the carrier:
	// Re{e^{jπ/2}·analytic(cos)} = −sin.
	fs := 96000.0
	n := 4096
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Cos(2 * math.Pi * 12000 * float64(i) / fs)
	}
	a := AnalyticSignal(x)
	rot := cmplx.Exp(complex(0, math.Pi/2))
	for i := n / 8; i < 7*n/8; i++ {
		got := real(rot * a[i])
		want := -math.Sin(2 * math.Pi * 12000 * float64(i) / fs)
		if math.Abs(got-want) > 0.02 {
			t.Fatalf("rotated[%d] = %g, want %g", i, got, want)
		}
	}
}

func TestAnalyticSignalEmpty(t *testing.T) {
	if AnalyticSignal(nil) != nil {
		t.Error("AnalyticSignal(nil) should be nil")
	}
}

func TestSpectrogramLocatesToneBursts(t *testing.T) {
	fs := 96000.0
	n := 16384
	x := make([]float64, n)
	// 15 kHz in the first half, 18 kHz in the second.
	copy(x[:n/2], Sine(1, 15000, fs, 0, n/2))
	copy(x[n/2:], Sine(1, 18000, fs, 0, n/2))
	spec, err := Spectrogram(x, 1024, 512)
	if err != nil {
		t.Fatal(err)
	}
	bin15 := FrequencyBin(15000, 1024, fs)
	bin18 := FrequencyBin(18000, 1024, fs)
	early := spec[2]
	late := spec[len(spec)-3]
	if early[bin15] < 10*early[bin18] {
		t.Errorf("early frame: 15 kHz %g should dominate 18 kHz %g", early[bin15], early[bin18])
	}
	if late[bin18] < 10*late[bin15] {
		t.Errorf("late frame: 18 kHz %g should dominate 15 kHz %g", late[bin18], late[bin15])
	}
}

func TestSpectrogramValidation(t *testing.T) {
	if _, err := Spectrogram(make([]float64, 100), 100, 10); err == nil {
		t.Error("non-power-of-two window should error")
	}
	if _, err := Spectrogram(make([]float64, 100), 64, 0); err == nil {
		t.Error("zero hop should error")
	}
	if _, err := Spectrogram(make([]float64, 10), 64, 8); err == nil {
		t.Error("short input should error")
	}
}
