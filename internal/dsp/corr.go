package dsp

import "math"

// CrossCorrelate returns the sliding cross-correlation of signal x with
// template h: out[i] = Σ_j x[i+j]·h[j], for i in [0, len(x)-len(h)].
// It returns nil if the template is longer than the signal.
func CrossCorrelate(x, h []float64) []float64 {
	if len(h) == 0 || len(h) > len(x) {
		return nil
	}
	n := len(x) - len(h) + 1
	// Use FFT convolution with the reversed template for large inputs.
	if len(x)*len(h) > 64*1024 {
		rev := make([]float64, len(h))
		for i, v := range h {
			rev[len(h)-1-i] = v
		}
		full := Convolve(x, rev)
		out := make([]float64, n)
		copy(out, full[len(h)-1:len(h)-1+n])
		return out
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		var s float64
		for j, hv := range h {
			s += x[i+j] * hv
		}
		out[i] = s
	}
	return out
}

// NormalizedCrossCorrelate returns the zero-mean normalised
// cross-correlation (Pearson correlation per window): both the template
// mean and each window's local mean are removed, so each output lies in
// [-1, 1] and is invariant to the window's amplitude *and* DC offset.
// Local offset invariance matters for preamble detection on projected
// baseband streams, where residual carrier offsets vary along the
// recording.
func NormalizedCrossCorrelate(x, h []float64) []float64 {
	if len(h) == 0 || len(h) > len(x) {
		return nil
	}
	m := len(h)
	hMean := Mean(h)
	hc := make([]float64, m)
	hEnergy := 0.0
	for i, v := range h {
		hc[i] = v - hMean
		hEnergy += hc[i] * hc[i]
	}
	raw := CrossCorrelate(x, hc) // Σ x·(h−h̄); window mean term handled below
	if raw == nil {
		return nil
	}
	// Sliding sums of x and x² via prefix sums.
	sum := make([]float64, len(x)+1)
	sumSq := make([]float64, len(x)+1)
	for i, v := range x {
		sum[i+1] = sum[i] + v
		sumSq[i+1] = sumSq[i] + v*v
	}
	out := make([]float64, len(raw))
	mf := float64(m)
	for i := range raw {
		wSum := sum[i+m] - sum[i]
		wSumSq := sumSq[i+m] - sumSq[i]
		// Numerator: Σ(x−x̄w)(h−h̄) = Σx·(h−h̄) − x̄w·Σ(h−h̄) = raw[i]
		// (the centred template sums to zero).
		xVar := wSumSq - wSum*wSum/mf
		if xVar < 0 {
			xVar = 0
		}
		den := math.Sqrt(xVar * hEnergy)
		if den > 0 {
			out[i] = raw[i] / den
		}
	}
	return out
}

// ArgMax returns the index and value of the maximum element of x.
// It returns (-1, -Inf) for empty input.
func ArgMax(x []float64) (int, float64) {
	idx, best := -1, math.Inf(-1)
	for i, v := range x {
		if v > best {
			idx, best = i, v
		}
	}
	return idx, best
}

// ArgMaxAbs returns the index and value of the element with the largest
// absolute value.
func ArgMaxAbs(x []float64) (int, float64) {
	idx, best := -1, math.Inf(-1)
	for i, v := range x {
		if a := math.Abs(v); a > best {
			idx, best = i, a
		}
	}
	if idx < 0 {
		return -1, math.Inf(-1)
	}
	return idx, x[idx]
}

// Mean returns the arithmetic mean of x (0 for empty input).
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// RMS returns the root-mean-square of x (0 for empty input).
func RMS(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s / float64(len(x)))
}

// Energy returns Σx².
func Energy(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return s
}

// Scale multiplies every element by k in place and returns x.
func Scale(x []float64, k float64) []float64 {
	for i := range x {
		x[i] *= k
	}
	return x
}

// Add accumulates src into dst elementwise over the overlapping prefix and
// returns dst.
func Add(dst, src []float64) []float64 {
	n := len(dst)
	if len(src) < n {
		n = len(src)
	}
	for i := 0; i < n; i++ {
		dst[i] += src[i]
	}
	return dst
}
