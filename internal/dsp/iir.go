package dsp

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Biquad is a single second-order IIR section in direct form II transposed,
// normalised so a0 == 1:
//
//	y[n] = b0·x[n] + b1·x[n-1] + b2·x[n-2] − a1·y[n-1] − a2·y[n-2]
type Biquad struct {
	B0, B1, B2 float64
	A1, A2     float64
}

// Process filters a single sample, updating the section state (z1, z2).
func (q *Biquad) process(x float64, z *[2]float64) float64 {
	y := q.B0*x + z[0]
	z[0] = q.B1*x - q.A1*y + z[1]
	z[1] = q.B2*x - q.A2*y
	return y
}

// IIR is a cascade of biquad sections (a Butterworth filter of arbitrary
// even or odd order; odd orders carry a degenerate first-order section).
type IIR struct {
	sections []Biquad
}

// Sections returns a copy of the biquad cascade.
func (f *IIR) Sections() []Biquad {
	s := make([]Biquad, len(f.sections))
	copy(s, f.sections)
	return s
}

// Filter runs x through the cascade (causal, single pass) and returns the
// output. x is not modified.
func (f *IIR) Filter(x []float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	state := make([][2]float64, len(f.sections))
	for s := range f.sections {
		q := &f.sections[s]
		z := &state[s]
		for i, v := range out {
			out[i] = q.process(v, z)
		}
	}
	return out
}

// FiltFilt runs the filter forward and then backward over x, yielding
// zero-phase filtering with squared magnitude response. This mirrors the
// offline MATLAB decoding the paper's receiver used.
func (f *IIR) FiltFilt(x []float64) []float64 {
	fwd := f.Filter(x)
	// Reverse, filter, reverse.
	for i, j := 0, len(fwd)-1; i < j; i, j = i+1, j-1 {
		fwd[i], fwd[j] = fwd[j], fwd[i]
	}
	bwd := f.Filter(fwd)
	for i, j := 0, len(bwd)-1; i < j; i, j = i+1, j-1 {
		bwd[i], bwd[j] = bwd[j], bwd[i]
	}
	return bwd
}

// Response returns the complex frequency response of the cascade at
// frequency f (Hz) for sample rate fs.
func (f *IIR) Response(freq, fs float64) complex128 {
	w := 2 * math.Pi * freq / fs
	z1 := complex(math.Cos(-w), math.Sin(-w)) // z^-1
	z2 := z1 * z1
	h := complex(1, 0)
	for _, q := range f.sections {
		num := complex(q.B0, 0) + complex(q.B1, 0)*z1 + complex(q.B2, 0)*z2
		den := complex(1, 0) + complex(q.A1, 0)*z1 + complex(q.A2, 0)*z2
		h *= num / den
	}
	return h
}

// butterworthQs returns the per-section Q factors for an order-n
// Butterworth cascade, plus whether a trailing first-order section is
// needed (odd orders).
func butterworthQs(n int) (qs []float64, firstOrder bool) {
	pairs := n / 2
	qs = make([]float64, 0, pairs)
	for k := 0; k < pairs; k++ {
		angle := math.Pi * float64(2*k+1) / float64(2*n)
		qs = append(qs, 1/(2*math.Sin(angle)))
	}
	return qs, n%2 == 1
}

// DesignButterworthLowpass designs an order-n Butterworth lowpass with the
// given -3 dB cutoff (Hz) at sample rate fs, as a biquad cascade via the
// bilinear transform.
func DesignButterworthLowpass(cutoff, fs float64, order int) (*IIR, error) {
	if cutoff <= 0 || cutoff >= fs/2 {
		return nil, fmt.Errorf("dsp: butterworth cutoff %g Hz outside (0, fs/2=%g)", cutoff, fs/2)
	}
	if order < 1 {
		return nil, fmt.Errorf("dsp: butterworth order must be ≥ 1, got %d", order)
	}
	w0 := 2 * math.Pi * cutoff / fs
	qs, addFirst := butterworthQs(order)
	sections := make([]Biquad, 0, len(qs)+1)
	for _, q := range qs {
		sections = append(sections, rbjLowpass(w0, q))
	}
	if addFirst {
		sections = append(sections, firstOrderLowpass(w0))
	}
	return &IIR{sections: sections}, nil
}

// DesignButterworthHighpass designs an order-n Butterworth highpass with
// the given -3 dB cutoff (Hz) at sample rate fs.
func DesignButterworthHighpass(cutoff, fs float64, order int) (*IIR, error) {
	if cutoff <= 0 || cutoff >= fs/2 {
		return nil, fmt.Errorf("dsp: butterworth cutoff %g Hz outside (0, fs/2=%g)", cutoff, fs/2)
	}
	if order < 1 {
		return nil, fmt.Errorf("dsp: butterworth order must be ≥ 1, got %d", order)
	}
	w0 := 2 * math.Pi * cutoff / fs
	qs, addFirst := butterworthQs(order)
	sections := make([]Biquad, 0, len(qs)+1)
	for _, q := range qs {
		sections = append(sections, rbjHighpass(w0, q))
	}
	if addFirst {
		sections = append(sections, firstOrderHighpass(w0))
	}
	return &IIR{sections: sections}, nil
}

// DesignButterworthBandpass designs an order-n Butterworth bandpass
// passing [low, high] Hz via the analog lowpass→bandpass transformation
// and the bilinear transform, yielding n second-order sections (2n poles).
// This is the receiver's per-channel isolation filter (paper §5.1b: "a
// Butterworth filter on each of the receive channels").
func DesignButterworthBandpass(low, high, fs float64, order int) (*IIR, error) {
	if !(0 < low && low < high && high < fs/2) {
		return nil, fmt.Errorf("dsp: bandpass edges (%g, %g) invalid for fs=%g", low, high, fs)
	}
	if order < 1 {
		return nil, fmt.Errorf("dsp: butterworth order must be ≥ 1, got %d", order)
	}
	// Pre-warp the band edges so the digital filter hits them exactly.
	w1 := 2 * fs * math.Tan(math.Pi*low/fs)
	w2 := 2 * fs * math.Tan(math.Pi*high/fs)
	w0 := math.Sqrt(w1 * w2)
	bw := w2 - w1

	// Analog Butterworth prototype poles (unit cutoff, left half-plane).
	proto := make([]complex128, order)
	for k := 0; k < order; k++ {
		theta := math.Pi/2 + math.Pi*float64(2*k+1)/float64(2*order)
		proto[k] = cmplx.Exp(complex(0, theta))
	}

	// Lowpass→bandpass: each prototype pole p maps to the two roots of
	// s² − p·bw·s + w0² = 0.
	analogPoles := make([]complex128, 0, 2*order)
	for _, p := range proto {
		pb := p * complex(bw, 0)
		disc := cmplx.Sqrt(pb*pb - complex(4*w0*w0, 0))
		analogPoles = append(analogPoles, (pb+disc)/2, (pb-disc)/2)
	}

	// Bilinear transform to z-domain.
	zPoles := make([]complex128, len(analogPoles))
	for i, s := range analogPoles {
		zPoles[i] = (complex(2*fs, 0) + s) / (complex(2*fs, 0) - s)
	}

	// Pair poles into conjugate pairs to form real-coefficient biquads.
	pairs, err := conjugatePairs(zPoles)
	if err != nil {
		return nil, fmt.Errorf("dsp: bandpass pole pairing: %w", err)
	}

	// Each section: numerator (1 − z⁻²) (one zero at z=1, one at z=−1,
	// from the n analog zeros at s=0 and n at s=∞), gain-normalised at
	// the digital centre frequency.
	fCenter := math.Atan(w0/(2*fs)) * fs / math.Pi // digital Hz of analog w0
	sections := make([]Biquad, 0, len(pairs))
	sec := IIR{sections: make([]Biquad, 1)} // reused per-section probe
	for _, pr := range pairs {
		a1 := -2 * real(pr[0])
		a2 := real(pr[0] * pr[1])
		if math.Abs(imag(pr[0]+pr[1])) > 1e-6 {
			return nil, fmt.Errorf("dsp: bandpass produced complex coefficients")
		}
		q := Biquad{B0: 1, B1: 0, B2: -1, A1: a1, A2: a2}
		sec.sections[0] = q
		g := cmplx.Abs(sec.Response(fCenter, fs))
		if g == 0 {
			return nil, fmt.Errorf("dsp: degenerate bandpass section")
		}
		q.B0 /= g
		q.B2 /= g
		sections = append(sections, q)
	}
	return &IIR{sections: sections}, nil
}

// conjugatePairs groups a pole set (closed under conjugation, or real)
// into pairs whose products yield real-coefficient quadratics.
func conjugatePairs(poles []complex128) ([][2]complex128, error) {
	if len(poles)%2 != 0 {
		return nil, fmt.Errorf("odd pole count %d", len(poles))
	}
	const tol = 1e-8
	used := make([]bool, len(poles))
	pairs := make([][2]complex128, 0, len(poles)/2)
	// First pair complex poles with their conjugates.
	for i, p := range poles {
		if used[i] || math.Abs(imag(p)) <= tol {
			continue
		}
		found := false
		for j := i + 1; j < len(poles); j++ {
			if used[j] {
				continue
			}
			if cmplx.Abs(poles[j]-cmplx.Conj(p)) < 1e-6*(1+cmplx.Abs(p)) {
				used[i], used[j] = true, true
				pairs = append(pairs, [2]complex128{p, poles[j]})
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("no conjugate for pole %v", p)
		}
	}
	// Then pair remaining real poles among themselves.
	reals := make([]int, 0, len(poles))
	for i := range poles {
		if !used[i] {
			reals = append(reals, i)
		}
	}
	for k := 0; k+1 < len(reals); k += 2 {
		pairs = append(pairs, [2]complex128{poles[reals[k]], poles[reals[k+1]]})
	}
	if len(reals)%2 != 0 {
		return nil, fmt.Errorf("unpaired real pole")
	}
	return pairs, nil
}

// rbjLowpass returns the RBJ audio-cookbook lowpass biquad for digital
// angular frequency w0 and quality factor q.
func rbjLowpass(w0, q float64) Biquad {
	cosw := math.Cos(w0)
	alpha := math.Sin(w0) / (2 * q)
	a0 := 1 + alpha
	return Biquad{
		B0: (1 - cosw) / 2 / a0,
		B1: (1 - cosw) / a0,
		B2: (1 - cosw) / 2 / a0,
		A1: -2 * cosw / a0,
		A2: (1 - alpha) / a0,
	}
}

func rbjHighpass(w0, q float64) Biquad {
	cosw := math.Cos(w0)
	alpha := math.Sin(w0) / (2 * q)
	a0 := 1 + alpha
	return Biquad{
		B0: (1 + cosw) / 2 / a0,
		B1: -(1 + cosw) / a0,
		B2: (1 + cosw) / 2 / a0,
		A1: -2 * cosw / a0,
		A2: (1 - alpha) / a0,
	}
}

// firstOrderLowpass returns a first-order lowpass expressed as a
// degenerate biquad (B2 = A2 = 0), from the bilinear transform of
// H(s) = 1/(1+s/ωc).
func firstOrderLowpass(w0 float64) Biquad {
	k := math.Tan(w0 / 2)
	a0 := k + 1
	return Biquad{
		B0: k / a0,
		B1: k / a0,
		A1: (k - 1) / a0,
	}
}

func firstOrderHighpass(w0 float64) Biquad {
	k := math.Tan(w0 / 2)
	a0 := k + 1
	return Biquad{
		B0: 1 / a0,
		B1: -1 / a0,
		A1: (k - 1) / a0,
	}
}
