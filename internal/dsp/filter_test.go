package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWindowEndpoints(t *testing.T) {
	for _, w := range []Window{Hann, Blackman} {
		c := w.Coefficients(64)
		if math.Abs(c[0]) > 1e-9 || math.Abs(c[63]) > 1e-9 {
			t.Errorf("%v window should be ~0 at endpoints, got %g, %g", w, c[0], c[63])
		}
	}
	c := Rectangular.Coefficients(10)
	for _, v := range c {
		if v != 1 {
			t.Errorf("rectangular window should be all ones")
		}
	}
}

func TestWindowPeakAtCentre(t *testing.T) {
	for _, w := range []Window{Hann, Hamming, Blackman} {
		c := w.Coefficients(65)
		idx, _ := ArgMax(c)
		if idx != 32 {
			t.Errorf("%v window peak at %d, want 32", w, idx)
		}
		if math.Abs(c[32]-1) > 1e-9 {
			t.Errorf("%v window peak %g, want 1", w, c[32])
		}
	}
}

func TestWindowSingleCoefficient(t *testing.T) {
	for _, w := range []Window{Rectangular, Hann, Hamming, Blackman} {
		c := w.Coefficients(1)
		if len(c) != 1 || c[0] != 1 {
			t.Errorf("%v.Coefficients(1) = %v, want [1]", w, c)
		}
	}
}

func TestConvolveKnown(t *testing.T) {
	got := Convolve([]float64{1, 2, 3}, []float64{0, 1, 0.5})
	want := []float64{0, 1, 2.5, 4, 1.5}
	if len(got) != len(want) {
		t.Fatalf("length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if !approx(got[i], want[i], 1e-12) {
			t.Errorf("conv[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestConvolveFFTPathMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := make([]float64, 700)
	b := make([]float64, 100)
	for i := range a {
		a[i] = rng.NormFloat64()
	}
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	// Direct (small product path).
	direct := make([]float64, len(a)+len(b)-1)
	for i, av := range a {
		for j, bv := range b {
			direct[i+j] += av * bv
		}
	}
	got := Convolve(a, b) // 700*100 = 70000 > threshold ⇒ FFT path
	for i := range direct {
		if math.Abs(got[i]-direct[i]) > 1e-8 {
			t.Fatalf("fft conv mismatch at %d: %g vs %g", i, got[i], direct[i])
		}
	}
}

func TestConvolveCommutative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := make([]float64, 5+rng.Intn(20))
		b := make([]float64, 5+rng.Intn(20))
		for i := range a {
			a[i] = rng.NormFloat64()
		}
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		ab := Convolve(a, b)
		ba := Convolve(b, a)
		for i := range ab {
			if math.Abs(ab[i]-ba[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestLowpassFIRResponse(t *testing.T) {
	fs := 96000.0
	fir, err := DesignLowpassFIR(5000, fs, 127, Hamming)
	if err != nil {
		t.Fatal(err)
	}
	// Passband tone passes with ~unit gain, stopband tone is attenuated.
	n := 8192
	pass := fir.Filter(Sine(1, 1000, fs, 0, n))
	stop := fir.Filter(Sine(1, 20000, fs, 0, n))
	gPass := RMS(pass[1000:n-1000]) / (1 / math.Sqrt2)
	gStop := RMS(stop[1000:n-1000]) / (1 / math.Sqrt2)
	if gPass < 0.95 || gPass > 1.05 {
		t.Errorf("passband gain %g, want ~1", gPass)
	}
	if gStop > 0.01 {
		t.Errorf("stopband gain %g, want < 0.01", gStop)
	}
}

func TestBandpassFIRResponse(t *testing.T) {
	fs := 96000.0
	fir, err := DesignBandpassFIR(14000, 16000, fs, 255, Hamming)
	if err != nil {
		t.Fatal(err)
	}
	n := 8192
	in := fir.Filter(Sine(1, 15000, fs, 0, n))
	below := fir.Filter(Sine(1, 10000, fs, 0, n))
	above := fir.Filter(Sine(1, 20000, fs, 0, n))
	gIn := RMS(in[1000:n-1000]) * math.Sqrt2
	gBelow := RMS(below[1000:n-1000]) * math.Sqrt2
	gAbove := RMS(above[1000:n-1000]) * math.Sqrt2
	if gIn < 0.9 || gIn > 1.1 {
		t.Errorf("in-band gain %g, want ~1", gIn)
	}
	if gBelow > 0.05 || gAbove > 0.05 {
		t.Errorf("out-of-band gains %g/%g, want < 0.05", gBelow, gAbove)
	}
}

func TestFIRDesignErrors(t *testing.T) {
	if _, err := DesignLowpassFIR(50000, 96000, 63, Hamming); err == nil {
		t.Error("cutoff above Nyquist should error")
	}
	if _, err := DesignLowpassFIR(-1, 96000, 63, Hamming); err == nil {
		t.Error("negative cutoff should error")
	}
	if _, err := DesignLowpassFIR(1000, 96000, 1, Hamming); err == nil {
		t.Error("too few taps should error")
	}
	if _, err := DesignBandpassFIR(16000, 14000, 96000, 63, Hamming); err == nil {
		t.Error("inverted band edges should error")
	}
	if _, err := NewFIR(nil); err == nil {
		t.Error("empty taps should error")
	}
}

func TestButterworthLowpassMagnitude(t *testing.T) {
	fs := 96000.0
	for _, order := range []int{1, 2, 3, 4, 6} {
		lp, err := DesignButterworthLowpass(1000, fs, order)
		if err != nil {
			t.Fatal(err)
		}
		// -3 dB at cutoff.
		if g := cmplx.Abs(lp.Response(1000, fs)); math.Abs(g-1/math.Sqrt2) > 0.02 {
			t.Errorf("order %d: |H(fc)| = %g, want ~0.707", order, g)
		}
		// ~1 at DC-ish.
		if g := cmplx.Abs(lp.Response(10, fs)); math.Abs(g-1) > 0.01 {
			t.Errorf("order %d: |H(10Hz)| = %g, want ~1", order, g)
		}
		// Roll-off ≈ 6·order dB/octave: at 4·fc attenuation ≥ order·12 - 3 dB.
		g := cmplx.Abs(lp.Response(4000, fs))
		wantDB := float64(order)*12 - 4
		if -20*math.Log10(g) < wantDB {
			t.Errorf("order %d: attenuation at 4fc = %g dB, want ≥ %g", order, -20*math.Log10(g), wantDB)
		}
	}
}

func TestButterworthHighpassMagnitude(t *testing.T) {
	fs := 96000.0
	hp, err := DesignButterworthHighpass(10000, fs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g := cmplx.Abs(hp.Response(10000, fs)); math.Abs(g-1/math.Sqrt2) > 0.02 {
		t.Errorf("|H(fc)| = %g, want ~0.707", g)
	}
	if g := cmplx.Abs(hp.Response(30000, fs)); math.Abs(g-1) > 0.02 {
		t.Errorf("|H(3fc)| = %g, want ~1", g)
	}
	if g := cmplx.Abs(hp.Response(2500, fs)); g > 0.02 {
		t.Errorf("|H(fc/4)| = %g, want ≪ 1", g)
	}
}

func TestButterworthBandpass(t *testing.T) {
	fs := 96000.0
	bp, err := DesignButterworthBandpass(14000, 16000, fs, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g := cmplx.Abs(bp.Response(15000, fs)); g < 0.95 {
		t.Errorf("centre gain %g, want ~1", g)
	}
	for _, f := range []float64{5000, 11000, 19000, 30000} {
		if g := cmplx.Abs(bp.Response(f, fs)); g > 0.12 {
			t.Errorf("gain at %g Hz = %g, want small", f, g)
		}
	}
}

func TestButterworthFilterTimeDomain(t *testing.T) {
	fs := 96000.0
	lp, err := DesignButterworthLowpass(2000, fs, 4)
	if err != nil {
		t.Fatal(err)
	}
	n := 16384
	mix := Sine(1, 500, fs, 0, n)
	high := Sine(1, 20000, fs, 0, n)
	for i := range mix {
		mix[i] += high[i]
	}
	out := lp.Filter(mix)
	settled := out[n/2:]
	// The 20 kHz component must be crushed; the 500 Hz survives (the
	// causal filter phase-shifts it, so compare tone powers, not samples).
	p500 := Goertzel(settled, 500, fs) / float64(len(settled))
	p20k := Goertzel(settled, 20000, fs) / float64(len(settled))
	if p20k > 0.01*p500 {
		t.Errorf("20 kHz leakage: %g vs 500 Hz %g", p20k, p500)
	}
	if r := RMS(settled); math.Abs(r-1/math.Sqrt2) > 0.05 {
		t.Errorf("passband tone RMS %g, want ~0.707", r)
	}
}

func TestFiltFiltZeroPhase(t *testing.T) {
	fs := 96000.0
	lp, err := DesignButterworthLowpass(2000, fs, 4)
	if err != nil {
		t.Fatal(err)
	}
	n := 16384
	in := Sine(1, 500, fs, 0, n)
	out := lp.FiltFilt(in)
	// Zero-phase: the filtered tone should align with the input (no lag).
	var dot, inE, outE float64
	for i := n / 4; i < 3*n/4; i++ {
		dot += in[i] * out[i]
		inE += in[i] * in[i]
		outE += out[i] * out[i]
	}
	corr := dot / math.Sqrt(inE*outE)
	if corr < 0.999 {
		t.Errorf("filtfilt correlation with input %g, want ~1 (zero phase)", corr)
	}
}

func TestIIRDesignErrors(t *testing.T) {
	if _, err := DesignButterworthLowpass(50000, 96000, 4); err == nil {
		t.Error("cutoff above Nyquist should error")
	}
	if _, err := DesignButterworthLowpass(100, 96000, 0); err == nil {
		t.Error("order 0 should error")
	}
	if _, err := DesignButterworthBandpass(5, 4, 96000, 2); err == nil {
		t.Error("inverted edges should error")
	}
}

func TestMovingAverage(t *testing.T) {
	x := []float64{1, 1, 1, 1, 1}
	got := MovingAverage(x, 3)
	for i, v := range got {
		if !approx(v, 1, 1e-12) {
			t.Errorf("constant input: out[%d] = %g", i, v)
		}
	}
	got = MovingAverage([]float64{0, 3, 0}, 3)
	if !approx(got[1], 1, 1e-12) {
		t.Errorf("centre = %g, want 1", got[1])
	}
}
