package dsp

import (
	"math"
	"math/rand"
	"testing"
)

// testSignal is a deterministic broadband test vector: a few tones plus
// seeded noise, enough to exercise every biquad state path.
func testSignal(n int) []float64 {
	rng := rand.New(rand.NewSource(42))
	x := make([]float64, n)
	for i := range x {
		t := float64(i)
		x[i] = math.Sin(2*math.Pi*0.01*t) + 0.5*math.Sin(2*math.Pi*0.13*t+0.7) + 0.2*rng.NormFloat64()
	}
	return x
}

func TestIIRStreamMatchesBatchFilter(t *testing.T) {
	lp, err := DesignButterworthLowpass(1500, 48000, 4)
	if err != nil {
		t.Fatal(err)
	}
	x := testSignal(10000)
	want := lp.Filter(x)
	for _, block := range []int{1, 3, 7, 64, 256, 999, len(x)} {
		st := lp.Stream()
		got := make([]float64, 0, len(x))
		buf := make([]float64, block)
		for off := 0; off < len(x); off += block {
			end := off + block
			if end > len(x) {
				end = len(x)
			}
			got = append(got, st.Process(buf, x[off:end])...)
		}
		if len(got) != len(want) {
			t.Fatalf("block %d: %d samples, want %d", block, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("block %d: sample %d: got %v want %v (stream must be bit-identical to batch)",
					block, i, got[i], want[i])
			}
		}
	}
}

func TestIIRStreamInPlace(t *testing.T) {
	lp, err := DesignButterworthLowpass(1000, 8000, 2)
	if err != nil {
		t.Fatal(err)
	}
	x := testSignal(512)
	want := lp.Filter(x)
	st := lp.Stream()
	inPlace := append([]float64(nil), x...)
	got := st.Process(inPlace, inPlace)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("in-place sample %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func TestIIRStreamReset(t *testing.T) {
	lp, err := DesignButterworthLowpass(1000, 8000, 4)
	if err != nil {
		t.Fatal(err)
	}
	x := testSignal(256)
	st := lp.Stream()
	first := append([]float64(nil), st.Process(make([]float64, len(x)), x)...)
	st.Reset()
	second := st.Process(make([]float64, len(x)), x)
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("after Reset sample %d differs: %v vs %v", i, first[i], second[i])
		}
	}
}

func TestDownmixerMatchesDownconvert(t *testing.T) {
	const fs, fc = 96000.0, 15000.0
	x := testSignal(20000)
	want := Downconvert(x, fc, fs)
	for _, block := range []int{1, 17, 256, 4096, len(x)} {
		m := NewDownmixer(fc, fs)
		got := make([]complex128, 0, len(x))
		buf := make([]complex128, block)
		for off := 0; off < len(x); off += block {
			end := off + block
			if end > len(x) {
				end = len(x)
			}
			got = append(got, m.MixInto(buf, x[off:end])...)
		}
		for i := range got {
			// The batch mixer computes phase as w·i without wrapping, the
			// streaming mixer accumulates and wraps — identical up to
			// accumulated rounding, which stays far below 1e-6 here.
			if d := cmplxAbs(got[i] - want[i]); d > 1e-6 {
				t.Fatalf("block %d: sample %d: |Δ| = %g (got %v want %v)", block, i, d, got[i], want[i])
			}
		}
	}
}

func cmplxAbs(c complex128) float64 { return math.Hypot(real(c), imag(c)) }
