// Package dsp implements the signal-processing primitives the PAB receiver
// chain is built from: FFTs, window functions, FIR and Butterworth IIR
// filters, mixing/downconversion, envelope detection and correlation.
//
// Everything operates on float64 (real) or complex128 sample slices. The
// implementations favour clarity and numerical robustness over ultimate
// speed; at the simulator's sample rates (≤192 kHz) they are far from the
// bottleneck.
package dsp

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// FFT returns the discrete Fourier transform of x. The input may be of any
// length: power-of-two lengths use an iterative radix-2 Cooley-Tukey
// transform, other lengths use Bluestein's chirp-z algorithm. The input
// slice is not modified.
func FFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	out := make([]complex128, n)
	copy(out, x)
	if n&(n-1) == 0 {
		fftRadix2(out, false)
		return out
	}
	return bluestein(out, false)
}

// IFFT returns the inverse discrete Fourier transform of x, normalised by
// 1/N so that IFFT(FFT(x)) == x.
func IFFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	out := make([]complex128, n)
	copy(out, x)
	if n&(n-1) == 0 {
		fftRadix2(out, true)
	} else {
		out = bluestein(out, true)
	}
	inv := complex(1/float64(n), 0)
	for i := range out {
		out[i] *= inv
	}
	return out
}

// FFTReal converts x to complex and returns its DFT.
func FFTReal(x []float64) []complex128 {
	c := make([]complex128, len(x))
	for i, v := range x {
		c[i] = complex(v, 0)
	}
	if len(c) == 0 {
		return nil
	}
	if len(c)&(len(c)-1) == 0 {
		fftRadix2(c, false)
		return c
	}
	return bluestein(c, false)
}

// fftRadix2 transforms x in place. len(x) must be a power of two.
// When inverse is true the conjugate transform is computed (without the
// 1/N normalisation).
func fftRadix2(x []complex128, inverse bool) {
	n := len(x)
	if n <= 1 {
		return
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := 2 * math.Pi / float64(size) * sign
		wStep := cmplx.Exp(complex(0, step))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wStep
			}
		}
	}
}

// bluestein computes the DFT of x (any length) via the chirp-z transform,
// which reduces to three power-of-two FFTs.
func bluestein(x []complex128, inverse bool) []complex128 {
	n := len(x)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	// Chirp: w[k] = exp(sign·iπk²/n). Compute k² mod 2n to avoid overflow
	// and precision loss for large k.
	chirp := make([]complex128, n)
	for k := 0; k < n; k++ {
		kk := (int64(k) * int64(k)) % int64(2*n)
		chirp[k] = cmplx.Exp(complex(0, sign*math.Pi*float64(kk)/float64(n)))
	}
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	a := make([]complex128, m)
	b := make([]complex128, m)
	for k := 0; k < n; k++ {
		a[k] = x[k] * chirp[k]
		b[k] = cmplx.Conj(chirp[k])
	}
	for k := 1; k < n; k++ {
		b[m-k] = cmplx.Conj(chirp[k])
	}
	fftRadix2(a, false)
	fftRadix2(b, false)
	for i := range a {
		a[i] *= b[i]
	}
	fftRadix2(a, true)
	out := make([]complex128, n)
	scale := complex(1/float64(m), 0)
	for k := 0; k < n; k++ {
		out[k] = a[k] * scale * chirp[k]
	}
	return out
}

// Magnitudes returns |x[i]| for each element.
func Magnitudes(x []complex128) []float64 {
	m := make([]float64, len(x))
	for i, v := range x {
		m[i] = cmplx.Abs(v)
	}
	return m
}

// PowerSpectrum returns |X[k]|² of the DFT of x, for bins 0..N/2 (real
// input spectra are symmetric, so only the first half is meaningful).
func PowerSpectrum(x []float64) []float64 {
	X := FFTReal(x)
	half := len(X)/2 + 1
	ps := make([]float64, half)
	for i := 0; i < half; i++ {
		re, im := real(X[i]), imag(X[i])
		ps[i] = re*re + im*im
	}
	return ps
}

// BinFrequency returns the centre frequency in Hz of FFT bin k for an
// N-point transform at sample rate fs.
func BinFrequency(k, n int, fs float64) float64 {
	return float64(k) * fs / float64(n)
}

// FrequencyBin returns the FFT bin index closest to frequency f for an
// N-point transform at sample rate fs.
func FrequencyBin(f float64, n int, fs float64) int {
	k := int(math.Round(f * float64(n) / fs))
	if k < 0 {
		k = 0
	}
	if k > n/2 {
		k = n / 2
	}
	return k
}

// Peak holds a detected spectral peak.
type Peak struct {
	Bin       int
	Frequency float64 // Hz
	Power     float64 // linear power, |X[k]|²
}

// FindPeaks locates up to maxPeaks local maxima in the power spectrum of x
// (sampled at fs), each at least minSeparation Hz from stronger peaks, and
// at least minPower in linear power. Peaks are returned strongest first.
// It is the receiver's mechanism for identifying the downlink carrier
// frequencies (paper §5.1b: "identifies the different transmitted
// frequencies on the downlink using FFT and peak detection").
func FindPeaks(x []float64, fs float64, maxPeaks int, minSeparation, minPower float64) []Peak {
	if len(x) == 0 || maxPeaks <= 0 {
		return nil
	}
	ps := PowerSpectrum(x)
	n := len(x)
	type cand struct {
		bin int
		pow float64
	}
	// Candidate counts are data-dependent (every local maximum above the
	// power floor); start from a modest capacity and let growth amortise.
	cands := make([]cand, 0, 32)
	for k := 1; k < len(ps)-1; k++ {
		if ps[k] >= ps[k-1] && ps[k] >= ps[k+1] && ps[k] >= minPower {
			cands = append(cands, cand{k, ps[k]})
		}
	}
	// Selection sort of the strongest candidates with separation control;
	// candidate counts are small (spectral maxima only).
	peaks := make([]Peak, 0, maxPeaks)
	used := make([]bool, len(cands))
	for len(peaks) < maxPeaks {
		best, bestIdx := -1.0, -1
		for i, c := range cands {
			if used[i] || c.pow <= best {
				continue
			}
			f := BinFrequency(c.bin, n, fs)
			tooClose := false
			for _, p := range peaks {
				if math.Abs(p.Frequency-f) < minSeparation {
					tooClose = true
					break
				}
			}
			if !tooClose {
				best, bestIdx = c.pow, i
			} else {
				used[i] = true
			}
		}
		if bestIdx < 0 {
			break
		}
		used[bestIdx] = true
		b := cands[bestIdx].bin
		peaks = append(peaks, Peak{
			Bin:       b,
			Frequency: BinFrequency(b, n, fs),
			Power:     cands[bestIdx].pow,
		})
	}
	return peaks
}

// Goertzel computes the DFT magnitude of x at a single frequency f (Hz,
// sample rate fs) using the Goertzel recurrence. It is cheaper than a full
// FFT when only one bin is needed (e.g. carrier power probes).
func Goertzel(x []float64, f, fs float64) float64 {
	n := len(x)
	if n == 0 {
		return 0
	}
	k := f / fs * float64(n)
	w := 2 * math.Pi * k / float64(n)
	coeff := 2 * math.Cos(w)
	var s0, s1, s2 float64
	for _, v := range x {
		s0 = v + coeff*s1 - s2
		s2 = s1
		s1 = s0
	}
	power := s1*s1 + s2*s2 - coeff*s1*s2
	if power < 0 {
		power = 0
	}
	return math.Sqrt(power)
}

// NextPow2 returns the smallest power of two ≥ n (and ≥ 1).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

func validateLength(n int, what string) error {
	if n <= 0 {
		return fmt.Errorf("dsp: %s length must be positive, got %d", what, n)
	}
	return nil
}

// AnalyticSignal returns the complex analytic signal of x via the FFT
// method (negative frequencies zeroed, positive doubled): its real part
// is x and its imaginary part the Hilbert transform. Narrowband
// backscatter applies a complex reflection coefficient to the carrier —
// magnitude scales and phase shifts — which is exactly multiplication of
// the analytic signal.
func AnalyticSignal(x []float64) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	m := NextPow2(n)
	buf := make([]complex128, m)
	for i, v := range x {
		buf[i] = complex(v, 0)
	}
	fftRadix2(buf, false)
	// Keep DC and Nyquist, double positive frequencies, zero negatives.
	for k := 1; k < m/2; k++ {
		buf[k] *= 2
	}
	for k := m/2 + 1; k < m; k++ {
		buf[k] = 0
	}
	fftRadix2(buf, true)
	inv := complex(1/float64(m), 0)
	out := make([]complex128, n)
	for i := range out {
		out[i] = buf[i] * inv
	}
	return out
}

// Spectrogram computes the magnitude STFT of x: frames of winLen samples
// (Hann-windowed) every hop samples, each transformed and reduced to
// bins 0..winLen/2. Rows are time frames, columns frequency bins — the
// offline inspection view the paper's Audacity workflow provided.
func Spectrogram(x []float64, winLen, hop int) ([][]float64, error) {
	if winLen < 4 || winLen&(winLen-1) != 0 {
		return nil, fmt.Errorf("dsp: spectrogram window must be a power of two ≥ 4, got %d", winLen)
	}
	if hop < 1 {
		return nil, fmt.Errorf("dsp: hop must be ≥ 1, got %d", hop)
	}
	if len(x) < winLen {
		return nil, fmt.Errorf("dsp: input (%d) shorter than window (%d)", len(x), winLen)
	}
	win := Hann.Coefficients(winLen)
	nFrames := (len(x)-winLen)/hop + 1
	nBins := winLen/2 + 1
	out := make([][]float64, nFrames)
	// One flat backing array for all rows: a per-frame make turned the
	// frame loop into nFrames allocations and scattered the rows across
	// the heap.
	backing := make([]float64, nFrames*nBins)
	buf := make([]complex128, winLen)
	for f := 0; f < nFrames; f++ {
		start := f * hop
		for i := 0; i < winLen; i++ {
			buf[i] = complex(x[start+i]*win[i], 0)
		}
		fftRadix2(buf, false)
		row := backing[f*nBins : (f+1)*nBins : (f+1)*nBins]
		for k := range row {
			row[k] = cmplx.Abs(buf[k])
		}
		out[f] = row
	}
	return out, nil
}
