package dsp

import (
	"fmt"
	"math"
)

// LMSEqualizer is an adaptive linear transversal equalizer trained with
// the least-mean-squares rule. Tank reverberation smears backscatter
// symbols into each other at high bitrates (the ISI floor behind Fig 8's
// high-rate SNR); a short equalizer trained on the known preamble can
// claw part of that back — one of the receiver upgrades the paper's
// "higher throughputs" future-work direction implies.
type LMSEqualizer struct {
	taps []float64
	mu   float64
}

// NewLMSEqualizer creates an equalizer with the given tap count (odd,
// centre-referenced) and adaptation step µ.
func NewLMSEqualizer(taps int, mu float64) (*LMSEqualizer, error) {
	if taps < 1 || taps%2 == 0 {
		return nil, fmt.Errorf("dsp: equalizer taps must be odd and ≥1, got %d", taps)
	}
	if mu <= 0 || mu >= 1 {
		return nil, fmt.Errorf("dsp: LMS step µ must be in (0,1), got %g", mu)
	}
	eq := &LMSEqualizer{taps: make([]float64, taps), mu: mu}
	eq.taps[taps/2] = 1 // start at identity
	return eq, nil
}

// Taps returns a copy of the current tap vector.
func (e *LMSEqualizer) Taps() []float64 {
	out := make([]float64, len(e.taps))
	copy(out, e.taps)
	return out
}

// output computes the equalizer output at sample i of x (centre tap
// aligned with x[i]).
func (e *LMSEqualizer) output(x []float64, i int) float64 {
	half := len(e.taps) / 2
	var y float64
	for k, w := range e.taps {
		j := i + k - half
		if j >= 0 && j < len(x) {
			y += w * x[j]
		}
	}
	return y
}

// Train adapts the taps so the equalized received sequence approaches
// the desired (training) sequence, iterating `epochs` passes. It
// returns the final mean squared error. The training signal is the
// known preamble in a receiver.
func (e *LMSEqualizer) Train(received, desired []float64, epochs int) (float64, error) {
	n := len(received)
	if len(desired) < n {
		n = len(desired)
	}
	if n <= len(e.taps) {
		return 0, fmt.Errorf("dsp: training sequence (%d) shorter than the equalizer (%d taps)", n, len(e.taps))
	}
	if epochs < 1 {
		epochs = 1
	}
	// Normalised LMS: scale the update by the input power so µ is
	// dimensionless and stable across signal levels.
	power := 0.0
	for i := 0; i < n; i++ {
		power += received[i] * received[i]
	}
	power /= float64(n)
	if power == 0 {
		return 0, fmt.Errorf("dsp: training input has zero power")
	}
	half := len(e.taps) / 2
	mse := 0.0
	for ep := 0; ep < epochs; ep++ {
		mse = 0
		for i := half; i < n-half; i++ {
			y := e.output(received, i)
			err := desired[i] - y
			mse += err * err
			g := e.mu * err / (power * float64(len(e.taps)))
			for k := range e.taps {
				e.taps[k] += g * received[i+k-half]
			}
		}
		mse /= float64(n - 2*half)
	}
	return mse, nil
}

// Equalize applies the trained taps to a sequence.
func (e *LMSEqualizer) Equalize(x []float64) []float64 {
	out := make([]float64, len(x))
	for i := range x {
		out[i] = e.output(x, i)
	}
	return out
}

// ResidualISI measures how much a channel's impulse response deviates
// from a pure delay: 1 − max|h|²/Σ|h|². 0 means ISI-free.
func ResidualISI(h []float64) float64 {
	if len(h) == 0 {
		return 0
	}
	var total, peak float64
	for _, v := range h {
		total += v * v
		if a := math.Abs(v); a*a > peak {
			peak = a * a
		}
	}
	if total == 0 {
		return 0
	}
	return 1 - peak/total
}
