package dsp

import (
	"fmt"
	"math"
)

// FIR is a finite-impulse-response filter defined by its tap coefficients.
// The zero value is unusable; construct with one of the design functions or
// NewFIR.
type FIR struct {
	taps []float64
}

// NewFIR creates a filter from explicit tap coefficients. The taps are
// copied.
func NewFIR(taps []float64) (*FIR, error) {
	if err := validateLength(len(taps), "FIR taps"); err != nil {
		return nil, err
	}
	t := make([]float64, len(taps))
	copy(t, taps)
	return &FIR{taps: t}, nil
}

// Taps returns a copy of the filter's coefficients.
func (f *FIR) Taps() []float64 {
	t := make([]float64, len(f.taps))
	copy(t, f.taps)
	return t
}

// Len returns the number of taps.
func (f *FIR) Len() int { return len(f.taps) }

// GroupDelay returns the filter's group delay in samples (linear-phase
// filters only, which all the design functions here produce).
func (f *FIR) GroupDelay() float64 { return float64(len(f.taps)-1) / 2 }

// Filter convolves x with the filter taps and returns the "same"-length
// output aligned so that output[i] corresponds to input[i] delayed by the
// group delay.
func (f *FIR) Filter(x []float64) []float64 {
	full := Convolve(x, f.taps)
	delay := (len(f.taps) - 1) / 2
	out := make([]float64, len(x))
	copy(out, full[delay:delay+len(x)])
	return out
}

// Convolve returns the full linear convolution of a and b
// (length len(a)+len(b)-1). Inputs above a size threshold are convolved via
// FFT for speed; small inputs use the direct method.
func Convolve(a, b []float64) []float64 {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	n := len(a) + len(b) - 1
	// Direct method cost ~ len(a)*len(b); FFT cost ~ 3·m·log2(m).
	if len(a)*len(b) <= 16*1024 {
		out := make([]float64, n)
		for i, av := range a {
			for j, bv := range b {
				out[i+j] += av * bv
			}
		}
		return out
	}
	m := NextPow2(n)
	fa := make([]complex128, m)
	fb := make([]complex128, m)
	for i, v := range a {
		fa[i] = complex(v, 0)
	}
	for i, v := range b {
		fb[i] = complex(v, 0)
	}
	fftRadix2(fa, false)
	fftRadix2(fb, false)
	for i := range fa {
		fa[i] *= fb[i]
	}
	fftRadix2(fa, true)
	out := make([]float64, n)
	inv := 1 / float64(m)
	for i := 0; i < n; i++ {
		out[i] = real(fa[i]) * inv
	}
	return out
}

// DesignLowpassFIR designs a windowed-sinc lowpass filter with the given
// cutoff (Hz), sample rate (Hz) and tap count. The tap count is forced odd
// so the filter has integer group delay. The passband gain is normalised
// to exactly 1 at DC.
func DesignLowpassFIR(cutoff, fs float64, taps int, w Window) (*FIR, error) {
	if cutoff <= 0 || cutoff >= fs/2 {
		return nil, fmt.Errorf("dsp: lowpass cutoff %g Hz outside (0, fs/2=%g)", cutoff, fs/2)
	}
	if taps < 3 {
		return nil, fmt.Errorf("dsp: need at least 3 taps, got %d", taps)
	}
	if taps%2 == 0 {
		taps++
	}
	fc := cutoff / fs // normalised cutoff, cycles/sample
	mid := (taps - 1) / 2
	h := make([]float64, taps)
	for i := range h {
		m := float64(i - mid)
		if m == 0 {
			h[i] = 2 * fc
		} else {
			h[i] = math.Sin(2*math.Pi*fc*m) / (math.Pi * m)
		}
	}
	win := w.Coefficients(taps)
	sum := 0.0
	for i := range h {
		h[i] *= win[i]
		sum += h[i]
	}
	for i := range h {
		h[i] /= sum
	}
	return &FIR{taps: h}, nil
}

// DesignBandpassFIR designs a windowed-sinc bandpass filter passing
// [low, high] Hz. The gain is normalised to 1 at the band centre.
func DesignBandpassFIR(low, high, fs float64, taps int, w Window) (*FIR, error) {
	if !(0 < low && low < high && high < fs/2) {
		return nil, fmt.Errorf("dsp: bandpass edges (%g, %g) invalid for fs=%g", low, high, fs)
	}
	if taps < 3 {
		return nil, fmt.Errorf("dsp: need at least 3 taps, got %d", taps)
	}
	if taps%2 == 0 {
		taps++
	}
	f1 := low / fs
	f2 := high / fs
	mid := (taps - 1) / 2
	h := make([]float64, taps)
	for i := range h {
		m := float64(i - mid)
		if m == 0 {
			h[i] = 2 * (f2 - f1)
		} else {
			h[i] = (math.Sin(2*math.Pi*f2*m) - math.Sin(2*math.Pi*f1*m)) / (math.Pi * m)
		}
	}
	win := w.Coefficients(taps)
	for i := range h {
		h[i] *= win[i]
	}
	// Normalise gain at the geometric band centre.
	fc := (low + high) / 2
	re, im := 0.0, 0.0
	for i, tap := range h {
		phase := 2 * math.Pi * fc / fs * float64(i)
		re += tap * math.Cos(phase)
		im -= tap * math.Sin(phase)
	}
	gain := math.Hypot(re, im)
	if gain == 0 {
		return nil, fmt.Errorf("dsp: degenerate bandpass design")
	}
	for i := range h {
		h[i] /= gain
	}
	return &FIR{taps: h}, nil
}

// MovingAverage returns the centered moving average of x over a window of
// n samples (n forced odd). Edges use shorter one-sided windows.
func MovingAverage(x []float64, n int) []float64 {
	if n < 1 {
		n = 1
	}
	if n%2 == 0 {
		n++
	}
	half := n / 2
	out := make([]float64, len(x))
	// Prefix sums for O(len(x)) evaluation.
	prefix := make([]float64, len(x)+1)
	for i, v := range x {
		prefix[i+1] = prefix[i] + v
	}
	for i := range x {
		lo := i - half
		if lo < 0 {
			lo = 0
		}
		hi := i + half + 1
		if hi > len(x) {
			hi = len(x)
		}
		out[i] = (prefix[hi] - prefix[lo]) / float64(hi-lo)
	}
	return out
}
