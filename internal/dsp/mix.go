package dsp

import (
	"math"

	"pab/internal/prof"
)

// Oscillator generates coherent sinusoids sample by sample. It tracks phase
// continuously so consecutive blocks are phase-continuous.
type Oscillator struct {
	freq  float64 // Hz
	fs    float64 // Hz
	phase float64 // radians
}

// NewOscillator returns an oscillator at frequency f (Hz) for sample rate
// fs (Hz) with initial phase 0.
func NewOscillator(f, fs float64) *Oscillator {
	return &Oscillator{freq: f, fs: fs}
}

// SetPhase sets the oscillator phase in radians.
func (o *Oscillator) SetPhase(p float64) { o.phase = math.Mod(p, 2*math.Pi) }

// Next returns sin(phase) and advances one sample.
func (o *Oscillator) Next() float64 {
	v := math.Sin(o.phase)
	o.phase += 2 * math.Pi * o.freq / o.fs
	if o.phase > 2*math.Pi {
		o.phase -= 2 * math.Pi
	}
	return v
}

// Block returns the next n samples.
func (o *Oscillator) Block(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = o.Next()
	}
	return out
}

// Sine synthesises amplitude·sin(2πft + phase) sampled at fs for n samples.
func Sine(amplitude, f, fs, phase float64, n int) []float64 {
	out := make([]float64, n)
	w := 2 * math.Pi * f / fs
	for i := range out {
		out[i] = amplitude * math.Sin(w*float64(i)+phase)
	}
	return out
}

// Downconvert mixes the real passband signal x (sample rate fs) down by
// carrier frequency fc, returning the complex baseband signal. The result
// still contains the 2·fc image; low-pass filter it (see DownconvertLP) to
// complete the demodulation.
func Downconvert(x []float64, fc, fs float64) []complex128 {
	out := make([]complex128, len(x))
	w := 2 * math.Pi * fc / fs
	for i, v := range x {
		ph := w * float64(i)
		// e^{-jωt}·x(t)
		out[i] = complex(v*math.Cos(ph), -v*math.Sin(ph))
	}
	return out
}

// DownconvertLP mixes x down by fc and low-pass filters I and Q with an
// order-`order` Butterworth at the given cutoff, returning the complex
// baseband envelope. This is the paper's demodulation step ("demodulate by
// removing the carrier frequency", §3.2): the magnitude of the result is
// the amplitude trace plotted in Fig 2.
func DownconvertLP(x []float64, fc, fs, cutoff float64, order int) ([]complex128, error) {
	lp, err := DesignButterworthLowpass(cutoff, fs, order)
	if err != nil {
		return nil, err
	}
	st := prof.Start(prof.StageDownconvert)
	mixed := Downconvert(x, fc, fs)
	st.Stop(len(x))
	st = prof.Start(prof.StageFilter)
	re := make([]float64, len(mixed))
	im := make([]float64, len(mixed))
	for i, c := range mixed {
		re[i] = real(c)
		im[i] = imag(c)
	}
	re = lp.FiltFilt(re)
	im = lp.FiltFilt(im)
	out := make([]complex128, len(mixed))
	for i := range out {
		out[i] = complex(re[i], im[i])
	}
	st.Stop(len(mixed))
	return out, nil
}

// Envelope returns |x| of a complex baseband signal.
func Envelope(x []complex128) []float64 {
	out := make([]float64, len(x))
	for i, c := range x {
		out[i] = math.Hypot(real(c), imag(c))
	}
	return out
}

// AmplitudeEnvelope recovers the envelope of a real passband signal by
// full-wave rectification followed by Butterworth low-pass filtering at
// the given cutoff, scaled by π/2 to undo the rectification loss. This is
// the low-power envelope detector a PAB node itself implements in analog
// hardware for downlink PWM decoding.
func AmplitudeEnvelope(x []float64, fs, cutoff float64, order int) ([]float64, error) {
	lp, err := DesignButterworthLowpass(cutoff, fs, order)
	if err != nil {
		return nil, err
	}
	rect := make([]float64, len(x))
	for i, v := range x {
		rect[i] = math.Abs(v)
	}
	env := lp.FiltFilt(rect)
	// Mean of |sin| is 2/π of the peak; rescale to peak amplitude.
	scale := math.Pi / 2
	for i := range env {
		env[i] *= scale
	}
	return env, nil
}

// Decimate returns every factor-th sample of x, starting at index 0.
// The caller is responsible for prior anti-alias filtering.
func Decimate(x []float64, factor int) []float64 {
	if factor <= 1 {
		out := make([]float64, len(x))
		copy(out, x)
		return out
	}
	out := make([]float64, 0, len(x)/factor+1)
	for i := 0; i < len(x); i += factor {
		out = append(out, x[i])
	}
	return out
}

// DecimateComplex is Decimate for complex baseband signals.
func DecimateComplex(x []complex128, factor int) []complex128 {
	if factor <= 1 {
		out := make([]complex128, len(x))
		copy(out, x)
		return out
	}
	out := make([]complex128, 0, len(x)/factor+1)
	for i := 0; i < len(x); i += factor {
		out = append(out, x[i])
	}
	return out
}

// ResampleLinear linearly interpolates x (length n) to m samples.
func ResampleLinear(x []float64, m int) []float64 {
	if m <= 0 || len(x) == 0 {
		return nil
	}
	out := make([]float64, m)
	if len(x) == 1 {
		for i := range out {
			out[i] = x[0]
		}
		return out
	}
	scale := float64(len(x)-1) / float64(m-1)
	if m == 1 {
		out[0] = x[0]
		return out
	}
	for i := range out {
		pos := float64(i) * scale
		j := int(pos)
		if j >= len(x)-1 {
			out[i] = x[len(x)-1]
			continue
		}
		frac := pos - float64(j)
		out[i] = x[j]*(1-frac) + x[j+1]*frac
	}
	return out
}
