package dsp

import (
	"math"
	"math/rand"
	"testing"
)

func TestCrossCorrelatePeakLocatesTemplate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tmpl := make([]float64, 32)
	for i := range tmpl {
		tmpl[i] = rng.NormFloat64()
	}
	const offset = 211
	x := make([]float64, 512)
	for i := range x {
		x[i] = 0.05 * rng.NormFloat64()
	}
	for i, v := range tmpl {
		x[offset+i] += v
	}
	out := CrossCorrelate(x, tmpl)
	if want := len(x) - len(tmpl) + 1; len(out) != want {
		t.Fatalf("output length %d, want %d", len(out), want)
	}
	idx, val := ArgMax(out)
	if idx != offset {
		t.Errorf("peak at %d, want %d", idx, offset)
	}
	// At the aligned lag the correlation approaches the template energy.
	if e := Energy(tmpl); math.Abs(val-e) > 0.2*e {
		t.Errorf("peak value %g far from template energy %g", val, e)
	}
}

func TestCrossCorrelateMatchesDirectComputation(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	h := []float64{1, -1}
	out := CrossCorrelate(x, h)
	want := []float64{-1, -1, -1, -1} // x[i]-x[i+1]
	if len(out) != len(want) {
		t.Fatalf("length %d, want %d", len(out), len(want))
	}
	for i := range want {
		if math.Abs(out[i]-want[i]) > 1e-12 {
			t.Errorf("out[%d] = %g, want %g", i, out[i], want[i])
		}
	}
}

func TestCrossCorrelateFFTPathAgreesWithDirect(t *testing.T) {
	// Force the FFT branch (len(x)*len(h) > 64k) and compare against the
	// naive O(n·m) sum.
	rng := rand.New(rand.NewSource(3))
	x := make([]float64, 1200)
	h := make([]float64, 80)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	for i := range h {
		h[i] = rng.NormFloat64()
	}
	got := CrossCorrelate(x, h)
	for i := range got {
		var s float64
		for j, hv := range h {
			s += x[i+j] * hv
		}
		if math.Abs(got[i]-s) > 1e-6 {
			t.Fatalf("FFT path out[%d] = %g, direct %g", i, got[i], s)
		}
	}
}

func TestCrossCorrelateDegenerateInputs(t *testing.T) {
	if out := CrossCorrelate([]float64{1, 2}, nil); out != nil {
		t.Errorf("empty template: got %v, want nil", out)
	}
	if out := CrossCorrelate([]float64{1}, []float64{1, 2}); out != nil {
		t.Errorf("template longer than signal: got %v, want nil", out)
	}
}

func TestNormalizedCrossCorrelatePerfectMatchScoresOne(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tmpl := make([]float64, 48)
	for i := range tmpl {
		tmpl[i] = rng.NormFloat64()
	}
	const offset = 100
	x := make([]float64, 300)
	// Embed a scaled and DC-shifted copy: NCC must still score 1 there.
	for i, v := range tmpl {
		x[offset+i] = 3*v + 7
	}
	out := NormalizedCrossCorrelate(x, tmpl)
	idx, val := ArgMax(out)
	if idx != offset {
		t.Errorf("peak at %d, want %d", idx, offset)
	}
	if math.Abs(val-1) > 1e-9 {
		t.Errorf("peak score %g, want 1 (amplitude/offset invariance)", val)
	}
	for i, v := range out {
		if v > 1+1e-9 || v < -1-1e-9 {
			t.Errorf("out[%d] = %g outside [-1, 1]", i, v)
		}
	}
}

func TestNormalizedCrossCorrelateInvertedMatchScoresMinusOne(t *testing.T) {
	tmpl := []float64{1, -1, 1, 1, -1, -1, 1, -1}
	x := make([]float64, 64)
	const offset = 20
	for i, v := range tmpl {
		x[offset+i] = -v
	}
	out := NormalizedCrossCorrelate(x, tmpl)
	idx, val := ArgMaxAbs(out)
	if idx != offset {
		t.Errorf("peak at %d, want %d", idx, offset)
	}
	if math.Abs(val+1) > 1e-9 {
		t.Errorf("inverted match scored %g, want -1", val)
	}
}

func TestNormalizedCrossCorrelateZeroVarianceWindow(t *testing.T) {
	// A constant window has zero variance; the score must be 0 there,
	// not NaN.
	tmpl := []float64{1, -1, 1, -1}
	x := []float64{5, 5, 5, 5, 5, 1, -1, 1, -1, 5}
	out := NormalizedCrossCorrelate(x, tmpl)
	for i, v := range out {
		if math.IsNaN(v) {
			t.Fatalf("out[%d] is NaN", i)
		}
	}
	if out[0] != 0 {
		t.Errorf("constant window scored %g, want 0", out[0])
	}
}

func TestArgMaxAndArgMaxAbs(t *testing.T) {
	if idx, val := ArgMax(nil); idx != -1 || !math.IsInf(val, -1) {
		t.Errorf("ArgMax(nil) = (%d, %g), want (-1, -Inf)", idx, val)
	}
	if idx, val := ArgMax([]float64{-3, 2, -1}); idx != 1 || val != 2 {
		t.Errorf("ArgMax = (%d, %g), want (1, 2)", idx, val)
	}
	// ArgMaxAbs returns the signed value at the abs-max position.
	if idx, val := ArgMaxAbs([]float64{-3, 2, -1}); idx != 0 || val != -3 {
		t.Errorf("ArgMaxAbs = (%d, %g), want (0, -3)", idx, val)
	}
	if idx, _ := ArgMaxAbs(nil); idx != -1 {
		t.Errorf("ArgMaxAbs(nil) index %d, want -1", idx)
	}
}
