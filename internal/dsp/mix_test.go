package dsp

import (
	"math"
	"testing"
)

func TestOscillatorPhaseContinuity(t *testing.T) {
	o := NewOscillator(15000, 96000)
	a := o.Block(100)
	b := o.Block(100)
	whole := NewOscillator(15000, 96000).Block(200)
	for i := 0; i < 100; i++ {
		if !approx(a[i], whole[i], 1e-12) || !approx(b[i], whole[100+i], 1e-9) {
			t.Fatal("oscillator blocks are not phase continuous")
		}
	}
}

func TestSineAmplitudeAndFrequency(t *testing.T) {
	fs := 96000.0
	x := Sine(2.5, 15000, fs, 0, 9600)
	if r := RMS(x); math.Abs(r-2.5/math.Sqrt2) > 0.01 {
		t.Errorf("RMS = %g, want %g", r, 2.5/math.Sqrt2)
	}
	peaks := FindPeaks(x, fs, 1, 100, 0)
	if len(peaks) != 1 || math.Abs(peaks[0].Frequency-15000) > 20 {
		t.Errorf("peaks = %+v, want single 15 kHz", peaks)
	}
}

func TestDownconvertRecoversEnvelope(t *testing.T) {
	fs := 96000.0
	fc := 15000.0
	n := 19200
	// 15 kHz carrier with amplitude step 1.0 → 0.4 halfway (a backscatter
	// state change).
	x := make([]float64, n)
	w := 2 * math.Pi * fc / fs
	for i := range x {
		amp := 1.0
		if i >= n/2 {
			amp = 0.4
		}
		x[i] = amp * math.Sin(w*float64(i))
	}
	bb, err := DownconvertLP(x, fc, fs, 2000, 4)
	if err != nil {
		t.Fatal(err)
	}
	env := Envelope(bb)
	// The complex envelope of A·sin is A/2 after mixing (half the energy
	// lands at 2fc and is filtered); scale by 2.
	first := 2 * Mean(env[n/8:3*n/8])
	second := 2 * Mean(env[5*n/8:7*n/8])
	if math.Abs(first-1.0) > 0.05 {
		t.Errorf("first level %g, want ~1.0", first)
	}
	if math.Abs(second-0.4) > 0.05 {
		t.Errorf("second level %g, want ~0.4", second)
	}
}

func TestDownconvertRejectsOtherCarrier(t *testing.T) {
	fs := 96000.0
	n := 19200
	x := Sine(1, 18000, fs, 0, n)
	bb, err := DownconvertLP(x, 15000, fs, 1000, 4)
	if err != nil {
		t.Fatal(err)
	}
	env := Envelope(bb)
	if m := Mean(env[n/4 : 3*n/4]); m > 0.01 {
		t.Errorf("18 kHz leakage into 15 kHz channel: %g", m)
	}
}

func TestAmplitudeEnvelope(t *testing.T) {
	fs := 96000.0
	n := 9600
	x := Sine(0.8, 15000, fs, 0, n)
	env, err := AmplitudeEnvelope(x, fs, 1500, 4)
	if err != nil {
		t.Fatal(err)
	}
	m := Mean(env[n/4 : 3*n/4])
	if math.Abs(m-0.8) > 0.05 {
		t.Errorf("envelope %g, want ~0.8", m)
	}
}

func TestDecimate(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	got := Decimate(x, 3)
	want := []float64{0, 3, 6, 9}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("got[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	// Factor 1 copies.
	same := Decimate(x, 1)
	same[0] = 99
	if x[0] == 99 {
		t.Error("Decimate(x,1) must copy, not alias")
	}
}

func TestDecimateComplex(t *testing.T) {
	x := []complex128{0, 1i, 2i, 3i}
	got := DecimateComplex(x, 2)
	if len(got) != 2 || got[0] != 0 || got[1] != 2i {
		t.Errorf("DecimateComplex = %v", got)
	}
}

func TestResampleLinear(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	got := ResampleLinear(x, 7)
	if len(got) != 7 {
		t.Fatalf("len = %d, want 7", len(got))
	}
	if got[0] != 0 || got[6] != 3 {
		t.Errorf("endpoints %g, %g; want 0, 3", got[0], got[6])
	}
	if !approx(got[3], 1.5, 1e-12) {
		t.Errorf("midpoint %g, want 1.5", got[3])
	}
	if out := ResampleLinear(nil, 5); out != nil {
		t.Error("nil input should give nil")
	}
	if out := ResampleLinear([]float64{2}, 3); len(out) != 3 || out[1] != 2 {
		t.Error("single-sample input should replicate")
	}
}

func TestCrossCorrelatePeakAtOffset(t *testing.T) {
	tmpl := []float64{1, -1, 1, 1, -1}
	x := make([]float64, 100)
	copy(x[40:], tmpl)
	corr := CrossCorrelate(x, tmpl)
	idx, _ := ArgMax(corr)
	if idx != 40 {
		t.Errorf("correlation peak at %d, want 40", idx)
	}
}

func TestNormalizedCrossCorrelateBounds(t *testing.T) {
	tmpl := []float64{1, -1, 1, 1, -1, -1, 1}
	x := make([]float64, 500)
	for i := range x {
		x[i] = math.Sin(float64(i) * 0.7)
	}
	copy(x[200:], tmpl)
	corr := NormalizedCrossCorrelate(x, tmpl)
	for i, v := range corr {
		if v > 1+1e-9 || v < -1-1e-9 {
			t.Fatalf("normalised corr out of bounds at %d: %g", i, v)
		}
	}
	idx, v := ArgMax(corr)
	if idx != 200 || v < 0.999 {
		t.Errorf("peak (%d, %g), want (200, ~1)", idx, v)
	}
}

func TestCrossCorrelateFFTPath(t *testing.T) {
	// Long enough to trigger the FFT path; verify against direct result.
	x := make([]float64, 2000)
	h := make([]float64, 64)
	for i := range x {
		x[i] = math.Sin(float64(i) * 0.31)
	}
	for i := range h {
		h[i] = math.Cos(float64(i) * 0.17)
	}
	got := CrossCorrelate(x, h) // 2000·64 = 128000 > threshold
	for i := 0; i < len(got); i += 97 {
		var want float64
		for j, hv := range h {
			want += x[i+j] * hv
		}
		if math.Abs(got[i]-want) > 1e-8 {
			t.Fatalf("fft corr mismatch at %d: %g vs %g", i, got[i], want)
		}
	}
}

func TestArgMaxEdgeCases(t *testing.T) {
	if idx, _ := ArgMax(nil); idx != -1 {
		t.Error("ArgMax(nil) index should be -1")
	}
	idx, v := ArgMaxAbs([]float64{1, -5, 3})
	if idx != 1 || v != -5 {
		t.Errorf("ArgMaxAbs = (%d, %g), want (1, -5)", idx, v)
	}
}

func TestStatsHelpers(t *testing.T) {
	if Mean(nil) != 0 || RMS(nil) != 0 {
		t.Error("empty stats should be 0")
	}
	if !approx(Mean([]float64{1, 2, 3}), 2, 1e-12) {
		t.Error("Mean wrong")
	}
	if !approx(RMS([]float64{3, 4}), math.Sqrt(12.5), 1e-12) {
		t.Error("RMS wrong")
	}
	if !approx(Energy([]float64{3, 4}), 25, 1e-12) {
		t.Error("Energy wrong")
	}
	x := []float64{1, 2}
	Scale(x, 2)
	if x[0] != 2 || x[1] != 4 {
		t.Error("Scale wrong")
	}
	dst := []float64{1, 1, 1}
	Add(dst, []float64{1, 2})
	if dst[0] != 2 || dst[1] != 3 || dst[2] != 1 {
		t.Error("Add wrong")
	}
}
