package dsp

import "math"

const twoPi = 2 * math.Pi

// Downmixer is the streaming counterpart of Downconvert: it mixes real
// passband blocks down by a fixed carrier, carrying the oscillator
// phase across calls so consecutive blocks are phase-continuous. A
// recording processed block by block therefore matches the one-shot
// Downconvert up to floating-point rounding in the phase accumulator
// (the constant overall phase is absorbed downstream by the
// modulation-axis estimate).
type Downmixer struct {
	w     float64 // radians advanced per sample
	phase float64 // current phase, wrapped to [0, 2π)
}

// NewDownmixer returns a mixer for carrier fc (Hz) at sample rate fs.
func NewDownmixer(fc, fs float64) *Downmixer {
	return &Downmixer{w: twoPi * fc / fs}
}

// MixInto writes e^{-jφ[n]}·x[n] into dst, which must hold at least
// len(x) elements, and returns dst[:len(x)]. The carried phase
// advances by len(x) samples.
func (m *Downmixer) MixInto(dst []complex128, x []float64) []complex128 {
	out := dst[:len(x)]
	phase, w := m.phase, m.w
	for i, v := range x {
		s, c := math.Sincos(phase)
		out[i] = complex(v*c, -v*s)
		phase += w
		if phase >= twoPi {
			phase -= twoPi
		}
	}
	m.phase = phase
	return out
}

// Reset rewinds the oscillator to phase zero.
func (m *Downmixer) Reset() { m.phase = 0 }

// IIRStream applies a biquad cascade causally one block at a time,
// carrying the per-section direct-form-II-transposed state across
// calls: a signal fed through in blocks of any size produces
// bit-identical output to (*IIR).Filter over the whole signal, because
// each section's recurrence consumes samples in the same order either
// way. This is the stateful filter object the block-based receiver
// needs — FiltFilt's backward pass reads the future and cannot stream.
type IIRStream struct {
	sections []Biquad
	state    [][2]float64
}

// Stream returns a stateful streaming view of the cascade. The
// sections are copied; the IIR itself is not retained.
func (f *IIR) Stream() *IIRStream {
	return &IIRStream{
		sections: f.Sections(),
		state:    make([][2]float64, len(f.sections)),
	}
}

// Process filters block into dst (which must hold at least len(block)
// elements and may alias block for in-place filtering) and returns
// dst[:len(block)], advancing the carried filter state.
func (s *IIRStream) Process(dst, block []float64) []float64 {
	out := dst[:len(block)]
	if len(block) == 0 {
		return out
	}
	if &out[0] != &block[0] {
		copy(out, block)
	}
	for si := range s.sections {
		q := &s.sections[si]
		z := &s.state[si]
		for i, v := range out {
			out[i] = q.process(v, z)
		}
	}
	return out
}

// Reset zeroes the carried filter state.
func (s *IIRStream) Reset() {
	for i := range s.state {
		s.state[i] = [2]float64{}
	}
}
