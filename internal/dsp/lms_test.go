package dsp

import (
	"math"
	"math/rand"
	"testing"
)

// isiChannel applies a two-tap ISI channel (direct + delayed echo).
func isiChannel(x []float64, echoDelay int, echoGain float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	for i := echoDelay; i < len(x); i++ {
		out[i] += echoGain * x[i-echoDelay]
	}
	return out
}

func TestLMSValidation(t *testing.T) {
	if _, err := NewLMSEqualizer(0, 0.1); err == nil {
		t.Error("zero taps should error")
	}
	if _, err := NewLMSEqualizer(4, 0.1); err == nil {
		t.Error("even taps should error")
	}
	if _, err := NewLMSEqualizer(5, 0); err == nil {
		t.Error("zero µ should error")
	}
	if _, err := NewLMSEqualizer(5, 1.5); err == nil {
		t.Error("µ ≥ 1 should error")
	}
	eq, err := NewLMSEqualizer(5, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eq.Train([]float64{1, 2}, []float64{1, 2}, 1); err == nil {
		t.Error("too-short training should error")
	}
	if _, err := eq.Train(make([]float64, 100), make([]float64, 100), 1); err == nil {
		t.Error("zero-power training should error")
	}
}

func TestLMSIdentityStart(t *testing.T) {
	eq, _ := NewLMSEqualizer(7, 0.1)
	x := []float64{1, -1, 2, 0.5, -0.3}
	y := eq.Equalize(x)
	for i := range x {
		if math.Abs(y[i]-x[i]) > 1e-12 {
			t.Fatal("untrained equalizer should be identity")
		}
	}
}

func TestLMSSuppressesISI(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// Training symbols: random ±1 (a preamble).
	train := make([]float64, 2000)
	for i := range train {
		train[i] = float64(rng.Intn(2))*2 - 1
	}
	rx := isiChannel(train, 3, 0.5)
	// The exact inverse of (1 − 0.5z⁻³) is IIR with taps decaying as
	// 0.5^k; 21 taps cover enough of it to leave <1% residual power.
	eq, _ := NewLMSEqualizer(21, 0.2)
	mse0 := meanSquaredError(rx, train)
	mse, err := eq.Train(rx, train, 60)
	if err != nil {
		t.Fatal(err)
	}
	if mse >= mse0/5 {
		t.Errorf("training MSE %g should be well below raw %g", mse, mse0)
	}
	// And it generalises to fresh data through the same channel.
	data := make([]float64, 2000)
	for i := range data {
		data[i] = float64(rng.Intn(2))*2 - 1
	}
	rx2 := isiChannel(data, 3, 0.5)
	eqOut := eq.Equalize(rx2)
	if em := meanSquaredError(eqOut, data); em >= meanSquaredError(rx2, data)/3 {
		t.Errorf("equalized MSE %g vs raw %g", em, meanSquaredError(rx2, data))
	}
}

func meanSquaredError(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	s := 0.0
	for i := 0; i < n; i++ {
		d := a[i] - b[i]
		s += d * d
	}
	return s / float64(n)
}

func TestLMSTapsAccessor(t *testing.T) {
	eq, _ := NewLMSEqualizer(5, 0.1)
	taps := eq.Taps()
	taps[0] = 99
	if eq.Taps()[0] == 99 {
		t.Error("Taps must return a copy")
	}
}

func TestResidualISI(t *testing.T) {
	if ResidualISI([]float64{0, 1, 0}) != 0 {
		t.Error("pure delay has zero ISI")
	}
	if r := ResidualISI([]float64{1, 1}); math.Abs(r-0.5) > 1e-12 {
		t.Errorf("equal two-tap ISI %g, want 0.5", r)
	}
	if ResidualISI(nil) != 0 || ResidualISI([]float64{0, 0}) != 0 {
		t.Error("degenerate inputs should be 0")
	}
}

func TestLMSEqualizerImprovesDecisions(t *testing.T) {
	// End-to-end payoff: hard decisions on the equalized stream beat
	// decisions on the raw ISI stream.
	rng := rand.New(rand.NewSource(8))
	train := make([]float64, 1500)
	for i := range train {
		train[i] = float64(rng.Intn(2))*2 - 1
	}
	eq, _ := NewLMSEqualizer(13, 0.2)
	if _, err := eq.Train(isiChannel(train, 2, 0.65), train, 40); err != nil {
		t.Fatal(err)
	}
	data := make([]float64, 4000)
	for i := range data {
		data[i] = float64(rng.Intn(2))*2 - 1
	}
	rx := isiChannel(data, 2, 0.65)
	for i := range rx {
		rx[i] += rng.NormFloat64() * 0.3
	}
	rawErrs, eqErrs := 0, 0
	eqd := eq.Equalize(rx)
	for i := range data {
		if (rx[i] > 0) != (data[i] > 0) {
			rawErrs++
		}
		if (eqd[i] > 0) != (data[i] > 0) {
			eqErrs++
		}
	}
	if eqErrs >= rawErrs {
		t.Errorf("equalized errors %d should be below raw %d", eqErrs, rawErrs)
	}
}
