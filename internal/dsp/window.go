package dsp

import "math"

// Window identifies a tapering window function.
type Window int

// Supported window functions.
const (
	Rectangular Window = iota
	Hann
	Hamming
	Blackman
)

// String returns the window's conventional name.
func (w Window) String() string {
	switch w {
	case Rectangular:
		return "rectangular"
	case Hann:
		return "hann"
	case Hamming:
		return "hamming"
	case Blackman:
		return "blackman"
	default:
		return "unknown"
	}
}

// Coefficients returns the n window coefficients for w. For n == 1 a single
// unity coefficient is returned.
func (w Window) Coefficients(n int) []float64 {
	c := make([]float64, n)
	if n == 1 {
		c[0] = 1
		return c
	}
	den := float64(n - 1)
	for i := range c {
		t := float64(i) / den
		switch w {
		case Hann:
			c[i] = 0.5 - 0.5*math.Cos(2*math.Pi*t)
		case Hamming:
			c[i] = 0.54 - 0.46*math.Cos(2*math.Pi*t)
		case Blackman:
			c[i] = 0.42 - 0.5*math.Cos(2*math.Pi*t) + 0.08*math.Cos(4*math.Pi*t)
		default:
			c[i] = 1
		}
	}
	return c
}

// Apply multiplies x elementwise by the window coefficients and returns a
// new slice; x is not modified.
func (w Window) Apply(x []float64) []float64 {
	c := w.Coefficients(len(x))
	out := make([]float64, len(x))
	for i := range x {
		out[i] = x[i] * c[i]
	}
	return out
}
