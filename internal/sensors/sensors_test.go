package sensors

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPHProbeNernst(t *testing.T) {
	p := NewPHProbe()
	env := Environment{PH: 7, TemperatureC: 25}
	if v := p.Voltage(env); math.Abs(v) > 1e-12 {
		t.Errorf("pH 7 should give 0 V, got %g", v)
	}
	// One pH unit below 7 → +59.16 mV at 25 °C.
	env.PH = 6
	if v := p.Voltage(env); math.Abs(v-0.05916) > 1e-6 {
		t.Errorf("pH 6: %g V, want 0.05916", v)
	}
	// Slope grows with temperature.
	hot := Environment{PH: 6, TemperatureC: 50}
	if p.Voltage(hot) <= p.Voltage(env) {
		t.Error("hotter electrode should have steeper slope")
	}
}

func TestADCQuantisation(t *testing.T) {
	adc := MSP430ADC()
	if c := adc.Sample(0); c != 0 {
		t.Errorf("Sample(0) = %d", c)
	}
	if c := adc.Sample(1.8); c != 1023 {
		t.Errorf("Sample(1.8) = %d, want 1023", c)
	}
	if c := adc.Sample(-1); c != 0 {
		t.Errorf("negative input should clamp to 0, got %d", c)
	}
	if c := adc.Sample(5); c != 1023 {
		t.Errorf("over-range input should clamp to 1023, got %d", c)
	}
	if v := adc.VoltageOf(512); math.Abs(v-0.9009) > 0.001 {
		t.Errorf("VoltageOf(512) = %g", v)
	}
}

func TestADCRoundTripWithinLSB(t *testing.T) {
	adc := MSP430ADC()
	lsb := adc.Vref / 1023
	f := func(raw uint16) bool {
		v := float64(raw%1800) / 1000 // 0–1.799 V
		back := adc.VoltageOf(adc.Sample(v))
		return math.Abs(back-v) <= lsb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPHEndToEnd(t *testing.T) {
	// The paper's demo: "We verified that the MCU computes the correct
	// pH (of 7)". Full chain: probe → AFE → ADC → firmware conversion.
	probe := NewPHProbe()
	afe := PaperAFE()
	adc := MSP430ADC()
	for _, ph := range []float64{4.0, 5.5, 7.0, 8.2, 10.0} {
		env := Environment{PH: ph, TemperatureC: 22}
		code := adc.Sample(afe.Condition(probe.Voltage(env)))
		got := PHFromCode(code, adc, afe, probe, 22)
		if math.Abs(got-ph) > 0.05 {
			t.Errorf("pH %g decoded as %g", ph, got)
		}
	}
}

func TestPHTemperatureCompensationError(t *testing.T) {
	// Firmware assuming the wrong temperature misreads acidic/basic
	// water slightly — but is exact at pH 7 where the electrode is at
	// its isopotential point.
	probe := NewPHProbe()
	afe := PaperAFE()
	adc := MSP430ADC()
	env := Environment{PH: 7, TemperatureC: 5}
	code := adc.Sample(afe.Condition(probe.Voltage(env)))
	if got := PHFromCode(code, adc, afe, probe, 25); math.Abs(got-7) > 0.05 {
		t.Errorf("pH 7 should survive temperature mismatch, got %g", got)
	}
}

func TestMS5837ReadsEnvironment(t *testing.T) {
	env := RoomTank()
	dev := NewMS5837(env)
	r, err := ReadMS5837(dev)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.TemperatureC-env.TemperatureC) > 0.05 {
		t.Errorf("temperature %g, want %g", r.TemperatureC, env.TemperatureC)
	}
	if math.Abs(r.PressureMbar-env.PressureBar*1000) > 2 {
		t.Errorf("pressure %g mbar, want %g", r.PressureMbar, env.PressureBar*1000)
	}
}

func TestMS5837AcrossConditions(t *testing.T) {
	cases := []Environment{
		{TemperatureC: 2, PressureBar: 1.0},
		{TemperatureC: 22, PressureBar: 1.013},
		{TemperatureC: 30, PressureBar: 2.5},  // ~15 m depth
		{TemperatureC: 10, PressureBar: 11.0}, // ~100 m depth
	}
	for _, env := range cases {
		r, err := ReadMS5837(NewMS5837(env))
		if err != nil {
			t.Fatalf("%+v: %v", env, err)
		}
		if math.Abs(r.TemperatureC-env.TemperatureC) > 0.05 {
			t.Errorf("%+v: temperature %g", env, r.TemperatureC)
		}
		if math.Abs(r.PressureMbar-env.PressureBar*1000) > 3 {
			t.Errorf("%+v: pressure %g", env, r.PressureMbar)
		}
	}
}

func TestMS5837Protocol(t *testing.T) {
	dev := NewMS5837(RoomTank())
	// Conversion before reset is a protocol violation.
	if _, err := dev.Transfer([]byte{MS5837ConvertD1}, 0); err == nil {
		t.Error("conversion before reset should error")
	}
	if _, err := dev.Transfer([]byte{MS5837Reset}, 0); err != nil {
		t.Fatal(err)
	}
	// ADC read without armed conversion.
	if _, err := dev.Transfer([]byte{MS5837ADCRead}, 3); err == nil {
		t.Error("ADC read without conversion should error")
	}
	// Wrong read lengths.
	if _, err := dev.Transfer([]byte{MS5837ConvertD1}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Transfer([]byte{MS5837ADCRead}, 2); err == nil {
		t.Error("short ADC read should error")
	}
	if _, err := dev.Transfer([]byte{MS5837PROMBase}, 3); err == nil {
		t.Error("wrong PROM read length should error")
	}
	// Unknown command.
	if _, err := dev.Transfer([]byte{0x77}, 0); err == nil {
		t.Error("unknown command should error")
	}
	// Empty write.
	if _, err := dev.Transfer(nil, 0); err == nil {
		t.Error("empty write should error")
	}
	// A conversion is consumed by its read.
	if _, err := dev.Transfer([]byte{MS5837ConvertD2}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Transfer([]byte{MS5837ADCRead}, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Transfer([]byte{MS5837ADCRead}, 3); err == nil {
		t.Error("second ADC read without new conversion should error")
	}
}
