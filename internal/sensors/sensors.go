// Package sensors models the peripherals the paper integrates with PAB
// nodes in §5.1c/§6.5: an analog pH mini-probe behind an LMP91200-style
// conditioning front end sampled by the MCU's ADC, and the MS5837-30BA
// digital pressure/temperature sensor spoken to over I2C. The models
// reproduce the actual conversion arithmetic the firmware performs, so
// the end-to-end test "does the decoded payload carry pH 7 / room
// temperature / 1 bar" exercises the same code path as the paper's
// demo.
package sensors

import (
	"fmt"
	"math"
)

// Environment is the water the sensors are immersed in.
type Environment struct {
	PH           float64
	TemperatureC float64
	PressureBar  float64
}

// RoomTank returns the conditions of the paper's bench demo: neutral pH,
// room temperature, atmospheric pressure (§6.5: "correct readings of
// room temperature and atmospheric pressure (around 1 bar)").
func RoomTank() Environment {
	return Environment{PH: 7.0, TemperatureC: 22.0, PressureBar: 1.013}
}

// ---------------------------------------------------------------------------
// pH probe + analog front end + ADC
// ---------------------------------------------------------------------------

// PHProbe is a glass electrode: by the Nernst equation it produces
// 0 V at pH 7 and about −59.16 mV per pH unit at 25 °C (slope scales
// with absolute temperature).
type PHProbe struct {
	// Slope25C is the electrode slope magnitude at 25 °C, volts/pH.
	Slope25C float64
	// OffsetV is the asymmetry potential (electrode aging), volts.
	OffsetV float64
}

// NewPHProbe returns an ideal mini probe.
func NewPHProbe() PHProbe {
	return PHProbe{Slope25C: 0.05916}
}

// Voltage returns the electrode potential for the environment.
func (p PHProbe) Voltage(env Environment) float64 {
	// Nernst slope ∝ absolute temperature.
	slope := p.Slope25C * (env.TemperatureC + 273.15) / 298.15
	return p.OffsetV - slope*(env.PH-7.0)
}

// AFE is the LMP91200-style conditioning stage: it buffers the
// high-impedance electrode and maps its bipolar ±414 mV swing into the
// ADC's unipolar range around a mid-rail bias.
type AFE struct {
	Gain  float64 // V/V
	BiasV float64 // output at 0 V input
}

// PaperAFE maps ±0.45 V to 0–1.8 V around a 0.9 V mid-rail.
func PaperAFE() AFE {
	return AFE{Gain: 2.0, BiasV: 0.9}
}

// Condition converts the electrode voltage to the ADC input.
func (a AFE) Condition(v float64) float64 {
	return a.BiasV + a.Gain*v
}

// ADC is the MCU's successive-approximation converter (the MSP430's
// 10-bit ADC10).
type ADC struct {
	Bits int
	Vref float64
}

// MSP430ADC returns the 10-bit, 1.8 V-referenced converter configuration.
func MSP430ADC() ADC {
	return ADC{Bits: 10, Vref: 1.8}
}

// Sample converts a voltage to a code, clamped to the rail.
func (a ADC) Sample(v float64) int {
	maxCode := (1 << a.Bits) - 1
	code := int(math.Round(v / a.Vref * float64(maxCode)))
	if code < 0 {
		return 0
	}
	if code > maxCode {
		return maxCode
	}
	return code
}

// VoltageOf converts a code back to the input voltage.
func (a ADC) VoltageOf(code int) float64 {
	maxCode := (1 << a.Bits) - 1
	return float64(code) / float64(maxCode) * a.Vref
}

// PHFromCode is the firmware-side conversion: ADC code → pH, inverting
// the AFE and the (temperature-compensated) Nernst slope. assumedTempC
// is the firmware's compensation temperature.
func PHFromCode(code int, adc ADC, afe AFE, probe PHProbe, assumedTempC float64) float64 {
	v := (adc.VoltageOf(code) - afe.BiasV) / afe.Gain
	slope := probe.Slope25C * (assumedTempC + 273.15) / 298.15
	return 7.0 - (v-probe.OffsetV)/slope
}

// ---------------------------------------------------------------------------
// MS5837-30BA digital pressure/temperature sensor (I2C)
// ---------------------------------------------------------------------------

// I2CDevice is the bus-level contract the MCU drives: write a command,
// optionally read back bytes.
type I2CDevice interface {
	// Transfer writes the command bytes, then reads readLen bytes.
	Transfer(write []byte, readLen int) ([]byte, error)
}

// MS5837 command bytes (datasheet).
const (
	MS5837Reset     = 0x1E
	MS5837ConvertD1 = 0x48 // pressure, OSR 8192
	MS5837ConvertD2 = 0x58 // temperature, OSR 8192
	MS5837ADCRead   = 0x00
	MS5837PROMBase  = 0xA0 // PROM words at 0xA0 + 2·i
)

// MS5837 is the register-level sensor model. Calibration coefficients
// C1–C6 are the datasheet's typical values; D1/D2 raw conversions are
// synthesised from the ambient environment by inverting the first-order
// compensation algorithm, so firmware running the real algorithm
// recovers the environment.
type MS5837 struct {
	Env   Environment
	prom  [8]uint16
	armed byte // last conversion command
	reset bool
}

// NewMS5837 returns a sensor exposed to env.
func NewMS5837(env Environment) *MS5837 {
	m := &MS5837{Env: env}
	// Typical calibration values from the MS5837-30BA datasheet example.
	m.prom = [8]uint16{0x0000, 34982, 36352, 20328, 22354, 26646, 26146, 0x0000}
	return m
}

// rawD2 synthesises the temperature conversion for the environment.
func (m *MS5837) rawD2() uint32 {
	c5 := float64(m.prom[5])
	c6 := float64(m.prom[6])
	temp := m.Env.TemperatureC * 100 // centi-degrees
	dT := (temp - 2000) * math.Exp2(23) / c6
	return uint32(math.Round(dT + c5*math.Exp2(8)))
}

// Transfer implements I2CDevice.
func (m *MS5837) Transfer(write []byte, readLen int) ([]byte, error) {
	if len(write) == 0 {
		return nil, fmt.Errorf("sensors: empty I2C write")
	}
	cmd := write[0]
	switch {
	case cmd == MS5837Reset:
		m.reset = true
		m.armed = 0
		return nil, nil
	case cmd == MS5837ConvertD1 || cmd == MS5837ConvertD2:
		if !m.reset {
			return nil, fmt.Errorf("sensors: MS5837 conversion before reset")
		}
		m.armed = cmd
		return nil, nil
	case cmd == MS5837ADCRead:
		if m.armed == 0 {
			return nil, fmt.Errorf("sensors: ADC read with no conversion armed")
		}
		var raw uint32
		if m.armed == MS5837ConvertD1 {
			raw = m.pressureRaw()
		} else {
			raw = m.rawD2()
		}
		m.armed = 0
		if readLen != 3 {
			return nil, fmt.Errorf("sensors: ADC read wants 3 bytes, got request for %d", readLen)
		}
		return []byte{byte(raw >> 16), byte(raw >> 8), byte(raw)}, nil
	case cmd >= MS5837PROMBase && cmd <= MS5837PROMBase+14 && cmd%2 == 0:
		if readLen != 2 {
			return nil, fmt.Errorf("sensors: PROM read wants 2 bytes")
		}
		w := m.prom[(cmd-MS5837PROMBase)/2]
		return []byte{byte(w >> 8), byte(w)}, nil
	default:
		return nil, fmt.Errorf("sensors: unknown MS5837 command 0x%02x", cmd)
	}
}

// pressureRaw inverts the datasheet pressure equation for the current
// environment.
func (m *MS5837) pressureRaw() uint32 {
	c1 := float64(m.prom[1])
	c2 := float64(m.prom[2])
	c3 := float64(m.prom[3])
	c4 := float64(m.prom[4])
	c5 := float64(m.prom[5])
	d2 := float64(m.rawD2())
	dT := d2 - c5*math.Exp2(8)
	off := c2*math.Exp2(16) + c4*dT/math.Exp2(7)
	sens := c1*math.Exp2(15) + c3*dT/math.Exp2(8)
	p := m.Env.PressureBar * 1000 * 10 // target output, 0.1 mbar units
	// P = (D1·SENS/2^21 − OFF)/2^13  ⇒  D1 = (P·2^13 + OFF)·2^21/SENS
	return uint32(math.Round((p*math.Exp2(13) + off) * math.Exp2(21) / sens))
}

// MS5837Reading is the firmware-side result of the compensation
// algorithm.
type MS5837Reading struct {
	TemperatureC float64
	PressureMbar float64
}

// ReadMS5837 runs the full datasheet transaction and first-order
// compensation against any I2CDevice — this is the firmware the paper's
// MCU runs ("the sensor ... directly communicates with the MCU through
// I2C", §5.1c).
func ReadMS5837(dev I2CDevice) (MS5837Reading, error) {
	if _, err := dev.Transfer([]byte{MS5837Reset}, 0); err != nil {
		return MS5837Reading{}, fmt.Errorf("reset: %w", err)
	}
	var prom [8]uint16
	for i := 0; i < 7; i++ {
		b, err := dev.Transfer([]byte{byte(MS5837PROMBase + 2*i)}, 2)
		if err != nil {
			return MS5837Reading{}, fmt.Errorf("prom[%d]: %w", i, err)
		}
		prom[i] = uint16(b[0])<<8 | uint16(b[1])
	}
	readRaw := func(convert byte) (uint32, error) {
		if _, err := dev.Transfer([]byte{convert}, 0); err != nil {
			return 0, err
		}
		b, err := dev.Transfer([]byte{MS5837ADCRead}, 3)
		if err != nil {
			return 0, err
		}
		return uint32(b[0])<<16 | uint32(b[1])<<8 | uint32(b[2]), nil
	}
	d1, err := readRaw(MS5837ConvertD1)
	if err != nil {
		return MS5837Reading{}, fmt.Errorf("D1: %w", err)
	}
	d2, err := readRaw(MS5837ConvertD2)
	if err != nil {
		return MS5837Reading{}, fmt.Errorf("D2: %w", err)
	}
	// First-order compensation (datasheet).
	dT := float64(d2) - float64(prom[5])*math.Exp2(8)
	temp := 2000 + dT*float64(prom[6])/math.Exp2(23) // centi-°C
	off := float64(prom[2])*math.Exp2(16) + float64(prom[4])*dT/math.Exp2(7)
	sens := float64(prom[1])*math.Exp2(15) + float64(prom[3])*dT/math.Exp2(8)
	p := (float64(d1)*sens/math.Exp2(21) - off) / math.Exp2(13) // 0.1 mbar
	return MS5837Reading{
		TemperatureC: temp / 100,
		PressureMbar: p / 10,
	}, nil
}
