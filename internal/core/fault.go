package core

import (
	"pab/internal/fault"
	"pab/internal/frame"
	"pab/internal/telemetry"
)

// linkOp is one rung of the sample-level link's adaptation ladder.
type linkOp struct {
	pwmUnit    int // downlink PWM unit, samples
	maxPayload int // uplink payload budget, bytes
}

// buildLadder derives three operating points from the configured
// (fastest) rung: each step toward robustness doubles the downlink PWM
// unit and halves the uplink payload budget (floor 4 bytes). Index 0 is
// the most robust rung, matching the mac.RateControl convention.
func buildLadder(cfg LinkConfig) []linkOp {
	quarter := cfg.MaxReplyPayload / 4
	half := cfg.MaxReplyPayload / 2
	if quarter < 4 {
		quarter = 4
	}
	if half < 4 {
		half = 4
	}
	return []linkOp{
		{pwmUnit: cfg.PWMUnit * 4, maxPayload: quarter},
		{pwmUnit: cfg.PWMUnit * 2, maxPayload: half},
		{pwmUnit: cfg.PWMUnit, maxPayload: cfg.MaxReplyPayload},
	}
}

// SetFaultEngine attaches a fault-injection engine to the link. Every
// subsequent RunQuery consults the engine's timelines at the link's
// fault-clock cursor (the engine's Now, advanced by each exchange's
// recording duration): noise-floor steps scale the injected noise,
// impulse bursts and clipping corrupt the recording, fades attenuate the
// scattered path, truncation and mid-frame brownouts cut the uplink, and
// the node's crystal is skewed by its drawn drift. Pass nil to detach.
func (l *Link) SetFaultEngine(e *fault.Engine) {
	l.fault = e
	if e != nil {
		l.node.SetClockSkewPPM(e.ClockDriftPPM(l.node.Addr()))
	} else {
		l.node.SetClockSkewPPM(0)
	}
}

// FaultEngine returns the attached engine (nil when none).
func (l *Link) FaultEngine() *fault.Engine { return l.fault }

// applyLevel installs the current rung into the live config.
func (l *Link) applyLevel() {
	op := l.ladder[l.level]
	l.cfg.PWMUnit = op.pwmUnit
	l.cfg.MaxReplyPayload = op.maxPayload
	telemetry.Set(telemetry.MCoreLinkLevel, float64(l.level))
}

// Downshift moves one rung toward the robust end — slower downlink PWM,
// smaller uplink payload budget (mac.RateControl).
func (l *Link) Downshift() bool {
	if l.level == 0 {
		return false
	}
	l.level--
	l.applyLevel()
	telemetry.Inc(telemetry.MCoreLinkDownshiftsTotal)
	return true
}

// Upshift moves one rung toward the fast end (mac.RateControl).
func (l *Link) Upshift() bool {
	if l.level >= len(l.ladder)-1 {
		return false
	}
	l.level++
	l.applyLevel()
	telemetry.Inc(telemetry.MCoreLinkUpshiftsTotal)
	return true
}

// Level is the current adaptation rung, 0 = most robust
// (mac.RateControl).
func (l *Link) Level() int { return l.level }

// faultNodeOff reports whether the attached engine (if any) has the
// node unpowered at the link's fault-clock cursor, forcing the brownout
// into the node's power domain.
func (l *Link) faultNodeOff() bool {
	if l.fault == nil {
		return false
	}
	if l.fault.NodeOff(l.node.Addr(), l.fault.Now()) {
		l.node.ForceBrownout()
		return true
	}
	return false
}

// faultQueryError is the error RunQuery returns when the fault engine
// browns the node out before the exchange starts.
func faultQueryError(q frame.Query) error {
	return &NodeOffError{Dest: q.Dest}
}

// NodeOffError reports an exchange refused because the node is
// unpowered.
type NodeOffError struct {
	Dest byte
}

// Error describes the failure.
func (e *NodeOffError) Error() string {
	return "core: node is not powered (supercap below power-on threshold)"
}
