package core

import (
	"testing"

	"pab/internal/frame"
	"pab/internal/node"
)

func TestFDMANetworkEndToEnd(t *testing.T) {
	cfg := DefaultFDMANetworkConfig()
	net, err := NewFDMANetwork(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Channel plan: three distinct channels, properly spaced.
	plan := net.Plan()
	if len(plan) != 3 {
		t.Fatalf("plan %v", plan)
	}
	for i := range plan {
		for j := i + 1; j < len(plan); j++ {
			d := plan[i].FrequencyHz - plan[j].FrequencyHz
			if d < 0 {
				d = -d
			}
			if d < cfg.SpacingHz {
				t.Errorf("channels %g and %g too close", plan[i].FrequencyHz, plan[j].FrequencyHz)
			}
		}
	}
	// All three battery-free nodes charge from their own carriers.
	if err := net.PowerUpAll(120); err != nil {
		t.Fatal(err)
	}
	// One polling round reaches every node.
	replies := net.Round(func(addr byte) frame.Query {
		return frame.Query{Dest: addr, Command: frame.CmdReadSensor, Param: byte(frame.SensorTemperature)}
	})
	for _, spec := range cfg.Nodes {
		df := replies[spec.Addr]
		if df == nil {
			t.Fatalf("node %02x did not reply", spec.Addr)
		}
		id, val, err := node.ParseSensorPayload(df.Payload)
		if err != nil {
			t.Fatalf("node %02x payload: %v", spec.Addr, err)
		}
		if id != frame.SensorTemperature || val < 21 || val > 23 {
			t.Errorf("node %02x: %v = %g", spec.Addr, id, val)
		}
	}
	s := net.Stats()
	if s.Replies != 3 || s.Airtime <= 0 {
		t.Errorf("stats %+v", s)
	}
	if s.GoodputBps() <= 0 {
		t.Error("network goodput should be positive")
	}
}

func TestFDMANetworkValidation(t *testing.T) {
	cfg := DefaultFDMANetworkConfig()
	cfg.Nodes = nil
	if _, err := NewFDMANetwork(cfg, 1); err == nil {
		t.Error("no nodes should error")
	}
	// Over-subscribed band.
	cfg = DefaultFDMANetworkConfig()
	cfg.BandHigh = cfg.BandLow + 100
	if _, err := NewFDMANetwork(cfg, 1); err == nil {
		t.Error("over-subscribed band should error")
	}
}
