package core

import "math/cmplx"

// AxisTracker is the streaming counterpart of estimateAxis: it keeps
// the modulation-axis estimate of a complex baseband stream as running
// first and second moments, so a block-based receiver can project new
// samples onto the current axis without re-reading its window. Σv and
// Σv² suffice — the centred second moment is Σv² − n·mean², the same
// statistic estimateAxis computes directly (up to floating-point
// association).
type AxisTracker struct {
	sum   complex128
	sumSq complex128
	n     float64
}

// Add folds a block into the moment accumulators.
func (a *AxisTracker) Add(block []complex128) {
	var s, sq complex128
	for _, v := range block {
		s += v
		sq += v * v
	}
	a.sum += s
	a.sumSq += sq
	a.n += float64(len(block))
}

// Reset clears the accumulators.
func (a *AxisTracker) Reset() { *a = AxisTracker{} }

// Count returns the number of samples folded in.
func (a *AxisTracker) Count() float64 { return a.n }

// axis materialises the current estimate.
func (a *AxisTracker) axis() modAxis {
	if a.n == 0 {
		return modAxis{rot: 1}
	}
	mean := a.sum / complex(a.n, 0)
	acc := a.sumSq - complex(a.n, 0)*mean*mean
	theta := cmplx.Phase(acc) / 2
	return modAxis{mean: mean, rot: cmplx.Exp(complex(0, -theta))}
}

// ProjectInto projects block onto the current axis estimate — the
// quadrature axis when quad is set, matching the two orthogonal coarse
// projections detectRefinedAll searches — writing into dst, which must
// hold at least len(block) elements. It returns dst[:len(block)].
func (a *AxisTracker) ProjectInto(dst []float64, block []complex128, quad bool) []float64 {
	ax := a.axis()
	if quad {
		ax.rot *= complex(0, 1)
	}
	out := dst[:len(block)]
	for i, v := range block {
		out[i] = real((v - ax.mean) * ax.rot)
	}
	return out
}
