package core

import (
	"errors"
	"testing"

	"pab/internal/fault"
	"pab/internal/frame"
	"pab/internal/node"
	"pab/internal/sensors"
)

func TestBuildLadder(t *testing.T) {
	cfg := DefaultLinkConfig() // PWMUnit 480, MaxReplyPayload 16
	ladder := buildLadder(cfg)
	if len(ladder) != 3 {
		t.Fatalf("ladder has %d rungs, want 3", len(ladder))
	}
	if ladder[2].pwmUnit != cfg.PWMUnit || ladder[2].maxPayload != cfg.MaxReplyPayload {
		t.Errorf("fastest rung %+v does not match the configured point", ladder[2])
	}
	for i := 1; i < len(ladder); i++ {
		if ladder[i-1].pwmUnit <= ladder[i].pwmUnit {
			t.Errorf("rung %d not slower than rung %d: %+v vs %+v", i-1, i, ladder[i-1], ladder[i])
		}
		if ladder[i-1].maxPayload > ladder[i].maxPayload {
			t.Errorf("rung %d carries more payload than rung %d", i-1, i)
		}
	}
	// Small budgets floor at 4 bytes rather than vanishing.
	cfg.MaxReplyPayload = 6
	for _, op := range buildLadder(cfg) {
		if op.maxPayload < 4 {
			t.Errorf("payload budget %d below the 4-byte floor", op.maxPayload)
		}
	}
}

func newFaultLink(t *testing.T) *Link {
	t.Helper()
	cfg := DefaultLinkConfig()
	n, err := NewPaperNode(0x01, 500, sensors.RoomTank())
	if err != nil {
		t.Fatal(err)
	}
	proj, err := NewPaperProjector(cfg.SampleRate)
	if err != nil {
		t.Fatal(err)
	}
	link, err := NewLink(cfg, n, proj)
	if err != nil {
		t.Fatal(err)
	}
	return link
}

func TestLinkRateControl(t *testing.T) {
	link := newFaultLink(t)
	base := link.Config()
	if link.Level() != 2 {
		t.Fatalf("initial level %d, want fastest (2)", link.Level())
	}
	if !link.Downshift() {
		t.Fatal("downshift refused at the fastest rung")
	}
	got := link.Config()
	if got.PWMUnit != 2*base.PWMUnit || got.MaxReplyPayload != base.MaxReplyPayload/2 {
		t.Errorf("after downshift: PWMUnit %d payload %d, want %d and %d",
			got.PWMUnit, got.MaxReplyPayload, 2*base.PWMUnit, base.MaxReplyPayload/2)
	}
	link.Downshift()
	if link.Downshift() {
		t.Error("downshift past the most robust rung")
	}
	for link.Upshift() {
	}
	got = link.Config()
	if link.Level() != 2 || got.PWMUnit != base.PWMUnit || got.MaxReplyPayload != base.MaxReplyPayload {
		t.Errorf("upshifting back did not restore the base point: %+v", got)
	}
}

func TestSetFaultEngineSkewsNodeClock(t *testing.T) {
	link := newFaultLink(t)
	p, err := fault.ByName("drift")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := fault.NewEngine(p, 3, 60, []byte{0x01})
	if err != nil {
		t.Fatal(err)
	}
	link.SetFaultEngine(eng)
	want := eng.ClockDriftPPM(0x01)
	if want == 0 {
		t.Fatal("drift profile drew zero ppm; pick another seed")
	}
	if got := link.Node().ClockSkewPPM(); got != want {
		t.Errorf("node skew %g ppm, want %g", got, want)
	}
	link.SetFaultEngine(nil)
	if got := link.Node().ClockSkewPPM(); got != 0 {
		t.Errorf("detaching left %g ppm of skew", got)
	}
}

// A powered node with a calm engine attached must exchange normally,
// and the exchange must advance the engine's simulated clock.
func TestRunQueryAdvancesFaultClock(t *testing.T) {
	link := newFaultLink(t)
	if !link.PowerUp(120) {
		t.Fatal("node failed to power up")
	}
	p, _ := fault.ByName("calm")
	eng, err := fault.NewEngine(p, 1, 60, []byte{0x01})
	if err != nil {
		t.Fatal(err)
	}
	link.SetFaultEngine(eng)
	res, err := link.RunQuery(frame.Query{Dest: 0x01, Command: frame.CmdPing})
	if err != nil {
		t.Fatal(err)
	}
	if res.Decoded == nil || res.Decoded.Frame.Source != 0x01 {
		t.Fatal("calm exchange failed to decode")
	}
	if eng.Now() <= 0 {
		t.Error("exchange did not advance the fault clock")
	}
}

// A node the engine reports dead is browned out before the exchange and
// the query is refused with the typed error.
func TestRunQueryNodeOff(t *testing.T) {
	link := newFaultLink(t)
	if !link.PowerUp(120) {
		t.Fatal("node failed to power up")
	}
	p, _ := fault.ByName("brownout") // one dead node: the lowest address
	eng, err := fault.NewEngine(p, 1, 60, []byte{0x01})
	if err != nil {
		t.Fatal(err)
	}
	link.SetFaultEngine(eng)
	// Walk the clock until the death/brownout schedule switches the node
	// off; the profile guarantees this within the horizon.
	for eng.Now() < 60 && !eng.NodeOff(0x01, eng.Now()) {
		eng.Advance(0.5)
	}
	if !eng.NodeOff(0x01, eng.Now()) {
		t.Fatal("brownout profile never switched the node off")
	}
	_, err = link.RunQuery(frame.Query{Dest: 0x01, Command: frame.CmdPing})
	var noff *NodeOffError
	if !errors.As(err, &noff) || noff.Dest != 0x01 {
		t.Fatalf("want *NodeOffError for 0x01, got %v", err)
	}
	if link.Node().State() != node.Off {
		t.Error("node still powered after a forced brownout")
	}
}
