package core

import (
	"fmt"

	"pab/internal/frame"
	"pab/internal/node"
	"pab/internal/piezo"
	"pab/internal/projector"
	"pab/internal/rectifier"
	"pab/internal/sensors"
)

// NewPaperNode builds a battery-free node exactly as fabricated in the
// paper (§4): the 17 kHz air-backed cylinder, the 3-stage rectifier PCB,
// the 1000 µF supercapacitor behind an LP5900 LDO, an MSP430-class MCU,
// and two recto-piezo matching circuits (15 kHz and 18 kHz).
func NewPaperNode(addr byte, bitrateBps float64, env sensors.Environment) (*node.Node, error) {
	tr, err := piezo.New(piezo.PaperCylinder())
	if err != nil {
		return nil, err
	}
	fe15, err := node.NewRectoPiezo(tr, rectifier.Paper(), 15000)
	if err != nil {
		return nil, err
	}
	fe18, err := node.NewRectoPiezo(tr, rectifier.Paper(), 18000)
	if err != nil {
		return nil, err
	}
	return node.New(node.Config{
		Addr:       addr,
		FrontEnds:  []*node.RectoPiezo{fe15, fe18},
		MCU:        node.PaperMCU(),
		Cap:        rectifier.PaperSupercap(),
		LDO:        rectifier.PaperLDO(),
		BitrateBps: bitrateBps,
		Env:        env,
	})
}

// NewTunedNode builds a node with a single recto-piezo circuit tuned
// to an arbitrary channel frequency — the knob an FDMA deployment
// turns per node (§3.3.1).
func NewTunedNode(addr byte, bitrateBps, tunedHz float64, env sensors.Environment) (*node.Node, error) {
	tr, err := piezo.New(piezo.PaperCylinder())
	if err != nil {
		return nil, err
	}
	fe, err := node.NewRectoPiezo(tr, rectifier.Paper(), tunedHz)
	if err != nil {
		return nil, err
	}
	return node.New(node.Config{
		Addr:       addr,
		FrontEnds:  []*node.RectoPiezo{fe},
		MCU:        node.PaperMCU(),
		Cap:        rectifier.PaperSupercap(),
		LDO:        rectifier.PaperLDO(),
		BitrateBps: bitrateBps,
		Env:        env,
	})
}

// NewBatteryAssistedNode builds the §1 future-work hybrid: the same
// recto-piezo backscatter node carrying a small primary battery
// (capacity in joules) that covers the digital draw when harvesting
// falls short. Communication stays pure backscatter, so the battery
// drains at microwatts — the configuration the paper suggests "would
// enable deep-sea deployments and exploration".
func NewBatteryAssistedNode(addr byte, bitrateBps, batteryJ float64, env sensors.Environment) (*node.Node, error) {
	tr, err := piezo.New(piezo.PaperCylinder())
	if err != nil {
		return nil, err
	}
	fe15, err := node.NewRectoPiezo(tr, rectifier.Paper(), 15000)
	if err != nil {
		return nil, err
	}
	fe18, err := node.NewRectoPiezo(tr, rectifier.Paper(), 18000)
	if err != nil {
		return nil, err
	}
	return node.New(node.Config{
		Addr:       addr,
		FrontEnds:  []*node.RectoPiezo{fe15, fe18},
		MCU:        node.PaperMCU(),
		Cap:        rectifier.PaperSupercap(),
		LDO:        rectifier.PaperLDO(),
		BitrateBps: bitrateBps,
		BatteryJ:   batteryJ,
		Env:        env,
	})
}

// NewPaperProjector builds the downlink transmitter of §5.1a: an
// in-house transducer of the same design driven by a power amplifier
// capable of 350 V.
func NewPaperProjector(fs float64) (*projector.Projector, error) {
	tr, err := piezo.New(piezo.PaperCylinder())
	if err != nil {
		return nil, err
	}
	return projector.New(tr, 350, fs)
}

// Exchange runs one interrogation cycle and reports it in MAC-friendly
// terms: the decoded reply (nil when the CRC failed or the node stayed
// silent), the cycle airtime, and the uplink SNR estimate. It satisfies
// the mac.Transport contract via a thin adapter.
func (l *Link) Exchange(q frame.Query) (reply *frame.DataFrame, airtimeSeconds, snrLinear float64, err error) {
	res, err := l.RunQuery(q)
	if err != nil {
		return nil, 0, 0, err
	}
	airtime := float64(len(res.Recording)) / l.cfg.SampleRate
	if res.Decoded == nil {
		return nil, airtime, 0, nil
	}
	if res.UplinkBER > 0 || len(res.Decoded.Frame.Payload) == 0 && res.Decoded.Bits == nil {
		return nil, airtime, res.Decoded.SNRLinear, nil
	}
	if res.Decoded.Bits == nil {
		// SNR-only measurement (CRC failed).
		return nil, airtime, res.Decoded.SNRLinear, nil
	}
	df := res.Decoded.Frame
	return &df, airtime, res.Decoded.SNRLinear, nil
}

// EnsurePowered powers the node up if it is cold, returning a
// descriptive error when the link budget cannot charge it within
// maxSeconds of simulated time.
func (l *Link) EnsurePowered(maxSeconds float64) error {
	if l.node.State() != node.Off {
		return nil
	}
	if !l.PowerUp(maxSeconds) {
		return fmt.Errorf("core: node failed to power up within %.0f s (cap %.2f V)", maxSeconds, l.node.CapVoltage())
	}
	return nil
}
