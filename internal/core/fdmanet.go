package core

import (
	"fmt"
	"sort"

	"pab/internal/channel"
	"pab/internal/frame"
	"pab/internal/mac"
	"pab/internal/node"
	"pab/internal/sensors"
	"pab/internal/telemetry"
	"pab/internal/units"
)

// FDMANode describes one sensor node of a polled network.
type FDMANode struct {
	Addr       byte
	Pos        channel.Vec3
	BitrateBps float64
	// BatteryJ > 0 makes the node battery-assisted.
	BatteryJ float64
	Env      sensors.Environment
}

// FDMANetworkConfig describes a reader plus a fleet of recto-piezo
// nodes sharing a tank, each assigned its own resonance channel
// (§3.3.1: "different sensors have different resonance frequencies ...
// naturally leading to FDMA").
type FDMANetworkConfig struct {
	Tank          channel.Tank
	SampleRate    float64
	DriveV        float64
	PWMUnit       int
	ProjectorPos  channel.Vec3
	HydrophonePos channel.Vec3
	Nodes         []FDMANode
	// BandLow/BandHigh bound the usable acoustic band; SpacingHz is the
	// per-channel separation (the recto-piezo bandwidth).
	BandLow, BandHigh, SpacingHz float64
	NoiseRMS                     float64
	ChannelOrder                 int
	Seed                         int64
}

// DefaultFDMANetworkConfig returns a three-node deployment in Pool A
// across the 13.5–16.5 kHz band.
func DefaultFDMANetworkConfig() FDMANetworkConfig {
	base := DefaultLinkConfig()
	return FDMANetworkConfig{
		Tank:          base.Tank,
		SampleRate:    base.SampleRate,
		DriveV:        base.DriveV,
		PWMUnit:       base.PWMUnit,
		ProjectorPos:  base.ProjectorPos,
		HydrophonePos: base.HydrophonePos,
		Nodes: []FDMANode{
			{Addr: 0x11, Pos: channel.Vec3{X: 1.2, Y: 1.3, Z: 0.65}, BitrateBps: 500, Env: sensors.RoomTank()},
			{Addr: 0x12, Pos: channel.Vec3{X: 1.9, Y: 2.1, Z: 0.55}, BitrateBps: 500, Env: sensors.RoomTank()},
			{Addr: 0x13, Pos: channel.Vec3{X: 0.9, Y: 2.4, Z: 0.7}, BitrateBps: 500, Env: sensors.RoomTank()},
		},
		BandLow:      13500,
		BandHigh:     16500,
		SpacingHz:    1500,
		NoiseRMS:     base.NoiseRMS,
		ChannelOrder: base.ChannelOrder,
		Seed:         1,
	}
}

// FDMANetwork is a deployed fleet: one physical link per node, each on
// its assigned channel, plus the MAC's polling machinery. The reader
// addresses one node per query (round-robin time division); the FDMA
// assignment means every node's front end stays matched to its own
// channel, so no retuning happens between queries — and pairs of
// adjacent channels can be upgraded to concurrent operation with
// RunConcurrent.
type FDMANetwork struct {
	cfg   FDMANetworkConfig
	plan  []mac.Assignment
	links map[byte]*Link
	net   *mac.Network
}

// NewFDMANetwork plans channels and deploys the fleet.
func NewFDMANetwork(cfg FDMANetworkConfig, maxRetries int) (*FDMANetwork, error) {
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("core: no nodes")
	}
	infos := make([]mac.NodeInfo, len(cfg.Nodes))
	for i, n := range cfg.Nodes {
		infos[i] = mac.NodeInfo{Addr: n.Addr} // fully tunable recto-piezos
	}
	plan, err := mac.PlanFDMA(infos, cfg.BandLow, cfg.BandHigh, cfg.SpacingHz)
	if err != nil {
		return nil, err
	}

	links := make(map[byte]*Link, len(cfg.Nodes))
	transports := make(map[byte]mac.Transport, len(cfg.Nodes))
	for i, spec := range cfg.Nodes {
		lcfg := LinkConfig{
			Tank:          cfg.Tank,
			SampleRate:    cfg.SampleRate,
			CarrierHz:     plan[i].FrequencyHz,
			DriveV:        cfg.DriveV,
			PWMUnit:       cfg.PWMUnit,
			ProjectorPos:  cfg.ProjectorPos,
			HydrophonePos: cfg.HydrophonePos,
			NodePos:       spec.Pos,
			NoiseRMS:      cfg.NoiseRMS,
			ChannelOrder:  cfg.ChannelOrder,
			Seed:          cfg.Seed + int64(i),
		}
		var nd *node.Node
		if spec.BatteryJ > 0 {
			nd, err = NewBatteryAssistedNode(spec.Addr, spec.BitrateBps, spec.BatteryJ, spec.Env)
		} else {
			nd, err = newTunedNode(spec.Addr, spec.BitrateBps, plan[i].FrequencyHz, spec.Env)
		}
		if err != nil {
			return nil, fmt.Errorf("core: node %02x: %w", spec.Addr, err)
		}
		proj, err := NewPaperProjector(cfg.SampleRate)
		if err != nil {
			return nil, err
		}
		link, err := NewLink(lcfg, nd, proj)
		if err != nil {
			return nil, fmt.Errorf("core: link %02x: %w", spec.Addr, err)
		}
		links[spec.Addr] = link
		transports[spec.Addr] = linkTransportAdapter{link}
	}
	net, err := mac.NewNetwork(transports, maxRetries)
	if err != nil {
		return nil, err
	}
	telemetry.Set(telemetry.MCoreFdmaChannels, float64(len(plan)))
	return &FDMANetwork{cfg: cfg, plan: plan, links: links, net: net}, nil
}

// newTunedNode builds a node whose single matching circuit is tuned to
// the assigned channel frequency.
func newTunedNode(addr byte, bitrate, tunedHz float64, env sensors.Environment) (*node.Node, error) {
	n, err := NewPaperNode(addr, bitrate, env)
	if err != nil {
		return nil, err
	}
	// NewPaperNode carries 15 kHz and 18 kHz circuits; for other
	// channels rebuild with the assigned tuning.
	if units.ApproxEqual(tunedHz, 15000, 1e-9) {
		return n, nil
	}
	return NewTunedNode(addr, bitrate, tunedHz, env)
}

// linkTransportAdapter exposes a Link as a mac.Transport.
type linkTransportAdapter struct{ l *Link }

// Exchange implements mac.Transport.
func (t linkTransportAdapter) Exchange(q frame.Query) (mac.Exchange, error) {
	reply, airtime, snr, err := t.l.Exchange(q)
	if err != nil {
		return mac.Exchange{}, err
	}
	return mac.Exchange{Reply: reply, AirtimeSeconds: airtime, SNRLinear: snr}, nil
}

// Plan returns the channel assignments.
func (n *FDMANetwork) Plan() []mac.Assignment { return n.plan }

// Link returns the physical link for one node.
func (n *FDMANetwork) Link(addr byte) *Link { return n.links[addr] }

// PowerUpAll charges every node in address order; it returns the first
// failure (deterministic: map iteration order must not pick the error).
func (n *FDMANetwork) PowerUpAll(maxSeconds float64) error {
	addrs := make([]byte, 0, len(n.links))
	for addr := range n.links {
		addrs = append(addrs, addr)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, addr := range addrs {
		if err := n.links[addr].EnsurePowered(maxSeconds); err != nil {
			return fmt.Errorf("core: node %02x: %w", addr, err)
		}
	}
	return nil
}

// Round polls every node once with the query builder (round-robin time
// division across the FDMA channels).
func (n *FDMANetwork) Round(build func(addr byte) frame.Query) map[byte]*frame.DataFrame {
	return n.net.Round(build)
}

// Stats returns the aggregated MAC counters.
func (n *FDMANetwork) Stats() mac.Stats { return n.net.Stats() }
