package core

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"

	"pab/internal/channel"
	"pab/internal/dsp"
	"pab/internal/mimo"
	"pab/internal/node"
	"pab/internal/phy"
	"pab/internal/piezo"
	"pab/internal/projector"
	"pab/internal/telemetry"
)

// ConcurrentConfig describes the two-node FDMA experiment of §6.3: one
// projector transmitting on two carriers, two recto-piezo nodes tuned to
// different resonances, one hydrophone decoding the collision.
type ConcurrentConfig struct {
	Tank          channel.Tank
	SampleRate    float64
	Carriers      [2]float64 // the nodes' resonance frequencies
	DriveV        float64
	ProjectorPos  channel.Vec3
	HydrophonePos channel.Vec3
	NodePos       [2]channel.Vec3
	BitrateBps    float64
	PayloadBits   int // concurrent payload length per node
	NoiseRMS      float64
	ChannelOrder  int
	Seed          int64
}

// DefaultConcurrentConfig returns the paper's §6.3 setup: 15 kHz and
// 18 kHz recto-piezos in Pool A.
func DefaultConcurrentConfig() ConcurrentConfig {
	return ConcurrentConfig{
		Tank:          channel.PoolA(),
		SampleRate:    96000,
		Carriers:      [2]float64{15000, 18000},
		DriveV:        100,
		ProjectorPos:  channel.Vec3{X: 0.5, Y: 0.5, Z: 0.65},
		HydrophonePos: channel.Vec3{X: 0.7, Y: 0.6, Z: 0.65},
		NodePos: [2]channel.Vec3{
			{X: 1.2, Y: 1.5, Z: 0.6},
			{X: 2.0, Y: 2.2, Z: 0.7},
		},
		// 200 bps keeps each FM0 half-bit longer than the tanks' echo
		// spread, so the flat-fading 2×2 channel model of §3.3.2 holds
		// across placements.
		BitrateBps:   200,
		PayloadBits:  64,
		NoiseRMS:     0.5,
		ChannelOrder: 2,
		Seed:         1,
	}
}

// ConcurrentResult reports the collision-decoding experiment for one
// placement.
type ConcurrentResult struct {
	// SINRBefore/SINRAfter are per-node linear SINRs before and after
	// zero-forcing projection (the two bar groups of Fig 10).
	SINRBefore [2]float64
	SINRAfter  [2]float64
	// BERBefore/BERAfter are per-node payload bit error rates decoding
	// without and with projection.
	BERBefore [2]float64
	BERAfter  [2]float64
	// Condition is the estimated channel matrix condition number.
	Condition float64
	// PayloadBits are the bits each node transmitted.
	PayloadBits [2][]phy.Bit
}

// SINRBeforeDB returns the before-projection SINRs in dB.
func (r *ConcurrentResult) SINRBeforeDB() [2]float64 {
	return [2]float64{toDB(r.SINRBefore[0]), toDB(r.SINRBefore[1])}
}

// SINRAfterDB returns the after-projection SINRs in dB.
func (r *ConcurrentResult) SINRAfterDB() [2]float64 {
	return [2]float64{toDB(r.SINRAfter[0]), toDB(r.SINRAfter[1])}
}

func toDB(x float64) float64 {
	if x <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(x)
}

// RunConcurrent executes the collision experiment: both nodes are
// activated by a dual-tone downlink, send staggered training preambles,
// then backscatter their payloads simultaneously. The receiver
// downconverts at both carriers, estimates the 2×2 channel from the
// training windows, zero-forces, and measures SINR before and after
// projection (§3.3.2, Fig 10).
func RunConcurrent(cfg ConcurrentConfig, nodes [2]*node.Node, proj *projector.Projector) (*ConcurrentResult, error) {
	if nodes[0] == nil || nodes[1] == nil || proj == nil {
		return nil, fmt.Errorf("core: nil nodes or projector")
	}
	if cfg.SampleRate <= 0 || cfg.BitrateBps <= 0 || cfg.PayloadBits < 8 {
		return nil, fmt.Errorf("core: bad concurrent config")
	}
	if cfg.ChannelOrder == 0 {
		cfg.ChannelOrder = 2
	}
	sp := telemetry.StartSpan("concurrent_exchange").
		Attr("carrier0_hz", cfg.Carriers[0]).Attr("carrier1_hz", cfg.Carriers[1])
	defer sp.End()
	telemetry.Inc(telemetry.MCoreConcurrentRunsTotal)
	fs := cfg.SampleRate
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Propagation responses.
	opts := channel.Options{MaxOrder: cfg.ChannelOrder, MinGain: 0.02, CarrierHz: (cfg.Carriers[0] + cfg.Carriers[1]) / 2}
	var irPN, irNH [2]*channel.ImpulseResponse
	for k := 0; k < 2; k++ {
		var err error
		irPN[k], err = cfg.Tank.Response(cfg.ProjectorPos, cfg.NodePos[k], fs, opts)
		if err != nil {
			return nil, err
		}
		irNH[k], err = cfg.Tank.Response(cfg.NodePos[k], cfg.HydrophonePos, fs, opts)
		if err != nil {
			return nil, err
		}
	}
	irPH, err := cfg.Tank.Response(cfg.ProjectorPos, cfg.HydrophonePos, fs, opts)
	if err != nil {
		return nil, err
	}

	spb, err := phy.SamplesPerBitFor(fs, cfg.BitrateBps)
	if err != nil {
		return nil, err
	}
	fm0, err := phy.NewFM0(spb)
	if err != nil {
		return nil, err
	}

	// Schedule (sample indices in the projector timeline):
	//   [0, settle)                       carrier only
	//   [settle, settle+T)                node 0 trains alone
	//   [.., +T)                          node 1 trains alone
	//   [.., +P)                          both send payload concurrently
	settle := int(0.05 * fs)
	trainLen := len(phy.PreambleBits) * spb
	payLen := cfg.PayloadBits * spb
	total := settle + 2*trainLen + payLen + int(0.05*fs)

	// Dual-tone downlink.
	x := make([]float64, 0, total)
	tone := func(f float64) []float64 {
		return dsp.Sine(proj.PressureAmplitude(cfg.DriveV, f), f, fs, 0, total)
	}
	x1 := tone(cfg.Carriers[0])
	x2 := tone(cfg.Carriers[1])
	x = make([]float64, total)
	copy(x, x1)
	dsp.Add(x, x2)

	// Per-node switch schedules.
	res := &ConcurrentResult{}
	trainWave := fm0.EncodeTemplate(phy.PreambleBits)
	schedules := [2][]float64{}
	for k := 0; k < 2; k++ {
		//pablint:ignore allocloop per-node payload bits are retained in the result; two iterations of setup code
		bits := make([]phy.Bit, cfg.PayloadBits)
		for i := range bits {
			bits[i] = phy.Bit(rng.Intn(2))
		}
		res.PayloadBits[k] = bits
		payload, _ := fm0.Encode(bits, 1)
		//pablint:ignore allocloop per-node schedule is retained across the simulation; two iterations of setup code
		sched := make([]float64, total)
		// -1 (absorptive) everywhere except own training and payload.
		for i := range sched {
			sched[i] = -1
		}
		tStart := settle + k*trainLen
		copy(sched[tStart:], trainWave)
		pStart := settle + 2*trainLen
		copy(sched[pStart:], payload)
		schedules[k] = sched
	}

	// Physical reflection: per node, per tone (backscatter is
	// frequency-agnostic but with frequency-dependent depth).
	y := irPH.Apply(x)
	reflected := make([]float64, total) // reused across nodes; fully rewritten each pass
	for k := 0; k < 2; k++ {
		fe := nodes[k].FrontEnd()
		aTone1 := dsp.AnalyticSignal(irPN[k].Apply(x1))
		aTone2 := dsp.AnalyticSignal(irPN[k].Apply(x2))
		gains := [2][2]complex128{}
		for t, f := range cfg.Carriers {
			gains[t][0] = fe.ReflectionCoeff(piezo.Absorptive, f)
			gains[t][1] = fe.ReflectionCoeff(piezo.Reflective, f)
		}
		// The resonator slews between states over its ring time τ.
		tau := fe.ResponseTimeConstant()
		alpha := complex(1-math.Exp(-1/(tau*fs)), 0)
		g1 := gains[0][0]
		g2 := gains[1][0]
		for i := 0; i < total; i++ {
			state := 0
			if schedules[k][i] > 0 {
				state = 1
			}
			g1 += alpha * (gains[0][state] - g1)
			g2 += alpha * (gains[1][state] - g2)
			reflected[i] = real(g1*aTone1[i] + g2*aTone2[i])
		}
		scat := irNH[k].Apply(reflected)
		if len(scat) > len(y) {
			//pablint:ignore allocloop grow-once to the longest scatter tail, at most twice over the whole simulation
			y = append(y, make([]float64, len(scat)-len(y))...)
		}
		dsp.Add(y, scat)
	}
	noise := cfg.NoiseRMS
	if noise <= 0 {
		noise = 0.05
	}
	channel.AddWhiteNoise(y, noise, rng)

	// Receiver: record, downconvert at both carriers.
	recv, err := NewReceiver(fs)
	if err != nil {
		return nil, err
	}
	volts, err := recv.Hydro.Record(y)
	if err != nil {
		return nil, err
	}
	// The channel filters must reject the neighbouring carrier, which
	// sits only |f2−f1| away — tighter than the single-link cutoff.
	spacing := math.Abs(cfg.Carriers[1] - cfg.Carriers[0])
	cutoff := math.Min(4*phy.OccupiedBandwidth(cfg.BitrateBps), 0.4*spacing)
	var bb [2][]complex128
	for t, f := range cfg.Carriers {
		bb[t], err = recv.DemodulateBand(volts, f, cutoff)
		if err != nil {
			return nil, err
		}
	}

	// Windows in the receiver timeline. The switch schedules modulate
	// the field at the node in projector-timeline indices (pTone is
	// already propagation-delayed), so only the node→hydrophone hop
	// shifts the modulation at the receiver. Zero-phase filtering keeps
	// the edges centred.
	// Reference waveforms (0/1 levels) aligned to the windows.
	ref01 := make([]float64, len(trainWave))
	for i, v := range trainWave {
		ref01[i] = (v + 1) / 2
	}
	// Multipath can displace each node's effective modulation from the
	// geometric first-tap delay, so refine each node's delay by
	// maximising the training-window channel estimate on the node's own
	// frequency (standard training-based timing sync).
	delay := func(k int) int {
		base := int(irNH[k].Taps[0].DelaySeconds * fs)
		bestOff, bestMag := 0, -1.0
		step := spb / 8
		if step < 1 {
			step = 1
		}
		for off := -spb; off <= spb; off += step {
			start := settle + k*trainLen + base + off
			if start < 0 || start+trainLen > len(bb[k]) {
				continue
			}
			g := mimo.EstimateGain(bb[k][start:start+trainLen], ref01)
			if m := cmplx.Abs(g); m > bestMag {
				bestMag, bestOff = m, off
			}
		}
		return base + bestOff
	}
	win := func(k int) [2]int {
		s := settle + k*trainLen + delay(k)
		return [2]int{s, s + trainLen}
	}
	h, err := mimo.EstimateChannel(bb[0], bb[1], ref01, ref01, win(0), win(1))
	if err != nil {
		return nil, err
	}
	res.Condition = h.ConditionNumber()
	telemetry.Observe(telemetry.MCoreConcurrentCondition, res.Condition)

	// Payload section.
	payStart0 := settle + 2*trainLen + delay(0)
	payStart1 := settle + 2*trainLen + delay(1)
	refPay := func(k int) []float64 {
		w, _ := fm0.Encode(res.PayloadBits[k], 1)
		out := make([]float64, len(w))
		for i, v := range w {
			out[i] = (v + 1) / 2
		}
		return out
	}
	ref0 := refPay(0)
	ref1 := refPay(1)
	seg := func(x []complex128, start, n int) []complex128 {
		if start >= len(x) {
			return nil
		}
		end := start + n
		if end > len(x) {
			end = len(x)
		}
		return x[start:end]
	}
	n0 := len(ref0)
	n1 := len(ref1)
	half := spb / 2
	res.SINRBefore[0] = mimo.SINRBlocked(seg(bb[0], payStart0, n0), ref0, half)
	res.SINRBefore[1] = mimo.SINRBlocked(seg(bb[1], payStart1, n1), ref1, half)

	rec0, rec1, err := mimo.ZeroForce(bb[0], bb[1], h)
	if err != nil {
		return nil, err
	}
	res.SINRAfter[0] = mimo.SINRBlocked(seg(rec0, payStart0, n0), ref0, half)
	res.SINRAfter[1] = mimo.SINRBlocked(seg(rec1, payStart1, n1), ref1, half)

	// BER before/after via FM0 decoding of the coherent projection. The
	// projection has a sign ambiguity that the training phase resolves
	// in a real deployment, so decode with both polarities and keep the
	// better one.
	decodeBER := func(x []complex128, start int, bits []phy.Bit) float64 {
		s := seg(x, start, len(bits)*spb)
		if len(s) < spb {
			return 1
		}
		wave := CoherentWave(s)
		gotA, _ := fm0.DecodeFrom(wave, len(bits), 1)
		gotB, _ := fm0.DecodeFrom(wave, len(bits), -1)
		berA := phy.BER(bits, gotA)
		if berB := phy.BER(bits, gotB); berB < berA {
			return berB
		}
		return berA
	}
	res.BERBefore[0] = decodeBER(bb[0], payStart0, res.PayloadBits[0])
	res.BERBefore[1] = decodeBER(bb[1], payStart1, res.PayloadBits[1])
	res.BERAfter[0] = decodeBER(rec0, payStart0, res.PayloadBits[0])
	res.BERAfter[1] = decodeBER(rec1, payStart1, res.PayloadBits[1])
	return res, nil
}
