package core

import (
	"math"
	"math/rand"
	"testing"

	"pab/internal/channel"
	"pab/internal/dsp"
	"pab/internal/frame"
	"pab/internal/node"
	"pab/internal/phy"
	"pab/internal/sensors"
)

// ---------------------------------------------------------------------------
// Receiver internals
// ---------------------------------------------------------------------------

func TestCoherentWaveRecoversQuadratureModulation(t *testing.T) {
	// Modulation entirely in quadrature with the carrier: envelope
	// detection sees almost nothing; the coherent projection recovers it.
	rng := rand.New(rand.NewSource(3))
	n := 8000
	carrier := complex(1.0, 0)
	bb := make([]complex128, n)
	mod := make([]float64, n)
	for i := range bb {
		m := float64((i / 200) % 2) // 0/1 square modulation
		mod[i] = m
		bb[i] = carrier + complex(0, 0.1*m) + complex(rng.NormFloat64(), rng.NormFloat64())*1e-3
	}
	wave := CoherentWave(bb)
	// The projection should swing by ≈0.1 between states.
	var hi, lo float64
	var nh, nl int
	for i := range wave {
		if mod[i] > 0 {
			hi += wave[i]
			nh++
		} else {
			lo += wave[i]
			nl++
		}
	}
	swing := math.Abs(hi/float64(nh) - lo/float64(nl))
	if swing < 0.09 {
		t.Errorf("coherent swing %g, want ~0.1 (envelope would see ~0.005)", swing)
	}
}

func TestEstimateAxisEmpty(t *testing.T) {
	a := estimateAxis(nil)
	if a.rot != 1 {
		t.Error("empty axis should default to identity rotation")
	}
	if out := projectAxis(nil, a); len(out) != 0 {
		t.Error("empty projection should be empty")
	}
}

func TestCorrectCFOIfRealKeepsRealOffsets(t *testing.T) {
	r, err := NewReceiver(96000)
	if err != nil {
		t.Fatal(err)
	}
	// A genuine 30 Hz offset: correction should be kept.
	n := 48000
	bb := make([]complex128, n)
	for i := range bb {
		ph := 2 * math.Pi * 30 * float64(i) / 96000
		bb[i] = complex(math.Cos(ph), math.Sin(ph))
	}
	fixed, cfo := r.correctCFOIfReal(bb)
	if math.Abs(cfo-30) > 1 {
		t.Errorf("estimated CFO %g, want ~30", cfo)
	}
	if resid := phy.EstimateCFO(fixed, 96000); math.Abs(resid) > 1 {
		t.Errorf("residual %g Hz after correction", resid)
	}
}

func TestCorrectCFOIfRealRejectsSpuriousEstimates(t *testing.T) {
	r, err := NewReceiver(96000)
	if err != nil {
		t.Fatal(err)
	}
	// A coherent carrier with asymmetric amplitude structure that biases
	// the lag-1 estimator: the correction must be rejected (cfo → 0).
	rng := rand.New(rand.NewSource(7))
	n := 48000
	bb := make([]complex128, n)
	for i := range bb {
		amp := 1.0
		if (i/970)%3 == 0 { // aperiodic-ish amplitude structure
			amp = 0.3
		}
		bb[i] = complex(amp, 0) + complex(0, rng.NormFloat64()*0.15)
	}
	fixed, cfo := r.correctCFOIfReal(bb)
	if cfo != 0 {
		// If an estimate was kept, the carrier must genuinely be more
		// concentrated afterwards.
		if carrierConcentration(fixed) < carrierConcentration(bb) {
			t.Errorf("kept CFO %g that reduced carrier concentration", cfo)
		}
	}
}

func TestCarrierConcentrationBounds(t *testing.T) {
	if carrierConcentration(nil) != 0 {
		t.Error("empty should be 0")
	}
	pure := []complex128{1, 1, 1, 1}
	if c := carrierConcentration(pure); math.Abs(c-1) > 1e-12 {
		t.Errorf("pure phasor concentration %g", c)
	}
	spread := []complex128{1, -1, 1, -1}
	if c := carrierConcentration(spread); c > 1e-12 {
		t.Errorf("alternating phasor concentration %g, want 0", c)
	}
}

// ---------------------------------------------------------------------------
// Failure injection
// ---------------------------------------------------------------------------

// burstLink wraps a Link recording and injects a noise burst into the
// uplink region before decoding, to force CRC failures.
func TestARQRecoversFromBurstNoise(t *testing.T) {
	// Run a normal exchange, then corrupt the uplink with a strong burst
	// and verify the receiver reports a failure rather than a wrong
	// frame — the condition that triggers the MAC's retransmission
	// (§5.1b).
	l := newTestLink(t, DefaultLinkConfig(), 500)
	if !l.PowerUp(60) {
		t.Fatal("power up failed")
	}
	res, err := l.RunQuery(frame.Query{Dest: 0x0A, Command: frame.CmdPing})
	if err != nil {
		t.Fatal(err)
	}
	if res.Decoded == nil || res.UplinkBER > 0 {
		t.Fatal("baseline exchange should be clean")
	}

	// Corrupt the middle of the uplink in the recording and re-decode.
	recording := append([]float64{}, res.Recording...)
	start := res.Decoded.Sync.Index + 2000
	rng := rand.New(rand.NewSource(1))
	burstRMS := dsp.RMS(recording) * 20
	for i := start; i < start+30000 && i < len(recording); i++ {
		recording[i] += rng.NormFloat64() * burstRMS
	}
	dec, err := l.Receiver().DecodeUplink(recording, l.Config().CarrierHz, l.Node().Bitrate(), 0)
	if err == nil && dec != nil {
		// If anything decoded it must be CRC-clean and correct.
		want := res.UplinkBits[len(phy.PreambleBits):]
		if phy.BER(want, dec.Bits) > 0 {
			t.Error("decoder returned a CRC-passing frame with bit errors")
		}
	}
	// Either way the link-layer exchange path degrades gracefully: a
	// retry on the clean channel succeeds.
	reply, _, _, err := l.Exchange(frame.Query{Dest: 0x0A, Command: frame.CmdPing})
	if err != nil || reply == nil {
		t.Fatalf("retry on the clean channel failed: %v", err)
	}
}

func TestExchangeForeignAddressReturnsNoReply(t *testing.T) {
	l := newTestLink(t, DefaultLinkConfig(), 500)
	if !l.PowerUp(60) {
		t.Fatal("power up failed")
	}
	reply, airtime, _, err := l.Exchange(frame.Query{Dest: 0x55, Command: frame.CmdPing})
	if err != nil {
		t.Fatal(err)
	}
	if reply != nil {
		t.Error("foreign address should produce no reply")
	}
	if airtime <= 0 {
		t.Error("airtime should still accrue (the query was transmitted)")
	}
}

func TestBatteryAssistedLinkBeyondHarvestRange(t *testing.T) {
	// The §1 hybrid end to end: at a range where the battery-free node
	// cannot harvest, the battery-assisted node boots and communicates.
	cfg := DefaultLinkConfig()
	cfg.Tank = channel.PoolB()
	cfg.DriveV = 60
	cfg.ProjectorPos = channel.Vec3{X: 0.6, Y: 0.4, Z: 0.5}
	cfg.HydrophonePos = channel.Vec3{X: 0.8, Y: 0.6, Z: 0.5}
	cfg.NodePos = channel.Vec3{X: 0.6, Y: 8.4, Z: 0.5}

	free, err := NewPaperNode(0x31, 200, sensors.RoomTank())
	if err != nil {
		t.Fatal(err)
	}
	proj, err := NewPaperProjector(cfg.SampleRate)
	if err != nil {
		t.Fatal(err)
	}
	freeLink, err := NewLink(cfg, free, proj)
	if err != nil {
		t.Fatal(err)
	}
	if freeLink.CanEverPowerUp() {
		t.Fatal("test setup: battery-free node should NOT power at this range")
	}

	assisted, err := NewBatteryAssistedNode(0x32, 200, 2000, sensors.RoomTank())
	if err != nil {
		t.Fatal(err)
	}
	proj2, err := NewPaperProjector(cfg.SampleRate)
	if err != nil {
		t.Fatal(err)
	}
	link, err := NewLink(cfg, assisted, proj2)
	if err != nil {
		t.Fatal(err)
	}
	if !link.PowerUp(5) {
		t.Fatal("battery node should boot instantly")
	}
	res, err := link.RunQuery(frame.Query{Dest: 0x32, Command: frame.CmdPing})
	if err != nil {
		t.Fatal(err)
	}
	if res.Decoded == nil || res.UplinkBER > 0 {
		t.Fatalf("battery-assisted uplink failed (BER %g)", res.UplinkBER)
	}
	if assisted.BatteryRemaining() >= 2000 {
		t.Error("battery should have been debited")
	}
	if node.PowerState(assisted.State()) == node.Off {
		t.Error("node should still be running")
	}
}

func TestBrownoutMidOperationRecovers(t *testing.T) {
	// Drain the node below the brown-out threshold, then re-charge: the
	// node must boot again and answer (the supercapacitor power cycle).
	l := newTestLink(t, DefaultLinkConfig(), 500)
	if !l.PowerUp(60) {
		t.Fatal("initial power up failed")
	}
	n := l.Node()
	// No field: idle draw drains the cap.
	for i := 0; i < 2_000_000 && n.State() != node.Off; i++ {
		n.HarvestStep(0, 15000, 1.482e6, 0.01)
	}
	if n.State() != node.Off {
		t.Fatal("node should brown out")
	}
	if !l.PowerUp(120) {
		t.Fatal("recharge failed")
	}
	res, err := l.RunQuery(frame.Query{Dest: 0x0A, Command: frame.CmdPing})
	if err != nil {
		t.Fatal(err)
	}
	if res.Decoded == nil || res.UplinkBER > 0 {
		t.Error("post-recovery exchange failed")
	}
}

func TestTraceFadesUnderSurfaceWaves(t *testing.T) {
	// The same Fig 2 trace run in calm and wavy water: waves make the
	// carrier level wander over the wave period (§8's open-water
	// challenge).
	calmCfg := DefaultLinkConfig()
	calmCfg.NoiseRMS = 0.05
	wavyCfg := calmCfg
	wavyCfg.Surface = channel.SurfaceMotion{AmplitudeM: 0.08, PeriodS: 0.4}

	variation := func(cfg LinkConfig) float64 {
		l := newTestLink(t, cfg, 500)
		tr, err := l.RunTrace(1.2, 0.1, 1.15, 5) // carrier only, essentially
		if err != nil {
			t.Fatal(err)
		}
		idx := func(sec float64) int { return int(sec * tr.SampleRate) }
		var levels []float64
		for s := 0.3; s+0.1 < 1.1; s += 0.1 {
			levels = append(levels, dsp.Mean(tr.Amplitude[idx(s):idx(s+0.1)]))
		}
		minL, maxL := levels[0], levels[0]
		for _, v := range levels {
			minL = math.Min(minL, v)
			maxL = math.Max(maxL, v)
		}
		return maxL / minL
	}
	calm := variation(calmCfg)
	wavy := variation(wavyCfg)
	if wavy <= calm*1.03 {
		t.Errorf("wavy variation %.3f should exceed calm %.3f", wavy, calm)
	}
}

func TestSwimmingPoolValidation(t *testing.T) {
	// §5.1d: "we also validated that the system operates correctly in an
	// indoor swimming pool" — the full exchange in the third environment.
	cfg := DefaultLinkConfig()
	cfg.Tank = channel.SwimmingPool()
	cfg.ProjectorPos = channel.Vec3{X: 3, Y: 3, Z: 1}
	cfg.HydrophonePos = channel.Vec3{X: 3.2, Y: 3.1, Z: 1}
	cfg.NodePos = channel.Vec3{X: 4.1, Y: 4.2, Z: 1}
	l := newTestLink(t, cfg, 500)
	if !l.PowerUp(120) {
		t.Fatal("node failed to power in the pool")
	}
	res, err := l.RunQuery(frame.Query{Dest: 0x0A, Command: frame.CmdReadSensor, Param: byte(frame.SensorPressure)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Decoded == nil || res.UplinkBER > 0 {
		t.Fatalf("pool exchange failed (BER %g)", res.UplinkBER)
	}
	_, val, err := node.ParseSensorPayload(res.Decoded.Frame.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(val-1013) > 2 {
		t.Errorf("pressure %g mbar, want ~1013", val)
	}
}
