package core
