package core

import (
	"math"
	"math/rand"
	"testing"
)

func axisSignal(n int) []complex128 {
	rng := rand.New(rand.NewSource(9))
	bb := make([]complex128, n)
	for i := range bb {
		// Carrier mean + modulation along a tilted axis + noise.
		mod := 0.0
		if (i/50)%2 == 0 {
			mod = 1
		}
		bb[i] = complex(3+mod*0.4+0.01*rng.NormFloat64(), 1+mod*0.3+0.01*rng.NormFloat64())
	}
	return bb
}

func TestAxisTrackerMatchesBatchEstimate(t *testing.T) {
	bb := axisSignal(4000)
	want := projectAxis(bb, estimateAxis(bb))
	for _, block := range []int{1, 37, 256, 1024, len(bb)} {
		var tr AxisTracker
		for off := 0; off < len(bb); off += block {
			end := off + block
			if end > len(bb) {
				end = len(bb)
			}
			tr.Add(bb[off:end])
		}
		if tr.Count() != float64(len(bb)) {
			t.Fatalf("block %d: count %g, want %d", block, tr.Count(), len(bb))
		}
		got := tr.ProjectInto(make([]float64, len(bb)), bb, false)
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("block %d: sample %d: got %v want %v", block, i, got[i], want[i])
			}
		}
	}
}

func TestAxisTrackerQuadratureOrthogonal(t *testing.T) {
	bb := axisSignal(2000)
	var tr AxisTracker
	tr.Add(bb)
	inphase := tr.ProjectInto(make([]float64, len(bb)), bb, false)
	quad := tr.ProjectInto(make([]float64, len(bb)), bb, true)
	// The two projections come from orthogonal rotations of the same
	// centred samples, so their energies sum to the centred energy.
	var eI, eQ, eC float64
	ax := tr.axis()
	for i, v := range bb {
		d := v - ax.mean
		eC += real(d)*real(d) + imag(d)*imag(d)
		eI += inphase[i] * inphase[i]
		eQ += quad[i] * quad[i]
	}
	if math.Abs(eI+eQ-eC) > 1e-6*eC {
		t.Fatalf("energy mismatch: I %g + Q %g != centred %g", eI, eQ, eC)
	}
}

func TestAxisTrackerEmptyAndReset(t *testing.T) {
	var tr AxisTracker
	out := tr.ProjectInto(make([]float64, 3), []complex128{1, 2, 3}, false)
	for i, v := range out {
		if v != float64(i+1) {
			t.Fatalf("empty tracker should be the identity projection, got %v", out)
		}
	}
	tr.Add([]complex128{5, 6})
	tr.Reset()
	if tr.Count() != 0 {
		t.Fatalf("count after Reset = %g", tr.Count())
	}
}
