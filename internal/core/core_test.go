package core

import (
	"math"
	"testing"

	"pab/internal/channel"
	"pab/internal/dsp"
	"pab/internal/frame"
	"pab/internal/node"
	"pab/internal/piezo"
	"pab/internal/projector"
	"pab/internal/rectifier"
	"pab/internal/sensors"
)

// newTestNode builds a paper-standard node with 15 kHz and 18 kHz
// recto-piezos.
func newTestNode(t *testing.T, addr byte, bitrate float64) *node.Node {
	t.Helper()
	tr, err := piezo.New(piezo.PaperCylinder())
	if err != nil {
		t.Fatal(err)
	}
	fe15, err := node.NewRectoPiezo(tr, rectifier.Paper(), 15000)
	if err != nil {
		t.Fatal(err)
	}
	fe18, err := node.NewRectoPiezo(tr, rectifier.Paper(), 18000)
	if err != nil {
		t.Fatal(err)
	}
	n, err := node.New(node.Config{
		Addr:       addr,
		FrontEnds:  []*node.RectoPiezo{fe15, fe18},
		MCU:        node.PaperMCU(),
		Cap:        rectifier.PaperSupercap(),
		LDO:        rectifier.PaperLDO(),
		BitrateBps: bitrate,
		Env:        sensors.RoomTank(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func newTestProjector(t *testing.T, fs float64) *projector.Projector {
	t.Helper()
	tr, err := piezo.New(piezo.PaperCylinder())
	if err != nil {
		t.Fatal(err)
	}
	p, err := projector.New(tr, 350, fs)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func newTestLink(t *testing.T, cfg LinkConfig, bitrate float64) *Link {
	t.Helper()
	n := newTestNode(t, 0x0A, bitrate)
	p := newTestProjector(t, cfg.SampleRate)
	l, err := NewLink(cfg, n, p)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestNewLinkValidation(t *testing.T) {
	cfg := DefaultLinkConfig()
	n := newTestNode(t, 1, 500)
	p := newTestProjector(t, cfg.SampleRate)
	if _, err := NewLink(cfg, nil, p); err == nil {
		t.Error("nil node should error")
	}
	bad := cfg
	bad.CarrierHz = 0
	if _, err := NewLink(bad, n, p); err == nil {
		t.Error("zero carrier should error")
	}
	bad = cfg
	bad.NodePos = channel.Vec3{X: 99, Y: 0, Z: 0}
	if _, err := NewLink(bad, n, p); err == nil {
		t.Error("node outside tank should error")
	}
	bad = cfg
	bad.PWMUnit = 2
	if _, err := NewLink(bad, n, p); err == nil {
		t.Error("tiny PWM unit should error")
	}
}

func TestPowerUpNearProjector(t *testing.T) {
	l := newTestLink(t, DefaultLinkConfig(), 500)
	if l.Node().State() != node.Off {
		t.Fatal("node should start cold")
	}
	if !l.CanEverPowerUp() {
		t.Fatal("nominal link should be able to power up")
	}
	if !l.PowerUp(60) {
		t.Fatalf("node failed to power up (cap %.2f V)", l.Node().CapVoltage())
	}
}

func TestPowerUpFailsWhenWeak(t *testing.T) {
	cfg := DefaultLinkConfig()
	cfg.DriveV = 0.5 // almost no source level
	l := newTestLink(t, cfg, 500)
	if l.CanEverPowerUp() {
		t.Error("0.5 V drive should not be able to power the node")
	}
	if l.PowerUp(5) {
		t.Error("node should not power up at 0.5 V drive")
	}
}

func TestRunQueryRequiresPower(t *testing.T) {
	l := newTestLink(t, DefaultLinkConfig(), 500)
	if _, err := l.RunQuery(frame.Query{Dest: 0x0A, Command: frame.CmdPing}); err == nil {
		t.Error("query against a cold node should error")
	}
}

func TestEndToEndPing(t *testing.T) {
	l := newTestLink(t, DefaultLinkConfig(), 500)
	if !l.PowerUp(60) {
		t.Fatal("power up failed")
	}
	res, err := l.RunQuery(frame.Query{Dest: 0x0A, Command: frame.CmdPing})
	if err != nil {
		t.Fatal(err)
	}
	if !res.NodeDecodedQuery {
		t.Fatal("node failed to decode the downlink query")
	}
	if res.UplinkBits == nil {
		t.Fatal("node produced no uplink")
	}
	if res.Decoded == nil {
		t.Fatal("receiver decoded nothing")
	}
	if res.UplinkBER > 0 {
		t.Errorf("uplink BER %g, want 0 at close range", res.UplinkBER)
	}
	if res.Decoded.Frame.Source != 0x0A {
		t.Errorf("frame source %x, want 0a", res.Decoded.Frame.Source)
	}
	if res.Decoded.SNRLinear < 2 {
		t.Errorf("SNR %g too low for a close link", res.Decoded.SNRLinear)
	}
}

func TestEndToEndSensorReading(t *testing.T) {
	l := newTestLink(t, DefaultLinkConfig(), 500)
	if !l.PowerUp(60) {
		t.Fatal("power up failed")
	}
	res, err := l.RunQuery(frame.Query{Dest: 0x0A, Command: frame.CmdReadSensor, Param: byte(frame.SensorPH)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Decoded == nil || res.UplinkBER > 0 {
		t.Fatalf("sensor exchange failed (ber %g)", res.UplinkBER)
	}
	id, val, err := node.ParseSensorPayload(res.Decoded.Frame.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if id != frame.SensorPH || math.Abs(val-7.0) > 0.05 {
		t.Errorf("decoded %v=%g, want pH≈7 (paper §6.5)", id, val)
	}
}

func TestForeignAddressStaysQuiet(t *testing.T) {
	l := newTestLink(t, DefaultLinkConfig(), 500)
	if !l.PowerUp(60) {
		t.Fatal("power up failed")
	}
	res, err := l.RunQuery(frame.Query{Dest: 0x77, Command: frame.CmdPing})
	if err != nil {
		t.Fatal(err)
	}
	if !res.NodeDecodedQuery {
		t.Error("node should still decode the query")
	}
	if res.UplinkBits != nil {
		t.Error("node should not reply to a foreign address")
	}
}

func TestSNRDecreasesWithNoise(t *testing.T) {
	// The low-noise link is ISI-limited (tank reverberation), so the
	// noise must be strong enough to dominate that floor before the SNR
	// responds — hence 2 Pa vs 200 Pa.
	var snrs []float64
	for _, noise := range []float64{2.0, 200.0} {
		cfg := DefaultLinkConfig()
		cfg.NoiseRMS = noise
		l := newTestLink(t, cfg, 500)
		if !l.PowerUp(60) {
			t.Fatal("power up failed")
		}
		res, err := l.RunQuery(frame.Query{Dest: 0x0A, Command: frame.CmdPing})
		if err != nil {
			t.Fatal(err)
		}
		if res.Decoded == nil {
			t.Fatal("no decode")
		}
		snrs = append(snrs, res.Decoded.SNRLinear)
	}
	if snrs[1] >= snrs[0] {
		t.Errorf("SNR should fall with noise: %v", snrs)
	}
}

func TestTraceShowsTwoLevels(t *testing.T) {
	// Fig 2: after backscatter starts, the demodulated amplitude
	// alternates between two levels.
	cfg := DefaultLinkConfig()
	cfg.NoiseRMS = 0.1
	l := newTestLink(t, cfg, 500)
	tr, err := l.RunTrace(1.5, 0.2, 0.8, 5)
	if err != nil {
		t.Fatal(err)
	}
	idx := func(sec float64) int { return int(sec * tr.SampleRate) }
	// Quiet before TX starts.
	pre := dsp.Mean(tr.Amplitude[:idx(0.15)])
	// Constant carrier between TX start and backscatter start.
	carrier := dsp.Mean(tr.Amplitude[idx(0.4):idx(0.7)])
	if carrier < 10*pre {
		t.Errorf("carrier level %g should dwarf pre-TX %g", carrier, pre)
	}
	// During backscatter the amplitude alternates: measure spread over
	// windows of half toggle period (100 ms).
	var highs, lows []float64
	for s := 0.85; s+0.1 < 1.5; s += 0.1 {
		m := dsp.Mean(tr.Amplitude[idx(s):idx(s+0.09)])
		if len(highs) == 0 || m > dsp.Mean(highs) {
			highs = append(highs, m)
		} else {
			lows = append(lows, m)
		}
	}
	// Spread between backscatter windows should exceed the pre-TX noise.
	var all []float64
	all = append(all, highs...)
	all = append(all, lows...)
	maxV, minV := all[0], all[0]
	for _, v := range all {
		maxV = math.Max(maxV, v)
		minV = math.Min(minV, v)
	}
	if maxV-minV <= 2*pre {
		t.Errorf("backscatter modulation %g–%g not visible above noise %g", minV, maxV, pre)
	}
	if _, err := l.RunTrace(1, 0.5, 0.4, 5); err == nil {
		t.Error("invalid schedule should error")
	}
}

func TestConcurrentCollisionDecoding(t *testing.T) {
	// Fig 10: SINR improves after zero-forcing projection.
	cfg := DefaultConcurrentConfig()
	nodes := [2]*node.Node{newTestNode(t, 1, cfg.BitrateBps), newTestNode(t, 2, cfg.BitrateBps)}
	// Node 1 uses the 18 kHz circuit.
	powerNode(t, nodes[0], 15000)
	powerNode(t, nodes[1], 18000)
	switchFrontEnd(t, nodes[1], 1)
	proj := newTestProjector(t, cfg.SampleRate)
	res, err := RunConcurrent(cfg, nodes, proj)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 2; k++ {
		if res.SINRAfter[k] <= res.SINRBefore[k] {
			t.Errorf("node %d: SINR after projection (%g) should exceed before (%g)",
				k, res.SINRAfter[k], res.SINRBefore[k])
		}
		if res.BERAfter[k] > res.BERBefore[k] {
			t.Errorf("node %d: BER after (%g) should not exceed before (%g)",
				k, res.BERAfter[k], res.BERBefore[k])
		}
	}
	if res.Condition <= 0 {
		t.Error("condition number should be positive")
	}
}

func powerNode(t *testing.T, n *node.Node, f float64) {
	t.Helper()
	rhoC := piezo.RhoC(1482, false)
	for i := 0; i < 200000 && n.State() == node.Off; i++ {
		n.HarvestStep(3000, f, rhoC, 1e-3)
	}
	if n.State() == node.Off {
		t.Fatal("node did not power on")
	}
}

func switchFrontEnd(t *testing.T, n *node.Node, idx int) {
	t.Helper()
	if _, err := n.HandleQuery(frame.Query{Dest: n.Addr(), Command: frame.CmdSwitchResonance, Param: byte(idx)}); err != nil {
		t.Fatal(err)
	}
}

func TestRunConcurrentValidation(t *testing.T) {
	cfg := DefaultConcurrentConfig()
	proj := newTestProjector(t, cfg.SampleRate)
	if _, err := RunConcurrent(cfg, [2]*node.Node{nil, nil}, proj); err == nil {
		t.Error("nil nodes should error")
	}
	nodes := [2]*node.Node{newTestNode(t, 1, 500), newTestNode(t, 2, 500)}
	bad := cfg
	bad.PayloadBits = 0
	if _, err := RunConcurrent(bad, nodes, proj); err == nil {
		t.Error("zero payload should error")
	}
}

func TestReceiverFindCarriers(t *testing.T) {
	r, err := NewReceiver(96000)
	if err != nil {
		t.Fatal(err)
	}
	x := dsp.Sine(1, 15000, 96000, 0, 16384)
	y := dsp.Sine(0.7, 18000, 96000, 0, 16384)
	dsp.Add(x, y)
	carriers := r.FindCarriers(x, 2)
	if len(carriers) != 2 {
		t.Fatalf("found %d carriers, want 2", len(carriers))
	}
	if math.Abs(carriers[0]-15000) > 50 || math.Abs(carriers[1]-18000) > 50 {
		t.Errorf("carriers %v", carriers)
	}
}

func TestDecodedSNRdB(t *testing.T) {
	d := &Decoded{SNRLinear: 100}
	if math.Abs(d.SNRdB()-20) > 1e-9 {
		t.Errorf("SNRdB = %g", d.SNRdB())
	}
	zero := &Decoded{}
	if !math.IsInf(zero.SNRdB(), -1) {
		t.Error("zero SNR should be -Inf dB")
	}
}

func TestReceiverRejectsGarbage(t *testing.T) {
	r, err := NewReceiver(96000)
	if err != nil {
		t.Fatal(err)
	}
	noise := make([]float64, 48000)
	for i := range noise {
		noise[i] = math.Sin(float64(i)*0.01) * 0.001
	}
	if _, err := r.DecodeUplink(noise, 15000, 500, 0); err == nil {
		t.Error("garbage should not decode")
	}
	if _, err := r.DecodeUplink(noise, 15000, 500, len(noise)+5); err == nil {
		t.Error("out-of-range gate should error")
	}
}
