// Package core wires the PAB system together: projector → tank channel →
// battery-free node → hydrophone → offline decoder, at the sample level.
// It is the paper's primary contribution — underwater backscatter
// communication (§3), recto-piezo multiple access (§3.3.1) and collision
// decoding (§3.3.2) — running end to end over the simulated substrates.
package core

import (
	"fmt"
	"math"
	"math/cmplx"
	"sort"

	"pab/internal/dsp"
	"pab/internal/frame"
	"pab/internal/hydrophone"
	"pab/internal/phy"
	"pab/internal/prof"
	"pab/internal/telemetry"
)

// Receiver is the hydrophone-side offline decoder (paper §5.1b): FFT
// carrier identification, downconversion, Butterworth channel filtering,
// packet detection, CFO correction and ML FM0 decoding.
type Receiver struct {
	Hydro      hydrophone.Hydrophone
	SampleRate float64
	// FilterOrder of the Butterworth low-pass used after mixing.
	FilterOrder int
	// DetectThreshold is the normalised preamble correlation threshold.
	DetectThreshold float64
}

// NewReceiver returns the paper's receiver configuration.
func NewReceiver(fs float64) (*Receiver, error) {
	if fs <= 0 {
		return nil, fmt.Errorf("core: sample rate must be positive, got %g", fs)
	}
	hyd := hydrophone.H2a()
	hyd.AutoGain = true // the operator trims the input level to avoid clipping
	return &Receiver{
		Hydro:           hyd,
		SampleRate:      fs,
		FilterOrder:     4,
		DetectThreshold: 0.55,
	}, nil
}

// FindCarriers identifies up to maxN downlink carrier frequencies in a
// recording by FFT peak detection (§5.1b).
func (r *Receiver) FindCarriers(recording []float64, maxN int) []float64 {
	peaks := dsp.FindPeaks(recording, r.SampleRate, maxN, 1000, 0)
	out := make([]float64, 0, len(peaks))
	for _, p := range peaks {
		out = append(out, p.Frequency)
	}
	return out
}

// Demodulate mixes the recording down by the carrier and low-pass
// filters, returning the complex baseband whose magnitude is the
// amplitude trace of Fig 2. The cutoff tracks the backscatter bandwidth.
func (r *Receiver) Demodulate(recording []float64, carrier, bitrate float64) ([]complex128, error) {
	// Four times the FM0 occupied bandwidth keeps the bit transitions
	// sharp enough for the half-bit correlators.
	cutoff := 4 * phy.OccupiedBandwidth(bitrate)
	if cutoff < 200 {
		cutoff = 200
	}
	if cutoff > r.SampleRate/4 {
		cutoff = r.SampleRate / 4
	}
	return r.DemodulateBand(recording, carrier, cutoff)
}

// DemodulateBand is Demodulate with an explicit low-pass cutoff — needed
// when concurrent carriers sit close together and the channel filter
// must reject the neighbour (§5.1b's per-channel Butterworth filters).
func (r *Receiver) DemodulateBand(recording []float64, carrier, cutoff float64) ([]complex128, error) {
	if cutoff > r.SampleRate/4 {
		cutoff = r.SampleRate / 4
	}
	return dsp.DownconvertLP(recording, carrier, r.SampleRate, cutoff, r.FilterOrder)
}

// CoherentWave projects a complex baseband stream onto its modulation
// axis: it removes the mean (the un-modulated direct carrier), estimates
// the modulation phasor direction from the second moment of the
// residual, and returns the real projection. This recovers the full
// backscatter swing even when the reflected path arrives in quadrature
// with the direct carrier — where plain envelope detection sees almost
// nothing (deep multipath fading, the location dependence of Fig 10).
func CoherentWave(bb []complex128) []float64 {
	return projectAxis(bb, estimateAxis(bb))
}

// modAxis is an estimated modulation axis: the carrier mean and the unit
// rotation that brings the modulation onto the real axis.
type modAxis struct {
	mean complex128
	rot  complex128
}

// estimateAxis fits the axis over a segment (ideally one known to
// contain modulation, such as a detected preamble).
func estimateAxis(seg []complex128) modAxis {
	if len(seg) == 0 {
		return modAxis{rot: 1}
	}
	var mean complex128
	for _, v := range seg {
		mean += v
	}
	mean /= complex(float64(len(seg)), 0)
	var acc complex128
	for _, v := range seg {
		d := v - mean
		acc += d * d
	}
	theta := cmplx.Phase(acc) / 2
	return modAxis{mean: mean, rot: cmplx.Exp(complex(0, -theta))}
}

// projectAxis applies an axis estimate to a whole stream.
func projectAxis(bb []complex128, a modAxis) []float64 {
	out := make([]float64, len(bb))
	for i, v := range bb {
		out[i] = real((v - a.mean) * a.rot)
	}
	return out
}

// CoherentWaveTracked projects bb onto a slowly *rotating* modulation
// axis: the axis is re-estimated per block and the per-block 180°
// ambiguity is resolved by phase continuity with the previous block.
// This is the mobile-receiver upgrade the paper's §8 anticipates — a
// drifting node Doppler-rotates the backscatter phasor through the
// packet, which a fixed-axis projection smears.
func CoherentWaveTracked(bb []complex128, blockLen int) []float64 {
	if len(bb) == 0 {
		return nil
	}
	if blockLen < 8 || blockLen > len(bb) {
		return CoherentWave(bb)
	}
	out := make([]float64, len(bb))
	prevRot := complex(1, 0)
	havePrev := false
	for start := 0; start < len(bb); start += blockLen {
		end := start + blockLen
		if end > len(bb) {
			end = len(bb)
		}
		a := estimateAxis(bb[start:end])
		if havePrev {
			// The second-moment axis is defined modulo 180°; pick the
			// sign that stays continuous with the previous block.
			if real(a.rot*cmplx.Conj(prevRot)) < 0 {
				a.rot = -a.rot
			}
		}
		prevRot = a.rot
		havePrev = true
		for i := start; i < end; i++ {
			out[i] = real((bb[i] - a.mean) * a.rot)
		}
	}
	return out
}

// Decoded is the result of decoding one uplink packet.
type Decoded struct {
	// Frame is the CRC-verified data frame.
	Frame frame.DataFrame
	// Bits are the raw decoded payload-section bits (post-preamble).
	Bits []phy.Bit
	// SNRLinear is the paper's §6.1a estimate over the packet.
	SNRLinear float64
	// Sync describes where the packet was found.
	Sync phy.Sync
	// CFOHz is the estimated carrier frequency offset.
	CFOHz float64
	// PreambleBitErrors counts re-decoded preamble bits that disagree
	// with the known pattern at the accepted lock (0 on a clean lock).
	PreambleBitErrors int
}

// SNRdB returns the SNR in decibels.
func (d *Decoded) SNRdB() float64 {
	if d.SNRLinear <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(d.SNRLinear)
}

// DecodeUplink runs the full uplink receive chain on a pressure-domain
// recording: record through the hydrophone, demodulate at the carrier,
// detect the FM0 preamble, and decode a length-prefixed data frame at
// the given backscatter bitrate.
//
// searchFrom gates the decoder to the samples after the reader's own
// downlink query: the reader transmitted the query itself, so it knows
// when its PWM keying ended, and the huge downlink amplitude swings
// would otherwise dominate the modulation-axis estimate.
func (r *Receiver) DecodeUplink(pressure []float64, carrier, bitrate float64, searchFrom int) (*Decoded, error) {
	return r.DecodeUplinkTraced(nil, pressure, carrier, bitrate, searchFrom)
}

// DecodeUplinkTraced is DecodeUplink with an optional parent telemetry
// span: the demod → sync → decode stages become child spans, every
// attempt — successful or not — files a telemetry.DecodeReport, and the
// whole chain runs under a stage=decode_uplink pprof label so CPU
// profiles attribute receiver time separately from the rest of a
// simulation job.
func (r *Receiver) DecodeUplinkTraced(parent *telemetry.Span, pressure []float64, carrier, bitrate float64, searchFrom int) (*Decoded, error) {
	var dec *Decoded
	var err error
	prof.Do(nil, func() {
		dec, err = r.decodeUplinkStaged(parent, pressure, carrier, bitrate, searchFrom)
	}, "stage", "decode_uplink")
	rep := telemetry.DecodeReport{CarrierHz: carrier, BitrateBps: bitrate}
	if err != nil {
		telemetry.Inc(telemetry.MCoreUplinkDecodeFailuresTotal)
		rep.Error = err.Error()
		telemetry.RecordDecode(rep)
		return nil, err
	}
	telemetry.Inc(telemetry.MCoreUplinkDecodesTotal)
	telemetry.ObserveN(telemetry.MCoreUplinkSnrDb, snrDBBuckets, dec.SNRdB())
	rep.Decoded = true
	rep.SlicerSNRdB = dec.SNRdB()
	rep.SyncPeak = dec.Sync.Score
	rep.SyncIndex = dec.Sync.Index
	rep.CFOHz = dec.CFOHz
	rep.PreambleBitErrors = dec.PreambleBitErrors
	rep.PayloadBits = len(dec.Bits)
	telemetry.RecordDecode(rep)
	return dec, nil
}

// snrDBBuckets cover the paper's operating range (Fig 7: ~3–20 dB).
var snrDBBuckets = []float64{-10, -5, 0, 2, 5, 8, 11, 15, 20, 25, 30}

func (r *Receiver) decodeUplinkStaged(parent *telemetry.Span, pressure []float64, carrier, bitrate float64, searchFrom int) (*Decoded, error) {
	spDemod := parent.Child("demod")
	stRecord := prof.Start(prof.StageRecord)
	volts, err := r.Hydro.Record(pressure)
	stRecord.Stop(len(pressure))
	if err != nil {
		spDemod.End()
		return nil, err
	}
	return r.decodeVoltsStaged(parent, spDemod, volts, carrier, bitrate, searchFrom)
}

// DecodeVolts runs the receive chain on a voltage-domain recording — the
// signal as it leaves the hydrophone front end, before any mixing. It is
// DecodeUplink minus the hydrophone stage: demodulate at the carrier,
// gate to searchFrom, correct CFO, and decode at the given bitrate.
// Streaming front ends that capture voltages directly (a sound card, a
// network ingest) enter the batch chain here.
func (r *Receiver) DecodeVolts(volts []float64, carrier, bitrate float64, searchFrom int) (*Decoded, error) {
	return r.decodeVoltsStaged(nil, nil, volts, carrier, bitrate, searchFrom)
}

// decodeVoltsStaged is the voltage-domain chain body. spDemod, when
// non-nil, is an already-open demod span covering the hydrophone stage;
// when nil one is opened here. Either way it is closed before sync.
func (r *Receiver) decodeVoltsStaged(parent, spDemod *telemetry.Span, volts []float64, carrier, bitrate float64, searchFrom int) (*Decoded, error) {
	if spDemod == nil {
		spDemod = parent.Child("demod")
	}
	bb, err := r.Demodulate(volts, carrier, bitrate)
	if err != nil {
		spDemod.End()
		return nil, err
	}
	if searchFrom < 0 {
		searchFrom = 0
	}
	if searchFrom >= len(bb) {
		spDemod.End()
		return nil, fmt.Errorf("core: search start %d beyond recording %d", searchFrom, len(bb))
	}
	bb = bb[searchFrom:]
	// Estimate and remove the projector/hydrophone oscillator offset
	// (footnote 12). Multipath-skewed spectra can bias the estimator, so
	// the correction is only kept when it measurably concentrates the
	// carrier.
	bb, cfo := r.correctCFOIfReal(bb)
	spDemod.Attr("samples", len(bb)).Attr("cfo_hz", cfo).End()
	return r.decodeBasebandStaged(parent, bb, bitrate, cfo, searchFrom)
}

// DecodeBaseband runs the detection and decode half of the chain on
// complex baseband that was mixed and filtered elsewhere — the entry
// point for the block-based receiver in internal/stream, whose window is
// already at baseband. Indices in the result are relative to bb.
func (r *Receiver) DecodeBaseband(bb []complex128, bitrate float64) (*Decoded, error) {
	bb2, cfo := r.correctCFOIfReal(bb)
	return r.decodeBasebandStaged(nil, bb2, bitrate, cfo, 0)
}

// decodeBasebandStaged detects and decodes on an already-demodulated,
// CFO-corrected baseband stream. indexOffset is added to the reported
// sync indices (the batch path gates the stream at searchFrom and
// reports indices in pre-gate coordinates).
func (r *Receiver) decodeBasebandStaged(parent *telemetry.Span, bb []complex128, bitrate, cfo float64, indexOffset int) (*Decoded, error) {
	spb, err := phy.SamplesPerBitFor(r.SampleRate, bitrate)
	if err != nil {
		return nil, err
	}
	fm0, err := phy.NewFM0(spb)
	if err != nil {
		return nil, err
	}
	spSync := parent.Child("sync")
	cands, err := r.detectRefinedAll(bb, fm0)
	if err != nil {
		spSync.End()
		return nil, err
	}
	spSync.Attr("candidates", len(cands)).End()

	spDecode := parent.Child("decode")
	defer spDecode.End()
	stDecode := prof.Start(prof.StageDecode)
	defer stDecode.Stop(len(bb))
	// Try candidates in score order; the CRC arbitrates which lock is
	// the real packet (payload structure can out-correlate the preamble
	// under heavy ISI).
	var firstErr error
	for _, c := range cands {
		dec, err := r.decodeAt(bb, c.wave, c.sync, fm0)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		dec.Sync.Index += indexOffset
		dec.Sync.PayloadIndex += indexOffset
		dec.CFOHz = cfo
		return dec, nil
	}
	// Last resort: a Doppler-rotating channel (moving node) smears every
	// fixed-axis projection; retry on block-tracked projections, finer
	// blocks tolerating faster rotation at the cost of noisier per-block
	// axis estimates.
	preLen := len(phy.PreambleBits) * spb
	for _, block := range []int{preLen, preLen / 2, preLen / 4} {
		tracked := CoherentWaveTracked(bb, block)
		sync, err := phy.DetectPacket(tracked, fm0, r.DetectThreshold)
		if err != nil {
			continue
		}
		dec, err := r.decodeAt(bb, tracked, sync, fm0)
		if err != nil {
			continue
		}
		dec.Sync.Index += indexOffset
		dec.Sync.PayloadIndex += indexOffset
		dec.CFOHz = cfo
		return dec, nil
	}
	return nil, firstErr
}

// decodeAt decodes a length-prefixed data frame at a detected lock.
func (r *Receiver) decodeAt(bb []complex128, env []float64, sync phy.Sync, fm0 *phy.FM0) (*Decoded, error) {
	// Decode the header first to learn the payload length, then the
	// whole frame.
	headerBits, _ := fm0.DecodeFrom(env[sync.PayloadIndex:], 24, sync.PayloadLevel)
	if len(headerBits) < 24 {
		return nil, fmt.Errorf("core: truncated header: %d bits", len(headerBits))
	}
	header, err := frame.FromBits(headerBits)
	if err != nil {
		return nil, err
	}
	payloadLen := int(header[2])
	if payloadLen > frame.MaxPayload {
		return nil, fmt.Errorf("core: implausible payload length %d", payloadLen)
	}
	total := frame.DataFrameBitLength(payloadLen)
	bits, _ := fm0.DecodeFrom(env[sync.PayloadIndex:], total, sync.PayloadLevel)
	if len(bits) < total {
		return nil, fmt.Errorf("core: truncated frame: %d of %d bits", len(bits), total)
	}
	raw, err := frame.FromBits(bits)
	if err != nil {
		return nil, err
	}
	df, err := frame.UnmarshalDataFrame(raw)
	if err != nil {
		return nil, err // CRC failure — MAC layer requests retransmission
	}

	// SNR over preamble + frame, the §6.1a way. With the packet extent
	// now confirmed by the CRC, re-estimate the modulation axis over
	// exactly that extent (the best available channel estimate) and
	// search a small alignment neighbourhood — multipath can shift the
	// correlation peak a few samples off the energy-optimal point.
	allBits := append(append([]phy.Bit{}, phy.PreambleBits...), bits...)
	packetLen := len(allBits) * fm0.SamplesPerBit
	endIdx := sync.Index + packetLen
	if endIdx > len(bb) {
		endIdx = len(bb)
	}
	span := fm0.SamplesPerBit / 4
	step := fm0.SamplesPerBit / 16
	if step < 1 {
		step = 1
	}
	// Project only the packet window (± the alignment span): the SNR
	// search never reads outside it, and projecting the whole recording
	// allocated len(bb) floats per decode.
	winLo := sync.Index - span
	if winLo < 0 {
		winLo = 0
	}
	winHi := endIdx + span
	if winHi > len(bb) {
		winHi = len(bb)
	}
	refined := projectAxis(bb[winLo:winHi], estimateAxis(bb[sync.Index:endIdx]))
	snr := 0.0
	for _, w := range [...]struct {
		wave []float64
		base int // index of wave[0] in recording coordinates
	}{{env, 0}, {refined, winLo}} {
		for off := -span; off <= span; off += step {
			idx := sync.Index + off - w.base
			if idx < 0 || idx >= len(w.wave) {
				continue
			}
			if s := phy.MeasureSNR(w.wave[idx:], allBits, fm0); s > snr {
				snr = s
			}
		}
	}

	// Re-decode the preamble region against the known pattern — a
	// per-packet lock-quality diagnostic (bit errors inside the preamble
	// mean the correlator locked on a degraded or offset template).
	preErrs := 0
	preBits, _ := fm0.DecodeFrom(env[sync.Index:], len(phy.PreambleBits), sync.StartLevel)
	for i, b := range preBits {
		if b != phy.PreambleBits[i] {
			preErrs++
		}
	}

	return &Decoded{
		Frame:             df,
		Bits:              bits,
		SNRLinear:         snr,
		Sync:              sync,
		PreambleBitErrors: preErrs,
	}, nil
}

// MeasureUplinkSNR decodes as much as possible and returns the SNR even
// when the CRC fails — Fig 7/8 need SNR for packets that do not decode
// cleanly. knownBits, when non-nil, are the transmitted bits (ground
// truth available in the controlled experiments).
func (r *Receiver) MeasureUplinkSNR(pressure []float64, carrier, bitrate float64, knownBits []phy.Bit, searchFrom int) (snrLinear float64, ber float64, err error) {
	volts, err := r.Hydro.Record(pressure)
	if err != nil {
		return 0, 1, err
	}
	bb, err := r.Demodulate(volts, carrier, bitrate)
	if err != nil {
		return 0, 1, err
	}
	if searchFrom < 0 {
		searchFrom = 0
	}
	if searchFrom >= len(bb) {
		return 0, 1, fmt.Errorf("core: search start %d beyond recording %d", searchFrom, len(bb))
	}
	bb = bb[searchFrom:]
	bb, _ = r.correctCFOIfReal(bb)
	spb, err := phy.SamplesPerBitFor(r.SampleRate, bitrate)
	if err != nil {
		return 0, 1, err
	}
	fm0, err := phy.NewFM0(spb)
	if err != nil {
		return 0, 1, err
	}
	cands, err := r.detectRefinedAll(bb, fm0)
	if err != nil {
		return 0, 1, err
	}
	// Evaluate every candidate lock and keep the one with the highest
	// measured SNR — the same arbitration DecodeUplink gets from the
	// CRC, available here even when the packet is too corrupted to pass.
	best := -1.0
	bestBER := 1.0
	for _, c := range cands {
		n := len(knownBits)
		if n == 0 {
			n = (len(c.wave) - c.sync.Index) / spb
		}
		got, _ := fm0.DecodeFrom(c.wave[c.sync.Index:], n, c.sync.StartLevel)
		snr := phy.MeasureSNR(c.wave[c.sync.Index:], got, fm0)
		if snr > best {
			best = snr
			if knownBits != nil {
				bestBER = phy.BER(knownBits, got)
			} else {
				bestBER = 0
			}
		}
	}
	if best < 0 {
		return 0, 1, fmt.Errorf("core: no usable candidate lock")
	}
	return best, bestBER, nil
}

// detectRefined runs two-pass coherent detection: a coarse pass with the
// axis estimated over the whole stream locates the preamble, then the
// axis is re-estimated over the detected preamble alone — where the
// modulation is guaranteed present — and detection and decoding proceed
// on the refined projection. This is the per-packet channel estimation
// of the paper's receiver (§5.1b).
type refinedLock struct {
	wave []float64
	sync phy.Sync
}

// detectRefinedAll returns every surviving candidate lock, best refined
// score first.
func (r *Receiver) detectRefinedAll(bb []complex128, fm0 *phy.FM0) ([]refinedLock, error) {
	// The global second-moment axis can sit arbitrarily far from the
	// true modulation axis when the stream is mostly unmodulated
	// carrier, leaving the real preamble buried on the coarse
	// projection. Search two orthogonal coarse projections — the signal
	// appears at ≥ 1/√2 of its amplitude on at least one of them.
	axis := estimateAxis(bb)
	axisQ := axis
	axisQ.rot *= complex(0, 1)
	firstThresh := r.DetectThreshold / 2
	if firstThresh > 0.3 {
		firstThresh = 0.3
	}
	preambleLen := len(phy.PreambleBits) * fm0.SamplesPerBit
	cands := make([]phy.Sync, 0, 16) // two projections × maxK=8 below
	for _, a := range []modAxis{axis, axisQ} {
		coarse := projectAxis(bb, a)
		cs, err := phy.DetectPacketCandidates(coarse, fm0, firstThresh, 8, preambleLen)
		if err != nil {
			continue
		}
		cands = append(cands, cs...)
	}
	if len(cands) == 0 {
		return nil, fmt.Errorf("core: no preamble candidates on either projection")
	}
	out := make([]refinedLock, 0, len(cands))
	for _, cand := range cands {
		end := cand.Index + preambleLen
		if end > len(bb) {
			end = len(bb)
		}
		wave := projectAxis(bb, estimateAxis(bb[cand.Index:end]))
		// Re-detect only in a small window around this candidate: a
		// global re-detect would let every candidate's refined wave
		// converge onto the single strongest peak, collapsing the
		// candidate set before the CRC can arbitrate.
		lo := cand.Index - fm0.SamplesPerBit
		if lo < 0 {
			lo = 0
		}
		hi := cand.Index + fm0.SamplesPerBit + preambleLen
		if hi > len(wave) {
			hi = len(wave)
		}
		sync, err := phy.DetectPacket(wave[lo:hi], fm0, r.DetectThreshold)
		if err != nil {
			continue
		}
		sync.Index += lo
		sync.PayloadIndex += lo
		out = append(out, refinedLock{wave: wave, sync: sync})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("core: no candidate packet survived axis refinement")
	}
	sort.Slice(out, func(a, b int) bool { return out[a].sync.Score > out[b].sync.Score })
	// Deduplicate locks that converged to the same index.
	dedup := out[:1]
	for _, c := range out[1:] {
		seen := false
		for _, d := range dedup {
			if abs(c.sync.Index-d.sync.Index) < preambleLen/2 {
				seen = true
				break
			}
		}
		if !seen {
			//pablint:ignore allocloop dedup reslices out's backing array (cap ≥ len(out) bounds every append); no reallocation possible
			dedup = append(dedup, c)
		}
	}
	return dedup, nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// detectRefined returns the best candidate lock (compat wrapper).
func (r *Receiver) detectRefined(bb []complex128, fm0 *phy.FM0) ([]float64, phy.Sync, error) {
	coarse := CoherentWave(bb)
	// Generous threshold for the first pass: the global axis may be far
	// from the modulation axis, and payload structure can out-correlate
	// the true preamble on the coarse projection — so evaluate several
	// candidates and keep the one whose refined projection scores best.
	firstThresh := r.DetectThreshold / 2
	if firstThresh > 0.3 {
		firstThresh = 0.3
	}
	preambleLen := len(phy.PreambleBits) * fm0.SamplesPerBit
	cands, err := phy.DetectPacketCandidates(coarse, fm0, firstThresh, 8, preambleLen)
	if err != nil {
		return nil, phy.Sync{}, err
	}
	var bestWave []float64
	var bestSync phy.Sync
	found := false
	for _, cand := range cands {
		end := cand.Index + preambleLen
		if end > len(bb) {
			end = len(bb)
		}
		wave := projectAxis(bb, estimateAxis(bb[cand.Index:end]))
		sync, err := phy.DetectPacket(wave, fm0, r.DetectThreshold)
		if err != nil {
			continue
		}
		if !found || sync.Score > bestSync.Score {
			bestWave, bestSync, found = wave, sync, true
		}
	}
	if !found {
		return nil, phy.Sync{}, fmt.Errorf("core: no candidate packet survived axis refinement")
	}
	return bestWave, bestSync, nil
}

// CoherentWaveAround projects bb using the axis estimated over
// [start, end) — a debugging/analysis helper.
func CoherentWaveAround(bb []complex128, start, end int) []float64 {
	if start < 0 {
		start = 0
	}
	if end > len(bb) {
		end = len(bb)
	}
	return projectAxis(bb, estimateAxis(bb[start:end]))
}

// correctCFOIfReal estimates the carrier frequency offset and applies
// the correction only when it concentrates the carrier (|Σbb|/Σ|bb|
// rises) — a spurious estimate from a multipath-skewed spectrum would
// otherwise smear a perfectly coherent stream.
func (r *Receiver) correctCFOIfReal(bb []complex128) ([]complex128, float64) {
	cfo := phy.EstimateCFO(bb, r.SampleRate)
	if math.Abs(cfo) <= 0.5 {
		return bb, cfo
	}
	corrected := phy.CorrectCFO(bb, cfo, r.SampleRate)
	if carrierConcentration(corrected) > carrierConcentration(bb) {
		return corrected, cfo
	}
	return bb, 0
}

// carrierConcentration measures how coherent the dominant carrier is:
// 1.0 for a pure phasor, → 0 as rotation spreads it.
func carrierConcentration(bb []complex128) float64 {
	if len(bb) == 0 {
		return 0
	}
	var sum complex128
	var mag float64
	for _, v := range bb {
		sum += v
		mag += cmplx.Abs(v)
	}
	if mag == 0 {
		return 0
	}
	return cmplx.Abs(sum) / mag
}
