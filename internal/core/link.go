package core

import (
	"fmt"
	"math"
	"math/rand"

	"pab/internal/channel"
	"pab/internal/dsp"
	"pab/internal/fault"
	"pab/internal/frame"
	"pab/internal/node"
	"pab/internal/phy"
	"pab/internal/piezo"
	"pab/internal/projector"
	"pab/internal/telemetry"
)

// LinkConfig describes a single projector–node–hydrophone deployment in
// a tank (the paper's Fig 6 setup).
type LinkConfig struct {
	Tank          channel.Tank
	SampleRate    float64
	CarrierHz     float64
	DriveV        float64
	PWMUnit       int // downlink PWM unit in samples
	ProjectorPos  channel.Vec3
	HydrophonePos channel.Vec3
	NodePos       channel.Vec3
	// NoiseRMS is white acoustic noise at the hydrophone in Pa. Zero
	// selects a quiet-tank default derived from the hydrophone floor.
	NoiseRMS float64
	// ChannelOrder is the image-method reflection order (default 2).
	ChannelOrder int
	// MaxReplyPayload bounds the uplink airtime budget the reader
	// allocates per query, in payload bytes (default 16). Replies are
	// short sensor frames, so budgeting for frame.MaxPayload would waste
	// most of the carrier tail.
	MaxReplyPayload int
	// NodeRadialSpeedMS models node mobility (the paper's §8 open
	// challenge): a radial drift toward (+) or away from (−) the reader
	// at this speed Doppler-scales the scattered path by 1 + 2v/c — a
	// carrier shift of 2v/c·fc and a matching bit-clock skew.
	NodeRadialSpeedMS float64
	// Surface, when non-zero, puts sinusoidal waves on the water surface
	// (open-water conditions, §8): surface-reflected paths wander, so
	// the received level fades over the wave period. Applied by
	// RunTrace.
	Surface channel.SurfaceMotion
	// Seed drives the link's noise generator.
	Seed int64
}

// DefaultLinkConfig returns the paper's nominal single-link setup in
// Pool A: projector and hydrophone near one end, node ~1 m away (§6.1b
// places the node "within a meter of both the projector and the
// hydrophone").
func DefaultLinkConfig() LinkConfig {
	return LinkConfig{
		Tank:       channel.PoolA(),
		SampleRate: 96000,
		CarrierHz:  15000,
		DriveV:     150,
		// 5 ms PWM units keep the node's envelope edges clean despite
		// several milliseconds of tank reverberation; the downlink is
		// slow, like an RFID reader's, while the uplink carries the data.
		PWMUnit:         480,
		ProjectorPos:    channel.Vec3{X: 0.5, Y: 0.5, Z: 0.65},
		HydrophonePos:   channel.Vec3{X: 0.7, Y: 0.6, Z: 0.65},
		NodePos:         channel.Vec3{X: 1.2, Y: 1.3, Z: 0.65},
		NoiseRMS:        0.5,
		ChannelOrder:    2,
		MaxReplyPayload: 16,
		Seed:            1,
	}
}

// Link is a live single-node deployment.
type Link struct {
	cfg  LinkConfig
	node *node.Node
	proj *projector.Projector
	recv *Receiver

	irPN *channel.ImpulseResponse // projector → node
	irPH *channel.ImpulseResponse // projector → hydrophone
	irNH *channel.ImpulseResponse // node → hydrophone

	rhoC float64
	rng  *rand.Rand

	fault  *fault.Engine // nil unless chaos is attached
	ladder []linkOp      // rate-adaptation rungs, 0 = most robust
	level  int           // current rung
}

// NewLink validates the configuration, places the elements in the tank
// and computes the propagation responses.
func NewLink(cfg LinkConfig, n *node.Node, proj *projector.Projector) (*Link, error) {
	if n == nil || proj == nil {
		return nil, fmt.Errorf("core: nil node or projector")
	}
	if cfg.SampleRate <= 0 || cfg.CarrierHz <= 0 || cfg.CarrierHz >= cfg.SampleRate/2 {
		return nil, fmt.Errorf("core: bad rates: fs=%g carrier=%g", cfg.SampleRate, cfg.CarrierHz)
	}
	if cfg.PWMUnit < 8 {
		return nil, fmt.Errorf("core: PWM unit %d too small", cfg.PWMUnit)
	}
	if cfg.ChannelOrder == 0 {
		cfg.ChannelOrder = 2
	}
	if cfg.MaxReplyPayload <= 0 || cfg.MaxReplyPayload > frame.MaxPayload {
		cfg.MaxReplyPayload = 16
	}
	opts := channel.Options{MaxOrder: cfg.ChannelOrder, MinGain: 0.02, CarrierHz: cfg.CarrierHz}
	irPN, err := cfg.Tank.Response(cfg.ProjectorPos, cfg.NodePos, cfg.SampleRate, opts)
	if err != nil {
		return nil, fmt.Errorf("core: projector→node: %w", err)
	}
	irPH, err := cfg.Tank.Response(cfg.ProjectorPos, cfg.HydrophonePos, cfg.SampleRate, opts)
	if err != nil {
		return nil, fmt.Errorf("core: projector→hydrophone: %w", err)
	}
	irNH, err := cfg.Tank.Response(cfg.NodePos, cfg.HydrophonePos, cfg.SampleRate, opts)
	if err != nil {
		return nil, fmt.Errorf("core: node→hydrophone: %w", err)
	}
	recv, err := NewReceiver(cfg.SampleRate)
	if err != nil {
		return nil, err
	}
	ladder := buildLadder(cfg)
	return &Link{
		cfg:    cfg,
		node:   n,
		proj:   proj,
		recv:   recv,
		irPN:   irPN,
		irPH:   irPH,
		irNH:   irNH,
		rhoC:   piezo.RhoC(cfg.Tank.Water.SoundSpeed(), cfg.Tank.Water.SalinityPSU > 5),
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		ladder: ladder,
		level:  len(ladder) - 1,
	}, nil
}

// Node returns the link's node.
func (l *Link) Node() *node.Node { return l.node }

// Receiver returns the link's receiver.
func (l *Link) Receiver() *Receiver { return l.recv }

// Config returns the link configuration.
func (l *Link) Config() LinkConfig { return l.cfg }

// incidentAmplitude returns the steady-state CW pressure amplitude at
// the node for the configured drive, using the coherent multipath gain.
func (l *Link) incidentAmplitude(driveV float64) float64 {
	src := l.proj.PressureAmplitude(driveV, l.cfg.CarrierHz)
	g := l.irPN.Gain(l.cfg.CarrierHz)
	return src * math.Hypot(real(g), imag(g))
}

// PowerUp runs the coarse cold-start loop: the projector transmits CW
// while the node's supercapacitor charges, until the node boots or
// maxSeconds of simulated time elapse. It returns whether the node is
// powered. This phase runs at envelope resolution (the capacitor's
// τ ≈ seconds dwarfs the acoustic period).
func (l *Link) PowerUp(maxSeconds float64) bool {
	amp := l.incidentAmplitude(l.cfg.DriveV)
	const dt = 0.01
	steps := int(maxSeconds / dt)
	for i := 0; i < steps; i++ {
		if l.node.HarvestStep(amp, l.cfg.CarrierHz, l.rhoC, dt) != node.Off {
			return true
		}
	}
	return l.node.State() != node.Off
}

// CanEverPowerUp reports whether the node can power up *and keep
// running* at this range — the Fig 9 criterion ("consistently power up
// for sensing and communication"). Two conditions must hold: the
// rectified voltage under the idle load must clear the 2.5 V LDO
// threshold, and the sustainable harvested power must cover the idle
// draw (energy conservation).
func (l *Link) CanEverPowerUp() bool {
	amp := l.incidentAmplitude(l.cfg.DriveV)
	fe := l.node.FrontEnd()
	voc := fe.RectifiedVoltage(amp, l.cfg.CarrierHz, l.rhoC)
	iIdle := node.PaperMCU().IdlePowerW / 2.5
	vss := voc - iIdle*fe.Rect.OutputResistance()
	if vss < 2.5 {
		return false
	}
	return fe.SustainablePower(amp, l.cfg.CarrierHz, l.rhoC) >= node.PaperMCU().IdlePowerW
}

// ExchangeResult reports one downlink query / uplink response cycle.
type ExchangeResult struct {
	// Sent is the query the projector transmitted.
	Sent frame.Query
	// NodeDecodedQuery reports whether the node's PWM decoder recovered
	// the query.
	NodeDecodedQuery bool
	// UplinkBits are the bits the node backscattered (nil if it stayed
	// silent, e.g. the query addressed another node).
	UplinkBits []phy.Bit
	// Decoded is the receiver's result (nil when nothing decodable).
	Decoded *Decoded
	// UplinkBER is the raw bit error rate against UplinkBits.
	UplinkBER float64
	// CapVoltage after the exchange.
	CapVoltage float64
	// Recording is the hydrophone pressure recording (for inspection).
	Recording []float64
	// DecodeGate is the sample index the offline decoder searched from
	// (just past the reader's own downlink keying) — replay the decode
	// with DecodeUplink(Recording, …, DecodeGate).
	DecodeGate int
}

// RunQuery performs one complete interrogation cycle at the sample
// level: PWM query downlink, node decode, FM0 backscatter uplink,
// hydrophone decode. The node must already be powered (use PowerUp).
func (l *Link) RunQuery(q frame.Query) (*ExchangeResult, error) {
	if l.faultNodeOff() {
		return nil, faultQueryError(q)
	}
	if l.node.State() == node.Off {
		return nil, fmt.Errorf("core: node is not powered; call PowerUp first")
	}
	sp := telemetry.StartSpan("exchange").
		Attr("dest", int(q.Dest)).Attr("command", int(q.Command))
	defer sp.End()
	telemetry.Inc(telemetry.MCoreLinkQueriesTotal)
	res := &ExchangeResult{Sent: q, UplinkBER: 1}

	// Uplink budget: preamble + the largest expected frame at the
	// node's bitrate.
	uplinkBits := len(phy.PreambleBits) + frame.DataFrameBitLength(l.cfg.MaxReplyPayload)
	uplinkSeconds := float64(uplinkBits) / l.node.Bitrate() * 1.3
	const processingMargin = 0.03 // node decode → backscatter turnaround
	tail := uplinkSeconds + 2*processingMargin

	// 1. Downlink waveform.
	spStage := sp.Child("modulate")
	x, err := l.proj.Query(q, l.cfg.DriveV, l.cfg.CarrierHz, l.cfg.PWMUnit, tail)
	spStage.Attr("samples", len(x)).End()
	if err != nil {
		return nil, err
	}
	queryEndX := len(x) - int(tail*l.cfg.SampleRate) // end of PWM section

	// 2. Field at the node.
	spStage = sp.Child("project")
	pNode := l.irPN.Apply(x)
	spStage.End()

	// 3. Node-side envelope decode of the query.
	spStage = sp.Child("piezo")
	unitRate := l.cfg.SampleRate / float64(l.cfg.PWMUnit)
	envCut := math.Min(2*unitRate, l.cfg.SampleRate/4)
	nodeEnv, err := dsp.AmplitudeEnvelope(pNode[:min(queryEndX+int(0.01*l.cfg.SampleRate), len(pNode))], l.cfg.SampleRate, envCut, 4)
	if err != nil {
		spStage.End()
		return nil, err
	}
	decodedQ, err := l.node.DecodeDownlink(nodeEnv, l.cfg.PWMUnit)
	if err == nil && decodedQ == q {
		res.NodeDecodedQuery = true
		telemetry.Inc(telemetry.MCoreDownlinkDecodesTotal)
	} else {
		telemetry.Inc(telemetry.MCoreDownlinkDecodeFailuresTotal)
	}

	// 4. Node power bookkeeping over the exchange.
	spRect := sp.Child("rectify")
	l.trackHarvest(pNode, len(x))
	spRect.Attr("cap_voltage", l.node.CapVoltage()).End()

	// The reflection coefficient is complex (magnitude and phase); apply
	// it to the narrowband field via the analytic signal.
	aNode := dsp.AnalyticSignal(pNode)
	absorbGain := l.node.FrontEnd().ReflectionCoeff(piezo.Absorptive, l.cfg.CarrierHz)
	reflected := make([]float64, len(pNode))
	for i := range reflected {
		reflected[i] = real(absorbGain * aNode[i])
	}

	if res.NodeDecodedQuery {
		bits, err := l.node.HandleQuery(decodedQ)
		if err == nil && bits != nil {
			res.UplinkBits = bits
			states, err := l.node.StartBackscatter(bits, l.cfg.SampleRate)
			if err != nil {
				return nil, err
			}
			// The uplink starts after the node finishes decoding plus a
			// turnaround, offset by the propagation delay to the node.
			delayPN := int(l.irPN.Taps[0].DelaySeconds * l.cfg.SampleRate)
			start := queryEndX + delayPN + int(processingMargin*l.cfg.SampleRate)
			midFrameBrownout := false
			if l.fault != nil {
				ulStart := l.fault.Now() + float64(start)/l.cfg.SampleRate
				ulDur := float64(len(states)) / l.cfg.SampleRate
				if keep, ok := l.fault.TruncationAt(ulStart); ok {
					states = states[:int(float64(len(states))*keep)]
					telemetry.Inc(telemetry.MCoreFaultTruncatedUplinksTotal)
				}
				if l.fault.BrownoutDuring(l.node.Addr(), ulStart, ulStart+ulDur) {
					states = states[:len(states)/2]
					midFrameBrownout = true
					telemetry.Inc(telemetry.MCoreFaultMidframeBrownoutsTotal)
				}
			}
			reflGain := l.node.FrontEnd().ReflectionCoeff(piezo.Reflective, l.cfg.CarrierHz)
			// The resonator's stored energy slews the reflection between
			// states over its ring time τ rather than instantaneously —
			// the high-bitrate limiter of Fig 8.
			tau := l.node.FrontEnd().ResponseTimeConstant()
			alpha := 1 - math.Exp(-1/(tau*l.cfg.SampleRate))
			gSmooth := absorbGain
			for i, s := range states {
				idx := start + i
				if idx >= len(reflected) {
					break
				}
				g := absorbGain
				if s == piezo.Reflective {
					g = reflGain
				}
				gSmooth += complex(alpha, 0) * (g - gSmooth)
				reflected[idx] = real(gSmooth * aNode[idx])
			}
			if midFrameBrownout {
				l.node.ForceBrownout()
			} else {
				l.node.FinishBackscatter()
			}
		} else if err != nil {
			spStage.End()
			return nil, err
		}
	}
	spStage.End() // piezo

	// 5. Hydrophone field: direct downlink + node reflections + noise.
	spStage = sp.Child("channel")
	direct := l.irPH.Apply(x)
	if l.cfg.NodeRadialSpeedMS != 0 {
		reflected = dopplerScale(reflected, l.cfg.NodeRadialSpeedMS, l.cfg.Tank.Water.SoundSpeed())
	}
	scattered := l.irNH.Apply(reflected)
	if l.fault != nil {
		//pablint:ignore floatcmp UplinkGain returns the exact constant 1 when no fade window covers t
		if g := l.fault.UplinkGain(l.fault.Now()); g != 1 {
			for i := range scattered {
				scattered[i] *= g
			}
			telemetry.Inc(telemetry.MCoreFaultFadedUplinksTotal)
		}
	}
	n := max(len(direct), len(scattered))
	y := make([]float64, n)
	copy(y, direct)
	dsp.Add(y, scattered)
	noise := l.cfg.NoiseRMS
	if noise <= 0 {
		noise = 0.05
	}
	if l.fault != nil {
		noise *= l.fault.NoiseScale(l.fault.Now())
	}
	channel.AddWhiteNoise(y, noise, l.rng)
	if l.fault != nil {
		ft := l.fault.Now()
		dur := float64(len(y)) / l.cfg.SampleRate
		for _, b := range l.fault.BurstsIn(ft, ft+dur) {
			channel.AddImpulseBurst(y, l.cfg.SampleRate, b.StartS-ft, b.DurS, b.AmpPa, l.fault.Rand())
		}
		if level, ok := l.fault.ClipLevel(ft); ok {
			channel.Clip(y, level)
		}
		l.fault.Advance(dur)
	}
	spStage.Attr("samples", n).End()
	res.Recording = y
	res.CapVoltage = l.node.CapVoltage()

	// 6. Offline decode, gated past the reader's own downlink keying.
	if res.UplinkBits != nil {
		gate := queryEndX + int(0.01*l.cfg.SampleRate)
		res.DecodeGate = gate
		dec, err := l.recv.DecodeUplinkTraced(sp, y, l.cfg.CarrierHz, l.node.Bitrate(), gate)
		if err == nil {
			res.Decoded = dec
			res.UplinkBER = phy.BER(res.UplinkBits[len(phy.PreambleBits):], dec.Bits)
		} else {
			// Keep the SNR measurement even when the CRC fails.
			snr, ber, merr := l.recv.MeasureUplinkSNR(y, l.cfg.CarrierHz, l.node.Bitrate(), res.UplinkBits, gate)
			if merr == nil {
				res.Decoded = &Decoded{SNRLinear: snr}
				res.UplinkBER = ber
			}
		}
		telemetry.ObserveN(telemetry.MCoreUplinkBer, berBuckets, res.UplinkBER)
	}
	return res, nil
}

// berBuckets resolve the raw uplink bit-error-rate range.
var berBuckets = []float64{0, 1e-5, 1e-4, 1e-3, 1e-2, 0.05, 0.1, 0.2, 0.5}

// trackHarvest advances the node's power domain over the duration of a
// sample-level exchange using 10 ms envelope blocks.
func (l *Link) trackHarvest(pNode []float64, nSamples int) {
	block := int(0.01 * l.cfg.SampleRate)
	invFs := 1 / l.cfg.SampleRate
	for start := 0; start < nSamples && start < len(pNode); start += block {
		end := start + block
		if end > len(pNode) {
			end = len(pNode)
		}
		amp := dsp.RMS(pNode[start:end]) * math.Sqrt2
		l.node.HarvestStep(amp, l.cfg.CarrierHz, l.rhoC, float64(end-start)*invFs)
		if l.node.State() == node.Off {
			return
		}
	}
}

// Trace reproduces Fig 2's demonstration: the projector transmits CW
// from startTx seconds, the node begins toggling its switch at
// toggleHz from startBackscatter seconds, and the demodulated
// received amplitude is returned.
type Trace struct {
	// Time axis in seconds and the demodulated amplitude (volts at the
	// recorder after carrier removal).
	Time      []float64
	Amplitude []float64
	// SampleRate of the (decimated) trace.
	SampleRate float64
}

// RunTrace generates the Fig 2 experiment: total duration, transmitter
// on at txStart, backscatter toggling (square wave at toggleHz) from
// bsStart.
func (l *Link) RunTrace(total, txStart, bsStart, toggleHz float64) (*Trace, error) {
	if !(0 <= txStart && txStart < bsStart && bsStart < total) {
		return nil, fmt.Errorf("core: need 0 ≤ txStart < bsStart < total")
	}
	fs := l.cfg.SampleRate
	n := int(total * fs)
	x := make([]float64, n)
	amp := l.proj.PressureAmplitude(l.cfg.DriveV, l.cfg.CarrierHz)
	osc := dsp.NewOscillator(l.cfg.CarrierHz, fs)
	txIdx := int(txStart * fs)
	for i := txIdx; i < n; i++ {
		x[i] = amp * osc.Next()
	}
	pNode := l.irPN.Apply(x)
	aNode := dsp.AnalyticSignal(pNode)
	absorb := l.node.FrontEnd().ReflectionCoeff(piezo.Absorptive, l.cfg.CarrierHz)
	refl := l.node.FrontEnd().ReflectionCoeff(piezo.Reflective, l.cfg.CarrierHz)
	bsIdx := int(bsStart * fs)
	halfPeriod := int(fs / (2 * toggleHz))
	reflected := make([]float64, len(pNode))
	for i := range reflected {
		g := absorb
		if i >= bsIdx && ((i-bsIdx)/halfPeriod)%2 == 0 {
			g = refl
		}
		reflected[i] = real(g * aNode[i])
	}
	c := l.cfg.Tank.Water.SoundSpeed()
	direct := l.applyMaybeMoving(l.irPH, x, c)
	scattered := l.applyMaybeMoving(l.irNH, reflected, c)
	y := make([]float64, max(len(direct), len(scattered)))
	copy(y, direct)
	dsp.Add(y, scattered)
	noise := l.cfg.NoiseRMS
	if noise <= 0 {
		noise = 0.05
	}
	channel.AddWhiteNoise(y, noise, l.rng)

	volts, err := l.recv.Hydro.Record(y)
	if err != nil {
		return nil, err
	}
	bb, err := dsp.DownconvertLP(volts, l.cfg.CarrierHz, fs, 4*toggleHz+50, 4)
	if err != nil {
		return nil, err
	}
	env := dsp.Envelope(bb)
	// Decimate the trace for plotting (1 kHz is plenty for a 5 Hz
	// square wave).
	dec := int(fs / 1000)
	env = dsp.Decimate(env, dec)
	tr := &Trace{SampleRate: fs / float64(dec)}
	tr.Amplitude = env
	tr.Time = make([]float64, len(env))
	for i := range tr.Time {
		tr.Time[i] = float64(i) / tr.SampleRate
	}
	return tr, nil
}

// applyMaybeMoving renders a waveform through an impulse response,
// letting surface-reflected paths ride the configured surface motion.
func (l *Link) applyMaybeMoving(ir *channel.ImpulseResponse, x []float64, soundSpeed float64) []float64 {
	if l.cfg.Surface.AmplitudeM > 0 && l.cfg.Surface.PeriodS > 0 {
		return ir.ApplyTimeVarying(x, l.cfg.Surface, soundSpeed)
	}
	return ir.Apply(x)
}

// dopplerScale time-compresses (approaching, v > 0) or dilates
// (receding) a waveform by the two-way Doppler factor 1 + 2v/c using
// linear interpolation. The monostatic-style factor of two reflects the
// double traversal: the wave closes on the moving node and the
// reflection closes on the receiver.
func dopplerScale(x []float64, radialSpeedMS, soundSpeed float64) []float64 {
	factor := 1 + 2*radialSpeedMS/soundSpeed
	if factor <= 0 {
		return nil
	}
	n := int(float64(len(x)) / factor)
	if n < 2 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		pos := float64(i) * factor
		j := int(pos)
		if j >= len(x)-1 {
			out[i] = x[len(x)-1]
			continue
		}
		frac := pos - float64(j)
		out[i] = x[j]*(1-frac) + x[j+1]*frac
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
