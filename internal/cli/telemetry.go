// Package cli carries the observability plumbing shared by the cmd/
// binaries: the -telemetry and -debug-addr flags, and the usage/exit
// conventions (usage to stderr, exit 2 on bad flags, exit 1 on runtime
// failure).
package cli

import (
	"flag"
	"fmt"
	"os"

	"pab/internal/telemetry"
)

// Exit codes shared by all pab binaries.
const (
	ExitOK      = 0 // success
	ExitRuntime = 1 // the requested operation failed
	ExitUsage   = 2 // bad flags or arguments (usage printed to stderr)
)

// TelemetryFlags registers the shared observability flags.
type TelemetryFlags struct {
	// SnapshotPath, when non-empty, receives a JSON telemetry snapshot
	// as the command exits (-telemetry out.json).
	SnapshotPath string
	// DebugAddr, when non-empty, serves /metrics, /telemetry.json and
	// /debug/pprof for the lifetime of the process (-debug-addr :6060).
	DebugAddr string
}

// Register installs -telemetry and -debug-addr on the default flag set.
func (t *TelemetryFlags) Register() {
	flag.StringVar(&t.SnapshotPath, "telemetry", "",
		"write a JSON telemetry snapshot (metrics, stage spans, decode reports) to this path on exit")
	flag.StringVar(&t.DebugAddr, "debug-addr", "",
		"serve /metrics, /telemetry.json and /debug/pprof on this address (e.g. :6060)")
}

// Start brings up the debug server when one was requested. Call it
// right after flag.Parse.
func (t *TelemetryFlags) Start(prog string) int {
	if t.DebugAddr == "" {
		return ExitOK
	}
	if err := telemetry.StartDebugServer(t.DebugAddr); err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", prog, err)
		return ExitRuntime
	}
	return ExitOK
}

// Finish writes the snapshot file when one was requested. It runs even
// when the command's work failed — a partial snapshot is exactly what
// post-mortem debugging wants — and escalates the exit code on write
// failure.
func (t *TelemetryFlags) Finish(prog string, code int) int {
	if t.SnapshotPath == "" {
		return code
	}
	if err := telemetry.WriteSnapshotFile(t.SnapshotPath); err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", prog, err)
		if code == ExitOK {
			return ExitRuntime
		}
	}
	return code
}

// Usage prints the flag defaults to stderr and returns ExitUsage —
// the shared bad-invocation path.
func Usage() int {
	flag.CommandLine.SetOutput(os.Stderr)
	flag.Usage()
	return ExitUsage
}
