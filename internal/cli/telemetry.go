// Package cli carries the observability plumbing shared by the cmd/
// binaries: the -telemetry and -debug-addr flags, and the usage/exit
// conventions (usage to stderr, exit 2 on bad flags, exit 1 on runtime
// failure).
package cli

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"pab/internal/prof"
	"pab/internal/telemetry"
)

// Exit codes shared by all pab binaries.
const (
	ExitOK      = 0 // success
	ExitRuntime = 1 // the requested operation failed
	ExitUsage   = 2 // bad flags or arguments (usage printed to stderr)
)

// TelemetryFlags registers the shared observability flags.
type TelemetryFlags struct {
	// SnapshotPath, when non-empty, receives a JSON telemetry snapshot
	// as the command exits (-telemetry out.json).
	SnapshotPath string
	// DebugAddr, when non-empty, serves /metrics, /telemetry.json,
	// /trace.json and /debug/pprof for the lifetime of the process
	// (-debug-addr :6060).
	DebugAddr string
	// TracePath, when non-empty, receives a Chrome trace-event JSON
	// file (openable in Perfetto) as the command exits (-trace-out
	// trace.json).
	TracePath string

	stopDebug func(context.Context) error
	poller    *prof.RuntimePoller
}

// Register installs -telemetry and -debug-addr on the default flag set.
func (t *TelemetryFlags) Register() {
	flag.StringVar(&t.SnapshotPath, "telemetry", "",
		"write a JSON telemetry snapshot (metrics, stage spans, decode reports) to this path on exit")
	flag.StringVar(&t.DebugAddr, "debug-addr", "",
		"serve /metrics, /telemetry.json, /trace.json and /debug/pprof on this address (e.g. :6060)")
	flag.StringVar(&t.TracePath, "trace-out", "",
		"write a Chrome trace-event JSON file (open in Perfetto) to this path on exit")
}

// Start brings up the debug server when one was requested. Call it
// right after flag.Parse.
func (t *TelemetryFlags) Start(prog string) int {
	if t.DebugAddr == "" {
		return ExitOK
	}
	// Mount /trace.json before the server builds its mux, and poll
	// runtime/metrics (heap, GC pauses, goroutines, sched latency) into
	// the registry while the server is up, so /metrics carries the
	// runtime gauges alongside the pipeline histograms.
	prof.Install(telemetry.Default())
	stop, err := telemetry.StartDebugServer(t.DebugAddr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", prog, err)
		return ExitRuntime
	}
	t.stopDebug = stop
	t.poller = prof.StartRuntimePoller(telemetry.Default(), 0)
	return ExitOK
}

// StopDebug shuts the -debug-addr listener down, letting in-flight
// scrapes finish within ctx. Safe to call when no server was started,
// and idempotent — Finish also calls it, so commands that cancel early
// (signal, timeout) can release the port as soon as their context
// dies.
func (t *TelemetryFlags) StopDebug(ctx context.Context) {
	if t.stopDebug == nil {
		return
	}
	if err := t.stopDebug(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
	}
}

// debugStopTimeout bounds how long Finish waits for the last debug
// scrape before forcing the listener closed.
const debugStopTimeout = 2 * time.Second

// Finish writes the snapshot file when one was requested and stops the
// debug server so its goroutine and port are not leaked past the
// command's work. It runs even when the command's work failed — a
// partial snapshot is exactly what post-mortem debugging wants — and
// escalates the exit code on write failure.
func (t *TelemetryFlags) Finish(prog string, code int) int {
	if t.poller != nil {
		t.poller.Stop()
		t.poller = nil
	}
	if t.stopDebug != nil {
		ctx, cancel := context.WithTimeout(context.Background(), debugStopTimeout)
		t.StopDebug(ctx)
		cancel()
	}
	if t.TracePath != "" {
		if err := prof.WriteTraceFile(t.TracePath, telemetry.Default()); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", prog, err)
			if code == ExitOK {
				code = ExitRuntime
			}
		}
	}
	if t.SnapshotPath == "" {
		return code
	}
	if err := telemetry.WriteSnapshotFile(t.SnapshotPath); err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", prog, err)
		if code == ExitOK {
			return ExitRuntime
		}
	}
	return code
}

// Usage prints the flag defaults to stderr and returns ExitUsage —
// the shared bad-invocation path.
func Usage() int {
	flag.CommandLine.SetOutput(os.Stderr)
	flag.Usage()
	return ExitUsage
}
