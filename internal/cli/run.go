package cli

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// Exit codes for interrupted runs, following the shell conventions:
// timeout(1) exits 124 on a deadline, and a SIGINT death reads as
// 128+2.
const (
	ExitTimeout     = 124
	ExitInterrupted = 130
)

// RunFlags carries the lifecycle flags shared by the cmd/ binaries.
type RunFlags struct {
	// Timeout, when positive, aborts the run after this duration
	// (-timeout 90s).
	Timeout time.Duration
}

// Register installs -timeout on the default flag set.
func (r *RunFlags) Register() {
	flag.DurationVar(&r.Timeout, "timeout", 0,
		"abort the run after this duration (e.g. 90s; 0 = no limit)")
}

// Context returns a context cancelled by SIGINT/SIGTERM and, when
// -timeout was given, by its deadline. The returned stop function
// releases the signal handler; defer it.
func (r *RunFlags) Context() (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	if r.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, r.Timeout)
		prev := stop
		stop = func() { cancel(); prev() }
	}
	return ctx, stop
}

// RunWithContext runs work, returning the context's error if the
// deadline or a signal fires before the work completes. The abandoned
// work keeps its goroutine — the process is about to exit anyway.
func RunWithContext(ctx context.Context, work func() error) error {
	done := make(chan error, 1)
	go func() { done <- work() }()
	select {
	case err := <-done:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Exit maps a run outcome onto the shared exit codes, printing the
// failure to stderr: ExitTimeout on a deadline, ExitInterrupted on a
// signal, ExitRuntime on any other error.
func Exit(prog string, err error) int {
	switch {
	case err == nil:
		return ExitOK
	case errors.Is(err, context.DeadlineExceeded):
		fmt.Fprintf(os.Stderr, "%s: timed out\n", prog)
		return ExitTimeout
	case errors.Is(err, context.Canceled):
		fmt.Fprintf(os.Stderr, "%s: interrupted\n", prog)
		return ExitInterrupted
	default:
		fmt.Fprintf(os.Stderr, "%s: %v\n", prog, err)
		return ExitRuntime
	}
}
