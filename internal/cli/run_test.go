package cli

import (
	"context"
	"fmt"
	"testing"
	"time"
)

func TestExitCodes(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{nil, ExitOK},
		{context.DeadlineExceeded, ExitTimeout},
		{context.Canceled, ExitInterrupted},
		{fmt.Errorf("wrapped: %w", context.DeadlineExceeded), ExitTimeout},
		{fmt.Errorf("boom"), ExitRuntime},
	}
	for _, c := range cases {
		if got := Exit("test", c.err); got != c.want {
			t.Errorf("Exit(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

func TestRunWithContext(t *testing.T) {
	if err := RunWithContext(context.Background(), func() error { return nil }); err != nil {
		t.Errorf("completed work returned %v", err)
	}
	wantErr := fmt.Errorf("work failed")
	if err := RunWithContext(context.Background(), func() error { return wantErr }); err != wantErr {
		t.Errorf("got %v, want the work's error", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	block := make(chan struct{})
	defer close(block)
	err := RunWithContext(ctx, func() error { <-block; return nil })
	if err != context.DeadlineExceeded {
		t.Errorf("hung work returned %v, want DeadlineExceeded", err)
	}
}
