// Package audio reads and writes 16-bit mono PCM WAV files. The paper's
// workflow ran through sound cards and Audacity (§5.1); this package
// lets the simulator export its projector and hydrophone waveforms in
// the same currency, so a recording can be inspected in any audio tool —
// or even played into real hardware.
package audio

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// maxInt16 is the positive full-scale PCM value.
const maxInt16 = 32767

// WriteWAV emits samples (arbitrary float64 units) as a 16-bit mono PCM
// WAV at the given sample rate. When normalize is true the waveform is
// scaled so its peak sits at 90% of full scale (an operator trimming
// record levels); otherwise samples are interpreted as already being in
// [-1, 1] and clipped.
func WriteWAV(w io.Writer, sampleRate int, samples []float64, normalize bool) error {
	if sampleRate <= 0 {
		return fmt.Errorf("audio: sample rate must be positive, got %d", sampleRate)
	}
	if len(samples) == 0 {
		return fmt.Errorf("audio: no samples")
	}
	scale := 1.0
	if normalize {
		peak := 0.0
		for _, s := range samples {
			if a := math.Abs(s); a > peak {
				peak = a
			}
		}
		if peak > 0 {
			scale = 0.9 / peak
		}
	}

	dataBytes := uint32(len(samples) * 2)
	var hdr [44]byte
	copy(hdr[0:4], "RIFF")
	binary.LittleEndian.PutUint32(hdr[4:8], 36+dataBytes)
	copy(hdr[8:12], "WAVE")
	copy(hdr[12:16], "fmt ")
	binary.LittleEndian.PutUint32(hdr[16:20], 16) // PCM fmt chunk size
	binary.LittleEndian.PutUint16(hdr[20:22], 1)  // PCM
	binary.LittleEndian.PutUint16(hdr[22:24], 1)  // mono
	binary.LittleEndian.PutUint32(hdr[24:28], uint32(sampleRate))
	binary.LittleEndian.PutUint32(hdr[28:32], uint32(sampleRate*2)) // byte rate
	binary.LittleEndian.PutUint16(hdr[32:34], 2)                    // block align
	binary.LittleEndian.PutUint16(hdr[34:36], 16)                   // bits/sample
	copy(hdr[36:40], "data")
	binary.LittleEndian.PutUint32(hdr[40:44], dataBytes)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}

	buf := make([]byte, 2*len(samples))
	for i, s := range samples {
		v := s * scale
		if v > 1 {
			v = 1
		} else if v < -1 {
			v = -1
		}
		binary.LittleEndian.PutUint16(buf[2*i:], uint16(int16(math.Round(v*maxInt16))))
	}
	_, err := w.Write(buf)
	return err
}

// ReadWAV parses a 16-bit mono PCM WAV, returning the sample rate and
// the samples scaled to [-1, 1].
func ReadWAV(r io.Reader) (sampleRate int, samples []float64, err error) {
	var hdr [12]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, fmt.Errorf("audio: short RIFF header: %w", err)
	}
	if string(hdr[0:4]) != "RIFF" || string(hdr[8:12]) != "WAVE" {
		return 0, nil, fmt.Errorf("audio: not a RIFF/WAVE file")
	}
	var fmtSeen bool
	var channels, bits int
	for {
		var chunk [8]byte
		if _, err := io.ReadFull(r, chunk[:]); err != nil {
			return 0, nil, fmt.Errorf("audio: truncated chunk header: %w", err)
		}
		id := string(chunk[0:4])
		size := binary.LittleEndian.Uint32(chunk[4:8])
		switch id {
		case "fmt ":
			body := make([]byte, size)
			if _, err := io.ReadFull(r, body); err != nil {
				return 0, nil, err
			}
			if format := binary.LittleEndian.Uint16(body[0:2]); format != 1 {
				return 0, nil, fmt.Errorf("audio: unsupported format %d (want PCM)", format)
			}
			channels = int(binary.LittleEndian.Uint16(body[2:4]))
			sampleRate = int(binary.LittleEndian.Uint32(body[4:8]))
			bits = int(binary.LittleEndian.Uint16(body[14:16]))
			if channels != 1 || bits != 16 {
				return 0, nil, fmt.Errorf("audio: unsupported layout: %d ch, %d bit (want mono 16-bit)", channels, bits)
			}
			fmtSeen = true
		case "data":
			if !fmtSeen {
				return 0, nil, fmt.Errorf("audio: data chunk before fmt")
			}
			body := make([]byte, size)
			if _, err := io.ReadFull(r, body); err != nil {
				return 0, nil, err
			}
			n := int(size) / 2
			samples = make([]float64, n)
			for i := 0; i < n; i++ {
				v := int16(binary.LittleEndian.Uint16(body[2*i:]))
				samples[i] = float64(v) / maxInt16
			}
			return sampleRate, samples, nil
		default:
			// Skip unknown chunks (LIST, etc.).
			if _, err := io.CopyN(io.Discard, r, int64(size)); err != nil {
				return 0, nil, err
			}
		}
	}
}
