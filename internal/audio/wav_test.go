package audio

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	in := make([]float64, 4800)
	for i := range in {
		in[i] = rng.Float64()*1.8 - 0.9 // already within range
	}
	var buf bytes.Buffer
	if err := WriteWAV(&buf, 96000, in, false); err != nil {
		t.Fatal(err)
	}
	fs, out, err := ReadWAV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if fs != 96000 {
		t.Errorf("sample rate %d", fs)
	}
	if len(out) != len(in) {
		t.Fatalf("length %d, want %d", len(out), len(in))
	}
	lsb := 1.0 / maxInt16
	for i := range in {
		if math.Abs(out[i]-in[i]) > lsb {
			t.Fatalf("sample %d: %g vs %g", i, out[i], in[i])
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(500)
		in := make([]float64, n)
		for i := range in {
			in[i] = rng.Float64()*2 - 1
		}
		var buf bytes.Buffer
		if err := WriteWAV(&buf, 48000, in, false); err != nil {
			return false
		}
		_, out, err := ReadWAV(&buf)
		if err != nil || len(out) != n {
			return false
		}
		for i := range in {
			if math.Abs(out[i]-in[i]) > 2.0/maxInt16 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestNormalize(t *testing.T) {
	// Pressure-scale samples (thousands of Pa) normalise to 90% FS.
	in := []float64{0, 5000, -5000, 2500}
	var buf bytes.Buffer
	if err := WriteWAV(&buf, 96000, in, true); err != nil {
		t.Fatal(err)
	}
	_, out, err := ReadWAV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out[1]-0.9) > 0.001 || math.Abs(out[2]+0.9) > 0.001 {
		t.Errorf("peaks %g/%g, want ±0.9", out[1], out[2])
	}
	if math.Abs(out[3]-0.45) > 0.001 {
		t.Errorf("half-scale sample %g, want 0.45", out[3])
	}
}

func TestClippingWithoutNormalize(t *testing.T) {
	in := []float64{3.0, -3.0}
	var buf bytes.Buffer
	if err := WriteWAV(&buf, 96000, in, false); err != nil {
		t.Fatal(err)
	}
	_, out, err := ReadWAV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out[0]-1) > 0.001 || math.Abs(out[1]+1) > 0.001 {
		t.Errorf("clipped samples %v", out)
	}
}

func TestWriteErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteWAV(&buf, 0, []float64{1}, false); err == nil {
		t.Error("zero sample rate should error")
	}
	if err := WriteWAV(&buf, 96000, nil, false); err == nil {
		t.Error("empty samples should error")
	}
}

func TestReadErrors(t *testing.T) {
	if _, _, err := ReadWAV(bytes.NewReader([]byte("nope"))); err == nil {
		t.Error("garbage should error")
	}
	// Valid RIFF but wrong magic.
	bad := append([]byte("RIFF\x00\x00\x00\x00JUNK"), make([]byte, 8)...)
	if _, _, err := ReadWAV(bytes.NewReader(bad)); err == nil {
		t.Error("non-WAVE should error")
	}
}

func TestReadSkipsUnknownChunks(t *testing.T) {
	// Write a normal file, then splice an unknown chunk before data.
	var buf bytes.Buffer
	if err := WriteWAV(&buf, 44100, []float64{0.5, -0.5}, false); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Insert a LIST chunk between fmt (ends at byte 36) and data.
	spliced := append([]byte{}, raw[:36]...)
	spliced = append(spliced, 'L', 'I', 'S', 'T', 4, 0, 0, 0, 1, 2, 3, 4)
	spliced = append(spliced, raw[36:]...)
	fs, out, err := ReadWAV(bytes.NewReader(spliced))
	if err != nil {
		t.Fatal(err)
	}
	if fs != 44100 || len(out) != 2 {
		t.Errorf("fs %d, %d samples", fs, len(out))
	}
}
