package plot

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestRenderBasics(t *testing.T) {
	var buf bytes.Buffer
	s := Series{Name: "line", X: []float64{0, 1, 2, 3}, Y: []float64{0, 1, 2, 3}}
	if err := Render(&buf, "test", []Series{s}, 40, 10); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "test") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "* line") {
		t.Error("legend missing")
	}
	if strings.Count(out, "\n") < 12 {
		t.Errorf("unexpected line count:\n%s", out)
	}
	// An increasing line should put a glyph in the top row and bottom row.
	lines := strings.Split(out, "\n")
	if !strings.Contains(lines[1], "*") {
		t.Error("top row should contain the max point")
	}
}

func TestRenderMultiSeriesGlyphs(t *testing.T) {
	var buf bytes.Buffer
	a := Series{Name: "a", X: []float64{0, 1}, Y: []float64{0, 1}}
	b := Series{Name: "b", X: []float64{0, 1}, Y: []float64{1, 0}}
	if err := Render(&buf, "", []Series{a, b}, 30, 8); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("both glyphs should appear")
	}
}

func TestRenderDegenerate(t *testing.T) {
	var buf bytes.Buffer
	if err := Render(&buf, "", nil, 40, 10); err == nil {
		t.Error("no series should error")
	}
	if err := Render(&buf, "", []Series{{X: []float64{1}, Y: []float64{2}}}, 5, 2); err == nil {
		t.Error("tiny canvas should error")
	}
	nan := Series{X: []float64{math.NaN()}, Y: []float64{1}}
	if err := Render(&buf, "", []Series{nan}, 40, 10); err == nil {
		t.Error("all-NaN should error")
	}
	// Constant series must not divide by zero.
	flat := Series{X: []float64{1, 1}, Y: []float64{2, 2}}
	if err := Render(&buf, "", []Series{flat}, 40, 10); err != nil {
		t.Errorf("flat series: %v", err)
	}
}

func TestParseTSV(t *testing.T) {
	tsv := "x\ty1\ty2\tlabel\n1\t10\t5\tfoo\n2\t20\t5\tbar\n3\t30\t5\tbaz\n"
	series, err := ParseTSV(tsv)
	if err != nil {
		t.Fatal(err)
	}
	// y1 varies (kept); y2 constant (dropped); label non-numeric (dropped).
	if len(series) != 1 || series[0].Name != "y1" {
		t.Fatalf("series: %+v", series)
	}
	if len(series[0].X) != 3 || series[0].Y[2] != 30 {
		t.Errorf("values: %+v", series[0])
	}
}

func TestParseTSVErrors(t *testing.T) {
	if _, err := ParseTSV("onlyheader"); err == nil {
		t.Error("no rows should error")
	}
	if _, err := ParseTSV("a\n1\n2\n"); err == nil {
		t.Error("single column should error")
	}
	if _, err := ParseTSV("x\ty\nfoo\t1\nbar\t2\n"); err == nil {
		t.Error("non-numeric x should error")
	}
	if _, err := ParseTSV("x\ty\n1\tfoo\n2\tbar\n"); err == nil {
		t.Error("no numeric y should error")
	}
}

func TestParseTSVKeepsLoneConstantColumn(t *testing.T) {
	// With exactly one y column, keep it even if constant.
	series, err := ParseTSV("x\ty\n1\t5\n2\t5\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 1 {
		t.Fatalf("series: %+v", series)
	}
}
