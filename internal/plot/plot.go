// Package plot renders simple ASCII charts — enough to eyeball the
// reproduction's figures in a terminal without leaving the repository.
package plot

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Series is one named curve.
type Series struct {
	Name string
	X, Y []float64
}

// glyphs mark successive series.
var glyphs = []byte{'*', 'o', '+', 'x', '#'}

// Options tunes rendering.
type Options struct {
	// LogY plots log10(y); non-positive points are dropped.
	LogY bool
}

// Render draws the series onto a width×height character canvas with
// axis annotations.
func Render(w io.Writer, title string, series []Series, width, height int) error {
	return RenderWithOptions(w, title, series, width, height, Options{})
}

// RenderWithOptions is Render with explicit options.
func RenderWithOptions(w io.Writer, title string, series []Series, width, height int, opt Options) error {
	if opt.LogY {
		logged := make([]Series, 0, len(series))
		for _, s := range series {
			n := len(s.X)
			if len(s.Y) < n {
				n = len(s.Y)
			}
			ls := Series{Name: s.Name + " (log10)"}
			for i := 0; i < n; i++ {
				if s.Y[i] > 0 {
					ls.X = append(ls.X, s.X[i])
					ls.Y = append(ls.Y, math.Log10(s.Y[i]))
				}
			}
			if len(ls.X) > 0 {
				logged = append(logged, ls)
			}
		}
		series = logged
	}
	return render(w, title, series, width, height)
}

func render(w io.Writer, title string, series []Series, width, height int) error {
	if width < 20 || height < 5 {
		return fmt.Errorf("plot: canvas %dx%d too small", width, height)
	}
	if len(series) == 0 {
		return fmt.Errorf("plot: no series")
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range series {
		n := len(s.X)
		if len(s.Y) < n {
			n = len(s.Y)
		}
		for i := 0; i < n; i++ {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) || math.IsInf(s.X[i], 0) || math.IsInf(s.Y[i], 0) {
				continue
			}
			points++
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	if points == 0 {
		return fmt.Errorf("plot: no finite points")
	}
	if xmax <= xmin {
		xmax = xmin + 1
	}
	if ymax <= ymin {
		ymax = ymin + 1
	}

	canvas := make([][]byte, height)
	for r := range canvas {
		canvas[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		g := glyphs[si%len(glyphs)]
		n := len(s.X)
		if len(s.Y) < n {
			n = len(s.Y)
		}
		for i := 0; i < n; i++ {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) || math.IsInf(s.X[i], 0) || math.IsInf(s.Y[i], 0) {
				continue
			}
			col := int((s.X[i] - xmin) / (xmax - xmin) * float64(width-1))
			row := height - 1 - int((s.Y[i]-ymin)/(ymax-ymin)*float64(height-1))
			canvas[row][col] = g
		}
	}

	if title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
			return err
		}
	}
	for r, line := range canvas {
		label := "        "
		switch r {
		case 0:
			label = fmt.Sprintf("%8.3g", ymax)
		case height - 1:
			label = fmt.Sprintf("%8.3g", ymin)
		}
		if _, err := fmt.Fprintf(w, "%s |%s|\n", label, string(line)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%8s  %-10.4g%s%10.4g\n", "",
		xmin, strings.Repeat(" ", max(0, width-20)), xmax); err != nil {
		return err
	}
	var legend []string
	for si, s := range series {
		name := s.Name
		if name == "" {
			name = fmt.Sprintf("series %d", si+1)
		}
		legend = append(legend, fmt.Sprintf("%c %s", glyphs[si%len(glyphs)], name))
	}
	_, err := fmt.Fprintf(w, "%10s%s\n", "", strings.Join(legend, "   "))
	return err
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ParseTSV interprets a TSV table (header + rows) as chart series:
// column 1 is x and every further fully-numeric, non-constant column is
// a y series named by its header. Constant columns (thresholds,
// counters) are skipped when other series exist.
func ParseTSV(tsv string) ([]Series, error) {
	lines := strings.Split(strings.TrimSpace(tsv), "\n")
	if len(lines) < 2 {
		return nil, fmt.Errorf("plot: no rows")
	}
	headers := strings.Split(lines[0], "\t")
	if len(headers) < 2 {
		return nil, fmt.Errorf("plot: need ≥2 columns")
	}
	cols := make([][]float64, len(headers))
	dropped := make([]bool, len(headers))
	for _, line := range lines[1:] {
		fields := strings.Split(line, "\t")
		for c := range headers {
			if dropped[c] {
				continue
			}
			if c >= len(fields) {
				dropped[c] = true
				continue
			}
			f, err := strconv.ParseFloat(fields[c], 64)
			if err != nil {
				dropped[c] = true
				continue
			}
			cols[c] = append(cols[c], f)
		}
	}
	if dropped[0] || len(cols[0]) != len(lines)-1 {
		return nil, fmt.Errorf("plot: x column not numeric")
	}
	var series []Series
	for c := 1; c < len(headers); c++ {
		if dropped[c] || len(cols[c]) != len(cols[0]) {
			continue
		}
		constant := true
		for _, v := range cols[c][1:] {
			//pablint:ignore floatcmp constant-column pruning wants exact repeats of the same parsed text, not numeric closeness
			if v != cols[c][0] {
				constant = false
				break
			}
		}
		if constant && len(headers) > 2 {
			continue
		}
		series = append(series, Series{Name: headers[c], X: cols[0], Y: cols[c]})
	}
	if len(series) == 0 {
		return nil, fmt.Errorf("plot: no numeric y columns")
	}
	return series, nil
}
