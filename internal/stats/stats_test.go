package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanStd(t *testing.T) {
	x := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(x); m != 5 {
		t.Errorf("mean %g, want 5", m)
	}
	// Sample std dev with n−1: variance = 32/7.
	if s := StdDev(x); math.Abs(s-math.Sqrt(32.0/7)) > 1e-12 {
		t.Errorf("std %g", s)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Error("degenerate inputs should be 0")
	}
}

func TestMedianPercentile(t *testing.T) {
	if m := Median([]float64{3, 1, 2}); m != 2 {
		t.Errorf("odd median %g", m)
	}
	if m := Median([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Errorf("even median %g", m)
	}
	x := []float64{1, 2, 3, 4, 5}
	if p := Percentile(x, 0); p != 1 {
		t.Errorf("P0 = %g", p)
	}
	if p := Percentile(x, 100); p != 5 {
		t.Errorf("P100 = %g", p)
	}
	if p := Percentile(x, 25); p != 2 {
		t.Errorf("P25 = %g", p)
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile should be 0")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	x := []float64{3, 1, 2}
	Percentile(x, 50)
	if x[0] != 3 || x[1] != 1 || x[2] != 2 {
		t.Error("Percentile must not sort the caller's slice")
	}
}

func TestPercentileMonotonic(t *testing.T) {
	f := func(seed int64) bool {
		x := []float64{float64(seed % 97), float64(seed % 31), float64(seed % 13), float64(seed % 7)}
		return Percentile(x, 25) <= Percentile(x, 50) && Percentile(x, 50) <= Percentile(x, 75)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanDB(t *testing.T) {
	// Mean of 10× and 1000× linear power is 505 ⇒ ~27 dB (not the 20 dB
	// a naive dB-average would give).
	db := MeanDB([]float64{10, 1000})
	if math.Abs(float64(db)-10*math.Log10(505)) > 1e-9 {
		t.Errorf("MeanDB = %v", db)
	}
}

func TestLinearToDB(t *testing.T) {
	out := LinearToDB([]float64{1, 10, 100})
	want := []float64{0, 10, 20}
	for i := range want {
		if math.Abs(out[i]-want[i]) > 1e-9 {
			t.Errorf("out[%d] = %g, want %g", i, out[i], want[i])
		}
	}
}

func TestSummarise(t *testing.T) {
	s := Summarise([]float64{1, 2, 3})
	if s.N != 3 || s.Mean != 2 || s.Min != 1 || s.Max != 3 {
		t.Errorf("summary %+v", s)
	}
	if Summarise(nil).N != 0 {
		t.Error("empty summary should have N=0")
	}
	if s.String() == "" {
		t.Error("summary string empty")
	}
}
