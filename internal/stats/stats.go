// Package stats provides the summary statistics the evaluation harness
// reports: means, standard deviations (the error bars of Fig 8),
// percentiles, and dB conversions for SNR/SINR aggregation.
package stats

import (
	"fmt"
	"math"
	"sort"

	"pab/internal/units"
)

// ApproxEqual reports whether a and b agree to within tol, absolutely
// or relative to their magnitude. It is the evaluation harness's
// approved float comparison (pablint's floatcmp rule forbids raw ==/!=
// on floats outside helpers like this one); it delegates to
// units.ApproxEqual so every layer agrees on what "equal" means.
func ApproxEqual(a, b, tol float64) bool {
	return units.ApproxEqual(a, b, tol)
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// StdDev returns the sample standard deviation (n−1 denominator;
// 0 for fewer than two values).
func StdDev(x []float64) float64 {
	if len(x) < 2 {
		return 0
	}
	m := Mean(x)
	s := 0.0
	for _, v := range x {
		d := v - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(x)-1))
}

// Median returns the middle value (mean of the middle two for even n).
func Median(x []float64) float64 {
	return Percentile(x, 50)
}

// Percentile returns the p-th percentile (0–100) by linear
// interpolation; 0 for empty input.
func Percentile(x []float64, p float64) float64 {
	if len(x) == 0 {
		return 0
	}
	sorted := make([]float64, len(x))
	copy(sorted, x)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	pos := p / 100 * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// MeanDB averages linear power ratios and returns the result in dB —
// the right way to aggregate SNR across trials.
func MeanDB(linear []float64) units.DB {
	return units.PowerToDB(Mean(linear))
}

// LinearToDB converts each element from linear power ratio to dB.
func LinearToDB(linear []float64) []float64 {
	out := make([]float64, len(linear))
	for i, v := range linear {
		out[i] = float64(units.PowerToDB(v))
	}
	return out
}

// Summary is a labelled aggregate for experiment tables.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
}

// Summarise computes a Summary of x.
func Summarise(x []float64) Summary {
	if len(x) == 0 {
		return Summary{}
	}
	s := Summary{N: len(x), Mean: Mean(x), StdDev: StdDev(x), Min: x[0], Max: x[0]}
	for _, v := range x {
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	return s
}

// String formats the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.3g min=%.4g max=%.4g", s.N, s.Mean, s.StdDev, s.Min, s.Max)
}
