package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeHistogramBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("queries_total")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("queries_total") != c {
		t.Fatal("Counter not idempotent per name")
	}

	g := r.Gauge("snr_db")
	g.Set(12.5)
	g.Set(-3.25)
	if got := g.Value(); got != -3.25 {
		t.Fatalf("gauge = %g, want -3.25", got)
	}

	h := r.Histogram("latency", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 5, 50, 500, 10} { // 10 lands in the ≤10 bucket
		h.Observe(v)
	}
	h.Observe(math.NaN()) // dropped
	if got := h.Count(); got != 5 {
		t.Fatalf("hist count = %d, want 5", got)
	}
	if got, want := h.Sum(), 565.5; math.Abs(got-want) > 1e-9 {
		t.Fatalf("hist sum = %g, want %g", got, want)
	}
	hs := r.Snapshot().Histograms["latency"]
	wantCum := []int64{1, 3, 4, 5} // ≤1, ≤10, ≤100, +Inf
	if len(hs.Buckets) != len(wantCum) {
		t.Fatalf("bucket count = %d, want %d", len(hs.Buckets), len(wantCum))
	}
	for i, b := range hs.Buckets {
		if b.Count != wantCum[i] {
			t.Errorf("bucket[%d] (le %g) = %d, want %d", i, b.UpperBound, b.Count, wantCum[i])
		}
	}
	if !math.IsInf(hs.Buckets[3].UpperBound, 1) {
		t.Error("last bucket bound should be +Inf")
	}
	if got, want := hs.Mean(), 565.5/5; math.Abs(got-want) > 1e-9 {
		t.Errorf("mean = %g, want %g", got, want)
	}
}

func TestConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 16, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Inc("n")
				r.Observe("d", float64(i))
				r.Set("g", float64(i))
				sp := r.StartSpan("op")
				sp.Child("inner").End()
				sp.End()
				r.RecordDecode(DecodeReport{SlicerSNRdB: float64(i)})
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("n").Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("d", nil).Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
	snap := r.Snapshot()
	if len(snap.Spans) != maxSpanRecords {
		t.Fatalf("span ring holds %d, want full %d", len(snap.Spans), maxSpanRecords)
	}
	if len(snap.DecodeReports) != maxDecodeReports {
		t.Fatalf("report ring holds %d, want full %d", len(snap.DecodeReports), maxDecodeReports)
	}
}

func TestSpanNestingAndAttrs(t *testing.T) {
	r := NewRegistry()
	root := r.StartSpan("exchange")
	child := root.Child("demod").Attr("carrier_hz", 15000.0)
	time.Sleep(time.Millisecond)
	if d := child.End(); d <= 0 {
		t.Fatal("child duration should be positive")
	}
	if d := child.End(); d != 0 {
		t.Fatal("double End should be a no-op")
	}
	root.End()

	spans := r.Snapshot().Spans
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	// Ring is oldest-first: child ended before root.
	if spans[0].Name != "demod" || spans[1].Name != "exchange" {
		t.Fatalf("span order = %q, %q", spans[0].Name, spans[1].Name)
	}
	if spans[0].ParentID != spans[1].ID {
		t.Fatalf("child parent = %d, want root id %d", spans[0].ParentID, spans[1].ID)
	}
	if spans[1].ParentID != 0 {
		t.Fatal("root should have no parent")
	}
	if got := spans[0].Attrs["carrier_hz"]; got != 15000.0 {
		t.Fatalf("attr = %v, want 15000", got)
	}
	// End also feeds the duration histogram.
	if r.Histogram("span_demod_seconds", nil).Count() != 1 {
		t.Fatal("span duration histogram not fed")
	}
}

func TestDisabledRegistryIsNoOp(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(false)
	r.Inc("n")
	r.Set("g", 1)
	r.Observe("d", 1)
	r.RecordDecode(DecodeReport{})
	if sp := r.StartSpan("op"); sp != nil {
		t.Fatal("StartSpan should return nil when disabled")
	}
	var nilSpan *Span
	nilSpan.Attr("k", "v") // must not panic
	nilSpan.Child("x").End()
	snap := r.Snapshot()
	if snap.Counters["n"] != 0 || len(snap.Spans) != 0 || len(snap.DecodeReports) != 0 {
		t.Fatalf("disabled registry recorded data: %+v", snap)
	}
	r.SetEnabled(true)
	r.Inc("n")
	if r.Counter("n").Value() != 1 {
		t.Fatal("re-enabled registry should record")
	}
}

func TestDecodeReportRingAndRetries(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < maxDecodeReports+10; i++ {
		r.RecordDecode(DecodeReport{SyncIndex: i})
	}
	reps := r.Snapshot().DecodeReports
	if len(reps) != maxDecodeReports {
		t.Fatalf("ring holds %d, want %d", len(reps), maxDecodeReports)
	}
	if reps[0].SyncIndex != 10 || reps[len(reps)-1].SyncIndex != maxDecodeReports+9 {
		t.Fatalf("ring order wrong: first %d last %d", reps[0].SyncIndex, reps[len(reps)-1].SyncIndex)
	}
	r.SetLastDecodeRetries(3)
	reps = r.Snapshot().DecodeReports
	if got := reps[len(reps)-1].Retries; got != 3 {
		t.Fatalf("last retries = %d, want 3", got)
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	r := NewRegistry()
	r.Inc("core_link_queries_total")
	r.Set("mac_inventory_last_q", 4)
	r.Observe("span_exchange_seconds", 0.25)
	r.StartSpan("exchange").End()
	r.RecordDecode(DecodeReport{SlicerSNRdB: 9.5, SyncPeak: 0.87, Decoded: true})

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if snap.Counters["core_link_queries_total"] != 1 {
		t.Fatal("counter lost in JSON round trip")
	}
	if len(snap.DecodeReports) != 1 || snap.DecodeReports[0].SlicerSNRdB != 9.5 || snap.DecodeReports[0].SyncPeak != 0.87 {
		t.Fatalf("decode report lost: %+v", snap.DecodeReports)
	}
	if len(snap.Spans) != 1 || snap.Spans[0].Name != "exchange" {
		t.Fatalf("span lost: %+v", snap.Spans)
	}
}

func TestWritePrometheusText(t *testing.T) {
	r := NewRegistry()
	r.Inc("mac.queries.total") // dots must be sanitised
	r.Set("snr_db", 7.5)
	r.ObserveN("taps", []float64{1, 10}, 3)

	var buf bytes.Buffer
	if err := r.WritePrometheusText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE mac_queries_total counter",
		"mac_queries_total 1",
		"# TYPE snr_db gauge",
		"snr_db 7.5",
		"# TYPE taps histogram",
		`taps_bucket{le="1"} 0`,
		`taps_bucket{le="10"} 1`,
		`taps_bucket{le="+Inf"} 1`,
		"taps_sum 3",
		"taps_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"ok_name":       "ok_name",
		"with.dots-etc": "with_dots_etc",
		"9lead":         "_lead",
		"a9tail":        "a9tail",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestHandlerEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Inc("hits")
	h := r.Handler()

	for path, wantFrag := range map[string]string{
		"/metrics":        "hits 1",
		"/telemetry.json": `"hits": 1`,
	} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != 200 {
			t.Fatalf("%s: status %d", path, rec.Code)
		}
		if !strings.Contains(rec.Body.String(), wantFrag) {
			t.Errorf("%s missing %q:\n%s", path, wantFrag, rec.Body.String())
		}
	}
	// pprof forwards through DefaultServeMux.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/cmdline", nil))
	if rec.Code != 200 {
		t.Fatalf("/debug/pprof/cmdline: status %d", rec.Code)
	}
}

func TestResetClearsEverything(t *testing.T) {
	r := NewRegistry()
	r.Inc("n")
	r.StartSpan("s").End()
	r.RecordDecode(DecodeReport{})
	r.Reset()
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Spans) != 0 || len(snap.DecodeReports) != 0 {
		t.Fatalf("Reset left data behind: %+v", snap)
	}
	if !r.Enabled() {
		t.Fatal("Reset should not disable the registry")
	}
}

func TestDefaultRegistryShorthands(t *testing.T) {
	Default().Reset()
	Inc("x")
	Add("x", 2)
	Set("g", 1.5)
	Observe("h", 0.1)
	ObserveN("h2", DefCountBuckets, 4)
	RecordDecode(DecodeReport{})
	sp := StartSpan("root")
	sp.End()
	snap := Default().Snapshot()
	if snap.Counters["x"] != 3 || snap.Gauges["g"] != 1.5 {
		t.Fatalf("default registry shorthands broken: %+v", snap.Counters)
	}
	if !Enabled() {
		t.Fatal("default registry should be enabled")
	}
	Default().Reset()
}
