package telemetry

import (
	"sync"
	"time"
)

// Span is one timed stage of a larger operation. Spans are ctx-free:
// nesting is explicit through Child, so the signal path can decompose
// an interrogation cycle (modulate → project → piezo → rectify →
// channel → demod → sync → decode) without threading a context through
// every DSP call.
//
// A nil *Span is a valid no-op (StartSpan returns nil when the registry
// is disabled), so call sites never need to guard.
type Span struct {
	reg    *Registry
	name   string
	id     uint64
	parent uint64
	start  time.Time

	mu    sync.Mutex
	attrs map[string]any
	ended bool
}

// StartSpan opens a root span on the registry. Returns nil (a no-op
// span) when the registry is disabled.
func (r *Registry) StartSpan(name string) *Span {
	if !r.enabled.Load() {
		return nil
	}
	return &Span{reg: r, name: name, id: r.spanSeq.Add(1), start: time.Now()}
}

// StartSpan opens a root span on the default registry.
func StartSpan(name string) *Span { return defaultReg.StartSpan(name) }

// Child opens a nested span. Safe on a nil or ended parent (returns a
// fresh root-less no-op or root span accordingly).
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	if !s.reg.enabled.Load() {
		return nil
	}
	return &Span{reg: s.reg, name: name, id: s.reg.spanSeq.Add(1), parent: s.id, start: time.Now()}
}

// Attr attaches a key/value attribute (JSON-encodable values) and
// returns the span for chaining. No-op on nil.
func (s *Span) Attr(key string, value any) *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]any)
	}
	s.attrs[key] = value
	s.mu.Unlock()
	return s
}

// End closes the span, records it into the registry's span ring and
// feeds its duration into the `span_<name>_seconds` histogram. It
// returns the measured duration; calling End again (or on nil) is a
// no-op returning zero.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	attrs, first := s.finish()
	if !first {
		return 0
	}

	d := time.Since(s.start)
	rec := SpanRecord{
		ID:              s.id,
		ParentID:        s.parent,
		Name:            s.name,
		Start:           s.start,
		DurationSeconds: d.Seconds(),
		Attrs:           attrs,
	}
	r := s.reg
	r.spanMu.Lock()
	r.spans[r.spanPos] = rec
	r.spanPos = (r.spanPos + 1) % len(r.spans)
	if r.spanLen < len(r.spans) {
		r.spanLen++
	}
	r.spanMu.Unlock()
	// Span names are caller-chosen stage identifiers, not metrics
	// registry keys; the derived histogram name is the one sanctioned
	// dynamic metric in the process.
	//pablint:ignore telemetryhygiene span duration histograms derive their name from the span stage name
	r.Observe(Name("span_"+s.name+"_seconds"), d.Seconds())
	return d
}

// finish atomically claims the span's single End: the first caller
// gets the attrs snapshot and first == true; later calls see false.
func (s *Span) finish() (map[string]any, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return nil, false
	}
	s.ended = true
	return s.attrs, true
}

// Name returns the span name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// ID returns the span's registry-unique id (0 on nil — a no-op span —
// so it can be passed straight to RecordSpan as a parent).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// RecordSpan files an externally measured span directly into the span
// ring: a phase whose boundaries were observed after the fact (the
// scheduler's queue-wait, reconstructed at dequeue) or measured by a
// specialised timer (prof.StageTimer). parent links the record into an
// existing span tree (0 for a root). Unlike Span.End it does not feed
// the span_*_seconds histogram — the caller owns any histogram
// observation. Returns the assigned id (0 when disabled).
func (r *Registry) RecordSpan(name string, parent uint64, start time.Time, d time.Duration, attrs map[string]any) uint64 {
	if !r.enabled.Load() {
		return 0
	}
	rec := SpanRecord{
		ID:              r.spanSeq.Add(1),
		ParentID:        parent,
		Name:            name,
		Start:           start,
		DurationSeconds: d.Seconds(),
		Attrs:           attrs,
	}
	r.spanMu.Lock()
	r.spans[r.spanPos] = rec
	r.spanPos = (r.spanPos + 1) % len(r.spans)
	if r.spanLen < len(r.spans) {
		r.spanLen++
	}
	r.spanMu.Unlock()
	return rec.ID
}

// RecordSpan files an externally measured span into the default
// registry.
func RecordSpan(name string, parent uint64, start time.Time, d time.Duration, attrs map[string]any) uint64 {
	return defaultReg.RecordSpan(name, parent, start, d, attrs)
}
