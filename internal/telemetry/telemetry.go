// Package telemetry is the observability substrate of the PAB
// reproduction: a zero-dependency (stdlib-only), concurrency-safe
// instrumentation layer that the signal path threads its internal
// quantities through instead of throwing them away.
//
// It provides three primitives:
//
//   - a metrics registry — monotonic Counters, last-value Gauges and
//     bucketed Histograms, exportable as a point-in-time Snapshot, as
//     JSON (WriteJSON) or in the Prometheus text exposition format
//     (WritePrometheusText);
//   - lightweight span tracing (StartSpan / Span.Child / Span.End) so a
//     full interrogation cycle decomposes into per-stage timings
//     (modulate → project → piezo → rectify → channel → demod → sync →
//     decode) without any context plumbing;
//   - DecodeReport, a per-uplink-decode diagnostic record (slicer SNR,
//     sync-correlation peak, preamble bit errors, CFO, retry count)
//     kept in a bounded ring for post-hoc analysis.
//
// Everything funnels into a process-wide Default registry by default;
// independent registries can be created for tests. The whole layer can
// be switched off with SetEnabled(false), which reduces every call site
// to an atomic load — the overhead bench in the repo root holds the
// instrumented hot path within 2% of that no-op sink.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative deltas are ignored: counters are monotonic).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value metric.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the stored value (0 before the first Set).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a bucketed distribution with cumulative export.
type Histogram struct {
	bounds []float64      // ascending upper bounds; +Inf bucket is implicit
	counts []atomic.Int64 // len(bounds)+1
	sum    atomic.Uint64  // float64 bits, CAS-accumulated
	count  atomic.Int64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nxt := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nxt) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Bucket is one cumulative histogram bucket in a snapshot.
type Bucket struct {
	// UpperBound is the inclusive upper edge; +Inf for the last bucket.
	UpperBound float64 `json:"le"`
	// Count is cumulative: observations ≤ UpperBound.
	Count int64 `json:"count"`
}

// bucketJSON is the wire form: the +Inf upper bound of the final bucket
// is not a JSON number, so it travels as the string "+Inf".
type bucketJSON struct {
	UpperBound any   `json:"le"`
	Count      int64 `json:"count"`
}

// MarshalJSON encodes the +Inf bound as the string "+Inf".
func (b Bucket) MarshalJSON() ([]byte, error) {
	var le any = b.UpperBound
	if math.IsInf(b.UpperBound, 1) {
		le = "+Inf"
	}
	return json.Marshal(bucketJSON{UpperBound: le, Count: b.Count})
}

// UnmarshalJSON is the inverse of MarshalJSON.
func (b *Bucket) UnmarshalJSON(data []byte) error {
	var w bucketJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	switch v := w.UpperBound.(type) {
	case float64:
		b.UpperBound = v
	case string:
		b.UpperBound = math.Inf(1)
	}
	b.Count = w.Count
	return nil
}

// HistogramSnapshot is a point-in-time view of a Histogram.
type HistogramSnapshot struct {
	Buckets []Bucket `json:"buckets"`
	Sum     float64  `json:"sum"`
	Count   int64    `json:"count"`
}

// Mean returns the average observation (0 when empty).
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// DefDurationBuckets are the default histogram bounds for span and
// stage durations, in seconds (10 µs … 30 s, roughly ×3 per step).
var DefDurationBuckets = []float64{
	1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 0.01, 0.03, 0.1, 0.3, 1, 3, 10, 30,
}

// DefCountBuckets are default bounds for small-integer distributions
// (taps, candidates, slot occupancy …).
var DefCountBuckets = []float64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// DefThroughputBuckets are default bounds for rate distributions
// (samples/sec through a DSP stage), 1 kHz … 1 GHz, ~×3 per step.
var DefThroughputBuckets = []float64{
	1e3, 3e3, 1e4, 3e4, 1e5, 3e5, 1e6, 3e6, 1e7, 3e7, 1e8, 3e8, 1e9,
}

// DefBytesBuckets are default bounds for byte-size distributions
// (per-stage allocation deltas), 0 … 256 MiB.
var DefBytesBuckets = []float64{
	0, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10,
	1 << 20, 4 << 20, 16 << 20, 64 << 20, 256 << 20,
}

// SpanRecord is a finished span as stored in the registry.
type SpanRecord struct {
	ID       uint64    `json:"id"`
	ParentID uint64    `json:"parent_id,omitempty"`
	Name     string    `json:"name"`
	Start    time.Time `json:"start"`
	// DurationSeconds is wall time between StartSpan/Child and End.
	DurationSeconds float64        `json:"duration_seconds"`
	Attrs           map[string]any `json:"attrs,omitempty"`
}

// Snapshot is a consistent point-in-time export of a Registry.
type Snapshot struct {
	TakenAt    time.Time                    `json:"taken_at"`
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	// Spans are the most recent finished spans, oldest first.
	Spans []SpanRecord `json:"spans,omitempty"`
	// DecodeReports are the most recent uplink decode diagnostics,
	// oldest first.
	DecodeReports []DecodeReport `json:"decode_reports,omitempty"`
	// Extra carries named JSON sections contributed by PublishExtra
	// callbacks (e.g. the scheduler's slowest-jobs table).
	Extra map[string]any `json:"extra,omitempty"`
}

const (
	maxSpanRecords   = 4096
	maxDecodeReports = 512
)

// Registry owns a namespace of metrics, spans and decode reports. The
// zero value is not usable; call NewRegistry. All methods are safe for
// concurrent use.
type Registry struct {
	enabled atomic.Bool

	mu       sync.RWMutex
	counters map[Name]*Counter
	gauges   map[Name]*Gauge
	hists    map[Name]*Histogram

	spanSeq atomic.Uint64
	spanMu  sync.Mutex
	spans   []SpanRecord // ring
	spanPos int
	spanLen int

	reportMu  sync.Mutex
	reports   []DecodeReport // ring
	reportPos int
	reportLen int

	extraMu sync.RWMutex
	extras  map[string]func() any
	routes  map[string]http.Handler

	expvarOnce sync.Once
}

// NewRegistry returns an enabled, empty registry.
func NewRegistry() *Registry {
	r := &Registry{
		counters: make(map[Name]*Counter),
		gauges:   make(map[Name]*Gauge),
		hists:    make(map[Name]*Histogram),
		spans:    make([]SpanRecord, maxSpanRecords),
		reports:  make([]DecodeReport, maxDecodeReports),
	}
	r.enabled.Store(true)
	return r
}

// SetEnabled switches the whole registry on or off. When off, every
// instrumentation call returns after one atomic load; existing values
// are retained.
func (r *Registry) SetEnabled(on bool) { r.enabled.Store(on) }

// Enabled reports whether the registry records anything.
func (r *Registry) Enabled() bool { return r.enabled.Load() }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name Name) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name Name) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds on first use (later callers get the existing
// histogram regardless of bounds; nil/empty bounds select
// DefDurationBuckets).
func (r *Registry) Histogram(name Name, bounds []float64) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	if len(bounds) == 0 {
		bounds = DefDurationBuckets
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
		r.hists[name] = h
	}
	return h
}

// Inc bumps the named counter by one (no-op when disabled).
func (r *Registry) Inc(name Name) { r.Add(name, 1) }

// Add bumps the named counter by n (no-op when disabled).
func (r *Registry) Add(name Name, n int64) {
	if !r.enabled.Load() {
		return
	}
	r.Counter(name).Add(n)
}

// Set stores v into the named gauge (no-op when disabled).
func (r *Registry) Set(name Name, v float64) {
	if !r.enabled.Load() {
		return
	}
	r.Gauge(name).Set(v)
}

// Observe records v into the named histogram, creating it with default
// duration buckets when new (no-op when disabled).
func (r *Registry) Observe(name Name, v float64) {
	if !r.enabled.Load() {
		return
	}
	r.Histogram(name, nil).Observe(v)
}

// ObserveN records v into the named histogram with the given bounds on
// first use (no-op when disabled).
func (r *Registry) ObserveN(name Name, bounds []float64, v float64) {
	if !r.enabled.Load() {
		return
	}
	r.Histogram(name, bounds).Observe(v)
}

// PublishExtra registers a callback whose JSON-encodable return value
// appears in every Snapshot under Extra[name] (and with it in
// /telemetry.json). Re-publishing a name replaces the callback; a nil
// callback removes it. The callback runs outside the registry's locks,
// so it may itself read metrics, but it must be safe for concurrent
// use and should return quickly.
func (r *Registry) PublishExtra(name string, f func() any) {
	r.extraMu.Lock()
	defer r.extraMu.Unlock()
	if f == nil {
		delete(r.extras, name)
		return
	}
	if r.extras == nil {
		r.extras = make(map[string]func() any)
	}
	r.extras[name] = f
}

// Handle mounts an extra route on every http.Handler the registry
// subsequently builds (Handler). The profiler uses this to expose
// /trace.json without the telemetry core depending on it. Patterns
// shadowing the built-in routes are ignored.
func (r *Registry) Handle(pattern string, h http.Handler) {
	r.extraMu.Lock()
	defer r.extraMu.Unlock()
	if r.routes == nil {
		r.routes = make(map[string]http.Handler)
	}
	r.routes[pattern] = h
}

// Reset clears every metric, span and decode report (the registry stays
// enabled/disabled as it was). Intended for tests and between
// experiment runs.
func (r *Registry) Reset() {
	r.mu.Lock()
	r.counters = make(map[Name]*Counter)
	r.gauges = make(map[Name]*Gauge)
	r.hists = make(map[Name]*Histogram)
	r.mu.Unlock()
	r.spanMu.Lock()
	r.spanPos, r.spanLen = 0, 0
	r.spanMu.Unlock()
	r.reportMu.Lock()
	r.reportPos, r.reportLen = 0, 0
	r.reportMu.Unlock()
}

// Snapshot returns a consistent copy of everything recorded so far.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		TakenAt:    time.Now(),
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	r.mu.RLock()
	for name, c := range r.counters {
		snap.Counters[string(name)] = c.Value()
	}
	for name, g := range r.gauges {
		snap.Gauges[string(name)] = g.Value()
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{Sum: h.Sum(), Count: h.Count()}
		cum := int64(0)
		for i, ub := range h.bounds {
			cum += h.counts[i].Load()
			hs.Buckets = append(hs.Buckets, Bucket{UpperBound: ub, Count: cum})
		}
		cum += h.counts[len(h.bounds)].Load()
		hs.Buckets = append(hs.Buckets, Bucket{UpperBound: math.Inf(1), Count: cum})
		snap.Histograms[string(name)] = hs
	}
	r.mu.RUnlock()

	r.spanMu.Lock()
	snap.Spans = ringCopy(r.spans, r.spanPos, r.spanLen)
	r.spanMu.Unlock()
	r.reportMu.Lock()
	snap.DecodeReports = ringCopy(r.reports, r.reportPos, r.reportLen)
	r.reportMu.Unlock()

	r.extraMu.RLock()
	fns := make(map[string]func() any, len(r.extras))
	for name, f := range r.extras {
		fns[name] = f
	}
	r.extraMu.RUnlock()
	if len(fns) > 0 {
		snap.Extra = make(map[string]any, len(fns))
		for name, f := range fns {
			snap.Extra[name] = f()
		}
	}
	return snap
}

// ringCopy returns the live contents of a ring buffer oldest-first.
func ringCopy[T any](ring []T, pos, length int) []T {
	if length == 0 {
		return nil
	}
	out := make([]T, 0, length)
	start := pos - length
	if start < 0 {
		start += len(ring)
	}
	for i := 0; i < length; i++ {
		out = append(out, ring[(start+i)%len(ring)])
	}
	return out
}

// WriteJSON writes an indented JSON snapshot.
func (r *Registry) WriteJSON(w io.Writer) error {
	snap := r.Snapshot()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

// WritePrometheusText writes the metrics (not spans/reports) in the
// Prometheus text exposition format, metric names sanitised to
// [a-zA-Z0-9_:].
func (r *Registry) WritePrometheusText(w io.Writer) error {
	snap := r.Snapshot()
	var names []string
	for n := range snap.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		p := promName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", p, p, snap.Counters[n]); err != nil {
			return err
		}
	}
	names = names[:0]
	for n := range snap.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		p := promName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", p, p, snap.Gauges[n]); err != nil {
			return err
		}
	}
	names = names[:0]
	for n := range snap.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		p := promName(n)
		hs := snap.Histograms[n]
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", p); err != nil {
			return err
		}
		for _, b := range hs.Buckets {
			le := "+Inf"
			if !math.IsInf(b.UpperBound, 1) {
				le = fmt.Sprintf("%g", b.UpperBound)
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", p, le, b.Count); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", p, hs.Sum, p, hs.Count); err != nil {
			return err
		}
	}
	return nil
}

// promName sanitises a metric name for Prometheus exposition.
func promName(name string) string {
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Default registry and package-level shorthands
// ---------------------------------------------------------------------------

var defaultReg = NewRegistry()

// Default returns the process-wide registry every instrumented package
// records into.
func Default() *Registry { return defaultReg }

// SetEnabled switches the default registry (and with it the whole
// instrumented signal path) on or off.
func SetEnabled(on bool) { defaultReg.SetEnabled(on) }

// Enabled reports whether the default registry records anything.
func Enabled() bool { return defaultReg.Enabled() }

// Inc bumps a counter in the default registry.
func Inc(name Name) { defaultReg.Inc(name) }

// Add bumps a counter in the default registry by n.
func Add(name Name, n int64) { defaultReg.Add(name, n) }

// Set stores a gauge value in the default registry.
func Set(name Name, v float64) { defaultReg.Set(name, v) }

// Observe records a histogram sample in the default registry (duration
// buckets).
func Observe(name Name, v float64) { defaultReg.Observe(name, v) }

// ObserveN records a histogram sample in the default registry with
// explicit bounds on first use.
func ObserveN(name Name, bounds []float64, v float64) { defaultReg.ObserveN(name, bounds, v) }
