package telemetry

import (
	"bytes"
	"encoding/json"
	"flag"
	"net/http/httptest"
	"os"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// promFixture builds a registry with one of everything, deterministic
// enough to compare byte-for-byte.
func promFixture() *Registry {
	r := NewRegistry()
	r.Add("decode.ok.total", 3)
	r.Inc("sync_misses_total")
	r.Set("snr_db", 7.5)
	r.Set("queue.depth", 4)
	r.ObserveN("latency_s", []float64{0.01, 0.1, 1}, 0.05)
	r.ObserveN("latency_s", []float64{0.01, 0.1, 1}, 0.5)
	r.ObserveN("latency_s", []float64{0.01, 0.1, 1}, 2)
	return r
}

// TestPrometheusGolden pins the full exposition format: any change to
// ordering, TYPE lines, bucket rendering or number formatting shows up
// as a diff against testdata/prometheus.golden (regenerate with
// `go test ./internal/telemetry -run Golden -update`).
func TestPrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := promFixture().WritePrometheusText(&buf); err != nil {
		t.Fatal(err)
	}
	const path = "testdata/prometheus.golden"
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestPrometheusHistogramBuckets asserts the histogram contract
// Prometheus scrapers rely on: `le` buckets are cumulative, end in
// +Inf, and +Inf equals _count.
func TestPrometheusHistogramBuckets(t *testing.T) {
	var buf bytes.Buffer
	if err := promFixture().WritePrometheusText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	re := regexp.MustCompile(`latency_s_bucket\{le="([^"]+)"\} (\d+)`)
	matches := re.FindAllStringSubmatch(out, -1)
	if len(matches) != 4 {
		t.Fatalf("bucket lines = %d, want 4 (3 bounds + +Inf):\n%s", len(matches), out)
	}
	if matches[len(matches)-1][1] != "+Inf" {
		t.Fatalf("last bucket le = %q, want +Inf", matches[len(matches)-1][1])
	}
	prev := int64(-1)
	for _, m := range matches {
		n, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			t.Fatal(err)
		}
		if n < prev {
			t.Fatalf("buckets not cumulative: %v", matches)
		}
		prev = n
	}
	wantCounts := []string{"0", "1", "2", "3"}
	for i, m := range matches {
		if m[2] != wantCounts[i] {
			t.Fatalf("bucket %d count = %s, want %s", i, m[2], wantCounts[i])
		}
	}
	if !strings.Contains(out, "latency_s_count 3") {
		t.Fatalf("missing _count:\n%s", out)
	}
	if !strings.Contains(out, "latency_s_sum 2.55") {
		t.Fatalf("missing _sum:\n%s", out)
	}
}

// TestPrometheusMonotonicAcrossSnapshots asserts counters and histogram
// counts only grow between successive scrapes of a live registry.
func TestPrometheusMonotonicAcrossSnapshots(t *testing.T) {
	r := promFixture()
	scrape := func() (counter, histCount int64) {
		var buf bytes.Buffer
		if err := r.WritePrometheusText(&buf); err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(buf.String(), "\n") {
			if v, ok := strings.CutPrefix(line, "decode_ok_total "); ok {
				counter, _ = strconv.ParseInt(v, 10, 64)
			}
			if v, ok := strings.CutPrefix(line, "latency_s_count "); ok {
				histCount, _ = strconv.ParseInt(v, 10, 64)
			}
		}
		return counter, histCount
	}
	c1, h1 := scrape()
	r.Add("decode.ok.total", 2)
	r.ObserveN("latency_s", []float64{0.01, 0.1, 1}, 0.3)
	c2, h2 := scrape()
	if c2 <= c1 || h2 <= h1 {
		t.Fatalf("counters not monotone: counter %d→%d hist %d→%d", c1, c2, h1, h2)
	}
	if c2 != c1+2 || h2 != h1+1 {
		t.Fatalf("unexpected growth: counter %d→%d hist %d→%d", c1, c2, h1, h2)
	}
}

func TestMetricsContentType(t *testing.T) {
	h := promFixture().Handler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("/metrics status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "text/plain; version=0.0.4" {
		t.Fatalf("/metrics content type = %q", ct)
	}
}

// TestDebugVarsPerRegistry pins the satellite fix: a custom registry's
// Handler publishes its *own* snapshot under a distinct expvar key, so
// its /debug/vars reports that registry rather than the default one.
func TestDebugVarsPerRegistry(t *testing.T) {
	r := NewRegistry()
	r.Inc("custom_registry_probe_total")
	h := r.Handler()
	_ = r.Handler() // second build must not re-publish (expvar panics on dupes)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/vars", nil))
	if rec.Code != 200 {
		t.Fatalf("/debug/vars status %d", rec.Code)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	found := false
	for key, raw := range vars {
		if !strings.HasPrefix(key, "pab_telemetry_") {
			continue
		}
		var snap Snapshot
		if err := json.Unmarshal(raw, &snap); err != nil {
			continue
		}
		if snap.Counters["custom_registry_probe_total"] == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("custom registry snapshot not published under its own expvar key")
	}
	// The custom counter must not leak into the default registry's key.
	if raw, ok := vars["pab_telemetry"]; ok {
		var snap Snapshot
		if err := json.Unmarshal(raw, &snap); err == nil {
			if _, leaked := snap.Counters["custom_registry_probe_total"]; leaked {
				t.Fatal("custom counter leaked into the default registry's expvar")
			}
		}
	}
}

// TestPublishExtraInSnapshot covers the extras hook /telemetry.json
// uses for the scheduler's slowest-jobs table.
func TestPublishExtraInSnapshot(t *testing.T) {
	r := NewRegistry()
	r.PublishExtra("answer", func() any { return 42 })
	snap := r.Snapshot()
	if snap.Extra["answer"] != 42 {
		t.Fatalf("extra = %v", snap.Extra)
	}
	r.PublishExtra("answer", nil)
	if snap := r.Snapshot(); len(snap.Extra) != 0 {
		t.Fatalf("nil publish did not remove: %v", snap.Extra)
	}
}
