package telemetry

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
)

// CounterFingerprint returns an FNV-1a hash over every counter whose
// name starts with prefix ("" selects all), folded in sorted-name order
// as "name=value" pairs. Counters are the deterministic core of a
// snapshot (gauges and histograms may carry wall-clock durations), so
// two runs of a seeded simulation must produce identical fingerprints —
// the bit-reproducibility check the fault-injection layer asserts.
func (r *Registry) CounterFingerprint(prefix string) uint64 {
	r.mu.RLock()
	names := make([]Name, 0, len(r.counters))
	for n := range r.counters {
		if strings.HasPrefix(string(n), prefix) {
			names = append(names, n)
		}
	}
	sort.Slice(names, func(i, j int) bool { return names[i] < names[j] })
	h := fnv.New64a()
	for _, n := range names {
		fmt.Fprintf(h, "%s=%d\n", n, r.counters[n].Value())
	}
	r.mu.RUnlock()
	return h.Sum64()
}

// CounterFingerprint hashes the default registry's counters under
// prefix.
func CounterFingerprint(prefix string) uint64 {
	return defaultReg.CounterFingerprint(prefix)
}
