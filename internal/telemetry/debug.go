package telemetry

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"os"
	"sync"

	// Register the pprof handlers on http.DefaultServeMux; Handler
	// forwards /debug/ requests there.
	_ "net/http/pprof"
)

var publishOnce sync.Once

// Handler returns an http.Handler exposing the registry:
//
//	/metrics         Prometheus text exposition
//	/telemetry.json  full JSON snapshot (metrics + spans + reports)
//	/debug/pprof/*   the standard pprof handlers
//	/debug/vars      expvar (includes a pab_telemetry snapshot var)
func (r *Registry) Handler() http.Handler {
	publishOnce.Do(func() {
		expvar.Publish("pab_telemetry", expvar.Func(func() any {
			return Default().Snapshot()
		}))
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		if err := r.WritePrometheusText(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/telemetry.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := r.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.Handle("/debug/", http.DefaultServeMux)
	return mux
}

// StartDebugServer binds addr (e.g. ":6060") and serves the default
// registry's Handler in a background goroutine. The bind happens
// synchronously so a bad address fails fast; serve errors after a
// successful bind are reported on stderr.
func StartDebugServer(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("telemetry: debug server: %w", err)
	}
	go func() {
		if err := http.Serve(ln, Default().Handler()); err != nil {
			fmt.Fprintf(os.Stderr, "telemetry: debug server: %v\n", err)
		}
	}()
	return nil
}

// WriteSnapshotFile writes the default registry's JSON snapshot to
// path (the `-telemetry out.json` CLI flag).
func WriteSnapshotFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("telemetry: %w", err)
	}
	if err := Default().WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("telemetry: %w", err)
	}
	return f.Close()
}
