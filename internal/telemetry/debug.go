package telemetry

import (
	"context"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"os"
	"sync"
	"sync/atomic"

	// Register the pprof handlers on http.DefaultServeMux; Handler
	// forwards /debug/ requests there.
	_ "net/http/pprof"
)

// expvarSeq numbers non-default registries' expvar publications:
// expvar.Publish panics on duplicate names, so every registry gets a
// distinct key.
var expvarSeq atomic.Uint64

// Handler returns an http.Handler exposing the registry:
//
//	/metrics         Prometheus text exposition
//	/telemetry.json  full JSON snapshot (metrics + spans + reports)
//	/debug/pprof/*   the standard pprof handlers
//	/debug/vars      expvar (includes this registry's snapshot var)
//
// plus any extra routes mounted with Registry.Handle (the profiler's
// /trace.json). The expvar publication is per-registry: the default
// registry appears as "pab_telemetry", any other registry as
// "pab_telemetry_<n>" — so a custom registry's /debug/vars reports its
// own snapshot, not the default's. The key is assigned the first time
// Handler is called on a given registry and reused afterwards.
func (r *Registry) Handler() http.Handler {
	r.expvarOnce.Do(func() {
		key := "pab_telemetry"
		if r != defaultReg {
			key = fmt.Sprintf("pab_telemetry_%d", expvarSeq.Add(1))
		}
		expvar.Publish(key, expvar.Func(func() any {
			return r.Snapshot()
		}))
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		if err := r.WritePrometheusText(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/telemetry.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := r.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.Handle("/debug/", http.DefaultServeMux)
	r.extraMu.RLock()
	for pattern, h := range r.routes {
		switch pattern {
		case "/metrics", "/telemetry.json", "/debug/":
			continue
		}
		mux.Handle(pattern, h)
	}
	r.extraMu.RUnlock()
	return mux
}

// StartDebugServer binds addr (e.g. ":6060") and serves the default
// registry's Handler in a background goroutine. The bind happens
// synchronously so a bad address fails fast; serve errors after a
// successful bind are reported on stderr. The returned stop function
// shuts the server down gracefully — in-flight scrapes finish within
// the context's deadline, then the port and the serve goroutine are
// released. Stop is idempotent.
func StartDebugServer(addr string) (stop func(context.Context) error, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: debug server: %w", err)
	}
	srv := &http.Server{Handler: Default().Handler()}
	served := make(chan struct{})
	go func() {
		defer close(served)
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			fmt.Fprintf(os.Stderr, "telemetry: debug server: %v\n", err)
		}
	}()
	var once sync.Once
	stop = func(ctx context.Context) error {
		var serr error
		once.Do(func() {
			serr = srv.Shutdown(ctx)
			if serr != nil {
				// Shutdown timed out: force the listener closed so the
				// port is never leaked.
				serr = fmt.Errorf("telemetry: debug server shutdown: %w", serr)
				srv.Close()
			}
			<-served
		})
		return serr
	}
	return stop, nil
}

// WriteSnapshotFile writes the default registry's JSON snapshot to
// path (the `-telemetry out.json` CLI flag).
func WriteSnapshotFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("telemetry: %w", err)
	}
	if err := Default().WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("telemetry: %w", err)
	}
	return f.Close()
}
