package telemetry

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"testing"
	"time"

	"pab/internal/testutil"
)

// TestDebugServerStopReleasesPort: after stop returns, the address is
// immediately rebindable and the serve goroutine is gone — the leak
// the -debug-addr flag used to have.
func TestDebugServerStopReleasesPort(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	// Grab a free port deterministically.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	stop, err := StartDebugServer(addr)
	if err != nil {
		t.Fatal(err)
	}
	// The server must actually answer before we shut it down.
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", addr))
	if err != nil {
		t.Fatalf("debug server not serving: %v", err)
	}
	resp.Body.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := stop(ctx); err != nil {
		t.Fatalf("stop: %v", err)
	}
	// Idempotent.
	if err := stop(ctx); err != nil {
		t.Fatalf("second stop: %v", err)
	}
	// Port released: rebinding must succeed right away.
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("port still held after stop: %v", err)
	}
	ln2.Close()
	// And the handler is really down.
	client := http.Client{Timeout: 500 * time.Millisecond}
	if resp, err := client.Get(fmt.Sprintf("http://%s/metrics", addr)); err == nil {
		resp.Body.Close()
		t.Fatal("debug server still answering after stop")
	}
}

func TestDebugServerBadAddr(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	if _, err := StartDebugServer("256.256.256.256:99999"); err == nil {
		t.Fatal("want bind error for a bad address")
	}
}
