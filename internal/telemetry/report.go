package telemetry

import "math"

// DecodeReport is the per-uplink-decode diagnostic record the paper's
// evaluation implicitly relies on (per-packet SNR for Figs 7–8,
// sync quality, retransmission counts for the MAC accounting). The
// receiver files one for every decode attempt — successful or not — so
// link-quality regressions are visible without rerunning a sweep.
type DecodeReport struct {
	// CarrierHz and BitrateBps identify the channel configuration.
	CarrierHz  float64 `json:"carrier_hz"`
	BitrateBps float64 `json:"bitrate_bps"`
	// Decoded reports whether a CRC-clean frame was recovered.
	Decoded bool `json:"decoded"`
	// SlicerSNRdB is the estimated SNR at the decision slicer (§6.1a
	// method, measured on the decoder's actual decision variables).
	SlicerSNRdB float64 `json:"slicer_snr_db"`
	// SyncPeak is the normalised preamble correlation peak (≤ 1).
	SyncPeak float64 `json:"sync_peak"`
	// SyncIndex is the sample index the packet was locked at.
	SyncIndex int `json:"sync_index"`
	// CFOHz is the applied carrier-frequency-offset correction.
	CFOHz float64 `json:"cfo_hz"`
	// PreambleBitErrors counts re-decoded preamble bits that disagree
	// with the known preamble pattern (0 on a clean lock).
	PreambleBitErrors int `json:"preamble_bit_errors"`
	// PayloadBits is the number of decoded payload-section bits.
	PayloadBits int `json:"payload_bits"`
	// Retries is the number of MAC-level retransmissions that preceded
	// this decode (annotated by the ARQ poller; 0 when polled directly).
	Retries int `json:"retries"`
	// Error carries the failure reason when Decoded is false.
	Error string `json:"error,omitempty"`
}

// RecordDecode files a report into the registry's bounded ring
// (no-op when disabled).
func (r *Registry) RecordDecode(rep DecodeReport) {
	if !r.enabled.Load() {
		return
	}
	// encoding/json rejects non-finite values; clamp the measured floats
	// so a zero-SNR decode (−Inf dB) cannot poison a snapshot write.
	rep.SlicerSNRdB = clampFinite(rep.SlicerSNRdB)
	rep.SyncPeak = clampFinite(rep.SyncPeak)
	rep.CFOHz = clampFinite(rep.CFOHz)
	r.reportMu.Lock()
	r.reports[r.reportPos] = rep
	r.reportPos = (r.reportPos + 1) % len(r.reports)
	if r.reportLen < len(r.reports) {
		r.reportLen++
	}
	r.reportMu.Unlock()
}

// SetLastDecodeRetries annotates the most recent decode report with a
// MAC-level retry count. The receiver files reports without knowledge
// of the ARQ loop above it; the poller back-fills the attempt number
// after each exchange.
func (r *Registry) SetLastDecodeRetries(retries int) {
	if !r.enabled.Load() || retries < 0 {
		return
	}
	r.reportMu.Lock()
	if r.reportLen > 0 {
		last := r.reportPos - 1
		if last < 0 {
			last += len(r.reports)
		}
		r.reports[last].Retries = retries
	}
	r.reportMu.Unlock()
}

// clampFinite maps NaN to 0 and ±Inf to ±math.MaxFloat64 so reports
// always survive JSON encoding.
func clampFinite(v float64) float64 {
	switch {
	case math.IsNaN(v):
		return 0
	case math.IsInf(v, 1):
		return math.MaxFloat64
	case math.IsInf(v, -1):
		return -math.MaxFloat64
	}
	return v
}

// RecordDecode files a report into the default registry.
func RecordDecode(rep DecodeReport) { defaultReg.RecordDecode(rep) }

// SetLastDecodeRetries annotates the default registry's latest report.
func SetLastDecodeRetries(retries int) { defaultReg.SetLastDecodeRetries(retries) }
