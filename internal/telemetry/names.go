package telemetry

// Name is a registered metric identifier. Every counter, gauge and
// histogram in the process shares one namespace, and dashboards,
// fingerprint tests and report diffs key on these strings — so names
// are compile-time constants declared in this file, never computed at
// runtime. The pablint telemetryhygiene rule enforces both halves:
// metric-name arguments must be constants (or values that already
// carry this type), and every constant name used anywhere in the tree
// must appear below.
//
// Naming convention: subsystem prefix, snake_case, and a unit or
// "_total" suffix (Prometheus style).
type Name string

// Registered metric names, grouped by subsystem.
const (
	// channel — image-method impulse responses and injected faults.
	MChannelResponsesTotal      Name = "channel_responses_total"
	MChannelIrTaps              Name = "channel_ir_taps"
	MChannelIrImagesConsidered  Name = "channel_ir_images_considered"
	MChannelIrMaxDelaySeconds   Name = "channel_ir_max_delay_seconds"
	MChannelImpulseBurstsTotal  Name = "channel_impulse_bursts_total"
	MChannelClippedSamplesTotal Name = "channel_clipped_samples_total"

	// mac — framed-slotted-ALOHA inventory and the query/reply engine.
	MMacInventoryRoundsTotal      Name = "mac_inventory_rounds_total"
	MMacInventoryQ                Name = "mac_inventory_q"
	MMacInventorySlotsTotal       Name = "mac_inventory_slots_total"
	MMacInventorySilentNodesTotal Name = "mac_inventory_silent_nodes_total"
	MMacInventorySlotOccupancy    Name = "mac_inventory_slot_occupancy"
	MMacInventoryEmptySlotsTotal  Name = "mac_inventory_empty_slots_total"
	MMacInventorySingletonsTotal  Name = "mac_inventory_singletons_total"
	MMacInventoryJammedSlotsTotal Name = "mac_inventory_jammed_slots_total"
	MMacInventoryCollisionsTotal  Name = "mac_inventory_collisions_total"
	MMacRetriesTotal              Name = "mac_retries_total"
	MMacQueriesTotal              Name = "mac_queries_total"
	MMacAirtimeSeconds            Name = "mac_airtime_seconds"
	MMacFailuresTotal             Name = "mac_failures_total"
	MMacRepliesTotal              Name = "mac_replies_total"
	MMacFailuresNoSyncTotal       Name = "mac_failures_no_sync_total"
	MMacFailuresCrcTotal          Name = "mac_failures_crc_total"
	MMacFailuresTimeoutTotal      Name = "mac_failures_timeout_total"
	MMacRoundsTotal               Name = "mac_rounds_total"

	// mac.Session — the resilient poll loop and its rate ladder.
	MMacSessionSkippedPollsTotal    Name = "mac_session_skipped_polls_total"
	MMacSessionPollsTotal           Name = "mac_session_polls_total"
	MMacSessionSweepsTotal          Name = "mac_session_sweeps_total"
	MMacSessionBackoffSeconds       Name = "mac_session_backoff_seconds"
	MMacSessionRecoverySeconds      Name = "mac_session_recovery_seconds"
	MMacSessionRehabilitationsTotal Name = "mac_session_rehabilitations_total"
	MMacSessionUpshiftsTotal        Name = "mac_session_upshifts_total"
	MMacSessionDownshiftsTotal      Name = "mac_session_downshifts_total"
	MMacSessionEvictionsTotal       Name = "mac_session_evictions_total"
	MMacSessionQuarantinesTotal     Name = "mac_session_quarantines_total"

	// phy — line decoders, preamble sync and CDMA despreading.
	MPhyFm0DecodesTotal        Name = "phy_fm0_decodes_total"
	MPhyFm0BitsTotal           Name = "phy_fm0_bits_total"
	MPhyManchesterDecodesTotal Name = "phy_manchester_decodes_total"
	MPhyManchesterBitsTotal    Name = "phy_manchester_bits_total"
	MPhySyncMissesTotal        Name = "phy_sync_misses_total"
	MPhySyncDetectsTotal       Name = "phy_sync_detects_total"
	MPhySyncCandidates         Name = "phy_sync_candidates"
	MPhySyncPeak               Name = "phy_sync_peak"
	MPhyCdmaDespreadsTotal     Name = "phy_cdma_despreads_total"
	MPhyCdmaBitsTotal          Name = "phy_cdma_bits_total"

	// core — the end-to-end link, FDMA network and concurrent runner.
	MCoreFdmaChannels                Name = "core_fdma_channels"
	MCoreLinkLevel                   Name = "core_link_level"
	MCoreLinkDownshiftsTotal         Name = "core_link_downshifts_total"
	MCoreLinkUpshiftsTotal           Name = "core_link_upshifts_total"
	MCoreLinkQueriesTotal            Name = "core_link_queries_total"
	MCoreDownlinkDecodesTotal        Name = "core_downlink_decodes_total"
	MCoreDownlinkDecodeFailuresTotal Name = "core_downlink_decode_failures_total"
	MCoreFaultTruncatedUplinksTotal  Name = "core_fault_truncated_uplinks_total"
	MCoreFaultMidframeBrownoutsTotal Name = "core_fault_midframe_brownouts_total"
	MCoreFaultFadedUplinksTotal      Name = "core_fault_faded_uplinks_total"
	MCoreUplinkBer                   Name = "core_uplink_ber"
	MCoreConcurrentRunsTotal         Name = "core_concurrent_runs_total"
	MCoreConcurrentCondition         Name = "core_concurrent_condition"
	MCoreUplinkDecodeFailuresTotal   Name = "core_uplink_decode_failures_total"
	MCoreUplinkDecodesTotal          Name = "core_uplink_decodes_total"
	MCoreUplinkSnrDb                 Name = "core_uplink_snr_db"

	// sim — the pabd job scheduler: queue, worker pool and the
	// content-addressed result cache.
	MSimQueueDepth          Name = "sim_queue_depth"
	MSimWorkersBusy         Name = "sim_workers_busy"
	MSimJobsSubmittedTotal  Name = "sim_jobs_submitted_total"
	MSimJobsDedupedTotal    Name = "sim_jobs_deduped_total"
	MSimJobsRejectedTotal   Name = "sim_jobs_rejected_total"
	MSimJobsCompletedTotal  Name = "sim_jobs_completed_total"
	MSimJobsFailedTotal     Name = "sim_jobs_failed_total"
	MSimJobsCanceledTotal   Name = "sim_jobs_canceled_total"
	MSimJobsTimedOutTotal   Name = "sim_jobs_timed_out_total"
	MSimCacheHitsTotal      Name = "sim_cache_hits_total"
	MSimCacheMissesTotal    Name = "sim_cache_misses_total"
	MSimCacheEvictionsTotal Name = "sim_cache_evictions_total"
	MSimJobDurationSeconds  Name = "sim_job_duration_seconds"
	MSimJobQueueWaitSeconds Name = "sim_job_queue_wait_seconds"
	MSimStreamRowsTotal     Name = "sim_stream_rows_total"

	// sim durability — the WAL-backed job lifecycle: retries with
	// backoff, admission-control shedding, dead-lettering and startup
	// replay.
	MSimJobsRetriedTotal        Name = "sim_jobs_retried_total"
	MSimJobsShedTotal           Name = "sim_jobs_shed_total"
	MSimJobsDeadletteredTotal   Name = "sim_jobs_deadlettered_total"
	MSimRetryBackoffSeconds     Name = "sim_retry_backoff_seconds"
	MSimWalReplayedJobsTotal    Name = "sim_wal_replayed_jobs_total"
	MSimWalReplayedResultsTotal Name = "sim_wal_replayed_results_total"
	MSimWalAppendErrorsTotal    Name = "sim_wal_append_errors_total"

	// wal — the append-only durable record log under the job store.
	MWalAppendsTotal         Name = "wal_appends_total"
	MWalFsyncsTotal          Name = "wal_fsyncs_total"
	MWalRotationsTotal       Name = "wal_rotations_total"
	MWalCompactionsTotal     Name = "wal_compactions_total"
	MWalTornTruncationsTotal Name = "wal_torn_truncations_total"
	MWalReplayRecordsTotal   Name = "wal_replay_records_total"
	MWalSizeBytes            Name = "wal_size_bytes"

	// prof — stage-level pipeline profiler (internal/prof). Each
	// receiver-chain stage records wall time, samples/sec throughput
	// and a heap-allocation delta.
	MProfStageRecordSeconds          Name = "prof_stage_record_seconds"
	MProfStageRecordSamplesPerSec    Name = "prof_stage_record_samples_per_second"
	MProfStageRecordAllocBytes       Name = "prof_stage_record_alloc_bytes"
	MProfStageDownconvertSeconds     Name = "prof_stage_downconvert_seconds"
	MProfStageDownconvertSamplesPSec Name = "prof_stage_downconvert_samples_per_second"
	MProfStageDownconvertAllocBytes  Name = "prof_stage_downconvert_alloc_bytes"
	MProfStageFilterSeconds          Name = "prof_stage_filter_seconds"
	MProfStageFilterSamplesPerSec    Name = "prof_stage_filter_samples_per_second"
	MProfStageFilterAllocBytes       Name = "prof_stage_filter_alloc_bytes"
	MProfStageSyncSeconds            Name = "prof_stage_sync_seconds"
	MProfStageSyncSamplesPerSec      Name = "prof_stage_sync_samples_per_second"
	MProfStageSyncAllocBytes         Name = "prof_stage_sync_alloc_bytes"
	MProfStageDecodeSeconds          Name = "prof_stage_decode_seconds"
	MProfStageDecodeSamplesPerSec    Name = "prof_stage_decode_samples_per_second"
	MProfStageDecodeAllocBytes       Name = "prof_stage_decode_alloc_bytes"
	MProfRuntimePollsTotal           Name = "prof_runtime_polls_total"
	MRuntimeHeapBytes                Name = "runtime_heap_bytes"
	MRuntimeHeapObjects              Name = "runtime_heap_objects"
	MRuntimeGoroutines               Name = "runtime_goroutines"
	MRuntimeGCCyclesTotal            Name = "runtime_gc_cycles_total"
	MRuntimeAllocBytesTotal          Name = "runtime_alloc_bytes_total"
	MRuntimeGCPauseP50Seconds        Name = "runtime_gc_pause_p50_seconds"
	MRuntimeGCPauseMaxSeconds        Name = "runtime_gc_pause_max_seconds"
	MRuntimeSchedLatencyP50Seconds   Name = "runtime_sched_latency_p50_seconds"
	MRuntimeSchedLatencyP99Seconds   Name = "runtime_sched_latency_p99_seconds"

	// stream — the block-based receiver (internal/stream) and the
	// pabstream ingestion hub (internal/stream/streamd).
	MStreamStreamsOpenedTotal   Name = "stream_streams_opened_total"
	MStreamStreamsClosedTotal   Name = "stream_streams_closed_total"
	MStreamStreamsActive        Name = "stream_streams_active"
	MStreamStreamsRejectedTotal Name = "stream_streams_rejected_total"
	MStreamStreamsReapedTotal   Name = "stream_streams_reaped_total"
	MStreamShedTotal            Name = "stream_shed_total"
	MStreamBlocksTotal          Name = "stream_blocks_total"
	MStreamSamplesTotal         Name = "stream_samples_total"
	MStreamBytesTotal           Name = "stream_bytes_total"
	MStreamFramesTotal          Name = "stream_frames_total"
	MStreamDecodeAttemptsTotal  Name = "stream_decode_attempts_total"
	MStreamDecodeMissesTotal    Name = "stream_decode_misses_total"
	MStreamResyncsTotal         Name = "stream_resyncs_total"
	MStreamFlushesTotal         Name = "stream_flushes_total"
	MStreamScanHitsTotal        Name = "stream_scan_hits_total"
	MStreamWindowSamples        Name = "stream_window_samples"
	MStreamDecodeLatencySeconds Name = "stream_decode_latency_seconds"

	// fault — per-class injection counters (fault.Engine.note).
	MFaultImpulseInjected    Name = "fault_impulse_injected_total"
	MFaultNoiseFloorInjected Name = "fault_noise_floor_injected_total"
	MFaultFadeInjected       Name = "fault_fade_injected_total"
	MFaultBrownoutInjected   Name = "fault_brownout_injected_total"
	MFaultClockDriftInjected Name = "fault_clock_drift_injected_total"
	MFaultClippingInjected   Name = "fault_clipping_injected_total"
	MFaultTruncationInjected Name = "fault_truncation_injected_total"
	MFaultNodeDeathInjected  Name = "fault_node_death_injected_total"
)
