// Package rectifier models the PAB node's energy-harvesting chain: a
// multi-stage voltage-multiplying rectifier (paper §4.2.1: "a multi-stage
// rectifier in order to passively amplify the voltage"), the 1000 µF
// supercapacitor it charges, and the low-dropout regulator that gates the
// digital section (LP5900, 1.8 V out).
package rectifier

import (
	"fmt"
	"math"
)

// Rectifier is an N-stage Dickson/Villard voltage multiplier built from
// diodes and pump capacitors.
type Rectifier struct {
	// Stages is the number of doubler stages.
	Stages int
	// DiodeDrop is the forward voltage of each diode (V). Schottky
	// diodes used in harvesting front-ends drop ≈0.2–0.3 V.
	DiodeDrop float64
	// StageResistance models the per-stage output impedance (Ω) from
	// pump-capacitor charge sharing; it sets droop under load.
	StageResistance float64
	// InputResistance is the AC input resistance (Ω) the matching
	// network is designed against.
	InputResistance float64
	// Efficiency is the AC→DC conversion efficiency (0–1); it bounds
	// the output power to Efficiency × delivered input power.
	Efficiency float64
}

// Paper returns the rectifier configuration of the paper's PCB: a 3-stage
// multiplier with Schottky diodes. Micro-power multiplier chains present
// tens of kilohms to the matching network; matching the low-impedance
// piezo source to this high input resistance is what gives the
// recto-piezo its frequency selectivity (the loaded Q of the L-section
// scales with √(Rin/Rsource), §3.3.1).
func Paper() Rectifier {
	return Rectifier{
		Stages:          2,
		DiodeDrop:       0.25,
		StageResistance: 1500,
		InputResistance: 15000,
		Efficiency:      0.7,
	}
}

// Validate checks the configuration.
func (r Rectifier) Validate() error {
	if r.Stages < 1 {
		return fmt.Errorf("rectifier: need at least one stage, got %d", r.Stages)
	}
	if r.DiodeDrop < 0 {
		return fmt.Errorf("rectifier: negative diode drop %g", r.DiodeDrop)
	}
	if r.StageResistance < 0 {
		return fmt.Errorf("rectifier: negative stage resistance")
	}
	if r.InputResistance <= 0 {
		return fmt.Errorf("rectifier: input resistance must be positive")
	}
	if r.Efficiency <= 0 || r.Efficiency > 1 {
		return fmt.Errorf("rectifier: efficiency must be in (0, 1], got %g", r.Efficiency)
	}
	return nil
}

// OpenCircuitVoltage returns the unloaded DC output for a sinusoidal
// input of peak amplitude vinPeakV: each stage contributes 2·(Vpeak − Vd),
// and inputs below the diode drop produce nothing.
func (r Rectifier) OpenCircuitVoltage(vinPeakV float64) float64 {
	per := 2 * (vinPeakV - r.DiodeDrop)
	if per <= 0 {
		return 0
	}
	return float64(r.Stages) * per
}

// OutputResistance returns the Thevenin output resistance of the
// multiplier chain.
func (r Rectifier) OutputResistance() float64 {
	return float64(r.Stages) * r.StageResistance
}

// InputPeakFromPower converts an average power P (W) delivered into the
// rectifier's input resistance into the corresponding sinusoidal peak
// voltage: P = V²/(2R) ⇒ V = √(2PR).
func (r Rectifier) InputPeakFromPower(p float64) float64 {
	if p <= 0 || r.InputResistance <= 0 {
		return 0
	}
	return math.Sqrt(2 * p * r.InputResistance)
}

// LoadedVoltage returns the steady-state DC output when the output sinks
// a constant current iLoadA (A): Voc − I·Rout, floored at zero.
func (r Rectifier) LoadedVoltage(vinPeakV, iLoadA float64) float64 {
	v := r.OpenCircuitVoltage(vinPeakV) - iLoadA*r.OutputResistance()
	if v < 0 {
		return 0
	}
	return v
}

// Supercap is the node's storage capacitor.
type Supercap struct {
	// Capacitance in farads (paper: 1000 µF).
	Capacitance float64
	// LeakResistance models self-discharge (Ω); zero means no leak.
	LeakResistance float64

	voltage float64
}

// NewSupercap returns a discharged supercapacitor.
func NewSupercap(capacitance, leakResistance float64) (*Supercap, error) {
	if capacitance <= 0 {
		return nil, fmt.Errorf("rectifier: capacitance must be positive, got %g", capacitance)
	}
	if leakResistance < 0 {
		return nil, fmt.Errorf("rectifier: negative leak resistance")
	}
	return &Supercap{Capacitance: capacitance, LeakResistance: leakResistance}, nil
}

// PaperSupercap returns the 1000 µF storage capacitor from the paper's
// PCB with a conservative 1 MΩ leak.
func PaperSupercap() *Supercap {
	s, err := NewSupercap(1000e-6, 1e6)
	if err != nil {
		panic(err) // constants are valid
	}
	return s
}

// Voltage returns the current capacitor voltage.
func (s *Supercap) Voltage() float64 { return s.voltage }

// SetVoltage forces the capacitor voltage (test hook / precharged start).
func (s *Supercap) SetVoltage(v float64) {
	if v < 0 {
		v = 0
	}
	s.voltage = v
}

// Step advances the capacitor by dtS seconds while charged from a Thevenin
// source (vocV, routOhm) and discharged by a constant load current iLoadA.
// The rectifier's diodes block reverse flow, so the source never drains
// the capacitor. It returns the new voltage.
func (s *Supercap) Step(vocV, routOhm, iLoadA, dtS float64) float64 {
	if dtS <= 0 || s.Capacitance <= 0 {
		return s.voltage
	}
	iCharge := 0.0
	if routOhm > 0 && vocV > s.voltage {
		iCharge = (vocV - s.voltage) / routOhm
	} else if routOhm <= 0 && vocV > s.voltage {
		// Ideal source snaps the capacitor to vocV.
		s.voltage = vocV
	}
	iLeak := 0.0
	if s.LeakResistance > 0 {
		iLeak = s.voltage / s.LeakResistance
	}
	dv := (iCharge - iLoadA - iLeak) / s.Capacitance * dtS
	s.voltage += dv
	if s.voltage < 0 {
		s.voltage = 0
	}
	if iCharge > 0 && s.voltage > vocV {
		// A large dtS can overshoot the source's open-circuit voltage;
		// the source cannot charge beyond it.
		s.voltage = vocV
	}
	return s.voltage
}

// SteadyState returns the voltage the capacitor converges to for a fixed
// source and load (ignoring the leak for routOhm == 0).
func (s *Supercap) SteadyState(vocV, routOhm, iLoadA float64) float64 {
	if routOhm <= 0 {
		return math.Max(vocV, 0)
	}
	// 0 = (vocV − v)/routOhm − iLoadA − v/Rleak
	gLeak := 0.0
	if s.LeakResistance > 0 {
		gLeak = 1 / s.LeakResistance
	}
	v := (vocV/routOhm - iLoadA) / (1/routOhm + gLeak)
	if v < 0 {
		return 0
	}
	if v > vocV {
		return vocV
	}
	return v
}

// StepPowerLimited advances the capacitor like Step but additionally
// clamps the charging current to maxChargeA — the rectifier cannot
// deliver more charge than energy conservation allows
// (I ≤ η·P_in / V_cap).
func (s *Supercap) StepPowerLimited(vocV, routOhm, iLoadA, maxChargeA, dtS float64) float64 {
	if dtS <= 0 || s.Capacitance <= 0 {
		return s.voltage
	}
	iCharge := 0.0
	if routOhm > 0 && vocV > s.voltage {
		iCharge = (vocV - s.voltage) / routOhm
	} else if routOhm <= 0 && vocV > s.voltage {
		iCharge = maxChargeA
	}
	if iCharge > maxChargeA {
		iCharge = maxChargeA
	}
	iLeak := 0.0
	if s.LeakResistance > 0 {
		iLeak = s.voltage / s.LeakResistance
	}
	dv := (iCharge - iLoadA - iLeak) / s.Capacitance * dtS
	s.voltage += dv
	if s.voltage < 0 {
		s.voltage = 0
	}
	if iCharge > 0 && s.voltage > vocV && vocV > 0 {
		s.voltage = vocV
	}
	return s.voltage
}

// LDO is the low-dropout regulator gating the digital domain.
type LDO struct {
	// OutputV is the regulated output (1.8 V for the LP5900SD-1.8).
	OutputV float64
	// PowerOnV is the input voltage required to (re)start the digital
	// section reliably — the paper's 2.5 V "minimum voltage to power up"
	// line in Fig 3.
	PowerOnV float64
	// PowerOffV is the brown-out voltage below which the MCU dies;
	// hysteresis below PowerOnV.
	PowerOffV float64
	// QuiescentA is the regulator's own ground current (≈25 µA for the
	// LP5900 at the MCU's draw, §6.4).
	QuiescentA float64
}

// PaperLDO returns the LP5900SD-1.8 configuration.
func PaperLDO() LDO {
	return LDO{OutputV: 1.8, PowerOnV: 2.5, PowerOffV: 2.0, QuiescentA: 25e-6}
}

// CanPowerOn reports whether a cold node at capacitor voltage v can start.
func (l LDO) CanPowerOn(v float64) bool { return v >= l.PowerOnV }

// MustPowerOff reports whether a running node at capacitor voltage v
// browns out.
func (l LDO) MustPowerOff(v float64) bool { return v < l.PowerOffV }
