package rectifier

import (
	"math"
	"testing"
	"testing/quick"
)

func TestOpenCircuitVoltage(t *testing.T) {
	r := Rectifier{Stages: 3, DiodeDrop: 0.25, StageResistance: 900, InputResistance: 2000}
	// 3 stages × 2×(1.0 − 0.25) = 4.5 V.
	if v := r.OpenCircuitVoltage(1.0); math.Abs(v-4.5) > 1e-12 {
		t.Errorf("Voc(1.0) = %g, want 4.5", v)
	}
	// Below the diode drop nothing rectifies.
	if v := r.OpenCircuitVoltage(0.2); v != 0 {
		t.Errorf("Voc(0.2) = %g, want 0", v)
	}
	if v := r.OpenCircuitVoltage(0); v != 0 {
		t.Errorf("Voc(0) = %g, want 0", v)
	}
}

func TestMoreStagesMoreVoltage(t *testing.T) {
	f := func(stagesRaw uint8) bool {
		n := 1 + int(stagesRaw%6)
		a := Rectifier{Stages: n, DiodeDrop: 0.25, StageResistance: 900, InputResistance: 2000}
		b := Rectifier{Stages: n + 1, DiodeDrop: 0.25, StageResistance: 900, InputResistance: 2000}
		return b.OpenCircuitVoltage(1.0) > a.OpenCircuitVoltage(1.0) &&
			b.OutputResistance() > a.OutputResistance()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInputPeakFromPower(t *testing.T) {
	r := Rectifier{Stages: 2, DiodeDrop: 0.25, StageResistance: 1500, InputResistance: 2000, Efficiency: 0.7}
	// P = V²/(2R): 1 mW into 2 kΩ ⇒ V = √(2·0.001·2000) = 2 V.
	if v := r.InputPeakFromPower(1e-3); math.Abs(v-2) > 1e-12 {
		t.Errorf("Vin(1mW) = %g, want 2", v)
	}
	if r.InputPeakFromPower(0) != 0 || r.InputPeakFromPower(-1) != 0 {
		t.Error("non-positive power should give zero input")
	}
}

func TestLoadedVoltageDroops(t *testing.T) {
	r := Paper()
	voc := r.OpenCircuitVoltage(1.5)
	loaded := r.LoadedVoltage(1.5, 200e-6)
	if loaded >= voc {
		t.Errorf("loaded %g should droop below open-circuit %g", loaded, voc)
	}
	if math.Abs((voc-loaded)-200e-6*r.OutputResistance()) > 1e-9 {
		t.Error("droop should equal I·Rout")
	}
	// Heavy overload floors at zero.
	if r.LoadedVoltage(0.3, 1) != 0 {
		t.Error("overloaded output should floor at 0")
	}
}

func TestValidate(t *testing.T) {
	good := Paper()
	if err := good.Validate(); err != nil {
		t.Errorf("paper config should validate: %v", err)
	}
	bad := []Rectifier{
		{Stages: 0, InputResistance: 1},
		{Stages: 1, DiodeDrop: -1, InputResistance: 1},
		{Stages: 1, StageResistance: -1, InputResistance: 1},
		{Stages: 1, InputResistance: 0},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
}

func TestSupercapCharging(t *testing.T) {
	s, err := NewSupercap(1000e-6, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Charge toward 4 V through 2.7 kΩ: τ = 2.7 s. After one τ ≈ 63%.
	voc, rout := 4.0, 2700.0
	dt := 1e-3
	for i := 0; i < int(2.7/dt); i++ {
		s.Step(voc, rout, 0, dt)
	}
	want := voc * (1 - math.Exp(-1))
	if math.Abs(s.Voltage()-want) > 0.05 {
		t.Errorf("after one τ: %g V, want ~%g", s.Voltage(), want)
	}
	// Converges to voc, never beyond.
	for i := 0; i < int(30/dt); i++ {
		s.Step(voc, rout, 0, dt)
	}
	if math.Abs(s.Voltage()-voc) > 0.01 || s.Voltage() > voc {
		t.Errorf("steady state %g, want %g", s.Voltage(), voc)
	}
}

func TestSupercapDiodeBlocksReverse(t *testing.T) {
	s, _ := NewSupercap(1000e-6, 0)
	s.SetVoltage(3)
	s.Step(1, 2700, 0, 1.0) // source below cap voltage
	if s.Voltage() != 3 {
		t.Errorf("reverse flow occurred: %g", s.Voltage())
	}
}

func TestSupercapLoadDischarges(t *testing.T) {
	s, _ := NewSupercap(1000e-6, 0)
	s.SetVoltage(3)
	// 1 mA from 1000 µF: dV/dt = 1 V/s.
	s.Step(0, 2700, 1e-3, 0.5)
	if math.Abs(s.Voltage()-2.5) > 1e-9 {
		t.Errorf("after discharge: %g, want 2.5", s.Voltage())
	}
	// Cannot go negative.
	s.Step(0, 2700, 1, 10)
	if s.Voltage() != 0 {
		t.Errorf("voltage should floor at 0, got %g", s.Voltage())
	}
}

func TestSupercapLeak(t *testing.T) {
	s, _ := NewSupercap(1000e-6, 1e4) // aggressive leak: τ = 10 s
	s.SetVoltage(3)
	for i := 0; i < 10000; i++ {
		s.Step(0, 0, 0, 1e-3)
	}
	want := 3 * math.Exp(-1)
	if math.Abs(s.Voltage()-want) > 0.05 {
		t.Errorf("after one leak τ: %g, want ~%g", s.Voltage(), want)
	}
}

func TestSupercapSteadyState(t *testing.T) {
	s, _ := NewSupercap(1000e-6, 0)
	// Analytic steady state matches simulation.
	voc, rout, iLoad := 4.0, 2700.0, 300e-6
	want := s.SteadyState(voc, rout, iLoad)
	for i := 0; i < 60000; i++ {
		s.Step(voc, rout, iLoad, 1e-3)
	}
	if math.Abs(s.Voltage()-want) > 0.02 {
		t.Errorf("steady state sim %g vs analytic %g", s.Voltage(), want)
	}
	// Overload gives zero.
	if s.SteadyState(1, 2700, 1) != 0 {
		t.Error("overloaded steady state should be 0")
	}
	// Ideal source.
	if s.SteadyState(5, 0, 1) != 5 {
		t.Error("ideal source steady state should be voc")
	}
}

func TestSupercapValidation(t *testing.T) {
	if _, err := NewSupercap(0, 0); err == nil {
		t.Error("zero capacitance should error")
	}
	if _, err := NewSupercap(1e-3, -1); err == nil {
		t.Error("negative leak should error")
	}
	s, _ := NewSupercap(1e-3, 0)
	s.SetVoltage(-5)
	if s.Voltage() != 0 {
		t.Error("SetVoltage should clamp at 0")
	}
}

func TestLDOThresholds(t *testing.T) {
	l := PaperLDO()
	if !l.CanPowerOn(2.5) || l.CanPowerOn(2.49) {
		t.Error("power-on threshold should be 2.5 V")
	}
	if !l.MustPowerOff(1.99) || l.MustPowerOff(2.0) {
		t.Error("brown-out threshold should be 2.0 V")
	}
	// Hysteresis: a node at 2.2 V stays on if running but cannot start.
	if l.CanPowerOn(2.2) || l.MustPowerOff(2.2) {
		t.Error("2.2 V should be inside the hysteresis band")
	}
}

func TestPaperChainEndToEnd(t *testing.T) {
	// A delivered power of ~0.35 mW should rectify above the 2.5 V
	// power-up threshold with the paper chain — the operating point
	// behind Fig 3's ≈4 V peak.
	r := Paper()
	vin := r.InputPeakFromPower(0.35e-3) // ≈1.18 V
	voc := r.OpenCircuitVoltage(vin)
	if voc < 2.5 {
		t.Errorf("Voc = %g, want > 2.5 V at 0.35 mW", voc)
	}
	s := PaperSupercap()
	ldo := PaperLDO()
	for i := 0; i < 200000; i++ {
		s.Step(voc, r.OutputResistance(), ldo.QuiescentA, 1e-3)
	}
	if !ldo.CanPowerOn(s.Voltage()) {
		t.Errorf("capacitor reached %g V, node cannot power on", s.Voltage())
	}
}

func TestStepPowerLimited(t *testing.T) {
	s, _ := NewSupercap(1000e-6, 0)
	// A generous Thevenin source but a tiny power budget: the charge
	// current must clamp to maxCharge.
	voc, rout := 10.0, 100.0
	maxCharge := 1e-4 // 100 µA
	s.StepPowerLimited(voc, rout, 0, maxCharge, 1.0)
	// Unclamped, ΔV would be huge; clamped: ΔV = I·t/C = 0.1 V.
	if math.Abs(s.Voltage()-0.1) > 1e-9 {
		t.Errorf("clamped charge gave %g V, want 0.1", s.Voltage())
	}
	// Zero dt is a no-op.
	v := s.Voltage()
	s.StepPowerLimited(voc, rout, 0, maxCharge, 0)
	if s.Voltage() != v {
		t.Error("zero dt should not change voltage")
	}
	// Ideal source (rout = 0) charges at the power limit, not instantly.
	s2, _ := NewSupercap(1000e-6, 0)
	s2.StepPowerLimited(5, 0, 0, 1e-3, 1.0)
	if math.Abs(s2.Voltage()-1.0) > 1e-9 {
		t.Errorf("ideal source with power limit gave %g V, want 1.0", s2.Voltage())
	}
	// Overshoot clamps at voc.
	s3, _ := NewSupercap(1e-6, 0)
	s3.StepPowerLimited(2, 1, 0, 100, 10)
	if s3.Voltage() > 2 {
		t.Errorf("overshoot beyond voc: %g", s3.Voltage())
	}
	// Discharge floors at zero.
	s4, _ := NewSupercap(1e-6, 0)
	s4.SetVoltage(1)
	s4.StepPowerLimited(0, 1, 10, 0, 10)
	if s4.Voltage() != 0 {
		t.Errorf("voltage should floor at 0, got %g", s4.Voltage())
	}
	// Leak path.
	s5, _ := NewSupercap(1000e-6, 1e4)
	s5.SetVoltage(3)
	s5.StepPowerLimited(0, 0, 0, 0, 10.0)
	if s5.Voltage() >= 3 {
		t.Error("leak should discharge under StepPowerLimited too")
	}
}

func TestValidateEfficiency(t *testing.T) {
	bad := Paper()
	bad.Efficiency = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero efficiency should fail validation")
	}
	bad.Efficiency = 1.2
	if err := bad.Validate(); err == nil {
		t.Error("efficiency > 1 should fail validation")
	}
}
