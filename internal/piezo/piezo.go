// Package piezo models piezoelectric transducers with the Butterworth–Van
// Dyke (BVD) lumped equivalent circuit, the standard electrical analogue
// of a piezo resonator near resonance. It provides the transducer's
// complex impedance Z(f), its electromechanical conversion in both
// directions (projector transmit, hydrophone/node receive), the
// geometric-resonance bandpass the paper's recto-piezo footnote describes,
// and the reflection behaviour that makes piezo-acoustic backscatter work
// (paper §3.2).
package piezo

import (
	"fmt"
	"math"
	"math/cmplx"

	"pab/internal/circuit"
)

// SwitchState is the termination a PAB node presents to its transducer.
type SwitchState int

// Backscatter switch states (paper Fig 1b). Reflective shorts the
// electrodes, nulling the strain so the incident wave is fully reflected;
// Absorptive presents the matched harvesting load, minimising reflection;
// Open disconnects the load entirely (cold-start charging goes through
// the rectifier, modelled separately).
const (
	Absorptive SwitchState = iota
	Reflective
	Open
)

// String returns the state name.
func (s SwitchState) String() string {
	switch s {
	case Absorptive:
		return "absorptive"
	case Reflective:
		return "reflective"
	case Open:
		return "open"
	default:
		return "unknown"
	}
}

// Design describes a transducer to be fabricated (the knobs §4.1 of the
// paper discusses).
type Design struct {
	// InAirResonanceHz is the ceramic's free resonance (17 kHz for the
	// Steminc cylinder the paper used).
	InAirResonanceHz float64
	// ClampedCapacitance C0 in farads.
	ClampedCapacitance float64
	// CouplingK2 is the effective electromechanical coupling factor k²
	// (dimensionless, 0–1); sets the motional capacitance.
	CouplingK2 float64
	// MechanicalQ of the in-water (loaded) resonator; sets motional R.
	MechanicalQ float64
	// MassLoading is the fractional added vibrating mass from water and
	// encapsulation; shifts the resonance down by √(1+MassLoading).
	MassLoading float64
	// EffectiveAreaM2 is the acoustic capture/radiation area.
	EffectiveAreaM2 float64
	// Efficiency is the electroacoustic conversion efficiency (0–1);
	// air-backed designs are high, fully potted designs low (§4.1).
	Efficiency float64
	// TransmitResponse is the source sensitivity at resonance, Pa·m/V:
	// pressure at 1 m per volt of drive.
	TransmitResponse float64
	// ReceiveResponse is the open-circuit receive sensitivity at
	// resonance, V/Pa.
	ReceiveResponse float64
	// VerticalDirectivityExp shapes the vertical beam pattern
	// |cos(elevation)|^exp. The paper's cylinder "vibrates radially
	// making it omnidirectional in the horizontal plane" (§4.1); its
	// vertical response falls off toward the cylinder axis. 0 = omni.
	VerticalDirectivityExp float64
}

// PaperCylinder returns the design of the paper's transducer: a radially
// vibrating ceramic cylinder (radius 2.5 cm, length 4 cm) resonant at
// 17 kHz in air, air-backed and end-capped, potted in polyurethane. Water
// mass-loading brings the operating resonance to ≈15 kHz, where the
// paper's first recto-piezo was matched.
func PaperCylinder() Design {
	return Design{
		InAirResonanceHz: 17000,
		// A centimetre-scale ceramic cylinder with mm walls has a large
		// clamped capacitance; 200 nF puts the electrical source
		// impedance in the tens of ohms, which the matching network
		// steps up to the rectifier's kilohms — the impedance ratio
		// that gives the recto-piezo its loaded Q (§3.3.1).
		ClampedCapacitance: 200e-9,
		CouplingK2:         0.25,
		// Water loading and the polyurethane encapsulation damp the
		// ceramic heavily; loaded Q of a few is typical for potted
		// transducers and is what lets electrical matching shift the
		// operating point to 18 kHz at usable efficiency (Fig 3).
		MechanicalQ:     3,
		MassLoading:     0.284, // 17 kHz / √1.284 ≈ 15.0 kHz
		EffectiveAreaM2: 2 * math.Pi * 0.025 * 0.04,
		Efficiency:      0.75,
		// 3 Pa·m/V ⇒ ~190 dB re 1 µPa @ 1 m at the amplifier's full
		// 350 V — the modest source level of a hand-built projector,
		// which is what pins Fig 9's power-up ranges to metres.
		TransmitResponse: 3,    // Pa·m/V
		ReceiveResponse:  4e-4, // V/Pa
		// A 4 cm tall radial cylinder has a broad vertical lobe.
		VerticalDirectivityExp: 1,
	}
}

// FullyPottedCylinder returns the same ceramic without the air backing:
// the paper found such designs have poorer sensitivity and harvesting
// efficiency (§4.1). Used by the ablation benches.
func FullyPottedCylinder() Design {
	d := PaperCylinder()
	d.MechanicalQ = 1.5
	d.Efficiency = 0.35
	d.MassLoading = 0.45
	d.ReceiveResponse *= 0.5
	d.TransmitResponse *= 0.5
	return d
}

// Transducer is a fabricated transducer with its derived BVD parameters.
type Transducer struct {
	design Design

	// BVD elements: C0 in parallel with the motional series branch
	// R1–L1–C1 (water-loaded values).
	c0, r1, l1, c1 float64

	waterResonance float64 // Hz, series (motional) resonance in water
}

// New derives the BVD equivalent circuit for a design.
func New(d Design) (*Transducer, error) {
	if d.InAirResonanceHz <= 0 {
		return nil, fmt.Errorf("piezo: in-air resonance must be positive, got %g", d.InAirResonanceHz)
	}
	if d.ClampedCapacitance <= 0 {
		return nil, fmt.Errorf("piezo: clamped capacitance must be positive")
	}
	if d.CouplingK2 <= 0 || d.CouplingK2 >= 1 {
		return nil, fmt.Errorf("piezo: coupling k² must be in (0,1), got %g", d.CouplingK2)
	}
	if d.MechanicalQ <= 0 {
		return nil, fmt.Errorf("piezo: mechanical Q must be positive")
	}
	if d.MassLoading < 0 {
		return nil, fmt.Errorf("piezo: mass loading must be non-negative")
	}
	if d.Efficiency <= 0 || d.Efficiency > 1 {
		return nil, fmt.Errorf("piezo: efficiency must be in (0,1], got %g", d.Efficiency)
	}
	if d.EffectiveAreaM2 <= 0 {
		return nil, fmt.Errorf("piezo: effective area must be positive")
	}

	t := &Transducer{design: d}
	t.c0 = d.ClampedCapacitance
	t.c1 = d.ClampedCapacitance * d.CouplingK2 / (1 - d.CouplingK2)
	// In-air motional inductance from the free resonance, then water
	// loading increases the moving mass.
	wAir := 2 * math.Pi * d.InAirResonanceHz
	l1Air := 1 / (wAir * wAir * t.c1)
	t.l1 = l1Air * (1 + d.MassLoading)
	t.waterResonance = d.InAirResonanceHz / math.Sqrt(1+d.MassLoading)
	t.r1 = math.Sqrt(t.l1/t.c1) / d.MechanicalQ
	return t, nil
}

// Design returns the design the transducer was built from.
func (t *Transducer) Design() Design { return t.design }

// ResonanceHz returns the in-water motional (series) resonance frequency.
func (t *Transducer) ResonanceHz() float64 { return t.waterResonance }

// BandwidthHz returns the -3 dB mechanical bandwidth f0/Q (the paper's
// footnote 2: Q = f/bandwidth).
func (t *Transducer) BandwidthHz() float64 {
	return t.waterResonance / t.design.MechanicalQ
}

// Impedance returns the electrical impedance of the transducer at
// frequency f: C0 in parallel with the motional R1-L1-C1 branch.
func (t *Transducer) Impedance(f float64) circuit.Impedance {
	if f <= 0 {
		return complex(1e18, 0)
	}
	motional := circuit.Series(
		circuit.ResistorZ(t.r1),
		circuit.InductorZ(t.l1, f),
		circuit.CapacitorZ(t.c1, f),
	)
	return circuit.Parallel(circuit.CapacitorZ(t.c0, f), motional)
}

// GeometricResponse returns the mechanical resonance magnitude response
// at frequency f, normalised to 1 at resonance:
//
//	B(f) = 1 / √(1 + Q²·(f/f0 − f0/f)²)
//
// This is the "geometric resonance acts as a bandpass filter" of the
// paper's footnote 5; electrical matching then picks the exact operating
// frequency within (or near) this envelope.
func (t *Transducer) GeometricResponse(f float64) float64 {
	if f <= 0 {
		return 0
	}
	q := t.design.MechanicalQ
	x := f/t.waterResonance - t.waterResonance/f
	return 1 / math.Sqrt(1+q*q*x*x)
}

// TransmitPressure returns the acoustic pressure amplitude (Pa at 1 m) a
// projector built from this transducer radiates when driven with a
// sinusoid of amplitude driveVolts at frequency freqHz (paper §3.1:
// P = αV·sin(2πft+φ)).
func (t *Transducer) TransmitPressure(driveVolts, freqHz float64) float64 {
	return t.design.TransmitResponse * driveVolts * t.GeometricResponse(freqHz)
}

// OpenCircuitVoltage returns the amplitude of the voltage the transducer
// develops across open terminals for an incident pressure amplitude
// pressurePa at frequency freqHz.
func (t *Transducer) OpenCircuitVoltage(pressurePa, freqHz float64) float64 {
	return t.design.ReceiveResponse * pressurePa * t.GeometricResponse(freqHz)
}

// AvailableElectricalPower returns the maximum electrical power (W) a
// conjugate-matched load could extract from an incident plane wave of
// pressure amplitude p (Pa) at frequency f: the acoustic power captured
// over the effective area, scaled by the conversion efficiency and the
// squared geometric response.
func (t *Transducer) AvailableElectricalPower(pressurePa, freqHz, rhoC float64) float64 {
	if rhoC <= 0 {
		return 0
	}
	intensity := pressurePa * pressurePa / (2 * rhoC) // W/m², plane wave
	b := t.GeometricResponse(freqHz)
	return intensity * t.design.EffectiveAreaM2 * t.design.Efficiency * b * b
}

// loadFor returns the electrical termination for a switch state, given
// the matched harvesting load (what the matching network + rectifier
// present at this frequency).
func loadFor(state SwitchState, matched circuit.Impedance) circuit.Impedance {
	switch state {
	case Reflective:
		return 0 // shorted electrodes
	case Open:
		return complex(1e18, 0)
	default:
		return matched
	}
}

// ReflectionCoeff returns the complex ratio of reflected to incident
// pressure when the transducer is terminated with zLoad at frequency f:
// Γ from the paper's Eq. 2 — magnitude *and phase* — windowed by the
// squared geometric response (the wave must couple into the resonator
// and back out) and the conversion efficiency (the paper notes the
// backscatter process is lossy, §3.2). The phase matters: switching
// between two terminations modulates the reflected wave's phase even
// when the two |Γ| are similar, which is why an off-resonance node still
// interferes strongly with a concurrent transmission (§3.3.2).
func (t *Transducer) ReflectionCoeff(zLoad circuit.Impedance, f float64) complex128 {
	zs := t.Impedance(f)
	gamma := circuit.ReflectionCoefficient(zLoad, zs)
	b := t.GeometricResponse(f)
	// Off resonance the wave mostly bypasses the resonator: the
	// structural (rigid-body) reflection is common to both switch states
	// and carries no information, so it is omitted; only the modulated
	// component matters for backscatter.
	return gamma * complex(b*b*t.design.Efficiency, 0)
}

// ReflectionAmplitude returns |ReflectionCoeff| — the reflected
// amplitude ratio when phase is irrelevant.
func (t *Transducer) ReflectionAmplitude(zLoad circuit.Impedance, f float64) float64 {
	return cmplx.Abs(t.ReflectionCoeff(zLoad, f))
}

// StateReflectionCoeff returns the complex reflection coefficient for a
// switch state given the matched harvesting load impedance at this
// frequency.
func (t *Transducer) StateReflectionCoeff(state SwitchState, matched circuit.Impedance, f float64) complex128 {
	return t.ReflectionCoeff(loadFor(state, matched), f)
}

// StateReflection returns the reflection amplitude for a switch state
// given the matched harvesting load impedance at this frequency.
func (t *Transducer) StateReflection(state SwitchState, matched circuit.Impedance, f float64) float64 {
	return cmplx.Abs(t.StateReflectionCoeff(state, matched, f))
}

// ModulationDepth returns the magnitude of the *complex* difference in
// reflection coefficient between the reflective and absorptive states,
// per unit incident pressure — the quantity that sets backscatter SNR
// (paper §3.2, "Maximizing the SNR"). Using the complex difference
// captures phase modulation: two states with similar |Γ| but different
// phase still modulate the reflected wave.
func (t *Transducer) ModulationDepth(matched circuit.Impedance, f float64) float64 {
	r := t.StateReflectionCoeff(Reflective, matched, f)
	a := t.StateReflectionCoeff(Absorptive, matched, f)
	return cmplx.Abs(r - a)
}

// RhoC returns the characteristic acoustic impedance ρc (Pa·s/m) of water
// given sound speed c (m/s), with density ≈ 1000 kg/m³ fresh /
// 1025 kg/m³ salt selected by the salinity flag.
func RhoC(soundSpeed float64, saline bool) float64 {
	rho := 1000.0
	if saline {
		rho = 1025.0
	}
	return rho * soundSpeed
}

// VerticalDirectivity returns the amplitude beam pattern at the given
// elevation angle (radians from the horizontal plane):
// |cos(elev)|^exp, floored at 0.05 so no path vanishes entirely
// (diffraction and mounting scatter fill deep nulls in practice).
func (t *Transducer) VerticalDirectivity(elevationRad float64) float64 {
	exp := t.design.VerticalDirectivityExp
	if exp <= 0 {
		return 1
	}
	d := math.Pow(math.Abs(math.Cos(elevationRad)), exp)
	if d < 0.05 {
		return 0.05
	}
	return d
}

// ResponseTimeConstant returns the resonator's exponential settling time
// τ = Q/(π·f0) in seconds: the stored mechanical energy cannot follow an
// instantaneous switch flip, so the reflected wave slews between states
// over ~τ. At high backscatter bitrates the half-bit approaches τ and
// the modulation collapses — the physical cause of the paper's sharp SNR
// drop beyond 3 kbit/s (Fig 8, "the efficiency of the recto-piezo
// reduces as the frequency moves from its resonance").
func (t *Transducer) ResponseTimeConstant() float64 {
	return t.design.MechanicalQ / (math.Pi * t.waterResonance)
}

// ConjugateImpedance returns the conjugate of the transducer impedance at
// f — the load that maximises harvested power there.
func (t *Transducer) ConjugateImpedance(f float64) circuit.Impedance {
	z := t.Impedance(f)
	return complex(real(z), -imag(z))
}
