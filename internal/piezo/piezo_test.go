package piezo

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"pab/internal/circuit"
)

func mustNew(t *testing.T, d Design) *Transducer {
	t.Helper()
	tr, err := New(d)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestPaperCylinderResonance(t *testing.T) {
	tr := mustNew(t, PaperCylinder())
	// 17 kHz in air mass-loads to ≈15 kHz in water — the frequency the
	// paper's first recto-piezo is matched at.
	if f0 := tr.ResonanceHz(); math.Abs(f0-15000) > 100 {
		t.Errorf("water resonance %g Hz, want ~15000", f0)
	}
	// Q = f0/BW.
	if bw := tr.BandwidthHz(); math.Abs(bw-tr.ResonanceHz()/3) > 1 {
		t.Errorf("bandwidth %g", bw)
	}
}

func TestImpedanceMinimumNearResonance(t *testing.T) {
	tr := mustNew(t, PaperCylinder())
	f0 := tr.ResonanceHz()
	zRes := cmplx.Abs(tr.Impedance(f0))
	for _, f := range []float64{f0 * 0.8, f0 * 1.25} {
		if z := cmplx.Abs(tr.Impedance(f)); z <= zRes {
			t.Errorf("|Z(%g)| = %g should exceed |Z(f0)| = %g", f, z, zRes)
		}
	}
}

func TestImpedancePassive(t *testing.T) {
	tr := mustNew(t, PaperCylinder())
	f := func(raw uint16) bool {
		freq := 1000 + float64(raw%40000)
		return real(tr.Impedance(freq)) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGeometricResponseShape(t *testing.T) {
	tr := mustNew(t, PaperCylinder())
	f0 := tr.ResonanceHz()
	if b := tr.GeometricResponse(f0); math.Abs(b-1) > 1e-9 {
		t.Errorf("B(f0) = %g, want 1", b)
	}
	// Half-power at f0 ± BW/2 (to first order).
	bw := tr.BandwidthHz()
	if b := tr.GeometricResponse(f0 + bw/2); math.Abs(b-1/math.Sqrt2) > 0.03 {
		t.Errorf("B(f0+BW/2) = %g, want ~0.707", b)
	}
	// Monotone decay away from resonance on both sides.
	prev := 1.0
	for _, f := range []float64{f0 * 1.05, f0 * 1.15, f0 * 1.3, f0 * 1.6} {
		b := tr.GeometricResponse(f)
		if b >= prev {
			t.Errorf("response should fall above resonance: B(%g)=%g ≥ %g", f, b, prev)
		}
		prev = b
	}
	if tr.GeometricResponse(0) != 0 {
		t.Error("B(0) should be 0")
	}
}

func TestTransmitPressure(t *testing.T) {
	tr := mustNew(t, PaperCylinder())
	f0 := tr.ResonanceHz()
	p := tr.TransmitPressure(10, f0)
	if math.Abs(p-30) > 1e-9 { // 3 Pa·m/V × 10 V
		t.Errorf("transmit pressure %g, want 30", p)
	}
	// Driving off resonance radiates less.
	if off := tr.TransmitPressure(10, f0*1.6); off >= p/2 {
		t.Errorf("off-resonance pressure %g should be well below %g", off, p)
	}
	if near := tr.TransmitPressure(10, f0*1.1); near >= p {
		t.Errorf("near-resonance pressure %g should not exceed peak %g", near, p)
	}
}

func TestReceiveReciprocity(t *testing.T) {
	tr := mustNew(t, PaperCylinder())
	f0 := tr.ResonanceHz()
	v := tr.OpenCircuitVoltage(100, f0)
	if math.Abs(v-100*tr.Design().ReceiveResponse) > 1e-12 {
		t.Errorf("Voc = %g", v)
	}
}

func TestAvailablePowerScalesWithPressureSquared(t *testing.T) {
	tr := mustNew(t, PaperCylinder())
	f0 := tr.ResonanceHz()
	rhoc := RhoC(1482, false)
	p1 := tr.AvailableElectricalPower(100, f0, rhoc)
	p2 := tr.AvailableElectricalPower(200, f0, rhoc)
	if math.Abs(p2/p1-4) > 1e-9 {
		t.Errorf("power ratio %g, want 4", p2/p1)
	}
	if tr.AvailableElectricalPower(100, f0, 0) != 0 {
		t.Error("zero rhoC should yield zero power")
	}
}

func TestAvailablePowerOrderOfMagnitude(t *testing.T) {
	// A 170 dB re 1µPa wave (≈3.16 kPa RMS ⇒ ~4.5 kPa amplitude) over the
	// cylinder's ~63 cm² at 75% efficiency should deliver milliwatts —
	// enough to charge a supercap to power an MSP430, as the paper
	// demonstrates.
	tr := mustNew(t, PaperCylinder())
	f0 := tr.ResonanceHz()
	rhoc := RhoC(1482, false)
	p := tr.AvailableElectricalPower(4470, f0, rhoc)
	if p < 1e-4 || p > 1 {
		t.Errorf("available power %g W, want mW-scale", p)
	}
}

func TestReflectionStates(t *testing.T) {
	tr := mustNew(t, PaperCylinder())
	f0 := tr.ResonanceHz()
	matched := tr.ConjugateImpedance(f0)
	refl := tr.StateReflection(Reflective, matched, f0)
	abs := tr.StateReflection(Absorptive, matched, f0)
	if refl <= abs {
		t.Errorf("reflective state (%g) must reflect more than absorptive (%g)", refl, abs)
	}
	if abs > 0.01 {
		t.Errorf("conjugate-matched absorptive state reflects %g, want ~0", abs)
	}
	// The short reflects the full coupled wave (efficiency-limited).
	if want := tr.Design().Efficiency; math.Abs(refl-want) > 0.01 {
		t.Errorf("reflective amplitude %g, want ~%g", refl, want)
	}
}

func TestModulationDepthPeaksAtResonance(t *testing.T) {
	tr := mustNew(t, PaperCylinder())
	f0 := tr.ResonanceHz()
	matched := tr.ConjugateImpedance(f0)
	at := tr.ModulationDepth(matched, f0)
	off := tr.ModulationDepth(matched, f0*1.2)
	if at <= off {
		t.Errorf("modulation depth at resonance (%g) should exceed off-resonance (%g)", at, off)
	}
	if at <= 0 || at > 1 {
		t.Errorf("modulation depth %g outside (0,1]", at)
	}
}

func TestFrequencyAgnosticBackscatter(t *testing.T) {
	// Paper §3.3.2: a node matched at 18 kHz still modulates reflections
	// of a 15 kHz wave (nonzero modulation depth out of band) — the
	// reason collisions happen at all.
	tr := mustNew(t, PaperCylinder())
	matched18 := tr.ConjugateImpedance(18000)
	matched15 := tr.ConjugateImpedance(15000)
	if d := tr.ModulationDepth(matched18, 15000); d <= 0.05 {
		t.Errorf("out-of-band modulation depth %g should be substantial (frequency-agnostic backscatter — the cause of §3.3.2's collisions)", d)
	}
	// The diversity property behind the paper's footnote 7: the two
	// nodes' reflection-coefficient *differences* are distinct at each
	// frequency (different magnitude/phase), which keeps the 2×2
	// decoding matrix well conditioned even though both nodes modulate
	// both tones.
	for _, f := range []float64{15000, 18000} {
		d15 := tr.StateReflectionCoeff(Reflective, matched15, f) - tr.StateReflectionCoeff(Absorptive, matched15, f)
		d18 := tr.StateReflectionCoeff(Reflective, matched18, f) - tr.StateReflectionCoeff(Absorptive, matched18, f)
		if cmplx.Abs(d15-d18) < 0.1 {
			t.Errorf("at %g Hz the two nodes' channels are too similar: |Δ| = %g", f, cmplx.Abs(d15-d18))
		}
	}
}

func TestFullyPottedWorseThanAirBacked(t *testing.T) {
	air := mustNew(t, PaperCylinder())
	potted := mustNew(t, FullyPottedCylinder())
	rhoc := RhoC(1482, false)
	fa, fp := air.ResonanceHz(), potted.ResonanceHz()
	if potted.AvailableElectricalPower(1000, fp, rhoc) >=
		air.AvailableElectricalPower(1000, fa, rhoc) {
		t.Error("potted design should harvest less than air-backed (paper §4.1)")
	}
	ma := air.ModulationDepth(air.ConjugateImpedance(fa), fa)
	mp := potted.ModulationDepth(potted.ConjugateImpedance(fp), fp)
	if mp >= ma {
		t.Error("potted design should have lower modulation depth")
	}
}

func TestNewValidation(t *testing.T) {
	base := PaperCylinder()
	cases := []struct {
		name   string
		mutate func(*Design)
	}{
		{"zero resonance", func(d *Design) { d.InAirResonanceHz = 0 }},
		{"zero C0", func(d *Design) { d.ClampedCapacitance = 0 }},
		{"k2 too high", func(d *Design) { d.CouplingK2 = 1 }},
		{"k2 zero", func(d *Design) { d.CouplingK2 = 0 }},
		{"zero Q", func(d *Design) { d.MechanicalQ = 0 }},
		{"negative loading", func(d *Design) { d.MassLoading = -0.1 }},
		{"zero efficiency", func(d *Design) { d.Efficiency = 0 }},
		{"efficiency >1", func(d *Design) { d.Efficiency = 1.5 }},
		{"zero area", func(d *Design) { d.EffectiveAreaM2 = 0 }},
	}
	for _, tc := range cases {
		d := base
		tc.mutate(&d)
		if _, err := New(d); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestMatchingIntegration(t *testing.T) {
	// End-to-end with the circuit package: design an L-section for the
	// transducer at resonance and confirm near-total power transfer.
	tr := mustNew(t, PaperCylinder())
	f0 := tr.ResonanceHz()
	zs := tr.Impedance(f0)
	zl := circuit.ResistorZ(2000) // rectifier input resistance
	net, err := circuit.DesignLSection(zs, zl, f0)
	if err != nil {
		t.Fatal(err)
	}
	if q := net.MatchQuality(zs, zl, f0); q < 0.999 {
		t.Errorf("match quality %g at resonance", q)
	}
	// And that it is frequency selective (recto-piezo principle): the
	// delivered power, including the geometric response the wave must
	// couple through, falls off the design frequency.
	q15 := net.MatchQuality(zs, zl, f0)
	b15 := tr.GeometricResponse(f0)
	q18 := net.MatchQuality(tr.Impedance(18000), zl, 18000)
	b18 := tr.GeometricResponse(18000)
	if q18*b18*b18 >= 0.75*q15*b15*b15 {
		t.Errorf("delivered power should degrade at 18 kHz: %g vs %g",
			q18*b18*b18, q15*b15*b15)
	}
}

func TestStateStrings(t *testing.T) {
	if Absorptive.String() != "absorptive" || Reflective.String() != "reflective" ||
		Open.String() != "open" || SwitchState(9).String() != "unknown" {
		t.Error("switch state names wrong")
	}
}

func TestRhoC(t *testing.T) {
	if RhoC(1500, false) != 1.5e6 {
		t.Error("fresh rhoC wrong")
	}
	if RhoC(1500, true) != 1025*1500 {
		t.Error("salt rhoC wrong")
	}
}

func TestVerticalDirectivity(t *testing.T) {
	tr := mustNew(t, PaperCylinder())
	// Unity broadside, rolling off toward the axis, floored at 0.05.
	if d := tr.VerticalDirectivity(0); math.Abs(d-1) > 1e-12 {
		t.Errorf("broadside %g, want 1", d)
	}
	if d := tr.VerticalDirectivity(math.Pi / 3); math.Abs(d-0.5) > 1e-12 {
		t.Errorf("60° %g, want 0.5", d)
	}
	if d := tr.VerticalDirectivity(math.Pi / 2); d != 0.05 {
		t.Errorf("axial %g, want floor 0.05", d)
	}
	// Omni when the exponent is zero.
	d := PaperCylinder()
	d.VerticalDirectivityExp = 0
	omni := mustNew(t, d)
	if omni.VerticalDirectivity(1.2) != 1 {
		t.Error("zero exponent should be omnidirectional")
	}
}
