package channel

import (
	"math"
	"math/rand"

	"pab/internal/telemetry"
)

// AddImpulseBurst adds one impulsive broadband transient — a
// snapping-shrimp click or similar — to a pressure recording in place:
// white noise at ampPa RMS under an exponentially decaying envelope,
// starting startS seconds into the recording and nominally durS long
// (the envelope's time constant is durS/3, so the tail fades naturally).
// Portions outside the recording are ignored.
func AddImpulseBurst(y []float64, fs, startS, durS, ampPa float64, rng *rand.Rand) {
	if fs <= 0 || durS <= 0 || ampPa <= 0 || rng == nil {
		return
	}
	start := int(startS * fs)
	n := int(durS * fs)
	if n < 1 {
		n = 1
	}
	tau := durS / 3 * fs
	added := false
	for i := 0; i < n; i++ {
		idx := start + i
		if idx < 0 || idx >= len(y) {
			continue
		}
		y[idx] += ampPa * math.Exp(-float64(i)/tau) * rng.NormFloat64()
		added = true
	}
	if added {
		telemetry.Inc(telemetry.MChannelImpulseBurstsTotal)
	}
}

// Clip saturates a recording at ±level in place — hydrophone front-end
// saturation — and returns how many samples clipped.
func Clip(y []float64, level float64) int {
	if level <= 0 {
		return 0
	}
	clipped := 0
	for i, v := range y {
		switch {
		case v > level:
			y[i] = level
			clipped++
		case v < -level:
			y[i] = -level
			clipped++
		}
	}
	telemetry.Add(telemetry.MChannelClippedSamplesTotal, int64(clipped))
	return clipped
}
