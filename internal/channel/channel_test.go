package channel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pab/internal/acoustics"
	"pab/internal/dsp"
)

func TestVec3(t *testing.T) {
	a, b := Vec3{1, 2, 3}, Vec3{1, 2, 0}
	if d := a.Distance(b); d != 3 {
		t.Errorf("distance %g, want 3", d)
	}
	if n := (Vec3{3, 4, 0}).Norm(); n != 5 {
		t.Errorf("norm %g, want 5", n)
	}
}

func TestTankValidation(t *testing.T) {
	if err := PoolA().Validate(); err != nil {
		t.Errorf("pool A: %v", err)
	}
	if err := PoolB().Validate(); err != nil {
		t.Errorf("pool B: %v", err)
	}
	bad := PoolA()
	bad.LX = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero dimension should fail")
	}
	bad = PoolA()
	bad.WallReflect = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("reflection > 1 should fail")
	}
}

func TestContains(t *testing.T) {
	tank := PoolA()
	if !tank.Contains(Vec3{1, 1, 0.5}) {
		t.Error("interior point should be contained")
	}
	if tank.Contains(Vec3{-0.1, 1, 0.5}) || tank.Contains(Vec3{1, 5, 0.5}) {
		t.Error("exterior points should not be contained")
	}
}

func TestDirectPathDelayAndGain(t *testing.T) {
	tank := PoolA()
	src := Vec3{0.5, 0.5, 0.65}
	dst := Vec3{2.5, 0.5, 0.65}
	fs := 96000.0
	ir, err := tank.Response(src, dst, fs, Options{MaxOrder: 0, CarrierHz: 15000})
	if err != nil {
		t.Fatal(err)
	}
	if len(ir.Taps) != 1 {
		t.Fatalf("order 0 should give exactly the direct path, got %d taps", len(ir.Taps))
	}
	c := tank.Water.SoundSpeed()
	wantDelay := 2.0 / c
	if math.Abs(ir.Taps[0].DelaySeconds-wantDelay) > 1e-9 {
		t.Errorf("delay %g, want %g", ir.Taps[0].DelaySeconds, wantDelay)
	}
	// 1/r at 2 m ⇒ gain ≈ 0.5 (absorption negligible).
	if math.Abs(ir.Taps[0].Gain-0.5) > 0.001 {
		t.Errorf("gain %g, want ~0.5", ir.Taps[0].Gain)
	}
}

func TestMultipathHasMoreTaps(t *testing.T) {
	tank := PoolA()
	src := Vec3{0.5, 0.5, 0.65}
	dst := Vec3{2.5, 3.5, 0.65}
	fs := 96000.0
	ir0, err := tank.Response(src, dst, fs, Options{MaxOrder: 0, CarrierHz: 15000})
	if err != nil {
		t.Fatal(err)
	}
	ir3, err := tank.Response(src, dst, fs, DefaultOptions(15000))
	if err != nil {
		t.Fatal(err)
	}
	if len(ir3.Taps) <= len(ir0.Taps) {
		t.Errorf("order 3 (%d taps) should exceed order 0 (%d)", len(ir3.Taps), len(ir0.Taps))
	}
	// Taps are delay-sorted and the first is the direct path.
	for i := 1; i < len(ir3.Taps); i++ {
		if ir3.Taps[i].DelaySeconds < ir3.Taps[i-1].DelaySeconds {
			t.Fatal("taps not sorted by delay")
		}
	}
	if math.Abs(ir3.Taps[0].Gain-ir0.Taps[0].Gain) > 1e-12 {
		t.Error("first tap should be the direct path")
	}
	// Reflected taps are weaker than the direct path.
	for _, tap := range ir3.Taps[1:] {
		if math.Abs(tap.Gain) > math.Abs(ir3.Taps[0].Gain) {
			t.Errorf("reflection stronger than direct: %g vs %g", tap.Gain, ir3.Taps[0].Gain)
		}
	}
}

func TestSurfaceReflectionInverted(t *testing.T) {
	// With only the surface reflective, the sole order-1 echo should be
	// negative (pressure release).
	tank := PoolA()
	tank.WallReflect = 0
	tank.FloorReflect = 0
	src := Vec3{1, 1, 0.65}
	dst := Vec3{2, 1, 0.65}
	ir, err := tank.Response(src, dst, 96000, Options{MaxOrder: 1, MinGain: 0.001, CarrierHz: 15000})
	if err != nil {
		t.Fatal(err)
	}
	var negative int
	for _, tap := range ir.Taps[1:] {
		if tap.Gain < 0 {
			negative++
		}
	}
	if negative == 0 {
		t.Error("expected at least one inverted surface echo")
	}
}

func TestResponseErrors(t *testing.T) {
	tank := PoolA()
	in := Vec3{1, 1, 0.5}
	out := Vec3{99, 1, 0.5}
	if _, err := tank.Response(in, out, 96000, DefaultOptions(15000)); err == nil {
		t.Error("outside receiver should error")
	}
	if _, err := tank.Response(out, in, 96000, DefaultOptions(15000)); err == nil {
		t.Error("outside source should error")
	}
	if _, err := tank.Response(in, in, 0, DefaultOptions(15000)); err == nil {
		t.Error("zero sample rate should error")
	}
	if _, err := tank.Response(in, in, 96000, Options{MaxOrder: -1}); err == nil {
		t.Error("negative order should error")
	}
}

func TestApplyDelaysAndScales(t *testing.T) {
	ir := &ImpulseResponse{
		Taps:       []Tap{{DelaySeconds: 10.0 / 96000, Gain: 0.5}},
		SampleRate: 96000,
	}
	x := []float64{1, 0, 0, 0}
	y := ir.Apply(x)
	if math.Abs(y[10]-0.5) > 1e-12 {
		t.Errorf("y[10] = %g, want 0.5", y[10])
	}
	for i, v := range y {
		if i != 10 && math.Abs(v) > 1e-12 {
			t.Errorf("y[%d] = %g, want 0", i, v)
		}
	}
}

func TestApplyFractionalDelay(t *testing.T) {
	ir := &ImpulseResponse{
		Taps:       []Tap{{DelaySeconds: 10.5 / 96000, Gain: 1}},
		SampleRate: 96000,
	}
	y := ir.Apply([]float64{1})
	if math.Abs(y[10]-0.5) > 1e-9 || math.Abs(y[11]-0.5) > 1e-9 {
		t.Errorf("fractional delay should split: y[10]=%g y[11]=%g", y[10], y[11])
	}
}

func TestApplyLinearity(t *testing.T) {
	tank := PoolA()
	ir, err := tank.Response(Vec3{0.5, 1, 0.6}, Vec3{2, 3, 0.6}, 96000, DefaultOptions(15000))
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := make([]float64, 64)
		b := make([]float64, 64)
		sum := make([]float64, 64)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
			sum[i] = a[i] + b[i]
		}
		ya, yb, ys := ir.Apply(a), ir.Apply(b), ir.Apply(sum)
		for i := range ys {
			if math.Abs(ys[i]-(ya[i]+yb[i])) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestChannelGainVariesWithLocation(t *testing.T) {
	// Multipath fading: coherent gain differs across placements (the
	// spread behind Fig 10's per-location SINR variation).
	tank := PoolA()
	fs := 96000.0
	base := Vec3{0.3, 0.3, 0.65}
	var gains []float64
	for _, p := range []Vec3{{1, 1, 0.6}, {1.7, 2.3, 0.5}, {2.4, 3.1, 0.8}, {0.9, 3.3, 0.4}} {
		ir, err := tank.Response(base, p, fs, DefaultOptions(15000))
		if err != nil {
			t.Fatal(err)
		}
		g := ir.Gain(15000)
		gains = append(gains, math.Hypot(real(g), imag(g)))
	}
	allSame := true
	for _, g := range gains[1:] {
		if math.Abs(g-gains[0]) > 0.01*gains[0] {
			allSame = false
		}
	}
	if allSame {
		t.Error("channel gains should vary with location")
	}
}

func TestPoolBCarriesFartherThanPoolA(t *testing.T) {
	// The corridor's wall images reinforce the field: at the same range,
	// total received energy in Pool B exceeds open Pool A (Fig 9's
	// observation). Compare summed tap energy at 4 m.
	fs := 96000.0
	a, err := PoolA().Response(Vec3{0.3, 0.3, 0.65}, Vec3{0.3, 3.9, 0.65}, fs, Options{MaxOrder: 4, MinGain: 0.005, CarrierHz: 15000})
	if err != nil {
		t.Fatal(err)
	}
	b, err := PoolB().Response(Vec3{0.6, 0.3, 0.5}, Vec3{0.6, 3.9, 0.5}, fs, Options{MaxOrder: 4, MinGain: 0.005, CarrierHz: 15000})
	if err != nil {
		t.Fatal(err)
	}
	energy := func(ir *ImpulseResponse) float64 {
		e := 0.0
		for _, tap := range ir.Taps {
			e += tap.Gain * tap.Gain
		}
		return e
	}
	if energy(b) <= energy(a) {
		t.Errorf("pool B energy %g should exceed pool A %g at 3.6 m", energy(b), energy(a))
	}
}

func TestAddWhiteNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	x := make([]float64, 100000)
	AddWhiteNoise(x, 0.5, rng)
	if r := dsp.RMS(x); math.Abs(r-0.5) > 0.01 {
		t.Errorf("noise RMS %g, want 0.5", r)
	}
	y := make([]float64, 10)
	AddWhiteNoise(y, 0, rng)
	for _, v := range y {
		if v != 0 {
			t.Error("zero RMS should add nothing")
		}
	}
}

func TestNoiseForSNR(t *testing.T) {
	// Signal RMS 1.0, want 20 dB SNR ⇒ noise RMS 0.1.
	if n := NoiseForSNR(1.0, 20); math.Abs(n-0.1) > 1e-12 {
		t.Errorf("noise RMS %g, want 0.1", n)
	}
	// Verify end to end with measured RMS.
	rng := rand.New(rand.NewSource(1))
	sig := dsp.Sine(math.Sqrt2, 15000, 96000, 0, 96000) // RMS 1
	noise := NoiseForSNR(1.0, 10)
	noisy := make([]float64, len(sig))
	copy(noisy, sig)
	AddWhiteNoise(noisy, noise, rng)
	var nPow float64
	for i := range sig {
		d := noisy[i] - sig[i]
		nPow += d * d
	}
	snr := 10 * math.Log10(1.0/(nPow/float64(len(sig))))
	if math.Abs(snr-10) > 0.3 {
		t.Errorf("achieved SNR %g dB, want 10", snr)
	}
}

func TestAmbientNoiseRMS(t *testing.T) {
	rms, err := AmbientNoiseRMS(acoustics.CoastalNoise(), 14e3, 16e3)
	if err != nil {
		t.Fatal(err)
	}
	if rms <= 0 {
		t.Error("ambient noise RMS should be positive")
	}
	quietRMS, err := AmbientNoiseRMS(acoustics.QuietTank(), 14e3, 16e3)
	if err != nil {
		t.Fatal(err)
	}
	if quietRMS >= rms {
		t.Error("quiet tank should be quieter than coastal water")
	}
	if _, err := AmbientNoiseRMS(acoustics.QuietTank(), 16e3, 14e3); err == nil {
		t.Error("inverted band should error")
	}
}

func TestToneThroughChannelKeepsFrequency(t *testing.T) {
	tank := PoolA()
	fs := 96000.0
	ir, err := tank.Response(Vec3{0.5, 0.5, 0.6}, Vec3{2.5, 3.5, 0.6}, fs, DefaultOptions(15000))
	if err != nil {
		t.Fatal(err)
	}
	x := dsp.Sine(1, 15000, fs, 0, 9600)
	y := ir.Apply(x)
	peaks := dsp.FindPeaks(y[500:len(y)-500], fs, 1, 500, 0)
	if len(peaks) != 1 || math.Abs(peaks[0].Frequency-15000) > 50 {
		t.Errorf("channel distorted the tone: %+v", peaks)
	}
}

func TestDirectivityDeweightsSteepPaths(t *testing.T) {
	tank := PoolA()
	src := Vec3{1, 1, 0.65}
	dst := Vec3{2, 1.2, 0.65}
	fs := 96000.0
	omni := DefaultOptions(15000)
	directive := omni
	cosPattern := func(elev float64) float64 {
		d := math.Abs(math.Cos(elev))
		if d < 0.05 {
			return 0.05
		}
		return d
	}
	directive.SrcDirectivity = cosPattern
	directive.DstDirectivity = cosPattern

	irO, err := tank.Response(src, dst, fs, omni)
	if err != nil {
		t.Fatal(err)
	}
	irD, err := tank.Response(src, dst, fs, directive)
	if err != nil {
		t.Fatal(err)
	}
	// The direct (horizontal) path is untouched; total reverberant
	// energy drops because the vertical bounces are de-weighted.
	if math.Abs(irD.Taps[0].Gain-irO.Taps[0].Gain) > 1e-9 {
		t.Errorf("horizontal direct path changed: %g vs %g", irD.Taps[0].Gain, irO.Taps[0].Gain)
	}
	energy := func(ir *ImpulseResponse) float64 {
		e := 0.0
		for _, tap := range ir.Taps[1:] {
			e += tap.Gain * tap.Gain
		}
		return e
	}
	if energy(irD) >= energy(irO) {
		t.Errorf("directive reverb energy %g should be below omni %g", energy(irD), energy(irO))
	}
}

func TestSurfaceBounceCounting(t *testing.T) {
	tank := PoolA()
	ir, err := tank.Response(Vec3{1, 1, 0.65}, Vec3{2, 1.5, 0.65}, 96000,
		Options{MaxOrder: 2, MinGain: 0.001, CarrierHz: 15000})
	if err != nil {
		t.Fatal(err)
	}
	if ir.Taps[0].SurfaceBounces != 0 {
		t.Error("direct path should have zero surface bounces")
	}
	var surface int
	for _, tap := range ir.Taps {
		if tap.SurfaceBounces > 0 {
			surface++
		}
	}
	if surface == 0 {
		t.Error("order-2 response should contain surface-reflected paths")
	}
}

func TestApplyTimeVaryingStillWaterMatchesApply(t *testing.T) {
	tank := PoolA()
	ir, err := tank.Response(Vec3{1, 1, 0.65}, Vec3{2, 1.5, 0.65}, 96000, DefaultOptions(15000))
	if err != nil {
		t.Fatal(err)
	}
	x := dsp.Sine(1, 15000, 96000, 0, 2000)
	static := ir.Apply(x)
	calm := ir.ApplyTimeVarying(x, SurfaceMotion{}, 1482) // zero motion → Apply
	n := len(static)
	if len(calm) < n {
		n = len(calm)
	}
	for i := 0; i < n; i++ {
		if math.Abs(static[i]-calm[i]) > 1e-9 {
			t.Fatalf("calm water mismatch at %d", i)
		}
	}
}

func TestApplyTimeVaryingFadesTheCarrier(t *testing.T) {
	// Surface waves swing the surface-path phase, so the coherent sum
	// with the direct path fades in and out over the wave period.
	tank := PoolA()
	// Strengthen the surface path so the fading is unmistakable.
	tank.WallReflect = 0
	tank.FloorReflect = 0
	tank.SurfaceReflect = -0.95
	fs := 96000.0
	ir, err := tank.Response(Vec3{1, 1, 0.65}, Vec3{2, 1.5, 0.65}, fs,
		Options{MaxOrder: 1, MinGain: 0.001, CarrierHz: 15000})
	if err != nil {
		t.Fatal(err)
	}
	n := int(2 * fs) // two seconds, two wave periods
	x := dsp.Sine(1, 15000, fs, 0, n)
	y := ir.ApplyTimeVarying(x, SurfaceMotion{AmplitudeM: 0.03, PeriodS: 1}, tank.Water.SoundSpeed())
	// Envelope over 50 ms blocks must vary far more than in still water.
	block := int(0.05 * fs)
	var levels []float64
	for s := 0; s+block < n; s += block {
		levels = append(levels, dsp.RMS(y[s:s+block]))
	}
	minL, maxL := levels[0], levels[0]
	for _, l := range levels {
		minL = math.Min(minL, l)
		maxL = math.Max(maxL, l)
	}
	if maxL/minL < 1.2 {
		t.Errorf("surface motion should fade the carrier: levels %g–%g", minL, maxL)
	}
}
