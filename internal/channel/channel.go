// Package channel simulates acoustic propagation inside rectangular water
// tanks using the image method (Allen–Berkley), plus ambient and white
// noise injection. It is the stand-in for the MIT Sea Grant pools the
// paper evaluated in: Pool A (3 m × 4 m × 1.3 m) and Pool B, the long
// 1.2 m × 10 m × 1 m corridor whose waveguide focusing explains the
// longer power-up range in Fig 9.
package channel

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"pab/internal/acoustics"
	"pab/internal/telemetry"
	"pab/internal/units"
)

// Vec3 is a position in tank coordinates (metres). x and y span the
// horizontal cross-section; z is height above the floor.
type Vec3 struct {
	X, Y, Z float64
}

// Sub returns a − b.
func (a Vec3) Sub(b Vec3) Vec3 { return Vec3{a.X - b.X, a.Y - b.Y, a.Z - b.Z} }

// Norm returns the Euclidean length.
func (a Vec3) Norm() float64 { return math.Sqrt(a.X*a.X + a.Y*a.Y + a.Z*a.Z) }

// Distance returns |a − b|.
func (a Vec3) Distance(b Vec3) float64 { return a.Sub(b).Norm() }

// Tank is a rectangular water tank with reflective boundaries.
type Tank struct {
	// Dimensions in metres: X × Y horizontal, Z depth.
	LX, LY, LZ float64
	// Reflection coefficients (pressure amplitude, signed). The water
	// surface is a pressure-release boundary (≈ −0.95); walls and floor
	// of a concrete/liner tank absorb part of each bounce.
	WallReflect    float64 // four side walls
	FloorReflect   float64 // z = 0
	SurfaceReflect float64 // z = LZ (negative: phase inversion)
	// Water carries temperature/salinity for sound speed and absorption.
	Water acoustics.Water
}

// PoolA returns the paper's Pool A: an enclosed 3 m × 4 m tank, 1.3 m
// deep (§5.1d).
func PoolA() Tank {
	return Tank{
		LX: 3, LY: 4, LZ: 1.3,
		WallReflect:    0.35,
		FloorReflect:   0.45,
		SurfaceReflect: -0.9,
		Water:          acoustics.FreshTank(),
	}
}

// PoolB returns the paper's Pool B: the elongated 1.2 m × 10 m corridor,
// 1 m deep, that "acts as a corridor, focusing the projector's signal
// directionally" (§6.2).
func PoolB() Tank {
	return Tank{
		LX: 1.2, LY: 10, LZ: 1,
		WallReflect:    0.55, // close glass/liner walls reflect strongly
		FloorReflect:   0.45,
		SurfaceReflect: -0.9,
		Water:          acoustics.FreshTank(),
	}
}

// SwimmingPool returns a 25 m × 12 m indoor swimming pool, 2 m deep —
// the third environment the paper validated in (§5.1d: "we also
// validated that the system operates correctly in an indoor swimming
// pool"). Tiled walls reflect more strongly than the Sea Grant tanks'.
func SwimmingPool() Tank {
	return Tank{
		LX: 12, LY: 25, LZ: 2,
		WallReflect:    0.5,
		FloorReflect:   0.5,
		SurfaceReflect: -0.9,
		Water:          acoustics.FreshTank(),
	}
}

// Validate checks tank plausibility.
func (t Tank) Validate() error {
	if t.LX <= 0 || t.LY <= 0 || t.LZ <= 0 {
		return fmt.Errorf("channel: tank dimensions must be positive: %gx%gx%g", t.LX, t.LY, t.LZ)
	}
	for _, r := range []float64{t.WallReflect, t.FloorReflect, t.SurfaceReflect} {
		if math.Abs(r) > 1 {
			return fmt.Errorf("channel: reflection coefficient %g outside [-1,1]", r)
		}
	}
	return nil
}

// Contains reports whether p lies inside the tank volume.
func (t Tank) Contains(p Vec3) bool {
	return p.X >= 0 && p.X <= t.LX && p.Y >= 0 && p.Y <= t.LY && p.Z >= 0 && p.Z <= t.LZ
}

// Tap is one propagation path of an impulse response.
type Tap struct {
	DelaySeconds float64
	// Gain is the signed pressure amplitude ratio relative to the source
	// amplitude referenced at 1 m.
	Gain float64
	// SurfaceBounces counts reflections off the (moving) water surface;
	// these taps wander when the surface does.
	SurfaceBounces int
}

// ImpulseResponse holds the multipath taps of a source→receiver link
// along with the sample rate they will be rendered at.
type ImpulseResponse struct {
	Taps       []Tap
	SampleRate float64
}

// Options tunes the image-method computation.
type Options struct {
	// MaxOrder is the maximum image index per axis (number of wall
	// bounces considered in each direction). 0 keeps only the direct
	// path; 3 captures the energetically relevant reverberation for the
	// tank sizes here.
	MaxOrder int
	// MinGain prunes taps weaker than this fraction of the direct-path
	// gain (default 0.01 when zero).
	MinGain float64
	// CarrierHz is the frequency used for absorption (narrowband links).
	CarrierHz float64
	// SrcDirectivity and DstDirectivity, when non-nil, weight each image
	// path by the endpoints' vertical beam patterns, evaluated at the
	// path's elevation angle (radians from horizontal). Transducers like
	// the paper's radial cylinder are horizontal-omni but roll off
	// vertically, which de-weights steep surface/floor bounces.
	SrcDirectivity func(elevationRad float64) float64
	DstDirectivity func(elevationRad float64) float64
}

// DefaultOptions returns image-method settings appropriate for PAB links.
func DefaultOptions(carrierHz float64) Options {
	return Options{MaxOrder: 3, MinGain: 0.01, CarrierHz: carrierHz}
}

// Response computes the impulse response from src to dst at sample rate
// fs using the image method.
func (t Tank) Response(src, dst Vec3, fs float64, opt Options) (*ImpulseResponse, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if !t.Contains(src) || !t.Contains(dst) {
		return nil, fmt.Errorf("channel: source %+v or receiver %+v outside tank", src, dst)
	}
	if fs <= 0 {
		return nil, fmt.Errorf("channel: sample rate must be positive, got %g", fs)
	}
	if opt.MaxOrder < 0 {
		return nil, fmt.Errorf("channel: negative image order %d", opt.MaxOrder)
	}
	minGain := opt.MinGain
	if minGain <= 0 {
		minGain = 0.01
	}

	c := t.Water.SoundSpeed()
	direct := math.Max(src.Distance(dst), 0.05)
	directGain := t.pathGain(direct, opt.CarrierHz)
	floor := math.Abs(directGain) * minGain

	// Typical surviving tap counts are small (the gain floor prunes most
	// images); growth beyond the estimate is amortised.
	taps := make([]Tap, 0, 64)
	images := 0
	n := opt.MaxOrder
	for nx := -n; nx <= n; nx++ {
		for ny := -n; ny <= n; ny++ {
			for nz := -n; nz <= n; nz++ {
				for u := 0; u < 2; u++ {
					for v := 0; v < 2; v++ {
						for w := 0; w < 2; w++ {
							// Allen–Berkley reflection counts: |nx−u| hits on
							// the x=0 wall, |nx| on the x=LX wall, etc. The
							// total bounce count defines the image order.
							bounces := math.Abs(float64(nx-u)) + math.Abs(float64(nx)) +
								math.Abs(float64(ny-v)) + math.Abs(float64(ny)) +
								math.Abs(float64(nz-w)) + math.Abs(float64(nz))
							if int(bounces) > opt.MaxOrder {
								continue
							}
							images++
							img := Vec3{
								X: float64(1-2*u)*src.X + 2*float64(nx)*t.LX,
								Y: float64(1-2*v)*src.Y + 2*float64(ny)*t.LY,
								Z: float64(1-2*w)*src.Z + 2*float64(nz)*t.LZ,
							}
							r := math.Max(img.Distance(dst), 0.05)
							refl := math.Pow(t.WallReflect, math.Abs(float64(nx-u))+math.Abs(float64(nx))) *
								math.Pow(t.WallReflect, math.Abs(float64(ny-v))+math.Abs(float64(ny))) *
								math.Pow(t.FloorReflect, math.Abs(float64(nz-w))) *
								math.Pow(t.SurfaceReflect, math.Abs(float64(nz)))
							g := refl * t.pathGain(r, opt.CarrierHz)
							if opt.SrcDirectivity != nil || opt.DstDirectivity != nil {
								elev := math.Asin(math.Abs(img.Z-dst.Z) / r)
								if opt.SrcDirectivity != nil {
									g *= opt.SrcDirectivity(elev)
								}
								if opt.DstDirectivity != nil {
									g *= opt.DstDirectivity(elev)
								}
							}
							if math.Abs(g) < floor {
								continue
							}
							taps = append(taps, Tap{
								DelaySeconds:   r / c,
								Gain:           g,
								SurfaceBounces: int(math.Abs(float64(nz))),
							})
						}
					}
				}
			}
		}
	}
	sort.Slice(taps, func(i, j int) bool { return taps[i].DelaySeconds < taps[j].DelaySeconds })
	ir := &ImpulseResponse{Taps: taps, SampleRate: fs}
	telemetry.Inc(telemetry.MChannelResponsesTotal)
	telemetry.ObserveN(telemetry.MChannelIrTaps, telemetry.DefCountBuckets, float64(len(taps)))
	telemetry.ObserveN(telemetry.MChannelIrImagesConsidered, telemetry.DefCountBuckets, float64(images))
	telemetry.Observe(telemetry.MChannelIrMaxDelaySeconds, ir.MaxDelay())
	return ir, nil
}

// pathGain returns the signed amplitude gain of a path of length r at
// carrier f: spherical spreading (1/r, referenced to 1 m) times
// absorption.
// Path lengths are floored at 0.05 m by callers so the 1/r reference
// stays finite for colocated pairs.
func (t Tank) pathGain(r, f float64) float64 {
	return 1 / r * units.DBToAmplitude(units.DB(-t.Water.AbsorptionDBPerKm(f)*r/1000))
}

// DirectGain returns the direct-path-only amplitude gain between two
// points (no reverberation), used for link-budget style calculations.
func (t Tank) DirectGain(src, dst Vec3, f float64) float64 {
	r := math.Max(src.Distance(dst), 0.05)
	return t.pathGain(r, f)
}

// MaxDelay returns the largest tap delay in seconds (0 if empty).
func (ir *ImpulseResponse) MaxDelay() float64 {
	if len(ir.Taps) == 0 {
		return 0
	}
	return ir.Taps[len(ir.Taps)-1].DelaySeconds
}

// Gain returns the coherent channel gain at carrier frequency f: the
// complex sum of the taps' phasors. Its magnitude captures multipath
// fading, which varies with node placement — the location dependence seen
// across Fig 10's eight positions.
func (ir *ImpulseResponse) Gain(f float64) complex128 {
	var h complex128
	for _, tap := range ir.Taps {
		ph := -2 * math.Pi * f * tap.DelaySeconds
		h += complex(tap.Gain*math.Cos(ph), tap.Gain*math.Sin(ph))
	}
	return h
}

// Apply convolves x with the sparse tap set, using linear interpolation
// for fractional sample delays. The output has length len(x) plus the
// channel spread.
func (ir *ImpulseResponse) Apply(x []float64) []float64 {
	if len(x) == 0 || len(ir.Taps) == 0 {
		return nil
	}
	spread := int(math.Ceil(ir.MaxDelay()*ir.SampleRate)) + 2
	out := make([]float64, len(x)+spread)
	for _, tap := range ir.Taps {
		d := tap.DelaySeconds * ir.SampleRate
		i0 := int(math.Floor(d))
		frac := d - float64(i0)
		g0 := tap.Gain * (1 - frac)
		g1 := tap.Gain * frac
		for i, v := range x {
			out[i+i0] += g0 * v
			out[i+i0+1] += g1 * v
		}
	}
	return out
}

// SurfaceMotion describes sinusoidal surface waves for time-varying
// propagation: each surface-reflected path's length changes by roughly
// 2·amplitude per bounce as the reflection point rises and falls — the
// slow fading a real open-water deployment sees (paper §8: testing in
// "rivers, lakes, and oceans ... likely to introduce new challenges,
// such as mobility and multipath").
type SurfaceMotion struct {
	// AmplitudeM is the wave amplitude (half the crest-to-trough height).
	AmplitudeM float64
	// PeriodS is the wave period.
	PeriodS float64
	// PhaseRad offsets the wave phase.
	PhaseRad float64
}

// ApplyTimeVarying renders x through the channel like Apply, but
// surface-reflected taps ride the given surface motion: their delays are
// modulated by ±2·amplitude·bounces/c around the still-water value.
func (ir *ImpulseResponse) ApplyTimeVarying(x []float64, motion SurfaceMotion, soundSpeed float64) []float64 {
	if len(x) == 0 || len(ir.Taps) == 0 {
		return nil
	}
	if motion.AmplitudeM <= 0 || motion.PeriodS <= 0 || soundSpeed <= 0 || ir.SampleRate <= 0 {
		return ir.Apply(x)
	}
	maxExtra := 2 * motion.AmplitudeM * float64(maxSurfaceBounces(ir.Taps)) / soundSpeed
	spread := int(math.Ceil((ir.MaxDelay()+maxExtra)*ir.SampleRate)) + 2
	out := make([]float64, len(x)+spread)
	w := 2 * math.Pi / motion.PeriodS
	for _, tap := range ir.Taps {
		if tap.SurfaceBounces == 0 {
			// Static path: render directly.
			d := tap.DelaySeconds * ir.SampleRate
			i0 := int(math.Floor(d))
			frac := d - float64(i0)
			g0 := tap.Gain * (1 - frac)
			g1 := tap.Gain * frac
			for i, v := range x {
				out[i+i0] += g0 * v
				out[i+i0+1] += g1 * v
			}
			continue
		}
		wobble := 2 * motion.AmplitudeM * float64(tap.SurfaceBounces) / soundSpeed
		invFs := 1 / ir.SampleRate
		for i, v := range x {
			t := float64(i) * invFs
			d := (tap.DelaySeconds + wobble*math.Sin(w*t+motion.PhaseRad)) * ir.SampleRate
			i0 := int(math.Floor(d))
			frac := d - float64(i0)
			if i+i0+1 >= len(out) || i0 < 0 {
				continue
			}
			out[i+i0] += tap.Gain * (1 - frac) * v
			out[i+i0+1] += tap.Gain * frac * v
		}
	}
	return out
}

func maxSurfaceBounces(taps []Tap) int {
	m := 0
	for _, t := range taps {
		if t.SurfaceBounces > m {
			m = t.SurfaceBounces
		}
	}
	return m
}

// AddWhiteNoise adds zero-mean Gaussian noise of the given RMS (same
// units as x, i.e. pascal in the simulator) in place.
func AddWhiteNoise(x []float64, rms float64, rng *rand.Rand) {
	if rms <= 0 {
		return
	}
	for i := range x {
		x[i] += rng.NormFloat64() * rms
	}
}

// AmbientNoiseRMS returns the RMS pressure (Pa) of ambient noise within
// the receiver's processing band [f1Hz, f2Hz] for the given conditions.
func AmbientNoiseRMS(nc acoustics.NoiseConditions, f1Hz, f2Hz float64) (float64, error) {
	level, err := nc.BandNoiseLevel(f1Hz, f2Hz)
	if err != nil {
		return 0, err
	}
	return units.PressureFromSPL(level), nil
}

// NoiseForSNR returns the white-noise RMS that produces the requested SNR
// (dB) against a signal of RMS sRMS. Used by the BER–SNR sweep (Fig 7) to
// pin the operating point exactly.
func NoiseForSNR(sRMS float64, snr units.DB) float64 {
	return sRMS / units.DBToAmplitude(snr)
}
