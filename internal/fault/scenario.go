package fault

import (
	"fmt"
	"hash/fnv"
	"io"

	"pab/internal/frame"
	"pab/internal/mac"
)

// ScenarioConfig tunes a chaos run.
type ScenarioConfig struct {
	// DurationS is the simulated run length (default 180).
	DurationS float64
	// Nodes is the population size, addressed 1..Nodes (default 4).
	Nodes int
	// MaxAttempts bounds exchanges per logical poll for both strategies
	// (default 4).
	MaxAttempts int
	// Session overrides the adaptive strategy's tuning; the zero value
	// uses mac.DefaultSessionConfig(seed) with MaxAttempts applied.
	Session *mac.SessionConfig
}

// DefaultScenarioConfig returns the defaults above.
func DefaultScenarioConfig() ScenarioConfig {
	return ScenarioConfig{DurationS: 180, Nodes: 4, MaxAttempts: 4}
}

// StrategyReport is one strategy's outcome over a chaos run.
type StrategyReport struct {
	Name string `json:"name"`
	// DeliveredBytes is total CRC-clean payload delivered.
	DeliveredBytes int `json:"delivered_bytes"`
	// GoodputBps is delivered payload bits per second of simulated run
	// time — the headline number (airtime-relative goodput would hide
	// time wasted hammering a jammed channel).
	GoodputBps   float64 `json:"goodput_bps"`
	Polls        int     `json:"polls"`
	Replies      int     `json:"replies"`
	Failures     int     `json:"failures"`
	Retries      int     `json:"retries"`
	NoSync       int     `json:"no_sync"`
	CRCFails     int     `json:"crc_fails"`
	Timeouts     int     `json:"timeouts"`
	DeliveryRate float64 `json:"delivery_rate"`
	AirtimeS     float64 `json:"airtime_s"`
	// Session-only resilience counters (zero for the blind strategy).
	BackoffS      float64 `json:"backoff_s"`
	Downshifts    int     `json:"downshifts"`
	Upshifts      int     `json:"upshifts"`
	Quarantines   int     `json:"quarantines"`
	Evictions     int     `json:"evictions"`
	SkippedPolls  int     `json:"skipped_polls"`
	Recoveries    int     `json:"recoveries"`
	MeanRecoveryS float64 `json:"mean_recovery_s"`
}

// Report is the outcome of one blind-vs-adaptive chaos comparison.
// Every field is a pure function of (profile, seed, config), so two
// runs with identical inputs produce byte-identical reports — asserted
// by the Fingerprint.
type Report struct {
	Profile   string  `json:"profile"`
	Seed      int64   `json:"seed"`
	DurationS float64 `json:"duration_s"`
	Nodes     int     `json:"nodes"`
	// FaultCounts are the adaptive run's per-class injection counts.
	FaultCounts []ClassCount   `json:"fault_counts"`
	Blind       StrategyReport `json:"blind"`
	Adaptive    StrategyReport `json:"adaptive"`
	// AdvantageX is adaptive goodput over blind goodput.
	AdvantageX float64 `json:"advantage_x"`
	// Fingerprint is an FNV-1a hash over every deterministic field
	// above; equal seeds must yield equal fingerprints.
	Fingerprint uint64 `json:"fingerprint"`
}

// RunScenario runs the named profile at the given seed twice — once
// with the blind fixed-rate Poller network, once with the adaptive
// Session — on freshly built engines so both strategies face the exact
// same fault timelines.
func RunScenario(profileName string, seed int64, cfg ScenarioConfig) (*Report, error) {
	p, err := ByName(profileName)
	if err != nil {
		return nil, err
	}
	if cfg.DurationS <= 0 {
		cfg.DurationS = 180
	}
	if cfg.Nodes <= 0 {
		cfg.Nodes = 4
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 4
	}
	nodes := make([]byte, cfg.Nodes)
	for i := range nodes {
		nodes[i] = byte(i + 1)
	}

	blind, _, err := runBlind(p, seed, cfg, nodes)
	if err != nil {
		return nil, err
	}
	adaptive, faults, err := runAdaptive(p, seed, cfg, nodes)
	if err != nil {
		return nil, err
	}

	r := &Report{
		Profile:     p.Name,
		Seed:        seed,
		DurationS:   cfg.DurationS,
		Nodes:       cfg.Nodes,
		FaultCounts: faults,
		Blind:       blind,
		Adaptive:    adaptive,
	}
	switch {
	case blind.GoodputBps > 0:
		r.AdvantageX = adaptive.GoodputBps / blind.GoodputBps
	case adaptive.GoodputBps > 0:
		r.AdvantageX = -1 // adaptive delivered, blind delivered nothing
	}
	r.Fingerprint = r.fingerprint()
	return r, nil
}

// buildQuery is the workload both strategies run: read the temperature
// sensor of each node in turn.
func buildQuery(addr byte) frame.Query {
	return frame.Query{Dest: addr, Command: frame.CmdReadSensor, Param: byte(frame.SensorTemperature)}
}

func runBlind(p Profile, seed int64, cfg ScenarioConfig, nodes []byte) (StrategyReport, []ClassCount, error) {
	eng, err := NewEngine(p, seed, cfg.DurationS, nodes)
	if err != nil {
		return StrategyReport{}, nil, err
	}
	ls, err := NewLinkSim(eng, nodes, DefaultLinkSimConfig(false))
	if err != nil {
		return StrategyReport{}, nil, err
	}
	net, err := mac.NewNetwork(ls.Transports(), cfg.MaxAttempts-1)
	if err != nil {
		return StrategyReport{}, nil, err
	}
	for eng.Now() < cfg.DurationS {
		net.Round(buildQuery)
	}
	st := net.Stats()
	rep := StrategyReport{
		Name:           "blind",
		DeliveredBytes: st.PayloadBytes,
		GoodputBps:     float64(st.PayloadBytes*8) / cfg.DurationS,
		Polls:          st.Polls,
		Replies:        st.Replies,
		Failures:       st.Failures,
		Retries:        st.Retries,
		NoSync:         st.NoSync,
		CRCFails:       st.CRCFails,
		Timeouts:       st.Timeouts,
		DeliveryRate:   st.DeliveryRate(),
		AirtimeS:       st.Airtime,
	}
	return rep, eng.Counts(), nil
}

func runAdaptive(p Profile, seed int64, cfg ScenarioConfig, nodes []byte) (StrategyReport, []ClassCount, error) {
	eng, err := NewEngine(p, seed, cfg.DurationS, nodes)
	if err != nil {
		return StrategyReport{}, nil, err
	}
	ls, err := NewLinkSim(eng, nodes, DefaultLinkSimConfig(true))
	if err != nil {
		return StrategyReport{}, nil, err
	}
	scfg := mac.DefaultSessionConfig(seed)
	if cfg.Session != nil {
		scfg = *cfg.Session
	}
	scfg.MaxAttempts = cfg.MaxAttempts
	scfg.Seed = seed
	sess, err := mac.NewSession(ls.Transports(), scfg, eng)
	if err != nil {
		return StrategyReport{}, nil, err
	}
	for eng.Now() < cfg.DurationS {
		before := eng.Now()
		sess.Sweep(buildQuery)
		//pablint:ignore floatcmp simulated clock only moves via explicit Advance; exact equality detects a stalled sweep
		if eng.Now() == before {
			// Every node skipped (quarantined/evicted): idle a beat so
			// simulated time still advances.
			eng.Advance(0.1)
		}
	}
	st := sess.Stats()
	rep := StrategyReport{
		Name:           "adaptive",
		DeliveredBytes: st.PayloadBytes,
		GoodputBps:     float64(st.PayloadBytes*8) / cfg.DurationS,
		Polls:          st.Polls,
		Replies:        st.Replies,
		Failures:       st.Failures,
		Retries:        st.Retries,
		NoSync:         st.NoSync,
		CRCFails:       st.CRCFails,
		Timeouts:       st.Timeouts,
		DeliveryRate:   st.DeliveryRate(),
		AirtimeS:       st.Airtime,
		BackoffS:       st.BackoffSeconds,
		Downshifts:     st.Downshifts,
		Upshifts:       st.Upshifts,
		Quarantines:    st.Quarantines,
		Evictions:      st.Evictions,
		SkippedPolls:   st.SkippedPolls,
		Recoveries:     st.Recoveries,
		MeanRecoveryS:  st.MeanRecoveryS(),
	}
	return rep, eng.Counts(), nil
}

// fingerprint hashes every deterministic report field in fixed order.
func (r *Report) fingerprint() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d|%g|%d", r.Profile, r.Seed, r.DurationS, r.Nodes)
	for _, c := range r.FaultCounts {
		fmt.Fprintf(h, "|%s=%d", c.Class, c.Count)
	}
	for _, s := range []StrategyReport{r.Blind, r.Adaptive} {
		fmt.Fprintf(h, "|%s:%d:%.9g:%d:%d:%d:%d:%d:%d:%d:%.9g:%.9g:%.9g:%d:%d:%d:%d:%d:%d:%.9g",
			s.Name, s.DeliveredBytes, s.GoodputBps, s.Polls, s.Replies, s.Failures,
			s.Retries, s.NoSync, s.CRCFails, s.Timeouts, s.DeliveryRate, s.AirtimeS,
			s.BackoffS, s.Downshifts, s.Upshifts, s.Quarantines, s.Evictions,
			s.SkippedPolls, s.Recoveries, s.MeanRecoveryS)
	}
	fmt.Fprintf(h, "|adv=%.9g", r.AdvantageX)
	return h.Sum64()
}

// WriteText renders the report for a terminal.
func (r *Report) WriteText(w io.Writer) {
	fmt.Fprintf(w, "chaos profile %q  seed %d  %.0fs simulated  %d nodes\n",
		r.Profile, r.Seed, r.DurationS, r.Nodes)
	fmt.Fprintf(w, "fingerprint %016x\n\n", r.Fingerprint)
	fmt.Fprintf(w, "injected faults:\n")
	for _, c := range r.FaultCounts {
		if c.Count > 0 {
			fmt.Fprintf(w, "  %-12s %d\n", c.Class, c.Count)
		}
	}
	fmt.Fprintf(w, "\n%-22s %12s %12s\n", "", "blind", "adaptive")
	row := func(label, format string, b, a interface{}) {
		fmt.Fprintf(w, "%-22s %12s %12s\n", label, fmt.Sprintf(format, b), fmt.Sprintf(format, a))
	}
	row("goodput (bps)", "%.1f", r.Blind.GoodputBps, r.Adaptive.GoodputBps)
	row("delivered (bytes)", "%d", r.Blind.DeliveredBytes, r.Adaptive.DeliveredBytes)
	row("delivery rate", "%.3f", r.Blind.DeliveryRate, r.Adaptive.DeliveryRate)
	row("polls", "%d", r.Blind.Polls, r.Adaptive.Polls)
	row("failures (no-sync)", "%d", r.Blind.NoSync, r.Adaptive.NoSync)
	row("failures (crc)", "%d", r.Blind.CRCFails, r.Adaptive.CRCFails)
	row("failures (timeout)", "%d", r.Blind.Timeouts, r.Adaptive.Timeouts)
	row("airtime (s)", "%.1f", r.Blind.AirtimeS, r.Adaptive.AirtimeS)
	row("backoff (s)", "%.1f", r.Blind.BackoffS, r.Adaptive.BackoffS)
	row("downshifts", "%d", r.Blind.Downshifts, r.Adaptive.Downshifts)
	row("upshifts", "%d", r.Blind.Upshifts, r.Adaptive.Upshifts)
	row("quarantines", "%d", r.Blind.Quarantines, r.Adaptive.Quarantines)
	row("evictions", "%d", r.Blind.Evictions, r.Adaptive.Evictions)
	row("mean recovery (s)", "%.2f", r.Blind.MeanRecoveryS, r.Adaptive.MeanRecoveryS)
	if r.AdvantageX > 0 {
		fmt.Fprintf(w, "\nadaptive advantage: %.2fx goodput\n", r.AdvantageX)
	} else if r.AdvantageX < 0 {
		fmt.Fprintf(w, "\nadaptive advantage: blind delivered nothing\n")
	}
}
