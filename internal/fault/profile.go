package fault

import (
	"fmt"
	"sort"
	"strings"
)

// Profile is a named composition of injectors — a chaos scenario. Nil
// injectors are simply off, so profiles compose à la carte.
type Profile struct {
	Name        string
	Description string

	Impulse    *ImpulseNoise
	NoiseFloor *NoiseSteps
	Fading     *Fading
	Brownout   *Brownouts
	Drift      *ClockDrift
	Clipping   *Saturation
	Truncation *Truncation
	// DeadNodes is how many nodes (lowest addresses first) die
	// permanently partway through the run.
	DeadNodes int
}

// profiles is the registry of named chaos scenarios.
var profiles = map[string]Profile{
	"calm": {
		Name:        "calm",
		Description: "no faults — a control run",
	},
	"shrimp": {
		Name: "shrimp",
		Description: "clustered impulsive noise episodes (snapping-shrimp choruses), " +
			"per-node clock drift, long supercap brownouts and one permanent node " +
			"death — the default chaos profile",
		Impulse: &ImpulseNoise{
			EpisodeEveryS: 5,
			EpisodeDurS:   4,
			RatePerS:      6,
			BurstDurS:     0.08,
			AmpPa:         40,
		},
		Drift:     &ClockDrift{MaxPPM: 900},
		Brownout:  &Brownouts{EveryS: 40, RecoverS: 25},
		DeadNodes: 1,
	},
	"storm": {
		Name: "storm",
		Description: "wideband noise-floor steps, deep attenuation fades and " +
			"hydrophone clipping — surface weather over a shallow deployment",
		NoiseFloor: &NoiseSteps{StepEveryS: 12, StepDurS: 6, MaxScale: 4},
		Fading:     &Fading{FadeEveryS: 15, FadeDurS: 4, MinGain: 0},
		Clipping:   &Saturation{EveryS: 40, DurS: 3, ClipPa: 2},
	},
	"brownout": {
		Name: "brownout",
		Description: "aggressive supercap brownouts and one permanently dead node — " +
			"the battery-free power-loss stress",
		Brownout:  &Brownouts{EveryS: 25, RecoverS: 10},
		DeadNodes: 1,
	},
	"restart": {
		Name: "restart",
		Description: "frequent short reboot cycles: nodes drop mid-exchange and " +
			"rejoin after a brief recharge, with frames truncated by the power " +
			"cut — the crash-recovery stress (no node stays dead)",
		Brownout:   &Brownouts{EveryS: 20, RecoverS: 8},
		Truncation: &Truncation{EveryS: 20, DurS: 4},
	},
	"drift": {
		Name: "drift",
		Description: "node clock drift plus frame truncation — timing pathology " +
			"that punishes long frames",
		Drift:      &ClockDrift{MaxPPM: 900},
		Truncation: &Truncation{EveryS: 30, DurS: 5},
	},
	"abyss": {
		Name: "abyss",
		Description: "everything at once: shrimp choruses, noise steps, fades, " +
			"brownouts, drift, clipping, truncation and a dead node",
		Impulse: &ImpulseNoise{
			EpisodeEveryS: 8,
			EpisodeDurS:   2.5,
			RatePerS:      4,
			BurstDurS:     0.08,
			AmpPa:         40,
		},
		NoiseFloor: &NoiseSteps{StepEveryS: 20, StepDurS: 6, MaxScale: 3},
		Fading:     &Fading{FadeEveryS: 25, FadeDurS: 3, MinGain: 0},
		Brownout:   &Brownouts{EveryS: 60, RecoverS: 10},
		Drift:      &ClockDrift{MaxPPM: 400},
		Clipping:   &Saturation{EveryS: 60, DurS: 2, ClipPa: 2},
		Truncation: &Truncation{EveryS: 45, DurS: 3},
		DeadNodes:  1,
	},
}

// ByName returns a registered profile.
func ByName(name string) (Profile, error) {
	p, ok := profiles[strings.ToLower(strings.TrimSpace(name))]
	if !ok {
		return Profile{}, fmt.Errorf("fault: unknown profile %q (have: %s)",
			name, strings.Join(Names(), ", "))
	}
	return p, nil
}

// Names lists the registered profiles alphabetically.
func Names() []string {
	out := make([]string, 0, len(profiles))
	for n := range profiles {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
