package fault

import (
	"fmt"
	"math"

	"pab/internal/frame"
	"pab/internal/mac"
)

// OperatingPoint is one rung of the link-adaptation ladder: a downlink
// PWM symbol unit and an uplink payload budget. Robust rungs use a
// slower PWM unit (more energy per downlink symbol) and a smaller
// payload (less exposure of the weak backscatter uplink to impulses and
// drift); the uplink bitrate itself is fixed by the piezo resonance.
type OperatingPoint struct {
	// PayloadBytes is the uplink payload budget per reply.
	PayloadBytes int
	// PWMUnitS is the downlink PWM symbol unit in seconds.
	PWMUnitS float64
}

// DefaultLadder returns the standard operating points, index 0 = most
// robust, last = fastest.
func DefaultLadder() []OperatingPoint {
	return []OperatingPoint{
		{PayloadBytes: 4, PWMUnitS: 0.004},
		{PayloadBytes: 8, PWMUnitS: 0.003},
		{PayloadBytes: 16, PWMUnitS: 0.002},
		{PayloadBytes: 32, PWMUnitS: 0.0015},
		{PayloadBytes: 64, PWMUnitS: 0.001},
	}
}

// LinkSimConfig tunes the statistical link simulator.
type LinkSimConfig struct {
	// Ladder is the operating-point ladder (default DefaultLadder).
	Ladder []OperatingPoint
	// StartLevel is the initial rung for every node (default the
	// fastest, i.e. len(Ladder)-1).
	StartLevel int
	// UplinkBitrateBps is the fixed backscatter bitrate (default 500,
	// the sim's nominal piezo link rate).
	UplinkBitrateBps float64
	// SNR0 is the nominal per-bit uplink SNR (linear) with no faults
	// active (default 12 — essentially error-free).
	SNR0 float64
	// TurnaroundS is the downlink→uplink switch time (default 0.02).
	TurnaroundS float64
	// Adaptive enables the RateControl ladder; when false Downshift and
	// Upshift refuse, pinning every node at StartLevel (the blind
	// fixed-rate strategy).
	Adaptive bool
}

// DefaultLinkSimConfig returns the defaults above with the given
// adaptivity.
func DefaultLinkSimConfig(adaptive bool) LinkSimConfig {
	ladder := DefaultLadder()
	return LinkSimConfig{
		Ladder:           ladder,
		StartLevel:       len(ladder) - 1,
		UplinkBitrateBps: 500,
		SNR0:             12,
		TurnaroundS:      0.02,
		Adaptive:         adaptive,
	}
}

// LinkSim is a statistical per-exchange link simulator driven entirely
// by an Engine's fault timelines: it skips waveform synthesis and
// instead draws each exchange's outcome from the engine clock, the
// operating point and the faults active in the exchange's window. It is
// what makes whole-network chaos runs cheap enough to sweep.
type LinkSim struct {
	eng   *Engine
	cfg   LinkSimConfig
	nodes map[byte]*nodeTransport
}

// NewLinkSim builds transports for the given nodes on top of eng.
func NewLinkSim(eng *Engine, nodes []byte, cfg LinkSimConfig) (*LinkSim, error) {
	if eng == nil {
		return nil, fmt.Errorf("fault: nil engine")
	}
	if len(cfg.Ladder) == 0 {
		cfg.Ladder = DefaultLadder()
	}
	for i, op := range cfg.Ladder {
		if op.PayloadBytes <= 0 || op.PayloadBytes > frame.MaxPayload || op.PWMUnitS <= 0 {
			return nil, fmt.Errorf("fault: bad operating point %d: %+v", i, op)
		}
	}
	if cfg.StartLevel < 0 || cfg.StartLevel >= len(cfg.Ladder) {
		return nil, fmt.Errorf("fault: start level %d outside ladder [0, %d)", cfg.StartLevel, len(cfg.Ladder))
	}
	if cfg.UplinkBitrateBps <= 0 {
		cfg.UplinkBitrateBps = 500
	}
	if cfg.SNR0 <= 0 {
		cfg.SNR0 = 12
	}
	if cfg.TurnaroundS < 0 {
		cfg.TurnaroundS = 0.02
	}
	ls := &LinkSim{eng: eng, cfg: cfg, nodes: make(map[byte]*nodeTransport, len(nodes))}
	for _, addr := range nodes {
		ls.nodes[addr] = &nodeTransport{ls: ls, addr: addr, level: cfg.StartLevel}
	}
	return ls, nil
}

// Transport returns the node's transport (nil for unknown addresses).
// The returned value also implements mac.RateControl when the simulator
// is adaptive.
func (ls *LinkSim) Transport(addr byte) mac.Transport {
	if n, ok := ls.nodes[addr]; ok {
		return n
	}
	return nil
}

// Transports returns every node transport keyed by address, ready for
// mac.NewNetwork or mac.NewSession.
func (ls *LinkSim) Transports() map[byte]mac.Transport {
	out := make(map[byte]mac.Transport, len(ls.nodes))
	for addr, n := range ls.nodes {
		out[addr] = n
	}
	return out
}

// Level returns a node's current ladder rung (-1 for unknown nodes).
func (ls *LinkSim) Level(addr byte) int {
	if n, ok := ls.nodes[addr]; ok {
		return n.level
	}
	return -1
}

// fastestUnit returns the shortest PWM unit on the ladder (the
// reference for downlink burst vulnerability).
func (ls *LinkSim) fastestUnit() float64 {
	u := ls.cfg.Ladder[0].PWMUnitS
	for _, op := range ls.cfg.Ladder[1:] {
		if op.PWMUnitS < u {
			u = op.PWMUnitS
		}
	}
	return u
}

// nodeTransport is one node's view of the simulated link. It implements
// mac.Transport and mac.RateControl.
type nodeTransport struct {
	ls    *LinkSim
	addr  byte
	level int
	seq   byte
}

// syncThreshold is the per-bit SNR below which the reader cannot even
// detect the uplink preamble (failure reads as no-sync, not CRC).
const syncThreshold = 0.5

// Exchange simulates one interrogation cycle at the node's current
// operating point, advancing the engine clock by the cycle's airtime.
// Outcomes map onto the mac failure classes: an unheard query or
// undetectable reply yields no reply and zero SNR (no-sync); a detected
// but corrupted reply yields no reply with positive SNR (CRC fail).
func (n *nodeTransport) Exchange(q frame.Query) (mac.Exchange, error) {
	e := n.ls.eng
	op := n.ls.cfg.Ladder[n.level]
	t0 := e.Now()

	// Downlink: ~10 PWM units of preamble plus the query bits at an
	// average 1.5 units per PWM-encoded bit.
	dlDur := (10 + float64(frame.QueryBitLength)*1.5) * op.PWMUnitS
	// Uplink: 8 preamble bits plus the frame at the fixed backscatter
	// rate.
	ulBits := 8 + frame.DataFrameBitLength(op.PayloadBytes)
	ulDur := float64(ulBits) / n.ls.cfg.UplinkBitrateBps
	cycle := dlDur + n.ls.cfg.TurnaroundS + ulDur
	// The reader listens out the full reply window whether or not a
	// reply comes, so the cycle cost is paid on every outcome.
	defer e.Advance(cycle)
	ulStart := t0 + dlDur + n.ls.cfg.TurnaroundS
	ulEnd := ulStart + ulDur
	ex := mac.Exchange{AirtimeSeconds: cycle}

	// An unpowered node never hears the query.
	if e.NodeOff(q.Dest, t0+dlDur/2) {
		return ex, nil
	}
	// Impulse bursts during the downlink can break the node's PWM
	// decode; a slower symbol unit buys proportional immunity.
	pSurvive := 1.0
	for range e.BurstsIn(t0, t0+dlDur) {
		pKill := 0.3 * n.ls.fastestUnit() / op.PWMUnitS
		if pKill > 1 {
			pKill = 1
		}
		pSurvive *= 1 - pKill
	}
	if e.Rand().Float64() > pSurvive {
		return ex, nil // query lost: nothing backscattered
	}

	// Uplink per-bit SNR: nominal, attenuated by the fade gain (squared:
	// backscatter traverses the faded path) and the noise-floor step.
	gain := e.UplinkGain(ulStart)
	scale := e.NoiseScale(ulStart)
	snrBit := n.ls.cfg.SNR0 * gain * gain / (scale * scale)
	if _, clipping := e.ClipLevel(ulStart); clipping {
		snrBit *= 0.2 // saturation folds distortion into the band
	}
	if snrBit < syncThreshold {
		return ex, nil // preamble undetectable: no-sync
	}
	ex.SNRLinear = snrBit

	clean := true
	// Thermal/ambient bit errors over the whole frame.
	pb := 0.5 * math.Erfc(math.Sqrt(snrBit))
	if e.Rand().Float64() > math.Pow(1-pb, float64(ulBits)) {
		clean = false
	}
	// Each impulse burst overlapping the reply corrupts it with
	// probability ½ — shorter frames dodge bursts entirely.
	for range e.BurstsIn(ulStart, ulEnd) {
		if e.Rand().Float64() < 0.5 {
			clean = false
		}
	}
	// A brownout mid-reply truncates the frame.
	if e.BrownoutDuring(q.Dest, ulStart, ulEnd) {
		clean = false
	}
	// Clock drift slews bit timing across the frame; past a quarter bit
	// of accumulated slip the FM0 decode falls apart. Long frames slip
	// first.
	if slip := math.Abs(e.ClockDriftPPM(q.Dest)) * 1e-6 * float64(ulBits); slip > 0.25 {
		clean = false
	}
	// An active truncation window cuts the frame tail.
	if _, truncated := e.TruncationAt(ulStart); truncated {
		clean = false
	}
	if !clean {
		return ex, nil // preamble locked, CRC rejects the body
	}

	payload := make([]byte, op.PayloadBytes)
	for i := range payload {
		payload[i] = q.Dest + n.seq + byte(i)
	}
	ex.Reply = &frame.DataFrame{Source: q.Dest, Seq: n.seq, Payload: payload}
	n.seq++
	return ex, nil
}

// Downshift moves toward the robust end of the ladder (mac.RateControl).
func (n *nodeTransport) Downshift() bool {
	if !n.ls.cfg.Adaptive || n.level == 0 {
		return false
	}
	n.level--
	return true
}

// Upshift moves toward the fast end of the ladder (mac.RateControl).
func (n *nodeTransport) Upshift() bool {
	if !n.ls.cfg.Adaptive || n.level == len(n.ls.cfg.Ladder)-1 {
		return false
	}
	n.level++
	return true
}

// Level is the current rung, 0 = most robust (mac.RateControl).
func (n *nodeTransport) Level() int { return n.level }
