package fault

import (
	"reflect"
	"strings"
	"testing"
)

// Two runs of the same (profile, seed, config) must produce
// byte-identical reports — the bit-reproducibility guarantee the whole
// fault layer is built around.
func TestScenarioReproducible(t *testing.T) {
	cfg := DefaultScenarioConfig()
	a, err := RunScenario("shrimp", 7, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunScenario("shrimp", 7, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint != b.Fingerprint {
		t.Errorf("fingerprints differ: %016x vs %016x", a.Fingerprint, b.Fingerprint)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("reports differ:\n%+v\n%+v", a, b)
	}
}

func TestScenarioSeedsDiffer(t *testing.T) {
	cfg := DefaultScenarioConfig()
	cfg.DurationS = 60
	a, err := RunScenario("shrimp", 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunScenario("shrimp", 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint == b.Fingerprint {
		t.Error("different seeds produced identical fingerprints")
	}
}

// The ISSUE acceptance criterion: on the default impulsive-noise
// profile, the adaptive Session must at least double the blind Poller's
// goodput. This matches the README quick start (pabsim -chaos shrimp
// -seed 7).
func TestAdaptiveBeatsBlindOnShrimp(t *testing.T) {
	r, err := RunScenario("shrimp", 7, DefaultScenarioConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.Blind.GoodputBps <= 0 {
		t.Fatalf("blind delivered nothing; the profile is too harsh for a fair comparison: %+v", r.Blind)
	}
	if r.AdvantageX < 2 {
		t.Errorf("adaptive advantage %.2fx < 2x (blind %.1f bps, adaptive %.1f bps)",
			r.AdvantageX, r.Blind.GoodputBps, r.Adaptive.GoodputBps)
	}
	// The resilience machinery must actually have engaged.
	if r.Adaptive.Downshifts == 0 {
		t.Error("adaptive run never downshifted")
	}
	if r.Adaptive.Quarantines == 0 {
		t.Error("adaptive run never quarantined the dead node")
	}
}

// A calm run is the control: with no faults the two strategies poll the
// same ladder rung, so adaptation must cost (almost) nothing.
func TestCalmParity(t *testing.T) {
	cfg := DefaultScenarioConfig()
	cfg.DurationS = 60
	r, err := RunScenario("calm", 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Blind.Failures != 0 || r.Adaptive.Failures != 0 {
		t.Errorf("failures on a calm run: blind %d, adaptive %d", r.Blind.Failures, r.Adaptive.Failures)
	}
	if r.AdvantageX < 0.9 || r.AdvantageX > 1.1 {
		t.Errorf("calm advantage %.2fx, want ~1x", r.AdvantageX)
	}
}

func TestScenarioUnknownProfile(t *testing.T) {
	if _, err := RunScenario("kraken", 1, DefaultScenarioConfig()); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

func TestReportWriteText(t *testing.T) {
	cfg := DefaultScenarioConfig()
	cfg.DurationS = 30
	r, err := RunScenario("shrimp", 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	r.WriteText(&sb)
	out := sb.String()
	for _, want := range []string{"chaos profile", "fingerprint", "goodput (bps)", "blind", "adaptive"} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteText output missing %q:\n%s", want, out)
		}
	}
}
