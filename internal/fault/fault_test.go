package fault

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

// sampleTimeline probes every hook at a fixed time grid so two engines
// can be compared value-for-value.
func sampleTimeline(e *Engine, nodes []byte, horizonS float64) []float64 {
	var out []float64
	for t := 0.0; t < horizonS; t += 0.25 {
		out = append(out, e.NoiseScale(t), e.UplinkGain(t))
		if v, ok := e.ClipLevel(t); ok {
			out = append(out, v)
		}
		if v, ok := e.TruncationAt(t); ok {
			out = append(out, v)
		}
		for _, b := range e.BurstsIn(t, t+0.25) {
			out = append(out, b.StartS, b.DurS, b.AmpPa)
		}
		for _, addr := range nodes {
			if e.NodeOff(addr, t) {
				out = append(out, float64(addr))
			}
		}
	}
	for _, addr := range nodes {
		out = append(out, e.ClockDriftPPM(addr))
	}
	return out
}

func TestEngineTimelinesDeterministic(t *testing.T) {
	nodes := []byte{1, 2, 3, 4}
	for _, name := range Names() {
		p, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		a, err := NewEngine(p, 42, 60, nodes)
		if err != nil {
			t.Fatalf("NewEngine: %v", err)
		}
		b, err := NewEngine(p, 42, 60, nodes)
		if err != nil {
			t.Fatalf("NewEngine: %v", err)
		}
		if !reflect.DeepEqual(sampleTimeline(a, nodes, 60), sampleTimeline(b, nodes, 60)) {
			t.Errorf("profile %q: same seed produced different timelines", name)
		}
	}
}

func TestEngineSeedsDiffer(t *testing.T) {
	nodes := []byte{1, 2}
	p, _ := ByName("shrimp")
	a, _ := NewEngine(p, 1, 60, nodes)
	b, _ := NewEngine(p, 2, 60, nodes)
	if reflect.DeepEqual(sampleTimeline(a, nodes, 60), sampleTimeline(b, nodes, 60)) {
		t.Error("different seeds produced identical timelines")
	}
}

// Adding an injector must not perturb the schedules of the others —
// each draws from its own sub-stream.
func TestEngineSubStreamIsolation(t *testing.T) {
	base := Profile{Impulse: &ImpulseNoise{
		EpisodeEveryS: 5, EpisodeDurS: 2, RatePerS: 4, BurstDurS: 0.05, AmpPa: 30,
	}}
	more := base
	more.NoiseFloor = &NoiseSteps{StepEveryS: 10, StepDurS: 3, MaxScale: 3}
	more.Brownout = &Brownouts{EveryS: 20, RecoverS: 5}

	a, _ := NewEngine(base, 9, 120, []byte{1})
	b, _ := NewEngine(more, 9, 120, []byte{1})
	ba := a.BurstsIn(0, 120)
	bb := b.BurstsIn(0, 120)
	if !reflect.DeepEqual(append([]Burst(nil), ba...), append([]Burst(nil), bb...)) {
		t.Error("adding injectors perturbed the impulse schedule")
	}
}

func TestNodeDeathAndBrownout(t *testing.T) {
	p := Profile{Brownout: &Brownouts{EveryS: 20, RecoverS: 5}, DeadNodes: 1}
	e, err := NewEngine(p, 3, 100, []byte{2, 1, 3})
	if err != nil {
		t.Fatal(err)
	}
	// The lowest address dies; death lands in (0.05, 0.35) of the horizon.
	d, ok := e.deadFrom[1]
	if !ok {
		t.Fatal("node 1 not scheduled to die")
	}
	if d < 5 || d > 35 {
		t.Errorf("death time %g outside first third of a 100 s run", d)
	}
	if e.NodeOff(1, d-0.001) && !e.NodeOff(1, d-0.001) {
		t.Error("node flapping before death")
	}
	if !e.NodeOff(1, d) || !e.NodeOff(1, 99) {
		t.Error("dead node reported powered")
	}
	if _, ok := e.deadFrom[2]; ok {
		t.Error("node 2 should outlive the run")
	}
	// Brownout windows hit every node; over 100 s with ~20 s spacing at
	// least one window must exist.
	if len(e.brownouts[2]) == 0 {
		t.Error("no brownout windows scheduled for node 2")
	}
	for _, w := range e.brownouts[2] {
		if !e.NodeOff(2, (w.start+w.end)/2) {
			t.Errorf("node 2 powered inside brownout window [%g, %g)", w.start, w.end)
		}
	}
}

func TestBrownoutDuring(t *testing.T) {
	p := Profile{Brownout: &Brownouts{EveryS: 20, RecoverS: 5}}
	e, _ := NewEngine(p, 3, 100, []byte{1})
	ws := e.brownouts[1]
	if len(ws) == 0 {
		t.Fatal("no brownout windows")
	}
	w := ws[0]
	if !e.BrownoutDuring(1, w.start-1, w.start+0.1) {
		t.Error("overlap with window start not detected")
	}
	if e.BrownoutDuring(1, w.end+0.01, w.end+0.02) && len(ws) == 1 {
		t.Error("phantom brownout after the only window")
	}
}

func TestClockMonotonic(t *testing.T) {
	e, _ := NewEngine(Profile{}, 1, 10, nil)
	e.Advance(1.5)
	e.Advance(-3)
	e.Sleep(0.5)
	if got := e.Now(); got != 2 {
		t.Errorf("Now() = %g, want 2 (negative advance must be ignored)", got)
	}
}

func TestDriftBounded(t *testing.T) {
	p := Profile{Drift: &ClockDrift{MaxPPM: 900}}
	e, _ := NewEngine(p, 11, 10, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	anyNonZero := false
	for addr := byte(1); addr <= 8; addr++ {
		ppm := e.ClockDriftPPM(addr)
		if math.Abs(ppm) > 900 {
			t.Errorf("node %d drift %g ppm exceeds MaxPPM", addr, ppm)
		}
		if ppm != 0 {
			anyNonZero = true
		}
	}
	if !anyNonZero {
		t.Error("no node drew any drift")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"shrimp", " SHRIMP ", "Calm"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	_, err := ByName("kraken")
	if err == nil {
		t.Fatal("unknown profile accepted")
	}
	if !strings.Contains(err.Error(), "shrimp") {
		t.Errorf("error should list known profiles, got: %v", err)
	}
}

func TestCountsFixedOrder(t *testing.T) {
	p, _ := ByName("abyss")
	e, _ := NewEngine(p, 5, 60, []byte{1, 2})
	sampleTimeline(e, []byte{1, 2}, 60)
	counts := e.Counts()
	if len(counts) != len(classes) {
		t.Fatalf("Counts() returned %d classes, want %d", len(counts), len(classes))
	}
	for i, c := range counts {
		if c.Class != classes[i] {
			t.Errorf("Counts()[%d] = %q, want %q", i, c.Class, classes[i])
		}
	}
}

// TestRestartProfileRebootsAndRejoins: the restart profile's whole
// point is that outages are temporary — every node that drops comes
// back, nothing stays dead, and the power cuts truncate frames.
func TestRestartProfileRebootsAndRejoins(t *testing.T) {
	p, err := ByName("restart")
	if err != nil {
		t.Fatal(err)
	}
	if p.DeadNodes != 0 {
		t.Fatalf("restart profile kills %d nodes permanently, want 0", p.DeadNodes)
	}
	const horizon = 300.0
	nodes := []byte{1, 2, 3}
	e, err := NewEngine(p, 7, horizon, nodes)
	if err != nil {
		t.Fatal(err)
	}
	outages, rejoins := 0, 0
	for _, addr := range nodes {
		off := false
		for ts := 0.0; ts < horizon; ts += 0.1 {
			now := e.NodeOff(addr, ts)
			if now && !off {
				outages++
			}
			if !now && off {
				rejoins++ // back on after an outage: the reboot completed
			}
			off = now
		}
	}
	if outages == 0 {
		t.Error("no node ever dropped; the restart profile injected nothing")
	}
	// Every outage except possibly one per node straddling the horizon
	// must end in a rejoin — nodes reboot, they don't die.
	if rejoins < outages-len(nodes) || rejoins == 0 {
		t.Errorf("%d outages but only %d rejoins — outages must be temporary", outages, rejoins)
	}
	truncs := 0
	for ts := 0.0; ts < horizon; ts += 0.1 {
		if frac, ok := e.TruncationAt(ts); ok {
			if frac <= 0 || frac >= 1 {
				t.Fatalf("truncation keeps fraction %g, want (0, 1)", frac)
			}
			truncs++
		}
	}
	if truncs == 0 {
		t.Error("no truncation window ever active")
	}
}
