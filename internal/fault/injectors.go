package fault

import (
	"math/rand"
	"sort"
)

// ImpulseNoise models snapping-shrimp-like impulsive interference: the
// clicks arrive in episodes (shrimp beds fire in choruses), each episode
// holding a Poisson train of short broadband bursts. Clustering is what
// makes blind instant retries so costly — every retry inside an episode
// dies like the one before it — and what exponential backoff exploits.
type ImpulseNoise struct {
	// EpisodeEveryS is the mean gap between episode starts.
	EpisodeEveryS float64
	// EpisodeDurS is the mean episode duration.
	EpisodeDurS float64
	// RatePerS is the burst arrival rate inside an episode.
	RatePerS float64
	// BurstDurS is the mean single-burst duration.
	BurstDurS float64
	// AmpPa is the burst amplitude at the hydrophone.
	AmpPa float64
}

// schedule precomputes the burst train over the horizon.
func (n *ImpulseNoise) schedule(rng *rand.Rand, horizonS float64) []Burst {
	var out []Burst
	if n.EpisodeEveryS <= 0 || n.EpisodeDurS <= 0 || n.RatePerS <= 0 {
		return out
	}
	t := rng.ExpFloat64() * n.EpisodeEveryS / 2 // first episode arrives early-ish
	for t < horizonS {
		epEnd := t + n.EpisodeDurS*(0.5+rng.Float64())
		if epEnd > horizonS {
			epEnd = horizonS
		}
		// Poisson burst train inside the episode.
		bt := t
		for {
			bt += rng.ExpFloat64() / n.RatePerS
			if bt >= epEnd {
				break
			}
			dur := n.BurstDurS * (0.5 + rng.Float64())
			out = append(out, Burst{StartS: bt, DurS: dur, AmpPa: n.AmpPa})
		}
		t = epEnd + rng.ExpFloat64()*n.EpisodeEveryS
	}
	sort.Slice(out, func(a, b int) bool { return out[a].StartS < out[b].StartS })
	return out
}

// NoiseSteps models wideband noise-floor steps — a passing vessel, rain
// on the surface, a pump switching on: the floor jumps by a factor for
// a while, then settles back.
type NoiseSteps struct {
	// StepEveryS is the mean gap between steps.
	StepEveryS float64
	// StepDurS is the mean elevated-floor duration.
	StepDurS float64
	// MaxScale bounds the noise multiplier; each step draws uniformly
	// from [1.5, MaxScale].
	MaxScale float64
}

func (n *NoiseSteps) schedule(rng *rand.Rand, horizonS float64) []window {
	var out []window
	if n.StepEveryS <= 0 || n.StepDurS <= 0 {
		return out
	}
	maxScale := n.MaxScale
	if maxScale < 1.5 {
		maxScale = 1.5
	}
	t := rng.ExpFloat64() * n.StepEveryS
	for t < horizonS {
		dur := n.StepDurS * (0.5 + rng.Float64())
		scale := 1.5 + (maxScale-1.5)*rng.Float64()
		out = append(out, window{start: t, end: t + dur, value: scale})
		t += dur + rng.ExpFloat64()*n.StepEveryS
	}
	return out
}

// Fading models channel dropouts and attenuation fades: surface motion
// and mobility swing the multipath sum through destructive nulls, so the
// uplink gain collapses for stretches (paper §8's open-water challenge).
type Fading struct {
	// FadeEveryS is the mean gap between fades.
	FadeEveryS float64
	// FadeDurS is the mean fade duration.
	FadeDurS float64
	// MinGain is the deepest attenuation multiplier (0 = full dropout);
	// each fade draws uniformly from [MinGain, 0.5].
	MinGain float64
}

func (f *Fading) schedule(rng *rand.Rand, horizonS float64) []window {
	var out []window
	if f.FadeEveryS <= 0 || f.FadeDurS <= 0 {
		return out
	}
	t := rng.ExpFloat64() * f.FadeEveryS
	for t < horizonS {
		dur := f.FadeDurS * (0.5 + rng.Float64())
		gain := f.MinGain + (0.5-f.MinGain)*rng.Float64()
		if gain < 0 {
			gain = 0
		}
		out = append(out, window{start: t, end: t + dur, value: gain})
		t += dur + rng.ExpFloat64()*f.FadeEveryS
	}
	return out
}

// Brownouts models supercap exhaustion on battery-free nodes: the node
// goes dark mid-protocol and needs RecoverS of recharge before it can
// answer again — the paper's nodes "lose power mid-protocol" reality.
type Brownouts struct {
	// EveryS is the mean gap between brownouts per node.
	EveryS float64
	// RecoverS is the mean off-time until the supercap recharges.
	RecoverS float64
}

func (b *Brownouts) schedule(rng *rand.Rand, horizonS float64) []window {
	var out []window
	if b.EveryS <= 0 || b.RecoverS <= 0 {
		return out
	}
	t := rng.ExpFloat64() * b.EveryS
	for t < horizonS {
		dur := b.RecoverS * (0.5 + rng.Float64())
		out = append(out, window{start: t, end: t + dur, value: 1})
		t += dur + rng.ExpFloat64()*b.EveryS
	}
	return out
}

// ClockDrift models per-node crystal offset: each node draws a constant
// ppm error, which slews bit timing over a frame — long frames slip past
// the receiver's timing tolerance first.
type ClockDrift struct {
	// MaxPPM bounds the drift magnitude; each node draws uniformly from
	// [-MaxPPM, MaxPPM].
	MaxPPM float64
}

func (c *ClockDrift) draw(rng *rand.Rand) float64 {
	return (2*rng.Float64() - 1) * c.MaxPPM
}

// Saturation models hydrophone front-end clipping: during a window the
// recorder saturates at ClipPa, folding intermodulation into the band.
type Saturation struct {
	// EveryS is the mean gap between clipping windows.
	EveryS float64
	// DurS is the mean window duration.
	DurS float64
	// ClipPa is the saturation level.
	ClipPa float64
}

func (s *Saturation) schedule(rng *rand.Rand, horizonS float64) []window {
	var out []window
	if s.EveryS <= 0 || s.DurS <= 0 || s.ClipPa <= 0 {
		return out
	}
	t := rng.ExpFloat64() * s.EveryS
	for t < horizonS {
		dur := s.DurS * (0.5 + rng.Float64())
		out = append(out, window{start: t, end: t + dur, value: s.ClipPa})
		t += dur + rng.ExpFloat64()*s.EveryS
	}
	return out
}

// Truncation models frames cut off mid-air — the tail lost to a switch
// glitch or an interrupted backscatter schedule. A frame that starts
// inside a truncation window keeps only a fraction of its bits.
type Truncation struct {
	// EveryS is the mean gap between truncation windows.
	EveryS float64
	// DurS is the mean window duration.
	DurS float64
}

func (tr *Truncation) schedule(rng *rand.Rand, horizonS float64) []window {
	var out []window
	if tr.EveryS <= 0 || tr.DurS <= 0 {
		return out
	}
	t := rng.ExpFloat64() * tr.EveryS
	for t < horizonS {
		dur := tr.DurS * (0.5 + rng.Float64())
		frac := 0.2 + 0.6*rng.Float64() // keep 20–80% of the frame
		out = append(out, window{start: t, end: t + dur, value: frac})
		t += dur + rng.ExpFloat64()*tr.EveryS
	}
	return out
}
