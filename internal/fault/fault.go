// Package fault is a deterministic, seedable fault-injection engine for
// the PAB reproduction: the chaos layer the paper's §8 deployment
// challenges call for. Real underwater channels are dominated by
// impulsive (snapping-shrimp-like) noise, fading and battery-free nodes
// that lose power mid-protocol; this package turns those into
// composable, scriptable injectors — impulsive noise bursts, wideband
// noise-floor steps, channel dropouts and attenuation fades, node
// supercap brownouts mid-frame, node clock drift, hydrophone
// saturation/clipping, and frame truncation — so failures become
// reproducible instead of anecdotal.
//
// Determinism is the design center: every injector precomputes its
// entire timeline from the seed at engine construction, so all query
// hooks are pure functions of (time, node address). Two engines built
// from the same profile, seed and node set expose bit-identical fault
// timelines regardless of how or in what order the system under test
// queries them — which is what makes an adaptive and a blind MAC
// strategy comparable "on the same seed".
package fault

import (
	"fmt"
	"math/rand"
	"sort"

	"pab/internal/telemetry"
)

// Burst is one impulsive-noise event (a snapping-shrimp click train or
// similar broadband transient).
type Burst struct {
	// StartS / DurS bound the burst on the engine clock, seconds.
	StartS, DurS float64
	// AmpPa is the burst pressure amplitude at the hydrophone.
	AmpPa float64
}

// End returns the burst end time.
func (b Burst) End() float64 { return b.StartS + b.DurS }

// window is a half-open activity interval with a payload value.
type window struct {
	start, end float64
	value      float64
}

// Class names for telemetry and reporting.
const (
	ClassImpulse    = "impulse"
	ClassNoiseFloor = "noise_floor"
	ClassFade       = "fade"
	ClassBrownout   = "brownout"
	ClassDrift      = "clock_drift"
	ClassClipping   = "clipping"
	ClassTruncation = "truncation"
	ClassNodeDeath  = "node_death"
)

// classes lists every fault class in reporting order.
var classes = []string{
	ClassImpulse, ClassNoiseFloor, ClassFade, ClassBrownout,
	ClassDrift, ClassClipping, ClassTruncation, ClassNodeDeath,
}

// Engine owns the fault timelines and the simulation clock. It
// implements the mac.Clock contract (Now/Sleep) so a Session backing
// off genuinely waits out a noise episode in simulated time.
type Engine struct {
	profile  Profile
	seed     int64
	horizonS float64
	now      float64

	bursts     []Burst           // sorted by StartS
	noiseSteps []window          // noise-floor scale ≥ 1
	fades      []window          // uplink gain ≤ 1
	clips      []window          // clipping level (Pa)
	truncs     []window          // value = fraction of the frame kept
	brownouts  map[byte][]window // per-node off windows
	driftPPM   map[byte]float64  // per-node constant clock offset
	deadFrom   map[byte]float64  // per-node permanent death time

	rng    *rand.Rand // exchange-level draws for the link simulator
	counts map[string]int64
}

// NewEngine builds the fault timelines for the given profile, seed,
// horizon (seconds of simulated time the schedules must cover) and node
// population. The same (profile, seed, horizon, nodes) always yields
// identical timelines.
func NewEngine(p Profile, seed int64, horizonS float64, nodes []byte) (*Engine, error) {
	if horizonS <= 0 {
		return nil, fmt.Errorf("fault: horizon must be positive, got %g", horizonS)
	}
	e := &Engine{
		profile:   p,
		seed:      seed,
		horizonS:  horizonS,
		brownouts: make(map[byte][]window),
		driftPPM:  make(map[byte]float64),
		deadFrom:  make(map[byte]float64),
		rng:       rand.New(rand.NewSource(seed ^ 0x5eed1e55)),
		counts:    make(map[string]int64),
	}
	// Each injector draws from its own sub-stream so adding or removing
	// one injector never perturbs the others' schedules.
	sub := func(tag int64) *rand.Rand {
		return rand.New(rand.NewSource(seed*1000003 + tag))
	}
	if p.Impulse != nil {
		e.bursts = p.Impulse.schedule(sub(1), horizonS)
	}
	if p.NoiseFloor != nil {
		e.noiseSteps = p.NoiseFloor.schedule(sub(2), horizonS)
	}
	if p.Fading != nil {
		e.fades = p.Fading.schedule(sub(3), horizonS)
	}
	if p.Clipping != nil {
		e.clips = p.Clipping.schedule(sub(4), horizonS)
	}
	if p.Truncation != nil {
		e.truncs = p.Truncation.schedule(sub(5), horizonS)
	}
	// Per-node schedules use a per-address sub-stream: node sets can
	// grow without reshuffling existing nodes' fates.
	for _, addr := range nodes {
		if p.Brownout != nil {
			e.brownouts[addr] = p.Brownout.schedule(sub(100+int64(addr)), horizonS)
		}
		if p.Drift != nil {
			e.driftPPM[addr] = p.Drift.draw(sub(200 + int64(addr)))
		}
	}
	// Node death: the first DeadNodes addresses (sorted) die at a
	// profile-scheduled time.
	if p.DeadNodes > 0 && len(nodes) > 0 {
		sorted := append([]byte(nil), nodes...)
		sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
		r := sub(6)
		n := p.DeadNodes
		if n > len(sorted) {
			n = len(sorted)
		}
		for i := 0; i < n; i++ {
			// Die somewhere in the first third of the run so the network
			// must live with the loss for most of it.
			e.deadFrom[sorted[i]] = (0.05 + 0.3*r.Float64()) * horizonS
		}
	}
	return e, nil
}

// Profile returns the engine's profile.
func (e *Engine) Profile() Profile { return e.profile }

// Seed returns the engine's seed.
func (e *Engine) Seed() int64 { return e.seed }

// Now returns the current simulated time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Sleep advances simulated time (mac.Clock contract).
func (e *Engine) Sleep(seconds float64) { e.Advance(seconds) }

// Advance moves the simulated clock forward; negative deltas are
// ignored (time is monotonic).
func (e *Engine) Advance(seconds float64) {
	if seconds > 0 {
		e.now += seconds
	}
}

// Rand returns the engine's exchange-level random stream, used by the
// link simulator for per-exchange outcome draws. It is separate from
// the schedule streams, so consuming it never perturbs fault timelines.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// ---------------------------------------------------------------------------
// Query hooks — pure functions of (time, address)
// ---------------------------------------------------------------------------

// valueAt returns the value of the window covering t (ok=false when
// none does). Windows are sorted and non-overlapping.
func valueAt(ws []window, t float64) (float64, bool) {
	i := sort.Search(len(ws), func(i int) bool { return ws[i].end > t })
	if i < len(ws) && ws[i].start <= t {
		return ws[i].value, true
	}
	return 0, false
}

// overlaps reports whether any window intersects [t0, t1).
func overlaps(ws []window, t0, t1 float64) bool {
	i := sort.Search(len(ws), func(i int) bool { return ws[i].end > t0 })
	return i < len(ws) && ws[i].start < t1
}

// NoiseScale returns the wideband noise-floor multiplier at time t
// (1 = nominal).
func (e *Engine) NoiseScale(t float64) float64 {
	if v, ok := valueAt(e.noiseSteps, t); ok {
		e.note(ClassNoiseFloor)
		return v
	}
	return 1
}

// UplinkGain returns the channel attenuation multiplier at time t
// (1 = nominal, 0 = complete dropout).
func (e *Engine) UplinkGain(t float64) float64 {
	if v, ok := valueAt(e.fades, t); ok {
		e.note(ClassFade)
		return v
	}
	return 1
}

// ClipLevel returns the hydrophone saturation level (Pa) at time t;
// ok=false means no clipping is active.
func (e *Engine) ClipLevel(t float64) (float64, bool) {
	if v, ok := valueAt(e.clips, t); ok {
		e.note(ClassClipping)
		return v, true
	}
	return 0, false
}

// BurstsIn returns the impulse bursts intersecting [t0, t1), clipped to
// nothing (the slice aliases the schedule; do not mutate).
func (e *Engine) BurstsIn(t0, t1 float64) []Burst {
	lo := sort.Search(len(e.bursts), func(i int) bool { return e.bursts[i].End() > t0 })
	hi := lo
	for hi < len(e.bursts) && e.bursts[hi].StartS < t1 {
		hi++
	}
	if hi > lo {
		e.note(ClassImpulse)
	}
	return e.bursts[lo:hi]
}

// NodeOff reports whether the node is unpowered at time t: permanently
// dead, or inside a brownout window.
func (e *Engine) NodeOff(addr byte, t float64) bool {
	if d, ok := e.deadFrom[addr]; ok && t >= d {
		e.note(ClassNodeDeath)
		return true
	}
	if _, ok := valueAt(e.brownouts[addr], t); ok {
		e.note(ClassBrownout)
		return true
	}
	return false
}

// BrownoutDuring reports whether the node loses power anywhere in
// [t0, t1) — the mid-frame brownout case that truncates an uplink.
func (e *Engine) BrownoutDuring(addr byte, t0, t1 float64) bool {
	if d, ok := e.deadFrom[addr]; ok && d < t1 {
		e.note(ClassNodeDeath)
		return true
	}
	if overlaps(e.brownouts[addr], t0, t1) {
		e.note(ClassBrownout)
		return true
	}
	return false
}

// ClockDriftPPM returns the node's constant clock offset in parts per
// million (0 when the drift injector is off).
func (e *Engine) ClockDriftPPM(addr byte) float64 {
	ppm := e.driftPPM[addr]
	if ppm != 0 {
		e.note(ClassDrift)
	}
	return ppm
}

// TruncationAt returns the fraction of a frame kept when a truncation
// window covers t (ok=false when none does).
func (e *Engine) TruncationAt(t float64) (float64, bool) {
	if v, ok := valueAt(e.truncs, t); ok {
		e.note(ClassTruncation)
		return v, true
	}
	return 0, false
}

// classMetrics maps every fault class to its registered injection
// counter, so note never has to compute a metric name at runtime.
var classMetrics = map[string]telemetry.Name{
	ClassImpulse:    telemetry.MFaultImpulseInjected,
	ClassNoiseFloor: telemetry.MFaultNoiseFloorInjected,
	ClassFade:       telemetry.MFaultFadeInjected,
	ClassBrownout:   telemetry.MFaultBrownoutInjected,
	ClassDrift:      telemetry.MFaultClockDriftInjected,
	ClassClipping:   telemetry.MFaultClippingInjected,
	ClassTruncation: telemetry.MFaultTruncationInjected,
	ClassNodeDeath:  telemetry.MFaultNodeDeathInjected,
}

// note counts a hook firing, both internally (deterministic report) and
// in the process telemetry so injected faults are distinguishable from
// organic failures.
func (e *Engine) note(class string) {
	e.counts[class]++
	telemetry.Inc(classMetrics[class])
}

// ClassCount is one fault class's injection count.
type ClassCount struct {
	Class string `json:"class"`
	Count int64  `json:"count"`
}

// Counts returns the per-class hook-firing counts in fixed class order
// (deterministic across runs).
func (e *Engine) Counts() []ClassCount {
	out := make([]ClassCount, 0, len(classes))
	for _, c := range classes {
		out = append(out, ClassCount{Class: c, Count: e.counts[c]})
	}
	return out
}
