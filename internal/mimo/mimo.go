// Package mimo implements the collision-decoding receiver of paper
// §3.3.2: concurrent backscatter transmissions collide on *both* downlink
// frequencies (backscatter is frequency-agnostic), giving the hydrophone
// two equations in two unknowns —
//
//	y(f1) = h1(f1)·x1 + h2(f1)·x2
//	y(f2) = h1(f2)·x1 + h2(f2)·x2
//
// — which it solves by channel estimation and zero-forcing projection,
// exactly like 2×2 MIMO but exploiting frequency diversity instead of
// spatial diversity.
package mimo

import (
	"fmt"
	"math/cmplx"
)

// Matrix2 is a complex 2×2 channel matrix [[A, B], [C, D]]:
// row = receive channel (frequency), column = transmit stream (node).
type Matrix2 struct {
	A, B complex128
	C, D complex128
}

// Det returns the determinant.
func (m Matrix2) Det() complex128 { return m.A*m.D - m.B*m.C }

// Invert returns the inverse, or an error for singular matrices.
func (m Matrix2) Invert() (Matrix2, error) {
	det := m.Det()
	if cmplx.Abs(det) < 1e-18 {
		return Matrix2{}, fmt.Errorf("mimo: channel matrix singular (det %v)", det)
	}
	inv := 1 / det
	return Matrix2{A: m.D * inv, B: -m.B * inv, C: -m.C * inv, D: m.A * inv}, nil
}

// ConditionNumber returns the 2-norm condition number (σmax/σmin) via
// the singular values of the 2×2 matrix. Recto-piezo frequency diversity
// keeps this small (the paper's footnote 7: the decoding matrix is
// "better conditioned").
func (m Matrix2) ConditionNumber() float64 {
	// Singular values from the eigenvalues of MᴴM.
	a2 := cmplx.Abs(m.A) * cmplx.Abs(m.A)
	b2 := cmplx.Abs(m.B) * cmplx.Abs(m.B)
	c2 := cmplx.Abs(m.C) * cmplx.Abs(m.C)
	d2 := cmplx.Abs(m.D) * cmplx.Abs(m.D)
	// MᴴM = [[a2+c2, x],[conj(x), b2+d2]] with x = conj(A)B + conj(C)D.
	x := cmplx.Conj(m.A)*m.B + cmplx.Conj(m.C)*m.D
	tr := a2 + c2 + b2 + d2
	det := (a2+c2)*(b2+d2) - cmplx.Abs(x)*cmplx.Abs(x)
	disc := tr*tr/4 - det
	if disc < 0 {
		disc = 0
	}
	root := cmplxSqrtReal(disc)
	l1 := tr/2 + root
	l2 := tr/2 - root
	if l2 <= 0 {
		return cmplxInf()
	}
	return cmplxSqrtReal(l1) / cmplxSqrtReal(l2)
}

func cmplxSqrtReal(x float64) float64 { return real(cmplx.Sqrt(complex(x, 0))) }
func cmplxInf() float64               { return 1e308 }

// EstimateGain least-squares fits y ≈ h·ref + c over the overlapping
// prefix and returns h (the covariance slope). The intercept absorbs the
// strong constant term the direct downlink carrier leaves in the
// downconverted stream, which would otherwise bias the estimate. ref is
// a known real training waveform (e.g. a node's FM0 preamble levels).
func EstimateGain(y []complex128, ref []float64) complex128 {
	n := len(y)
	if len(ref) < n {
		n = len(ref)
	}
	if n == 0 {
		return 0
	}
	var sumY complex128
	var sumR float64
	for i := 0; i < n; i++ {
		sumY += y[i]
		sumR += ref[i]
	}
	meanY := sumY / complex(float64(n), 0)
	meanR := sumR / float64(n)
	var num complex128
	var den float64
	for i := 0; i < n; i++ {
		r := ref[i] - meanR
		num += (y[i] - meanY) * complex(r, 0)
		den += r * r
	}
	if den == 0 {
		return 0
	}
	return num / complex(den, 0)
}

// EstimateChannel builds the 2×2 channel matrix from staggered training:
// during node k's training window only node k modulates, so each receive
// channel's gain to that node is a clean least-squares fit.
//
// y1, y2 are the two downconverted receive channels; ref1, ref2 the
// nodes' known training waveforms; win1, win2 the [start,end) sample
// windows in which each node trained alone.
func EstimateChannel(y1, y2 []complex128, ref1, ref2 []float64, win1, win2 [2]int) (Matrix2, error) {
	if err := checkWindow(win1, len(y1)); err != nil {
		return Matrix2{}, fmt.Errorf("mimo: window 1: %w", err)
	}
	if err := checkWindow(win2, len(y1)); err != nil {
		return Matrix2{}, fmt.Errorf("mimo: window 2: %w", err)
	}
	return Matrix2{
		A: EstimateGain(y1[win1[0]:win1[1]], ref1),
		B: EstimateGain(y1[win2[0]:win2[1]], ref2),
		C: EstimateGain(y2[win1[0]:win1[1]], ref1),
		D: EstimateGain(y2[win2[0]:win2[1]], ref2),
	}, nil
}

func checkWindow(w [2]int, n int) error {
	if w[0] < 0 || w[1] > n || w[0] >= w[1] {
		return fmt.Errorf("bad window [%d,%d) for length %d", w[0], w[1], n)
	}
	return nil
}

// ZeroForce inverts the channel and recovers the two streams:
// x̂ = H⁻¹·y per sample (the paper decodes "by zero-forcing through
// projecting on the orthogonal of the unwanted channel vector").
func ZeroForce(y1, y2 []complex128, h Matrix2) (x1, x2 []complex128, err error) {
	inv, err := h.Invert()
	if err != nil {
		return nil, nil, err
	}
	n := len(y1)
	if len(y2) < n {
		n = len(y2)
	}
	x1 = make([]complex128, n)
	x2 = make([]complex128, n)
	for i := 0; i < n; i++ {
		x1[i] = inv.A*y1[i] + inv.B*y2[i]
		x2[i] = inv.C*y1[i] + inv.D*y2[i]
	}
	return x1, x2, nil
}

// SINR least-squares fits y ≈ h·ref + c and returns the linear
// signal-to-(interference+noise) ratio |h|²·P(ref)/P(residual) — the
// metric Fig 10 reports before and after projection.
func SINR(y []complex128, ref []float64) float64 {
	n := len(y)
	if len(ref) < n {
		n = len(ref)
	}
	if n == 0 {
		return 0
	}
	// Fit with intercept: y ≈ h·ref + c.
	var sumY, sumYR complex128
	var sumR, sumRR float64
	for i := 0; i < n; i++ {
		sumY += y[i]
		sumYR += y[i] * complex(ref[i], 0)
		sumR += ref[i]
		sumRR += ref[i] * ref[i]
	}
	nf := float64(n)
	den := nf*sumRR - sumR*sumR
	if den == 0 {
		return 0
	}
	h := (complex(nf, 0)*sumYR - complex(sumR, 0)*sumY) / complex(den, 0)
	c := (sumY - h*complex(sumR, 0)) / complex(nf, 0)
	var resid float64
	var refVar float64
	refMean := sumR / nf
	for i := 0; i < n; i++ {
		d := y[i] - (h*complex(ref[i], 0) + c)
		resid += real(d)*real(d) + imag(d)*imag(d)
		rv := ref[i] - refMean
		refVar += rv * rv
	}
	if resid == 0 {
		return 1e12
	}
	hp := cmplx.Abs(h)
	return hp * hp * refVar / resid
}

// SINRBlocked is SINR computed on per-decision statistics: y and ref are
// first averaged over consecutive blocks of `block` samples (one FM0
// half-bit), then fitted. Receive-filter smear and intra-block
// correlated disturbance are thereby weighted as the decoder weights
// them, matching how the single-link SNR of §6.1a is measured.
func SINRBlocked(y []complex128, ref []float64, block int) float64 {
	if block <= 1 {
		return SINR(y, ref)
	}
	n := len(y)
	if len(ref) < n {
		n = len(ref)
	}
	nb := n / block
	if nb < 4 {
		return SINR(y, ref)
	}
	ym := make([]complex128, nb)
	rm := make([]float64, nb)
	for b := 0; b < nb; b++ {
		var sy complex128
		var sr float64
		for i := b * block; i < (b+1)*block; i++ {
			sy += y[i]
			sr += ref[i]
		}
		ym[b] = sy / complex(float64(block), 0)
		rm[b] = sr / float64(block)
	}
	return SINR(ym, rm)
}
