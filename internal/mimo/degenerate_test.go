package mimo

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// Degenerate-geometry coverage: when two nodes sit so that their
// channel vectors are parallel (e.g. symmetric placements in a
// reverberant tank), the 2×2 decoding matrix loses rank and the
// receiver must refuse rather than amplify noise unboundedly.

func TestRankOneGeometryIsSingular(t *testing.T) {
	// Column 2 is a scalar multiple of column 1: node 2's gains are a
	// scaled copy of node 1's on both frequencies. A power-of-two scale
	// keeps the determinant's cancellation exact in floating point.
	k := complex(2, 0)
	h := Matrix2{A: 1 + 2i, B: (1 + 2i) * k, C: -0.5 + 1i, D: (-0.5 + 1i) * k}
	if c := h.ConditionNumber(); c < 1e6 {
		t.Errorf("rank-1 condition number = %g, want huge", c)
	}
	if d := cmplx.Abs(h.Det()); d > 1e-15 {
		t.Fatalf("det = %g, want ~0 for a rank-1 geometry", d)
	}
	if _, err := h.Invert(); err == nil {
		t.Fatal("rank-1 matrix inverted without error")
	}
	if _, _, err := ZeroForce([]complex128{1}, []complex128{1}, h); err == nil {
		t.Fatal("ZeroForce accepted a rank-1 channel")
	}
}

func TestZeroMatrixIsSingular(t *testing.T) {
	var h Matrix2
	if _, err := h.Invert(); err == nil {
		t.Fatal("zero matrix inverted without error")
	}
	if c := h.ConditionNumber(); c < 1e6 {
		t.Errorf("zero matrix condition number = %g, want huge", c)
	}
}

func TestNearSingularConditioning(t *testing.T) {
	// Almost-parallel columns: conditioning must blow up smoothly, not
	// report a healthy channel.
	eps := 1e-9
	h := Matrix2{A: 1, B: 1, C: 1, D: 1 + complex(eps, 0)}
	if c := h.ConditionNumber(); c < 1e6 {
		t.Errorf("near-singular condition number = %g, want > 1e6", c)
	}
	// Still invertible in exact arithmetic — recovery must round-trip.
	inv, err := h.Invert()
	if err != nil {
		t.Fatalf("near-singular invert: %v", err)
	}
	// H·H⁻¹ ≈ I.
	id := Matrix2{
		A: h.A*inv.A + h.B*inv.C, B: h.A*inv.B + h.B*inv.D,
		C: h.C*inv.A + h.D*inv.C, D: h.C*inv.B + h.D*inv.D,
	}
	if cmplx.Abs(id.A-1) > 1e-4 || cmplx.Abs(id.D-1) > 1e-4 ||
		cmplx.Abs(id.B) > 1e-4 || cmplx.Abs(id.C) > 1e-4 {
		t.Errorf("H·H⁻¹ = %+v, want identity", id)
	}
}

// Single-element and empty arrays: every estimator must degrade to a
// defined value instead of panicking or dividing by zero.

func TestEstimateGainDegenerateInputs(t *testing.T) {
	if g := EstimateGain(nil, nil); g != 0 {
		t.Errorf("EstimateGain(nil, nil) = %v, want 0", g)
	}
	if g := EstimateGain([]complex128{1 + 1i}, []float64{}); g != 0 {
		t.Errorf("empty ref gain = %v, want 0", g)
	}
	// One sample: variance is zero, slope undefined → 0.
	if g := EstimateGain([]complex128{2 + 3i}, []float64{1}); g != 0 {
		t.Errorf("single-sample gain = %v, want 0", g)
	}
	// Constant reference: den == 0 → 0.
	if g := EstimateGain([]complex128{1, 2, 3}, []float64{5, 5, 5}); g != 0 {
		t.Errorf("constant-ref gain = %v, want 0", g)
	}
}

func TestSINRDegenerateInputs(t *testing.T) {
	if s := SINR(nil, nil); s != 0 {
		t.Errorf("SINR(nil, nil) = %g, want 0", s)
	}
	if s := SINR([]complex128{1}, []float64{1}); s != 0 {
		t.Errorf("single-sample SINR = %g, want 0", s)
	}
	if s := SINRBlocked(nil, nil, 4); s != 0 {
		t.Errorf("SINRBlocked(nil) = %g, want 0", s)
	}
	// Exact fit: residual 0 → the clamped ceiling, not +Inf/NaN.
	ref := []float64{1, -1, 1, -1}
	y := make([]complex128, len(ref))
	for i, r := range ref {
		y[i] = complex(2*r+0.5, 0)
	}
	s := SINR(y, ref)
	if math.IsInf(s, 0) || math.IsNaN(s) || s < 1e11 {
		t.Errorf("exact-fit SINR = %g, want the finite ceiling", s)
	}
}

func TestZeroForceDegenerateLengths(t *testing.T) {
	h := Matrix2{A: 1, B: 0.2i, C: -0.3, D: 1}
	x1, x2, err := ZeroForce(nil, nil, h)
	if err != nil || len(x1) != 0 || len(x2) != 0 {
		t.Fatalf("empty ZeroForce = %v/%v, %v", x1, x2, err)
	}
	// Mismatched lengths truncate to the shorter channel.
	x1, x2, err = ZeroForce([]complex128{1, 2, 3}, []complex128{1}, h)
	if err != nil || len(x1) != 1 || len(x2) != 1 {
		t.Fatalf("mismatched ZeroForce lengths = %d/%d, %v", len(x1), len(x2), err)
	}
}

func TestEstimateChannelRejectsBadWindows(t *testing.T) {
	y := make([]complex128, 8)
	ref := make([]float64, 4)
	cases := [][2]int{{-1, 4}, {0, 9}, {4, 4}, {5, 3}}
	for _, w := range cases {
		if _, err := EstimateChannel(y, y, ref, ref, w, [2]int{0, 4}); err == nil {
			t.Errorf("window %v accepted", w)
		}
		if _, err := EstimateChannel(y, y, ref, ref, [2]int{0, 4}, w); err == nil {
			t.Errorf("window %v accepted as second window", w)
		}
	}
}

// Determinism: the full estimate→invert→project pipeline over a seeded
// random channel is bit-reproducible — the property the chaos CI job
// relies on for every other layer.

func TestPipelineDeterministicUnderFixedSeed(t *testing.T) {
	runOnce := func(seed int64) (Matrix2, []complex128, float64) {
		rng := rand.New(rand.NewSource(seed))
		n := 256
		ref1 := make([]float64, n)
		ref2 := make([]float64, n)
		for i := 0; i < n; i++ {
			ref1[i] = float64(1 - 2*(rng.Intn(2)))
			ref2[i] = float64(1 - 2*(rng.Intn(2)))
		}
		h := Matrix2{
			A: complex(rng.NormFloat64(), rng.NormFloat64()),
			B: complex(rng.NormFloat64(), rng.NormFloat64()),
			C: complex(rng.NormFloat64(), rng.NormFloat64()),
			D: complex(rng.NormFloat64(), rng.NormFloat64()),
		}
		mix := func(a, b complex128) []complex128 {
			y := make([]complex128, 2*n)
			for i := 0; i < n; i++ {
				y[i] = a * complex(ref1[i], 0)
				y[n+i] = b * complex(ref2[i], 0)
			}
			for i := range y {
				y[i] += complex(rng.NormFloat64()*0.01, rng.NormFloat64()*0.01)
			}
			return y
		}
		y1 := mix(h.A, h.B)
		y2 := mix(h.C, h.D)
		est, err := EstimateChannel(y1, y2, ref1, ref2, [2]int{0, n}, [2]int{n, 2 * n})
		if err != nil {
			t.Fatal(err)
		}
		x1, _, err := ZeroForce(y1, y2, est)
		if err != nil {
			t.Fatal(err)
		}
		return est, x1, SINR(x1[:n], ref1)
	}
	h1, x1a, s1 := runOnce(42)
	h2, x1b, s2 := runOnce(42)
	if h1 != h2 {
		t.Errorf("channel estimates differ across identical seeds: %+v vs %+v", h1, h2)
	}
	if s1 != s2 {
		t.Errorf("SINR differs across identical seeds: %g vs %g", s1, s2)
	}
	for i := range x1a {
		if x1a[i] != x1b[i] {
			t.Fatalf("projected stream diverges at sample %d", i)
		}
	}
	// A different seed must actually change the run (the test would
	// otherwise pass vacuously on constants).
	_, _, s3 := runOnce(43)
	if s1 == s3 {
		t.Errorf("different seeds produced identical SINR %g", s1)
	}
}
