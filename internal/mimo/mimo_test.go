package mimo

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatrix2Invert(t *testing.T) {
	m := Matrix2{A: 1, B: 2, C: 3, D: 4}
	inv, err := m.Invert()
	if err != nil {
		t.Fatal(err)
	}
	// M·M⁻¹ = I.
	checks := []struct {
		got  complex128
		want complex128
	}{
		{m.A*inv.A + m.B*inv.C, 1},
		{m.A*inv.B + m.B*inv.D, 0},
		{m.C*inv.A + m.D*inv.C, 0},
		{m.C*inv.B + m.D*inv.D, 1},
	}
	for i, c := range checks {
		if cmplx.Abs(c.got-c.want) > 1e-12 {
			t.Errorf("identity check %d: %v", i, c.got)
		}
	}
}

func TestSingularMatrix(t *testing.T) {
	m := Matrix2{A: 1, B: 2, C: 2, D: 4}
	if _, err := m.Invert(); err == nil {
		t.Error("singular matrix should not invert")
	}
}

func TestConditionNumber(t *testing.T) {
	// Identity: perfectly conditioned.
	if c := (Matrix2{A: 1, D: 1}).ConditionNumber(); math.Abs(c-1) > 1e-9 {
		t.Errorf("identity condition %g, want 1", c)
	}
	// Diagonal [10, 1]: condition 10.
	if c := (Matrix2{A: 10, D: 1}).ConditionNumber(); math.Abs(c-10) > 1e-6 {
		t.Errorf("diag condition %g, want 10", c)
	}
	// Near-singular: enormous.
	if c := (Matrix2{A: 1, B: 1, C: 1, D: 1.0000001}).ConditionNumber(); c < 1e5 {
		t.Errorf("near-singular condition %g, want huge", c)
	}
}

func TestDiversityImprovesConditioning(t *testing.T) {
	// The recto-piezo claim (footnote 7): frequency-selective channels
	// (strong diagonal) are better conditioned than flat ones.
	diverse := Matrix2{A: 1, B: 0.2, C: 0.25, D: 0.8}
	flat := Matrix2{A: 1, B: 0.9, C: 0.95, D: 1}
	if diverse.ConditionNumber() >= flat.ConditionNumber() {
		t.Errorf("diverse %g should beat flat %g",
			diverse.ConditionNumber(), flat.ConditionNumber())
	}
}

func TestEstimateGain(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ref := make([]float64, 500)
	for i := range ref {
		ref[i] = float64(rng.Intn(2))*0.4 + 0.6 // two-level waveform
	}
	h := complex(0.8, -0.3)
	y := make([]complex128, len(ref))
	for i := range y {
		y[i] = h * complex(ref[i], 0)
	}
	if got := EstimateGain(y, ref); cmplx.Abs(got-h) > 1e-12 {
		t.Errorf("gain %v, want %v", got, h)
	}
	if EstimateGain(y, make([]float64, len(y))) != 0 {
		t.Error("zero reference should give zero gain")
	}
}

func TestEstimateGainNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ref := make([]float64, 4000)
	for i := range ref {
		ref[i] = float64(rng.Intn(2))
	}
	h := complex(-0.5, 0.7)
	y := make([]complex128, len(ref))
	for i := range y {
		n := complex(rng.NormFloat64(), rng.NormFloat64()) * 0.1
		y[i] = h*complex(ref[i], 0) + n
	}
	if got := EstimateGain(y, ref); cmplx.Abs(got-h) > 0.02 {
		t.Errorf("noisy gain %v, want %v", got, h)
	}
}

// synthCollision builds a two-node collision scenario and returns
// everything a receiver would have.
func synthCollision(rng *rand.Rand, h Matrix2, n int) (y1, y2 []complex128, x1, x2 []float64) {
	x1 = make([]float64, n)
	x2 = make([]float64, n)
	// Different bit periods so the streams are uncorrelated.
	for i := range x1 {
		x1[i] = float64((i / 40) % 2)
		x2[i] = float64((i/56)%2) * 0.9
	}
	y1 = make([]complex128, n)
	y2 = make([]complex128, n)
	for i := 0; i < n; i++ {
		s1 := complex(x1[i], 0)
		s2 := complex(x2[i], 0)
		noise1 := complex(rng.NormFloat64(), rng.NormFloat64()) * 0.02
		noise2 := complex(rng.NormFloat64(), rng.NormFloat64()) * 0.02
		y1[i] = h.A*s1 + h.B*s2 + noise1
		y2[i] = h.C*s1 + h.D*s2 + noise2
	}
	return
}

func TestZeroForceRecoversStreams(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	h := Matrix2{A: 1, B: complex(0.3, 0.1), C: complex(0.25, -0.2), D: 0.8}
	y1, y2, x1, x2 := synthCollision(rng, h, 8000)

	beforeSINR1 := SINR(y1, x1)
	beforeSINR2 := SINR(y2, x2)

	r1, r2, err := ZeroForce(y1, y2, h)
	if err != nil {
		t.Fatal(err)
	}
	afterSINR1 := SINR(r1, x1)
	afterSINR2 := SINR(r2, x2)

	// Zero-forcing must dramatically improve both streams (Fig 10).
	if afterSINR1 < 10*beforeSINR1 {
		t.Errorf("stream 1: before %g, after %g", beforeSINR1, afterSINR1)
	}
	if afterSINR2 < 10*beforeSINR2 {
		t.Errorf("stream 2: before %g, after %g", beforeSINR2, afterSINR2)
	}
}

func TestEstimateChannelFromTraining(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	h := Matrix2{A: complex(0.9, 0.1), B: complex(0.35, -0.05), C: complex(0.3, 0.2), D: complex(0.75, -0.1)}
	n := 6000
	// Node 1 trains alone in [0,1000), node 2 alone in [1000,2000).
	ref1 := make([]float64, 1000)
	ref2 := make([]float64, 1000)
	for i := range ref1 {
		ref1[i] = float64((i / 25) % 2)
		ref2[i] = float64((i / 31) % 2)
	}
	y1 := make([]complex128, n)
	y2 := make([]complex128, n)
	for i := 0; i < n; i++ {
		var s1, s2 complex128
		if i < 1000 {
			s1 = complex(ref1[i], 0)
		} else if i < 2000 {
			s2 = complex(ref2[i-1000], 0)
		} else {
			s1 = complex(float64((i/40)%2), 0)
			s2 = complex(float64((i/56)%2), 0)
		}
		noise := func() complex128 { return complex(rng.NormFloat64(), rng.NormFloat64()) * 0.01 }
		y1[i] = h.A*s1 + h.B*s2 + noise()
		y2[i] = h.C*s1 + h.D*s2 + noise()
	}
	got, err := EstimateChannel(y1, y2, ref1, ref2, [2]int{0, 1000}, [2]int{1000, 2000})
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range []struct{ got, want complex128 }{
		{got.A, h.A}, {got.B, h.B}, {got.C, h.C}, {got.D, h.D},
	} {
		if cmplx.Abs(pair.got-pair.want) > 0.01 {
			t.Errorf("estimated %v, want %v", pair.got, pair.want)
		}
	}
	// Bad windows error.
	if _, err := EstimateChannel(y1, y2, ref1, ref2, [2]int{-1, 5}, [2]int{0, 5}); err == nil {
		t.Error("negative window should error")
	}
	if _, err := EstimateChannel(y1, y2, ref1, ref2, [2]int{0, 5}, [2]int{5, 99999}); err == nil {
		t.Error("overlong window should error")
	}
}

func TestSINRProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ref := make([]float64, 2000)
	for i := range ref {
		ref[i] = float64((i / 50) % 2)
	}
	// Pure signal: enormous SINR.
	clean := make([]complex128, len(ref))
	for i := range clean {
		clean[i] = complex(0.7*ref[i]+0.2, 0)
	}
	if s := SINR(clean, ref); s < 1e6 {
		t.Errorf("clean SINR %g should be huge", s)
	}
	// Known noise level: SINR ≈ |h|²·var(ref)/σ².
	sigma := 0.1
	noisy := make([]complex128, len(ref))
	for i := range noisy {
		noisy[i] = complex(0.7*ref[i], 0) + complex(rng.NormFloat64(), rng.NormFloat64())*complex(sigma/math.Sqrt2, 0)
	}
	refVar := 0.25 * 0.49 // var of 0/0.7 levels = (0.35)²... checked below loosely
	_ = refVar
	got := SINR(noisy, ref)
	want := 0.49 * 0.25 / (sigma * sigma)
	if got < want/2 || got > want*2 {
		t.Errorf("SINR %g, want ~%g", got, want)
	}
	if SINR(nil, ref) != 0 {
		t.Error("empty SINR should be 0")
	}
}

func TestZeroForcePropertyRandomChannels(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := Matrix2{
			A: complex(0.5+rng.Float64(), rng.NormFloat64()*0.2),
			B: complex(rng.Float64()*0.4, rng.NormFloat64()*0.1),
			C: complex(rng.Float64()*0.4, rng.NormFloat64()*0.1),
			D: complex(0.5+rng.Float64(), rng.NormFloat64()*0.2),
		}
		y1, y2, x1, x2 := synthCollision(rng, h, 4000)
		r1, r2, err := ZeroForce(y1, y2, h)
		if err != nil {
			return true // singular random draw
		}
		return SINR(r1, x1) > SINR(y1, x1) && SINR(r2, x2) > SINR(y2, x2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSINRBlockedAveragesCorrelatedDisturbance(t *testing.T) {
	// A disturbance that alternates sign within each block cancels in
	// the block mean: the blocked SINR must exceed the per-sample SINR.
	rng := rand.New(rand.NewSource(11))
	block := 40
	n := 400 * block / 10
	ref := make([]float64, n)
	y := make([]complex128, n)
	for i := range ref {
		ref[i] = float64((i / block) % 2)
		disturb := 0.5
		if i%2 == 1 {
			disturb = -0.5
		}
		y[i] = complex(0.7*ref[i]+disturb, 0) + complex(rng.NormFloat64(), 0)*0.01
	}
	perSample := SINR(y, ref)
	blocked := SINRBlocked(y, ref, block)
	if blocked <= 10*perSample {
		t.Errorf("blocked %g should far exceed per-sample %g", blocked, perSample)
	}
}

func TestSINRBlockedFallsBack(t *testing.T) {
	ref := []float64{1, 0, 1, 0}
	y := []complex128{1, 0, 1, 0}
	// block ≤ 1 and too-few-blocks paths both fall back to SINR.
	if SINRBlocked(y, ref, 1) != SINR(y, ref) {
		t.Error("block ≤ 1 should fall back to SINR")
	}
	if SINRBlocked(y, ref, 3) != SINR(y, ref) {
		t.Error("fewer than 4 blocks should fall back to SINR")
	}
}
