// Package baseline implements the comparison systems the paper positions
// PAB against: conventional active acoustic modems, whose carrier
// generation consumes "multiple orders of magnitude more energy than
// backscatter communication" (§2), and batteryless harvest-then-beacon
// systems that bank harvested energy until they can emit a short acoustic
// beacon, capping their average throughput at "few to tens of bits per
// second" (§2).
package baseline

import (
	"fmt"
	"math"
)

// ActiveModem is a conventional underwater acoustic modem that generates
// its own carrier.
type ActiveModem struct {
	// TransmitPowerW is the electrical power while transmitting (the
	// paper cites "few hundred Watts" for low-power acoustic
	// transmitters, §3.2; compact research modems run tens of watts).
	TransmitPowerW float64
	// BitrateBps is the modem's link rate.
	BitrateBps float64
	// IdlePowerW is the listening draw.
	IdlePowerW float64
}

// WHOIClassModem returns a compact research modem operating point.
func WHOIClassModem() ActiveModem {
	return ActiveModem{TransmitPowerW: 50, BitrateBps: 5000, IdlePowerW: 0.2}
}

// EnergyPerBit returns joules per transmitted bit.
func (m ActiveModem) EnergyPerBit() float64 {
	if m.BitrateBps <= 0 {
		return math.Inf(1)
	}
	return m.TransmitPowerW / m.BitrateBps
}

// BatteryLifeHours returns how long a battery of the given capacity (J)
// lasts at a duty cycle (fraction of time transmitting).
func (m ActiveModem) BatteryLifeHours(batteryJ, dutyCycle float64) float64 {
	if batteryJ <= 0 {
		return 0
	}
	p := m.TransmitPowerW*dutyCycle + m.IdlePowerW*(1-dutyCycle)
	if p <= 0 {
		return math.Inf(1)
	}
	return batteryJ / p / 3600
}

// HarvestBeacon is a batteryless node that banks harvested energy and
// emits short active beacons when it has stored enough (e.g. the
// fish-movement harvester of §2's citation [40]).
type HarvestBeacon struct {
	// HarvestPowerW is the average harvested power.
	HarvestPowerW float64
	// BeaconEnergyJ is the cost of one beacon.
	BeaconEnergyJ float64
	// BitsPerBeacon is the payload of one beacon.
	BitsPerBeacon float64
}

// FishTagBeacon returns the operating point of an energy-harvesting
// acoustic fish tag: ~1 mW harvested, millijoule-scale beacons.
func FishTagBeacon() HarvestBeacon {
	return HarvestBeacon{HarvestPowerW: 1e-3, BeaconEnergyJ: 5e-3, BitsPerBeacon: 32}
}

// AverageThroughputBps returns the steady-state average bitrate: the
// node beacons whenever it has banked BeaconEnergyJ.
func (h HarvestBeacon) AverageThroughputBps() float64 {
	if h.BeaconEnergyJ <= 0 || h.HarvestPowerW <= 0 {
		return 0
	}
	interval := h.BeaconEnergyJ / h.HarvestPowerW // seconds between beacons
	return h.BitsPerBeacon / interval
}

// EnergyPerBit returns joules per delivered bit.
func (h HarvestBeacon) EnergyPerBit() float64 {
	if h.BitsPerBeacon <= 0 {
		return math.Inf(1)
	}
	return h.BeaconEnergyJ / h.BitsPerBeacon
}

// PABPoint is PAB's measured operating point for comparison.
type PABPoint struct {
	PowerW     float64 // backscattering draw (Fig 11: ≈500 µW)
	BitrateBps float64 // sustained uplink rate (Fig 8: up to 3 kbps)
}

// PaperPAB returns the headline PAB operating point.
func PaperPAB() PABPoint {
	return PABPoint{PowerW: 500e-6, BitrateBps: 3000}
}

// EnergyPerBit returns joules per backscattered bit.
func (p PABPoint) EnergyPerBit() float64 {
	if p.BitrateBps <= 0 {
		return math.Inf(1)
	}
	return p.PowerW / p.BitrateBps
}

// Row is one line of the comparison table.
type Row struct {
	System        string
	EnergyPerBitJ float64
	ThroughputBps float64
}

// Compare returns the comparison table for the three systems.
func Compare(pab PABPoint, modem ActiveModem, beacon HarvestBeacon) []Row {
	return []Row{
		{"pab-backscatter", pab.EnergyPerBit(), pab.BitrateBps},
		{"active-modem", modem.EnergyPerBit(), modem.BitrateBps},
		{"harvest-beacon", beacon.EnergyPerBit(), beacon.AverageThroughputBps()},
	}
}

// OrdersOfMagnitude returns log10(a/b), the headline "orders of
// magnitude" comparison.
func OrdersOfMagnitude(a, b float64) (float64, error) {
	if a <= 0 || b <= 0 {
		return 0, fmt.Errorf("baseline: ratios need positive values, got %g/%g", a, b)
	}
	return math.Log10(a / b), nil
}
