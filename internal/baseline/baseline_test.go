package baseline

import (
	"math"
	"testing"
)

func TestEnergyPerBitOrdering(t *testing.T) {
	pab := PaperPAB()
	modem := WHOIClassModem()
	beacon := FishTagBeacon()
	if !(pab.EnergyPerBit() < beacon.EnergyPerBit()) {
		t.Error("PAB should spend less energy per bit than harvest-beacon")
	}
	if !(beacon.EnergyPerBit() < modem.EnergyPerBit()) {
		t.Error("harvest-beacon should spend less per bit than an active modem")
	}
}

func TestPaperHeadlineClaims(t *testing.T) {
	// §2: backscatter decreases transmission energy by "multiple orders
	// of magnitude" vs carrier generation.
	oom, err := OrdersOfMagnitude(WHOIClassModem().EnergyPerBit(), PaperPAB().EnergyPerBit())
	if err != nil {
		t.Fatal(err)
	}
	if oom < 3 {
		t.Errorf("modem vs PAB energy/bit: %.1f orders of magnitude, want ≥ 3", oom)
	}
	// §2: PAB "boosts the network throughput by two to three orders of
	// magnitude" over harvest-then-beacon systems.
	oom, err = OrdersOfMagnitude(PaperPAB().BitrateBps, FishTagBeacon().AverageThroughputBps())
	if err != nil {
		t.Fatal(err)
	}
	if oom < 2 || oom > 4 {
		t.Errorf("PAB vs beacon throughput: %.1f orders of magnitude, want 2–4", oom)
	}
}

func TestHarvestBeaconThroughputFewBps(t *testing.T) {
	// The paper: existing batteryless systems manage "few to tens of
	// bits per second".
	bps := FishTagBeacon().AverageThroughputBps()
	if bps < 1 || bps > 50 {
		t.Errorf("beacon throughput %g bps, want few-to-tens", bps)
	}
}

func TestBatteryLife(t *testing.T) {
	m := WHOIClassModem()
	// A 100 Wh battery (360 kJ) at 10% duty: P = 5 + 0.18 = 5.18 W.
	h := m.BatteryLifeHours(360e3, 0.1)
	want := 360e3 / 5.18 / 3600
	if math.Abs(h-want) > 0.1 {
		t.Errorf("battery life %g h, want %g", h, want)
	}
	if m.BatteryLifeHours(0, 0.1) != 0 {
		t.Error("zero battery should be zero life")
	}
}

func TestDegenerateConfigs(t *testing.T) {
	if !math.IsInf(ActiveModem{}.EnergyPerBit(), 1) {
		t.Error("zero-bitrate modem energy/bit should be +Inf")
	}
	if (HarvestBeacon{}).AverageThroughputBps() != 0 {
		t.Error("zero-harvest beacon throughput should be 0")
	}
	if !math.IsInf((HarvestBeacon{BeaconEnergyJ: 1}).EnergyPerBit(), 1) {
		t.Error("zero-bits beacon energy/bit should be +Inf")
	}
	if _, err := OrdersOfMagnitude(0, 1); err == nil {
		t.Error("zero ratio should error")
	}
}

func TestCompareTable(t *testing.T) {
	rows := Compare(PaperPAB(), WHOIClassModem(), FishTagBeacon())
	if len(rows) != 3 {
		t.Fatalf("want 3 rows, got %d", len(rows))
	}
	if rows[0].System != "pab-backscatter" {
		t.Error("PAB should be first")
	}
	for _, r := range rows {
		if r.EnergyPerBitJ <= 0 || r.ThroughputBps <= 0 {
			t.Errorf("row %+v has non-positive values", r)
		}
	}
}
