package node

import (
	"math"
	"testing"

	"pab/internal/frame"
	"pab/internal/phy"
	"pab/internal/piezo"
	"pab/internal/rectifier"
	"pab/internal/sensors"
)

func testFrontEnd(t *testing.T, tunedHz float64) *RectoPiezo {
	t.Helper()
	tr, err := piezo.New(piezo.PaperCylinder())
	if err != nil {
		t.Fatal(err)
	}
	rp, err := NewRectoPiezo(tr, rectifier.Paper(), tunedHz)
	if err != nil {
		t.Fatal(err)
	}
	return rp
}

func testNode(t *testing.T, addr byte) *Node {
	t.Helper()
	n, err := New(Config{
		Addr:       addr,
		FrontEnds:  []*RectoPiezo{testFrontEnd(t, 15000), testFrontEnd(t, 18000)},
		MCU:        PaperMCU(),
		Cap:        rectifier.PaperSupercap(),
		LDO:        rectifier.PaperLDO(),
		BitrateBps: 1000,
		Env:        sensors.RoomTank(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

const rhoC = 1.482e6 // fresh water at 20 °C

func TestRectoPiezoTuning(t *testing.T) {
	rp15 := testFrontEnd(t, 15000)
	rp18 := testFrontEnd(t, 18000)
	// Each harvests best at its own tuned frequency (inductor loss costs
	// a few percent of a perfect match).
	if rp15.HarvestQuality(15000) < 0.9 {
		t.Errorf("15 kHz quality at 15 kHz: %g", rp15.HarvestQuality(15000))
	}
	if rp18.HarvestQuality(18000) < 0.9 {
		t.Errorf("18 kHz quality at 18 kHz: %g", rp18.HarvestQuality(18000))
	}
	// And the responses are complementary (Fig 3): each node rectifies
	// more at its own frequency than the other node does there.
	p := 2000.0 // Pa
	v15at15 := rp15.RectifiedVoltage(p, 15000, rhoC)
	v18at15 := rp18.RectifiedVoltage(p, 15000, rhoC)
	v15at18 := rp15.RectifiedVoltage(p, 18000, rhoC)
	v18at18 := rp18.RectifiedVoltage(p, 18000, rhoC)
	if v15at15 <= v18at15 {
		t.Errorf("at 15 kHz: own %g ≤ other %g", v15at15, v18at15)
	}
	if v18at18 <= v15at18 {
		t.Errorf("at 18 kHz: own %g ≤ other %g", v18at18, v15at18)
	}
}

func TestRectifiedVoltagePeaksAtTunedFrequency(t *testing.T) {
	rp := testFrontEnd(t, 15000)
	p := 2000.0
	peak := rp.RectifiedVoltage(p, 15000, rhoC)
	for _, f := range []float64{11000, 12000, 13000, 17500, 19000, 21000} {
		if v := rp.RectifiedVoltage(p, f, rhoC); v >= peak {
			t.Errorf("V(%g Hz) = %g should be below peak %g", f, v, peak)
		}
	}
}

func TestModulationDepthMaximalInBand(t *testing.T) {
	rp := testFrontEnd(t, 15000)
	in := rp.ModulationDepth(15000)
	out := rp.ModulationDepth(21000)
	if in <= out {
		t.Errorf("in-band depth %g should exceed out-of-band %g", in, out)
	}
	if in <= 0 || in > 1 {
		t.Errorf("depth %g out of range", in)
	}
}

func TestMCUPowerMatchesFig11(t *testing.T) {
	m := PaperMCU()
	if p := m.Power(Idle, 0); math.Abs(p-124e-6) > 1e-9 {
		t.Errorf("idle power %g, want 124 µW", p)
	}
	// Backscatter draw is ≈500 µW across the Fig 11 bitrates.
	for _, br := range []float64{100, 200, 400, 1000, 2000, 3000} {
		p := m.Power(Backscattering, br)
		if p < 450e-6 || p > 550e-6 {
			t.Errorf("backscatter power at %g bps: %g, want ~500 µW", br, p)
		}
	}
	// And grows (slightly) with bitrate.
	if m.Power(Backscattering, 3000) <= m.Power(Backscattering, 100) {
		t.Error("switching power should grow with bitrate")
	}
	if m.Power(Off, 0) != 0 {
		t.Error("off power should be 0")
	}
}

func TestAchievableBitrateQuantisation(t *testing.T) {
	m := PaperMCU()
	cases := []struct{ req, wantLo, wantHi float64 }{
		{100, 99, 101},
		{1000, 960, 1040},
		{2800, 2700, 2900},
		{5000, 4500, 5500},
	}
	for _, tc := range cases {
		got, err := m.AchievableBitrate(tc.req)
		if err != nil {
			t.Fatal(err)
		}
		if got < tc.wantLo || got > tc.wantHi {
			t.Errorf("AchievableBitrate(%g) = %g", tc.req, got)
		}
		div, _ := m.DividerFor(tc.req)
		if math.Abs(m.CrystalHz/float64(div)-got) > 1e-9 {
			t.Errorf("divider inconsistent for %g", tc.req)
		}
	}
	if _, err := m.AchievableBitrate(0); err == nil {
		t.Error("zero bitrate should error")
	}
	// Requests beyond the crystal clamp to the crystal rate.
	if got, _ := m.AchievableBitrate(1e6); got != m.CrystalHz {
		t.Errorf("overclocked request returned %g", got)
	}
}

func TestNodeColdStartAndBrownout(t *testing.T) {
	n := testNode(t, 0x01)
	if n.State() != Off {
		t.Fatal("node should start off")
	}
	// Strong downlink at the tuned frequency charges the cap past 2.5 V.
	steps := 0
	for n.State() == Off && steps < 200000 {
		n.HarvestStep(3000, 15000, rhoC, 1e-3)
		steps++
	}
	if n.State() != Idle {
		t.Fatalf("node failed to power on (cap %.2f V)", n.CapVoltage())
	}
	// Removing the downlink eventually browns the node out.
	for i := 0; i < 10_000_000 && n.State() != Off; i++ {
		n.HarvestStep(0, 15000, rhoC, 1e-2)
	}
	if n.State() != Off {
		t.Errorf("node should brown out without a downlink (cap %.2f V)", n.CapVoltage())
	}
}

func TestNodeNoPowerNoBoot(t *testing.T) {
	n := testNode(t, 0x01)
	// A weak downlink (too far / too quiet) never powers the node up —
	// the mechanism behind the Fig 9 range limit.
	for i := 0; i < 100000; i++ {
		n.HarvestStep(50, 15000, rhoC, 1e-3)
	}
	if n.State() != Off {
		t.Errorf("50 Pa should not boot the node (cap %.2f V)", n.CapVoltage())
	}
}

func powerOn(t *testing.T, n *Node) {
	t.Helper()
	for i := 0; i < 200000 && n.State() == Off; i++ {
		n.HarvestStep(3000, n.FrontEnd().TunedHz, rhoC, 1e-3)
	}
	if n.State() == Off {
		t.Fatal("node did not power on")
	}
}

func TestHandleQueryPing(t *testing.T) {
	n := testNode(t, 0x42)
	powerOn(t, n)
	bits, err := n.HandleQuery(frame.Query{Dest: 0x42, Command: frame.CmdPing})
	if err != nil {
		t.Fatal(err)
	}
	if len(bits) == 0 {
		t.Fatal("addressed ping should produce uplink bits")
	}
	// Bits begin with the preamble.
	for i, b := range phy.PreambleBits {
		if bits[i] != b {
			t.Fatalf("uplink bit %d = %d, want preamble %d", i, bits[i], b)
		}
	}
	// The rest parses as a CRC-clean data frame from 0x42.
	raw, err := frame.FromBits(bits[len(phy.PreambleBits):])
	if err != nil {
		t.Fatal(err)
	}
	df, err := frame.UnmarshalDataFrame(raw)
	if err != nil {
		t.Fatal(err)
	}
	if df.Source != 0x42 {
		t.Errorf("source %x, want 42", df.Source)
	}
}

func TestHandleQueryAddressing(t *testing.T) {
	n := testNode(t, 0x42)
	powerOn(t, n)
	// Someone else's query: silence, no error.
	bits, err := n.HandleQuery(frame.Query{Dest: 0x43, Command: frame.CmdPing})
	if err != nil || bits != nil {
		t.Errorf("foreign query: bits=%v err=%v, want nil/nil", bits, err)
	}
	// Broadcast: answered.
	bits, err = n.HandleQuery(frame.Query{Dest: frame.BroadcastAddr, Command: frame.CmdPing})
	if err != nil || bits == nil {
		t.Errorf("broadcast should be answered: %v", err)
	}
	// Unpowered node errors.
	cold := testNode(t, 0x42)
	if _, err := cold.HandleQuery(frame.Query{Dest: 0x42, Command: frame.CmdPing}); err == nil {
		t.Error("unpowered node should error")
	}
}

func TestHandleQuerySetBitrate(t *testing.T) {
	n := testNode(t, 0x01)
	powerOn(t, n)
	before := n.Bitrate()
	// Divider index 2 ⇒ 32768/32 = 1024 bps.
	if _, err := n.HandleQuery(frame.Query{Dest: 0x01, Command: frame.CmdSetBitrate, Param: 2}); err != nil {
		t.Fatal(err)
	}
	if math.Abs(n.Bitrate()-1024) > 1e-9 {
		t.Errorf("bitrate %g, want 1024 (was %g)", n.Bitrate(), before)
	}
	// Bad divider index.
	if _, err := n.HandleQuery(frame.Query{Dest: 0x01, Command: frame.CmdSetBitrate, Param: 99}); err == nil {
		t.Error("bad divider index should error")
	}
}

func TestHandleQuerySwitchResonance(t *testing.T) {
	n := testNode(t, 0x01)
	powerOn(t, n)
	if n.FrontEnd().TunedHz != 15000 {
		t.Fatal("should start on the 15 kHz circuit")
	}
	if _, err := n.HandleQuery(frame.Query{Dest: 0x01, Command: frame.CmdSwitchResonance, Param: 1}); err != nil {
		t.Fatal(err)
	}
	if n.FrontEnd().TunedHz != 18000 {
		t.Errorf("active circuit tuned to %g, want 18000", n.FrontEnd().TunedHz)
	}
	if _, err := n.HandleQuery(frame.Query{Dest: 0x01, Command: frame.CmdSwitchResonance, Param: 5}); err == nil {
		t.Error("out-of-range circuit index should error")
	}
}

func TestHandleQuerySensors(t *testing.T) {
	n := testNode(t, 0x07)
	powerOn(t, n)
	cases := []struct {
		id   frame.SensorID
		want float64
		tol  float64
	}{
		{frame.SensorPH, 7.0, 0.05},
		{frame.SensorTemperature, 22.0, 0.1},
		{frame.SensorPressure, 1013, 2},
	}
	for _, tc := range cases {
		bits, err := n.HandleQuery(frame.Query{Dest: 0x07, Command: frame.CmdReadSensor, Param: byte(tc.id)})
		if err != nil {
			t.Fatalf("%v: %v", tc.id, err)
		}
		raw, err := frame.FromBits(bits[len(phy.PreambleBits):])
		if err != nil {
			t.Fatal(err)
		}
		df, err := frame.UnmarshalDataFrame(raw)
		if err != nil {
			t.Fatal(err)
		}
		id, val, err := ParseSensorPayload(df.Payload)
		if err != nil {
			t.Fatal(err)
		}
		if id != tc.id {
			t.Errorf("sensor id %v, want %v", id, tc.id)
		}
		if math.Abs(val-tc.want) > tc.tol {
			t.Errorf("%v reading %g, want %g±%g", tc.id, val, tc.want, tc.tol)
		}
	}
	if _, err := n.HandleQuery(frame.Query{Dest: 0x07, Command: frame.CmdReadSensor, Param: 77}); err == nil {
		t.Error("unknown sensor should error")
	}
}

func TestParseSensorPayloadErrors(t *testing.T) {
	if _, _, err := ParseSensorPayload([]byte{1, 2}); err == nil {
		t.Error("short payload should error")
	}
	if _, _, err := ParseSensorPayload([]byte{99, 0, 0}); err == nil {
		t.Error("unknown id should error")
	}
}

func TestDecodeDownlink(t *testing.T) {
	n := testNode(t, 0x05)
	powerOn(t, n)
	q := frame.Query{Dest: 0x05, Command: frame.CmdReadSensor, Param: byte(frame.SensorPH)}
	bits := append(append([]phy.Bit{}, phy.PreambleBits...), frame.Bits(q.Marshal())...)
	pwm, _ := phy.NewPWM(48)
	env := pwm.Encode(bits)
	// Scale to a realistic received envelope with some noise floor.
	for i := range env {
		env[i] = env[i]*0.8 + 0.02
	}
	got, err := n.DecodeDownlink(env, 48)
	if err != nil {
		t.Fatal(err)
	}
	if got != q {
		t.Errorf("decoded %+v, want %+v", got, q)
	}
}

func TestDecodeDownlinkGarbage(t *testing.T) {
	n := testNode(t, 0x05)
	env := make([]float64, 5000)
	for i := range env {
		env[i] = float64(i%7) * 0.1
	}
	if _, err := n.DecodeDownlink(env, 48); err == nil {
		t.Error("garbage envelope should not decode")
	}
}

func TestStartBackscatterStates(t *testing.T) {
	n := testNode(t, 0x01)
	powerOn(t, n)
	bits := []phy.Bit{1, 0, 1, 1, 0}
	fs := 96000.0
	states, err := n.StartBackscatter(bits, fs)
	if err != nil {
		t.Fatal(err)
	}
	if n.State() != Backscattering {
		t.Error("node should be backscattering")
	}
	spb, _ := phy.SamplesPerBitFor(fs, n.Bitrate())
	if len(states) != len(bits)*spb {
		t.Errorf("schedule length %d, want %d", len(states), len(bits)*spb)
	}
	// Both states appear.
	var refl, abs int
	for _, s := range states {
		switch s {
		case piezo.Reflective:
			refl++
		case piezo.Absorptive:
			abs++
		}
	}
	if refl == 0 || abs == 0 {
		t.Error("schedule should toggle between states")
	}
	n.FinishBackscatter()
	if n.State() != Idle {
		t.Error("node should return to idle")
	}
	// Cold node cannot backscatter.
	cold := testNode(t, 0x02)
	if _, err := cold.StartBackscatter(bits, fs); err == nil {
		t.Error("cold node should error")
	}
}

func TestEnergyAccounting(t *testing.T) {
	n := testNode(t, 0x01)
	powerOn(t, n)
	n.HarvestStep(3000, 15000, rhoC, 1e-3)
	used := n.EnergyUsed()
	if used <= 0 {
		t.Error("powered node should consume energy once running")
	}
	// Idle draw over 1 s ≈ 124 µJ.
	for i := 0; i < 1000; i++ {
		n.HarvestStep(3000, 15000, rhoC, 1e-3)
	}
	delta := n.EnergyUsed() - used
	if math.Abs(delta-124e-6) > 10e-6 {
		t.Errorf("idle second consumed %g J, want ~124 µJ", delta)
	}
	if p := n.AveragePower(); p < 100e-6 || p > 200e-6 {
		t.Errorf("average power %g, want ~124 µW", p)
	}
}

func TestNodeValidation(t *testing.T) {
	fe := testFrontEnd(t, 15000)
	base := Config{
		Addr: 1, FrontEnds: []*RectoPiezo{fe}, MCU: PaperMCU(),
		Cap: rectifier.PaperSupercap(), LDO: rectifier.PaperLDO(),
		BitrateBps: 1000, Env: sensors.RoomTank(),
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"no front ends", func(c *Config) { c.FrontEnds = nil }},
		{"nil front end", func(c *Config) { c.FrontEnds = []*RectoPiezo{nil} }},
		{"bad active index", func(c *Config) { c.ActiveFrontEnd = 3 }},
		{"nil cap", func(c *Config) { c.Cap = nil }},
		{"zero bitrate", func(c *Config) { c.BitrateBps = 0 }},
	}
	for _, tc := range cases {
		cfg := base
		tc.mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestBeginFinishDecoding(t *testing.T) {
	n := testNode(t, 0x01)
	if n.BeginDecoding() {
		t.Error("cold node cannot decode")
	}
	powerOn(t, n)
	if !n.BeginDecoding() {
		t.Error("idle node should enter decoding")
	}
	if n.State() != Decoding {
		t.Error("state should be decoding")
	}
	n.FinishDecoding()
	if n.State() != Idle {
		t.Error("state should return to idle")
	}
}

func testBatteryNode(t *testing.T, batteryJ float64) *Node {
	t.Helper()
	n, err := New(Config{
		Addr:       0x01,
		FrontEnds:  []*RectoPiezo{testFrontEnd(t, 15000)},
		MCU:        PaperMCU(),
		Cap:        rectifier.PaperSupercap(),
		LDO:        rectifier.PaperLDO(),
		BitrateBps: 500,
		BatteryJ:   batteryJ,
		Env:        sensors.RoomTank(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestBatteryAssistedBootsWithoutCarrier(t *testing.T) {
	// The §1 hybrid: a battery-assisted node runs where the downlink is
	// too weak to harvest from — the deep-sea deployment case.
	n := testBatteryNode(t, 10) // 10 J ≈ years at idle
	n.HarvestStep(0, 15000, rhoC, 0.01)
	if n.State() == Off {
		t.Fatal("battery-assisted node should boot with no incident field")
	}
	// And it keeps running.
	for i := 0; i < 1000; i++ {
		n.HarvestStep(0, 15000, rhoC, 0.01)
	}
	if n.State() == Off {
		t.Error("battery node browned out with charge remaining")
	}
	if n.BatteryRemaining() >= 10 {
		t.Error("battery should have drained")
	}
}

func TestBatteryDrainsAtNodeBudgetNotTransmitterRates(t *testing.T) {
	// One hour at idle should cost ≈ 0.45 J (124 µW) — this is the whole
	// point of battery-assisted *backscatter*: communication costs µW.
	n := testBatteryNode(t, 10)
	for i := 0; i < 3600; i++ {
		n.HarvestStep(0, 15000, rhoC, 1.0)
	}
	used := 10 - n.BatteryRemaining()
	// Expect ~0.45 J plus the one-time capacitor top-ups.
	if used < 0.3 || used > 1.5 {
		t.Errorf("1 h idle used %g J, want ≈0.45", used)
	}
}

func TestBatteryExhaustionRevertsToHarvesting(t *testing.T) {
	n := testBatteryNode(t, 0.01) // tiny battery
	n.HarvestStep(0, 15000, rhoC, 0.01)
	if n.State() == Off {
		t.Fatal("should boot from battery")
	}
	for i := 0; i < 500000 && n.BatteryAssisted(); i++ {
		n.HarvestStep(0, 15000, rhoC, 0.1)
	}
	if n.BatteryAssisted() {
		t.Fatal("battery should exhaust")
	}
	// With no field and no battery, the node eventually browns out.
	for i := 0; i < 500000 && n.State() != Off; i++ {
		n.HarvestStep(0, 15000, rhoC, 0.1)
	}
	if n.State() != Off {
		t.Error("exhausted node should brown out")
	}
}

func TestBatteryStillHarvestsWhenFieldPresent(t *testing.T) {
	// With a strong field the battery should barely drain (harvest
	// covers the draw).
	n := testBatteryNode(t, 10)
	for i := 0; i < 10000; i++ {
		n.HarvestStep(3000, 15000, rhoC, 0.01)
	}
	used := 10 - n.BatteryRemaining()
	if used > 0.02 {
		t.Errorf("strong-field battery drain %g J, want ≈0", used)
	}
}

func TestNegativeBatteryRejected(t *testing.T) {
	_, err := New(Config{
		Addr:       1,
		FrontEnds:  []*RectoPiezo{testFrontEnd(t, 15000)},
		MCU:        PaperMCU(),
		Cap:        rectifier.PaperSupercap(),
		LDO:        rectifier.PaperLDO(),
		BitrateBps: 500,
		BatteryJ:   -1,
		Env:        sensors.RoomTank(),
	})
	if err == nil {
		t.Error("negative battery should error")
	}
}

func TestDecodeDownlinkTruncatedQuery(t *testing.T) {
	n := testNode(t, 0x05)
	powerOn(t, n)
	// A valid preamble followed by too few bits.
	bits := append([]phy.Bit{}, phy.PreambleBits...)
	bits = append(bits, 1, 0, 1)
	pwm, _ := phy.NewPWM(48)
	env := pwm.Encode(bits)
	if _, err := n.DecodeDownlink(env, 48); err == nil {
		t.Error("truncated query should error")
	}
	// Bad unit size.
	if _, err := n.DecodeDownlink(env, 1); err == nil {
		t.Error("invalid PWM unit should error")
	}
}

func TestStatusByteEncoding(t *testing.T) {
	cases := []struct {
		v    float64
		want byte
	}{
		{0, 0}, {2.5, 50}, {5.0, 100}, {-1, 0}, {99, 255},
	}
	for _, tc := range cases {
		if got := statusByte(tc.v); got != tc.want {
			t.Errorf("statusByte(%g) = %d, want %d", tc.v, got, tc.want)
		}
	}
}

func TestBitrateForDividerTable(t *testing.T) {
	m := PaperMCU()
	// Index i → 32768/(8·2^i).
	if br := bitrateForDivider(m, 0); math.Abs(br-4096) > 1e-9 {
		t.Errorf("index 0 → %g, want 4096", br)
	}
	if br := bitrateForDivider(m, 8); math.Abs(br-16) > 1e-9 {
		t.Errorf("index 8 → %g, want 16", br)
	}
	if bitrateForDivider(m, 9) != 0 {
		t.Error("index > 8 should be rejected")
	}
}

func TestFindBitPattern(t *testing.T) {
	bits := []phy.Bit{0, 0, 1, 0, 1, 1, 0}
	if i := findBitPattern(bits, []phy.Bit{1, 0, 1}); i != 2 {
		t.Errorf("pattern at %d, want 2", i)
	}
	if i := findBitPattern(bits, []phy.Bit{1, 1, 1}); i != -1 {
		t.Errorf("missing pattern returned %d", i)
	}
	if i := findBitPattern(bits, nil); i != -1 {
		t.Error("empty pattern should return -1")
	}
	if i := findBitPattern([]phy.Bit{1}, []phy.Bit{1, 0}); i != -1 {
		t.Error("pattern longer than input should return -1")
	}
}

func TestUnknownCommandRejected(t *testing.T) {
	n := testNode(t, 0x01)
	powerOn(t, n)
	if _, err := n.HandleQuery(frame.Query{Dest: 0x01, Command: frame.Command(0x7F)}); err == nil {
		t.Error("unknown command should error")
	}
}

func TestAveragePowerZeroBeforeRunning(t *testing.T) {
	n := testNode(t, 0x01)
	if n.AveragePower() != 0 {
		t.Error("cold node average power should be 0")
	}
}

func TestPHSensingDutyCycle(t *testing.T) {
	n := testNode(t, 0x01)
	powerOn(t, n)
	before := n.CapVoltage()
	bits, err := n.HandleQuery(frame.Query{Dest: 0x01, Command: frame.CmdReadSensor, Param: byte(frame.SensorPH)})
	if err != nil || bits == nil {
		t.Fatalf("healthy node should sense pH: %v", err)
	}
	if n.CapVoltage() >= before {
		t.Error("the duty-cycled AFE should cost capacitor energy")
	}
	// A node hovering just above brown-out must refuse the measurement
	// rather than kill itself mid-reply.
	marginal := testNode(t, 0x02)
	powerOn(t, marginal)
	marginal.cfg.Cap.SetVoltage(marginal.cfg.LDO.PowerOffV + 0.001)
	if _, err := marginal.HandleQuery(frame.Query{Dest: 0x02, Command: frame.CmdReadSensor, Param: byte(frame.SensorPH)}); err == nil {
		t.Error("marginal node should refuse the pH measurement")
	}
	// Digital sensors (I2C, powered from the MCU rail) still work.
	if _, err := marginal.HandleQuery(frame.Query{Dest: 0x02, Command: frame.CmdReadSensor, Param: byte(frame.SensorTemperature)}); err != nil {
		t.Errorf("temperature should still read: %v", err)
	}
}
