package node

import (
	"fmt"
	"math"

	"pab/internal/frame"
	"pab/internal/phy"
	"pab/internal/piezo"
	"pab/internal/rectifier"
	"pab/internal/sensors"
)

// Config describes a battery-free PAB node.
type Config struct {
	// Addr is the node's link-layer address.
	Addr byte
	// FrontEnds are the node's recto-piezo matching circuits. Multiple
	// entries realise the programmable-resonance extension of §3.3.2
	// ("incorporating multiple matching circuits onboard ... enabling
	// the micro-controller to select the recto-piezo").
	FrontEnds []*RectoPiezo
	// ActiveFrontEnd indexes the initially selected circuit.
	ActiveFrontEnd int
	// MCU is the microcontroller model.
	MCU MCU
	// Cap is the storage supercapacitor.
	Cap *rectifier.Supercap
	// LDO gates the digital domain.
	LDO rectifier.LDO
	// BitrateBps is the initial backscatter bitrate request; the clock
	// divider quantises it.
	BitrateBps float64
	// BatteryJ, when positive, makes the node battery-assisted (the
	// paper's §1 future-work hybrid: "battery-assisted backscatter
	// implementations ... would enable deep-sea deployments ... while
	// still inheriting PAB's benefits of ultra-low power backscatter").
	// The battery carries the digital domain whenever harvesting falls
	// short; communication remains pure backscatter, so the battery
	// drains only at the µW node budget, not at transmit-amplifier
	// rates.
	BatteryJ float64
	// Env is the water the node's sensors are exposed to.
	Env sensors.Environment
}

// Node is a running battery-free (or battery-assisted) sensor node.
type Node struct {
	cfg      Config
	active   int
	state    PowerState
	bitrate  float64 // divider-quantised
	seq      byte
	energyJ  float64
	timeOnS  float64
	batteryJ float64 // remaining assist energy
	skewPPM  float64 // bit-clock offset from crystal tolerance
	probe    sensors.PHProbe
	afe      sensors.AFE
	adc      sensors.ADC
	pressure *sensors.MS5837
}

// New validates the configuration and returns a cold (Off) node.
func New(cfg Config) (*Node, error) {
	if len(cfg.FrontEnds) == 0 {
		return nil, fmt.Errorf("node: need at least one recto-piezo front end")
	}
	for i, fe := range cfg.FrontEnds {
		if fe == nil {
			return nil, fmt.Errorf("node: front end %d is nil", i)
		}
	}
	if cfg.ActiveFrontEnd < 0 || cfg.ActiveFrontEnd >= len(cfg.FrontEnds) {
		return nil, fmt.Errorf("node: active front end %d out of range", cfg.ActiveFrontEnd)
	}
	if cfg.Cap == nil {
		return nil, fmt.Errorf("node: nil supercapacitor")
	}
	if cfg.BitrateBps <= 0 {
		return nil, fmt.Errorf("node: bitrate must be positive, got %g", cfg.BitrateBps)
	}
	if cfg.BatteryJ < 0 {
		return nil, fmt.Errorf("node: negative battery capacity %g", cfg.BatteryJ)
	}
	br, err := cfg.MCU.AchievableBitrate(cfg.BitrateBps)
	if err != nil {
		return nil, err
	}
	return &Node{
		cfg:      cfg,
		active:   cfg.ActiveFrontEnd,
		bitrate:  br,
		batteryJ: cfg.BatteryJ,
		probe:    sensors.NewPHProbe(),
		afe:      sensors.PaperAFE(),
		adc:      sensors.MSP430ADC(),
		pressure: sensors.NewMS5837(cfg.Env),
	}, nil
}

// Addr returns the node address.
func (n *Node) Addr() byte { return n.cfg.Addr }

// FrontEnd returns the active recto-piezo.
func (n *Node) FrontEnd() *RectoPiezo { return n.cfg.FrontEnds[n.active] }

// State returns the current power state.
func (n *Node) State() PowerState { return n.state }

// Bitrate returns the divider-quantised backscatter bitrate (bit/s),
// including any configured crystal skew.
func (n *Node) Bitrate() float64 { return n.bitrate * (1 + n.skewPPM*1e-6) }

// SetClockSkewPPM offsets the node's bit clock by ppm parts per million
// — the crystal-tolerance drift of a cheap battery-free oscillator. The
// effective backscatter bitrate shifts accordingly, so long frames
// accumulate timing slip at the receiver. The fault-injection layer
// drives this hook.
func (n *Node) SetClockSkewPPM(ppm float64) { n.skewPPM = ppm }

// ClockSkewPPM returns the configured crystal skew.
func (n *Node) ClockSkewPPM() float64 { return n.skewPPM }

// ForceBrownout drains the supercapacitor below the LDO's power-off
// threshold, cutting the digital domain immediately — the
// fault-injection hook for mid-protocol power loss. The node cold-starts
// again once harvesting recharges the capacitor.
func (n *Node) ForceBrownout() {
	n.cfg.Cap.SetVoltage(n.cfg.LDO.PowerOffV * 0.9)
	n.state = Off
}

// CapVoltage returns the supercapacitor voltage.
func (n *Node) CapVoltage() float64 { return n.cfg.Cap.Voltage() }

// EnergyUsed returns the total energy (J) the digital domain has drawn.
func (n *Node) EnergyUsed() float64 { return n.energyJ }

// BatteryRemaining returns the unused assist energy (J); 0 for a
// battery-free node or an exhausted battery.
func (n *Node) BatteryRemaining() float64 { return n.batteryJ }

// BatteryAssisted reports whether the node still has assist energy.
func (n *Node) BatteryAssisted() bool { return n.batteryJ > 0 }

// AveragePower returns the node's mean power draw (W) while powered.
func (n *Node) AveragePower() float64 {
	if n.timeOnS == 0 {
		return 0
	}
	return n.energyJ / n.timeOnS
}

// HarvestStep advances the node's power domain by dt seconds with an
// incident downlink pressure amplitude (Pa) at frequency f in water of
// characteristic impedance rhoC. It handles cold-start, the power-on
// threshold, and brown-out, and returns the new power state.
func (n *Node) HarvestStep(pressureAmp, f, rhoC, dt float64) PowerState {
	fe := n.FrontEnd()
	voc := fe.RectifiedVoltage(pressureAmp, f, rhoC)
	rout := fe.Rect.OutputResistance()
	v := n.cfg.Cap.Voltage()
	iLoad := n.cfg.MCU.Current(n.state, n.bitrate, v)
	// Energy conservation: the rectifier cannot push more charge than
	// the harvested power supports.
	pSustain := fe.SustainablePower(pressureAmp, f, rhoC)
	maxCharge := pSustain / math.Max(v, 0.5)
	n.cfg.Cap.StepPowerLimited(voc, rout, iLoad, maxCharge, dt)

	if n.state != Off {
		n.energyJ += n.cfg.MCU.Power(n.state, n.bitrate) * dt
		n.timeOnS += dt
	}

	// Battery assist: whenever harvesting cannot hold the capacitor at
	// the operating point, the battery covers the shortfall — it tops
	// the capacitor back to the power-on level and is debited the
	// digital draw minus whatever was harvested.
	if n.batteryJ > 0 && n.cfg.Cap.Voltage() < n.cfg.LDO.PowerOnV {
		draw := n.cfg.MCU.Power(n.state, n.bitrate)
		if n.state == Off {
			draw = n.cfg.MCU.Power(Idle, 0) // booting from battery
		}
		shortfall := (draw - pSustain) * dt
		if shortfall < 0 {
			shortfall = 0
		}
		// Topping up the capacitor costs energy too.
		vBefore := n.cfg.Cap.Voltage()
		n.cfg.Cap.SetVoltage(n.cfg.LDO.PowerOnV)
		topUp := 0.5 * n.cfg.Cap.Capacitance *
			(n.cfg.LDO.PowerOnV*n.cfg.LDO.PowerOnV - vBefore*vBefore)
		n.batteryJ -= shortfall + topUp
		if n.batteryJ < 0 {
			n.batteryJ = 0
		}
	}

	switch {
	case n.state == Off && n.cfg.LDO.CanPowerOn(n.cfg.Cap.Voltage()):
		// Boot: interrupts armed, timer initialised, enter LPM3 (§4.2.2).
		n.state = Idle
	case n.state != Off && n.cfg.LDO.MustPowerOff(n.cfg.Cap.Voltage()):
		n.state = Off
	}
	return n.state
}

// BeginDecoding moves an idle node into the edge-timing state (a falling
// edge raised the interrupt). Returns false if the node is not powered.
func (n *Node) BeginDecoding() bool {
	if n.state != Idle {
		return false
	}
	n.state = Decoding
	return true
}

// FinishDecoding returns the node to idle after a downlink query ends.
func (n *Node) FinishDecoding() {
	if n.state == Decoding {
		n.state = Idle
	}
}

// DecodeDownlink runs the node's receive chain over a downlink envelope:
// Schmitt trigger (§4.2.1), PWM edge timing (§4.2.2), bit-level preamble
// search, then frame parsing with CRC check. unitSamples is the PWM time
// unit in samples at the envelope's rate.
func (n *Node) DecodeDownlink(envelope []float64, unitSamples int) (frame.Query, error) {
	pwm, err := phy.NewPWM(unitSamples)
	if err != nil {
		return frame.Query{}, err
	}
	levels := phy.SchmittTrigger(envelope, 0.6, 0.3)
	bits := pwm.Decode(levels)
	start := findBitPattern(bits, phy.PreambleBits)
	if start < 0 {
		return frame.Query{}, fmt.Errorf("node: downlink preamble not found in %d bits", len(bits))
	}
	payload := bits[start+len(phy.PreambleBits):]
	if len(payload) < frame.QueryBitLength {
		return frame.Query{}, fmt.Errorf("node: truncated query: %d bits after preamble", len(payload))
	}
	raw, err := frame.FromBits(payload[:frame.QueryBitLength])
	if err != nil {
		return frame.Query{}, err
	}
	return frame.UnmarshalQuery(raw)
}

// findBitPattern returns the first index where pattern occurs in bits,
// or −1.
func findBitPattern(bits, pattern []phy.Bit) int {
	if len(pattern) == 0 || len(bits) < len(pattern) {
		return -1
	}
outer:
	for i := 0; i+len(pattern) <= len(bits); i++ {
		for j, p := range pattern {
			if bits[i+j] != p {
				continue outer
			}
		}
		return i
	}
	return -1
}

// HandleQuery executes a downlink query's command and, when the query is
// addressed to this node (or broadcast), returns the uplink bits to
// backscatter: preamble followed by a CRC-protected data frame. A nil
// bit slice with nil error means the query was for someone else.
func (n *Node) HandleQuery(q frame.Query) ([]phy.Bit, error) {
	if n.state == Off {
		return nil, fmt.Errorf("node: not powered")
	}
	if q.Dest != n.cfg.Addr && q.Dest != frame.BroadcastAddr {
		return nil, nil
	}
	var payload []byte
	switch q.Command {
	case frame.CmdPing:
		payload = []byte{byte(n.active), statusByte(n.CapVoltage())}
	case frame.CmdSetBitrate:
		req := bitrateForDivider(n.cfg.MCU, q.Param)
		if req <= 0 {
			return nil, fmt.Errorf("node: bad divider index %d", q.Param)
		}
		n.bitrate = req
		payload = []byte{q.Param}
	case frame.CmdSwitchResonance:
		idx := int(q.Param)
		if idx >= len(n.cfg.FrontEnds) {
			return nil, fmt.Errorf("node: no matching circuit %d (have %d)", idx, len(n.cfg.FrontEnds))
		}
		n.active = idx
		payload = []byte{q.Param}
	case frame.CmdReadSensor:
		var err error
		payload, err = n.readSensor(frame.SensorID(q.Param))
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("node: unknown command %v", q.Command)
	}
	df := frame.DataFrame{Source: n.cfg.Addr, Seq: n.seq, Payload: payload}
	n.seq++
	raw, err := df.Marshal()
	if err != nil {
		return nil, err
	}
	bits := append(append([]phy.Bit{}, phy.PreambleBits...), frame.Bits(raw)...)
	return bits, nil
}

// statusByte compresses the capacitor voltage into a telemetry byte
// (50 mV per count).
func statusByte(v float64) byte {
	c := int(v / 0.05)
	if c < 0 {
		c = 0
	}
	if c > 255 {
		c = 255
	}
	return byte(c)
}

// bitrateForDivider maps a divider index byte to a bitrate. Index i
// selects divider 2^i·8 — a small table of practical rates
// (4096 bps ... 16 bps).
func bitrateForDivider(m MCU, idx byte) float64 {
	if idx > 8 {
		return 0
	}
	div := float64(uint(8) << uint(idx))
	return m.CrystalHz / div
}

// phSenseEnergyJ is the energy cost of one duty-cycled pH measurement:
// the LMP91200-class AFE draws ≈50 µA at 1.8 V and needs ≈100 ms to
// settle before the ADC samples (§6.5: "future iterations ... may
// eliminate the power supply by ... leveraging the harvested energy and
// duty-cycling the pH sensing process").
const phSenseEnergyJ = 50e-6 * 1.8 * 0.1

// phSenseHeadroomV is the capacitor voltage the node must be able to
// spare for one pH measurement without brown-out.
func (n *Node) phSenseHeadroomV() float64 {
	v := n.cfg.Cap.Voltage()
	// ΔE = ½C(v² − v'²) ⇒ v' after the measurement.
	after := v*v - 2*phSenseEnergyJ/n.cfg.Cap.Capacitance
	if after < 0 {
		return 0
	}
	return math.Sqrt(after)
}

// readSensor samples a peripheral and encodes its reading (§6.5).
// Encodings: pH ×100 (uint16), temperature centi-°C (int16), pressure
// 0.1 mbar (uint16 ×10 mbar? — pressure is mbar×10 in a uint16).
func (n *Node) readSensor(id frame.SensorID) ([]byte, error) {
	switch id {
	case frame.SensorPH:
		// Duty-cycle the AFE from harvested energy: power it only for
		// the measurement, and refuse when the capacitor cannot spare
		// the energy without browning out mid-reply.
		if after := n.phSenseHeadroomV(); after <= n.cfg.LDO.PowerOffV {
			return nil, fmt.Errorf("node: insufficient energy for pH AFE (cap %.2f V would fall to %.2f V)",
				n.cfg.Cap.Voltage(), after)
		}
		n.cfg.Cap.Step(0, 1, phSenseEnergyJ/math.Max(n.cfg.Cap.Voltage(), 0.5)/0.1, 0.1)
		n.energyJ += phSenseEnergyJ
		code := n.adc.Sample(n.afe.Condition(n.probe.Voltage(n.cfg.Env)))
		ph := sensors.PHFromCode(code, n.adc, n.afe, n.probe, n.cfg.Env.TemperatureC)
		v := uint16(ph*100 + 0.5)
		return []byte{byte(id), byte(v >> 8), byte(v)}, nil
	case frame.SensorTemperature:
		r, err := sensors.ReadMS5837(n.pressure)
		if err != nil {
			return nil, err
		}
		v := int16(r.TemperatureC * 100)
		return []byte{byte(id), byte(uint16(v) >> 8), byte(uint16(v))}, nil
	case frame.SensorPressure:
		r, err := sensors.ReadMS5837(n.pressure)
		if err != nil {
			return nil, err
		}
		v := uint16(r.PressureMbar * 10)
		return []byte{byte(id), byte(v >> 8), byte(v)}, nil
	default:
		return nil, fmt.Errorf("node: unknown sensor %v", id)
	}
}

// ParseSensorPayload decodes a sensor payload produced by readSensor.
func ParseSensorPayload(p []byte) (frame.SensorID, float64, error) {
	if len(p) != 3 {
		return 0, 0, fmt.Errorf("node: sensor payload length %d, want 3", len(p))
	}
	id := frame.SensorID(p[0])
	raw := uint16(p[1])<<8 | uint16(p[2])
	switch id {
	case frame.SensorPH:
		return id, float64(raw) / 100, nil
	case frame.SensorTemperature:
		return id, float64(int16(raw)) / 100, nil
	case frame.SensorPressure:
		return id, float64(raw) / 10, nil
	default:
		return 0, 0, fmt.Errorf("node: unknown sensor id %d", p[0])
	}
}

// StartBackscatter moves the node into the backscattering state and
// returns the switch-state schedule for the uplink bits at the node's
// bitrate: one SwitchState per sample at sample rate fs. The node stays
// Backscattering until FinishBackscatter.
func (n *Node) StartBackscatter(bits []phy.Bit, fs float64) ([]piezo.SwitchState, error) {
	if n.state == Off {
		return nil, fmt.Errorf("node: not powered")
	}
	spb, err := phy.SamplesPerBitFor(fs, n.bitrate)
	if err != nil {
		return nil, err
	}
	fm0, err := phy.NewFM0(spb)
	if err != nil {
		return nil, err
	}
	wave, _ := fm0.Encode(bits, 1)
	states := make([]piezo.SwitchState, len(wave))
	for i, lv := range wave {
		if lv > 0 {
			states[i] = piezo.Reflective
		} else {
			states[i] = piezo.Absorptive
		}
	}
	n.state = Backscattering
	return states, nil
}

// FinishBackscatter returns the node to idle.
func (n *Node) FinishBackscatter() {
	if n.state == Backscattering {
		n.state = Idle
	}
}
