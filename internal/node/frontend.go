// Package node models a complete battery-free PAB sensor node: the
// recto-piezo harvesting/backscatter front end (paper §3.3.1), the
// supercapacitor power domain behind the LDO (§4.2.1), and the MSP430-
// class microcontroller state machine that decodes downlink queries and
// drives the backscatter switch (§4.2.2).
package node

import (
	"fmt"
	"math"

	"pab/internal/circuit"
	"pab/internal/piezo"
	"pab/internal/rectifier"
)

// RectoPiezo is a transducer whose operating resonance has been tuned by
// electrical matching to the rectifier — the paper's core multiple-access
// mechanism: "recto-piezos are acoustic backscatter nodes whose resonance
// frequency can be tuned through programmable circuit matching".
type RectoPiezo struct {
	Transducer *piezo.Transducer
	Rect       rectifier.Rectifier
	Matching   circuit.LSection
	// TunedHz is the design frequency the matching network targets.
	TunedHz float64
}

// NewRectoPiezo designs the matching network that conjugate-matches the
// transducer to the rectifier input at tunedHz.
func NewRectoPiezo(tr *piezo.Transducer, rect rectifier.Rectifier, tunedHz float64) (*RectoPiezo, error) {
	if tr == nil {
		return nil, fmt.Errorf("node: nil transducer")
	}
	if err := rect.Validate(); err != nil {
		return nil, err
	}
	if tunedHz <= 0 {
		return nil, fmt.Errorf("node: tuned frequency must be positive, got %g", tunedHz)
	}
	zs := tr.Impedance(tunedHz)
	zl := circuit.ResistorZ(rect.InputResistance)
	net, err := circuit.DesignLSection(zs, zl, tunedHz)
	if err != nil {
		return nil, fmt.Errorf("node: matching design at %g Hz: %w", tunedHz, err)
	}
	// Real wound inductors: the loss barely moves the on-frequency match
	// but keeps the front end from acting as a perfect reflector
	// off-resonance, which is what makes concurrent nodes interfere
	// (§3.3.2's collisions).
	net.InductorQ = 40
	return &RectoPiezo{Transducer: tr, Rect: rect, Matching: net, TunedHz: tunedHz}, nil
}

// LoadImpedance returns the impedance the transducer sees looking into
// the matching network terminated by the rectifier, at frequency f. This
// is the absorptive-state termination of the backscatter switch.
func (rp *RectoPiezo) LoadImpedance(f float64) circuit.Impedance {
	return rp.Matching.TransformLoad(circuit.ResistorZ(rp.Rect.InputResistance), f)
}

// HarvestQuality returns the fraction of the transducer's available
// electrical power that reaches the rectifier at frequency f (the match
// quality; 1.0 at the tuned frequency).
func (rp *RectoPiezo) HarvestQuality(f float64) float64 {
	zs := rp.Transducer.Impedance(f)
	return rp.Matching.MatchQuality(zs, circuit.ResistorZ(rp.Rect.InputResistance), f)
}

// DeliveredPower returns the AC power (W) reaching the rectifier input
// for an incident pressure amplitude (Pa) at frequency f in water with
// characteristic impedance rhoC.
func (rp *RectoPiezo) DeliveredPower(pressureAmp, f, rhoC float64) float64 {
	avail := rp.Transducer.AvailableElectricalPower(pressureAmp, f, rhoC)
	return avail * rp.HarvestQuality(f)
}

// RectifiedVoltage returns the unloaded DC voltage at the rectifier
// output for an incident pressure amplitude (Pa) at frequency f in water
// with characteristic impedance rhoC. This is the quantity Fig 3 sweeps.
func (rp *RectoPiezo) RectifiedVoltage(pressureAmp, f, rhoC float64) float64 {
	vin := rp.Rect.InputPeakFromPower(rp.DeliveredPower(pressureAmp, f, rhoC))
	return rp.Rect.OpenCircuitVoltage(vin)
}

// SustainablePower returns the DC power (W) the harvesting chain can
// continuously supply at this operating point — delivered power times
// the rectifier's conversion efficiency. Energy conservation bounds the
// node's average draw to this figure.
func (rp *RectoPiezo) SustainablePower(pressureAmp, f, rhoC float64) float64 {
	return rp.Rect.Efficiency * rp.DeliveredPower(pressureAmp, f, rhoC)
}

// LoadedQ returns the quality factor of the complete harvesting
// resonance (piezo + matching network + rectifier input): the tuned
// frequency divided by the half-power bandwidth of the harvest-quality
// response. It exceeds the ceramic's mechanical Q because the matching
// network's impedance step-up narrows the resonance — the same
// selectivity that separates the Fig 3 channels.
func (rp *RectoPiezo) LoadedQ() float64 {
	peak := rp.HarvestQuality(rp.TunedHz)
	if peak <= 0 {
		return rp.Transducer.Design().MechanicalQ
	}
	half := peak / 2
	step := rp.TunedHz / 2000
	lo, hi := rp.TunedHz, rp.TunedHz
	for f := rp.TunedHz; f > rp.TunedHz/2; f -= step {
		if rp.HarvestQuality(f) < half {
			break
		}
		lo = f
	}
	for f := rp.TunedHz; f < rp.TunedHz*2; f += step {
		if rp.HarvestQuality(f) < half {
			break
		}
		hi = f
	}
	bw := hi - lo
	if bw <= 0 {
		return rp.Transducer.Design().MechanicalQ
	}
	return rp.TunedHz / bw
}

// ResponseTimeConstant returns the settling time of the complete
// front-end resonance, τ = Q_loaded/(π·f0): the reflection cannot slew
// between switch states faster than the stored energy rings down. When
// the FM0 half-bit approaches τ the modulation depth collapses — the
// sharp SNR drop the paper measures beyond 3 kbit/s (Fig 8).
func (rp *RectoPiezo) ResponseTimeConstant() float64 {
	return rp.LoadedQ() / (math.Pi * rp.TunedHz)
}

// ReflectionCoeff returns the complex reflected/incident pressure ratio
// for a switch state at frequency f (magnitude and phase).
func (rp *RectoPiezo) ReflectionCoeff(state piezo.SwitchState, f float64) complex128 {
	return rp.Transducer.StateReflectionCoeff(state, rp.LoadImpedance(f), f)
}

// ReflectionAmplitude returns the reflected/incident pressure amplitude
// ratio for a switch state at frequency f.
func (rp *RectoPiezo) ReflectionAmplitude(state piezo.SwitchState, f float64) float64 {
	return rp.Transducer.StateReflection(state, rp.LoadImpedance(f), f)
}

// ModulationDepth returns the backscatter amplitude swing between the
// reflective and absorptive states at frequency f.
func (rp *RectoPiezo) ModulationDepth(f float64) float64 {
	return rp.Transducer.ModulationDepth(rp.LoadImpedance(f), f)
}
