package node

import (
	"fmt"
	"math"
)

// PowerState is the MCU's operating mode.
type PowerState int

// MCU power states (paper §4.2.2, §6.4).
const (
	// Off: supercap below the LDO threshold; nothing runs.
	Off PowerState = iota
	// Idle: LPM3 with the edge-interrupt armed, "ready to receive and
	// decode a downlink signal" — the 124 µW point of Fig 11.
	Idle
	// Decoding: awake, timing PWM edges of a downlink query.
	Decoding
	// Backscattering: driving the switch transistors with FM0 — the
	// ≈500 µW plateau of Fig 11.
	Backscattering
)

// String names the state.
func (s PowerState) String() string {
	switch s {
	case Off:
		return "off"
	case Idle:
		return "idle"
	case Decoding:
		return "decoding"
	case Backscattering:
		return "backscattering"
	default:
		return "unknown"
	}
}

// MCU models the MSP430G2553's timing and power behaviour.
type MCU struct {
	// CrystalHz is the low-frequency watch crystal (32.768 kHz × the
	// paper's "32.8 kHz" rounding).
	CrystalHz float64
	// IdlePowerW is the measured idle draw: MCU in LPM3 with pins held
	// plus LDO quiescent — 124 µW in Fig 11.
	IdlePowerW float64
	// ActivePowerW is the active-mode draw while backscattering: ≈230 µA
	// at 2.1 V plus LDO, ≈480 µW.
	ActivePowerW float64
	// SwitchingPowerPerKbpsW adds the gate-drive cost per kbit/s.
	SwitchingPowerPerKbpsW float64
	// DecodePowerW is the draw while edge-timing a downlink query.
	DecodePowerW float64
}

// PaperMCU returns the MSP430G2553 configuration matched to Fig 11.
func PaperMCU() MCU {
	return MCU{
		CrystalHz:              32768,
		IdlePowerW:             124e-6,
		ActivePowerW:           480e-6,
		SwitchingPowerPerKbpsW: 7e-6,
		DecodePowerW:           300e-6,
	}
}

// Power returns the draw (W) in a state at the given backscatter bitrate
// (bit/s; only meaningful while backscattering).
func (m MCU) Power(s PowerState, bitrate float64) float64 {
	switch s {
	case Off:
		return 0
	case Idle:
		return m.IdlePowerW
	case Decoding:
		return m.DecodePowerW
	case Backscattering:
		return m.ActivePowerW + m.SwitchingPowerPerKbpsW*bitrate/1000
	default:
		return 0
	}
}

// Current returns the supply current (A) drawn from the capacitor at
// voltage v in the given state.
func (m MCU) Current(s PowerState, bitrate, v float64) float64 {
	if v <= 0 {
		return 0
	}
	return m.Power(s, bitrate) / v
}

// AchievableBitrate quantises a requested backscatter bitrate to the
// nearest rate the integer clock divider can produce (paper footnote 13:
// "the resolution with which we can vary the bitrate depends on the
// integer clock divider available in the MCU").
func (m MCU) AchievableBitrate(requested float64) (float64, error) {
	if requested <= 0 {
		return 0, fmt.Errorf("node: requested bitrate must be positive, got %g", requested)
	}
	div := math.Round(m.CrystalHz / requested)
	if div < 1 {
		div = 1
	}
	return m.CrystalHz / div, nil
}

// DividerFor returns the integer divider used for a requested bitrate.
func (m MCU) DividerFor(requested float64) (int, error) {
	if requested <= 0 {
		return 0, fmt.Errorf("node: requested bitrate must be positive, got %g", requested)
	}
	div := int(math.Round(m.CrystalHz / requested))
	if div < 1 {
		div = 1
	}
	return div, nil
}
