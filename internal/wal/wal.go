// Package wal is an append-only, segmented, checksummed write-ahead
// log — the durability layer under the pabd job store. Records are
// opaque byte payloads framed as
//
//	uint32 length | uint32 CRC32-C(payload) | payload
//
// inside segment files (wal-<n>.log) that each begin with an 8-byte
// magic and rotate at a size threshold. Every record is written with a
// single write syscall, so a crashed process (kill -9) can tear at
// most the final record of the final segment; Open detects the torn
// tail by length/CRC validation and truncates it instead of failing
// startup. Sealed (non-final) segments are complete by construction,
// so a framing or CRC error there is real corruption and surfaces as
// ErrCorrupt rather than being silently dropped.
//
// Durability is tiered by fsync policy: FsyncAlways syncs every
// append (power-loss safe, slowest), FsyncInterval syncs dirty data on
// a background ticker (the default — kill -9 safe, because completed
// write syscalls survive process death in the page cache), FsyncNever
// syncs only on rotation, compaction and close.
//
// Compact bounds the log: the caller provides a snapshot of the
// records that are still live, Compact writes them to a fresh sealed
// segment (via tmp file + rename, so a crash mid-compaction leaves
// either the old segments or old+snapshot, never a hole) and deletes
// every older segment.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"pab/internal/telemetry"
)

// magic opens every segment file; a version bump changes the trailing
// digit so old logs fail loudly instead of replaying reinterpreted.
const magic = "PABWAL1\n"

// recordHeaderSize is the per-record framing overhead: uint32 payload
// length + uint32 CRC32-C of the payload.
const recordHeaderSize = 8

// maxRecordBytes bounds one record. A length field above it is treated
// as framing damage (torn tail in the final segment, corruption in a
// sealed one) rather than an allocation request.
const maxRecordBytes = 32 << 20

// crcTable is CRC32-Castagnoli, the checksum with hardware support on
// both amd64 and arm64.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports framing or checksum damage in a sealed segment —
// damage that cannot be a crash artifact and must not be silently
// truncated.
var ErrCorrupt = errors.New("wal: corrupt sealed segment")

// ErrClosed reports use after Close.
var ErrClosed = errors.New("wal: log closed")

// FsyncPolicy selects when appends reach stable storage.
type FsyncPolicy int

const (
	// FsyncInterval syncs dirty data on a background ticker (default).
	FsyncInterval FsyncPolicy = iota
	// FsyncAlways syncs after every append.
	FsyncAlways
	// FsyncNever syncs only on rotation, compaction and close.
	FsyncNever
)

// String names the policy for flags and reports.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncNever:
		return "never"
	default:
		return "interval"
	}
}

// ParseFsyncPolicy parses the -wal-fsync flag values.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "always":
		return FsyncAlways, nil
	case "interval", "":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (have always, interval, never)", s)
}

// Options tunes a Log.
type Options struct {
	// Dir holds the segment files; created if missing.
	Dir string
	// SegmentBytes is the rotation threshold; 0 selects 4 MiB.
	SegmentBytes int64
	// Fsync selects the durability tier.
	Fsync FsyncPolicy
	// SyncInterval is the FsyncInterval ticker period; 0 selects 100 ms.
	SyncInterval time.Duration
	// Registry receives append/fsync/rotation telemetry; nil selects
	// telemetry.Default().
	Registry *telemetry.Registry
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.SyncInterval <= 0 {
		o.SyncInterval = 100 * time.Millisecond
	}
	if o.Registry == nil {
		o.Registry = telemetry.Default()
	}
	return o
}

// Stats is a point-in-time log summary.
type Stats struct {
	Segments        int    `json:"segments"`
	ActiveBytes     int64  `json:"active_bytes"`
	TotalBytes      int64  `json:"total_bytes"`
	Appends         uint64 `json:"appends"`
	Fsyncs          uint64 `json:"fsyncs"`
	Rotations       uint64 `json:"rotations"`
	Compactions     uint64 `json:"compactions"`
	TornTruncations uint64 `json:"torn_truncations"`
}

// Log is an open write-ahead log. All methods are safe for concurrent
// use.
type Log struct {
	opt Options
	reg *telemetry.Registry

	mu          sync.Mutex
	active      *os.File
	activeIdx   uint64
	activeSize  int64
	sealedBytes int64
	sealed      []uint64 // indices of sealed segments, ascending
	dirty       bool
	closed      bool
	stats       Stats

	flushStop chan struct{}
	flushDone chan struct{}
}

// segmentName formats a segment file name; lexical order equals index
// order, which replay relies on.
func segmentName(idx uint64) string { return fmt.Sprintf("wal-%016d.log", idx) }

// Open opens (or creates) the log in opts.Dir, validates the final
// segment and truncates any torn tail so the log is ready to append.
func Open(opts Options) (*Log, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, fmt.Errorf("wal: empty dir")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{opt: opts, reg: opts.Registry}

	// Abandoned compaction temp files are garbage: the rename never
	// happened, so the old segments are still authoritative.
	tmps, _ := filepath.Glob(filepath.Join(opts.Dir, "*.tmp"))
	for _, t := range tmps {
		os.Remove(t)
	}

	idxs, err := listSegments(opts.Dir)
	if err != nil {
		return nil, err
	}
	if len(idxs) == 0 {
		if err := l.createActive(1); err != nil {
			return nil, err
		}
	} else {
		last := idxs[len(idxs)-1]
		validOff, _, torn, err := scanSegment(filepath.Join(opts.Dir, segmentName(last)), nil)
		if err != nil {
			return nil, err
		}
		if torn {
			if err := os.Truncate(filepath.Join(opts.Dir, segmentName(last)), validOff); err != nil {
				return nil, fmt.Errorf("wal: truncate torn tail: %w", err)
			}
			l.stats.TornTruncations++
			l.reg.Inc(telemetry.MWalTornTruncationsTotal)
		}
		if validOff < int64(len(magic)) {
			// The segment-creation write itself tore: rebuild the file
			// header so the segment is well-formed again.
			if err := l.createActive(last); err != nil {
				return nil, err
			}
		} else {
			f, err := os.OpenFile(filepath.Join(opts.Dir, segmentName(last)), os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return nil, fmt.Errorf("wal: %w", err)
			}
			l.active, l.activeIdx, l.activeSize = f, last, validOff
		}
		for _, idx := range idxs[:len(idxs)-1] {
			fi, err := os.Stat(filepath.Join(opts.Dir, segmentName(idx)))
			if err != nil {
				return nil, fmt.Errorf("wal: %w", err)
			}
			l.sealed = append(l.sealed, idx)
			l.sealedBytes += fi.Size()
		}
	}
	l.publishSize()
	if opts.Fsync == FsyncInterval {
		l.flushStop = make(chan struct{})
		l.flushDone = make(chan struct{})
		go l.flushLoop()
	}
	return l, nil
}

// listSegments returns the segment indices present in dir, ascending.
func listSegments(dir string) ([]uint64, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	idxs := make([]uint64, 0, len(paths))
	for _, p := range paths {
		var idx uint64
		if _, err := fmt.Sscanf(filepath.Base(p), "wal-%d.log", &idx); err == nil {
			idxs = append(idxs, idx)
		}
	}
	sort.Slice(idxs, func(i, k int) bool { return idxs[i] < idxs[k] })
	return idxs, nil
}

// createActive starts a fresh active segment at idx.
func (l *Log) createActive(idx uint64) error {
	f, err := os.OpenFile(filepath.Join(l.opt.Dir, segmentName(idx)),
		os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := f.Write([]byte(magic)); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	l.active, l.activeIdx, l.activeSize = f, idx, int64(len(magic))
	l.dirty = true
	return nil
}

// scanSegment walks one segment file validating framing and checksums.
// Each valid payload is passed to fn (when non-nil). It returns the
// offset after the last valid record, the record count, and whether
// the file ends in a torn (incomplete or checksum-failing) tail. A
// missing or mismatched magic on a file long enough to hold one is
// reported as corruption; a file shorter than the magic is a torn
// segment-creation write (validOff 0).
func scanSegment(path string, fn func(payload []byte) error) (validOff int64, n int, torn bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, false, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()

	head := make([]byte, len(magic))
	hn, err := io.ReadFull(f, head)
	if err == io.ErrUnexpectedEOF || err == io.EOF {
		// Shorter than the magic: the segment-creation write itself
		// tore. Everything goes; the caller truncates to zero and the
		// magic is rewritten on next use.
		_ = hn
		return 0, 0, true, nil
	}
	if err != nil {
		return 0, 0, false, fmt.Errorf("wal: %w", err)
	}
	if string(head) != magic {
		return 0, 0, false, fmt.Errorf("%w: %s: bad magic %q", ErrCorrupt, filepath.Base(path), head)
	}

	off := int64(len(magic))
	hdr := make([]byte, recordHeaderSize)
	var payload []byte
	for {
		if _, err := io.ReadFull(f, hdr); err != nil {
			if err == io.EOF {
				return off, n, false, nil // clean end
			}
			if err == io.ErrUnexpectedEOF {
				return off, n, true, nil // torn header
			}
			return 0, 0, false, fmt.Errorf("wal: %w", err)
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if length == 0 || length > maxRecordBytes {
			return off, n, true, nil // framing damage
		}
		if cap(payload) < int(length) {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := io.ReadFull(f, payload); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return off, n, true, nil // torn payload
			}
			return 0, 0, false, fmt.Errorf("wal: %w", err)
		}
		if crc32.Checksum(payload, crcTable) != sum {
			return off, n, true, nil // torn or damaged payload
		}
		if fn != nil {
			if err := fn(payload); err != nil {
				return 0, 0, false, err
			}
		}
		off += recordHeaderSize + int64(length)
		n++
	}
}

// Append writes one record. The framed record goes out in a single
// write syscall, so a crash can only ever tear the final record.
func (l *Log) Append(payload []byte) error {
	if len(payload) == 0 {
		return fmt.Errorf("wal: empty record")
	}
	if len(payload) > maxRecordBytes {
		return fmt.Errorf("wal: record %d bytes exceeds %d", len(payload), maxRecordBytes)
	}
	buf := make([]byte, recordHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, crcTable))
	copy(buf[recordHeaderSize:], payload)

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if _, err := l.active.Write(buf); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	l.activeSize += int64(len(buf))
	l.dirty = true
	l.stats.Appends++
	l.reg.Inc(telemetry.MWalAppendsTotal)
	if l.opt.Fsync == FsyncAlways {
		if err := l.syncLocked(); err != nil {
			return err
		}
	}
	if l.activeSize >= l.opt.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	l.publishSize()
	return nil
}

// rotateLocked seals the active segment and opens the next one.
func (l *Log) rotateLocked() error {
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := l.active.Close(); err != nil {
		return fmt.Errorf("wal: seal: %w", err)
	}
	l.sealed = append(l.sealed, l.activeIdx)
	l.sealedBytes += l.activeSize
	if err := l.createActive(l.activeIdx + 1); err != nil {
		return err
	}
	l.stats.Rotations++
	l.reg.Inc(telemetry.MWalRotationsTotal)
	return nil
}

// syncLocked flushes dirty data to stable storage.
func (l *Log) syncLocked() error {
	if !l.dirty {
		return nil
	}
	if err := l.active.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.dirty = false
	l.stats.Fsyncs++
	l.reg.Inc(telemetry.MWalFsyncsTotal)
	return nil
}

// Sync forces dirty data to stable storage regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.syncLocked()
}

// flushLoop is the FsyncInterval background syncer.
func (l *Log) flushLoop() {
	defer close(l.flushDone)
	t := time.NewTicker(l.opt.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			l.mu.Lock()
			if !l.closed {
				// A failed background fsync surfaces on the next Append
				// or Close; nothing to do with it here.
				_ = l.syncLocked()
			}
			l.mu.Unlock()
		case <-l.flushStop:
			return
		}
	}
}

// Replay streams every record, oldest first, through fn. Sealed
// segments must be fully valid (ErrCorrupt otherwise); the final
// segment tolerates a torn tail, which Open has normally already
// truncated. An fn error aborts the replay and is returned.
func (l *Log) Replay(fn func(payload []byte) error) error {
	segs, activeIdx, err := l.replaySnapshot()
	if err != nil {
		return err
	}
	for _, idx := range segs {
		_, n, torn, err := scanSegment(filepath.Join(l.opt.Dir, segmentName(idx)), fn)
		if err != nil {
			return err
		}
		if torn {
			return fmt.Errorf("%w: %s: torn record in sealed segment", ErrCorrupt, segmentName(idx))
		}
		l.noteReplayed(n)
	}
	_, n, _, err := scanSegment(filepath.Join(l.opt.Dir, segmentName(activeIdx)), fn)
	if err != nil {
		return err
	}
	l.noteReplayed(n)
	return nil
}

// replaySnapshot captures the segment set under the lock. Reads go
// through separate descriptors, so appends racing the replay only ever
// add records past the snapshot of the active segment (callers replay
// before serving).
func (l *Log) replaySnapshot() ([]uint64, uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, 0, ErrClosed
	}
	return append([]uint64(nil), l.sealed...), l.activeIdx, nil
}

func (l *Log) noteReplayed(n int) {
	if n > 0 {
		l.reg.Add(telemetry.MWalReplayRecordsTotal, int64(n))
	}
}

// Compact replaces the entire log with the given snapshot records: the
// snapshot is written to a fresh sealed segment (tmp file + rename,
// crash-safe), every older segment is deleted, and appends continue
// into a new active segment. Replaying old-plus-snapshot and
// snapshot-only must converge to the same state, which holds for any
// last-record-wins record schema.
func (l *Log) Compact(snapshot [][]byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	// Seal the current active segment first so the snapshot index is
	// strictly newer than every record it summarizes.
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := l.active.Close(); err != nil {
		return fmt.Errorf("wal: seal: %w", err)
	}
	oldSegs := append(append([]uint64(nil), l.sealed...), l.activeIdx)
	snapIdx := l.activeIdx + 1

	tmp := filepath.Join(l.opt.Dir, segmentName(snapIdx)+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: compact: %w", err)
	}
	var size int64
	write := func(b []byte) error {
		n, err := f.Write(b)
		size += int64(n)
		return err
	}
	err = write([]byte(magic))
	hdr := make([]byte, recordHeaderSize)
	for _, rec := range snapshot {
		if err != nil {
			break
		}
		if len(rec) == 0 || len(rec) > maxRecordBytes {
			err = fmt.Errorf("wal: compact: bad snapshot record size %d", len(rec))
			break
		}
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(rec)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(rec, crcTable))
		if err = write(hdr); err == nil {
			err = write(rec)
		}
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: compact: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(l.opt.Dir, segmentName(snapIdx))); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: compact: %w", err)
	}
	// The snapshot is durable; the old segments are now redundant. A
	// crash between these removes leaves extra history, which replay
	// tolerates (the snapshot records win by arriving last).
	for _, idx := range oldSegs {
		os.Remove(filepath.Join(l.opt.Dir, segmentName(idx)))
	}
	l.sealed = []uint64{snapIdx}
	l.sealedBytes = size
	if err := l.createActive(snapIdx + 1); err != nil {
		return err
	}
	l.stats.Compactions++
	l.reg.Inc(telemetry.MWalCompactionsTotal)
	l.publishSize()
	return nil
}

// Stats snapshots the log.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := l.stats
	s.Segments = len(l.sealed) + 1
	s.ActiveBytes = l.activeSize
	s.TotalBytes = l.sealedBytes + l.activeSize
	return s
}

// publishSize updates the size gauge; caller holds l.mu.
func (l *Log) publishSize() {
	l.reg.Set(telemetry.MWalSizeBytes, float64(l.sealedBytes+l.activeSize))
}

// Close syncs and closes the log.
func (l *Log) Close() error {
	flushStop, flushDone, err := l.closeLog()
	if flushStop != nil {
		close(flushStop)
		<-flushDone
	}
	return err
}

// closeLog is the locked portion of Close; it hands the flusher
// channels back so the stop/join happens outside the lock (the
// flusher's tick path takes l.mu itself).
func (l *Log) closeLog() (flushStop, flushDone chan struct{}, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, nil, nil
	}
	err = l.syncLocked()
	if cerr := l.active.Close(); err == nil {
		err = cerr
	}
	l.closed = true
	return l.flushStop, l.flushDone, err
}
