package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"pab/internal/telemetry"
)

func testOpts(t *testing.T) Options {
	t.Helper()
	return Options{
		Dir:      t.TempDir(),
		Fsync:    FsyncNever,
		Registry: telemetry.NewRegistry(),
	}
}

func mustOpen(t *testing.T, opts Options) *Log {
	t.Helper()
	l, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func collect(t *testing.T, l *Log) [][]byte {
	t.Helper()
	var out [][]byte
	if err := l.Replay(func(p []byte) error {
		out = append(out, append([]byte(nil), p...))
		return nil
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return out
}

func payloads(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf(`{"rec":%d,"pad":"0123456789abcdef"}`, i))
	}
	return out
}

// TestAppendReplayRoundtrip: what goes in comes back, in order, across
// a close/reopen.
func TestAppendReplayRoundtrip(t *testing.T) {
	opts := testOpts(t)
	l := mustOpen(t, opts)
	want := payloads(25)
	for _, p := range want {
		if err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	got := collect(t, l)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2 := mustOpen(t, opts)
	got = collect(t, l2)
	if len(got) != len(want) {
		t.Fatalf("after reopen: %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestSegmentRotation: a tiny threshold forces multiple segments and
// replay order still matches append order.
func TestSegmentRotation(t *testing.T) {
	opts := testOpts(t)
	opts.SegmentBytes = 128
	l := mustOpen(t, opts)
	want := payloads(40)
	for _, p := range want {
		if err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.Segments < 3 {
		t.Fatalf("segments = %d, want several (rotation threshold %d)", st.Segments, opts.SegmentBytes)
	}
	if st.Rotations == 0 {
		t.Error("no rotations counted")
	}
	got := collect(t, l)
	if len(got) != len(want) {
		t.Fatalf("replayed %d, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d out of order", i)
		}
	}
}

// tornCase mutilates the final segment one way; Open must recover by
// truncating to the last whole record.
type tornCase struct {
	name string
	tear func(t *testing.T, path string)
	keep int // records expected to survive out of 5
}

func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	idxs, err := listSegments(dir)
	if err != nil || len(idxs) == 0 {
		t.Fatalf("listSegments: %v (%d)", err, len(idxs))
	}
	return filepath.Join(dir, segmentName(idxs[len(idxs)-1]))
}

// TestTornTailTruncation: every flavor of torn final record — partial
// header, partial payload, corrupted checksum, garbage appended — is
// truncated on Open instead of failing startup, and the log accepts
// appends afterwards.
func TestTornTailTruncation(t *testing.T) {
	cases := []tornCase{
		{"partial_header", func(t *testing.T, p string) { chop(t, p, 3) }, 4},
		{"partial_payload", func(t *testing.T, p string) { chop(t, p, recordHeaderSize+5) }, 4},
		{"garbage_appended", func(t *testing.T, p string) {
			f, err := os.OpenFile(p, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			// A half-written header: plausible length, missing payload.
			var hdr [recordHeaderSize]byte
			binary.LittleEndian.PutUint32(hdr[0:4], 64)
			if _, err := f.Write(hdr[:6]); err != nil {
				t.Fatal(err)
			}
		}, 5},
		{"crc_flip", func(t *testing.T, p string) { flipLastByte(t, p) }, 4},
		{"insane_length", func(t *testing.T, p string) {
			f, err := os.OpenFile(p, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			var hdr [recordHeaderSize]byte
			binary.LittleEndian.PutUint32(hdr[0:4], 1<<30)
			if _, err := f.Write(hdr[:]); err != nil {
				t.Fatal(err)
			}
		}, 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := testOpts(t)
			l, err := Open(opts)
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range payloads(5) {
				if err := l.Append(p); err != nil {
					t.Fatal(err)
				}
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			tc.tear(t, lastSegment(t, opts.Dir))

			l2 := mustOpen(t, opts)
			if got := len(collect(t, l2)); got != tc.keep {
				t.Fatalf("survivors = %d, want %d", got, tc.keep)
			}
			if l2.Stats().TornTruncations != 1 {
				t.Errorf("torn truncations = %d, want 1", l2.Stats().TornTruncations)
			}
			// The log must keep working after recovery.
			if err := l2.Append([]byte("post-recovery")); err != nil {
				t.Fatal(err)
			}
			if got := collect(t, l2); string(got[len(got)-1]) != "post-recovery" {
				t.Error("append after torn-tail recovery lost")
			}
		})
	}
}

// chop removes the last n bytes of the file.
func chop(t *testing.T, path string, n int64) {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-n); err != nil {
		t.Fatal(err)
	}
}

// flipLastByte corrupts the final payload byte so its CRC fails.
func flipLastByte(t *testing.T, path string) {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0xFF
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestTornMagicRecovered: a crash during segment creation leaves a
// file shorter than the magic; Open rebuilds it.
func TestTornMagicRecovered(t *testing.T) {
	opts := testOpts(t)
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(opts.Dir, segmentName(1)), []byte("PAB"), 0o644); err != nil {
		t.Fatal(err)
	}
	l := mustOpen(t, opts)
	if err := l.Append([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, l); len(got) != 1 || string(got[0]) != "hello" {
		t.Fatalf("replay = %q", got)
	}
}

// TestCorruptSealedSegmentFails: damage in a sealed (non-final)
// segment is not a crash artifact and must fail replay loudly.
func TestCorruptSealedSegmentFails(t *testing.T) {
	opts := testOpts(t)
	opts.SegmentBytes = 128
	l := mustOpen(t, opts)
	for _, p := range payloads(40) {
		if err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	idxs, _ := listSegments(opts.Dir)
	if len(idxs) < 3 {
		t.Fatalf("want ≥3 segments, have %d", len(idxs))
	}
	flipLastByte(t, filepath.Join(opts.Dir, segmentName(idxs[0])))
	err := l.Replay(func([]byte) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Replay = %v, want ErrCorrupt", err)
	}
}

// TestCompaction: the snapshot replaces all prior history, old
// segments are deleted, and appends continue after it.
func TestCompaction(t *testing.T) {
	opts := testOpts(t)
	opts.SegmentBytes = 256
	l := mustOpen(t, opts)
	for _, p := range payloads(30) {
		if err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	before := l.Stats()
	snap := [][]byte{[]byte("live-1"), []byte("live-2")}
	if err := l.Compact(snap); err != nil {
		t.Fatal(err)
	}
	after := l.Stats()
	if after.TotalBytes >= before.TotalBytes {
		t.Errorf("compaction grew the log: %d -> %d bytes", before.TotalBytes, after.TotalBytes)
	}
	if after.Compactions != 1 {
		t.Errorf("compactions = %d, want 1", after.Compactions)
	}
	if err := l.Append([]byte("post-compact")); err != nil {
		t.Fatal(err)
	}
	got := collect(t, l)
	want := []string{"live-1", "live-2", "post-compact"}
	if len(got) != len(want) {
		t.Fatalf("replay after compact = %d records, want %d", len(got), len(want))
	}
	for i, w := range want {
		if string(got[i]) != w {
			t.Errorf("record %d = %q, want %q", i, got[i], w)
		}
	}

	// Reopen: the compacted shape must survive a restart too.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2 := mustOpen(t, opts)
	if got := collect(t, l2); len(got) != 3 {
		t.Fatalf("replay after reopen = %d records, want 3", len(got))
	}
}

// TestCompactionTmpLeftoverIgnored: a crash mid-compaction leaves a
// .tmp file; Open discards it and the old records stand.
func TestCompactionTmpLeftoverIgnored(t *testing.T) {
	opts := testOpts(t)
	l := mustOpen(t, opts)
	for _, p := range payloads(3) {
		if err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(opts.Dir, segmentName(99)+".tmp")
	if err := os.WriteFile(tmp, []byte("half-written snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	l2 := mustOpen(t, opts)
	if got := len(collect(t, l2)); got != 3 {
		t.Fatalf("records = %d, want 3", got)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Error("stale .tmp not removed")
	}
}

// TestFsyncPolicies: always syncs per append; never leaves syncing to
// rotation/close; the parser round-trips flag values.
func TestFsyncPolicies(t *testing.T) {
	opts := testOpts(t)
	opts.Fsync = FsyncAlways
	l := mustOpen(t, opts)
	for _, p := range payloads(4) {
		if err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if got := l.Stats().Fsyncs; got != 4 {
		t.Errorf("FsyncAlways fsyncs = %d, want 4", got)
	}

	for _, tc := range []struct {
		in   string
		want FsyncPolicy
		ok   bool
	}{
		{"always", FsyncAlways, true},
		{"interval", FsyncInterval, true},
		{"never", FsyncNever, true},
		{"ALWAYS", FsyncAlways, true},
		{"", FsyncInterval, true},
		{"sometimes", 0, false},
	} {
		got, err := ParseFsyncPolicy(tc.in)
		if tc.ok && (err != nil || got != tc.want) {
			t.Errorf("ParseFsyncPolicy(%q) = %v, %v", tc.in, got, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("ParseFsyncPolicy(%q) accepted", tc.in)
		}
	}
	if FsyncAlways.String() != "always" || FsyncInterval.String() != "interval" || FsyncNever.String() != "never" {
		t.Error("FsyncPolicy.String drifted from flag values")
	}
}

// TestFsyncIntervalFlushes: the background syncer picks up dirty data.
func TestFsyncIntervalFlushes(t *testing.T) {
	opts := testOpts(t)
	opts.Fsync = FsyncInterval
	opts.SyncInterval = 5 * time.Millisecond
	l := mustOpen(t, opts)
	if err := l.Append([]byte("dirty")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for l.Stats().Fsyncs == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background flusher never synced")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestClosedLogRejects: use after Close errors instead of panicking.
func TestClosedLogRejects(t *testing.T) {
	opts := testOpts(t)
	l := mustOpen(t, opts)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("Append after close = %v, want ErrClosed", err)
	}
	if err := l.Replay(func([]byte) error { return nil }); !errors.Is(err, ErrClosed) {
		t.Errorf("Replay after close = %v, want ErrClosed", err)
	}
	if err := l.Close(); err != nil {
		t.Errorf("double close = %v", err)
	}
}
