package sim

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pab/internal/scenario"
)

// These tests exist to run under -race: the lru and history stores are
// not self-locking (the Scheduler's mutex guards them), so every
// access path — submit dedupe, cache hit, eviction, result fetch,
// stats — is hammered concurrently through the public API while the
// cache is small enough that eviction churns constantly.

// TestCacheConcurrentChurn: many submitters race over a spec space
// much larger than the cache, so adds, refreshes and evictions
// interleave with hits and misses from every goroutine at once.
func TestCacheConcurrentChurn(t *testing.T) {
	s, _ := newTestScheduler(t, Config{
		Workers: 4, QueueDepth: 256, CacheEntries: 4,
	}, instantRunner)

	const goroutines = 8
	const perG = 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// 16 distinct specs over a 4-entry cache: constant eviction.
				seed := int64(1 + (g*perG+i)%16)
				view, err := s.Submit(chaosSpec(seed), 0)
				if err != nil {
					t.Errorf("submit seed %d: %v", seed, err)
					return
				}
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				final, err := s.Wait(ctx, view.ID)
				cancel()
				if err != nil {
					// A done job's view lives only in the cache; under
					// this much churn eviction can beat the Wait. That is
					// the documented aging-out behavior, not a failure.
					if errors.Is(err, ErrUnknownJob) {
						continue
					}
					t.Errorf("wait %s: %v", view.ID, err)
					return
				}
				if final.State != JobDone {
					t.Errorf("seed %d finished %s", seed, final.State)
					return
				}
				// Result may have been evicted already; either answer is
				// fine, it just must not race.
				s.Result(view.ID)
				s.Stats()
			}
		}(g)
	}
	wg.Wait()
}

// TestInFlightDedupeRacingEviction: the in-flight dedupe map and the
// result cache hand jobs back and forth — a spec leaves the jobs map
// the instant its result enters the cache, and eviction can drop that
// result before a duplicate submit arrives. Duplicates of a blocked
// job must coalesce onto the live entry no matter how hard the cache
// is churning underneath.
func TestInFlightDedupeRacingEviction(t *testing.T) {
	var runs atomic.Int64
	release := make(chan struct{})
	run := func(ctx context.Context, sp scenario.Spec) (json.RawMessage, error) {
		if sp.Seed == 1 {
			runs.Add(1)
			select {
			case <-release:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		return json.RawMessage(fmt.Sprintf(`{"seed":%d}`, sp.Seed)), nil
	}
	s, _ := newTestScheduler(t, Config{
		Workers: 3, QueueDepth: 256, CacheEntries: 2,
	}, run)

	// Park seed 1 in a worker.
	pinned, err := s.Submit(chaosSpec(1), 0)
	if err != nil {
		t.Fatal(err)
	}
	waitBusy(t, s, 1)

	var wg sync.WaitGroup
	// Half the goroutines resubmit the in-flight spec; the other half
	// churn the 2-entry cache with fresh specs that evict each other.
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				if g%2 == 0 {
					view, err := s.Submit(chaosSpec(1), 0)
					if err != nil {
						t.Errorf("dup submit: %v", err)
						return
					}
					if view.ID != pinned.ID {
						t.Errorf("duplicate got id %s, want %s", view.ID, pinned.ID)
						return
					}
				} else {
					seed := int64(100 + g*1000 + i)
					view, err := s.Submit(chaosSpec(seed), 0)
					if err != nil {
						t.Errorf("churn submit: %v", err)
						return
					}
					ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
					_, err = s.Wait(ctx, view.ID)
					cancel()
					if err != nil && !errors.Is(err, ErrUnknownJob) {
						t.Errorf("churn wait: %v", err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()

	close(release)
	if v := waitTerminal(t, s, pinned.ID); v.State != JobDone {
		t.Fatalf("pinned job finished %s", v.State)
	}
	if n := runs.Load(); n != 1 {
		t.Errorf("blocked spec ran %d times, want 1 — dedupe lost the race to eviction", n)
	}
}

// TestCacheRefreshRacingStats: get() moves entries to the front of the
// recency list while Stats and eviction walk it — a classic iterator
// invalidation shape if the locking ever regresses.
func TestCacheRefreshRacingStats(t *testing.T) {
	s, _ := newTestScheduler(t, Config{
		Workers: 2, QueueDepth: 64, CacheEntries: 3,
	}, instantRunner)

	// Warm three entries.
	ids := make([]string, 3)
	for i := range ids {
		v, err := s.Submit(chaosSpec(int64(i+1)), 0)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = waitTerminal(t, s, v.ID).ID
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(3)
	go func() { // refresher: cache hits reorder the LRU list
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			for _, id := range ids {
				s.Result(id)
				s.Job(id)
			}
		}
	}()
	go func() { // evictor: new entries push old ones out
		defer wg.Done()
		for seed := int64(1000); ; seed++ {
			select {
			case <-done:
				return
			default:
			}
			v, err := s.Submit(chaosSpec(seed), 0)
			if err != nil {
				t.Errorf("submit: %v", err)
				return
			}
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			_, err = s.Wait(ctx, v.ID)
			cancel()
			if err != nil && !errors.Is(err, ErrUnknownJob) {
				t.Errorf("wait: %v", err)
				return
			}
		}
	}()
	go func() { // reader: snapshots while both of the above churn
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			st := s.Stats()
			if st.CacheSize > 3 {
				t.Errorf("cache grew past capacity: %d", st.CacheSize)
				return
			}
		}
	}()
	time.Sleep(200 * time.Millisecond)
	close(done)
	wg.Wait()
}
