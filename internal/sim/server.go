package sim

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"pab/internal/scenario"
	"pab/internal/telemetry"
)

// Server is the HTTP face of a Scheduler — the pabd API:
//
//	GET    /healthz                  liveness + queue stats
//	POST   /v1/jobs                  submit one scenario (spec or {spec, priority})
//	GET    /v1/jobs/{id}             poll job status
//	DELETE /v1/jobs/{id}             cancel a queued/running job
//	GET    /v1/jobs/{id}/result      fetch the result JSON
//	POST   /v1/batches               submit {specs: [...]} or {sweep: {base, axes}}
//	GET    /v1/batches/{id}          batch summary (states + per-job headline)
//	GET    /v1/batches/{id}/stream   NDJSON: one result line per job as it finishes
//	GET    /v1/deadletter            terminal failures (budget exhausted, shed)
//	GET    /metrics, /telemetry.json, /debug/*  the telemetry registry
//
// A full queue answers 429 with a Retry-After estimated from the
// pool's average job duration.
type Server struct {
	sched *Scheduler
}

// NewServer wraps a scheduler.
func NewServer(s *Scheduler) *Server { return &Server{sched: s} }

// maxBodyBytes bounds request bodies; a 4096-spec sweep fits well
// within it.
const maxBodyBytes = 4 << 20

// Handler returns the route table.
func (sv *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", sv.handleHealth)
	mux.HandleFunc("POST /v1/jobs", sv.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", sv.handleJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", sv.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/result", sv.handleResult)
	mux.HandleFunc("POST /v1/batches", sv.handleBatchSubmit)
	mux.HandleFunc("GET /v1/batches/{id}", sv.handleBatch)
	mux.HandleFunc("GET /v1/batches/{id}/stream", sv.handleBatchStream)
	mux.HandleFunc("GET /v1/deadletter", sv.handleDeadLetter)
	th := sv.sched.reg.Handler()
	mux.Handle("/metrics", th)
	mux.Handle("/telemetry.json", th)
	mux.Handle("/debug/", th)
	return mux
}

// submitRequest is the POST /v1/jobs envelope; a bare Spec body is
// also accepted.
type submitRequest struct {
	Spec     *scenario.Spec `json:"spec"`
	Priority int            `json:"priority"`
}

// batchRequest is the POST /v1/batches envelope.
type batchRequest struct {
	Specs    []scenario.Spec `json:"specs"`
	Sweep    *scenario.Sweep `json:"sweep"`
	Priority int             `json:"priority"`
}

// batchResponse answers a batch submission.
type batchResponse struct {
	Batch Batch     `json:"batch"`
	Jobs  []JobView `json:"jobs"`
}

// BatchSummary aggregates a batch for GET /v1/batches/{id}.
type BatchSummary struct {
	ID     string         `json:"id"`
	Total  int            `json:"total"`
	States map[string]int `json:"states"`
	Jobs   []BatchJobRow  `json:"jobs"`
}

// BatchJobRow is one member's digest: state plus the scenario
// headline numbers once the result exists.
type BatchJobRow struct {
	ID       string             `json:"id"`
	Name     string             `json:"name,omitempty"`
	State    JobState           `json:"state"`
	Error    string             `json:"error,omitempty"`
	Headline map[string]float64 `json:"headline,omitempty"`
}

// streamRow is one NDJSON line of a batch stream.
type streamRow struct {
	ID     string          `json:"id"`
	Name   string          `json:"name,omitempty"`
	State  JobState        `json:"state"`
	Error  string          `json:"error,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

type apiError struct {
	Error string `json:"error"`
}

func (sv *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "stats": sv.sched.Stats()})
}

func (sv *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{err.Error()})
		return
	}
	var req submitRequest
	if err := json.Unmarshal(body, &req); err != nil || req.Spec == nil {
		// Not an envelope: treat the whole body as a bare Spec.
		req = submitRequest{Spec: &scenario.Spec{}}
		if err := json.Unmarshal(body, req.Spec); err != nil {
			writeJSON(w, http.StatusBadRequest, apiError{fmt.Sprintf("bad spec: %v", err)})
			return
		}
	}
	view, err := sv.sched.Submit(*req.Spec, req.Priority)
	if err != nil {
		sv.writeSubmitError(w, err)
		return
	}
	code := http.StatusAccepted
	if view.State.Terminal() {
		code = http.StatusOK // served from cache
	}
	writeJSON(w, code, view)
}

func (sv *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	view, err := sv.sched.Job(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusNotFound, apiError{err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (sv *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !sv.sched.Cancel(id) {
		writeJSON(w, http.StatusNotFound, apiError{"no live job with that id"})
		return
	}
	view, err := sv.sched.Job(id)
	if err != nil {
		writeJSON(w, http.StatusAccepted, apiError{"cancel requested"})
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (sv *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	_, result, ok := sv.sched.Result(id)
	if !ok {
		if view, err := sv.sched.Job(id); err == nil {
			writeJSON(w, http.StatusConflict, map[string]any{
				"error": "result not ready", "job": view,
			})
			return
		}
		writeJSON(w, http.StatusNotFound, apiError{ErrUnknownJob.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(result)
}

func (sv *Server) handleBatchSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{err.Error()})
		return
	}
	var req batchRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{fmt.Sprintf("bad batch: %v", err)})
		return
	}
	specs := req.Specs
	if req.Sweep != nil {
		expanded, err := req.Sweep.Expand()
		if err != nil {
			writeJSON(w, http.StatusBadRequest, apiError{err.Error()})
			return
		}
		specs = append(specs, expanded...)
	}
	batch, views, err := sv.sched.SubmitBatch(specs, req.Priority)
	if err != nil {
		sv.writeSubmitError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, batchResponse{Batch: batch, Jobs: views})
}

func (sv *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	batch, ok := sv.sched.BatchOf(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{"unknown batch"})
		return
	}
	sum := BatchSummary{ID: batch.ID, Total: len(batch.JobIDs), States: make(map[string]int)}
	for _, id := range batch.JobIDs {
		row := BatchJobRow{ID: id}
		view, err := sv.sched.Job(id)
		if err != nil {
			row.State, row.Error = JobState("unknown"), err.Error()
		} else {
			row.Name, row.State, row.Error = view.Name, view.State, view.Error
			if _, result, ok := sv.sched.Result(id); ok {
				row.Headline = headline(result)
			}
		}
		sum.States[string(row.State)]++
		sum.Jobs = append(sum.Jobs, row)
	}
	writeJSON(w, http.StatusOK, sum)
}

func (sv *Server) handleBatchStream(w http.ResponseWriter, r *http.Request) {
	batch, ok := sv.sched.BatchOf(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{"unknown batch"})
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for _, id := range batch.JobIDs {
		view, err := sv.sched.Wait(r.Context(), id)
		if err != nil {
			// Client went away (or the job aged out): stop streaming.
			return
		}
		row := streamRow{ID: id, Name: view.Name, State: view.State, Error: view.Error}
		if _, result, ok := sv.sched.Result(id); ok {
			row.Result = result
		}
		if err := enc.Encode(row); err != nil {
			return
		}
		sv.sched.reg.Inc(telemetry.MSimStreamRowsTotal)
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// handleDeadLetter serves the terminal-failure list: jobs whose retry
// budget ran out, failed non-retryably, or were shed.
func (sv *Server) handleDeadLetter(w http.ResponseWriter, _ *http.Request) {
	dead := sv.sched.DeadLetters()
	writeJSON(w, http.StatusOK, map[string]any{"total": len(dead), "jobs": dead})
}

// writeSubmitError maps scheduler flow-control errors onto HTTP: 429
// with Retry-After for a full queue, 503 during drain or when the WAL
// cannot accept the record, 400 otherwise.
func (sv *Server) writeSubmitError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrQueueFull):
		secs := int(sv.sched.RetryAfter().Seconds())
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeJSON(w, http.StatusTooManyRequests, apiError{err.Error()})
	case errors.Is(err, ErrShuttingDown), errors.Is(err, ErrDurability):
		writeJSON(w, http.StatusServiceUnavailable, apiError{err.Error()})
	default:
		writeJSON(w, http.StatusBadRequest, apiError{err.Error()})
	}
}

// headline parses a stored scenario result and extracts its summary
// numbers (nil when the result is not a scenario.Result).
func headline(result json.RawMessage) map[string]float64 {
	var res scenario.Result
	if err := json.Unmarshal(result, &res); err != nil {
		return nil
	}
	return res.Headline()
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
