// Package sim turns the one-shot simulator into a servable system: a
// job scheduler that accepts scenario specs (pab/internal/scenario),
// deduplicates them by content hash, queues them through a bounded
// priority queue into a worker pool, caches results in a
// content-addressed LRU, and reports every stage through the telemetry
// registry. cmd/pabd wraps it in an HTTP API (server.go).
//
// Flow control is explicit: a full queue rejects with ErrQueueFull
// (the HTTP layer maps it to 429 + Retry-After) rather than queueing
// unboundedly, and Shutdown stops intake, cancels queued jobs and
// drains in-flight ones — the SIGTERM path.
package sim

import (
	"container/heap"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"pab/internal/prof"
	"pab/internal/scenario"
	"pab/internal/telemetry"
)

// Runner executes one scenario and returns its result as JSON. The
// context carries the per-job timeout and cancellation.
type Runner func(ctx context.Context, spec scenario.Spec) (json.RawMessage, error)

// ScenarioRunner is the production Runner: scenario.Run serialized.
func ScenarioRunner(ctx context.Context, spec scenario.Spec) (json.RawMessage, error) {
	res, err := scenario.Run(ctx, spec)
	if err != nil {
		return nil, err
	}
	return json.Marshal(res)
}

// JobState is the lifecycle of a job.
type JobState string

// Job lifecycle states.
const (
	JobQueued   JobState = "queued"
	JobRunning  JobState = "running"
	JobDone     JobState = "done"
	JobFailed   JobState = "failed"
	JobCanceled JobState = "canceled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCanceled
}

// JobView is a point-in-time snapshot of a job, safe to serialize.
type JobView struct {
	// ID is the scenario's canonical content hash.
	ID       string   `json:"id"`
	Name     string   `json:"name,omitempty"`
	Kind     string   `json:"kind"`
	State    JobState `json:"state"`
	Cached   bool     `json:"cached"`
	Priority int      `json:"priority"`
	Error    string   `json:"error,omitempty"`

	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
	// QueueWaitS and RunS are filled once the respective phase ends.
	QueueWaitS float64 `json:"queue_wait_s,omitempty"`
	RunS       float64 `json:"run_s,omitempty"`
}

// job is the scheduler's mutable record.
type job struct {
	view   JobView
	spec   scenario.Spec
	seq    uint64
	pos    int // heap index, -1 once popped/removed
	cancel context.CancelFunc
	done   chan struct{}
	result json.RawMessage
}

// Errors the scheduler returns for flow control.
var (
	// ErrQueueFull is backpressure: the bounded queue cannot take the
	// job; retry after the window the server advertises.
	ErrQueueFull = errors.New("sim: queue full")
	// ErrShuttingDown rejects submissions after Shutdown began.
	ErrShuttingDown = errors.New("sim: scheduler shutting down")
	// ErrUnknownJob reports a lookup of an ID never submitted (or aged
	// out of the failure history).
	ErrUnknownJob = errors.New("sim: unknown job")
)

// Config tunes a Scheduler.
type Config struct {
	// Workers is the pool size; 0 selects GOMAXPROCS.
	Workers int
	// QueueDepth bounds queued (not yet running) jobs; 0 selects 64.
	QueueDepth int
	// CacheEntries bounds the content-addressed result cache; 0
	// selects 256.
	CacheEntries int
	// JobTimeout bounds one job's run; 0 selects 120 s.
	JobTimeout time.Duration
	// Registry receives queue/cache/latency telemetry; nil selects
	// telemetry.Default().
	Registry *telemetry.Registry
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 256
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 120 * time.Second
	}
	if c.Registry == nil {
		c.Registry = telemetry.Default()
	}
	return c
}

// Scheduler owns the queue, the worker pool and the result cache. All
// methods are safe for concurrent use.
type Scheduler struct {
	cfg Config
	run Runner
	reg *telemetry.Registry

	mu      sync.Mutex
	cond    *sync.Cond
	queue   jobHeap
	jobs    map[string]*job // queued + running
	cache   *lru            // hash → finished successful job
	recent  *history        // failed/canceled views for status queries
	batches *batchStore
	seq     uint64
	closed  bool
	busy    int

	// avgRunS is an EWMA of job run seconds, feeding Retry-After.
	avgRunS float64

	// slowest holds the worst-N finished jobs by run time, longest
	// first. Job IDs are scenario content hashes, so the table names
	// exactly which specs to replay when hunting a latency outlier
	// (surfaced in /telemetry.json under "sim_slowest_jobs").
	slowest []JobView

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup
}

// New builds a Scheduler and starts its worker pool.
func New(cfg Config, run Runner) (*Scheduler, error) {
	if run == nil {
		return nil, fmt.Errorf("sim: nil runner")
	}
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Scheduler{
		cfg:        cfg,
		run:        run,
		reg:        cfg.Registry,
		jobs:       make(map[string]*job),
		cache:      newLRU(cfg.CacheEntries),
		recent:     newHistory(512),
		batches:    newBatchStore(128),
		baseCtx:    ctx,
		baseCancel: cancel,
	}
	s.cond = sync.NewCond(&s.mu)
	s.reg.PublishExtra("sim_slowest_jobs", func() any { return s.SlowestJobs() })
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// slowestJobsKept bounds the worst-N slowest-jobs table.
const slowestJobsKept = 16

// SlowestJobs returns the worst-N finished jobs by run time, longest
// first.
func (s *Scheduler) SlowestJobs() []JobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobView, len(s.slowest))
	copy(out, s.slowest)
	return out
}

// noteSlowLocked files a finished job into the worst-N table. Caller
// holds s.mu; j.view.RunS must be final.
func (s *Scheduler) noteSlowLocked(v JobView) {
	if len(s.slowest) == slowestJobsKept && v.RunS <= s.slowest[len(s.slowest)-1].RunS {
		return
	}
	// Insert sorted (descending RunS); the table is tiny.
	i := len(s.slowest)
	for i > 0 && s.slowest[i-1].RunS < v.RunS {
		i--
	}
	s.slowest = append(s.slowest, JobView{})
	copy(s.slowest[i+1:], s.slowest[i:])
	s.slowest[i] = v
	if len(s.slowest) > slowestJobsKept {
		s.slowest = s.slowest[:slowestJobsKept]
	}
}

// Workers returns the pool size.
func (s *Scheduler) Workers() int { return s.cfg.Workers }

// Submit normalizes, validates and enqueues a spec. A spec whose
// result is cached returns immediately with State=JobDone and
// Cached=true; a spec already queued or running returns the live job
// (deduplication); a full queue returns ErrQueueFull.
func (s *Scheduler) Submit(spec scenario.Spec, priority int) (JobView, error) {
	sp := spec.Normalize()
	if err := sp.Validate(); err != nil {
		return JobView{}, err
	}
	id, err := sp.Hash()
	if err != nil {
		return JobView{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	v, err := s.submitLocked(sp, id, priority)
	if err != nil {
		return JobView{}, err
	}
	return v, nil
}

// submitLocked is the single-spec submission path; the caller holds
// s.mu and must have normalized+validated the spec and computed its
// hash.
func (s *Scheduler) submitLocked(sp scenario.Spec, id string, priority int) (JobView, error) {
	if s.closed {
		return JobView{}, ErrShuttingDown
	}
	if e, ok := s.cache.get(id); ok {
		s.reg.Inc(telemetry.MSimCacheHitsTotal)
		v := e.view
		v.Cached = true
		return v, nil
	}
	if j, ok := s.jobs[id]; ok {
		s.reg.Inc(telemetry.MSimJobsDedupedTotal)
		return j.view, nil
	}
	s.reg.Inc(telemetry.MSimCacheMissesTotal)
	if s.queue.Len() >= s.cfg.QueueDepth {
		s.reg.Inc(telemetry.MSimJobsRejectedTotal)
		return JobView{}, ErrQueueFull
	}
	s.seq++
	j := &job{
		view: JobView{
			ID:          id,
			Name:        sp.Name,
			Kind:        sp.Kind,
			State:       JobQueued,
			Priority:    priority,
			SubmittedAt: time.Now(),
		},
		spec: sp,
		seq:  s.seq,
		done: make(chan struct{}),
	}
	s.jobs[id] = j
	s.recent.drop(id)
	heap.Push(&s.queue, j)
	s.reg.Inc(telemetry.MSimJobsSubmittedTotal)
	s.reg.Set(telemetry.MSimQueueDepth, float64(s.queue.Len()))
	s.cond.Signal()
	return j.view, nil
}

// Job returns a snapshot of the identified job, looking through the
// live set, the result cache and the recent-failure history.
func (s *Scheduler) Job(id string) (JobView, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.jobs[id]; ok {
		return j.view, nil
	}
	if e, ok := s.cache.get(id); ok {
		return e.view, nil
	}
	if v, ok := s.recent.get(id); ok {
		return v, nil
	}
	return JobView{}, ErrUnknownJob
}

// Result returns the identified job's result JSON; ok is false until
// the job completes successfully.
func (s *Scheduler) Result(id string) (JobView, json.RawMessage, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.cache.get(id); ok {
		return e.view, e.result, true
	}
	return JobView{}, nil, false
}

// Cancel cancels a queued or running job. Canceling an unknown or
// finished job returns false.
func (s *Scheduler) Cancel(id string) bool {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return false
	}
	switch j.view.State {
	case JobQueued:
		s.queue.remove(j)
		s.finalizeLocked(j, JobCanceled, nil, context.Canceled)
		s.reg.Set(telemetry.MSimQueueDepth, float64(s.queue.Len()))
		s.mu.Unlock()
		return true
	case JobRunning:
		cancel := j.cancel
		s.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return true
	}
	s.mu.Unlock()
	return false
}

// Wait blocks until the job reaches a terminal state (or ctx fires)
// and returns its final view.
func (s *Scheduler) Wait(ctx context.Context, id string) (JobView, error) {
	for {
		s.mu.Lock()
		j, live := s.jobs[id]
		if !live {
			if e, ok := s.cache.get(id); ok {
				s.mu.Unlock()
				return e.view, nil
			}
			if v, ok := s.recent.get(id); ok {
				s.mu.Unlock()
				return v, nil
			}
			s.mu.Unlock()
			return JobView{}, ErrUnknownJob
		}
		done := j.done
		s.mu.Unlock()
		select {
		case <-done:
			// Loop to pick the final view out of cache/history.
		case <-ctx.Done():
			return JobView{}, ctx.Err()
		}
	}
}

// Stats is a point-in-time queue summary.
type Stats struct {
	Workers    int     `json:"workers"`
	Busy       int     `json:"busy"`
	Queued     int     `json:"queued"`
	QueueDepth int     `json:"queue_depth"`
	CacheSize  int     `json:"cache_size"`
	AvgRunS    float64 `json:"avg_run_s"`
}

// Stats snapshots the queue.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Workers:    s.cfg.Workers,
		Busy:       s.busy,
		Queued:     s.queue.Len(),
		QueueDepth: s.cfg.QueueDepth,
		CacheSize:  s.cache.len(),
		AvgRunS:    s.avgRunS,
	}
}

// RetryAfter estimates how long a rejected client should wait before
// the queue has likely freed a slot: one average job run across the
// pool, floored at a second.
func (s *Scheduler) RetryAfter() time.Duration {
	s.mu.Lock()
	avg := s.avgRunS
	s.mu.Unlock()
	if avg <= 0 {
		return time.Second
	}
	d := time.Duration(avg / float64(s.cfg.Workers) * float64(time.Second))
	if d < time.Second {
		return time.Second
	}
	if d > 30*time.Second {
		return 30 * time.Second
	}
	return d
}

// Shutdown stops intake, cancels queued jobs and waits for in-flight
// jobs to drain. The context bounds the wait; on expiry the remaining
// jobs are force-canceled and ctx.Err is returned.
func (s *Scheduler) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		for s.queue.Len() > 0 {
			j := heap.Pop(&s.queue).(*job)
			j.pos = -1
			s.finalizeLocked(j, JobCanceled, nil, ErrShuttingDown)
		}
		s.reg.Set(telemetry.MSimQueueDepth, 0)
		s.cond.Broadcast()
	}
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		s.baseCancel()
		<-drained
		return ctx.Err()
	}
}

// worker pops jobs until shutdown empties the queue.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for s.queue.Len() == 0 && !s.closed {
			s.cond.Wait()
		}
		if s.queue.Len() == 0 && s.closed {
			s.mu.Unlock()
			return
		}
		j := heap.Pop(&s.queue).(*job)
		j.pos = -1
		now := time.Now()
		j.view.State = JobRunning
		j.view.StartedAt = &now
		j.view.QueueWaitS = now.Sub(j.view.SubmittedAt).Seconds()
		ctx, cancel := context.WithTimeout(s.baseCtx, s.cfg.JobTimeout)
		j.cancel = cancel
		s.busy++
		s.reg.Set(telemetry.MSimQueueDepth, float64(s.queue.Len()))
		s.reg.Set(telemetry.MSimWorkersBusy, float64(s.busy))
		// The job's life splits at dequeue: everything before now is
		// queue wait, everything after is service. The wait feeds its
		// histogram here and is reconstructed as a span under the job's
		// span tree, so trace export (prof.BuildTrace) renders both
		// phases of a job on one Perfetto track.
		s.reg.Observe(telemetry.MSimJobQueueWaitSeconds, j.view.QueueWaitS)
		sp := s.reg.StartSpan("sim_job")
		sp.Attr("id", j.view.ID).Attr("kind", j.view.Kind)
		s.reg.RecordSpan("sim_queue_wait", sp.ID(), j.view.SubmittedAt,
			now.Sub(j.view.SubmittedAt), map[string]any{"id": j.view.ID})
		s.mu.Unlock()

		s.execute(ctx, cancel, j, sp)
	}
}

// execute runs one job with timeout/cancel semantics: the runner goes
// to a child goroutine and the worker reclaims its slot if the
// deadline fires first (the abandoned run's result is discarded).
func (s *Scheduler) execute(ctx context.Context, cancel context.CancelFunc, j *job, sp *telemetry.Span) {
	defer cancel()
	type outcome struct {
		result json.RawMessage
		err    error
	}
	ch := make(chan outcome, 1)
	go func() {
		var res json.RawMessage
		var err error
		// Label the runner goroutine so CPU profiles attribute samples
		// to the job (flamegraphs filterable by stage/job/spec hash —
		// the job ID is the scenario's content hash).
		prof.Do(ctx, func() {
			res, err = s.run(ctx, j.spec)
		}, "stage", "sim_job", "job_id", j.view.ID, "spec_hash", j.view.ID, "kind", j.view.Kind)
		ch <- outcome{res, err}
	}()
	var out outcome
	select {
	case out = <-ch:
	case <-ctx.Done():
		out = outcome{nil, ctx.Err()}
	}
	sp.End()

	s.mu.Lock()
	state := JobDone
	switch {
	case out.err == nil:
	case errors.Is(out.err, context.Canceled):
		state = JobCanceled
	default:
		state = JobFailed
	}
	s.finalizeLocked(j, state, out.result, out.err)
	s.busy--
	s.reg.Set(telemetry.MSimWorkersBusy, float64(s.busy))
	s.mu.Unlock()
}

// finalizeLocked moves a job to a terminal state, files it into the
// cache or failure history, and wakes waiters. Caller holds s.mu.
func (s *Scheduler) finalizeLocked(j *job, state JobState, result json.RawMessage, err error) {
	if j.view.State.Terminal() {
		return
	}
	now := time.Now()
	j.view.State = state
	j.view.FinishedAt = &now
	if j.view.StartedAt != nil {
		j.view.RunS = now.Sub(*j.view.StartedAt).Seconds()
		s.reg.Observe(telemetry.MSimJobDurationSeconds, j.view.RunS)
		const alpha = 0.2
		if s.avgRunS == 0 {
			s.avgRunS = j.view.RunS
		} else {
			s.avgRunS += alpha * (j.view.RunS - s.avgRunS)
		}
		s.noteSlowLocked(j.view)
	}
	switch state {
	case JobDone:
		j.result = result
		s.reg.Inc(telemetry.MSimJobsCompletedTotal)
		if s.cache.add(j.view.ID, cacheEntry{view: j.view, result: result}) {
			s.reg.Inc(telemetry.MSimCacheEvictionsTotal)
		}
	case JobCanceled:
		if err != nil {
			j.view.Error = err.Error()
		}
		s.reg.Inc(telemetry.MSimJobsCanceledTotal)
		s.recent.put(j.view)
	case JobFailed:
		if err != nil {
			j.view.Error = err.Error()
		}
		s.reg.Inc(telemetry.MSimJobsFailedTotal)
		if errors.Is(err, context.DeadlineExceeded) {
			s.reg.Inc(telemetry.MSimJobsTimedOutTotal)
		}
		s.recent.put(j.view)
	}
	delete(s.jobs, j.view.ID)
	close(j.done)
}

// ---------------------------------------------------------------------------
// Batches
// ---------------------------------------------------------------------------

// Batch identifies a group of jobs submitted together (a sweep).
type Batch struct {
	ID     string   `json:"id"`
	JobIDs []string `json:"job_ids"`
}

// SubmitBatch atomically submits a group of specs: either every spec
// is accepted (queued, deduplicated against live jobs, or served from
// cache) or none is and ErrQueueFull is returned. The returned views
// parallel the input order.
func (s *Scheduler) SubmitBatch(specs []scenario.Spec, priority int) (Batch, []JobView, error) {
	if len(specs) == 0 {
		return Batch{}, nil, fmt.Errorf("sim: empty batch")
	}
	type item struct {
		sp scenario.Spec
		id string
	}
	items := make([]item, len(specs))
	for i, spec := range specs {
		sp := spec.Normalize()
		if err := sp.Validate(); err != nil {
			return Batch{}, nil, fmt.Errorf("sim: batch spec %d: %w", i, err)
		}
		id, err := sp.Hash()
		if err != nil {
			return Batch{}, nil, err
		}
		items[i] = item{sp, id}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Batch{}, nil, ErrShuttingDown
	}
	// Capacity check first so acceptance is all-or-nothing: count the
	// specs that will need a fresh queue slot.
	need := 0
	seen := make(map[string]bool, len(items))
	for _, it := range items {
		if seen[it.id] {
			continue
		}
		seen[it.id] = true
		if _, ok := s.cache.get(it.id); ok {
			continue
		}
		if _, ok := s.jobs[it.id]; ok {
			continue
		}
		need++
	}
	if free := s.cfg.QueueDepth - s.queue.Len(); need > free {
		s.reg.Add(telemetry.MSimJobsRejectedTotal, int64(need))
		return Batch{}, nil, fmt.Errorf("%w: batch needs %d slots, %d free", ErrQueueFull, need, free)
	}
	views := make([]JobView, len(items))
	ids := make([]string, len(items))
	for i, it := range items {
		v, err := s.submitLocked(it.sp, it.id, priority)
		if err != nil {
			// Unreachable after the capacity check, barring duplicate
			// hashes racing — surface loudly rather than half-submit.
			return Batch{}, nil, err
		}
		views[i] = v
		ids[i] = it.id
	}
	b := Batch{ID: batchID(ids), JobIDs: ids}
	s.batches.put(b)
	return b, views, nil
}

// BatchOf returns a previously submitted batch.
func (s *Scheduler) BatchOf(id string) (Batch, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.batches.get(id)
}

// batchID derives a stable identifier from the member job hashes, so
// resubmitting the same sweep addresses the same batch.
func batchID(ids []string) string {
	h := sha256.New()
	for _, id := range ids {
		h.Write([]byte(id))
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))[:32]
}

// ---------------------------------------------------------------------------
// Priority queue
// ---------------------------------------------------------------------------

// jobHeap orders by priority (higher first), then submission order.
type jobHeap []*job

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(i, k int) bool {
	if h[i].view.Priority != h[k].view.Priority {
		return h[i].view.Priority > h[k].view.Priority
	}
	return h[i].seq < h[k].seq
}
func (h jobHeap) Swap(i, k int) {
	h[i], h[k] = h[k], h[i]
	h[i].pos = i
	h[k].pos = k
}
func (h *jobHeap) Push(x any) {
	j := x.(*job)
	j.pos = len(*h)
	*h = append(*h, j)
}
func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return j
}

// remove deletes a specific job from the heap (queued-job cancel).
func (h *jobHeap) remove(j *job) {
	if j.pos >= 0 && j.pos < len(*h) && (*h)[j.pos] == j {
		heap.Remove(h, j.pos)
		j.pos = -1
	}
}
