// Package sim turns the one-shot simulator into a servable system: a
// job scheduler that accepts scenario specs (pab/internal/scenario),
// deduplicates them by content hash, queues them through a bounded
// priority queue into a worker pool, caches results in a
// content-addressed LRU, and reports every stage through the telemetry
// registry. cmd/pabd wraps it in an HTTP API (server.go).
//
// Flow control is explicit: a full queue rejects with ErrQueueFull
// (the HTTP layer maps it to 429 + Retry-After) rather than queueing
// unboundedly, and Shutdown stops intake, cancels queued jobs and
// drains in-flight ones — the SIGTERM path. Past a configurable
// high-water mark a second tier kicks in: an incoming job that
// outranks the lowest-priority queued job sheds it instead of being
// rejected, so urgent work still lands under pressure.
//
// With a Store configured (store.go, over internal/wal), the lifecycle
// is durable: every transition is logged before it takes effect, a
// restarted scheduler replays the log — completed jobs repopulate the
// result cache, unfinished ones re-enqueue — and retryably-failed jobs
// re-run under a bounded backoff budget before dead-lettering.
package sim

import (
	"container/heap"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"pab/internal/prof"
	"pab/internal/scenario"
	"pab/internal/telemetry"
	"pab/internal/wal"
)

// Runner executes one scenario and returns its result as JSON. The
// context carries the per-job timeout and cancellation.
type Runner func(ctx context.Context, spec scenario.Spec) (json.RawMessage, error)

// ScenarioRunner is the production Runner: scenario.Run serialized.
func ScenarioRunner(ctx context.Context, spec scenario.Spec) (json.RawMessage, error) {
	res, err := scenario.Run(ctx, spec)
	if err != nil {
		return nil, err
	}
	return json.Marshal(res)
}

// JobState is the lifecycle of a job.
type JobState string

// Job lifecycle states.
const (
	JobQueued   JobState = "queued"
	JobRunning  JobState = "running"
	JobRetrying JobState = "retrying" // failed retryably; waiting out backoff
	JobDone     JobState = "done"
	JobFailed   JobState = "failed"
	JobCanceled JobState = "canceled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCanceled
}

// JobView is a point-in-time snapshot of a job, safe to serialize.
type JobView struct {
	// ID is the scenario's canonical content hash.
	ID       string   `json:"id"`
	Name     string   `json:"name,omitempty"`
	Kind     string   `json:"kind"`
	State    JobState `json:"state"`
	Cached   bool     `json:"cached"`
	Priority int      `json:"priority"`
	Error    string   `json:"error,omitempty"`
	// Attempt is 1 for the first run and increments per retry.
	Attempt int `json:"attempt,omitempty"`
	// Class types the most recent failure (see FailureClass).
	Class string `json:"failure_class,omitempty"`
	// NextRetryAt is set while the job waits out a retry backoff.
	NextRetryAt *time.Time `json:"next_retry_at,omitempty"`

	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
	// QueueWaitS and RunS are filled once the respective phase ends.
	QueueWaitS float64 `json:"queue_wait_s,omitempty"`
	RunS       float64 `json:"run_s,omitempty"`
}

// job is the scheduler's mutable record.
type job struct {
	view       JobView
	spec       scenario.Spec
	seq        uint64
	pos        int // heap index, -1 once popped/removed
	cancel     context.CancelFunc
	done       chan struct{}
	result     json.RawMessage
	retryTimer *time.Timer // live while State == JobRetrying
}

// Errors the scheduler returns for flow control.
var (
	// ErrQueueFull is backpressure: the bounded queue cannot take the
	// job; retry after the window the server advertises.
	ErrQueueFull = errors.New("sim: queue full")
	// ErrShuttingDown rejects submissions after Shutdown began.
	ErrShuttingDown = errors.New("sim: scheduler shutting down")
	// ErrUnknownJob reports a lookup of an ID never submitted (or aged
	// out of the failure history).
	ErrUnknownJob = errors.New("sim: unknown job")
	// ErrDurability reports that the WAL rejected the state transition;
	// the submission was not accepted (the HTTP layer maps it to 503 —
	// accepting work we cannot make durable would break the recovery
	// contract).
	ErrDurability = errors.New("sim: durability failure")
	// errShed is the terminal error of a job evicted by the shedding
	// tier of admission control.
	errShed = errors.New("sim: shed by admission control (queue past high-water mark)")
)

// Config tunes a Scheduler.
type Config struct {
	// Workers is the pool size; 0 selects GOMAXPROCS.
	Workers int
	// QueueDepth bounds queued (not yet running) jobs; 0 selects 64.
	QueueDepth int
	// CacheEntries bounds the content-addressed result cache; 0
	// selects 256.
	CacheEntries int
	// JobTimeout bounds one job's run; 0 selects 120 s.
	JobTimeout time.Duration
	// Registry receives queue/cache/latency telemetry; nil selects
	// telemetry.Default().
	Registry *telemetry.Registry

	// Store persists job state transitions for crash recovery; nil
	// keeps the scheduler memory-only (the pre-durability behavior).
	Store *Store
	// Retry bounds re-execution of retryably-failed jobs. The zero
	// value disables retries (MaxAttempts 1).
	Retry RetryPolicy
	// ShedHighWater is the fraction of QueueDepth past which an
	// incoming submission that outranks the lowest-priority queued job
	// sheds it instead of being rejected; 0 selects 0.9, negative
	// disables shedding.
	ShedHighWater float64
	// CompactBytes is the WAL size past which a terminal transition
	// triggers a compaction snapshot; 0 selects 8 MiB. Only meaningful
	// with Store.
	CompactBytes int64
	// RetrySeed seeds retry-backoff jitter; 0 selects 1 (deterministic
	// by default, like every other seed in the tree).
	RetrySeed int64
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 256
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 120 * time.Second
	}
	if c.Registry == nil {
		c.Registry = telemetry.Default()
	}
	c.Retry = c.Retry.withDefaults()
	if c.ShedHighWater == 0 {
		c.ShedHighWater = 0.9
	}
	if c.CompactBytes <= 0 {
		c.CompactBytes = 8 << 20
	}
	if c.RetrySeed == 0 {
		c.RetrySeed = 1
	}
	return c
}

// Scheduler owns the queue, the worker pool and the result cache. All
// methods are safe for concurrent use.
type Scheduler struct {
	cfg Config
	run Runner
	reg *telemetry.Registry

	mu      sync.Mutex
	cond    *sync.Cond
	queue   jobHeap
	jobs    map[string]*job // queued + running
	cache   *lru            // hash → finished successful job
	recent  *history        // failed/canceled views for status queries
	batches *batchStore
	seq     uint64
	closed  bool
	busy    int

	store *Store
	retry RetryPolicy
	rng   *rand.Rand // retry-backoff jitter; guarded by mu
	// dead is the bounded dead-letter list: jobs that exhausted their
	// attempt budget, failed non-retryably or were shed. Exposed over
	// GET /v1/deadletter.
	dead []JobView
	// shedHW is the queue length at which the shedding tier arms.
	shedHW int
	// compactAt is the WAL size that triggers the next compaction; it
	// doubles past the configured floor after each compaction so a log
	// whose live state is genuinely large doesn't thrash.
	compactAt int64

	// avgRunS is an EWMA of job run seconds, feeding Retry-After.
	avgRunS float64

	// slowest holds the worst-N finished jobs by run time, longest
	// first. Job IDs are scenario content hashes, so the table names
	// exactly which specs to replay when hunting a latency outlier
	// (surfaced in /telemetry.json under "sim_slowest_jobs").
	slowest []JobView

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup
}

// New builds a Scheduler and starts its worker pool. With a Store
// configured it first replays the WAL: completed jobs prime the result
// cache, unfinished ones re-enqueue (bypassing QueueDepth — they were
// already admitted before the crash).
func New(cfg Config, run Runner) (*Scheduler, error) {
	if run == nil {
		return nil, fmt.Errorf("sim: nil runner")
	}
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Scheduler{
		cfg:        cfg,
		run:        run,
		reg:        cfg.Registry,
		jobs:       make(map[string]*job),
		cache:      newLRU(cfg.CacheEntries),
		recent:     newHistory(512),
		batches:    newBatchStore(128),
		store:      cfg.Store,
		retry:      cfg.Retry,
		rng:        rand.New(rand.NewSource(cfg.RetrySeed)),
		compactAt:  cfg.CompactBytes,
		baseCtx:    ctx,
		baseCancel: cancel,
	}
	s.shedHW = int(cfg.ShedHighWater * float64(cfg.QueueDepth))
	if cfg.ShedHighWater < 0 {
		s.shedHW = cfg.QueueDepth + 1 // unreachable: shedding disabled
	} else if s.shedHW < 1 {
		s.shedHW = 1
	}
	s.cond = sync.NewCond(&s.mu)
	s.reg.PublishExtra("sim_slowest_jobs", func() any { return s.SlowestJobs() })
	if s.store != nil {
		if err := s.replayStore(); err != nil {
			cancel()
			return nil, err
		}
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// replayStore folds the WAL back into scheduler state before the
// worker pool starts: done → cache (a later submit of the same spec is
// a replay hit, not a re-run), failed → dead-letter + history,
// canceled → history, everything else → re-enqueued with its attempt
// count preserved.
func (s *Scheduler) replayStore() error {
	sp := s.reg.StartSpan("sim_wal_replay")
	defer sp.End()
	rs, err := s.store.Replay()
	if err != nil {
		return fmt.Errorf("sim: wal replay: %w", err)
	}
	sp.Attr("records", rs.Records).Attr("pending", len(rs.Pending)).
		Attr("done", len(rs.Done)).Attr("dead", len(rs.Dead))

	s.mu.Lock()
	defer s.mu.Unlock()
	for _, d := range rs.Done {
		s.cache.add(d.View.ID, cacheEntry{view: d.View, result: d.Result})
		s.reg.Inc(telemetry.MSimWalReplayedResultsTotal)
	}
	for _, v := range rs.Dead {
		s.recent.put(v)
		s.deadLetterLocked(v)
	}
	for _, v := range rs.Canceled {
		s.recent.put(v)
	}
	for _, p := range rs.Pending {
		s.seq++
		j := &job{
			view: JobView{
				ID:          p.ID,
				Name:        p.Spec.Name,
				Kind:        p.Spec.Kind,
				State:       JobQueued,
				Priority:    p.Priority,
				Attempt:     p.Attempt,
				SubmittedAt: time.Now(),
			},
			spec: p.Spec,
			seq:  s.seq,
			done: make(chan struct{}),
		}
		s.jobs[p.ID] = j
		heap.Push(&s.queue, j)
		s.reg.Inc(telemetry.MSimWalReplayedJobsTotal)
	}
	s.reg.Set(telemetry.MSimQueueDepth, float64(s.queue.Len()))
	return nil
}

// slowestJobsKept bounds the worst-N slowest-jobs table.
const slowestJobsKept = 16

// SlowestJobs returns the worst-N finished jobs by run time, longest
// first.
func (s *Scheduler) SlowestJobs() []JobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobView, len(s.slowest))
	copy(out, s.slowest)
	return out
}

// noteSlowLocked files a finished job into the worst-N table. Caller
// holds s.mu; j.view.RunS must be final.
func (s *Scheduler) noteSlowLocked(v JobView) {
	if len(s.slowest) == slowestJobsKept && v.RunS <= s.slowest[len(s.slowest)-1].RunS {
		return
	}
	// Insert sorted (descending RunS); the table is tiny.
	i := len(s.slowest)
	for i > 0 && s.slowest[i-1].RunS < v.RunS {
		i--
	}
	s.slowest = append(s.slowest, JobView{})
	copy(s.slowest[i+1:], s.slowest[i:])
	s.slowest[i] = v
	if len(s.slowest) > slowestJobsKept {
		s.slowest = s.slowest[:slowestJobsKept]
	}
}

// Workers returns the pool size.
func (s *Scheduler) Workers() int { return s.cfg.Workers }

// Submit normalizes, validates and enqueues a spec. A spec whose
// result is cached returns immediately with State=JobDone and
// Cached=true; a spec already queued or running returns the live job
// (deduplication); a full queue returns ErrQueueFull.
func (s *Scheduler) Submit(spec scenario.Spec, priority int) (JobView, error) {
	sp := spec.Normalize()
	if err := sp.Validate(); err != nil {
		return JobView{}, err
	}
	id, err := sp.Hash()
	if err != nil {
		return JobView{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	v, err := s.submitLocked(sp, id, priority)
	if err != nil {
		return JobView{}, err
	}
	return v, nil
}

// submitLocked is the single-spec submission path; the caller holds
// s.mu and must have normalized+validated the spec and computed its
// hash.
func (s *Scheduler) submitLocked(sp scenario.Spec, id string, priority int) (JobView, error) {
	if s.closed {
		return JobView{}, ErrShuttingDown
	}
	if e, ok := s.cache.get(id); ok {
		s.reg.Inc(telemetry.MSimCacheHitsTotal)
		v := e.view
		v.Cached = true
		return v, nil
	}
	if j, ok := s.jobs[id]; ok {
		s.reg.Inc(telemetry.MSimJobsDedupedTotal)
		return j.view, nil
	}
	s.reg.Inc(telemetry.MSimCacheMissesTotal)
	// Shedding tier: past the high-water mark, an incoming job that
	// strictly outranks the lowest-priority queued job evicts it rather
	// than bouncing off the depth limit — urgent work lands even under
	// sustained pressure, and the shed job dead-letters for the client
	// to see.
	if s.queue.Len() >= s.shedHW {
		if victim := s.queue.lowest(); victim != nil && priority > victim.view.Priority {
			s.shedLocked(victim)
		}
	}
	if s.queue.Len() >= s.cfg.QueueDepth {
		s.reg.Inc(telemetry.MSimJobsRejectedTotal)
		return JobView{}, ErrQueueFull
	}
	// The WAL write comes first: a job is only accepted once its submit
	// record is durable, so a crash can lose at most work we had not
	// yet acknowledged.
	if s.store != nil {
		if err := s.store.LogSubmit(id, sp, priority, 1); err != nil {
			s.reg.Inc(telemetry.MSimWalAppendErrorsTotal)
			return JobView{}, fmt.Errorf("%w: %v", ErrDurability, err)
		}
	}
	s.seq++
	j := &job{
		view: JobView{
			ID:          id,
			Name:        sp.Name,
			Kind:        sp.Kind,
			State:       JobQueued,
			Priority:    priority,
			Attempt:     1,
			SubmittedAt: time.Now(),
		},
		spec: sp,
		seq:  s.seq,
		done: make(chan struct{}),
	}
	s.jobs[id] = j
	s.recent.drop(id)
	heap.Push(&s.queue, j)
	s.reg.Inc(telemetry.MSimJobsSubmittedTotal)
	s.reg.Set(telemetry.MSimQueueDepth, float64(s.queue.Len()))
	s.cond.Signal()
	return j.view, nil
}

// Job returns a snapshot of the identified job, looking through the
// live set, the result cache and the recent-failure history.
func (s *Scheduler) Job(id string) (JobView, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.jobs[id]; ok {
		return j.view, nil
	}
	if e, ok := s.cache.get(id); ok {
		return e.view, nil
	}
	if v, ok := s.recent.get(id); ok {
		return v, nil
	}
	return JobView{}, ErrUnknownJob
}

// Result returns the identified job's result JSON; ok is false until
// the job completes successfully.
func (s *Scheduler) Result(id string) (JobView, json.RawMessage, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.cache.get(id); ok {
		return e.view, e.result, true
	}
	return JobView{}, nil, false
}

// Cancel cancels a queued or running job. Canceling an unknown or
// finished job returns false.
func (s *Scheduler) Cancel(id string) bool {
	ok, cancel := s.cancelJob(id)
	if cancel != nil {
		cancel()
	}
	return ok
}

// cancelJob is the locked portion of Cancel: queued and retrying jobs
// finalize immediately; a running job hands back its context cancel
// func to invoke outside the lock.
func (s *Scheduler) cancelJob(id string) (bool, context.CancelFunc) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return false, nil
	}
	switch j.view.State {
	case JobQueued:
		s.queue.remove(j)
		s.finalizeLocked(j, JobCanceled, FailCanceled, nil, context.Canceled)
		s.reg.Set(telemetry.MSimQueueDepth, float64(s.queue.Len()))
		return true, nil
	case JobRetrying:
		if j.retryTimer != nil {
			j.retryTimer.Stop()
			j.retryTimer = nil
		}
		s.finalizeLocked(j, JobCanceled, FailCanceled, nil, context.Canceled)
		return true, nil
	case JobRunning:
		return true, j.cancel
	}
	return false, nil
}

// Wait blocks until the job reaches a terminal state (or ctx fires)
// and returns its final view.
func (s *Scheduler) Wait(ctx context.Context, id string) (JobView, error) {
	for {
		v, done, err := s.waitState(id)
		if done == nil {
			return v, err
		}
		select {
		case <-done:
			// Loop to pick the final view out of cache/history.
		case <-ctx.Done():
			return JobView{}, ctx.Err()
		}
	}
}

// waitState snapshots one Wait iteration under the lock: a non-nil
// done channel means the job is still live; otherwise v/err are final
// (from the cache, the recent-history ring, or unknown).
func (s *Scheduler) waitState(id string) (JobView, chan struct{}, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, live := s.jobs[id]; live {
		return JobView{}, j.done, nil
	}
	if e, ok := s.cache.get(id); ok {
		return e.view, nil, nil
	}
	if v, ok := s.recent.get(id); ok {
		return v, nil, nil
	}
	return JobView{}, nil, ErrUnknownJob
}

// Stats is a point-in-time queue summary.
type Stats struct {
	Workers     int        `json:"workers"`
	Busy        int        `json:"busy"`
	Queued      int        `json:"queued"`
	QueueDepth  int        `json:"queue_depth"`
	CacheSize   int        `json:"cache_size"`
	AvgRunS     float64    `json:"avg_run_s"`
	Retrying    int        `json:"retrying,omitempty"`
	DeadLetters int        `json:"dead_letters,omitempty"`
	WAL         *wal.Stats `json:"wal,omitempty"`
}

// Stats snapshots the queue.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Workers:     s.cfg.Workers,
		Busy:        s.busy,
		Queued:      s.queue.Len(),
		QueueDepth:  s.cfg.QueueDepth,
		CacheSize:   s.cache.len(),
		AvgRunS:     s.avgRunS,
		DeadLetters: len(s.dead),
	}
	for _, j := range s.jobs {
		if j.view.State == JobRetrying {
			st.Retrying++
		}
	}
	if s.store != nil {
		ws := s.store.Stats()
		st.WAL = &ws
	}
	return st
}

// DeadLetters returns the jobs that reached terminal failure: attempt
// budget exhausted, failed non-retryably, or shed by admission
// control. Newest last; bounded.
func (s *Scheduler) DeadLetters() []JobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobView, len(s.dead))
	copy(out, s.dead)
	return out
}

// deadLettersKept bounds the dead-letter list; older entries age out
// first (they remain queryable via the WAL until compaction).
const deadLettersKept = 256

// deadLetterLocked files a terminal failure. Caller holds s.mu.
func (s *Scheduler) deadLetterLocked(v JobView) {
	s.dead = append(s.dead, v)
	if len(s.dead) > deadLettersKept {
		s.dead = s.dead[len(s.dead)-deadLettersKept:]
	}
}

// RetryAfter estimates how long a rejected client should wait before
// the queue has likely freed a slot: one average job run across the
// pool, floored at a second.
func (s *Scheduler) RetryAfter() time.Duration {
	s.mu.Lock()
	avg := s.avgRunS
	s.mu.Unlock()
	if avg <= 0 {
		return time.Second
	}
	d := time.Duration(avg / float64(s.cfg.Workers) * float64(time.Second))
	if d < time.Second {
		return time.Second
	}
	if d > 30*time.Second {
		return 30 * time.Second
	}
	return d
}

// Shutdown stops intake, cancels queued jobs and waits for in-flight
// jobs to drain. The context bounds the wait; on expiry the remaining
// jobs are force-canceled and ctx.Err is returned.
func (s *Scheduler) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		for s.queue.Len() > 0 {
			j := heap.Pop(&s.queue).(*job)
			j.pos = -1
			s.finalizeLocked(j, JobCanceled, FailCanceled, nil, ErrShuttingDown)
		}
		// Jobs waiting out a retry backoff hold no queue slot; cancel
		// them too so every non-terminal job resolves before exit.
		for _, j := range s.jobs {
			if j.view.State == JobRetrying {
				if j.retryTimer != nil {
					j.retryTimer.Stop()
					j.retryTimer = nil
				}
				s.finalizeLocked(j, JobCanceled, FailCanceled, nil, ErrShuttingDown)
			}
		}
		s.reg.Set(telemetry.MSimQueueDepth, 0)
		s.cond.Broadcast()
	}
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		s.baseCancel()
		<-drained
		return ctx.Err()
	}
}

// worker pops jobs until shutdown empties the queue.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		j, ctx, cancel, sp, ok := s.nextJob()
		if !ok {
			return
		}
		s.execute(ctx, cancel, j, sp)
	}
}

// nextJob blocks until a job is available (or shutdown drains the
// queue — then ok is false). It holds the lock for the whole dequeue:
// pop, mark running, WAL start record, metrics and the job span, so a
// Snapshot can never observe a popped-but-not-running job.
func (s *Scheduler) nextJob() (j *job, ctx context.Context, cancel context.CancelFunc, sp *telemetry.Span, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.queue.Len() == 0 && !s.closed {
		s.cond.Wait()
	}
	if s.queue.Len() == 0 && s.closed {
		return nil, nil, nil, nil, false
	}
	j = heap.Pop(&s.queue).(*job)
	j.pos = -1
	now := time.Now()
	j.view.State = JobRunning
	j.view.StartedAt = &now
	j.view.QueueWaitS = now.Sub(j.view.SubmittedAt).Seconds()
	if s.store != nil {
		// A lost start record only means replay re-queues instead of
		// observing the attempt — safe, so log failures don't stall
		// the worker.
		if err := s.store.LogStart(j.view.ID, j.view.Attempt); err != nil {
			s.reg.Inc(telemetry.MSimWalAppendErrorsTotal)
		}
	}
	ctx, cancel = context.WithTimeout(s.baseCtx, s.cfg.JobTimeout)
	j.cancel = cancel
	s.busy++
	s.reg.Set(telemetry.MSimQueueDepth, float64(s.queue.Len()))
	s.reg.Set(telemetry.MSimWorkersBusy, float64(s.busy))
	// The job's life splits at dequeue: everything before now is
	// queue wait, everything after is service. The wait feeds its
	// histogram here and is reconstructed as a span under the job's
	// span tree, so trace export (prof.BuildTrace) renders both
	// phases of a job on one Perfetto track.
	s.reg.Observe(telemetry.MSimJobQueueWaitSeconds, j.view.QueueWaitS)
	sp = s.reg.StartSpan("sim_job")
	sp.Attr("id", j.view.ID).Attr("kind", j.view.Kind)
	s.reg.RecordSpan("sim_queue_wait", sp.ID(), j.view.SubmittedAt,
		now.Sub(j.view.SubmittedAt), map[string]any{"id": j.view.ID})
	return j, ctx, cancel, sp, true
}

// execute runs one job with timeout/cancel semantics: the runner goes
// to a child goroutine and the worker reclaims its slot if the
// deadline fires first (the abandoned run's result is discarded).
func (s *Scheduler) execute(ctx context.Context, cancel context.CancelFunc, j *job, sp *telemetry.Span) {
	defer cancel()
	type outcome struct {
		result json.RawMessage
		err    error
	}
	ch := make(chan outcome, 1)
	go func() {
		var res json.RawMessage
		var err error
		// Label the runner goroutine so CPU profiles attribute samples
		// to the job (flamegraphs filterable by stage/job/spec hash —
		// the job ID is the scenario's content hash).
		prof.Do(ctx, func() {
			res, err = s.run(ctx, j.spec)
		}, "stage", "sim_job", "job_id", j.view.ID, "spec_hash", j.view.ID, "kind", j.view.Kind)
		ch <- outcome{res, err}
	}()
	var out outcome
	select {
	case out = <-ch:
	case <-ctx.Done():
		out = outcome{nil, ctx.Err()}
	}
	sp.End()

	s.mu.Lock()
	state := JobDone
	var class FailureClass
	switch {
	case out.err == nil:
	case errors.Is(out.err, context.Canceled):
		state, class = JobCanceled, FailCanceled
	default:
		state, class = JobFailed, Classify(out.err)
	}
	s.finalizeLocked(j, state, class, out.result, out.err)
	s.busy--
	s.reg.Set(telemetry.MSimWorkersBusy, float64(s.busy))
	s.mu.Unlock()
}

// noteRunLocked closes out one attempt's run-time bookkeeping: the
// duration histogram, the Retry-After EWMA and the slowest-jobs table.
// Caller holds s.mu.
func (s *Scheduler) noteRunLocked(j *job, now time.Time) {
	if j.view.StartedAt == nil {
		return
	}
	j.view.RunS = now.Sub(*j.view.StartedAt).Seconds()
	s.reg.Observe(telemetry.MSimJobDurationSeconds, j.view.RunS)
	const alpha = 0.2
	if s.avgRunS == 0 {
		s.avgRunS = j.view.RunS
	} else {
		s.avgRunS += alpha * (j.view.RunS - s.avgRunS)
	}
	s.noteSlowLocked(j.view)
}

// finalizeLocked resolves a finished attempt. A retryable failure with
// budget left schedules the next attempt (state JobRetrying — not
// terminal, waiters keep waiting); everything else lands terminally:
// cache, dead-letter list or failure history, a WAL record, and the
// job's waiters wake. Caller holds s.mu.
func (s *Scheduler) finalizeLocked(j *job, state JobState, class FailureClass, result json.RawMessage, err error) {
	if j.view.State.Terminal() {
		return
	}
	now := time.Now()
	if state == JobFailed && class.Retryable() && j.view.Attempt < s.retry.MaxAttempts && !s.closed {
		s.scheduleRetryLocked(j, class, err, now)
		return
	}
	j.view.State = state
	j.view.FinishedAt = &now
	s.noteRunLocked(j, now)
	switch state {
	case JobDone:
		j.result = result
		j.view.Class, j.view.NextRetryAt = "", nil
		s.reg.Inc(telemetry.MSimJobsCompletedTotal)
		if s.cache.add(j.view.ID, cacheEntry{view: j.view, result: result}) {
			s.reg.Inc(telemetry.MSimCacheEvictionsTotal)
		}
		s.walLogLocked(func() error { return s.store.LogDone(j.view.ID, j.view, result) })
	case JobCanceled:
		if err != nil {
			j.view.Error = err.Error()
		}
		j.view.NextRetryAt = nil
		s.reg.Inc(telemetry.MSimJobsCanceledTotal)
		s.recent.put(j.view)
		s.walLogLocked(func() error { return s.store.LogCancel(j.view.ID, j.view) })
	case JobFailed:
		if err != nil {
			j.view.Error = err.Error()
		}
		if class != "" {
			j.view.Class = string(class)
		}
		j.view.NextRetryAt = nil
		s.reg.Inc(telemetry.MSimJobsFailedTotal)
		if errors.Is(err, context.DeadlineExceeded) {
			s.reg.Inc(telemetry.MSimJobsTimedOutTotal)
		}
		s.recent.put(j.view)
		s.deadLetterLocked(j.view)
		s.reg.Inc(telemetry.MSimJobsDeadletteredTotal)
		s.walLogLocked(func() error { return s.store.LogFailed(j.view.ID, j.view) })
	}
	delete(s.jobs, j.view.ID)
	close(j.done)
	s.maybeCompactLocked()
}

// walLogLocked appends a terminal record, counting (but not failing
// on) append errors: the in-memory state is already authoritative for
// this process; durability degrades, the scheduler does not.
func (s *Scheduler) walLogLocked(fn func() error) {
	if s.store == nil {
		return
	}
	if err := fn(); err != nil {
		s.reg.Inc(telemetry.MSimWalAppendErrorsTotal)
	}
}

// scheduleRetryLocked parks a retryably-failed job for its backoff:
// Base·2^(attempt−1) clamped and jittered. The job keeps its slot in
// s.jobs (still dedupes submissions) but not in the queue. Caller
// holds s.mu.
func (s *Scheduler) scheduleRetryLocked(j *job, class FailureClass, err error, now time.Time) {
	s.noteRunLocked(j, now)
	failedAttempt := j.view.Attempt
	d := s.retry.Backoff(failedAttempt, s.rng)
	at := now.Add(d)
	j.view.State = JobRetrying
	j.view.Attempt++
	j.view.Class = string(class)
	if err != nil {
		j.view.Error = err.Error()
	}
	j.view.StartedAt = nil
	j.view.FinishedAt = nil
	j.view.RunS = 0
	j.view.NextRetryAt = &at
	s.reg.Inc(telemetry.MSimJobsRetriedTotal)
	s.reg.Observe(telemetry.MSimRetryBackoffSeconds, d.Seconds())
	if class == FailTimeout {
		s.reg.Inc(telemetry.MSimJobsTimedOutTotal)
	}
	s.walLogLocked(func() error { return s.store.LogRetry(j.view.ID, j.view.Attempt) })
	id := j.view.ID
	j.retryTimer = time.AfterFunc(d, func() { s.requeue(id) })
}

// requeue moves a job whose backoff expired back into the queue.
func (s *Scheduler) requeue(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok || j.view.State != JobRetrying {
		return
	}
	j.retryTimer = nil
	if s.closed {
		s.finalizeLocked(j, JobCanceled, FailCanceled, nil, ErrShuttingDown)
		return
	}
	j.view.State = JobQueued
	j.view.NextRetryAt = nil
	// Queue wait for the new attempt starts now; the backoff was not
	// time spent waiting for a worker.
	j.view.SubmittedAt = time.Now()
	heap.Push(&s.queue, j)
	s.reg.Set(telemetry.MSimQueueDepth, float64(s.queue.Len()))
	s.cond.Signal()
}

// shedLocked evicts a queued job to admit higher-priority work: a
// terminal failure with class "shed". Caller holds s.mu.
func (s *Scheduler) shedLocked(j *job) {
	s.queue.remove(j)
	s.reg.Inc(telemetry.MSimJobsShedTotal)
	s.finalizeLocked(j, JobFailed, FailShed, nil, errShed)
	s.reg.Set(telemetry.MSimQueueDepth, float64(s.queue.Len()))
}

// maybeCompactLocked rewrites the WAL as a snapshot of live state once
// it passes the high-water size. The next trigger doubles from the
// post-compaction size (floored at the configured threshold) so a log
// whose live state is genuinely large doesn't compact on every
// terminal transition. Caller holds s.mu.
func (s *Scheduler) maybeCompactLocked() {
	if s.store == nil {
		return
	}
	if s.store.Stats().TotalBytes < s.compactAt {
		return
	}
	var snap Snapshot
	for _, e := range s.cache.entries() {
		snap.Done = append(snap.Done, DoneJob{View: e.view, Result: e.result})
	}
	snap.Dead = append(snap.Dead, s.dead...)
	for _, j := range s.jobs {
		snap.Live = append(snap.Live, PendingJob{
			ID:       j.view.ID,
			Spec:     j.spec,
			Priority: j.view.Priority,
			Attempt:  j.view.Attempt,
		})
	}
	if err := s.store.Compact(snap); err != nil {
		s.reg.Inc(telemetry.MSimWalAppendErrorsTotal)
		return
	}
	post := 2 * s.store.Stats().TotalBytes
	s.compactAt = s.cfg.CompactBytes
	if post > s.compactAt {
		s.compactAt = post
	}
}

// ---------------------------------------------------------------------------
// Batches
// ---------------------------------------------------------------------------

// Batch identifies a group of jobs submitted together (a sweep).
type Batch struct {
	ID     string   `json:"id"`
	JobIDs []string `json:"job_ids"`
}

// SubmitBatch atomically submits a group of specs: either every spec
// is accepted (queued, deduplicated against live jobs, or served from
// cache) or none is and ErrQueueFull is returned. The returned views
// parallel the input order.
func (s *Scheduler) SubmitBatch(specs []scenario.Spec, priority int) (Batch, []JobView, error) {
	if len(specs) == 0 {
		return Batch{}, nil, fmt.Errorf("sim: empty batch")
	}
	type item struct {
		sp scenario.Spec
		id string
	}
	items := make([]item, len(specs))
	for i, spec := range specs {
		sp := spec.Normalize()
		if err := sp.Validate(); err != nil {
			return Batch{}, nil, fmt.Errorf("sim: batch spec %d: %w", i, err)
		}
		id, err := sp.Hash()
		if err != nil {
			return Batch{}, nil, err
		}
		items[i] = item{sp, id}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Batch{}, nil, ErrShuttingDown
	}
	// Capacity check first so acceptance is all-or-nothing: count the
	// specs that will need a fresh queue slot.
	need := 0
	seen := make(map[string]bool, len(items))
	for _, it := range items {
		if seen[it.id] {
			continue
		}
		seen[it.id] = true
		if _, ok := s.cache.get(it.id); ok {
			continue
		}
		if _, ok := s.jobs[it.id]; ok {
			continue
		}
		need++
	}
	if free := s.cfg.QueueDepth - s.queue.Len(); need > free {
		s.reg.Add(telemetry.MSimJobsRejectedTotal, int64(need))
		return Batch{}, nil, fmt.Errorf("%w: batch needs %d slots, %d free", ErrQueueFull, need, free)
	}
	views := make([]JobView, len(items))
	ids := make([]string, len(items))
	for i, it := range items {
		v, err := s.submitLocked(it.sp, it.id, priority)
		if err != nil {
			// Unreachable after the capacity check, barring duplicate
			// hashes racing — surface loudly rather than half-submit.
			return Batch{}, nil, err
		}
		views[i] = v
		ids[i] = it.id
	}
	b := Batch{ID: batchID(ids), JobIDs: ids}
	s.batches.put(b)
	return b, views, nil
}

// BatchOf returns a previously submitted batch.
func (s *Scheduler) BatchOf(id string) (Batch, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.batches.get(id)
}

// batchID derives a stable identifier from the member job hashes, so
// resubmitting the same sweep addresses the same batch.
func batchID(ids []string) string {
	h := sha256.New()
	for _, id := range ids {
		h.Write([]byte(id))
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))[:32]
}

// ---------------------------------------------------------------------------
// Priority queue
// ---------------------------------------------------------------------------

// jobHeap orders by priority (higher first), then submission order.
type jobHeap []*job

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(i, k int) bool {
	if h[i].view.Priority != h[k].view.Priority {
		return h[i].view.Priority > h[k].view.Priority
	}
	return h[i].seq < h[k].seq
}
func (h jobHeap) Swap(i, k int) {
	h[i], h[k] = h[k], h[i]
	h[i].pos = i
	h[k].pos = k
}
func (h *jobHeap) Push(x any) {
	j := x.(*job)
	j.pos = len(*h)
	*h = append(*h, j)
}
func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return j
}

// remove deletes a specific job from the heap (queued-job cancel).
func (h *jobHeap) remove(j *job) {
	if j.pos >= 0 && j.pos < len(*h) && (*h)[j.pos] == j {
		heap.Remove(h, j.pos)
		j.pos = -1
	}
}

// lowest returns the job shedding would evict: minimum priority, and
// among ties the most recently submitted (it has waited least). Linear
// scan — the queue is bounded by QueueDepth.
func (h jobHeap) lowest() *job {
	var worst *job
	for _, j := range h {
		if worst == nil || j.view.Priority < worst.view.Priority ||
			(j.view.Priority == worst.view.Priority && j.seq > worst.seq) {
			worst = j
		}
	}
	return worst
}
