package sim

import (
	"encoding/json"
	"fmt"

	"pab/internal/scenario"
	"pab/internal/telemetry"
	"pab/internal/wal"
)

// Store persists job state transitions to a write-ahead log so a
// crashed or SIGKILLed pabd resumes where it left off: completed jobs
// replay into the result cache (a replay hit, not a re-run), and jobs
// that were queued, running or waiting out a retry backoff re-enqueue.
//
// The record schema is last-record-wins per job id (the scenario
// content hash), which is what makes wal.Log compaction sound: a
// snapshot of the live state appended after the old history replays to
// the same state as the history alone.
//
// Lifecycle records, in the order a job emits them:
//
//	submit  spec + priority + attempt   job accepted into the queue
//	start   attempt                     a worker picked it up
//	retry   attempt                     failed retryably; backoff scheduled
//	done    view + result               terminal success
//	failed  view + class                terminal failure (dead-letter)
//	cancel  view                        terminal cancellation
type Store struct {
	log *wal.Log
	reg *telemetry.Registry
}

// Record op names.
const (
	opSubmit = "submit"
	opStart  = "start"
	opRetry  = "retry"
	opDone   = "done"
	opFailed = "failed"
	opCancel = "cancel"
)

// walRecord is the JSON payload of one WAL record. Only the fields a
// given op needs are set; omitempty keeps records small.
type walRecord struct {
	Op       string          `json:"op"`
	ID       string          `json:"id"`
	Spec     json.RawMessage `json:"spec,omitempty"`
	Priority int             `json:"priority,omitempty"`
	Attempt  int             `json:"attempt,omitempty"`
	Class    string          `json:"class,omitempty"`
	Error    string          `json:"error,omitempty"`
	View     *JobView        `json:"view,omitempty"`
	Result   json.RawMessage `json:"result,omitempty"`
}

// OpenStore opens (or creates) the job store over a WAL in opts.Dir,
// truncating any torn tail left by a crash.
func OpenStore(opts wal.Options) (*Store, error) {
	l, err := wal.Open(opts)
	if err != nil {
		return nil, err
	}
	reg := opts.Registry
	if reg == nil {
		reg = telemetry.Default()
	}
	return &Store{log: l, reg: reg}, nil
}

func (st *Store) append(rec walRecord) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("sim: store: %w", err)
	}
	return st.log.Append(b)
}

// LogSubmit records a job's admission. The spec is stored verbatim so
// replay can re-enqueue it; the id is re-derived from the spec on
// replay rather than trusted.
func (st *Store) LogSubmit(id string, spec scenario.Spec, priority, attempt int) error {
	b, err := json.Marshal(spec)
	if err != nil {
		return fmt.Errorf("sim: store: %w", err)
	}
	return st.append(walRecord{Op: opSubmit, ID: id, Spec: b, Priority: priority, Attempt: attempt})
}

// LogStart records a worker picking the job up for the given attempt.
func (st *Store) LogStart(id string, attempt int) error {
	return st.append(walRecord{Op: opStart, ID: id, Attempt: attempt})
}

// LogRetry records a retryable failure: the job is waiting out its
// backoff and will run again as the given attempt.
func (st *Store) LogRetry(id string, attempt int) error {
	return st.append(walRecord{Op: opRetry, ID: id, Attempt: attempt})
}

// LogDone records terminal success with the result JSON, so replay
// repopulates the result cache and the work is never re-run.
func (st *Store) LogDone(id string, view JobView, result json.RawMessage) error {
	return st.append(walRecord{Op: opDone, ID: id, View: &view, Result: result})
}

// LogFailed records terminal failure (attempt budget exhausted, shed,
// or non-retryable error).
func (st *Store) LogFailed(id string, view JobView) error {
	return st.append(walRecord{Op: opFailed, ID: id, View: &view, Class: view.Class, Error: view.Error})
}

// LogCancel records terminal cancellation.
func (st *Store) LogCancel(id string, view JobView) error {
	return st.append(walRecord{Op: opCancel, ID: id, View: &view})
}

// PendingJob is a job the WAL says was admitted but not finished: it
// must re-enqueue on startup.
type PendingJob struct {
	ID       string
	Spec     scenario.Spec
	Priority int
	Attempt  int
}

// DoneJob is a completed job recovered from the WAL: view + result,
// ready to prime the cache.
type DoneJob struct {
	View   JobView
	Result json.RawMessage
}

// ReplayState is everything a restarted scheduler learns from the WAL,
// in first-submission order within each class.
type ReplayState struct {
	Pending  []PendingJob
	Done     []DoneJob
	Dead     []JobView // terminal failures
	Canceled []JobView
	// Records is the total record count replayed; Skipped counts
	// records that no longer decode (schema skew) and were dropped
	// rather than failing startup.
	Records int
	Skipped int
}

// replayJob folds one job's records; the last lifecycle op wins.
type replayJob struct {
	id       string
	spec     scenario.Spec
	specOK   bool
	priority int
	attempt  int
	state    JobState
	view     JobView
	result   json.RawMessage
}

// Replay folds the whole WAL into the live state. Sealed-segment
// corruption surfaces as wal.ErrCorrupt; a torn final record was
// already truncated by OpenStore.
func (st *Store) Replay() (ReplayState, error) {
	jobs := make(map[string]*replayJob)
	var order []string
	var rs ReplayState

	err := st.log.Replay(func(payload []byte) error {
		rs.Records++
		var rec walRecord
		if err := json.Unmarshal(payload, &rec); err != nil || rec.ID == "" {
			rs.Skipped++
			return nil
		}
		j, ok := jobs[rec.ID]
		if !ok {
			j = &replayJob{id: rec.ID, attempt: 1}
			jobs[rec.ID] = j
			order = append(order, rec.ID)
		}
		switch rec.Op {
		case opSubmit:
			spec, id, err := scenario.Decode(rec.Spec)
			if err != nil || id != rec.ID {
				rs.Skipped++
				delete(jobs, rec.ID)
				return nil
			}
			j.spec, j.specOK = spec, true
			j.priority = rec.Priority
			j.attempt = max(rec.Attempt, 1)
			j.state = JobQueued
		case opStart, opRetry:
			if rec.Attempt > 0 {
				j.attempt = rec.Attempt
			}
			j.state = JobQueued
		case opDone:
			j.state = JobDone
			if rec.View != nil {
				j.view = *rec.View
			}
			j.result = rec.Result
		case opFailed:
			j.state = JobFailed
			if rec.View != nil {
				j.view = *rec.View
			}
		case opCancel:
			j.state = JobCanceled
			if rec.View != nil {
				j.view = *rec.View
			}
		default:
			rs.Skipped++
		}
		return nil
	})
	if err != nil {
		return ReplayState{}, err
	}

	for _, id := range order {
		j, ok := jobs[id]
		if !ok {
			continue
		}
		switch j.state {
		case JobDone:
			rs.Done = append(rs.Done, DoneJob{View: j.view, Result: j.result})
		case JobFailed:
			rs.Dead = append(rs.Dead, j.view)
		case JobCanceled:
			rs.Canceled = append(rs.Canceled, j.view)
		default:
			if j.specOK {
				rs.Pending = append(rs.Pending, PendingJob{ID: j.id, Spec: j.spec, Priority: j.priority, Attempt: j.attempt})
			} else {
				// A start/retry whose submit record is gone (schema skew
				// in the spec): nothing to re-run.
				rs.Skipped++
			}
		}
	}
	return rs, nil
}

// Snapshot is the live state a compaction preserves: pending jobs
// (re-submittable), completed results and dead letters. Cancellation
// history is deliberately dropped — it is terminal, result-less and
// only served best-effort from the bounded history anyway.
type Snapshot struct {
	Live []PendingJob
	Done []DoneJob
	Dead []JobView
}

// Compact rewrites the WAL as one snapshot segment, bounding its size.
func (st *Store) Compact(snap Snapshot) error {
	recs := make([][]byte, 0, len(snap.Done)+len(snap.Dead)+len(snap.Live))
	add := func(rec walRecord) error {
		b, err := json.Marshal(rec)
		if err != nil {
			return fmt.Errorf("sim: store: %w", err)
		}
		recs = append(recs, b)
		return nil
	}
	for i := range snap.Done {
		v := snap.Done[i].View
		if err := add(walRecord{Op: opDone, ID: v.ID, View: &v, Result: snap.Done[i].Result}); err != nil {
			return err
		}
	}
	for i := range snap.Dead {
		v := snap.Dead[i]
		if err := add(walRecord{Op: opFailed, ID: v.ID, View: &v, Class: v.Class, Error: v.Error}); err != nil {
			return err
		}
	}
	for _, p := range snap.Live {
		b, err := json.Marshal(p.Spec)
		if err != nil {
			return fmt.Errorf("sim: store: %w", err)
		}
		if err := add(walRecord{Op: opSubmit, ID: p.ID, Spec: b, Priority: p.Priority, Attempt: p.Attempt}); err != nil {
			return err
		}
	}
	return st.log.Compact(recs)
}

// Stats snapshots the underlying WAL.
func (st *Store) Stats() wal.Stats { return st.log.Stats() }

// Sync forces buffered records to stable storage.
func (st *Store) Sync() error { return st.log.Sync() }

// Close syncs and closes the WAL.
func (st *Store) Close() error { return st.log.Close() }

// ---------------------------------------------------------------------------
// Audit
// ---------------------------------------------------------------------------

// AuditReport summarizes a WAL's job lifecycle for the recovery
// harness (cmd/pabcrash): terminal-state counts plus any violations of
// the exactly-once invariants.
type AuditReport struct {
	Records    int      `json:"records"`
	Jobs       int      `json:"jobs"`
	Done       int      `json:"done"`
	Failed     int      `json:"failed"`
	Canceled   int      `json:"canceled"`
	Pending    int      `json:"pending"`
	Violations []string `json:"violations,omitempty"`
}

// auditViolationsKept bounds the violation list so a systematically
// broken log doesn't produce a gigabyte of report.
const auditViolationsKept = 32

// AuditWAL replays the WAL in dir and checks the exactly-once
// contract: once a job's done record lands, no later start or done
// record may exist for that id (a re-run of completed physics), and —
// after the system has converged — every job's last record must be
// terminal. Pending jobs are counted, not flagged, so the caller
// decides whether in-flight work is a failure (it is, after
// convergence).
func AuditWAL(dir string) (AuditReport, error) {
	st, err := OpenStore(wal.Options{Dir: dir, Fsync: wal.FsyncNever, Registry: telemetry.NewRegistry()})
	if err != nil {
		return AuditReport{}, err
	}
	defer st.Close()

	var rep AuditReport
	doneSeen := make(map[string]bool)
	last := make(map[string]string) // id → last lifecycle op
	violate := func(format string, args ...any) {
		if len(rep.Violations) < auditViolationsKept {
			rep.Violations = append(rep.Violations, fmt.Sprintf(format, args...))
		}
	}
	err = st.log.Replay(func(payload []byte) error {
		rep.Records++
		var rec walRecord
		if err := json.Unmarshal(payload, &rec); err != nil || rec.ID == "" {
			violate("record %d: undecodable", rep.Records)
			return nil
		}
		short := rec.ID
		if len(short) > 12 {
			short = short[:12]
		}
		switch rec.Op {
		case opStart:
			if doneSeen[rec.ID] {
				violate("job %s: started (attempt %d) after done — completed work re-ran", short, rec.Attempt)
			}
		case opDone:
			if doneSeen[rec.ID] {
				violate("job %s: done recorded twice", short)
			}
			doneSeen[rec.ID] = true
		}
		last[rec.ID] = rec.Op
		return nil
	})
	if err != nil {
		return rep, err
	}
	rep.Jobs = len(last)
	for _, op := range last {
		switch op {
		case opDone:
			rep.Done++
		case opFailed:
			rep.Failed++
		case opCancel:
			rep.Canceled++
		default:
			rep.Pending++
		}
	}
	return rep, nil
}
