package sim

import (
	"context"
	"encoding/json"
	"testing"
	"time"

	"pab/internal/prof"
	"pab/internal/scenario"
	"pab/internal/telemetry"
)

// sleepRunner sleeps seed milliseconds, making job durations
// controllable from the spec.
func sleepRunner(ctx context.Context, sp scenario.Spec) (json.RawMessage, error) {
	select {
	case <-time.After(time.Duration(sp.Seed) * time.Millisecond):
		return json.RawMessage(`{"ok":true}`), nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// TestJobSpansSplitQueueWaitAndService pins the dequeue split: every
// executed job files a sim_job span (service time, from dequeue) with a
// sim_queue_wait child covering submit→dequeue, and both phase
// histograms fill under their typed names.
func TestJobSpansSplitQueueWaitAndService(t *testing.T) {
	s, reg := newTestScheduler(t, Config{Workers: 1}, instantRunner)
	for seed := int64(1); seed <= 3; seed++ {
		v, err := s.Submit(chaosSpec(seed), 0)
		if err != nil {
			t.Fatal(err)
		}
		waitTerminal(t, s, v.ID)
	}

	snap := reg.Snapshot()
	jobs := map[uint64]bool{}
	var waits int
	for _, sp := range snap.Spans {
		switch sp.Name {
		case "sim_job":
			jobs[sp.ID] = true
			if sp.Attrs["id"] == nil || sp.Attrs["kind"] == nil {
				t.Fatalf("sim_job span missing id/kind attrs: %+v", sp)
			}
		}
	}
	for _, sp := range snap.Spans {
		if sp.Name != "sim_queue_wait" {
			continue
		}
		waits++
		if !jobs[sp.ParentID] {
			t.Fatalf("sim_queue_wait parent %d is not a sim_job span", sp.ParentID)
		}
		if sp.DurationSeconds < 0 {
			t.Fatalf("negative queue wait: %+v", sp)
		}
	}
	if len(jobs) != 3 || waits != 3 {
		t.Fatalf("jobs=%d queue-waits=%d, want 3/3", len(jobs), waits)
	}
	if h := snap.Histograms[string(telemetry.MSimJobQueueWaitSeconds)]; h.Count != 3 {
		t.Fatalf("queue-wait histogram count = %d, want 3", h.Count)
	}
	if h := snap.Histograms[string(telemetry.MSimJobDurationSeconds)]; h.Count != 3 {
		t.Fatalf("duration histogram count = %d, want 3", h.Count)
	}
}

// TestSchedulerTracePerfetto is the trace-export acceptance: spans from
// a scheduler run render as trace-event JSON with the queue-wait and
// service phases of one job on the same track.
func TestSchedulerTracePerfetto(t *testing.T) {
	s, reg := newTestScheduler(t, Config{Workers: 2}, instantRunner)
	var last string
	for seed := int64(1); seed <= 4; seed++ {
		v, err := s.Submit(chaosSpec(seed), 0)
		if err != nil {
			t.Fatal(err)
		}
		last = v.ID
	}
	waitTerminal(t, s, last)
	for seed := int64(1); seed <= 4; seed++ {
		id, _ := chaosSpec(seed).Hash()
		waitTerminal(t, s, id)
	}

	tf := prof.BuildTrace(reg.Snapshot().Spans)
	b, err := json.Marshal(tf)
	if err != nil {
		t.Fatal(err)
	}
	var back prof.TraceFile
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("scheduler trace does not parse: %v", err)
	}
	jobTid := map[any]int{} // span args id → tid
	for _, ev := range back.TraceEvents {
		if ev.Ph == "X" && ev.Name == "sim_job" {
			jobTid[ev.Args["id"]] = ev.Tid
		}
	}
	if len(jobTid) != 4 {
		t.Fatalf("sim_job events for %d jobs, want 4", len(jobTid))
	}
	matched := 0
	for _, ev := range back.TraceEvents {
		if ev.Ph == "X" && ev.Name == "sim_queue_wait" {
			want, ok := jobTid[ev.Args["id"]]
			if !ok {
				t.Fatalf("queue-wait for unknown job: %+v", ev)
			}
			if ev.Tid != want {
				t.Fatalf("queue-wait on tid %d, its job on tid %d", ev.Tid, want)
			}
			matched++
		}
	}
	if matched != 4 {
		t.Fatalf("queue-wait events = %d, want 4", matched)
	}
}

// TestSlowestJobs pins the worst-N table: longest-running jobs first,
// identified by spec hash, and surfaced through the registry snapshot
// (and with it /telemetry.json).
func TestSlowestJobs(t *testing.T) {
	s, reg := newTestScheduler(t, Config{Workers: 1}, sleepRunner)
	seeds := []int64{1, 30, 10} // sleep milliseconds
	for _, seed := range seeds {
		v, err := s.Submit(chaosSpec(seed), 0)
		if err != nil {
			t.Fatal(err)
		}
		waitTerminal(t, s, v.ID)
	}

	slow := s.SlowestJobs()
	if len(slow) != 3 {
		t.Fatalf("slowest table has %d entries, want 3", len(slow))
	}
	for i := 1; i < len(slow); i++ {
		if slow[i].RunS > slow[i-1].RunS {
			t.Fatalf("table not sorted by run time: %+v", slow)
		}
	}
	wantID, _ := chaosSpec(30).Hash()
	if slow[0].ID != wantID {
		t.Fatalf("slowest job = %s (%.3fs), want the 30ms job %s", slow[0].ID, slow[0].RunS, wantID)
	}

	snap := reg.Snapshot()
	views, ok := snap.Extra["sim_slowest_jobs"].([]JobView)
	if !ok || len(views) != 3 {
		t.Fatalf("snapshot extra sim_slowest_jobs = %#v", snap.Extra["sim_slowest_jobs"])
	}
}

// TestSlowestJobsBounded keeps the table at its cap under churn.
func TestSlowestJobsBounded(t *testing.T) {
	s, _ := newTestScheduler(t, Config{Workers: 4, QueueDepth: 64}, instantRunner)
	for seed := int64(1); seed <= int64(slowestJobsKept)+8; seed++ {
		v, err := s.Submit(chaosSpec(seed), 0)
		if err != nil {
			t.Fatal(err)
		}
		waitTerminal(t, s, v.ID)
	}
	if got := len(s.SlowestJobs()); got != slowestJobsKept {
		t.Fatalf("table size %d, want %d", got, slowestJobsKept)
	}
}
