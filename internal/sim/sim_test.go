package sim

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"pab/internal/scenario"
	"pab/internal/telemetry"
)

// chaosSpec returns a cheap, valid spec whose seed distinguishes it
// from other test specs.
func chaosSpec(seed int64) scenario.Spec {
	return scenario.Spec{Kind: scenario.KindChaos, Seed: seed, MAC: scenario.MACSpec{DurationS: 5}}
}

// instantRunner completes immediately with a fixed payload.
func instantRunner(context.Context, scenario.Spec) (json.RawMessage, error) {
	return json.RawMessage(`{"ok":true}`), nil
}

// gate is a runner whose jobs block until released, recording the
// order specs reached a worker.
type gate struct {
	mu      sync.Mutex
	order   []int64
	release chan struct{}
}

func newGate() *gate { return &gate{release: make(chan struct{})} }

func (g *gate) run(ctx context.Context, sp scenario.Spec) (json.RawMessage, error) {
	g.mu.Lock()
	g.order = append(g.order, sp.Seed)
	g.mu.Unlock()
	select {
	case <-g.release:
		return json.RawMessage(fmt.Sprintf(`{"seed":%d}`, sp.Seed)), nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (g *gate) seen() []int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]int64(nil), g.order...)
}

func newTestScheduler(t *testing.T, cfg Config, run Runner) (*Scheduler, *telemetry.Registry) {
	t.Helper()
	reg := telemetry.NewRegistry()
	cfg.Registry = reg
	s, err := New(cfg, run)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, reg
}

func waitTerminal(t *testing.T, s *Scheduler, id string) JobView {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	v, err := s.Wait(ctx, id)
	if err != nil {
		t.Fatalf("Wait(%s): %v", id, err)
	}
	return v
}

// TestCacheHitViaTelemetry is the acceptance check: submitting the
// same scenario twice runs it once, with the second submission served
// from the content-addressed cache — verified through the registry's
// hit/miss counters.
func TestCacheHitViaTelemetry(t *testing.T) {
	s, reg := newTestScheduler(t, Config{Workers: 2}, instantRunner)

	v1, err := s.Submit(chaosSpec(1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if v1.Cached {
		t.Fatal("first submission must not be cached")
	}
	waitTerminal(t, s, v1.ID)

	v2, err := s.Submit(chaosSpec(1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !v2.Cached || v2.State != JobDone {
		t.Fatalf("second submission = %+v, want cached done view", v2)
	}
	if v2.ID != v1.ID {
		t.Fatalf("hash drift: %s vs %s", v1.ID, v2.ID)
	}
	if hits := reg.Counter(telemetry.MSimCacheHitsTotal).Value(); hits != 1 {
		t.Errorf("cache hits = %d, want 1", hits)
	}
	if misses := reg.Counter(telemetry.MSimCacheMissesTotal).Value(); misses != 1 {
		t.Errorf("cache misses = %d, want 1", misses)
	}
	if ran := reg.Counter(telemetry.MSimJobsCompletedTotal).Value(); ran != 1 {
		t.Errorf("jobs completed = %d, want exactly 1 (cache absorbed the repeat)", ran)
	}
	if _, result, ok := s.Result(v1.ID); !ok || string(result) != `{"ok":true}` {
		t.Errorf("Result = %s, %v", result, ok)
	}
}

// TestDedupInFlight: a spec already queued or running is joined, not
// re-run.
func TestDedupInFlight(t *testing.T) {
	g := newGate()
	s, reg := newTestScheduler(t, Config{Workers: 1}, g.run)

	v1, err := s.Submit(chaosSpec(1), 0)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := s.Submit(chaosSpec(1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if v2.ID != v1.ID || v2.Cached {
		t.Fatalf("dedup view = %+v", v2)
	}
	if n := reg.Counter(telemetry.MSimJobsDedupedTotal).Value(); n != 1 {
		t.Errorf("deduped = %d, want 1", n)
	}
	close(g.release)
	waitTerminal(t, s, v1.ID)
	if n := reg.Counter(telemetry.MSimJobsCompletedTotal).Value(); n != 1 {
		t.Errorf("completed = %d, want 1", n)
	}
}

// TestQueueFullBackpressure: the bounded queue rejects with
// ErrQueueFull once depth is reached, and RetryAfter advertises a
// sane wait.
func TestQueueFullBackpressure(t *testing.T) {
	g := newGate()
	s, reg := newTestScheduler(t, Config{Workers: 1, QueueDepth: 1}, g.run)

	// First job occupies the worker...
	if _, err := s.Submit(chaosSpec(1), 0); err != nil {
		t.Fatal(err)
	}
	waitBusy(t, s, 1)
	// ...second fills the queue...
	if _, err := s.Submit(chaosSpec(2), 0); err != nil {
		t.Fatal(err)
	}
	// ...third must bounce.
	_, err := s.Submit(chaosSpec(3), 0)
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if n := reg.Counter(telemetry.MSimJobsRejectedTotal).Value(); n != 1 {
		t.Errorf("rejected = %d, want 1", n)
	}
	if ra := s.RetryAfter(); ra < time.Second || ra > 30*time.Second {
		t.Errorf("RetryAfter = %v, want within [1s, 30s]", ra)
	}
	close(g.release)
}

func waitBusy(t *testing.T, s *Scheduler, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Busy != want {
		if time.Now().After(deadline) {
			t.Fatalf("busy never reached %d (stats %+v)", want, s.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestPriorityOrder: with one worker pinned, a high-priority late
// arrival runs before an earlier low-priority job.
func TestPriorityOrder(t *testing.T) {
	g := newGate()
	s, _ := newTestScheduler(t, Config{Workers: 1, QueueDepth: 8}, g.run)

	pin, err := s.Submit(chaosSpec(1), 0)
	if err != nil {
		t.Fatal(err)
	}
	waitBusy(t, s, 1)
	low, err := s.Submit(chaosSpec(2), 0)
	if err != nil {
		t.Fatal(err)
	}
	high, err := s.Submit(chaosSpec(3), 5)
	if err != nil {
		t.Fatal(err)
	}
	close(g.release)
	waitTerminal(t, s, pin.ID)
	waitTerminal(t, s, low.ID)
	waitTerminal(t, s, high.ID)
	order := g.seen()
	if len(order) != 3 || order[0] != 1 || order[1] != 3 || order[2] != 2 {
		t.Errorf("execution order = %v, want [1 3 2]", order)
	}
}

// TestCancel covers both queued-job removal and running-job
// interruption.
func TestCancel(t *testing.T) {
	g := newGate()
	s, reg := newTestScheduler(t, Config{Workers: 1, QueueDepth: 8}, g.run)

	running, err := s.Submit(chaosSpec(1), 0)
	if err != nil {
		t.Fatal(err)
	}
	waitBusy(t, s, 1)
	queued, err := s.Submit(chaosSpec(2), 0)
	if err != nil {
		t.Fatal(err)
	}

	if !s.Cancel(queued.ID) {
		t.Fatal("cancel of a queued job returned false")
	}
	if v := waitTerminal(t, s, queued.ID); v.State != JobCanceled {
		t.Errorf("queued job state = %s, want canceled", v.State)
	}
	if !s.Cancel(running.ID) {
		t.Fatal("cancel of a running job returned false")
	}
	if v := waitTerminal(t, s, running.ID); v.State != JobCanceled {
		t.Errorf("running job state = %s, want canceled", v.State)
	}
	if s.Cancel("deadbeef") {
		t.Error("cancel of an unknown job returned true")
	}
	if n := reg.Counter(telemetry.MSimJobsCanceledTotal).Value(); n != 2 {
		t.Errorf("canceled = %d, want 2", n)
	}
	// A canceled spec resubmits as a fresh run, not a cache hit.
	v, err := s.Submit(chaosSpec(2), 0)
	if err != nil {
		t.Fatal(err)
	}
	if v.Cached || v.State.Terminal() {
		t.Errorf("resubmitted canceled spec = %+v, want fresh queued job", v)
	}
	close(g.release)
}

// TestJobTimeout: a job past its deadline fails, frees the worker and
// bumps the timeout counter.
func TestJobTimeout(t *testing.T) {
	block := func(ctx context.Context, _ scenario.Spec) (json.RawMessage, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	s, reg := newTestScheduler(t, Config{Workers: 1, JobTimeout: 30 * time.Millisecond}, block)

	v, err := s.Submit(chaosSpec(1), 0)
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, s, v.ID)
	if final.State != JobFailed {
		t.Fatalf("state = %s, want failed", final.State)
	}
	if n := reg.Counter(telemetry.MSimJobsTimedOutTotal).Value(); n != 1 {
		t.Errorf("timed out = %d, want 1", n)
	}
	// The worker must be free for the next job.
	v2, err := s.Submit(chaosSpec(2), 0)
	if err != nil {
		t.Fatal(err)
	}
	if v2.State.Terminal() {
		t.Fatalf("second job unexpectedly terminal: %+v", v2)
	}
}

// TestRunnerError: a runner failure lands in JobFailed with the error
// preserved for status queries.
func TestRunnerError(t *testing.T) {
	boom := func(context.Context, scenario.Spec) (json.RawMessage, error) {
		return nil, errors.New("hydrophone unplugged")
	}
	s, reg := newTestScheduler(t, Config{Workers: 1}, boom)
	v, err := s.Submit(chaosSpec(1), 0)
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, s, v.ID)
	if final.State != JobFailed || final.Error != "hydrophone unplugged" {
		t.Errorf("final = %+v", final)
	}
	if n := reg.Counter(telemetry.MSimJobsFailedTotal).Value(); n != 1 {
		t.Errorf("failed = %d, want 1", n)
	}
	if _, _, ok := s.Result(v.ID); ok {
		t.Error("failed job must not populate the result cache")
	}
}

// TestShutdownDrains: shutdown stops intake, cancels queued jobs and
// lets the in-flight one finish.
func TestShutdownDrains(t *testing.T) {
	g := newGate()
	reg := telemetry.NewRegistry()
	s, err := New(Config{Workers: 1, QueueDepth: 8, Registry: reg}, g.run)
	if err != nil {
		t.Fatal(err)
	}
	inflight, err := s.Submit(chaosSpec(1), 0)
	if err != nil {
		t.Fatal(err)
	}
	waitBusy(t, s, 1)
	queued, err := s.Submit(chaosSpec(2), 0)
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		done <- s.Shutdown(ctx)
	}()
	// Give Shutdown a moment to close intake, then release the worker.
	if _, err := pollUntilRejected(s); err == nil {
		t.Fatal("intake stayed open during shutdown")
	}
	close(g.release)
	if err := <-done; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if v, err := s.Job(inflight.ID); err != nil || v.State != JobDone {
		t.Errorf("in-flight job = %+v, %v; want done", v, err)
	}
	if v, err := s.Job(queued.ID); err != nil || v.State != JobCanceled {
		t.Errorf("queued job = %+v, %v; want canceled", v, err)
	}
}

// pollUntilRejected submits probes until one is refused (shutdown
// visible) or times out.
func pollUntilRejected(s *Scheduler) (JobView, error) {
	deadline := time.Now().Add(5 * time.Second)
	for {
		v, err := s.Submit(chaosSpec(999), 0)
		if err != nil {
			return JobView{}, err
		}
		if time.Now().After(deadline) {
			return v, nil
		}
		time.Sleep(time.Millisecond)
	}
}

// TestShutdownDeadline: a drain that overruns its context force-
// cancels the stuck job and reports the context error.
func TestShutdownDeadline(t *testing.T) {
	stuck := func(ctx context.Context, _ scenario.Spec) (json.RawMessage, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	s, err := New(Config{Workers: 1, Registry: telemetry.NewRegistry()}, stuck)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(chaosSpec(1), 0); err != nil {
		t.Fatal(err)
	}
	waitBusy(t, s, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want deadline exceeded", err)
	}
}

// TestSubmitBatch covers atomic acceptance, in-batch dedup and the
// all-or-nothing capacity check.
func TestSubmitBatch(t *testing.T) {
	g := newGate()
	s, _ := newTestScheduler(t, Config{Workers: 1, QueueDepth: 2}, g.run)

	// Duplicate specs inside one batch occupy one slot.
	batch, views, err := s.SubmitBatch([]scenario.Spec{chaosSpec(1), chaosSpec(1), chaosSpec(2)}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(views) != 3 || len(batch.JobIDs) != 3 {
		t.Fatalf("batch views = %d, ids = %d; want 3/3", len(views), len(batch.JobIDs))
	}
	if views[0].ID != views[1].ID {
		t.Error("duplicate specs got different job ids")
	}
	got, ok := s.BatchOf(batch.ID)
	if !ok || len(got.JobIDs) != 3 {
		t.Fatalf("BatchOf = %+v, %v", got, ok)
	}

	// Queue now holds one job (seed 2) with the worker on seed 1: a
	// 3-new-spec batch cannot fit and must be rejected whole.
	before := s.Stats().Queued
	_, _, err = s.SubmitBatch([]scenario.Spec{chaosSpec(10), chaosSpec(11), chaosSpec(12)}, 0)
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("oversize batch err = %v, want ErrQueueFull", err)
	}
	if after := s.Stats().Queued; after != before {
		t.Errorf("rejected batch changed queue depth %d -> %d", before, after)
	}
	// Identical sweep resubmission addresses the same batch.
	batch2, _, err := s.SubmitBatch([]scenario.Spec{chaosSpec(1), chaosSpec(1), chaosSpec(2)}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if batch2.ID != batch.ID {
		t.Errorf("batch id not content-addressed: %s vs %s", batch2.ID, batch.ID)
	}
	close(g.release)
}

// TestSubmitInvalidSpec: validation failures surface at submission,
// not execution.
func TestSubmitInvalidSpec(t *testing.T) {
	s, _ := newTestScheduler(t, Config{Workers: 1}, instantRunner)
	bad := scenario.Spec{Kind: "quantum"}
	if _, err := s.Submit(bad, 0); err == nil {
		t.Fatal("want validation error")
	}
	if _, _, err := s.SubmitBatch([]scenario.Spec{bad}, 0); err == nil {
		t.Fatal("want batch validation error")
	}
	if _, _, err := s.SubmitBatch(nil, 0); err == nil {
		t.Fatal("want empty-batch error")
	}
}

// TestWaitUnknown: waiting on a never-submitted id fails fast.
func TestWaitUnknown(t *testing.T) {
	s, _ := newTestScheduler(t, Config{Workers: 1}, instantRunner)
	if _, err := s.Wait(context.Background(), "deadbeef"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("err = %v, want ErrUnknownJob", err)
	}
	if _, err := s.Job("deadbeef"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("err = %v, want ErrUnknownJob", err)
	}
}

// TestLRUEviction: the cache stays bounded and evictions are counted.
func TestLRUEviction(t *testing.T) {
	s, reg := newTestScheduler(t, Config{Workers: 1, CacheEntries: 2}, instantRunner)
	ids := make([]string, 3)
	for i := range ids {
		v, err := s.Submit(chaosSpec(int64(i+1)), 0)
		if err != nil {
			t.Fatal(err)
		}
		waitTerminal(t, s, v.ID)
		ids[i] = v.ID
	}
	if n := s.Stats().CacheSize; n != 2 {
		t.Errorf("cache size = %d, want 2", n)
	}
	if n := reg.Counter(telemetry.MSimCacheEvictionsTotal).Value(); n != 1 {
		t.Errorf("evictions = %d, want 1", n)
	}
	if _, _, ok := s.Result(ids[0]); ok {
		t.Error("oldest entry should have been evicted")
	}
	if _, _, ok := s.Result(ids[2]); !ok {
		t.Error("newest entry should be cached")
	}
}
