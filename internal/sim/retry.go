package sim

import (
	"context"
	"errors"
	"math/rand"
	"time"
)

// FailureClass types why a job failed, deciding whether it is worth
// retrying. The class is persisted in the WAL failure record and
// surfaced in JobView.Class and the dead-letter list, so operators can
// distinguish "the spec is broken" from "the daemon was overloaded".
type FailureClass string

// Failure classes.
const (
	// FailTimeout: the per-job deadline fired. Retryable — the run may
	// succeed on a less loaded pool.
	FailTimeout FailureClass = "timeout"
	// FailCanceled: the job was canceled (client or shutdown). Not
	// retryable — cancellation is an instruction, not a fault.
	FailCanceled FailureClass = "canceled"
	// FailShed: admission control evicted the job to make room for
	// higher-priority work. Terminal here; the client owns resubmission.
	FailShed FailureClass = "shed"
	// FailRuntime: the runner returned an error. Retryable — transient
	// resource errors look identical to deterministic spec errors from
	// here, and the bounded attempt budget caps the waste when the
	// failure is deterministic.
	FailRuntime FailureClass = "runtime"
)

// Retryable reports whether jobs failing with this class re-enter the
// queue (budget permitting).
func (c FailureClass) Retryable() bool {
	return c == FailTimeout || c == FailRuntime
}

// Classify maps a runner error onto a failure class.
func Classify(err error) FailureClass {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return FailTimeout
	case errors.Is(err, context.Canceled):
		return FailCanceled
	default:
		return FailRuntime
	}
}

// RetryPolicy bounds re-execution of retryably-failed jobs:
// exponential backoff with jitter between attempts, and a per-job
// attempt budget after which the job dead-letters. The zero value
// disables retries (MaxAttempts 1), preserving the fail-fast behavior
// embedded code and tests rely on; pabd opts in via -retries.
type RetryPolicy struct {
	// MaxAttempts is the per-job budget including the first run; 0
	// selects 1 (no retries).
	MaxAttempts int
	// BaseBackoff is the delay after the first failure; 0 selects 500 ms.
	BaseBackoff time.Duration
	// MaxBackoff clamps the exponential growth; 0 selects 30 s.
	MaxBackoff time.Duration
	// JitterFrac spreads each delay uniformly over ±frac of itself so
	// retries from a burst of failures don't re-collide; 0 selects 0.2.
	JitterFrac float64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 1
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 500 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 30 * time.Second
	}
	if p.JitterFrac <= 0 {
		p.JitterFrac = 0.2
	}
	if p.JitterFrac > 1 {
		p.JitterFrac = 1
	}
	return p
}

// Backoff returns the delay before the attempt following failed
// attempt number `attempt` (1-based): Base·2^(attempt−1), clamped to
// MaxBackoff, then jittered by ±JitterFrac from rng.
func (p RetryPolicy) Backoff(attempt int, rng *rand.Rand) time.Duration {
	if attempt < 1 {
		attempt = 1
	}
	d := p.BaseBackoff
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= p.MaxBackoff {
			d = p.MaxBackoff
			break
		}
	}
	if d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	if rng != nil && p.JitterFrac > 0 {
		// Uniform in [1-frac, 1+frac).
		scale := 1 + p.JitterFrac*(2*rng.Float64()-1)
		d = time.Duration(float64(d) * scale)
	}
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}
